/**
 * @file
 * Property test for the paper's SLO guarantee under dynamic load
 * (§5.1, §6): across a batch of generated scenarios — random
 * workloads, random slacks, and every load-profile kind including
 * flash crowds, correlated bursts, and churn — Ubik's tail-latency
 * degradation must track the StaticLC isolation reference within the
 * configured slack. StaticLC is the paper's "strict isolation" upper
 * bound on protection: whatever tail the transient forces on an
 * LC app that owns its full static allocation is the best any
 * partitioning scheme can do, and Ubik's pitch is that it matches it
 * (within slack) while freeing cache for batch work.
 *
 * The batch sweeps as ONE ParallelSweep run: generator knobs are
 * quantized (sim/scenario_gen.h), so hundreds of scenarios share a
 * handful of LC/batch baselines and the whole suite stays CI-sized.
 * UBIK_SLO_SCENARIOS overrides the batch size (default 200).
 *
 * When a scenario violates the property, the test writes its spec
 * JSON to <build>/slo_violations/ and fails with the seed. The
 * workflow: replay it with `ubik_run --spec`, and either fix the bug
 * it exposes or — if it is a genuine guarantee gap worth pinning —
 * commit the file under tests/integration/specs/, which this suite
 * (and CI) replays forever after.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "sim/parallel_sweep.h"
#include "sim/scenario.h"
#include "sim/scenario_gen.h"

namespace ubik {
namespace {

namespace fs = std::filesystem;

/** CI-sized machine: the same reduced scale the golden/determinism
 *  suites run at. */
ExperimentConfig
smokeCfg()
{
    ExperimentConfig cfg;
    cfg.scale = 16.0;
    cfg.roiRequests = 30;
    cfg.warmupRequests = 10;
    cfg.seeds = 1;
    cfg.mixesPerLc = 1;
    cfg.jobs = 0; // UBIK_JOBS or all cores
    cfg.cacheDir.clear();
    return cfg;
}

std::uint64_t
envCount(const char *name, std::uint64_t dflt)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return dflt;
    return std::strtoull(v, nullptr, 10);
}

/**
 * The guarantee, as a testable inequality. Both schemes face the
 * same offered-load transient, so the comparison is relative:
 *
 *   ubikDeg <= staticDeg * (1 + slack) + kTolerance
 *
 * kTolerance absorbs the CI scale's sampling noise: 30 ROI requests
 * put ~2 samples in each instance's 95th-pct tail, so individual
 * degradations are quantized. The bound is still sharp enough to
 * catch real regressions — dropping Ubik's boost-on-transient logic
 * inflates ubikDeg by >1x on flash-crowd scenarios, orders of
 * magnitude beyond this slop.
 */
constexpr double kTolerance = 0.25;

struct Violation
{
    std::uint64_t seed;
    std::string mixName;
    double staticDeg;
    double ubikDeg;
    double slack;
};

void
checkBatch(std::uint64_t firstSeed, std::uint64_t count,
           std::vector<Violation> &out)
{
    ExperimentConfig cfg = smokeCfg();

    struct Entry
    {
        ScenarioSpec spec;
        std::vector<MixSpec> mixes;
        std::size_t firstJob = 0;
    };
    std::vector<Entry> entries;
    std::vector<SweepJob> jobs;
    for (std::uint64_t s = firstSeed; s < firstSeed + count; s++) {
        Entry e;
        e.spec = generateScenario(s);
        e.mixes = buildScenarioMixes(e.spec, cfg);
        e.firstJob = jobs.size();
        // Scheme-major within a scenario: StaticLC runs first, then
        // Ubik, each over the scenario's mixes.
        std::vector<SweepJob> mine =
            buildSweepJobs(e.spec.schemes, e.mixes, 1);
        jobs.insert(jobs.end(), mine.begin(), mine.end());
        entries.push_back(std::move(e));
    }

    MixRunner runner(cfg, /*out_of_order=*/true);
    ParallelSweep engine(runner, cfg.jobs);
    std::vector<MixRunResult> results = engine.run(jobs);
    ASSERT_EQ(results.size(), jobs.size());

    for (std::uint64_t i = 0; i < entries.size(); i++) {
        const Entry &e = entries[i];
        double slack = e.spec.schemes[1].slack;
        std::size_t n = e.mixes.size();
        for (std::size_t m = 0; m < n; m++) {
            const MixRunResult &stat = results[e.firstJob + m];
            const MixRunResult &ubik = results[e.firstJob + n + m];
            if (ubik.tailDegradation <=
                stat.tailDegradation * (1.0 + slack) + kTolerance)
                continue;
            out.push_back({firstSeed + i, e.mixes[m].name,
                           stat.tailDegradation,
                           ubik.tailDegradation, slack});
        }
    }
}

TEST(SloProperty, UbikTracksStaticIsolationAcrossGeneratedScenarios)
{
    const std::uint64_t count = envCount("UBIK_SLO_SCENARIOS", 200);
    std::vector<Violation> violations;
    checkBatch(/*firstSeed=*/1, count, violations);

    if (!violations.empty()) {
        fs::create_directories("slo_violations");
        for (const Violation &v : violations) {
            std::string path = "slo_violations/gen-" +
                               std::to_string(v.seed) + ".json";
            std::FILE *f = std::fopen(path.c_str(), "w");
            if (f) {
                std::fprintf(f, "%s\n",
                             scenarioCanonicalJson(
                                 generateScenario(v.seed))
                                 .c_str());
                std::fclose(f);
            }
            ADD_FAILURE()
                << "SLO violated: seed " << v.seed << " mix "
                << v.mixName << " static " << v.staticDeg << "x ubik "
                << v.ubikDeg << "x slack " << v.slack
                << " — spec written to " << path
                << "; replay with `ubik_run --spec " << path
                << "`, then fix the bug or commit the spec under "
                   "tests/integration/specs/";
        }
    }
}

TEST(SloProperty, CommittedRegressionSpecsStillHold)
{
    // Specs that once violated the guarantee, committed so the fix
    // can never silently regress. Empty directory = nothing pinned
    // yet, which is itself a pass.
    fs::path dir =
        fs::path(UBIK_SOURCE_DIR) / "tests" / "integration" / "specs";
    ASSERT_TRUE(fs::exists(dir))
        << dir << " missing — it ships with the repo";

    ExperimentConfig cfg = smokeCfg();
    for (const auto &ent : fs::directory_iterator(dir)) {
        if (ent.path().extension() != ".json")
            continue;
        Json j;
        std::string err;
        ASSERT_TRUE(Json::parseFile(ent.path().string(), j, err))
            << ent.path() << ": " << err;
        ScenarioSpec spec = scenarioFromJson(j);
        ASSERT_EQ(spec.schemes.size(), 2u) << ent.path();
        double slack = spec.schemes[1].slack;

        std::vector<MixSpec> mixes = buildScenarioMixes(spec, cfg);
        MixRunner runner(cfg, spec.ooo);
        ParallelSweep engine(runner, cfg.jobs);
        std::vector<MixRunResult> results =
            engine.run(buildSweepJobs(spec.schemes, mixes, 1));
        std::size_t n = mixes.size();
        for (std::size_t m = 0; m < n; m++) {
            EXPECT_LE(results[n + m].tailDegradation,
                      results[m].tailDegradation * (1.0 + slack) +
                          kTolerance)
                << ent.path() << " mix " << mixes[m].name;
        }
    }
}

} // namespace
} // namespace ubik
