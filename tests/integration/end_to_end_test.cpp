/**
 * @file
 * Integration tests reproducing the paper's headline qualitative
 * claims on a small, fixed mix (seeds pinned for determinism):
 *
 *  - StaticLC and Ubik preserve tail latency; best-effort schemes
 *    (LRU / UCP / OnOff) can degrade it badly under adversarial
 *    batch pressure;
 *  - Ubik frees more space for batch apps than StaticLC;
 *  - slack trades bounded tail degradation for batch throughput.
 *
 * These use an inertia-heavy LC app (specjbb) against streaming/
 * friendly batch apps — the configuration Fig 10 shows is most
 * damaging for OnOff and LRU.
 */

#include <gtest/gtest.h>

#include "sim/mix_runner.h"

namespace ubik {
namespace {

struct EndToEnd : public ::testing::Test
{
    ExperimentConfig cfg;
    MixSpec mix;

    void
    SetUp() override
    {
        cfg.scale = 8.0;
        cfg.roiRequests = 120;
        cfg.warmupRequests = 30;
        mix.name = "e2e";
        mix.lc.app = lc_presets::specjbb();
        mix.lc.load = 0.2;
        mix.batch.name = "ffs";
        mix.batch.apps = {
            batch_presets::make(BatchClass::Friendly, 1),
            batch_presets::make(BatchClass::Friendly, 7),
            batch_presets::make(BatchClass::Streaming, 2),
        };
    }

    MixRunResult
    run(PolicyKind policy, double slack = 0.0,
        SchemeKind scheme = SchemeKind::Vantage)
    {
        MixRunner runner(cfg);
        SchemeUnderTest sut{policyKindName(policy), scheme,
                            ArrayKind::Z4_52, policy, slack};
        if (policy == PolicyKind::Lru)
            sut.scheme = SchemeKind::SharedLru;
        return runner.runMix(mix, sut, /*seed=*/3);
    }
};

TEST_F(EndToEnd, StaticLcPreservesTailLatency)
{
    MixRunResult r = run(PolicyKind::StaticLc);
    EXPECT_LT(r.tailDegradation, 1.25);
}

TEST_F(EndToEnd, UbikPreservesTailLatencyWithinSlack)
{
    MixRunResult r = run(PolicyKind::Ubik, 0.05);
    EXPECT_LT(r.tailDegradation, 1.30);
}

TEST_F(EndToEnd, UbikBeatsStaticLcOnBatchThroughput)
{
    MixRunResult st = run(PolicyKind::StaticLc);
    MixRunResult ub = run(PolicyKind::Ubik, 0.05);
    EXPECT_GT(ub.weightedSpeedup, st.weightedSpeedup);
}

TEST_F(EndToEnd, BestEffortSchemesGiveBatchMoreThanStaticLc)
{
    MixRunResult st = run(PolicyKind::StaticLc);
    MixRunResult on = run(PolicyKind::OnOff);
    MixRunResult ucp = run(PolicyKind::Ucp);
    EXPECT_GE(on.weightedSpeedup, st.weightedSpeedup * 0.98);
    EXPECT_GE(ucp.weightedSpeedup, st.weightedSpeedup * 0.98);
}

TEST_F(EndToEnd, UcpDegradesTailMoreThanUbik)
{
    // UCP reads the mostly-idle LC apps as low-utility and starves
    // them (the paper's central complaint).
    MixRunResult ucp = run(PolicyKind::Ucp);
    MixRunResult ub = run(PolicyKind::Ubik, 0.05);
    EXPECT_GT(ucp.tailDegradation, ub.tailDegradation);
}

TEST_F(EndToEnd, AllSchemesCompleteAllRequests)
{
    for (PolicyKind p : {PolicyKind::Lru, PolicyKind::Ucp,
                         PolicyKind::OnOff, PolicyKind::StaticLc,
                         PolicyKind::Ubik}) {
        MixRunResult r = run(p, p == PolicyKind::Ubik ? 0.05 : 0.0);
        EXPECT_GT(r.lcTailMean, 0.0) << policyKindName(p);
        EXPECT_GT(r.weightedSpeedup, 0.3) << policyKindName(p);
    }
}

TEST_F(EndToEnd, SlackTradesTailForThroughput)
{
    MixRunResult strict = run(PolicyKind::Ubik, 0.0);
    MixRunResult slack10 = run(PolicyKind::Ubik, 0.10);
    // More slack can only help batch apps...
    EXPECT_GE(slack10.weightedSpeedup,
              strict.weightedSpeedup * 0.97);
    // ...while tail latency stays within a loose sanity bound.
    EXPECT_LT(slack10.tailDegradation, 1.5);
}

TEST_F(EndToEnd, HighLoadStillMeetsDeadlines)
{
    mix.lc.load = 0.6;
    MixRunResult ub = run(PolicyKind::Ubik, 0.05);
    EXPECT_LT(ub.tailDegradation, 1.35);
}

TEST_F(EndToEnd, InertiaSensitiveAppSuffersUnderOnOff)
{
    // OnOff strips an idle app's entire allocation; with specjbb's
    // heavy cross-request reuse this must cost more tail latency than
    // Ubik's bounded downsizing.
    MixRunResult on = run(PolicyKind::OnOff);
    MixRunResult ub = run(PolicyKind::Ubik, 0.05);
    EXPECT_GT(on.tailDegradation, ub.tailDegradation * 0.95);
}

} // namespace
} // namespace ubik
