/**
 * @file
 * Chaos harness for the fleet fabric: in-process fleet workers run
 * under deterministic failpoint schedules (common/failpoint.h) and
 * the merged matrix must stay bit-identical to a clean single-engine
 * reference — the fabric's invariant, proven under injected faults,
 * not just under SIGKILL.
 *
 * Two gates, matched to what each schedule can guarantee:
 *  - schedules limited to append/fsync faults never perturb claim
 *    arbitration or cache visibility, so they gate zero duplicate
 *    computes AND byte-equality;
 *  - wilder (randomized) schedules may legally cause duplicate
 *    computes (e.g. a refresh fault hides a published record), so
 *    they gate byte-equality and completion only. Every duplicate is
 *    an identical deterministic value.
 *
 * Failpoints are process-global: references are computed before a
 * schedule is armed, and every test disarms in TearDown.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "sim/claim_store.h"
#include "sim/parallel_sweep.h"
#include "sim/result_cache.h"
#include "support/cache_test_util.h"

using namespace ubik;
using namespace ubik::test;

namespace {

class ChaosFleetTest : public ::testing::Test
{
  protected:
    void SetUp() override { failpointReset(); }
    void TearDown() override { failpointReset(); }
};

/** A reference sweep (no fleet, no cache, no faults). */
std::vector<MixRunResult>
referenceResults(const std::vector<SweepJob> &jobs)
{
    MixRunner runner(cacheTestCfg());
    ParallelSweep sweep(runner, 2);
    return sweep.run(jobs);
}

struct ChaosRun
{
    std::vector<MixRunResult> results;
    SweepProgress last;
    CacheStats stats;
};

ChaosRun
runFleetWorker(const std::string &cache_dir, const std::string &id,
               const std::vector<SweepJob> &jobs)
{
    MixRunner runner(cacheTestCfg());
    std::unique_ptr<ResultCache> cache = ResultCache::open(cache_dir);
    cache->setDurable(true);
    runner.attachCache(cache.get());
    ParallelSweep sweep(runner, 2);
    sweep.attachCache(cache.get());
    FleetOptions opt;
    opt.workerId = id;
    opt.leaseTtlSec = 60.0;
    sweep.enableFleet(opt);
    ChaosRun out;
    out.results = sweep.run(
        jobs, [&](const SweepProgress &p) { out.last = p; });
    out.stats = cache->stats();
    return out;
}

} // namespace

TEST_F(ChaosFleetTest, AppendFaultScheduleKeepsZeroDuplicates)
{
    std::vector<SweepJob> jobs = cacheTestJobs();
    std::vector<MixRunResult> ref = referenceResults(jobs);

    // Append/fsync faults never perturb claim arbitration or cache
    // visibility (short writes are retried to completion; a failed
    // fsync only weakens crash durability), so this schedule gates
    // the full fleet invariant: byte-identical AND zero duplicates.
    failpointConfigure(
        "cache.append=short_write:9@2+;"
        "cache.fsync=err:EIO@p0.25,seed11");

    TempCacheDir dir("chaos_append");
    ChaosRun a, b;
    std::thread ta(
        [&] { a = runFleetWorker(dir.path(), "a", jobs); });
    std::thread tb(
        [&] { b = runFleetWorker(dir.path(), "b", jobs); });
    ta.join();
    tb.join();

    expectSameResults(a.results, ref);
    expectSameResults(b.results, ref);
    EXPECT_EQ(a.last.computed + b.last.computed, jobs.size());
    EXPECT_EQ(a.last.hits, 0u);
    EXPECT_EQ(b.last.hits, 0u);

    // The short-write schedule actually bit: records were landed via
    // remainder retries, and every one still reads back intact.
    EXPECT_GT(a.stats.appendRetries + b.stats.appendRetries, 0u);
    EXPECT_EQ(a.stats.storesDropped + b.stats.storesDropped, 0u);
    EXPECT_EQ(a.stats.corrupt + b.stats.corrupt, 0u);

    // A clean post-chaos worker reads a fully intact cache.
    failpointReset();
    ChaosRun c = runFleetWorker(dir.path(), "c", jobs);
    expectSameResults(c.results, ref);
    EXPECT_EQ(c.last.hits, jobs.size());
    EXPECT_EQ(c.last.computed, 0u);
    EXPECT_EQ(c.stats.corrupt, 0u);
}

TEST_F(ChaosFleetTest, PersistentAppendFailureDegradesToUncached)
{
    std::vector<SweepJob> jobs = cacheTestJobs();
    std::vector<MixRunResult> ref = referenceResults(jobs);

    TempCacheDir dir("chaos_drop");
    failpointConfigure("cache.append=err:EIO@*");
    ChaosRun r = runFleetWorker(dir.path(), "solo", jobs);

    // Nothing persists, but the worker keeps computing uncached and
    // the matrix is still bit-identical.
    expectSameResults(r.results, ref);
    EXPECT_EQ(r.last.computed, jobs.size());
    EXPECT_GT(r.stats.storesDropped, 0u);

    // A later clean worker finds an empty cache (nothing was ever
    // appended) and recomputes the same values.
    failpointReset();
    ChaosRun again = runFleetWorker(dir.path(), "after", jobs);
    expectSameResults(again.results, ref);
    EXPECT_EQ(again.last.computed, jobs.size());
}

TEST_F(ChaosFleetTest, UnusableClaimsDirFallsBackToSolo)
{
    std::vector<SweepJob> jobs = cacheTestJobs();
    std::vector<MixRunResult> ref = referenceResults(jobs);

    TempCacheDir dir("chaos_solo");
    // Block the claims *directory* with a plain file: ClaimStore's
    // create_directories fails, the store reports unusable, and the
    // executor must degrade to solo execution instead of dying.
    std::filesystem::create_directories(dir.path());
    {
        std::ofstream block(dir.path() + "/" + ClaimStore::kSubdir);
        block << "not a directory\n";
    }

    ChaosRun r = runFleetWorker(dir.path(), "stranded", jobs);
    expectSameResults(r.results, ref);
    EXPECT_EQ(r.last.computed, jobs.size());
    EXPECT_EQ(r.stats.soloFallbacks, 1u);
    // Solo still publishes through the cache: a healthy peer joining
    // later gets hits, not recomputes.
    EXPECT_GT(r.stats.stores, 0u);
}

TEST_F(ChaosFleetTest, RandomizedSeededSchedulesStayByteIdentical)
{
    std::vector<SweepJob> jobs = cacheTestJobs();
    std::vector<MixRunResult> ref = referenceResults(jobs);

    // Each seed expands to a different randomized-but-deterministic
    // schedule over the cache/claim sites. These can legally cause
    // duplicate computes (refresh faults hide published records;
    // claim faults disable dedup), so the gate is byte-equality and
    // completion. On failure the trace names the exact schedule —
    // replay with failpointConfigure(<schedule>) or
    // UBIK_FAILPOINTS=random:<seed>.
    for (std::uint64_t seed : {7ull, 1984ull, 31337ull}) {
        failpointConfigure("random:" + std::to_string(seed));
        SCOPED_TRACE("chaos seed " + std::to_string(seed) +
                     " schedule: " + failpointScheduleString());

        TempCacheDir dir(
            ("chaos_rand_" + std::to_string(seed)).c_str());
        ChaosRun a, b;
        std::thread ta(
            [&] { a = runFleetWorker(dir.path(), "a", jobs); });
        std::thread tb(
            [&] { b = runFleetWorker(dir.path(), "b", jobs); });
        ta.join();
        tb.join();

        expectSameResults(a.results, ref);
        expectSameResults(b.results, ref);
        // Every slot was filled exactly once per worker's view.
        EXPECT_EQ(a.last.done, jobs.size());
        EXPECT_EQ(b.last.done, jobs.size());
    }
}
