/**
 * @file
 * Golden equivalence for the scenario redesign: running fig9 through
 * the registry (`ubik_run fig9` / the rewritten bench wrapper) must
 * produce MixRunResults bit-identical to the pre-refactor sweep
 * path — paperSchemes over the standard mix matrix, pushed directly
 * through MixRunner + ParallelSweep, exactly the loops
 * bench/fig9_schemes.cpp ran before scenarios existed. Also pins the
 * report-time lo/hi split: filtering on structured load metadata
 * partitions the runs the same way the legacy name-substring split
 * did, without dropping or duplicating a run.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/parallel_sweep.h"
#include "sim/scenario.h"
#include "support/cache_test_util.h"

namespace ubik {
namespace {

ExperimentConfig
goldenCfg()
{
    ExperimentConfig cfg;
    cfg.scale = 16.0; // extra small for test runs
    cfg.roiRequests = 20;
    cfg.warmupRequests = 5;
    cfg.seeds = 1;
    cfg.mixesPerLc = 1;
    cfg.jobs = 2;
    return cfg;
}

TEST(ScenarioGolden, Fig9RegistryMatchesLegacySweepBitExactly)
{
    ExperimentConfig cfg = goldenCfg();

    // The pre-refactor fig9 path, verbatim: build the scheme table
    // and the standard matrix, expand the scheme x mix x seed jobs,
    // and run them through the engine.
    std::vector<SchemeUnderTest> schemes = paperSchemes(0.05);
    std::vector<MixSpec> mixes =
        buildMixes(2, /*seed=*/1, cfg.mixesPerLc);
    MixRunner runner(cfg, /*out_of_order=*/true);
    ParallelSweep engine(runner, cfg.jobs);
    std::vector<MixRunResult> legacy =
        engine.run(buildSweepJobs(schemes, mixes, cfg.seeds));
    ASSERT_EQ(legacy.size(),
              schemes.size() * mixes.size() * cfg.seeds);

    // The registry path.
    const ScenarioSpec *spec =
        ScenarioRegistry::instance().find("fig9");
    ASSERT_NE(spec, nullptr);
    ScenarioResult res = runScenario(*spec, cfg);
    ASSERT_EQ(res.sweeps.size(), schemes.size());

    // Same schemes, same mixes, same order, same bits.
    std::vector<MixRunResult> flat;
    for (std::size_t s = 0; s < res.sweeps.size(); s++) {
        EXPECT_EQ(res.sweeps[s].label, schemes[s].label);
        ASSERT_EQ(res.sweeps[s].runs.size(),
                  mixes.size() * cfg.seeds);
        for (std::size_t i = 0; i < res.sweeps[s].runs.size(); i++) {
            EXPECT_EQ(res.sweeps[s].mixNames[i],
                      mixes[i / cfg.seeds].name);
            flat.push_back(res.sweeps[s].runs[i]);
        }
    }
    test::expectSameResults(legacy, flat);
}

TEST(ScenarioGolden, LoadSplitMatchesLegacyNameSubstringSplit)
{
    // fig9's report blocks split lo/hi on MixSpec load metadata; the
    // legacy bench split on name.find("-lo/"). Both must partition
    // the matrix identically (every run in exactly one band).
    ExperimentConfig cfg = goldenCfg();
    const ScenarioSpec &spec =
        *ScenarioRegistry::instance().find("fig9");
    std::vector<MixSpec> mixes = buildScenarioMixes(spec, cfg);

    SweepResult sweep;
    sweep.label = "meta";
    for (const MixSpec &m : mixes) {
        sweep.runs.emplace_back();
        sweep.mixNames.push_back(m.name);
        sweep.mixLoads.push_back(m.lc.load);
        sweep.seeds.push_back(1);
    }
    auto low = filterByLoad({sweep}, LoadBand::Low).front();
    auto high = filterByLoad({sweep}, LoadBand::High).front();
    EXPECT_EQ(low.runs.size() + high.runs.size(),
              sweep.runs.size());
    for (const std::string &n : low.mixNames)
        EXPECT_NE(n.find("-lo/"), std::string::npos) << n;
    for (const std::string &n : high.mixNames)
        EXPECT_NE(n.find("-hi/"), std::string::npos) << n;
    EXPECT_FALSE(low.runs.empty());
    EXPECT_FALSE(high.runs.empty());
}

} // namespace
} // namespace ubik
