/**
 * @file
 * Cross-module property tests: invariants that must hold for every
 * (policy, scheme, array, workload) combination the evaluation
 * exercises. These are the guard rails behind the figure benches —
 * conservation of cache space, partition-size accounting, ROI
 * accounting, and policy-independent determinism.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "cache/vantage.h"
#include "sim/cmp.h"
#include "workload/lc_app.h"
#include "workload/mix.h"

namespace ubik {
namespace {

struct RunSetup
{
    PolicyKind policy;
    SchemeKind scheme;
    ArrayKind array;
    const char *lcApp;
    BatchClass batchClass;
};

class FullStackInvariants : public ::testing::TestWithParam<RunSetup>
{
  protected:
    CmpConfig cfg_;
    std::unique_ptr<Cmp> cmp_;

    void
    SetUp() override
    {
        const RunSetup &s = GetParam();
        cfg_.llcLines = 24576;
        cfg_.privateLinesPerCore = 4096;
        cfg_.reconfigInterval = 2000000;
        cfg_.policy = s.policy;
        cfg_.scheme = s.scheme;
        cfg_.array = s.array;
        cfg_.slack = s.policy == PolicyKind::Ubik ? 0.05 : 0.0;

        LcAppSpec lc;
        lc.params = lc_presets::byName(s.lcApp).scaled(8.0);
        lc.meanInterarrival = 350000;
        lc.roiRequests = 30;
        lc.warmupRequests = 8;
        lc.targetLines = 4096;
        lc.deadline = 250000;
        BatchAppSpec b1, b2;
        b1.params =
            batch_presets::make(s.batchClass, 1).scaled(8.0);
        b2.params =
            batch_presets::make(BatchClass::Friendly, 5).scaled(8.0);
        cmp_ = std::make_unique<Cmp>(cfg_, std::vector{lc, lc},
                                     std::vector{b1, b2}, 77);
        cmp_->run();
    }
};

TEST_P(FullStackInvariants, EveryLcInstanceCompletesItsRoi)
{
    for (std::uint32_t i = 0; i < 2; i++) {
        EXPECT_EQ(cmp_->lcResult(i).latencies.count(), 30u);
        EXPECT_GT(cmp_->lcResult(i).roiEndCycle, 0u);
    }
}

TEST_P(FullStackInvariants, ResidencyNeverExceedsCapacity)
{
    PartitionScheme &s = cmp_->scheme();
    std::uint64_t resident = 0;
    for (std::uint64_t slot = 0; slot < s.array().numLines(); slot++)
        resident += s.array().validAt(slot) ? 1 : 0;
    EXPECT_LE(resident, s.array().numLines());
    // Per-partition actual sizes must sum to exactly the residents.
    std::uint64_t sum = 0;
    for (PartId p = 0; p < s.numPartitions(); p++)
        sum += s.actualSize(p);
    EXPECT_EQ(sum, resident);
}

TEST_P(FullStackInvariants, OwnerCountsSumToResidency)
{
    PartitionScheme &s = cmp_->scheme();
    std::uint64_t resident = 0;
    for (std::uint64_t slot = 0; slot < s.array().numLines(); slot++)
        resident += s.array().validAt(slot) ? 1 : 0;
    std::uint64_t owners = 0;
    for (AppId a = 0; a < s.numPartitions(); a++)
        owners += s.ownerLines(a);
    EXPECT_EQ(owners, resident);
}

TEST_P(FullStackInvariants, AccessAccountingConsistent)
{
    PartitionScheme &s = cmp_->scheme();
    std::uint64_t acc = 0, miss = 0;
    for (PartId p = 0; p < s.numPartitions(); p++) {
        acc += s.accesses(p);
        miss += s.misses(p);
        EXPECT_LE(s.misses(p), s.accesses(p));
    }
    std::uint64_t app_acc = 0, app_miss = 0;
    for (std::uint32_t i = 0; i < 2; i++) {
        app_acc += cmp_->lcResult(i).accesses;
        app_miss += cmp_->lcResult(i).misses;
    }
    for (std::uint32_t i = 0; i < 2; i++) {
        app_acc += cmp_->batchResult(i).accesses;
        app_miss += cmp_->batchResult(i).misses;
    }
    EXPECT_EQ(acc, app_acc);
    EXPECT_EQ(miss, app_miss);
}

TEST_P(FullStackInvariants, LatenciesAreAtLeastServiceTimes)
{
    for (std::uint32_t i = 0; i < 2; i++) {
        const LcResult &r = cmp_->lcResult(i);
        EXPECT_GE(r.latencies.mean(), r.serviceTimes.mean());
        EXPECT_GE(r.latencies.tailMean(95.0),
                  r.serviceTimes.mean());
    }
}

TEST_P(FullStackInvariants, BatchMakesForwardProgress)
{
    for (std::uint32_t i = 0; i < 2; i++) {
        EXPECT_GT(cmp_->batchResult(i).ipc(), 0.01);
        EXPECT_LT(cmp_->batchResult(i).ipc(), 2.0);
    }
}

TEST_P(FullStackInvariants, DeterministicReplay)
{
    const RunSetup &s = GetParam();
    CmpConfig cfg = cfg_;
    LcAppSpec lc;
    lc.params = lc_presets::byName(s.lcApp).scaled(8.0);
    lc.meanInterarrival = 350000;
    lc.roiRequests = 30;
    lc.warmupRequests = 8;
    lc.targetLines = 4096;
    lc.deadline = 250000;
    BatchAppSpec b1, b2;
    b1.params = batch_presets::make(s.batchClass, 1).scaled(8.0);
    b2.params = batch_presets::make(BatchClass::Friendly, 5).scaled(8.0);
    Cmp replay(cfg, {lc, lc}, {b1, b2}, 77);
    replay.run();
    EXPECT_EQ(replay.now(), cmp_->now());
    for (std::uint32_t i = 0; i < 2; i++)
        EXPECT_DOUBLE_EQ(replay.lcResult(i).latencies.mean(),
                         cmp_->lcResult(i).latencies.mean());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FullStackInvariants,
    ::testing::Values(
        RunSetup{PolicyKind::Lru, SchemeKind::SharedLru,
                 ArrayKind::Z4_52, "specjbb", BatchClass::Streaming},
        RunSetup{PolicyKind::Ucp, SchemeKind::Vantage,
                 ArrayKind::Z4_52, "masstree", BatchClass::Friendly},
        RunSetup{PolicyKind::OnOff, SchemeKind::Vantage,
                 ArrayKind::Z4_52, "shore", BatchClass::Fitting},
        RunSetup{PolicyKind::StaticLc, SchemeKind::Vantage,
                 ArrayKind::SA64, "xapian", BatchClass::Insensitive},
        RunSetup{PolicyKind::Ubik, SchemeKind::Vantage,
                 ArrayKind::Z4_52, "specjbb", BatchClass::Streaming},
        RunSetup{PolicyKind::Ubik, SchemeKind::Vantage,
                 ArrayKind::SA16, "moses", BatchClass::Friendly},
        RunSetup{PolicyKind::Ubik, SchemeKind::WayPart,
                 ArrayKind::SA16, "specjbb", BatchClass::Friendly},
        RunSetup{PolicyKind::Ubik, SchemeKind::WayPart,
                 ArrayKind::SA64, "masstree", BatchClass::Fitting}));

/** Vantage-specific guarantee, checked through a whole Cmp run. */
TEST(VantageEndToEnd, ZCacheKeepsGuaranteeViolationsNegligible)
{
    CmpConfig cfg;
    cfg.llcLines = 24576;
    cfg.privateLinesPerCore = 4096;
    cfg.reconfigInterval = 2000000;
    cfg.policy = PolicyKind::Ubik;
    cfg.slack = 0.05;
    LcAppSpec lc;
    lc.params = lc_presets::specjbb().scaled(8.0);
    lc.meanInterarrival = 350000;
    lc.roiRequests = 40;
    lc.warmupRequests = 10;
    lc.targetLines = 4096;
    lc.deadline = 250000;
    BatchAppSpec b;
    b.params = batch_presets::make(BatchClass::Streaming, 3).scaled(8.0);
    Cmp cmp(cfg, {lc, lc}, {b, b}, 5);
    cmp.run();
    auto &v = dynamic_cast<Vantage &>(cmp.scheme());
    double total_acc = 0;
    for (PartId p = 0; p < v.numPartitions(); p++)
        total_acc += static_cast<double>(v.accesses(p));
    EXPECT_LT(static_cast<double>(v.underTargetEvictions()),
              0.002 * total_acc);
}

} // namespace
} // namespace ubik
