/**
 * @file
 * Replay-fidelity golden tests: the capture -> serialize -> stream ->
 * replay pipeline must be *invisible* to the simulator.
 *
 * The strong form: a mix whose three LC instances replay traces
 * captured with the exact per-core RNGs the mix Cmp would construct
 * (Cmp::appRng over MixRunner::mixCmpSeed) produces a MixRunResult
 * bit-identical to simulating the synthetic preset directly — every
 * double compared by bit pattern, not tolerance. This holds because
 * capture issues the simulator's 1-based request ids, traces replay
 * in capture order, and instance-i replay shifts addresses by
 * (i << 40), landing exactly on instance i's generated layout.
 *
 * The transport form: how the trace got into memory (whole-file
 * readTrace, streamed TraceReader at any batch size, prefetch thread
 * on or off, v1 or v2 encoding) never changes the replayed result.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "sim/cmp.h"
#include "sim/mix_runner.h"
#include "trace/access_trace.h"
#include "workload/mix.h"
#include "workload/trace_app.h"
#include "workload/trace_capture.h"

namespace ubik {
namespace {

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

void
expectBitEqual(double a, double b, const char *what)
{
    std::uint64_t ba, bb;
    std::memcpy(&ba, &a, sizeof(ba));
    std::memcpy(&bb, &b, sizeof(bb));
    EXPECT_EQ(ba, bb) << what << ": " << a << " vs " << b;
}

void
expectIdenticalResults(const MixRunResult &a, const MixRunResult &b)
{
    expectBitEqual(a.lcTailMean, b.lcTailMean, "lcTailMean");
    expectBitEqual(a.tailDegradation, b.tailDegradation,
                   "tailDegradation");
    expectBitEqual(a.meanDegradation, b.meanDegradation,
                   "meanDegradation");
    expectBitEqual(a.weightedSpeedup, b.weightedSpeedup,
                   "weightedSpeedup");
    ASSERT_EQ(a.batchSpeedups.size(), b.batchSpeedups.size());
    for (std::size_t i = 0; i < a.batchSpeedups.size(); i++)
        expectBitEqual(a.batchSpeedups[i], b.batchSpeedups[i],
                       "batchSpeedup");
    EXPECT_EQ(a.ubikDeboosts, b.ubikDeboosts);
    EXPECT_EQ(a.ubikDeadlineDeboosts, b.ubikDeadlineDeboosts);
    EXPECT_EQ(a.ubikWatermarks, b.ubikWatermarks);
}

struct TraceFidelity : public ::testing::Test
{
    ExperimentConfig cfg;
    MixSpec spec;
    SchemeUnderTest sut;
    std::uint64_t seed = 3;

    void
    SetUp() override
    {
        cfg = ExperimentConfig{}; // ignore UBIK_* env for stability
        cfg.scale = 16.0;
        cfg.roiRequests = 25;
        cfg.warmupRequests = 8;

        spec.name = "fidelity";
        spec.lc.app = lc_presets::specjbb();
        spec.lc.load = 0.2;
        spec.batch.name = "fts";
        spec.batch.apps[0] =
            batch_presets::make(BatchClass::Friendly, 1);
        spec.batch.apps[1] =
            batch_presets::make(BatchClass::Fitting, 2);
        spec.batch.apps[2] =
            batch_presets::make(BatchClass::Streaming, 3);

        sut.label = "Ubik";
        sut.scheme = SchemeKind::Vantage;
        sut.array = ArrayKind::Z4_52;
        sut.policy = PolicyKind::Ubik;
        sut.slack = 0.05;
    }

    /** Capture what mix core `c` would generate, as TraceData. */
    TraceData
    captureInstance(std::uint32_t c, std::uint64_t requests) const
    {
        LcAppParams scaled = spec.lc.app.scaled(cfg.scale);
        return captureLcTrace(
            scaled, requests,
            Cmp::appRng(MixRunner::mixCmpSeed(seed), c),
            /*instance=*/0);
    }
};

TEST_F(TraceFidelity, TracedMixBitIdenticalToDirectSimulation)
{
    MixRunner runner(cfg);
    MixRunResult direct = runner.runMix(spec, sut, seed);

    // Generous capture: the mix may start requests beyond warmup+ROI
    // while other cores drain; replay must never wrap.
    std::uint64_t requests =
        (cfg.warmupRequests + cfg.roiRequests) * 8;

    MixSpec traced = spec;
    for (std::uint32_t c = 0; c < 3; c++) {
        // Full pipeline per instance: capture -> v2 file -> streamed
        // load -> TraceApp.
        std::string path =
            tmpPath("fidelity_i" + std::to_string(c) + ".ubtr");
        writeTrace(captureInstance(c, requests), path);
        traced.lc.traces.push_back(TraceApp::load(path));
    }

    MixRunResult replayed = runner.runMix(traced, sut, seed);
    expectIdenticalResults(direct, replayed);
}

TEST_F(TraceFidelity, IngestionTransportNeverChangesResults)
{
    std::uint64_t requests =
        (cfg.warmupRequests + cfg.roiRequests) * 8;
    TraceData td = captureInstance(0, requests);

    std::string v1 = tmpPath("transport.v1.ubtr");
    std::string v2 = tmpPath("transport.v2.ubtr");
    writeTrace(td, v1, TraceWriterOptions{1, 64 << 10});
    writeTrace(td, v2);

    // One shared trace for all three instances (the normal user
    // workflow), loaded five different ways.
    auto runWith = [&](std::shared_ptr<const TraceApp> app) {
        MixRunner runner(cfg);
        MixSpec traced = spec;
        traced.lc.traces.push_back(std::move(app));
        return runner.runMix(traced, sut, seed);
    };

    MixRunResult ref = runWith(
        TraceApp::fromData(std::make_shared<TraceData>(td), "mem"));

    MixRunResult fromV1 = runWith(TraceApp::load(v1));
    expectIdenticalResults(ref, fromV1);

    MixRunResult fromV2 = runWith(TraceApp::load(v2));
    expectIdenticalResults(ref, fromV2);

    TraceReaderOptions tiny;
    tiny.batchRecords = 257;
    tiny.prefetch = false;
    MixRunResult tinySync = runWith(TraceApp::load(v2, "", tiny));
    expectIdenticalResults(ref, tinySync);

    tiny.prefetch = true;
    MixRunResult tinyPre = runWith(TraceApp::load(v2, "", tiny));
    expectIdenticalResults(ref, tinyPre);
}

TEST_F(TraceFidelity, PerInstanceTraceAssignmentEntersCacheKey)
{
    // Same mix, different trace backing -> different canonical keys;
    // identical records via different encodings -> the same key.
    std::uint64_t requests = 32;
    TraceData td = captureInstance(0, requests);
    std::string v1 = tmpPath("key.v1.ubtr");
    std::string v2 = tmpPath("key.v2.ubtr");
    writeTrace(td, v1, TraceWriterOptions{1, 64 << 10});
    writeTrace(td, v2);

    EXPECT_EQ(TraceApp::load(v1)->contentHash(),
              TraceApp::load(v2)->contentHash());

    TraceData other = captureInstance(1, requests);
    EXPECT_NE(TraceApp::fromData(
                  std::make_shared<TraceData>(other), "o")
                  ->contentHash(),
              TraceApp::load(v1)->contentHash());
}

TEST_F(TraceFidelity, RunMixRejectsBadTraceCount)
{
    MixSpec bad = spec;
    TraceData td = captureInstance(0, 8);
    bad.lc.traces.push_back(
        TraceApp::fromData(std::make_shared<TraceData>(td), "a"));
    bad.lc.traces.push_back(
        TraceApp::fromData(std::make_shared<TraceData>(td), "b"));
    MixRunner runner(cfg);
    EXPECT_DEATH(runner.runMix(bad, sut, seed),
                 "0, 1, or 3 traces");
}

} // namespace
} // namespace ubik
