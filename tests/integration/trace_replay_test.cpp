/**
 * @file
 * Integration tests for trace replay inside the full simulator: an
 * LcApp bound to a captured trace must feed Cmp the recorded request
 * structure and access stream, complete a run under every policy,
 * and show the same qualitative QoS behaviour as the generator it
 * was captured from (replay carries the inertia signal, so OnOff
 * hurts it and StaticLC/Ubik protect it).
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/cmp.h"
#include "sim/experiment.h"
#include "trace/trace_analyzer.h"
#include "workload/trace_capture.h"

namespace ubik {
namespace {

struct TraceReplay : public ::testing::Test
{
    ExperimentConfig cfg;
    std::shared_ptr<TraceData> trace;
    LcAppParams params;

    void
    SetUp() override
    {
        cfg.scale = 8.0;
        cfg.roiRequests = 30;
        cfg.warmupRequests = 10;
        params = lc_presets::specjbb().scaled(cfg.scale);
        trace = std::make_shared<TraceData>(
            captureLcTrace(params, 60, /*seed=*/21));
    }

    Cmp
    makeCmp(PolicyKind policy, bool replay)
    {
        CmpConfig cc = cfg.baseCmpConfig();
        cc.policy = policy;
        if (policy == PolicyKind::Lru)
            cc.scheme = SchemeKind::SharedLru;
        std::vector<LcAppSpec> lc(3);
        for (auto &s : lc) {
            s.params = params;
            if (replay)
                s.trace = trace;
            s.meanInterarrival = 2e6;
            s.roiRequests = cfg.roiRequests;
            s.warmupRequests = cfg.warmupRequests;
            s.targetLines = cfg.privateLines();
            s.deadline = 3000000;
        }
        std::vector<BatchAppSpec> batch(3);
        batch[0].params =
            batch_presets::make(BatchClass::Friendly, 1)
                .scaled(cfg.scale);
        batch[1].params =
            batch_presets::make(BatchClass::Friendly, 7)
                .scaled(cfg.scale);
        batch[2].params =
            batch_presets::make(BatchClass::Streaming, 2)
                .scaled(cfg.scale);
        return Cmp(cc, lc, batch, /*seed=*/77);
    }
};

TEST_F(TraceReplay, CompletesAllRequestsUnderEveryPolicy)
{
    for (PolicyKind p :
         {PolicyKind::Lru, PolicyKind::Ucp, PolicyKind::StaticLc,
          PolicyKind::OnOff, PolicyKind::Ubik}) {
        Cmp cmp = makeCmp(p, /*replay=*/true);
        cmp.run();
        for (std::uint32_t i = 0; i < 3; i++)
            EXPECT_EQ(cmp.lcResult(i).latencies.count(),
                      cfg.roiRequests)
                << policyKindName(p) << " instance " << i;
    }
}

TEST_F(TraceReplay, ReplayMatchesGeneratorStatistics)
{
    // The replayed stream is the recorded stream: APKI and miss
    // behaviour under the same policy must track the live generator
    // closely (not exactly: request *selection* differs because
    // warmup consumes trace requests cyclically).
    Cmp live = makeCmp(PolicyKind::StaticLc, /*replay=*/false);
    live.run();
    Cmp replay = makeCmp(PolicyKind::StaticLc, /*replay=*/true);
    replay.run();
    double live_apki = live.lcResult(0).apki();
    double replay_apki = replay.lcResult(0).apki();
    EXPECT_NEAR(replay_apki, live_apki, live_apki * 0.25);

    double live_miss =
        static_cast<double>(live.lcResult(0).misses) /
        static_cast<double>(live.lcResult(0).accesses);
    double replay_miss =
        static_cast<double>(replay.lcResult(0).misses) /
        static_cast<double>(replay.lcResult(0).accesses);
    EXPECT_NEAR(replay_miss, live_miss, 0.15);
}

TEST_F(TraceReplay, ReplayPreservesInertiaSignal)
{
    // Cross-request reuse survives the capture/replay roundtrip, so
    // the QoS ordering holds: OnOff (which drops the working set on
    // every idle) degrades the replayed app's tail more than Ubik.
    Cmp onoff = makeCmp(PolicyKind::OnOff, /*replay=*/true);
    onoff.run();
    Cmp ubik = makeCmp(PolicyKind::Ubik, /*replay=*/true);
    ubik.run();

    LatencyRecorder on_merged, ubik_merged;
    for (std::uint32_t i = 0; i < 3; i++) {
        on_merged.merge(onoff.lcResult(i).latencies);
        ubik_merged.merge(ubik.lcResult(i).latencies);
    }
    EXPECT_GT(on_merged.tailMean(95.0), ubik_merged.tailMean(95.0));
}

TEST_F(TraceReplay, InstancesReplayDisjointAddressSpaces)
{
    // Three instances of the same trace must not share cache lines:
    // with StaticLC partitions their miss counts are near-identical
    // (same stream, same partition size) rather than collapsing to
    // zero via cross-instance sharing.
    Cmp cmp = makeCmp(PolicyKind::StaticLc, /*replay=*/true);
    cmp.run();
    std::uint64_t m0 = cmp.lcResult(0).misses;
    for (std::uint32_t i = 1; i < 3; i++) {
        EXPECT_GT(cmp.lcResult(i).misses, m0 / 2);
        EXPECT_LT(cmp.lcResult(i).misses, m0 * 2);
    }
}

TEST(TraceReplayUnit, LcAppReplaysRecordedStreamVerbatim)
{
    LcAppParams params = lc_presets::masstree().scaled(16.0);
    auto trace = std::make_shared<TraceData>(
        captureLcTrace(params, 10, /*seed=*/5));

    // Instance 0 carries a zero address salt: the replayed stream is
    // byte-for-byte the captured one (the fidelity contract).
    LcApp app(params, /*instance=*/0, Rng(99));
    app.bindTrace(trace);
    EXPECT_TRUE(app.replaying());
    for (ReqId r = 0; r < 10; r++) {
        double work = app.startRequest(r + 1);
        EXPECT_DOUBLE_EQ(work, trace->requestWork[r]);
        std::uint64_t n = app.requestAccesses(work);
        EXPECT_EQ(n, trace->accessesOf(r));
        for (std::uint64_t i = 0; i < n; i++)
            EXPECT_EQ(app.nextAddr(),
                      trace->accesses[trace->requestStart[r] + i]);
    }
}

TEST(TraceReplayUnit, LaterInstancesReplayWithDisjointSalt)
{
    LcAppParams params = lc_presets::masstree().scaled(16.0);
    auto trace = std::make_shared<TraceData>(
        captureLcTrace(params, 3, /*seed=*/5));
    LcApp app(params, /*instance=*/2, Rng(99));
    app.bindTrace(trace);
    double work = app.startRequest(1);
    std::uint64_t n = app.requestAccesses(work);
    ASSERT_GT(n, 0u);
    EXPECT_EQ(app.nextAddr(),
              trace->accesses[0] + (static_cast<Addr>(2) << 40));
}

TEST(TraceReplayUnit, ReplayLoopsPastTraceEnd)
{
    LcAppParams params = lc_presets::masstree().scaled(16.0);
    auto trace = std::make_shared<TraceData>(
        captureLcTrace(params, 5, /*seed=*/5));
    LcApp app(params, 0, Rng(99));
    app.bindTrace(trace);
    // Replay follows capture order no matter what ids the caller
    // uses: the 8th startRequest wraps to trace request 7 % 5 = 2.
    double work = 0;
    for (ReqId r = 1; r <= 8; r++) {
        work = app.startRequest(r);
        std::uint64_t n = app.requestAccesses(work);
        for (std::uint64_t i = 0; i < n; i++)
            app.nextAddr();
    }
    EXPECT_DOUBLE_EQ(work, trace->requestWork[2]);
}

TEST(TraceReplayUnitDeath, RejectsEmptyTrace)
{
    LcAppParams params = lc_presets::masstree().scaled(16.0);
    LcApp app(params, 0, Rng(1));
    EXPECT_DEATH(app.bindTrace(std::make_shared<TraceData>()),
                 "no requests");
}

} // namespace
} // namespace ubik
