/**
 * @file
 * Failure-injection and edge-case tests: adversarial configurations
 * a downstream user will eventually feed the simulator. Each test
 * documents the intended behavior — run to completion with sane
 * metrics, or fail fast with a clear fatal() — never hang, crash, or
 * corrupt results.
 */

#include <gtest/gtest.h>

#include "sim/cmp.h"
#include "workload/batch_app.h"
#include "workload/lc_app.h"

namespace ubik {
namespace {

CmpConfig
smallCfg(PolicyKind policy = PolicyKind::Ubik)
{
    CmpConfig cfg;
    cfg.llcLines = 24576;
    cfg.privateLinesPerCore = 4096;
    cfg.reconfigInterval = 2000000;
    cfg.policy = policy;
    cfg.slack = 0.05;
    return cfg;
}

LcAppSpec
lcSpec(std::uint64_t target = 4096, Cycles deadline = msToCycles(1.0))
{
    LcAppSpec spec;
    spec.params = lc_presets::specjbb().scaled(8.0);
    spec.meanInterarrival = 0;
    spec.roiRequests = 30;
    spec.warmupRequests = 5;
    spec.targetLines = target;
    spec.deadline = deadline;
    return spec;
}

std::vector<BatchAppSpec>
someBatch(int n)
{
    std::vector<BatchAppSpec> batch;
    for (int i = 0; i < n; i++) {
        BatchAppSpec b;
        b.params = batch_presets::make(
                       static_cast<BatchClass>(i % 4),
                       static_cast<std::uint32_t>(i))
                       .scaled(8.0);
        batch.push_back(b);
    }
    return batch;
}

TEST(FailureInjection, ZeroDeadlineFallsBackToStaticBehavior)
{
    // Deadline 0 makes every Ubik downsizing option infeasible; the
    // app must keep its target allocation and still complete.
    CmpConfig cfg = smallCfg();
    Cmp cmp(cfg, {lcSpec(4096, 0)}, someBatch(2), 1);
    cmp.run();
    EXPECT_EQ(cmp.lcResult(0).latencies.count(), 30u);
}

TEST(FailureInjection, AbsurdlyLongDeadlineIsSafe)
{
    CmpConfig cfg = smallCfg();
    Cmp cmp(cfg, {lcSpec(4096, msToCycles(10000.0))}, someBatch(2), 1);
    cmp.run();
    EXPECT_EQ(cmp.lcResult(0).latencies.count(), 30u);
}

TEST(FailureInjection, TargetEqualToWholeCacheStillRuns)
{
    // The LC target swallows the entire LLC; batch apps must still
    // make progress (policies keep a minimum bucket per partition).
    CmpConfig cfg = smallCfg();
    Cmp cmp(cfg, {lcSpec(24576)}, someBatch(2), 2);
    cmp.run();
    EXPECT_EQ(cmp.lcResult(0).latencies.count(), 30u);
    EXPECT_GT(cmp.batchResult(0).roiInstructions, 0u);
    EXPECT_GT(cmp.batchResult(1).roiInstructions, 0u);
}

TEST(FailureInjection, SingleLcAppAloneUnderEveryPolicy)
{
    for (PolicyKind policy :
         {PolicyKind::Lru, PolicyKind::Ucp, PolicyKind::StaticLc,
          PolicyKind::OnOff, PolicyKind::Ubik, PolicyKind::Feedback}) {
        CmpConfig cfg = smallCfg(policy);
        Cmp cmp(cfg, {lcSpec()}, {}, 3);
        cmp.run();
        EXPECT_EQ(cmp.lcResult(0).latencies.count(), 30u)
            << policyKindName(policy);
    }
}

TEST(FailureInjection, BatchOnlyMixUnderUcp)
{
    CmpConfig cfg = smallCfg(PolicyKind::Ucp);
    Cmp cmp(cfg, {}, someBatch(3), 4);
    cmp.run();
    for (std::uint32_t i = 0; i < 3; i++)
        EXPECT_GT(cmp.batchResult(i).ipc(), 0.0);
}

TEST(FailureInjection, OverloadedServerStillTerminates)
{
    // Offered load far beyond capacity: the queue grows, latencies
    // blow up, but the fixed-work run still completes and queueing
    // delay dominates service time.
    CmpConfig cfg = smallCfg();
    LcAppSpec spec = lcSpec();
    spec.meanInterarrival = 1000; // absurdly fast arrivals
    Cmp cmp(cfg, {spec}, someBatch(2), 5);
    cmp.run();
    EXPECT_EQ(cmp.lcResult(0).latencies.count(), 30u);
    EXPECT_GT(cmp.lcResult(0).latencies.mean(),
              2.0 * cmp.lcResult(0).serviceTimes.mean());
}

TEST(FailureInjection, TinyCacheDoesNotUnderflow)
{
    CmpConfig cfg = smallCfg();
    cfg.llcLines = 1024; // 64KB: smaller than any working set
    Cmp cmp(cfg, {lcSpec(256)}, someBatch(2), 6);
    cmp.run();
    EXPECT_EQ(cmp.lcResult(0).latencies.count(), 30u);
    // Everything misses a lot, but accounting stays consistent.
    EXPECT_LE(cmp.lcResult(0).misses, cmp.lcResult(0).accesses);
}

TEST(FailureInjection, MaxCyclesCapStopsRunawayRuns)
{
    CmpConfig cfg = smallCfg();
    cfg.maxCycles = 100000; // far too short to finish
    LcAppSpec spec = lcSpec();
    spec.roiRequests = 100000;
    Cmp cmp(cfg, {spec}, someBatch(2), 7);
    cmp.run(); // must return (with a warning), not spin forever
    EXPECT_LE(cmp.now(), 100000u + cfg.reconfigInterval);
    EXPECT_LT(cmp.lcResult(0).latencies.count(), 100000u);
}

TEST(FailureInjection, ExtremeButLegalSlackStaysWithinCache)
{
    CmpConfig cfg = smallCfg();
    cfg.slack = 0.9; // far beyond the paper's 10%, still legal
    Cmp cmp(cfg, {lcSpec()}, someBatch(2), 8);
    cmp.run();
    EXPECT_EQ(cmp.lcResult(0).latencies.count(), 30u);
}

TEST(FailureInjection, SlackOfOneOrMoreIsFatal)
{
    // 100% slack would mean "any tail is fine" — the controller's
    // math divides by (1 - slack), so reject it loudly.
    CmpConfig cfg = smallCfg();
    cfg.slack = 1.0;
    EXPECT_EXIT(Cmp(cfg, {lcSpec()}, someBatch(2), 8),
                testing::ExitedWithCode(1), "slack");
}

TEST(FailureInjection, WayPartitioningOnZCacheIsFatal)
{
    CmpConfig cfg = smallCfg();
    cfg.scheme = SchemeKind::WayPart;
    cfg.array = ArrayKind::Z4_52;
    EXPECT_EXIT(Cmp(cfg, {lcSpec()}, someBatch(2), 9),
                testing::ExitedWithCode(1), "way-partitioning");
}

TEST(FailureInjection, EmptyMixIsRejected)
{
    CmpConfig cfg = smallCfg();
    EXPECT_DEATH(Cmp(cfg, {}, {}, 10), "assert");
}

TEST(FailureInjection, ClosedLoopIgnoresCoalescing)
{
    // Closed-loop apps never idle, so the interrupt-coalescing path
    // must not add latency or deadlock the event loop.
    CmpConfig cfg = smallCfg();
    cfg.coalesceCycles = 1000000000; // pathological timeout
    Cmp cmp(cfg, {lcSpec()}, someBatch(2), 11);
    cmp.run();
    EXPECT_NEAR(cmp.lcResult(0).latencies.mean(),
                cmp.lcResult(0).serviceTimes.mean(), 1.0);
}

TEST(FailureInjection, AllLcMixUnderUbik)
{
    // Six LC instances, no batch apps: boost caps must prevent the
    // LC apps from starving each other.
    CmpConfig cfg = smallCfg();
    std::vector<LcAppSpec> lcs(6, lcSpec(4096));
    Cmp cmp(cfg, lcs, {}, 12);
    cmp.run();
    for (std::uint32_t i = 0; i < 6; i++)
        EXPECT_EQ(cmp.lcResult(i).latencies.count(), 30u);
}

TEST(FailureInjection, ReconfigIntervalLongerThanRun)
{
    // The policy never reconfigures after construction; initial
    // conservative targets must carry the whole run.
    CmpConfig cfg = smallCfg();
    cfg.reconfigInterval = static_cast<Cycles>(1) << 60;
    Cmp cmp(cfg, {lcSpec()}, someBatch(2), 13);
    cmp.run();
    EXPECT_EQ(cmp.lcResult(0).latencies.count(), 30u);
}

} // namespace
} // namespace ubik
