/**
 * @file
 * Cross-validation: the UMON's sampled, way-granular miss-curve
 * estimate against the trace analyzer's exact stack-distance curve
 * on the same address stream. This is the accuracy claim the whole
 * control stack rests on — UCP's Lookahead, Ubik's TransientModel,
 * and the cost-benefit analysis all consume UMON curves as if they
 * were the real thing (the paper leans on UCP's published UMON
 * error bounds; here we measure ours directly).
 *
 * Parameterized across workload shapes; the tolerance reflects the
 * two structural error sources the design accepts: set sampling
 * noise and way-granularity smearing of sharp cliffs (DESIGN.md §7).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>

#include "mon/umon.h"
#include "trace/trace_analyzer.h"
#include "workload/trace_capture.h"
#include "common/rng.h"

namespace ubik {
namespace {

// (label, hot lines, zipf theta, accesses)
using Shape = std::tuple<std::string, std::uint64_t, double,
                         std::uint64_t>;

class UmonAccuracy : public ::testing::TestWithParam<Shape>
{
  protected:
    /** Feed the same zipf stream to a Umon and into a TraceData. */
    void
    feed(std::uint64_t cache_lines)
    {
        const auto &[label, hot, theta, n] = GetParam();
        umon_ = std::make_unique<Umon>(cache_lines);
        trace_.requestWork.push_back(static_cast<double>(n));
        trace_.requestStart.push_back(0);
        Rng rng(2024);
        ZipfDistribution zipf(hot, theta);
        for (std::uint64_t i = 0; i < n; i++) {
            Addr a = zipf(rng);
            umon_->access(a);
            trace_.accesses.push_back(a);
        }
    }

    std::unique_ptr<Umon> umon_;
    TraceData trace_;
};

TEST_P(UmonAccuracy, SampledCurveTracksExactCurve)
{
    const std::uint64_t cache_lines = 8192;
    feed(cache_lines);

    MissCurve est = umon_->missCurve(257);
    TraceAnalysis an = analyzeTrace(trace_);

    // Compare miss *ratios* at several sizes. missCurve() already
    // scales sampled counts to the full access stream.
    double total = static_cast<double>(trace_.accesses.size());
    for (double frac : {0.25, 0.5, 0.75, 1.0}) {
        std::uint64_t lines = static_cast<std::uint64_t>(
            frac * static_cast<double>(cache_lines));
        double est_ratio = est.missesAtLines(lines) / total;
        EXPECT_NEAR(est_ratio, an.missRatioAtSize(lines), 0.06)
            << "at " << lines << " lines";
    }
    // And the curve must get the *ordering* right everywhere: the
    // estimate, like the truth, never increases with size.
    for (std::size_t p = 1; p < est.points(); p++)
        EXPECT_LE(est.values()[p], est.values()[p - 1] + 1e-9) << p;
}

TEST_P(UmonAccuracy, ProbeDepthAgreesWithCurveSemantics)
{
    // missesAtAllocation(probe, lines) must be consistent: a probe
    // at depth d misses at any allocation smaller than d ways.
    const std::uint64_t cache_lines = 8192;
    feed(cache_lines);
    std::uint64_t lines_per_way = cache_lines / umon_->ways();
    UmonProbe probe;
    probe.sampled = true;
    probe.depth = 4;
    EXPECT_TRUE(
        umon_->missesAtAllocation(probe, 3 * lines_per_way));
    EXPECT_FALSE(
        umon_->missesAtAllocation(probe, 5 * lines_per_way));
    probe.depth = 0; // UMON miss: misses at every allocation
    EXPECT_TRUE(umon_->missesAtAllocation(probe, cache_lines));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, UmonAccuracy,
    ::testing::Values(
        Shape{"skewed_small", 2048, 1.1, 200000},
        Shape{"skewed_large", 16384, 0.9, 300000},
        Shape{"mild_fit", 6144, 0.6, 300000},
        Shape{"uniform_overflow", 20480, 0.05, 300000}),
    [](const ::testing::TestParamInfo<Shape> &info) {
        return std::get<0>(info.param);
    });

TEST(UmonAccuracy, ExactCurveFromPresetTraceWithinTolerance)
{
    // End-to-end: a real preset stream (masstree, hot+private mix)
    // through both paths.
    LcAppParams p = lc_presets::masstree().scaled(16.0);
    TraceData trace = captureLcTrace(p, 150, /*seed=*/3);
    Umon umon(8192);
    for (Addr a : trace.accesses)
        umon.access(a);
    TraceAnalysis an = analyzeTrace(trace);
    MissCurve est = umon.missCurve(257);
    double total = static_cast<double>(trace.accesses.size());
    for (double frac : {0.5, 1.0}) {
        std::uint64_t lines =
            static_cast<std::uint64_t>(frac * 8192);
        double est_ratio = est.missesAtLines(lines) / total;
        EXPECT_NEAR(est_ratio, an.missRatioAtSize(lines), 0.08)
            << "at " << lines << " lines";
    }
}

} // namespace
} // namespace ubik
