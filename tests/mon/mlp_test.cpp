/**
 * @file
 * Tests for the MLP/CPI-stack profiler deriving Ubik's c and M.
 */

#include <gtest/gtest.h>

#include "mon/mlp_profiler.h"

namespace ubik {
namespace {

IntervalCounters
counters(Cycles cycles, std::uint64_t instr, std::uint64_t acc,
         std::uint64_t miss, Cycles stall)
{
    IntervalCounters c;
    c.cycles = cycles;
    c.instructions = instr;
    c.llcAccesses = acc;
    c.llcMisses = miss;
    c.missStallCycles = stall;
    return c;
}

TEST(MlpProfiler, InvalidUntilFirstInterval)
{
    MlpProfiler p;
    EXPECT_FALSE(p.profile().valid);
    EXPECT_DOUBLE_EQ(p.profile().missPenalty, 200.0); // default M
}

TEST(MlpProfiler, DerivesPaperExample)
{
    // The paper's §5.1 worked example: IPC = 1.5, 5 LLC accesses per
    // thousand instructions, 10% miss rate, M = 100 =>
    // T_access = 133 cycles, c = 123.
    MlpProfiler p(1.0);
    // Build counters consistent with that steady state: 1000 accesses,
    // 100 misses, stall = 100 * 100 = 10000 cycles,
    // cycles = accesses * T_access = 133000.
    p.update(counters(133000, 200000, 1000, 100, 10000));
    ASSERT_TRUE(p.profile().valid);
    EXPECT_NEAR(p.profile().missPenalty, 100.0, 1e-9);
    EXPECT_NEAR(p.profile().hitCyclesPerAccess, 123.0, 1e-9);
    EXPECT_NEAR(p.profile().missRate, 0.1, 1e-12);
    EXPECT_NEAR(p.profile().accessesPerCycle, 1000.0 / 133000.0, 1e-9);
}

TEST(MlpProfiler, IdleIntervalRetainsProfile)
{
    MlpProfiler p(1.0);
    p.update(counters(1000, 1000, 100, 10, 500));
    double m = p.profile().missPenalty;
    p.update(counters(0, 0, 0, 0, 0)); // idle
    EXPECT_DOUBLE_EQ(p.profile().missPenalty, m);
    EXPECT_TRUE(p.profile().valid);
}

TEST(MlpProfiler, EwmaSmoothing)
{
    MlpProfiler p(0.5);
    p.update(counters(10000, 10000, 100, 10, 1000)); // M = 100
    p.update(counters(10000, 10000, 100, 10, 3000)); // M = 300
    // EWMA(0.5): 0.5*100 + 0.5*300 = 200.
    EXPECT_NEAR(p.profile().missPenalty, 200.0, 1e-9);
}

TEST(MlpProfiler, ZeroMissIntervalKeepsPenalty)
{
    MlpProfiler p(1.0);
    p.update(counters(10000, 10000, 100, 10, 1500)); // M = 150
    p.update(counters(10000, 10000, 100, 0, 0));     // all hits
    EXPECT_NEAR(p.profile().missPenalty, 150.0, 1e-9);
    EXPECT_NEAR(p.profile().missRate, 0.0, 1e-12);
}

TEST(MlpProfiler, ResetRestoresDefaults)
{
    MlpProfiler p(0.5, 250.0);
    p.update(counters(1000, 1000, 10, 5, 400));
    p.reset();
    EXPECT_FALSE(p.profile().valid);
    EXPECT_DOUBLE_EQ(p.profile().missPenalty, 250.0);
}

TEST(IntervalCounters, AddAccumulates)
{
    IntervalCounters a = counters(10, 20, 30, 4, 5);
    IntervalCounters b = counters(1, 2, 3, 4, 5);
    a.add(b);
    EXPECT_EQ(a.cycles, 11u);
    EXPECT_EQ(a.instructions, 22u);
    EXPECT_EQ(a.llcAccesses, 33u);
    EXPECT_EQ(a.llcMisses, 8u);
    EXPECT_EQ(a.missStallCycles, 10u);
    a.clear();
    EXPECT_EQ(a.cycles, 0u);
    EXPECT_EQ(a.llcAccesses, 0u);
}

} // namespace
} // namespace ubik
