/**
 * @file
 * Tests for MissCurve interpolation and resampling.
 */

#include <gtest/gtest.h>

#include "mon/miss_curve.h"

namespace ubik {
namespace {

TEST(MissCurve, EmptyByDefault)
{
    MissCurve c;
    EXPECT_TRUE(c.empty());
    EXPECT_EQ(c.points(), 0u);
}

TEST(MissCurve, PointLookup)
{
    MissCurve c({100, 60, 30, 10}, 8);
    EXPECT_EQ(c.points(), 4u);
    EXPECT_EQ(c.linesPerPoint(), 8u);
    EXPECT_EQ(c.maxLines(), 24u);
    EXPECT_DOUBLE_EQ(c.missesAtLines(0), 100.0);
    EXPECT_DOUBLE_EQ(c.missesAtLines(8), 60.0);
    EXPECT_DOUBLE_EQ(c.missesAtLines(16), 30.0);
}

TEST(MissCurve, LinearInterpolation)
{
    MissCurve c({100, 60, 30, 10}, 8);
    EXPECT_DOUBLE_EQ(c.missesAtLines(4), 80.0);
    EXPECT_DOUBLE_EQ(c.missesAtLines(12), 45.0);
    EXPECT_DOUBLE_EQ(c.missesAtLines(20), 20.0);
}

TEST(MissCurve, ClampsBeyondLastPoint)
{
    MissCurve c({100, 50}, 10);
    EXPECT_DOUBLE_EQ(c.missesAtLines(10), 50.0);
    EXPECT_DOUBLE_EQ(c.missesAtLines(1000), 50.0);
}

TEST(MissCurve, ResamplePreservesEndpointsAndShape)
{
    MissCurve c({100, 60, 30, 10}, 8);
    MissCurve r = c.resample(25, 24);
    EXPECT_EQ(r.points(), 25u);
    EXPECT_EQ(r.linesPerPoint(), 1u);
    EXPECT_DOUBLE_EQ(r.missesAtLines(0), 100.0);
    EXPECT_DOUBLE_EQ(r.missesAtLines(24), 10.0);
    // Interior values match linear interpolation of the original.
    for (std::uint64_t l = 0; l <= 24; l++)
        EXPECT_NEAR(r.missesAtLines(l), c.missesAtLines(l), 1e-9);
}

TEST(MissCurve, ResampleToWiderSpanClamps)
{
    MissCurve c({100, 10}, 16);
    MissCurve r = c.resample(5, 64);
    EXPECT_DOUBLE_EQ(r.missesAtLines(16), 10.0);
    EXPECT_DOUBLE_EQ(r.missesAtLines(64), 10.0);
}

TEST(MissCurve, EnforceMonotone)
{
    MissCurve c({100, 120, 30, 40, 10}, 1);
    c.enforceMonotone();
    const auto &v = c.values();
    EXPECT_DOUBLE_EQ(v[0], 100.0);
    EXPECT_DOUBLE_EQ(v[1], 100.0);
    EXPECT_DOUBLE_EQ(v[2], 30.0);
    EXPECT_DOUBLE_EQ(v[3], 30.0);
    EXPECT_DOUBLE_EQ(v[4], 10.0);
}

TEST(MissCurve, Scale)
{
    MissCurve c({10, 5}, 4);
    c.scale(96.0);
    EXPECT_DOUBLE_EQ(c.missesAtLines(0), 960.0);
    EXPECT_DOUBLE_EQ(c.missesAtLines(4), 480.0);
}

class ResampleProperty : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ResampleProperty, MonotoneInputStaysMonotone)
{
    MissCurve c({1000, 800, 500, 499, 100, 0}, 32);
    MissCurve r = c.resample(GetParam(), c.maxLines());
    const auto &v = r.values();
    for (std::size_t i = 1; i < v.size(); i++)
        EXPECT_LE(v[i], v[i - 1] + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ResampleProperty,
                         ::testing::Values(2u, 7u, 33u, 257u));

} // namespace
} // namespace ubik
