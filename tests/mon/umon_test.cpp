/**
 * @file
 * Tests for the UMON: sampling, LRU-stack depth accounting, miss
 * curves, and the Ubik extensions (tags surviving counter resets,
 * would-miss-at-allocation queries for the de-boost circuit).
 */

#include <gtest/gtest.h>

#include "mon/umon.h"
#include "common/rng.h"

namespace ubik {
namespace {

TEST(Umon, SamplingFactorMatchesGeometry)
{
    // 32768-line cache, 32x8 = 256 tags: 1 in 128 addresses sampled.
    Umon u(32768, 32, 8);
    EXPECT_DOUBLE_EQ(u.samplingFactor(), 128.0);
    // The paper's full config: 12MB LLC (196608 lines), 32x8 UMON
    // => 1 in 768 insertions (§5.1.3).
    Umon paper(196608, 32, 8);
    EXPECT_DOUBLE_EQ(paper.samplingFactor(), 768.0);
}

TEST(Umon, SamplesExpectedFraction)
{
    Umon u(32768, 32, 8, 42);
    Rng rng(1);
    const int n = 400000;
    for (int i = 0; i < n; i++)
        u.access(rng.next() % 1000000);
    double frac = static_cast<double>(u.sampledAccesses()) / n;
    EXPECT_NEAR(frac, 1.0 / 128.0, 0.25 / 128.0);
}

TEST(Umon, RepeatedAddressHitsAtDepthOne)
{
    Umon u(1024, 8, 4, 0);
    // Find a sampled address.
    Addr a = 0;
    UmonProbe p;
    do {
        p = u.access(a++);
    } while (!p.sampled);
    a--; // the sampled one
    EXPECT_EQ(p.depth, 0u); // first touch misses
    p = u.access(a);
    ASSERT_TRUE(p.sampled);
    EXPECT_EQ(p.depth, 1u); // MRU hit
}

TEST(Umon, StackDepthReflectsReuseDistance)
{
    Umon u(1024, 8, 1, 3); // one set: pure LRU stack of 8
    // Collect 4 distinct sampled addresses.
    std::vector<Addr> sampled;
    for (Addr a = 0; sampled.size() < 4; a++)
        if (u.access(a).sampled)
            sampled.push_back(a);
    // They were inserted in order; re-touch the oldest: its depth is
    // its reuse distance (4).
    UmonProbe p = u.access(sampled[0]);
    ASSERT_TRUE(p.sampled);
    EXPECT_EQ(p.depth, 4u);
}

TEST(Umon, MissCurveOfCacheFittingStream)
{
    // A circular scan over half the modeled cache: with >= that
    // allocation all accesses (after warmup) hit; below it, LRU
    // thrashes and everything misses. The UMON's curve must show a
    // cliff.
    const std::uint64_t lines = 4096;
    Umon u(lines, 32, 32, 9); // plenty of sets to cut noise
    const std::uint64_t ws = lines / 2;
    for (int rep = 0; rep < 30; rep++)
        for (Addr x = 0; x < ws; x++)
            u.access(x);
    MissCurve c = u.missCurve();
    double at_full = c.missesAtLines(lines);
    double at_quarter = c.missesAtLines(lines / 4);
    EXPECT_LT(at_full, 0.2 * at_quarter + 1e4);
}

TEST(Umon, MissCurveMonotoneNonIncreasing)
{
    Umon u(8192, 32, 8, 5);
    Rng rng(2);
    ZipfDistribution zipf(16384, 0.8);
    for (int i = 0; i < 300000; i++)
        u.access(zipf(rng));
    MissCurve c = u.missCurve();
    const auto &v = c.values();
    for (std::size_t i = 1; i < v.size(); i++)
        EXPECT_LE(v[i], v[i - 1] + 1e-9);
}

TEST(Umon, CurveTotalsMatchSampledStream)
{
    Umon u(8192, 32, 8, 5);
    Rng rng(3);
    const int n = 200000;
    for (int i = 0; i < n; i++)
        u.access(rng.next() % 50000);
    MissCurve c = u.missCurve();
    // Zero allocation: every sampled access misses; scaled back up
    // this estimates the full stream length.
    EXPECT_NEAR(c.missesAtLines(0),
                static_cast<double>(u.sampledAccesses()) *
                    u.samplingFactor(),
                1.0);
}

TEST(Umon, ResetKeepsTags)
{
    Umon u(1024, 8, 4, 1);
    // Warm a sampled address in.
    Addr a = 0;
    while (!u.access(a).sampled)
        a++;
    u.resetCounters();
    EXPECT_EQ(u.sampledAccesses(), 0u);
    // The tag survived the reset: next access is a depth-1 hit, which
    // is what lets Ubik's de-boost circuit work right after idling.
    UmonProbe p = u.access(a);
    ASSERT_TRUE(p.sampled);
    EXPECT_EQ(p.depth, 1u);
}

TEST(Umon, MissesAtAllocationThresholds)
{
    Umon u(1024, 8, 4, 1); // 128 lines per way
    UmonProbe deep;
    deep.sampled = true;
    deep.depth = 4; // needs >= 4 ways = 512 lines
    EXPECT_TRUE(u.missesAtAllocation(deep, 256));
    EXPECT_FALSE(u.missesAtAllocation(deep, 512));
    EXPECT_FALSE(u.missesAtAllocation(deep, 1024));

    UmonProbe miss;
    miss.sampled = true;
    miss.depth = 0;
    EXPECT_TRUE(u.missesAtAllocation(miss, 1024));

    UmonProbe unsampled;
    EXPECT_FALSE(u.missesAtAllocation(unsampled, 0));
}

TEST(Umon, InterpolatedCurveHasRequestedPoints)
{
    Umon u(8192, 32, 8, 5);
    Rng rng(4);
    for (int i = 0; i < 100000; i++)
        u.access(rng.next() % 30000);
    MissCurve c = u.missCurve(257);
    EXPECT_EQ(c.points(), 257u);
    EXPECT_EQ(c.maxLines(), 8192u);
}

class UmonSkew : public ::testing::TestWithParam<double>
{
};

TEST_P(UmonSkew, SkewedStreamsBenefitFromSpace)
{
    // For any meaningful skew, more allocation => fewer misses, and
    // higher skew => a larger fraction of hits concentrated in the
    // first ways.
    Umon u(8192, 32, 16, 7);
    Rng rng(5);
    ZipfDistribution zipf(32768, GetParam());
    for (int i = 0; i < 400000; i++)
        u.access(zipf(rng));
    MissCurve c = u.missCurve();
    EXPECT_GT(c.missesAtLines(0), c.missesAtLines(8192) + 1);
    EXPECT_GE(c.missesAtLines(2048), c.missesAtLines(8192) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Skews, UmonSkew,
                         ::testing::Values(0.6, 0.9, 1.1));

} // namespace
} // namespace ubik
