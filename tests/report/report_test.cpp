/**
 * @file
 * Tests for the report layer: load-band filtering on structured mix
 * metadata, the empty-sweep quantile guard (the legacy
 * `v.size() - 1` underflow), and determinism of the structured JSON
 * export (bit-identical results => byte-identical files).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json.h"
#include "report/report.h"

namespace ubik {
namespace {

MixRunResult
run(double tail, double ws)
{
    MixRunResult r;
    r.lcTailMean = tail * 1000.0;
    r.tailDegradation = tail;
    r.meanDegradation = tail * 0.9;
    r.weightedSpeedup = ws;
    r.batchSpeedups = {ws - 0.1, ws, ws + 0.1};
    return r;
}

SweepResult
sweep(const std::string &label)
{
    SweepResult s;
    s.label = label;
    s.runs = {run(1.1, 1.3), run(2.0, 1.1), run(1.0, 1.5)};
    s.mixNames = {"xapian-lo/nft-0", "xapian-hi/nft-0",
                  "moses-lo/fts-1"};
    s.mixLoads = {0.2, 0.6, 0.2};
    s.seeds = {1, 1, 1};
    return s;
}

TEST(Report, FilterByLoadUsesMixMetadata)
{
    std::vector<SweepResult> sweeps = {sweep("Ubik")};
    auto low = filterByLoad(sweeps, LoadBand::Low);
    ASSERT_EQ(low.size(), 1u);
    ASSERT_EQ(low[0].runs.size(), 2u);
    EXPECT_EQ(low[0].mixNames[0], "xapian-lo/nft-0");
    EXPECT_EQ(low[0].mixNames[1], "moses-lo/fts-1");

    auto high = filterByLoad(sweeps, LoadBand::High);
    ASSERT_EQ(high[0].runs.size(), 1u);
    EXPECT_EQ(high[0].mixNames[0], "xapian-hi/nft-0");

    auto all = filterByLoad(sweeps, LoadBand::All);
    EXPECT_EQ(all[0].runs.size(), 3u);

    LoadBand b;
    EXPECT_TRUE(tryLoadBandFromName("low", b));
    EXPECT_EQ(b, LoadBand::Low);
    EXPECT_FALSE(tryLoadBandFromName("lowest", b));
    EXPECT_STREQ(loadBandName(LoadBand::High), "high");
}

TEST(Report, EmptySweepsPrintWithoutUnderflow)
{
    // A scheme with zero runs used to compute v.size() - 1 == SIZE_MAX
    // when indexing quantiles. The printers must survive (and print
    // zero rows) for empty sweeps — e.g. a load band that filtered
    // everything out.
    SweepResult empty;
    empty.label = "none";
    std::vector<SweepResult> sweeps = {empty};
    printDistributions(sweeps, "empty-test");
    printAverages(sweeps, "empty-test");
    printPerApp(sweeps, "empty-test");
    printUbikInterrupts(sweeps, "empty-test");
    SUCCEED();
}

TEST(Report, ResultsJsonIsDeterministicAndParseable)
{
    std::vector<SweepResult> sweeps = {sweep("Ubik"), sweep("LRU")};
    std::string p1 = ::testing::TempDir() + "/r1.json";
    std::string p2 = ::testing::TempDir() + "/r2.json";
    writeResultsJson(sweeps, "unit", p1);
    writeResultsJson(sweeps, "unit", p2);

    auto slurp = [](const std::string &p) {
        std::ifstream in(p, std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        return ss.str();
    };
    std::string t1 = slurp(p1);
    EXPECT_EQ(t1, slurp(p2)) << "same results, different bytes";

    Json j = Json::parseOrDie(t1, "results");
    EXPECT_EQ(j.find("format")->str(), "ubik-results");
    EXPECT_EQ(j.find("scenario")->str(), "unit");
    const Json &s0 = j.find("sweeps")->at(0);
    EXPECT_EQ(s0.find("scheme")->str(), "Ubik");
    const Json &r0 = s0.find("runs")->at(0);
    EXPECT_EQ(r0.find("mix")->str(), "xapian-lo/nft-0");
    EXPECT_DOUBLE_EQ(r0.find("tail_degradation")->number(), 1.1);
    EXPECT_EQ(r0.find("batch_speedups")->size(), 3u);

    // A perturbed result changes the bytes (the diff is meaningful).
    sweeps[0].runs[0].weightedSpeedup += 1e-12;
    writeResultsJson(sweeps, "unit", p2);
    EXPECT_NE(t1, slurp(p2));

    std::remove(p1.c_str());
    std::remove(p2.c_str());
}

} // namespace
} // namespace ubik
