/**
 * @file
 * Tests for the LC app models: preset signatures (Fig 2's APKI
 * labels), address-stream structure, scaling, and instance isolation.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/lc_app.h"

namespace ubik {
namespace {

TEST(LcPresets, AllFivePaperApps)
{
    auto all = lc_presets::all();
    ASSERT_EQ(all.size(), 5u);
    EXPECT_EQ(all[0].name, "xapian");
    EXPECT_EQ(all[1].name, "masstree");
    EXPECT_EQ(all[2].name, "moses");
    EXPECT_EQ(all[3].name, "shore");
    EXPECT_EQ(all[4].name, "specjbb");
}

TEST(LcPresets, ApkiMatchesFig2Labels)
{
    EXPECT_DOUBLE_EQ(lc_presets::xapian().apki, 0.1);
    EXPECT_DOUBLE_EQ(lc_presets::masstree().apki, 8.8);
    EXPECT_DOUBLE_EQ(lc_presets::moses().apki, 25.8);
    EXPECT_DOUBLE_EQ(lc_presets::shore().apki, 5.7);
    EXPECT_DOUBLE_EQ(lc_presets::specjbb().apki, 16.3);
}

TEST(LcPresets, RequestCountsMatchTable1)
{
    EXPECT_EQ(lc_presets::xapian().requests, 6000u);
    EXPECT_EQ(lc_presets::masstree().requests, 9000u);
    EXPECT_EQ(lc_presets::moses().requests, 900u);
    EXPECT_EQ(lc_presets::shore().requests, 7500u);
    EXPECT_EQ(lc_presets::specjbb().requests, 37500u);
}

TEST(LcPresets, ByNameRoundTrips)
{
    for (const auto &p : lc_presets::all())
        EXPECT_EQ(lc_presets::byName(p.name).name, p.name);
}

TEST(LcPresetsDeath, ByNameUnknownIsFatal)
{
    EXPECT_EXIT(lc_presets::byName("nginx"),
                ::testing::ExitedWithCode(1), "unknown LC workload");
}

TEST(LcPresets, MosesHotSetLargerThanTwoMegabytes)
{
    // §7.1: moses has no reuse at 2MB but significant reuse at ~4MB.
    EXPECT_GT(lc_presets::moses().hotLines, bytesToLines(2_MB));
    EXPECT_LE(lc_presets::moses().hotLines, bytesToLines(6_MB));
    EXPECT_LT(lc_presets::moses().hotTheta, 0.5); // near-uniform
}

TEST(LcAppParams, ScaledShrinksEverything)
{
    LcAppParams p = lc_presets::shore();
    LcAppParams s = p.scaled(8.0);
    EXPECT_EQ(s.hotLines, p.hotLines / 8);
    EXPECT_EQ(s.reqLines, p.reqLines / 8);
    EXPECT_NEAR(s.work.mean(), p.work.mean() / 8.0, 1.0);
    EXPECT_DOUBLE_EQ(s.apki, p.apki); // intensity is scale-free
}

TEST(LcApp, RequestAccessesFollowApki)
{
    LcApp app(lc_presets::masstree(), 0, Rng(1));
    // 8.8 APKI: 1e6 instructions -> 8800 accesses.
    EXPECT_EQ(app.requestAccesses(1e6), 8800u);
    EXPECT_EQ(app.requestAccesses(0), 0u);
}

TEST(LcApp, XapianRequestsAreComputeBound)
{
    LcAppParams p = lc_presets::xapian();
    LcApp app(p, 0, Rng(2));
    // At 0.1 APKI even long requests perform few LLC accesses.
    double work = app.startRequest(1);
    EXPECT_LT(app.requestAccesses(work), work / 1000.0);
}

TEST(LcApp, AddressesSplitBetweenHotAndRequestRegions)
{
    LcAppParams p = lc_presets::specjbb();
    LcApp app(p, 0, Rng(3));
    app.startRequest(1);
    std::uint64_t hot = 0, req = 0;
    const Addr hot_base = 1ull << 40;
    const Addr req_base = hot_base + (1ull << 36);
    for (int i = 0; i < 50000; i++) {
        Addr a = app.nextAddr();
        if (a >= req_base)
            req++;
        else if (a >= hot_base && a < hot_base + p.hotLines)
            hot++;
        else
            FAIL() << "address outside both regions";
    }
    EXPECT_NEAR(hot / 50000.0, p.hotFrac, 0.02);
    EXPECT_NEAR(req / 50000.0, 1.0 - p.hotFrac, 0.02);
}

TEST(LcApp, CrossRequestReuseOnlyInHotSet)
{
    // Request-private addresses from different requests must not
    // collide (that is what makes them inertia-free).
    LcAppParams p = lc_presets::masstree();
    p.hotFrac = 0.0; // only private accesses, for a clean check
    LcApp app(p, 0, Rng(4));
    std::set<Addr> req1, req2;
    app.startRequest(1);
    for (std::uint64_t i = 0; i < p.reqLines / 2; i++)
        req1.insert(app.nextAddr());
    app.startRequest(2);
    for (std::uint64_t i = 0; i < p.reqLines / 2; i++)
        req2.insert(app.nextAddr());
    for (Addr a : req2)
        EXPECT_FALSE(req1.count(a));
}

TEST(LcApp, InstancesAreDisjoint)
{
    LcAppParams p = lc_presets::shore();
    LcApp a(p, 0, Rng(5)), b(p, 1, Rng(5));
    a.startRequest(1);
    b.startRequest(1);
    std::set<Addr> seen;
    for (int i = 0; i < 20000; i++)
        seen.insert(a.nextAddr());
    for (int i = 0; i < 20000; i++)
        EXPECT_FALSE(seen.count(b.nextAddr()));
}

TEST(LcApp, HotAccessesAreSkewed)
{
    LcAppParams p = lc_presets::masstree();
    LcApp app(p, 0, Rng(6));
    app.startRequest(1);
    // Count accesses to the top 1% of the hot set.
    std::uint64_t head = 0, total = 0;
    const Addr hot_base = 1ull << 40;
    const Addr req_base = hot_base + (1ull << 36);
    for (int i = 0; i < 100000; i++) {
        Addr a = app.nextAddr();
        if (a >= req_base)
            continue;
        total++;
        if (a - hot_base < p.hotLines / 100)
            head++;
    }
    // theta = 1.1: the top 1% draws far more than 1% of accesses.
    EXPECT_GT(static_cast<double>(head) / static_cast<double>(total),
              0.10);
}

class PresetSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(PresetSweep, ParametersInternallyConsistent)
{
    LcAppParams p = lc_presets::all()[GetParam()];
    EXPECT_GT(p.apki, 0.0);
    EXPECT_GT(p.work.mean(), 1000.0);
    EXPECT_GT(p.hotLines, 0u);
    EXPECT_GT(p.hotFrac, 0.0);
    EXPECT_LE(p.hotFrac, 1.0);
    EXPECT_GE(p.mlp, 1.0);
    EXPECT_GT(p.baseIpc, 0.0);
    EXPECT_GT(p.requests, 0u);
    // Sampling a request never crashes and respects the work floor.
    LcApp app(p, 2, Rng(9));
    for (ReqId r = 1; r < 50; r++) {
        double w = app.startRequest(r);
        EXPECT_GE(w, 1000.0);
        for (int i = 0; i < 100; i++)
            app.nextAddr();
    }
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetSweep,
                         ::testing::Range(0, 5));

} // namespace
} // namespace ubik
