/**
 * @file
 * Tests for the mix builder reproducing the paper's 400-mix
 * methodology (§6).
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/mix.h"

namespace ubik {
namespace {

TEST(MixBuilder, TwentyClassCombos)
{
    auto combos = batchClassCombos();
    EXPECT_EQ(combos.size(), 20u);
    // Order-insensitive with repetition: each triple is sorted, and
    // all are distinct.
    std::set<std::string> seen;
    for (const auto &c : combos) {
        std::string key = {batchClassCode(c[0]), batchClassCode(c[1]),
                           batchClassCode(c[2])};
        EXPECT_TRUE(seen.insert(key).second) << "duplicate " << key;
    }
}

TEST(MixBuilder, FortyBatchMixes)
{
    auto mixes = buildBatchMixes(2, 1);
    EXPECT_EQ(mixes.size(), 40u);
    std::set<std::string> names;
    for (const auto &m : mixes)
        EXPECT_TRUE(names.insert(m.name).second);
}

TEST(MixBuilder, MixNameEncodesClasses)
{
    auto mixes = buildBatchMixes(2, 1);
    for (const auto &m : mixes) {
        ASSERT_EQ(m.name.size(), 5u); // "nft-0"
        for (int i = 0; i < 3; i++)
            EXPECT_EQ(m.name[i], batchClassCode(m.apps[i].cls));
    }
}

TEST(MixBuilder, TenLcConfigs)
{
    auto cfgs = buildLcConfigs();
    ASSERT_EQ(cfgs.size(), 10u);
    for (std::size_t i = 0; i < cfgs.size(); i += 2) {
        EXPECT_DOUBLE_EQ(cfgs[i].load, 0.2);
        EXPECT_DOUBLE_EQ(cfgs[i + 1].load, 0.6);
        EXPECT_EQ(cfgs[i].app.name, cfgs[i + 1].app.name);
    }
}

TEST(MixBuilder, FourHundredMixesAtPaperScale)
{
    auto mixes = buildMixes(2, 1, 0);
    EXPECT_EQ(mixes.size(), 400u);
}

TEST(MixBuilder, CapKeepsComboCoverage)
{
    auto mixes = buildMixes(2, 1, 10);
    EXPECT_EQ(mixes.size(), 100u); // 10 LC configs x 10 batch mixes
    // The strided subset still spans several class combinations.
    std::set<std::string> combos;
    for (const auto &m : mixes)
        combos.insert(m.batch.name.substr(0, 3));
    EXPECT_GE(combos.size(), 5u);
}

TEST(MixBuilder, DeterministicForSeed)
{
    auto a = buildBatchMixes(2, 7);
    auto b = buildBatchMixes(2, 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].name, b[i].name);
        for (int j = 0; j < 3; j++)
            EXPECT_EQ(a[i].apps[j].name, b[i].apps[j].name);
    }
}

TEST(MixBuilder, MixNamesIncludeLoadTag)
{
    auto mixes = buildMixes(1, 1, 2);
    bool saw_lo = false, saw_hi = false;
    for (const auto &m : mixes) {
        saw_lo |= m.name.find("-lo/") != std::string::npos;
        saw_hi |= m.name.find("-hi/") != std::string::npos;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

} // namespace
} // namespace ubik
