/**
 * @file
 * Tests for trace capture from the synthetic generators: determinism,
 * shape consistency with the generating parameters, and the expected
 * reuse signatures of the paper presets (the captured traces must
 * carry the same inertia signal the simulator sees, Fig 2).
 */

#include <gtest/gtest.h>

#include "trace/trace_analyzer.h"
#include "workload/trace_capture.h"

namespace ubik {
namespace {

TEST(TraceCapture, LcCaptureIsDeterministic)
{
    LcAppParams p = lc_presets::masstree().scaled(16.0);
    TraceData a = captureLcTrace(p, 50, /*seed=*/3);
    TraceData b = captureLcTrace(p, 50, /*seed=*/3);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.requestWork, b.requestWork);
}

TEST(TraceCapture, SeedsProduceDifferentStreams)
{
    LcAppParams p = lc_presets::masstree().scaled(16.0);
    TraceData a = captureLcTrace(p, 50, /*seed=*/3);
    TraceData b = captureLcTrace(p, 50, /*seed=*/4);
    EXPECT_NE(a.accesses, b.accesses);
}

TEST(TraceCapture, InstancesUseDisjointAddressSpaces)
{
    LcAppParams p = lc_presets::masstree().scaled(16.0);
    TraceData a = captureLcTrace(p, 20, 3, /*instance=*/0);
    TraceData b = captureLcTrace(p, 20, 3, /*instance=*/1);
    for (Addr addr : b.accesses)
        EXPECT_EQ(std::count(a.accesses.begin(), a.accesses.end(),
                             addr),
                  0)
            << "instance address spaces overlap";
}

TEST(TraceCapture, RequestCountAndApkiMatchParams)
{
    LcAppParams p = lc_presets::specjbb().scaled(16.0);
    TraceData td = captureLcTrace(p, 100, 5);
    EXPECT_EQ(td.requests(), 100u);
    // APKI within 20% of the preset's calibration.
    EXPECT_NEAR(td.apki(), p.apki, p.apki * 0.2);
}

TEST(TraceCapture, HotPresetShowsCrossRequestReuse)
{
    LcAppParams p = lc_presets::shore().scaled(16.0);
    TraceData td = captureLcTrace(p, 150, 9);
    TraceAnalysis an = analyzeTrace(td);
    EXPECT_GT(an.crossRequestReuse, 0.3);
}

TEST(TraceCapture, BatchStreamingHasNoReuse)
{
    BatchAppParams p =
        batch_presets::make(BatchClass::Streaming).scaled(16.0);
    TraceData td = captureBatchTrace(p, 20000, 11);
    TraceAnalysis an = analyzeTrace(td);
    // A pure stream never revisits a line within the capture window.
    EXPECT_DOUBLE_EQ(an.crossRequestReuse, 0.0);
    EXPECT_EQ(an.missesAtSize(p.wsLines), an.accesses);
}

TEST(TraceCapture, BatchFriendlyHasConcaveMissCurve)
{
    BatchAppParams p =
        batch_presets::make(BatchClass::Friendly).scaled(16.0);
    TraceData td = captureBatchTrace(p, 50000, 12);
    TraceAnalysis an = analyzeTrace(td);
    std::uint64_t quarter = an.missesAtSize(p.wsLines / 4);
    std::uint64_t half = an.missesAtSize(p.wsLines / 2);
    std::uint64_t full = an.missesAtSize(p.wsLines);
    EXPECT_GT(quarter, half);
    EXPECT_GE(half, full);
}

TEST(TraceCapture, BatchTraceHasOnePseudoRequest)
{
    BatchAppParams p =
        batch_presets::make(BatchClass::Insensitive).scaled(16.0);
    TraceData td = captureBatchTrace(p, 1000, 13);
    EXPECT_EQ(td.requests(), 1u);
    EXPECT_EQ(td.accessesOf(0), 1000u);
    EXPECT_NEAR(td.apki(), p.apki, p.apki * 0.05);
}

} // namespace
} // namespace ubik
