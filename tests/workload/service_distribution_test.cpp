/**
 * @file
 * Tests for the per-request work distributions.
 */

#include <gtest/gtest.h>

#include "workload/service_distribution.h"

namespace ubik {
namespace {

double
sampleMean(const ServiceDistribution &d, int n = 100000,
           std::uint64_t seed = 1)
{
    Rng rng(seed);
    double sum = 0;
    for (int i = 0; i < n; i++)
        sum += d.sample(rng);
    return sum / n;
}

TEST(ServiceDistribution, ConstantIsConstant)
{
    auto d = ServiceDistribution::constant(5e5);
    Rng rng(1);
    for (int i = 0; i < 100; i++)
        EXPECT_DOUBLE_EQ(d.sample(rng), 5e5);
    EXPECT_DOUBLE_EQ(d.mean(), 5e5);
}

TEST(ServiceDistribution, LognormalMeanMatches)
{
    auto d = ServiceDistribution::lognormal(1e6, 0.5);
    EXPECT_DOUBLE_EQ(d.mean(), 1e6);
    EXPECT_NEAR(sampleMean(d, 300000) / 1e6, 1.0, 0.02);
}

TEST(ServiceDistribution, LognormalSigmaWidensTail)
{
    auto tight = ServiceDistribution::lognormal(1e6, 0.05);
    auto wide = ServiceDistribution::lognormal(1e6, 1.0);
    Rng r1(2), r2(2);
    double max_tight = 0, max_wide = 0;
    for (int i = 0; i < 20000; i++) {
        max_tight = std::max(max_tight, tight.sample(r1));
        max_wide = std::max(max_wide, wide.sample(r2));
    }
    EXPECT_GT(max_wide, 3 * max_tight);
}

TEST(ServiceDistribution, MultimodalMeanIsWeightedAverage)
{
    auto d = ServiceDistribution::multimodal({
        {0.5, 1e6, 0.0},
        {0.5, 3e6, 0.0},
    });
    EXPECT_DOUBLE_EQ(d.mean(), 2e6);
    EXPECT_NEAR(sampleMean(d) / 2e6, 1.0, 0.02);
}

TEST(ServiceDistribution, MultimodalModesDistinct)
{
    auto d = ServiceDistribution::multimodal({
        {0.7, 1e5, 0.0},
        {0.3, 1e7, 0.0},
    });
    Rng rng(3);
    int small = 0, large = 0;
    for (int i = 0; i < 10000; i++) {
        double v = d.sample(rng);
        if (v < 1e6)
            small++;
        else
            large++;
    }
    EXPECT_NEAR(small / 10000.0, 0.7, 0.03);
    EXPECT_NEAR(large / 10000.0, 0.3, 0.03);
}

TEST(ServiceDistribution, JitterStaysWithinBounds)
{
    auto d = ServiceDistribution::multimodal({{1.0, 1e6, 0.2}});
    Rng rng(4);
    for (int i = 0; i < 10000; i++) {
        double v = d.sample(rng);
        EXPECT_GE(v, 0.8e6 - 1);
        EXPECT_LE(v, 1.2e6 + 1);
    }
}

TEST(ServiceDistribution, FloorsAtThousandInstructions)
{
    auto d = ServiceDistribution::lognormal(1500, 3.0);
    Rng rng(5);
    for (int i = 0; i < 10000; i++)
        EXPECT_GE(d.sample(rng), 1000.0);
}

class ScaleTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ScaleTest, ScalePreservesShape)
{
    double f = GetParam();
    auto kinds = {
        ServiceDistribution::constant(2e6),
        ServiceDistribution::lognormal(2e6, 0.4),
        ServiceDistribution::multimodal({{0.6, 1e6, 0.1},
                                         {0.4, 4e6, 0.1}}),
    };
    for (auto d : kinds) {
        double mean_before = d.mean();
        double before = sampleMean(d, 50000, 7);
        d.scale(f);
        EXPECT_NEAR(d.mean(), mean_before * f,
                    1e-6 * d.mean() + 1e-6);
        double after = sampleMean(d, 50000, 7);
        EXPECT_NEAR(after / before, f, 0.05 * f + 0.05);
    }
}

INSTANTIATE_TEST_SUITE_P(Factors, ScaleTest,
                         ::testing::Values(0.125, 0.5, 1.0));

} // namespace
} // namespace ubik
