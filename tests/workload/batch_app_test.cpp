/**
 * @file
 * Tests for the four batch-class generators and their miss-curve
 * taxonomy (insensitive / friendly / fitting / streaming).
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/batch_app.h"

namespace ubik {
namespace {

TEST(BatchClass, CodesRoundTrip)
{
    for (BatchClass c :
         {BatchClass::Insensitive, BatchClass::Friendly,
          BatchClass::Fitting, BatchClass::Streaming})
        EXPECT_EQ(batchClassFromCode(batchClassCode(c)), c);
    EXPECT_EQ(batchClassCode(BatchClass::Insensitive), 'n');
    EXPECT_EQ(batchClassCode(BatchClass::Friendly), 'f');
    EXPECT_EQ(batchClassCode(BatchClass::Fitting), 't');
    EXPECT_EQ(batchClassCode(BatchClass::Streaming), 's');
}

TEST(BatchClassDeath, UnknownCodeIsFatal)
{
    EXPECT_EXIT(batchClassFromCode('x'),
                ::testing::ExitedWithCode(1), "unknown batch class");
}

TEST(BatchPresets, NamesEncodeClassAndVariation)
{
    auto p = batch_presets::make(BatchClass::Friendly, 7);
    EXPECT_EQ(p.name, "f7");
    EXPECT_EQ(p.cls, BatchClass::Friendly);
}

TEST(BatchPresets, VariationsSpreadParameters)
{
    auto a = batch_presets::make(BatchClass::Friendly, 0);
    auto b = batch_presets::make(BatchClass::Friendly, 24);
    EXPECT_NE(a.apki, b.apki);
    EXPECT_NE(a.wsLines, b.wsLines);
}

TEST(BatchPresets, ClassFootprintsOrdered)
{
    // Insensitive << fitting < friendly working sets; streaming is
    // effectively unbounded.
    auto n = batch_presets::make(BatchClass::Insensitive, 12);
    auto f = batch_presets::make(BatchClass::Friendly, 12);
    auto t = batch_presets::make(BatchClass::Fitting, 12);
    auto s = batch_presets::make(BatchClass::Streaming, 12);
    EXPECT_LT(n.wsLines, t.wsLines);
    EXPECT_LT(t.wsLines, f.wsLines);
    EXPECT_GT(s.wsLines, f.wsLines);
}

TEST(BatchAppParams, ScaledShrinksFootprint)
{
    auto p = batch_presets::make(BatchClass::Friendly, 3);
    auto s = p.scaled(8.0);
    EXPECT_EQ(s.wsLines, p.wsLines / 8);
    EXPECT_DOUBLE_EQ(s.apki, p.apki);
}

TEST(BatchApp, StreamingNeverRepeats)
{
    BatchApp app(batch_presets::make(BatchClass::Streaming, 0), 0,
                 Rng(1));
    std::set<Addr> seen;
    for (int i = 0; i < 50000; i++)
        EXPECT_TRUE(seen.insert(app.nextAddr()).second);
}

TEST(BatchApp, FittingScansCircularly)
{
    auto p = batch_presets::make(BatchClass::Fitting, 12);
    p.wsLines = 1000;
    BatchApp app(p, 0, Rng(2));
    Addr first = app.nextAddr();
    for (std::uint64_t i = 1; i < p.wsLines; i++)
        app.nextAddr();
    // Exactly wsLines later the scan wraps to the same address.
    EXPECT_EQ(app.nextAddr(), first);
}

TEST(BatchApp, FittingCoversWholeSet)
{
    auto p = batch_presets::make(BatchClass::Fitting, 12);
    p.wsLines = 500;
    BatchApp app(p, 0, Rng(3));
    std::set<Addr> seen;
    for (std::uint64_t i = 0; i < p.wsLines; i++)
        seen.insert(app.nextAddr());
    EXPECT_EQ(seen.size(), p.wsLines);
}

TEST(BatchApp, FriendlyStaysInWorkingSet)
{
    auto p = batch_presets::make(BatchClass::Friendly, 5);
    BatchApp app(p, 2, Rng(4));
    const Addr base = static_cast<Addr>(2 + 64) << 40;
    for (int i = 0; i < 20000; i++) {
        Addr a = app.nextAddr();
        EXPECT_GE(a, base);
        EXPECT_LT(a, base + p.wsLines);
    }
}

TEST(BatchApp, InsensitiveReusesHeavily)
{
    auto p = batch_presets::make(BatchClass::Insensitive, 5);
    BatchApp app(p, 0, Rng(5));
    std::set<Addr> seen;
    const int n = 20000;
    for (int i = 0; i < n; i++)
        seen.insert(app.nextAddr());
    // Tiny footprint: far fewer distinct lines than accesses.
    EXPECT_LT(seen.size(), static_cast<std::size_t>(n / 3));
    EXPECT_LE(seen.size(), p.wsLines);
}

TEST(BatchApp, InstancesDisjoint)
{
    auto p = batch_presets::make(BatchClass::Friendly, 1);
    BatchApp a(p, 0, Rng(6)), b(p, 1, Rng(6));
    std::set<Addr> seen;
    for (int i = 0; i < 10000; i++)
        seen.insert(a.nextAddr());
    for (int i = 0; i < 10000; i++)
        EXPECT_FALSE(seen.count(b.nextAddr()));
}

class AllClasses : public ::testing::TestWithParam<BatchClass>
{
};

TEST_P(AllClasses, GeneratorIsDeterministic)
{
    auto p = batch_presets::make(GetParam(), 9);
    BatchApp a(p, 0, Rng(7)), b(p, 0, Rng(7));
    for (int i = 0; i < 1000; i++)
        EXPECT_EQ(a.nextAddr(), b.nextAddr());
}

INSTANTIATE_TEST_SUITE_P(
    Classes, AllClasses,
    ::testing::Values(BatchClass::Insensitive, BatchClass::Friendly,
                      BatchClass::Fitting, BatchClass::Streaming));

} // namespace
} // namespace ubik
