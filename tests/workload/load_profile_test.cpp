/**
 * @file
 * Tests for the time-varying load profiles (workload/load_profile.h):
 * per-kind rate semantics, window placement determinism (correlated
 * bursts), parameter validation, and the canonical form the
 * result-cache keys and spec JSON depend on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "workload/load_profile.h"

namespace ubik {
namespace {

TEST(LoadProfile, ConstantIsIdentity)
{
    LoadProfile p;
    EXPECT_TRUE(p.isConstant());
    for (double t : {0.0, 0.3, 0.99, 1.7}) {
        EXPECT_DOUBLE_EQ(p.scaleAt(t), 1.0);
        EXPECT_DOUBLE_EQ(p.nextActiveFrac(t), t);
    }
    EXPECT_EQ(p.canonical(), "constant");
}

TEST(LoadProfile, DiurnalSwingsAroundNominal)
{
    LoadProfile p;
    p.kind = LoadProfileKind::Diurnal;
    p.amplitude = 0.5;
    p.periods = 1.0;
    EXPECT_DOUBLE_EQ(p.scaleAt(0.0), 1.0);
    EXPECT_DOUBLE_EQ(p.scaleAt(0.25), 1.5); // sine peak
    EXPECT_NEAR(p.scaleAt(0.5), 1.0, 1e-12);
    EXPECT_NEAR(p.scaleAt(0.75), 0.5, 1e-12); // trough
    // Keeps oscillating past the nominal span (a slow run never sees
    // a discontinuity).
    EXPECT_NEAR(p.scaleAt(1.25), 1.5, 1e-12);
    // Two periods compress the cycle.
    p.periods = 2.0;
    EXPECT_NEAR(p.scaleAt(0.125), 1.5, 1e-12);
}

TEST(LoadProfile, FlashCrowdWindowIsHalfOpen)
{
    // 0.25 + 0.25 is exact in binary, so the window edges are sharp
    // (with inexact sums like 0.4 + 0.2 the edge lands one ulp past
    // the nominal value — harmless for arrivals, hostile to ==).
    LoadProfile p;
    p.kind = LoadProfileKind::FlashCrowd;
    p.start = 0.25;
    p.duration = 0.25;
    p.multiplier = 3.0;
    EXPECT_DOUBLE_EQ(p.scaleAt(0.24999), 1.0);
    EXPECT_DOUBLE_EQ(p.scaleAt(0.25), 3.0);
    EXPECT_DOUBLE_EQ(p.scaleAt(0.49999), 3.0);
    EXPECT_DOUBLE_EQ(p.scaleAt(0.5), 1.0);
    // The rate never drops, so the pump never needs to skip ahead.
    EXPECT_DOUBLE_EQ(p.nextActiveFrac(0.5), 0.5);
}

TEST(LoadProfile, ChurnWindowSilencesArrivals)
{
    LoadProfile p;
    p.kind = LoadProfileKind::Churn;
    p.start = 0.35;
    p.duration = 0.3;
    EXPECT_DOUBLE_EQ(p.scaleAt(0.3), 1.0);
    EXPECT_DOUBLE_EQ(p.scaleAt(0.35), 0.0);
    EXPECT_DOUBLE_EQ(p.scaleAt(0.64), 0.0);
    EXPECT_DOUBLE_EQ(p.scaleAt(0.65), 1.0);
    // Inside the window the next active point is its end; outside it
    // is the identity.
    EXPECT_DOUBLE_EQ(p.nextActiveFrac(0.5), 0.65);
    EXPECT_DOUBLE_EQ(p.nextActiveFrac(0.2), 0.2);
    EXPECT_DOUBLE_EQ(p.nextActiveFrac(0.65), 0.65);
    EXPECT_DOUBLE_EQ(p.scaleAt(p.nextActiveFrac(0.5)), 1.0);
}

TEST(LoadProfile, BurstWindowsAreDeterministicAndCorrelated)
{
    LoadProfile a;
    a.kind = LoadProfileKind::Bursts;
    a.bursts = 4;
    a.duration = 0.05;
    a.multiplier = 4.0;
    a.burstSeed = 1;
    LoadProfile b = a; // a co-located instance sharing the profile

    // Same seed -> the same windows everywhere: that sameness is what
    // makes co-located bursts correlated.
    int elevated = 0;
    for (int i = 0; i < 1000; i++) {
        double t = i / 1000.0;
        EXPECT_DOUBLE_EQ(a.scaleAt(t), b.scaleAt(t));
        if (a.scaleAt(t) > 1.0)
            elevated++;
    }
    // Windows exist and cover roughly bursts * duration of the span
    // (less if they overlap).
    EXPECT_GT(elevated, 0);
    EXPECT_LE(elevated, 4 * 50 + 4);

    // A different seed moves the windows.
    LoadProfile c = a;
    c.burstSeed = 2;
    int differs = 0;
    for (int i = 0; i < 1000; i++) {
        double t = i / 1000.0;
        if (a.scaleAt(t) != c.scaleAt(t))
            differs++;
    }
    EXPECT_GT(differs, 0);

    // In-window rate is the multiplier exactly; outside is nominal.
    for (int i = 0; i < 1000; i++) {
        double s = a.scaleAt(i / 1000.0);
        EXPECT_TRUE(s == 1.0 || s == 4.0) << "t = " << i / 1000.0;
    }
}

TEST(LoadProfile, ValidateRejectsBadParameters)
{
    LoadProfile p;
    p.kind = LoadProfileKind::Diurnal;
    p.amplitude = 1.5;
    EXPECT_EXIT(p.validate("t"), testing::ExitedWithCode(1),
                "amplitude");
    p.amplitude = 0.5;
    p.periods = 0;
    EXPECT_EXIT(p.validate("t"), testing::ExitedWithCode(1),
                "periods");

    p = LoadProfile();
    p.kind = LoadProfileKind::FlashCrowd;
    p.start = 1.0;
    EXPECT_EXIT(p.validate("t"), testing::ExitedWithCode(1), "start");
    p.start = 0.9;
    p.duration = 0.2; // runs past the span
    EXPECT_EXIT(p.validate("t"), testing::ExitedWithCode(1),
                "duration");
    p = LoadProfile();
    p.kind = LoadProfileKind::FlashCrowd;
    p.multiplier = 1.0;
    EXPECT_EXIT(p.validate("t"), testing::ExitedWithCode(1),
                "multiplier");

    p = LoadProfile();
    p.kind = LoadProfileKind::Bursts;
    p.bursts = 0;
    EXPECT_EXIT(p.validate("t"), testing::ExitedWithCode(1),
                "bursts");
    p = LoadProfile();
    p.kind = LoadProfileKind::Bursts;
    p.duration = 0.6;
    EXPECT_EXIT(p.validate("t"), testing::ExitedWithCode(1),
                "duration");

    p = LoadProfile();
    p.kind = LoadProfileKind::Churn;
    p.start = -0.1;
    EXPECT_EXIT(p.validate("t"), testing::ExitedWithCode(1), "start");

    // Every registered default is valid for its kind.
    for (LoadProfileKind k :
         {LoadProfileKind::Constant, LoadProfileKind::Diurnal,
          LoadProfileKind::FlashCrowd, LoadProfileKind::Bursts,
          LoadProfileKind::Churn}) {
        LoadProfile d;
        d.kind = k;
        d.validate("defaults");
    }
}

TEST(LoadProfile, KindNamesRoundTrip)
{
    for (LoadProfileKind k :
         {LoadProfileKind::Constant, LoadProfileKind::Diurnal,
          LoadProfileKind::FlashCrowd, LoadProfileKind::Bursts,
          LoadProfileKind::Churn}) {
        LoadProfileKind back;
        ASSERT_TRUE(
            tryLoadProfileKindFromName(loadProfileKindName(k), back));
        EXPECT_EQ(back, k);
    }
    LoadProfileKind out;
    EXPECT_FALSE(tryLoadProfileKindFromName("flashcrowd", out));
    EXPECT_FALSE(tryLoadProfileKindFromName("", out));
}

TEST(LoadProfile, CanonicalCoversKindRelevantParamsOnly)
{
    // Equal profiles (kind-relevant params) compare equal even when
    // irrelevant fields differ — the cache-key equality contract.
    LoadProfile a, b;
    a.kind = b.kind = LoadProfileKind::Diurnal;
    b.start = 0.9; // irrelevant for diurnal
    b.burstSeed = 77;
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.canonical(), b.canonical());

    // Any kind-relevant change changes the string.
    std::set<std::string> keys;
    for (double amp : {0.25, 0.5, 0.75})
        for (double per : {1.0, 2.0}) {
            LoadProfile d;
            d.kind = LoadProfileKind::Diurnal;
            d.amplitude = amp;
            d.periods = per;
            keys.insert(d.canonical());
        }
    EXPECT_EQ(keys.size(), 6u);

    // Kinds never collide.
    for (LoadProfileKind k :
         {LoadProfileKind::Constant, LoadProfileKind::Diurnal,
          LoadProfileKind::FlashCrowd, LoadProfileKind::Bursts,
          LoadProfileKind::Churn}) {
        LoadProfile d;
        d.kind = k;
        keys.insert(d.canonical());
    }
    EXPECT_EQ(keys.size(), 6u + 4u); // diurnal default was counted
}

} // namespace
} // namespace ubik
