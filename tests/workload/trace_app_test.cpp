/**
 * @file
 * Tests for TraceApp (the trace-backed workload wrapper) and batch
 * trace replay: loading through the streaming reader, content-hash
 * identity across encodings and load paths, and BatchApp's looping
 * replay with per-instance address salting.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "workload/batch_app.h"
#include "workload/trace_app.h"
#include "workload/trace_capture.h"
#include "common/rng.h"

namespace ubik {
namespace {

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

TEST(TraceApp, LoadMatchesFromData)
{
    LcAppParams p = lc_presets::specjbb().scaled(16.0);
    TraceData td = captureLcTrace(p, 40, /*seed=*/11);
    std::string path = tmpPath("app.ubtr");
    writeTrace(td, path);

    auto fromFile = TraceApp::load(path, "file");
    auto fromMem =
        TraceApp::fromData(std::make_shared<TraceData>(td), "mem");

    EXPECT_EQ(fromFile->contentHash(), fromMem->contentHash());
    EXPECT_EQ(fromFile->requests(), td.requests());
    EXPECT_EQ(fromFile->accesses(), td.accesses.size());
    EXPECT_EQ(fromFile->data()->accesses, td.accesses);
    EXPECT_EQ(fromFile->name(), "file");
    EXPECT_EQ(fromFile->path(), path);
    EXPECT_NEAR(fromFile->apki(), td.apki(), 1e-12);

    // Default name falls back to the path.
    EXPECT_EQ(TraceApp::load(path)->name(), path);
}

TEST(TraceApp, ContentHashSurvivesReencoding)
{
    LcAppParams p = lc_presets::xapian().scaled(16.0);
    TraceData td = captureLcTrace(p, 30, /*seed=*/2);
    std::string v1 = tmpPath("enc.v1.ubtr");
    std::string v2 = tmpPath("enc.v2.ubtr");
    writeTrace(td, v1, TraceWriterOptions{1, 64 << 10});
    writeTrace(td, v2, TraceWriterOptions{2, 512});
    EXPECT_EQ(TraceApp::load(v1)->contentHash(),
              TraceApp::load(v2)->contentHash());
    EXPECT_EQ(TraceApp::load(v1)->contentHash(), traceContentHash(td));
}

TEST(TraceAppDeath, RejectsEmptyTrace)
{
    EXPECT_DEATH(TraceApp::fromData(std::make_shared<TraceData>(),
                                    "empty"),
                 "no requests");
}

TEST(BatchAppReplay, InstanceZeroReplaysVerbatimAndLoops)
{
    BatchAppParams p =
        batch_presets::make(BatchClass::Friendly, 0).scaled(16.0);
    auto trace = std::make_shared<TraceData>(
        captureBatchTrace(p, 100, /*seed=*/5));

    BatchApp app(p, /*instance=*/0, Rng(42));
    app.bindTrace(trace);
    EXPECT_TRUE(app.replaying());
    // Two full passes: the stream loops without request structure.
    for (int pass = 0; pass < 2; pass++)
        for (std::size_t i = 0; i < trace->accesses.size(); i++)
            ASSERT_EQ(app.nextAddr(), trace->accesses[i])
                << "pass " << pass << " access " << i;
}

TEST(BatchAppReplay, LaterInstancesAreSalted)
{
    BatchAppParams p =
        batch_presets::make(BatchClass::Streaming, 0).scaled(16.0);
    auto trace = std::make_shared<TraceData>(
        captureBatchTrace(p, 50, /*seed=*/5));
    BatchApp app(p, /*instance=*/3, Rng(42));
    app.bindTrace(trace);
    EXPECT_EQ(app.nextAddr(),
              trace->accesses[0] + (static_cast<Addr>(3) << 40));
}

TEST(BatchAppReplayDeath, RejectsTraceWithoutAccesses)
{
    auto empty = std::make_shared<TraceData>();
    empty->requestWork.push_back(10.0);
    empty->requestStart.push_back(0);
    BatchAppParams p = batch_presets::make(BatchClass::Friendly, 0);
    BatchApp app(p, 0, Rng(1));
    EXPECT_DEATH(app.bindTrace(empty), "no accesses");
}

} // namespace
} // namespace ubik
