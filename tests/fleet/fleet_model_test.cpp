/**
 * @file
 * Fleet stage invariants:
 *
 *  - Golden: the fleet-utilization scenario reproduces the retired
 *    datacenter_utilization example bit for bit — same per-mix sweep
 *    results (the example's runMix calls, replicated inline here)
 *    and the same §7.1 aggregates (0.6 util vs 0.1 dedicated, 6x).
 *  - Determinism: fleet results are bit-identical across UBIK_JOBS
 *    and across cold/warm persistent-cache runs.
 *  - FleetSpec round-trips through the scenario JSON form, and the
 *    `servers=` override edits it (loudly failing on non-fleet
 *    scenarios).
 */

#include <gtest/gtest.h>

#include "support/cache_test_util.h"
#include "common/log.h"
#include "sim/scenario.h"

namespace ubik {
namespace {

using test::TempCacheDir;
using test::expectSameResults;

/** Unit-test scale: one seed so the golden replication below is one
 *  runMix call per scheme, exactly like the retired example. */
ExperimentConfig
fleetTestCfg()
{
    ExperimentConfig cfg = test::cacheTestCfg();
    cfg.seeds = 1;
    cfg.jobs = 2;
    return cfg;
}

const ScenarioSpec &
fleetUtilizationSpec()
{
    const ScenarioSpec *spec =
        ScenarioRegistry::instance().find("fleet-utilization");
    EXPECT_NE(spec, nullptr);
    return *spec;
}

TEST(FleetModel, GoldenMatchesRetiredDatacenterUtilizationExample)
{
    ExperimentConfig cfg = fleetTestCfg();

    // The retired examples/datacenter_utilization.cpp, inline: one
    // masstree@0.2 + fft mix under StaticLC and Ubik at seed 1.
    MixSpec mix;
    mix.name = "util";
    mix.lc.app = lc_presets::masstree();
    mix.lc.load = 0.2;
    mix.batch.name = "fft";
    mix.batch.apps = {
        batch_presets::make(BatchClass::Friendly, 1),
        batch_presets::make(BatchClass::Friendly, 6),
        batch_presets::make(BatchClass::Fitting, 3),
    };
    SchemeUnderTest static_lc{"StaticLC", SchemeKind::Vantage,
                              ArrayKind::Z4_52, PolicyKind::StaticLc,
                              0.0};
    SchemeUnderTest ubik{"Ubik", SchemeKind::Vantage, ArrayKind::Z4_52,
                         PolicyKind::Ubik, 0.05};
    MixRunner runner(cfg);
    MixRunResult legacy_static = runner.runMix(mix, static_lc, 1);
    MixRunResult legacy_ubik = runner.runMix(mix, ubik, 1);

    const ScenarioSpec &spec = fleetUtilizationSpec();
    ScenarioResult res = runScenario(spec, scenarioConfig(spec, cfg));

    ASSERT_EQ(res.sweeps.size(), 2u);
    EXPECT_EQ(res.sweeps[0].label, "StaticLC");
    EXPECT_EQ(res.sweeps[1].label, "Ubik");
    expectSameResults(res.sweeps[0].runs, {legacy_static});
    expectSameResults(res.sweeps[1].runs, {legacy_ubik});

    // The example's headline numbers: 3 LC cores at 20% load + 3
    // batch cores at 100% on a 6-core box vs an LC-only fleet.
    ASSERT_TRUE(res.hasFleet);
    EXPECT_EQ(res.fleet.servers, 1000u);
    ASSERT_EQ(res.fleet.schemes.size(), 2u);
    for (const FleetSchemeResult &r : res.fleet.schemes) {
        EXPECT_NEAR(r.utilization, 0.6, 1e-9);
        EXPECT_NEAR(r.dedicatedUtil, 0.1, 1e-9);
        EXPECT_NEAR(r.utilizationLift, 6.0, 1e-9);
        EXPECT_GT(r.machinesSavedVsDedicated, 0);
    }
}

TEST(FleetModel, BitIdenticalAcrossJobsAndCacheState)
{
    const ScenarioSpec &spec = fleetUtilizationSpec();
    TempCacheDir dir("fleet_model");

    ExperimentConfig cfg = scenarioConfig(spec, fleetTestCfg());
    cfg.cacheDir = dir.path();
    cfg.jobs = 1;
    ScenarioResult cold = runScenario(spec, cfg);

    cfg.jobs = 4;
    ScenarioResult warm = runScenario(spec, cfg); // all cache hits

    ExperimentConfig nocache = scenarioConfig(spec, fleetTestCfg());
    nocache.jobs = 3;
    ScenarioResult direct = runScenario(spec, nocache);

    ASSERT_EQ(cold.sweeps.size(), warm.sweeps.size());
    for (std::size_t i = 0; i < cold.sweeps.size(); i++) {
        expectSameResults(cold.sweeps[i].runs, warm.sweeps[i].runs);
        expectSameResults(cold.sweeps[i].runs, direct.sweeps[i].runs);
    }
    std::string a = fleetToJson(cold.fleet).dump(true);
    EXPECT_EQ(a, fleetToJson(warm.fleet).dump(true));
    EXPECT_EQ(a, fleetToJson(direct.fleet).dump(true));
}

TEST(FleetModel, FleetSpecRoundTripsThroughScenarioJson)
{
    ScenarioSpec spec = fleetUtilizationSpec();
    spec.fleet.lcPerServer = 4;
    spec.fleet.batchPerServer = 2;
    spec.fleet.arrivals.imbalance = 0.3;
    spec.fleet.arrivals.profile.kind = LoadProfileKind::Diurnal;
    spec.fleet.queueWorkers = 0;
    spec.fleet.maxWorkers = 6;
    spec.fleet.interference = 0.1;
    spec.fleet.abortProb = 0.01;
    spec.fleet.tailTargetMs = 5.0;
    spec.fleet.sloMargin = 0.08;
    spec.fleet.placementSeed = 9;

    ScenarioSpec back = scenarioFromJson(scenarioToJson(spec));
    EXPECT_TRUE(back.fleet == spec.fleet);
    EXPECT_EQ(scenarioCanonicalJson(back),
              scenarioCanonicalJson(spec));

    // A fleet-less spec serializes without a "fleet" block and comes
    // back fleet-less.
    ScenarioSpec plain = spec;
    plain.fleet = FleetSpec{};
    Json j = scenarioToJson(plain);
    EXPECT_EQ(j.find("fleet"), nullptr);
    EXPECT_EQ(scenarioFromJson(j).fleet.servers, 0u);
}

TEST(FleetModel, ServersOverrideEditsTheFleetStage)
{
    ScenarioSpec spec = fleetUtilizationSpec();
    applyScenarioOverride(spec, "servers=250");
    EXPECT_EQ(spec.fleet.servers, 250u);

    FatalTrap trap;
    EXPECT_THROW(applyScenarioOverride(spec, "servers=0"), FatalError);
    ScenarioSpec plain = spec;
    plain.fleet = FleetSpec{};
    EXPECT_THROW(applyScenarioOverride(plain, "servers=100"),
                 FatalError);
}

TEST(FleetModel, ValidateRejectsNonsense)
{
    FatalTrap trap;
    FleetSpec fs;
    fs.servers = 0;
    EXPECT_NO_THROW(fs.validate("test")); // no fleet stage: a no-op
    fs.servers = 10;
    EXPECT_NO_THROW(fs.validate("test"));
    fs.lcPerServer = 0;
    EXPECT_THROW(fs.validate("test"), FatalError);
    fs = FleetSpec{};
    fs.servers = 10;
    fs.queueWorkers = 0;
    fs.maxWorkers = 0; // autosize with no headroom
    EXPECT_THROW(fs.validate("test"), FatalError);
    fs = FleetSpec{};
    fs.servers = 10;
    fs.interference = -0.5;
    EXPECT_THROW(fs.validate("test"), FatalError);
}

} // namespace
} // namespace ubik
