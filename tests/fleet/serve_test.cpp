/**
 * @file
 * ubik_serve daemon invariants, driven mostly through
 * ServeDaemon::handleRequest (the exact body run() serves per
 * connection) plus one real-socket test:
 *
 *  - a scenario query's "results" member is byte-identical to what a
 *    direct runScenario + scenarioResultsJson produces (what
 *    `ubik_run --results` writes);
 *  - repeated queries hit the response memo and stay byte-identical;
 *  - malformed/invalid requests get {"ok": false, ...} responses and
 *    never kill the daemon;
 *  - concurrent socket clients all receive the same bytes, and
 *    requestStop() drains and unlinks the socket.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <thread>

#include "support/cache_test_util.h"
#include "fleet/serve.h"
#include "sim/scenario.h"

namespace ubik {
namespace {

using test::TempCacheDir;

ExperimentConfig
serveTestCfg(const std::string &cache_dir)
{
    ExperimentConfig cfg = test::cacheTestCfg();
    cfg.seeds = 1;
    cfg.jobs = 2;
    cfg.cacheDir = cache_dir;
    return cfg;
}

/** Parse a daemon response; returns the "ok" member. */
bool
parseResponse(const std::string &resp, Json &out)
{
    std::string err;
    EXPECT_TRUE(Json::parse(resp, out, err)) << err;
    const Json *ok = out.find("ok");
    EXPECT_NE(ok, nullptr);
    return ok && ok->boolean();
}

/** The client side of the protocol: write, half-close, read to EOF
 *  (what `ubik_serve --connect` does). */
std::string
roundTrip(const std::string &path, const std::string &request)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    EXPECT_LT(path.size(), sizeof(addr.sun_path));
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0)
        << std::strerror(errno);
    std::size_t off = 0;
    while (off < request.size()) {
        ssize_t n =
            ::write(fd, request.data() + off, request.size() - off);
        if (n < 0 && errno == EINTR)
            continue;
        EXPECT_GT(n, 0) << std::strerror(errno);
        if (n <= 0) {
            ::close(fd);
            return "";
        }
        off += static_cast<std::size_t>(n);
    }
    ::shutdown(fd, SHUT_WR);
    std::string resp;
    for (;;) {
        char buf[4096];
        ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0 && errno == EINTR)
            continue;
        EXPECT_GE(n, 0) << std::strerror(errno);
        if (n <= 0)
            break;
        resp.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return resp;
}

TEST(ServeDaemon, ScenarioQueryMatchesDirectRunAndMemoizes)
{
    TempCacheDir dir("serve_direct");
    ExperimentConfig cfg = serveTestCfg(dir.path());
    ServeOptions opt;
    ServeDaemon daemon(opt, cfg);

    std::string resp = daemon.handleRequest(
        "{\"query\": \"scenario\", \"name\": \"fleet-utilization\"}");
    Json j;
    ASSERT_TRUE(parseResponse(resp, j));
    const Json *results = j.find("results");
    ASSERT_NE(results, nullptr);

    // Byte-identical to a direct run: scenarioResultsJson is what
    // `ubik_run --results` writes for the same spec + environment.
    const ScenarioSpec *spec =
        ScenarioRegistry::instance().find("fleet-utilization");
    ASSERT_NE(spec, nullptr);
    ExperimentConfig direct_cfg = cfg;
    direct_cfg.fleet = false; // the daemon serves without claiming
    ScenarioResult res = runScenario(*spec, direct_cfg);
    EXPECT_EQ(results->dump(true),
              scenarioResultsJson(*spec, res, false).dump(true));

    // Repeat: answered from the memo, byte-identical.
    std::string again = daemon.handleRequest(
        "{\"query\": \"scenario\", \"name\": \"fleet-utilization\"}");
    EXPECT_EQ(resp, again);
    ServeStatsSnapshot s = daemon.snapshot();
    EXPECT_EQ(s.requests, 2u);
    EXPECT_EQ(s.ok, 2u);
    EXPECT_EQ(s.errors, 0u);
    EXPECT_EQ(s.memoHits, 1u);
}

TEST(ServeDaemon, BadRequestsGetErrorResponsesAndDaemonSurvives)
{
    TempCacheDir dir("serve_errors");
    ServeOptions opt;
    ServeDaemon daemon(opt, serveTestCfg(dir.path()));

    const char *bad[] = {
        "{\"query\":",                              // malformed JSON
        "{\"no_query\": 1}",                        // missing query
        "{\"query\": \"frobnicate\"}",              // unknown query
        "{\"query\": \"scenario\"}",                // no name/spec
        "{\"query\": \"scenario\", \"name\": \"x\","
        " \"spec\": {}}",                           // both name+spec
        "{\"query\": \"scenario\", \"name\": \"nope\"}",
        "{\"query\": \"scenario\", \"spec\": "
        "{\"bogus_key\": 1}}",                      // spec typo
        "{\"query\": \"scenario\", \"name\": \"fleet-utilization\","
        " \"set\": [\"servers=0\"]}",               // bad override
    };
    for (const char *req : bad) {
        Json j;
        std::string resp = daemon.handleRequest(req);
        EXPECT_FALSE(parseResponse(resp, j)) << req;
        const Json *err = j.find("error");
        ASSERT_NE(err, nullptr) << req;
        EXPECT_FALSE(err->str().empty()) << req;
    }

    // Still alive and accounting for everything it saw.
    Json j;
    std::string resp = daemon.handleRequest("{\"query\": \"stats\"}");
    ASSERT_TRUE(parseResponse(resp, j));
    const Json *stats = j.find("stats");
    ASSERT_NE(stats, nullptr);
    ServeStatsSnapshot s = daemon.snapshot();
    EXPECT_EQ(s.errors, std::size(bad));
    EXPECT_EQ(s.requests, std::size(bad) + 1);
    EXPECT_EQ(s.ok, 1u);
}

TEST(ServeDaemon, ListNamesEveryRegisteredScenario)
{
    TempCacheDir dir("serve_list");
    ServeOptions opt;
    ServeDaemon daemon(opt, serveTestCfg(dir.path()));
    Json j;
    ASSERT_TRUE(
        parseResponse(daemon.handleRequest("{\"query\": \"list\"}"), j));
    const Json *names = j.find("scenarios");
    ASSERT_NE(names, nullptr);
    EXPECT_EQ(names->items().size(),
              ScenarioRegistry::instance().all().size());
    bool has_fleet = false;
    for (const Json &n : names->items())
        has_fleet |= n.str() == "fleet-utilization";
    EXPECT_TRUE(has_fleet);
}

TEST(ServeDaemon, ConcurrentSocketClientsGetIdenticalBytes)
{
    TempCacheDir dir("serve_socket");
    std::string sock =
        (std::filesystem::temp_directory_path() /
         ("ubik_serve_test_" + std::to_string(::getpid()) + ".sock"))
            .string();
    ASSERT_LT(sock.size(), sizeof(sockaddr_un{}.sun_path));

    ServeOptions opt;
    opt.socketPath = sock;
    opt.threads = 3;
    ServeDaemon daemon(opt, serveTestCfg(dir.path()));
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;
    std::thread server([&] { daemon.run(); });

    const std::string query =
        "{\"query\": \"scenario\", \"name\": \"fleet-utilization\"}";
    constexpr int kClients = 4;
    std::string resp[kClients];
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; i++)
        clients.emplace_back(
            [&, i] { resp[i] = roundTrip(sock, query); });
    for (std::thread &t : clients)
        t.join();

    for (int i = 0; i < kClients; i++) {
        ASSERT_FALSE(resp[i].empty()) << "client " << i;
        EXPECT_EQ(resp[i], resp[0]) << "client " << i;
        EXPECT_EQ(resp[i].back(), '\n');
        Json j;
        EXPECT_TRUE(parseResponse(resp[i], j)) << "client " << i;
        EXPECT_NE(j.find("results"), nullptr);
    }

    // Graceful drain: stop, join, socket unlinked.
    daemon.requestStop();
    server.join();
    EXPECT_FALSE(std::filesystem::exists(sock));
    ServeStatsSnapshot s = daemon.snapshot();
    EXPECT_EQ(s.requests, static_cast<std::uint64_t>(kClients));
    EXPECT_EQ(s.ok, static_cast<std::uint64_t>(kClients));
}

} // namespace
} // namespace ubik
