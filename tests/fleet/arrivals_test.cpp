/**
 * @file
 * Cluster arrival model invariants: pure-seed determinism, load
 * clamping, profile coupling, and loud validation.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "fleet/arrivals.h"

namespace ubik {
namespace {

TEST(ClusterArrivals, ConstantBalancedLoadIsExactlyNominal)
{
    ArrivalSpec spec;
    spec.nominalLoad = 0.2;
    spec.slices = 4;
    spec.imbalance = 0.0;
    ClusterArrivals arr(spec, 100);
    for (std::uint32_t s = 0; s < arr.slices(); s++)
        for (std::uint32_t srv = 0; srv < 100; srv += 17)
            EXPECT_DOUBLE_EQ(arr.serverLoad(s, srv), 0.2);
}

TEST(ClusterArrivals, ImbalanceIsDeterministicAndClamped)
{
    ArrivalSpec spec;
    spec.nominalLoad = 0.5;
    spec.slices = 3;
    spec.imbalance = 1.5; // violent: forces both clamps into play
    spec.seed = 7;
    ClusterArrivals a(spec, 500);
    ClusterArrivals b(spec, 500);
    bool spread = false;
    for (std::uint32_t s = 0; s < a.slices(); s++)
        for (std::uint32_t srv = 0; srv < 500; srv++) {
            double la = a.serverLoad(s, srv);
            EXPECT_DOUBLE_EQ(la, b.serverLoad(s, srv));
            EXPECT_GE(la, ClusterArrivals::kMinLoad);
            EXPECT_LE(la, ClusterArrivals::kMaxLoad);
            if (la != spec.nominalLoad)
                spread = true;
        }
    EXPECT_TRUE(spread);
    // A different seed redraws the imbalance.
    ArrivalSpec other = spec;
    other.seed = 8;
    ClusterArrivals c(other, 500);
    bool differs = false;
    for (std::uint32_t srv = 0; srv < 500 && !differs; srv++)
        differs = c.serverLoad(0, srv) != a.serverLoad(0, srv);
    EXPECT_TRUE(differs);
}

TEST(ClusterArrivals, ProfileShapesSliceLoads)
{
    ArrivalSpec spec;
    spec.nominalLoad = 0.4;
    spec.slices = 8;
    spec.profile.kind = LoadProfileKind::Diurnal;
    spec.profile.amplitude = 0.5;
    spec.profile.periods = 1.0;
    ClusterArrivals arr(spec, 10);
    double lo = 1e9, hi = 0;
    for (std::uint32_t s = 0; s < arr.slices(); s++) {
        double l = arr.serverLoad(s, 0);
        lo = std::min(lo, l);
        hi = std::max(hi, l);
    }
    // +/-50% around nominal, quantized to slice midpoints.
    EXPECT_LT(lo, 0.3);
    EXPECT_GT(hi, 0.5);
}

TEST(ClusterArrivals, ClusterRequestRateScalesWithInstances)
{
    ArrivalSpec spec;
    spec.nominalLoad = 0.2;
    ClusterArrivals arr(spec, 10);
    // 1M-cycle mean service at 3.2 GHz and 20% load is 640 req/s
    // per instance.
    double one = arr.clusterRequestRate(1e6, 1.0, 1);
    EXPECT_NEAR(one, 640.0, 1e-9);
    EXPECT_NEAR(arr.clusterRequestRate(1e6, 1.0, 3000), 3000 * one,
                1e-6);
}

TEST(ClusterArrivals, ValidateRejectsNonsense)
{
    FatalTrap trap;
    ArrivalSpec bad;
    bad.users = 0;
    EXPECT_THROW(bad.validate("test"), FatalError);
    bad = ArrivalSpec{};
    bad.nominalLoad = 0.99;
    EXPECT_THROW(bad.validate("test"), FatalError);
    bad = ArrivalSpec{};
    bad.slices = 0;
    EXPECT_THROW(bad.validate("test"), FatalError);
    bad = ArrivalSpec{};
    bad.imbalance = -0.1;
    EXPECT_THROW(bad.validate("test"), FatalError);
    ArrivalSpec good;
    EXPECT_NO_THROW(good.validate("test"));
}

} // namespace
} // namespace ubik
