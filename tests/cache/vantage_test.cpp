/**
 * @file
 * Tests for Vantage partitioning, focusing on the property Ubik's
 * transient analysis leans on (§5.1): a partition below its target is
 * (essentially) never evicted from, so each miss grows it by one line
 * until the target is reached.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/set_assoc_array.h"
#include "cache/vantage.h"
#include "cache/zcache_array.h"

namespace ubik {
namespace {

std::unique_ptr<Vantage>
makeVantage(std::uint64_t lines = 4096, std::uint32_t parts = 4)
{
    return std::make_unique<Vantage>(
        std::make_unique<ZCacheArray>(lines, 4, 52, 7), parts);
}

TEST(Vantage, TargetsScaledByUnmanagedFraction)
{
    auto v = makeVantage(4096, 3);
    v->setTargetSize(1, 4096);
    EXPECT_EQ(v->targetSize(1), 4096u);
    // Effective target leaves room for the unmanaged region (~5%).
    EXPECT_LT(v->effectiveTarget(1), 4096u);
    EXPECT_GE(v->effectiveTarget(1), 3600u);
}

TEST(Vantage, GrowingPartitionClaimsOneLinePerMiss)
{
    auto v = makeVantage(4096, 3);
    v->setTargetSize(1, 2048);
    v->setTargetSize(2, 2048);
    AccessContext ctx{1, 0, 0};
    std::uint64_t before = v->actualSize(1);
    for (Addr x = 0; x < 500; x++)
        v->access(x, ctx);
    // 500 cold misses => exactly 500 lines (nothing evicted from a
    // growing partition).
    EXPECT_EQ(v->actualSize(1), before + 500);
}

TEST(Vantage, NoEvictionFromUnderTargetPartitionOnZCache)
{
    auto v = makeVantage(8192, 3);
    v->setTargetSize(1, 4096);
    v->setTargetSize(2, 4096);
    AccessContext lc{1, 0, 0};
    AccessContext batch{2, 1, 0};
    // Fill the batch partition way beyond its share with a stream.
    for (Addr x = 0; x < 40000; x++)
        v->access(0x100000 + x, batch);
    // Now grow the LC partition from zero while the batch app keeps
    // streaming: LC misses must never evict LC lines.
    std::uint64_t lc_lines = 0;
    for (Addr x = 0; x < 3000; x++) {
        v->access(x, lc);
        v->access(0x200000 + x, batch);
        std::uint64_t cur = v->actualSize(1);
        ASSERT_GE(cur, lc_lines) << "growing partition shrank";
        lc_lines = cur;
    }
    EXPECT_EQ(v->underTargetEvictions(), 0u);
}

TEST(Vantage, ShrinkingPartitionDonatesSpace)
{
    auto v = makeVantage(4096, 3);
    v->setTargetSize(1, 3000);
    v->setTargetSize(2, 900);
    AccessContext p1{1, 0, 0};
    AccessContext p2{2, 1, 0};
    for (Addr x = 0; x < 6000; x++)
        v->access(x % 3000, p1);
    std::uint64_t big = v->actualSize(1);
    EXPECT_GT(big, 2000u);

    // Shrink partition 1, grow partition 2; p2's misses should now
    // reclaim p1's lines via demotion+eviction.
    v->setTargetSize(1, 900);
    v->setTargetSize(2, 3000);
    for (Addr x = 0; x < 6000; x++)
        v->access(0x500000 + x % 2500, p2);
    EXPECT_LT(v->actualSize(1), big);
    EXPECT_GT(v->actualSize(2), 1500u);
    EXPECT_GT(v->demotions(), 0u);
}

TEST(Vantage, PartitionSizesConvergeToTargets)
{
    auto v = makeVantage(4096, 3);
    v->setTargetSize(1, 1024);
    v->setTargetSize(2, 3072);
    AccessContext p1{1, 0, 0};
    AccessContext p2{2, 1, 0};
    for (int rep = 0; rep < 30; rep++) {
        for (Addr x = 0; x < 2000; x++)
            v->access(x, p1); // WS 2000 > target 1024: pressure
        for (Addr x = 0; x < 4000; x++)
            v->access(0x700000 + x, p2);
    }
    double eff1 = static_cast<double>(v->effectiveTarget(1));
    double act1 = static_cast<double>(v->actualSize(1));
    // Within 15% of the effective target under steady pressure.
    EXPECT_NEAR(act1 / eff1, 1.0, 0.15);
}

TEST(Vantage, IsolationUnderStreamingInterference)
{
    // A hot working set inside its partition must keep hitting while
    // another partition streams: the core QoS property.
    auto v = makeVantage(4096, 3);
    v->setTargetSize(1, 2048);
    v->setTargetSize(2, 2048);
    AccessContext lc{1, 0, 0};
    AccessContext batch{2, 1, 0};
    // Warm a 1500-line working set (fits in 2048-line partition).
    for (int rep = 0; rep < 3; rep++)
        for (Addr x = 0; x < 1500; x++)
            v->access(x, lc);
    // Stream hard in the other partition.
    for (Addr x = 0; x < 100000; x++)
        v->access(0x900000 + x, batch);
    // Re-touch the working set: overwhelmingly hits.
    std::uint64_t hits = 0;
    for (Addr x = 0; x < 1500; x++)
        hits += v->access(x, lc).hit ? 1 : 0;
    EXPECT_GT(hits, 1400u);
}

TEST(Vantage, ForcedEvictionsRareOnZCacheCommonOnSa16)
{
    // Fig 13's mechanism: with few replacement candidates (SA16),
    // Vantage must sometimes evict from under-target partitions.
    auto stress = [](PartitionScheme &v) {
        v.setTargetSize(1, 2048);
        v.setTargetSize(2, 1536);
        AccessContext p1{1, 0, 0};
        AccessContext p2{2, 1, 0};
        std::uint64_t x = 99;
        for (int i = 0; i < 150000; i++) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            v.access(x % 4000, p1);
            v.access(0xa00000 + (x >> 32) % 100000, p2);
        }
    };
    Vantage z(std::make_unique<ZCacheArray>(4096, 4, 52, 3), 3);
    Vantage sa(std::make_unique<SetAssocArray>(4096, 16, 3), 3);
    stress(z);
    stress(sa);
    double z_rate = static_cast<double>(z.underTargetEvictions());
    double sa_rate = static_cast<double>(sa.underTargetEvictions());
    EXPECT_LT(z_rate, sa_rate + 1.0);
    // The zcache keeps guarantee violations negligible.
    double z_frac = z_rate / static_cast<double>(z.accesses(1) +
                                                 z.accesses(2));
    EXPECT_LT(z_frac, 1e-3);
}

TEST(Vantage, ResizeWithoutFlush)
{
    // Resizing must not invalidate resident lines (Vantage's cheap
    // reconfiguration, §2.2).
    auto v = makeVantage(4096, 3);
    v->setTargetSize(1, 2048);
    v->setTargetSize(2, 2048);
    AccessContext lc{1, 0, 0};
    for (Addr x = 0; x < 1000; x++)
        v->access(x, lc);
    v->setTargetSize(1, 512); // shrink target
    // Lines are still resident until replacement pressure demotes
    // them: immediate re-touch still hits.
    std::uint64_t hits = 0;
    for (Addr x = 0; x < 1000; x++)
        hits += v->access(x, lc).hit ? 1 : 0;
    EXPECT_GT(hits, 900u);
}

class VantageParts : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(VantageParts, SizesAccountedExactly)
{
    std::uint32_t nparts = GetParam();
    Vantage v(std::make_unique<ZCacheArray>(2048, 4, 16, 1), nparts);
    std::uint64_t share = 2048 / (nparts - 1);
    for (PartId p = 1; p < nparts; p++)
        v.setTargetSize(p, share);
    std::uint64_t x = 4242;
    for (int i = 0; i < 30000; i++) {
        x = x * 6364136223846793005ull + 1;
        PartId p = 1 + (x >> 60) % (nparts - 1);
        AccessContext ctx{p, p - 1, 0};
        v.access((static_cast<Addr>(p) << 32) + (x >> 16) % 3000, ctx);
    }
    // Sum of actual sizes over all partitions == resident lines.
    std::uint64_t sum = 0;
    for (PartId p = 0; p < nparts; p++)
        sum += v.actualSize(p);
    std::uint64_t resident = 0;
    for (std::uint64_t s = 0; s < v.array().numLines(); s++)
        resident += v.array().validAt(s) ? 1 : 0;
    EXPECT_EQ(sum, resident);
}

INSTANTIATE_TEST_SUITE_P(PartCounts, VantageParts,
                         ::testing::Values(2u, 3u, 5u, 7u));

} // namespace
} // namespace ubik
