/**
 * @file
 * Tests for the zcache array: candidate expansion via replacement
 * walks, relocation chains, and the residency invariants Vantage's
 * analysis depends on.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "cache/zcache_array.h"

namespace ubik {
namespace {

TEST(ZCacheArray, Geometry)
{
    ZCacheArray a(4096, 4, 52);
    EXPECT_EQ(a.numLines(), 4096u);
    EXPECT_EQ(a.ways(), 4u);
    EXPECT_EQ(a.associativity(), 52u);
}

TEST(ZCacheArray, InstallThenLookup)
{
    ZCacheArray a(4096, 4, 52);
    std::vector<Candidate> cands;
    a.victimCandidates(0x77, cands);
    ASSERT_FALSE(cands.empty());
    std::uint64_t slot = a.install(0x77, cands, 0);
    EXPECT_EQ(a.lookup(0x77), static_cast<std::int64_t>(slot));
}

TEST(ZCacheArray, CandidateCountNearTarget)
{
    // Walk expansion needs resident lines to relocate, so fill the
    // array first (an empty slot is a terminal candidate anyway).
    ZCacheArray a(8192, 4, 52);
    std::vector<Candidate> cands;
    for (Addr x = 0; x < 16384; x++) {
        if (a.lookup(x) >= 0)
            continue;
        a.victimCandidates(x, cands);
        a.install(x, cands, x % cands.size());
    }
    a.victimCandidates(0x40000, cands);
    // First level yields `ways` candidates; walks expand to ~52.
    EXPECT_GE(cands.size(), 40u);
    EXPECT_LE(cands.size(), 52u);
}

TEST(ZCacheArray, CandidateSlotsDistinct)
{
    ZCacheArray a(8192, 4, 52);
    std::vector<Candidate> cands;
    a.victimCandidates(0xdef, cands);
    std::set<std::uint64_t> slots;
    for (const auto &c : cands)
        slots.insert(c.slot);
    EXPECT_EQ(slots.size(), cands.size());
}

TEST(ZCacheArray, FirstLevelParentsAreRoots)
{
    ZCacheArray a(8192, 4, 52);
    std::vector<Candidate> cands;
    a.victimCandidates(0x123, cands);
    for (std::size_t i = 0; i < 4 && i < cands.size(); i++)
        EXPECT_EQ(cands[i].parent, -1);
    for (std::size_t i = 4; i < cands.size(); i++) {
        ASSERT_GE(cands[i].parent, 0);
        ASSERT_LT(static_cast<std::size_t>(cands[i].parent), i);
    }
}

/**
 * The defining zcache property: installing into a deep candidate
 * relocates lines along the chain, and every previously resident
 * line except the victim remains findable afterwards.
 */
TEST(ZCacheArray, RelocationsPreserveResidency)
{
    ZCacheArray a(1024, 4, 16, 99);
    std::vector<Candidate> cands;
    std::set<Addr> resident;
    std::uint64_t x = 777;
    for (int i = 0; i < 5000; i++) {
        x = x * 2862933555777941757ull + 3037000493ull;
        Addr addr = (x >> 16) % 4096;
        if (a.lookup(addr) >= 0)
            continue;
        a.victimCandidates(addr, cands);
        ASSERT_FALSE(cands.empty());
        // Deliberately choose the *deepest* candidate to exercise the
        // longest relocation chains.
        std::size_t victim_idx = cands.size() - 1;
        Addr victim = a.addrAt(cands[victim_idx].slot);
        a.install(addr, cands, victim_idx);
        if (victim != kInvalidAddr)
            resident.erase(victim);
        resident.insert(addr);
        // Spot-check every 97 installs to keep the test fast.
        if (i % 97 == 0) {
            for (Addr r : resident)
                ASSERT_GE(a.lookup(r), 0)
                    << "lost line after relocation chain";
        }
    }
    for (Addr r : resident)
        EXPECT_GE(a.lookup(r), 0);
}

TEST(ZCacheArray, NoDuplicateResidentAddresses)
{
    ZCacheArray a(512, 4, 16, 5);
    std::vector<Candidate> cands;
    std::uint64_t x = 31337;
    for (int i = 0; i < 3000; i++) {
        x = x * 6364136223846793005ull + 1;
        Addr addr = (x >> 24) % 600; // heavy conflict pressure
        if (a.lookup(addr) >= 0)
            continue;
        a.victimCandidates(addr, cands);
        a.install(addr, cands, x % cands.size());
    }
    std::map<Addr, int> seen;
    for (std::uint64_t s = 0; s < a.numLines(); s++)
        if (a.validAt(s))
            seen[a.addrAt(s)]++;
    for (const auto &[addr, n] : seen)
        EXPECT_EQ(n, 1) << "address " << addr << " resident twice";
}

TEST(ZCacheArray, WaySlotConsistentWithCandidates)
{
    ZCacheArray a(4096, 4, 52, 11);
    std::vector<Candidate> cands;
    a.victimCandidates(0x5555, cands);
    // First-level candidates must be the address's own way slots.
    std::set<std::uint64_t> own;
    for (std::uint32_t w = 0; w < 4; w++)
        own.insert(a.waySlot(0x5555, w));
    for (std::size_t i = 0; i < 4 && i < cands.size(); i++)
        EXPECT_TRUE(own.count(cands[i].slot));
}

TEST(ZCacheArray, FlushEmptiesEverything)
{
    ZCacheArray a(512, 4, 16);
    std::vector<Candidate> cands;
    for (Addr x = 0; x < 100; x++) {
        if (a.lookup(x) >= 0)
            continue;
        a.victimCandidates(x, cands);
        a.install(x, cands, 0);
    }
    a.flush();
    for (std::uint64_t s = 0; s < a.numLines(); s++)
        EXPECT_FALSE(a.validAt(s));
}

class ZCacheStress
    : public ::testing::TestWithParam<std::pair<std::uint32_t,
                                                std::uint32_t>>
{
};

TEST_P(ZCacheStress, LookupAlwaysFindsLastInstall)
{
    auto [ways, cand_target] = GetParam();
    ZCacheArray a(2048, ways, cand_target, 17);
    std::vector<Candidate> cands;
    std::uint64_t x = 9001;
    for (int i = 0; i < 4000; i++) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        Addr addr = x % 10000;
        if (a.lookup(addr) >= 0)
            continue;
        a.victimCandidates(addr, cands);
        std::uint64_t slot = a.install(addr, cands, x % cands.size());
        ASSERT_EQ(a.lookup(addr), static_cast<std::int64_t>(slot));
        ASSERT_EQ(a.addrAt(slot), addr);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ZCacheStress,
    ::testing::Values(std::make_pair(2u, 8u), std::make_pair(4u, 16u),
                      std::make_pair(4u, 52u),
                      std::make_pair(8u, 64u)));

} // namespace
} // namespace ubik
