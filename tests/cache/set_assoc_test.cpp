/**
 * @file
 * Tests for the set-associative cache array.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cache/set_assoc_array.h"

namespace ubik {
namespace {

TEST(SetAssocArray, Geometry)
{
    SetAssocArray a(1024, 16);
    EXPECT_EQ(a.numLines(), 1024u);
    EXPECT_EQ(a.associativity(), 16u);
    EXPECT_EQ(a.numSets(), 64u);
}

TEST(SetAssocArray, LookupMissOnEmpty)
{
    SetAssocArray a(256, 16);
    EXPECT_LT(a.lookup(0x1234), 0);
}

TEST(SetAssocArray, InstallThenLookup)
{
    SetAssocArray a(256, 16);
    std::vector<Candidate> cands;
    a.victimCandidates(0x42, cands);
    ASSERT_EQ(cands.size(), 16u);
    std::uint64_t slot = a.install(0x42, cands, 0);
    EXPECT_EQ(a.lookup(0x42), static_cast<std::int64_t>(slot));
    EXPECT_EQ(a.addrAt(slot), 0x42u);
}

TEST(SetAssocArray, CandidatesAreTheAddressesSet)
{
    SetAssocArray a(1024, 16);
    std::vector<Candidate> cands;
    a.victimCandidates(0x99, cands);
    std::uint64_t set = a.setIndex(0x99);
    for (const auto &c : cands) {
        EXPECT_EQ(c.slot / 16, set);
        EXPECT_EQ(c.parent, -1); // direct candidates, no chains
    }
    // All distinct slots.
    std::set<std::uint64_t> slots;
    for (const auto &c : cands)
        slots.insert(c.slot);
    EXPECT_EQ(slots.size(), cands.size());
}

TEST(SetAssocArray, InstallEvictsChosenVictim)
{
    SetAssocArray a(64, 16);
    std::vector<Candidate> cands;
    // Fill one set with 16 conflicting lines.
    std::vector<Addr> addrs;
    Addr base = 0x1000;
    std::uint64_t set = a.setIndex(base);
    Addr probe = base;
    while (addrs.size() < 16) {
        if (a.setIndex(probe) == set) {
            a.victimCandidates(probe, cands);
            // Choose the first empty slot.
            for (std::size_t i = 0; i < cands.size(); i++) {
                if (!a.validAt(cands[i].slot)) {
                    a.install(probe, cands, i);
                    break;
                }
            }
            addrs.push_back(probe);
        }
        probe++;
    }
    for (Addr x : addrs)
        EXPECT_GE(a.lookup(x), 0);

    // Find one more conflicting address and install over victim 0.
    while (a.setIndex(probe) != set || a.lookup(probe) >= 0)
        probe++;
    a.victimCandidates(probe, cands);
    Addr victim_addr = a.addrAt(cands[3].slot);
    a.install(probe, cands, 3);
    EXPECT_GE(a.lookup(probe), 0);
    EXPECT_LT(a.lookup(victim_addr), 0);
}

TEST(SetAssocArray, FlushEmptiesEverything)
{
    SetAssocArray a(256, 16);
    std::vector<Candidate> cands;
    for (Addr x = 0; x < 100; x++) {
        a.victimCandidates(x, cands);
        a.install(x, cands, x % 16);
    }
    a.flush();
    for (Addr x = 0; x < 100; x++)
        EXPECT_LT(a.lookup(x), 0);
    for (std::uint64_t s = 0; s < a.numLines(); s++)
        EXPECT_FALSE(a.validAt(s));
}

TEST(SetAssocArray, SaltChangesMapping)
{
    SetAssocArray a(4096, 16, 1), b(4096, 16, 2);
    int diff = 0;
    for (Addr x = 0; x < 200; x++)
        if (a.setIndex(x) != b.setIndex(x))
            diff++;
    EXPECT_GT(diff, 100); // salts decorrelate most addresses
}

TEST(SetAssocArray, IndexUniformity)
{
    // The hashed index must spread a dense address range evenly
    // enough that no set gets more than ~4x its fair share.
    SetAssocArray a(4096, 16, 7);
    std::vector<int> per_set(a.numSets(), 0);
    const int n = 64 * 256;
    for (Addr x = 0; x < n; x++)
        per_set[a.setIndex(x)]++;
    int fair = n / static_cast<int>(a.numSets());
    for (int c : per_set)
        EXPECT_LT(c, 4 * fair);
}

class SetAssocWays : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(SetAssocWays, ResidencyNeverExceedsCapacity)
{
    std::uint32_t ways = GetParam();
    SetAssocArray a(1024, ways, 3);
    std::vector<Candidate> cands;
    std::uint64_t x = 12345;
    for (int i = 0; i < 20000; i++) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        Addr addr = (x >> 20) % 8192;
        if (a.lookup(addr) >= 0)
            continue;
        a.victimCandidates(addr, cands);
        ASSERT_EQ(cands.size(), ways);
        a.install(addr, cands, i % ways);
        ASSERT_EQ(a.lookup(addr) >= 0, true);
    }
    std::uint64_t valid = 0;
    for (std::uint64_t s = 0; s < a.numLines(); s++)
        valid += a.validAt(s) ? 1 : 0;
    EXPECT_LE(valid, a.numLines());
}

INSTANTIATE_TEST_SUITE_P(Ways, SetAssocWays,
                         ::testing::Values(4u, 16u, 64u));

} // namespace
} // namespace ubik
