/**
 * @file
 * Cross-product property tests over every (scheme, array) pairing
 * the evaluation uses (Fig 13): shared invariants that must hold for
 * any partitioned cache under random target churn and skewed access
 * streams — capacity conservation, size accounting, convergence
 * toward targets, reset semantics, and determinism.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cache/set_assoc_array.h"
#include "cache/vantage.h"
#include "cache/way_partitioning.h"
#include "cache/zcache_array.h"
#include "common/rng.h"

namespace ubik {
namespace {

enum class S
{
    SharedLru,
    Vantage,
    WayPart
};
enum class A
{
    Z4_52,
    SA16,
    SA64
};

struct Combo
{
    S scheme;
    A array;

    std::string
    label() const
    {
        std::string s = scheme == S::SharedLru ? "LRU"
                        : scheme == S::Vantage ? "Vantage"
                                               : "WayPart";
        std::string a = array == A::Z4_52  ? "Z4_52"
                        : array == A::SA16 ? "SA16"
                                           : "SA64";
        return s + "_" + a;
    }
};

/** gtest parameter printer (drives readable test names). */
std::ostream &
operator<<(std::ostream &os, const Combo &c)
{
    return os << c.label();
}

constexpr std::uint64_t kLines = 8192;
constexpr std::uint32_t kParts = 4; // 1 unmanaged + 3 apps

std::unique_ptr<CacheArray>
makeArray(A a, std::uint64_t seed)
{
    switch (a) {
      case A::Z4_52:
        return std::make_unique<ZCacheArray>(kLines, 4, 52, seed);
      case A::SA16:
        return std::make_unique<SetAssocArray>(kLines, 16, seed);
      case A::SA64:
        return std::make_unique<SetAssocArray>(kLines, 64, seed);
    }
    return nullptr;
}

std::unique_ptr<PartitionScheme>
makeScheme(const Combo &c, std::uint64_t seed)
{
    switch (c.scheme) {
      case S::SharedLru:
        return std::make_unique<SharedLru>(makeArray(c.array, seed),
                                           kParts);
      case S::Vantage:
        return std::make_unique<Vantage>(makeArray(c.array, seed),
                                         kParts);
      case S::WayPart:
        return std::make_unique<WayPartitioning>(
            std::make_unique<SetAssocArray>(
                kLines, c.array == A::SA16 ? 16 : 64, seed),
            kParts);
    }
    return nullptr;
}

/** Drive a skewed access mix from three apps with target churn. */
void
churn(PartitionScheme &s, Rng &rng, std::uint64_t accesses,
      bool resize_targets)
{
    std::vector<ZipfDistribution> zipf;
    for (int a = 0; a < 3; a++)
        zipf.emplace_back(3000 + 500 * a, 0.7);
    for (std::uint64_t i = 0; i < accesses; i++) {
        AppId app = static_cast<AppId>(rng.uniformInt(3));
        AccessContext ctx{app + 1, app, i / 100};
        Addr addr = (static_cast<Addr>(app + 1) << 40) + zipf[app](rng);
        s.access(addr, ctx);
        if (resize_targets && i % 2048 == 0) {
            // Random repartition of ~all lines over the 3 apps.
            std::uint64_t a1 = rng.uniformInt(kLines / 2);
            std::uint64_t a2 = rng.uniformInt(kLines / 2 - a1 / 2);
            s.setTargetSize(1, a1);
            s.setTargetSize(2, a2);
            s.setTargetSize(3, kLines - kLines / 8 - a1 - a2);
        }
    }
}

class SchemeMatrix : public testing::TestWithParam<Combo>
{
};

TEST_P(SchemeMatrix, ResidencyNeverExceedsCapacity)
{
    auto s = makeScheme(GetParam(), 11);
    Rng rng(1);
    churn(*s, rng, 60000, true);
    std::uint64_t resident = 0;
    for (PartId p = 0; p < s->numPartitions(); p++)
        resident += s->actualSize(p);
    EXPECT_LE(resident, kLines);
    EXPECT_GT(resident, kLines / 2); // and the cache actually fills
}

TEST_P(SchemeMatrix, OwnerCountsMatchPartitionSizes)
{
    auto s = makeScheme(GetParam(), 13);
    Rng rng(2);
    churn(*s, rng, 40000, true);
    std::uint64_t owned = 0, actual = 0;
    for (AppId a = 0; a < 3; a++)
        owned += s->ownerLines(a);
    for (PartId p = 0; p < s->numPartitions(); p++)
        actual += s->actualSize(p);
    // Every resident line has exactly one owner app.
    EXPECT_EQ(owned, actual);
}

TEST_P(SchemeMatrix, MissCountsAreConsistent)
{
    auto s = makeScheme(GetParam(), 17);
    Rng rng(3);
    churn(*s, rng, 40000, false);
    for (PartId p = 1; p < s->numPartitions(); p++) {
        EXPECT_LE(s->misses(p), s->accesses(p));
        EXPECT_GT(s->accesses(p), 0u);
    }
}

TEST_P(SchemeMatrix, ConvergesTowardStableTargets)
{
    Combo c = GetParam();
    if (c.scheme == S::SharedLru)
        GTEST_SKIP() << "LRU has no targets to converge to";
    auto s = makeScheme(c, 19);
    // Uneven split; leave Vantage's unmanaged region its share. Every
    // app's working set (>= 3000 lines) exceeds its target, so every
    // partition is under pressure — targets only bind under pressure
    // (an unpressured partition may legitimately keep borrowed space).
    std::uint64_t budget = kLines - kLines / 8;
    s->setTargetSize(1, budget / 4); // ws 3000 > 1792
    s->setTargetSize(2, budget / 4); // ws 3500 > 1792
    s->setTargetSize(3, budget / 2); // ws 4000 > 3584
    Rng rng(4);
    churn(*s, rng, 120000, false);
    for (PartId p = 1; p <= 3; p++) {
        double target = static_cast<double>(s->targetSize(p));
        double actual = static_cast<double>(s->actualSize(p));
        // Within 25% of target (way granularity is coarse on SA16).
        EXPECT_NEAR(actual, target, 0.25 * target + 64)
            << "partition " << p;
    }
}

TEST_P(SchemeMatrix, ResetClearsState)
{
    auto s = makeScheme(GetParam(), 23);
    Rng rng(5);
    churn(*s, rng, 20000, true);
    s->reset();
    for (PartId p = 0; p < s->numPartitions(); p++) {
        EXPECT_EQ(s->actualSize(p), 0u);
        EXPECT_EQ(s->accesses(p), 0u);
        EXPECT_EQ(s->misses(p), 0u);
    }
    // And it works again after the reset.
    churn(*s, rng, 5000, false);
    std::uint64_t resident = 0;
    for (PartId p = 0; p < s->numPartitions(); p++)
        resident += s->actualSize(p);
    EXPECT_GT(resident, 0u);
}

TEST_P(SchemeMatrix, DeterministicReplay)
{
    auto run = [&](std::uint64_t seed) {
        auto s = makeScheme(GetParam(), seed);
        Rng rng(6);
        churn(*s, rng, 30000, true);
        std::uint64_t sig = s->forcedEvictions();
        for (PartId p = 0; p < s->numPartitions(); p++)
            sig = sig * 1000003 + s->actualSize(p) * 31 + s->misses(p);
        return sig;
    };
    EXPECT_EQ(run(77), run(77));
    EXPECT_NE(run(77), run(78)); // array hashing actually varies
}

TEST_P(SchemeMatrix, RepeatedResizeChurnKeepsAccountingExact)
{
    auto s = makeScheme(GetParam(), 29);
    Rng rng(7);
    for (int round = 0; round < 20; round++) {
        churn(*s, rng, 3000, true);
        std::uint64_t resident = 0;
        for (PartId p = 0; p < s->numPartitions(); p++)
            resident += s->actualSize(p);
        ASSERT_LE(resident, kLines) << "round " << round;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SchemeMatrix,
    testing::Values(Combo{S::SharedLru, A::Z4_52},
                    Combo{S::SharedLru, A::SA16},
                    Combo{S::Vantage, A::Z4_52},
                    Combo{S::Vantage, A::SA16},
                    Combo{S::Vantage, A::SA64},
                    Combo{S::WayPart, A::SA16},
                    Combo{S::WayPart, A::SA64}),
    [](const testing::TestParamInfo<Combo> &info) {
        return info.param.label();
    });

} // namespace
} // namespace ubik
