/**
 * @file
 * Tests for the PartitionScheme base machinery and the SharedLru
 * baseline scheme.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/scheme.h"
#include "cache/set_assoc_array.h"
#include "cache/zcache_array.h"

namespace ubik {
namespace {

SharedLru
makeLru(std::uint64_t lines = 256, std::uint32_t parts = 4)
{
    return SharedLru(std::make_unique<SetAssocArray>(lines, 16, 1),
                     parts);
}

TEST(SharedLru, MissThenHit)
{
    auto lru = makeLru();
    AccessContext ctx{1, 0, 5};
    auto out1 = lru.access(0x10, ctx);
    EXPECT_FALSE(out1.hit);
    auto out2 = lru.access(0x10, ctx);
    EXPECT_TRUE(out2.hit);
    EXPECT_EQ(lru.accesses(1), 2u);
    EXPECT_EQ(lru.misses(1), 1u);
}

TEST(SharedLru, HitReportsPreviousRequestId)
{
    auto lru = makeLru();
    AccessContext first{1, 0, 7};
    lru.access(0xaa, first);
    AccessContext later{1, 0, 12};
    auto out = lru.access(0xaa, later);
    ASSERT_TRUE(out.hit);
    EXPECT_EQ(out.hitPrevReqId, 7u);
    EXPECT_EQ(out.hitPrevOwner, 0u);
}

TEST(SharedLru, OwnershipTransfersOnHit)
{
    auto lru = makeLru();
    AccessContext a{1, 0, 0};
    AccessContext b{2, 1, 0};
    lru.access(0xbb, a);
    EXPECT_EQ(lru.ownerLines(0), 1u);
    auto out = lru.access(0xbb, b);
    ASSERT_TRUE(out.hit);
    EXPECT_EQ(out.hitPrevOwner, 0u);
    EXPECT_EQ(lru.ownerLines(0), 0u);
    EXPECT_EQ(lru.ownerLines(1), 1u);
}

TEST(SharedLru, EvictsLeastRecentlyUsedAmongCandidates)
{
    // Fill a 4-way array set beyond capacity; the victim must always
    // be the oldest-touched line in the set.
    SharedLru lru(std::make_unique<SetAssocArray>(64, 4, 0), 2);
    AccessContext ctx{1, 0, 0};
    // Touch a working set larger than the whole array: every line
    // eventually evicts, and re-touching keeps a line alive.
    Addr hot = 0;
    lru.access(hot, ctx);
    for (Addr x = 1; x < 512; x++) {
        lru.access(hot, ctx); // keep hot line MRU
        lru.access(x, ctx);
    }
    // hot stayed resident the whole time: its re-accesses are hits.
    auto out = lru.access(hot, ctx);
    EXPECT_TRUE(out.hit);
}

TEST(SharedLru, VictimFieldsPopulated)
{
    SharedLru lru(std::make_unique<SetAssocArray>(16, 4, 0), 3);
    AccessContext ctx{2, 1, 0};
    // Overflow the array so evictions must happen.
    bool saw_victim = false;
    for (Addr x = 0; x < 64; x++) {
        auto out = lru.access(x, ctx);
        if (out.victimAddr != kInvalidAddr) {
            saw_victim = true;
            EXPECT_EQ(out.victimPart, 2u);
        }
    }
    EXPECT_TRUE(saw_victim);
}

TEST(SharedLru, ActualSizeTracksResidency)
{
    auto lru = makeLru(256, 4);
    AccessContext p1{1, 0, 0};
    AccessContext p2{2, 1, 0};
    for (Addr x = 0; x < 20; x++)
        lru.access(x, p1);
    for (Addr x = 100; x < 110; x++)
        lru.access(x, p2);
    EXPECT_EQ(lru.actualSize(1), 20u);
    EXPECT_EQ(lru.actualSize(2), 10u);
    EXPECT_EQ(lru.ownerLines(0), 20u);
    EXPECT_EQ(lru.ownerLines(1), 10u);
}

TEST(SharedLru, ResetClearsEverything)
{
    auto lru = makeLru();
    AccessContext ctx{1, 0, 0};
    for (Addr x = 0; x < 50; x++)
        lru.access(x, ctx);
    lru.reset();
    EXPECT_EQ(lru.actualSize(1), 0u);
    EXPECT_EQ(lru.accesses(1), 0u);
    EXPECT_EQ(lru.misses(1), 0u);
    auto out = lru.access(0x0, ctx);
    EXPECT_FALSE(out.hit); // flushed
}

TEST(SharedLru, WorksOnZCache)
{
    SharedLru lru(std::make_unique<ZCacheArray>(1024, 4, 16, 3), 2);
    AccessContext ctx{1, 0, 0};
    std::uint64_t hits = 0;
    for (int rep = 0; rep < 4; rep++)
        for (Addr x = 0; x < 512; x++)
            hits += lru.access(x, ctx).hit ? 1 : 0;
    // Working set (512) fits in 1024 lines: after the cold pass,
    // everything hits.
    EXPECT_EQ(hits, 3u * 512u);
}

TEST(SharedLru, TargetsAreAdvisoryOnly)
{
    // SharedLru ignores targets (unmanaged cache); setting them must
    // not disturb behaviour.
    auto lru = makeLru();
    lru.setTargetSize(1, 10);
    EXPECT_EQ(lru.targetSize(1), 10u);
    AccessContext ctx{1, 0, 0};
    for (Addr x = 0; x < 100; x++)
        lru.access(x, ctx);
    EXPECT_GT(lru.actualSize(1), 10u); // grew past the "target"
}

} // namespace
} // namespace ubik
