/**
 * @file
 * Tests for way-partitioning: coarse quantization, insertion
 * restriction, and the slow access-pattern-dependent transients the
 * paper contrasts with Vantage (§2.2, §7.3).
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/way_partitioning.h"

namespace ubik {
namespace {

std::unique_ptr<WayPartitioning>
makeWp(std::uint64_t lines = 1024, std::uint32_t ways = 16,
       std::uint32_t parts = 3)
{
    return std::make_unique<WayPartitioning>(
        std::make_unique<SetAssocArray>(lines, ways, 2), parts);
}

TEST(WayPartitioning, WaysSumToTotal)
{
    auto wp = makeWp(1024, 16, 4);
    wp->setTargetSize(1, 512);
    wp->setTargetSize(2, 256);
    wp->setTargetSize(3, 256);
    std::uint32_t total = wp->waysOf(0) + wp->waysOf(1) +
                          wp->waysOf(2) + wp->waysOf(3);
    EXPECT_EQ(total, 16u);
    EXPECT_EQ(wp->waysOf(1), 8u);
    EXPECT_EQ(wp->waysOf(2), 4u);
    EXPECT_EQ(wp->waysOf(3), 4u);
}

TEST(WayPartitioning, QuantizesToWays)
{
    auto wp = makeWp(1024, 16, 3);
    // 100 lines on a 64-lines-per-way cache rounds to ~2 ways.
    EXPECT_EQ(wp->linesPerWay(), 64u);
    wp->setTargetSize(1, 100);
    wp->setTargetSize(2, 924);
    EXPECT_GE(wp->waysOf(1), 1u);
    EXPECT_LE(wp->waysOf(1), 2u);
}

TEST(WayPartitioning, NonzeroTargetGetsAtLeastOneWay)
{
    auto wp = makeWp(1024, 16, 3);
    wp->setTargetSize(1, 1); // a sliver
    wp->setTargetSize(2, 1023);
    EXPECT_GE(wp->waysOf(1), 1u);
}

TEST(WayPartitioning, InsertionRestrictedToOwnWays)
{
    auto wp = makeWp(1024, 16, 3);
    wp->setTargetSize(1, 256); // 4 ways
    wp->setTargetSize(2, 768); // 12 ways
    AccessContext p1{1, 0, 0};
    // Stream far beyond capacity: partition 1 can never hold more
    // than its way share.
    for (Addr x = 0; x < 50000; x++)
        wp->access(x, p1);
    EXPECT_LE(wp->actualSize(1),
              static_cast<std::uint64_t>(wp->waysOf(1)) *
                  wp->linesPerWay());
}

TEST(WayPartitioning, HitsAllowedAnywhere)
{
    auto wp = makeWp(1024, 16, 3);
    wp->setTargetSize(1, 512);
    wp->setTargetSize(2, 512);
    AccessContext p1{1, 0, 0};
    AccessContext p2{2, 1, 0};
    wp->access(0x42, p1); // lands in partition 1's ways
    auto out = wp->access(0x42, p2); // other partition still hits
    EXPECT_TRUE(out.hit);
}

TEST(WayPartitioning, ReassignmentDoesNotFlush)
{
    auto wp = makeWp(1024, 16, 3);
    wp->setTargetSize(1, 512);
    wp->setTargetSize(2, 512);
    AccessContext p1{1, 0, 0};
    for (Addr x = 0; x < 400; x++)
        wp->access(x, p1);
    // Take ways away from partition 1.
    wp->setTargetSize(1, 128);
    wp->setTargetSize(2, 896);
    // Old lines remain resident until evicted by partition 2 misses.
    std::uint64_t hits = 0;
    for (Addr x = 0; x < 400; x++)
        hits += wp->access(x, p1).hit ? 1 : 0;
    EXPECT_GT(hits, 300u);
}

TEST(WayPartitioning, TransientIsPatternDependent)
{
    // The paper's §5.1 point: after an upsize, the new way is claimed
    // only set-by-set as the growing partition happens to miss there.
    // A partition whose misses touch few sets claims the space far
    // more slowly than a uniform-missing one.
    auto run = [](Addr stride, int accesses) {
        auto wp = makeWp(2048, 16, 3);
        wp->setTargetSize(1, 128);  // 1 way
        wp->setTargetSize(2, 1920); // 15 ways
        AccessContext p1{1, 0, 0};
        AccessContext p2{2, 1, 0};
        // Fill partition 2 everywhere.
        for (Addr x = 0; x < 20000; x++)
            wp->access(0x100000 + x, p2);
        // Upsize partition 1 to half the cache.
        wp->setTargetSize(1, 1024);
        wp->setTargetSize(2, 1024);
        // Partition 1 misses with the given address pattern.
        for (int i = 0; i < accesses; i++)
            wp->access(0x200000 + static_cast<Addr>(i) * stride, p1);
        return wp->actualSize(1);
    };
    std::uint64_t uniform = run(1, 4000);
    std::uint64_t narrow = run(0, 4000); // one address: 1 set only
    EXPECT_GT(uniform, 10 * std::max<std::uint64_t>(narrow, 1));
}

TEST(WayPartitioning, AssociativityLossWithManyPartitions)
{
    // With 6 partitions on 16 ways, small partitions get 1-2 ways and
    // thrash on conflict misses where a shared cache would not: the
    // associativity cost the paper attributes to way-partitioning.
    WayPartitioning wp(std::make_unique<SetAssocArray>(1024, 16, 2), 7);
    for (PartId p = 1; p <= 6; p++)
        wp.setTargetSize(p, 170);
    AccessContext p1{1, 0, 0};
    // A working set that fits the partition's *capacity* but exceeds
    // its per-set associativity (2 ways) in some sets still misses.
    std::uint64_t misses = 0;
    for (int rep = 0; rep < 20; rep++)
        for (Addr x = 0; x < 160; x++)
            misses += wp.access(x, p1).hit ? 0 : 1;
    // Perfect LRU over 170 lines would give ~160 cold misses only.
    EXPECT_GT(misses, 300u);
}

} // namespace
} // namespace ubik
