/**
 * @file
 * Tests for the statistics module: streaming moments, the latency
 * recorder (including the paper's tail-mean metric, §3.2), and
 * histograms.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/histogram.h"
#include "stats/latency_recorder.h"
#include "stats/streaming_stats.h"

namespace ubik {
namespace {

TEST(StreamingStats, Empty)
{
    StreamingStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.ci95(), 0.0);
}

TEST(StreamingStats, SingleValue)
{
    StreamingStats s;
    s.add(7.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 7.0);
    EXPECT_DOUBLE_EQ(s.min(), 7.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, KnownMoments)
{
    StreamingStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of this classic set is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StreamingStats, NegativeValues)
{
    StreamingStats s;
    s.add(-5.0);
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(StreamingStats, MergeMatchesCombined)
{
    StreamingStats a, b, all;
    for (int i = 0; i < 50; i++) {
        double x = std::sin(i) * 10;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmpty)
{
    StreamingStats a, empty;
    a.add(1.0);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);

    StreamingStats b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(StreamingStats, Ci95ShrinksWithSamples)
{
    StreamingStats small, large;
    for (int i = 0; i < 10; i++)
        small.add(i % 3);
    for (int i = 0; i < 1000; i++)
        large.add(i % 3);
    EXPECT_GT(small.ci95(), large.ci95());
}

TEST(StreamingStats, Ci95UsesStudentTForSmallSamples)
{
    // Pin the t-quantile at several sample sizes by dividing out the
    // stddev/sqrt(n) factor: n=2 -> t_1, n=8 -> t_7 (the paper's
    // 8-seed runs), n=30 -> t_29, and the asymptotic 1.96 beyond.
    auto tFactor = [](std::uint64_t n) {
        StreamingStats s;
        for (std::uint64_t i = 0; i < n; i++)
            s.add(i % 2 ? 1.0 : -1.0);
        return s.ci95() * std::sqrt(static_cast<double>(n)) /
               s.stddev();
    };
    EXPECT_NEAR(tFactor(2), 12.706, 1e-9);
    EXPECT_NEAR(tFactor(8), 2.365, 1e-9);
    EXPECT_NEAR(tFactor(30), 2.045, 1e-9);
    EXPECT_NEAR(tFactor(31), 1.96, 1e-9);
    // z = 1.96 at n = 8 would understate the interval by ~17%.
    EXPECT_GT(tFactor(8), 1.96);
}

// --- LatencyRecorder ---

TEST(LatencyRecorder, Empty)
{
    LatencyRecorder r;
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.mean(), 0.0);
    EXPECT_EQ(r.tailMean(), 0.0);
}

TEST(LatencyRecorder, MeanAndPercentile)
{
    LatencyRecorder r;
    for (Cycles c = 1; c <= 100; c++)
        r.record(c);
    EXPECT_DOUBLE_EQ(r.mean(), 50.5);
    // Nearest-rank: 95th percentile of 1..100 is 95.
    EXPECT_DOUBLE_EQ(r.percentile(95.0), 95.0);
    EXPECT_DOUBLE_EQ(r.percentile(50.0), 50.0);
}

TEST(LatencyRecorder, TailMeanIsMeanBeyondPercentile)
{
    LatencyRecorder r;
    for (Cycles c = 1; c <= 100; c++)
        r.record(c);
    // Mean of {95..100} = 97.5 (tail includes the percentile point).
    EXPECT_DOUBLE_EQ(r.tailMean(95.0), 97.5);
    // Whole distribution at pct -> 0: every sample is in the tail.
    EXPECT_DOUBLE_EQ(r.tailMean(1.0), 50.5);
    EXPECT_DOUBLE_EQ(r.tailMean(100.0), 100.0);
}

TEST(LatencyRecorder, TailMeanNearestRankAlignment)
{
    // The tail must start at the nearest-rank percentile sample —
    // the same sample percentile() reports — for every n, including
    // the exact-integer-rank case the old floor() indexing got wrong
    // (n = 20, pct = 95: rank ceil(0.95 * 20) = 19, so the tail is
    // {19, 20}, not {20} alone).
    LatencyRecorder r;
    for (Cycles c = 1; c <= 20; c++)
        r.record(c);
    EXPECT_DOUBLE_EQ(r.percentile(95.0), 19.0);
    EXPECT_DOUBLE_EQ(r.tailMean(95.0), 19.5);

    // Non-integer rank: ceil(0.95 * 21) = 20 -> tail {20, 21}.
    r.record(21);
    EXPECT_DOUBLE_EQ(r.percentile(95.0), 20.0);
    EXPECT_DOUBLE_EQ(r.tailMean(95.0), 20.5);

    // Tiny n degenerates to the max, never an out-of-range rank.
    LatencyRecorder one;
    one.record(7);
    EXPECT_DOUBLE_EQ(one.tailMean(95.0), 7.0);
    EXPECT_DOUBLE_EQ(one.tailMean(100.0), 7.0);
}

TEST(LatencyRecorder, TailMeanContainsPercentileSample)
{
    // Cross-check against percentile() over many n: the tail mean is
    // the mean of sorted[rank-1 ..], so it always includes the
    // percentile sample and never dips below it.
    for (int n = 1; n <= 200; n++) {
        LatencyRecorder r;
        for (Cycles c = 1; c <= static_cast<Cycles>(n); c++)
            r.record(c);
        double p = r.percentile(95.0);
        std::size_t rank = static_cast<std::size_t>(p); // samples 1..n
        double sum = 0;
        for (std::size_t v = rank; v <= static_cast<std::size_t>(n);
             v++)
            sum += static_cast<double>(v);
        double expect =
            sum / static_cast<double>(n - rank + 1);
        EXPECT_DOUBLE_EQ(r.tailMean(95.0), expect) << "n = " << n;
        EXPECT_GE(r.tailMean(95.0), p);
    }
}

TEST(LatencyRecorder, TailMeanResistsGaming)
{
    // The anti-gaming property (§3.2): degrading requests beyond the
    // measured percentile *must* move the metric, unlike a plain
    // percentile.
    LatencyRecorder honest, gamed;
    for (int i = 0; i < 100; i++) {
        honest.record(100);
        gamed.record(i < 97 ? 100 : 10000); // top 3% destroyed
    }
    EXPECT_DOUBLE_EQ(honest.percentile(95.0), gamed.percentile(95.0));
    EXPECT_GT(gamed.tailMean(95.0), 2.0 * honest.tailMean(95.0));
}

TEST(LatencyRecorder, MergeCombinesSamples)
{
    LatencyRecorder a, b;
    a.record(10);
    b.record(20);
    b.record(30);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
}

TEST(LatencyRecorder, RecordAfterQueryInvalidatesCache)
{
    LatencyRecorder r;
    r.record(10);
    EXPECT_DOUBLE_EQ(r.percentile(50.0), 10.0);
    r.record(20);
    r.record(30);
    EXPECT_DOUBLE_EQ(r.percentile(100.0), 30.0);
}

TEST(LatencyRecorder, Cdf)
{
    LatencyRecorder r;
    for (Cycles c : {10, 20, 30, 40})
        r.record(c);
    EXPECT_DOUBLE_EQ(r.cdf(5), 0.0);
    EXPECT_DOUBLE_EQ(r.cdf(20), 0.5);
    EXPECT_DOUBLE_EQ(r.cdf(45), 1.0);
}

TEST(LatencyRecorder, SortedCopy)
{
    LatencyRecorder r;
    r.record(30);
    r.record(10);
    r.record(20);
    auto s = r.sorted();
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s[0], 10u);
    EXPECT_EQ(s[2], 30u);
}

TEST(LatencyRecorder, Clear)
{
    LatencyRecorder r;
    r.record(1);
    r.clear();
    EXPECT_TRUE(r.empty());
}

class TailMeanProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(TailMeanProperty, TailMeanAtLeastPercentile)
{
    // The mean beyond a percentile can never be below the percentile
    // value itself.
    double pct = GetParam();
    LatencyRecorder r;
    std::uint64_t x = 88172645463325252ull; // xorshift64 stream
    for (int i = 0; i < 5000; i++) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        r.record(x % 100000);
    }
    EXPECT_GE(r.tailMean(pct), r.percentile(pct));
}

INSTANTIATE_TEST_SUITE_P(Percentiles, TailMeanProperty,
                         ::testing::Values(50.0, 90.0, 95.0, 99.0));

// --- Histogram ---

TEST(Histogram, BasicBinning)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    h.add(9.9);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 2u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_DOUBLE_EQ(h.binFrac(1), 0.5);
}

TEST(Histogram, Weights)
{
    Histogram h(0.0, 4.0, 4);
    h.add(1.0, 10);
    EXPECT_EQ(h.total(), 10u);
    EXPECT_EQ(h.binCount(1), 10u);
}

TEST(Histogram, BinEdges)
{
    Histogram h(2.0, 12.0, 5);
    EXPECT_DOUBLE_EQ(h.binLo(0), 2.0);
    EXPECT_DOUBLE_EQ(h.binLo(4), 10.0);
}

TEST(Histogram, SummaryNonEmpty)
{
    Histogram h(0.0, 1.0, 4);
    h.add(0.1);
    EXPECT_FALSE(h.summary().empty());
}

} // namespace
} // namespace ubik
