/**
 * @file
 * Tests for the accurate de-boosting circuit (§5.1.1) and the slack
 * low watermark (§5.2).
 */

#include <gtest/gtest.h>

#include "core/deboost_monitor.h"

namespace ubik {
namespace {

/** UMON whose sampling factor we control; tags are irrelevant here
 *  because we feed synthetic probes. */
Umon
makeUmon()
{
    return Umon(1024, 8, 4, 0); // sampling factor 32
}

UmonProbe
sampledAtDepth(std::uint32_t depth)
{
    UmonProbe p;
    p.sampled = true;
    p.depth = depth;
    return p;
}

TEST(DeboostMonitor, StartsDisarmed)
{
    DeboostMonitor d;
    EXPECT_FALSE(d.armed());
    Umon u = makeUmon();
    EXPECT_EQ(d.observe(u, sampledAtDepth(0), true),
              DeboostEvent::None);
}

TEST(DeboostMonitor, RecoversWhenWouldBeMissesExceedActual)
{
    Umon u = makeUmon(); // 128 lines/way, factor 32
    DeboostMonitor d(/*guard=*/48.0);
    d.arm(/*s_active=*/256, /*miss_slack=*/0.0);
    ASSERT_TRUE(d.armed());

    // Probes at depth 4 (needs 512 lines) would miss at s_active=256:
    // each adds samplingFactor (32) would-be misses. The real cache
    // (boosted) hits. After two such probes (64 >= 0 + 48 guard) the
    // transient cost is considered repaid.
    EXPECT_EQ(d.observe(u, sampledAtDepth(4), false),
              DeboostEvent::None);
    EXPECT_EQ(d.observe(u, sampledAtDepth(4), false),
              DeboostEvent::Recovered);
    EXPECT_FALSE(d.armed());
}

TEST(DeboostMonitor, ActualMissesDelayRecovery)
{
    Umon u = makeUmon();
    DeboostMonitor d(16.0);
    d.arm(256, 0.0);
    // 40 real misses pile up first (cold boost transient).
    for (int i = 0; i < 40; i++)
        EXPECT_EQ(d.observe(u, UmonProbe{}, true), DeboostEvent::None);
    // Needs wouldBe >= 40 + 16 = 56 -> two depth-4 probes (64).
    EXPECT_EQ(d.observe(u, sampledAtDepth(4), false),
              DeboostEvent::None);
    EXPECT_EQ(d.observe(u, sampledAtDepth(4), false),
              DeboostEvent::Recovered);
}

TEST(DeboostMonitor, HitsAtShallowDepthDoNotCount)
{
    // Depth-1 probes hit even at s_active: no would-be misses accrue,
    // so the circuit must not fire.
    Umon u = makeUmon();
    DeboostMonitor d(16.0);
    d.arm(256, 0.0);
    for (int i = 0; i < 1000; i++)
        ASSERT_EQ(d.observe(u, sampledAtDepth(1), false),
                  DeboostEvent::None);
    EXPECT_TRUE(d.armed());
}

TEST(DeboostMonitor, ArmResetsCounters)
{
    Umon u = makeUmon();
    DeboostMonitor d(16.0);
    d.arm(256, 0.0);
    d.observe(u, sampledAtDepth(4), false);
    EXPECT_GT(d.wouldBeMisses(), 0.0);
    d.arm(256, 0.0);
    EXPECT_EQ(d.wouldBeMisses(), 0.0);
    EXPECT_EQ(d.actualMisses(), 0.0);
}

TEST(DeboostMonitor, DisarmStopsEvents)
{
    Umon u = makeUmon();
    DeboostMonitor d(16.0);
    d.arm(256, 0.0);
    d.disarm();
    for (int i = 0; i < 10; i++)
        EXPECT_EQ(d.observe(u, sampledAtDepth(4), false),
                  DeboostEvent::None);
}

TEST(DeboostMonitor, WatermarkFiresUnderSlackOnly)
{
    Umon u = makeUmon();
    // Strict circuit: no watermark no matter how bad things get.
    DeboostMonitor strict(4.0);
    strict.arm(256, 0.0);
    for (int i = 0; i < 1000; i++)
        ASSERT_EQ(strict.observe(u, UmonProbe{}, true),
                  DeboostEvent::None);

    // Slack circuit: actual misses far beyond the prediction trip the
    // low watermark.
    DeboostMonitor slack(4.0);
    slack.arm(256, 0.5);
    DeboostEvent ev = DeboostEvent::None;
    for (int i = 0; i < 1000 && ev == DeboostEvent::None; i++)
        ev = slack.observe(u, UmonProbe{}, true);
    EXPECT_EQ(ev, DeboostEvent::Watermark);
    EXPECT_FALSE(slack.armed());
}

TEST(DeboostMonitor, WatermarkNeedsEvidence)
{
    // A couple of early misses must not trip the watermark (the
    // comparison needs enough events to be trustworthy).
    Umon u = makeUmon();
    DeboostMonitor d(16.0);
    d.arm(256, 0.1);
    for (int i = 0; i < 10; i++)
        EXPECT_EQ(d.observe(u, UmonProbe{}, true), DeboostEvent::None);
}

TEST(DeboostMonitor, GuardAbsorbsSamplingNoise)
{
    // With a large guard, a single would-be miss (factor 32) is not
    // enough to declare recovery.
    Umon u = makeUmon();
    DeboostMonitor d(65.0);
    d.arm(256, 0.0);
    EXPECT_EQ(d.observe(u, sampledAtDepth(4), false),
              DeboostEvent::None); // 32 < 65
    EXPECT_EQ(d.observe(u, sampledAtDepth(4), false),
              DeboostEvent::None); // 64 < 65
    EXPECT_EQ(d.observe(u, sampledAtDepth(4), false),
              DeboostEvent::Recovered); // 96 >= 0 + 65
}

} // namespace
} // namespace ubik
