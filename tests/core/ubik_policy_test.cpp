/**
 * @file
 * Tests for UbikPolicy (§5): sizing invariants, idle/active
 * transitions with boosting, accurate de-boosting, the batch
 * repartition path, and the slack controller.
 */

#include <gtest/gtest.h>

#include "core/ubik_policy.h"
#include "policy/policy_util.h"

#include "../support/test_harness.h"

namespace ubik {
namespace {

using test::PolicyHarness;

constexpr std::uint64_t kLlc = 24576;  // 1.5MB-equivalent
constexpr std::uint64_t kTarget = 4096; // 256KB-equivalent
constexpr Cycles kDeadline = 2000000;

/** Harness with one LC app (0) and two batch apps (1, 2), warmed so
 *  the policy has meaningful curves. */
struct UbikFixture : public ::testing::Test
{
    PolicyHarness h{kLlc, 3};
    std::unique_ptr<UbikPolicy> policy;

    void
    warm(double slack = 0.0, bool accurate_deboost = true)
    {
        h.makeLc(0, kTarget, kDeadline);
        UbikConfig cfg;
        cfg.slack = slack;
        cfg.accurateDeboost = accurate_deboost;
        policy = std::make_unique<UbikPolicy>(*h.scheme, h.monitors,
                                              cfg);
        // One interval of activity: LC app with a cache-friendly
        // working set larger than its target, batch apps hungry.
        h.monitors[0].active = true;
        h.feedZipf(0, kTarget * 2, 0.7, 120000);
        h.feedZipf(1, kLlc, 0.6, 120000);
        h.feedZipf(2, kLlc, 0.6, 120000);
        h.refreshProfiles(50);
        policy->reconfigure(1000000);
    }
};

TEST_F(UbikFixture, NameReflectsSlack)
{
    warm();
    EXPECT_STREQ(policy->name(), "Ubik");
    UbikConfig cfg;
    cfg.slack = 0.05;
    UbikPolicy with_slack(*h.scheme, h.monitors, cfg);
    EXPECT_STREQ(with_slack.name(), "Ubik(slack=5%)");
}

TEST_F(UbikFixture, ConstructionBehavesLikeStaticLc)
{
    // Before any monitoring data, the LC partition sits at its
    // (bucket-quantized) target: safe by construction.
    h.makeLc(0, kTarget, kDeadline);
    UbikPolicy p(*h.scheme, h.monitors);
    EXPECT_NEAR(static_cast<double>(h.scheme->targetSize(1)),
                static_cast<double>(kTarget),
                static_cast<double>(linesPerBucket(kLlc)));
}

TEST_F(UbikFixture, SizingInvariants)
{
    warm();
    const UbikLcState &st = policy->lcState(0);
    EXPECT_LE(st.sIdle, st.sActive);
    EXPECT_GE(st.sBoost, st.sActive);
    EXPECT_LE(st.sBoost, kLlc); // boost cap: whole cache / 1 LC app
    // Strict mode: s_active is the target.
    EXPECT_NEAR(static_cast<double>(st.sActive),
                static_cast<double>(kTarget),
                static_cast<double>(linesPerBucket(kLlc)));
}

TEST_F(UbikFixture, CacheFriendlyLcAppIsDownsizedWhenIdle)
{
    warm();
    const UbikLcState &st = policy->lcState(0);
    // The LC app has real cross-size utility and a generous deadline:
    // Ubik must find a feasible downsizing.
    EXPECT_LT(st.sIdle, st.sActive);
}

TEST_F(UbikFixture, IdleShrinksAndActiveBoostsPartition)
{
    warm();
    const UbikLcState &st = policy->lcState(0);
    ASSERT_LT(st.sIdle, st.sActive);

    h.monitors[0].active = false;
    policy->onIdle(0, 1100000);
    EXPECT_EQ(h.scheme->targetSize(1), st.sIdle);
    // Freed space went to the batch partitions.
    std::uint64_t batch = h.scheme->targetSize(2) +
                          h.scheme->targetSize(3);
    EXPECT_GE(batch + st.sIdle + linesPerBucket(kLlc) * 4, kLlc);

    h.monitors[0].active = true;
    policy->onActive(0, 1200000);
    EXPECT_EQ(h.scheme->targetSize(1), st.sBoost);
    EXPECT_GT(h.scheme->targetSize(1), st.sActive);
}

TEST_F(UbikFixture, DeboostInterruptReturnsToActiveSize)
{
    warm();
    const UbikLcState &st = policy->lcState(0);
    ASSERT_LT(st.sIdle, st.sActive);
    h.monitors[0].active = false;
    policy->onIdle(0, 1100000);
    h.monitors[0].active = true;
    policy->onActive(0, 1200000);
    ASSERT_EQ(h.scheme->targetSize(1), st.sBoost);

    // Feed accesses that hit in the boosted partition but would have
    // missed at s_active: UMON probes at depths beyond s_active.
    std::uint64_t fired_before = policy->deboostInterrupts();
    UmonProbe deep;
    deep.sampled = true;
    deep.depth = 32; // deepest stack position: misses at any s_active
    for (int i = 0; i < 100; i++)
        policy->onAccess(0, deep, /*miss=*/false, 1200000 + i);
    EXPECT_GT(policy->deboostInterrupts(), fired_before);
    EXPECT_EQ(h.scheme->targetSize(1), st.sActive);
}

TEST_F(UbikFixture, DeadlineWaitHoldsBoostDespiteRecovery)
{
    // With the accurate de-boost circuit ablated (§5.1.1's strawman),
    // early repayment must NOT release the boost; only deadline
    // expiry does.
    warm(0.0, /*accurate_deboost=*/false);
    const UbikLcState &st = policy->lcState(0);
    ASSERT_LT(st.sIdle, st.sActive);
    h.monitors[0].active = false;
    policy->onIdle(0, 1100000);
    h.monitors[0].active = true;
    const Cycles boost_start = 1200000;
    policy->onActive(0, boost_start);
    ASSERT_EQ(h.scheme->targetSize(1), st.sBoost);

    // Deep probes that would fire the circuit immediately.
    UmonProbe deep;
    deep.sampled = true;
    deep.depth = 32;
    for (int i = 0; i < 100; i++)
        policy->onAccess(0, deep, /*miss=*/false, boost_start + i);
    EXPECT_EQ(policy->deboostInterrupts(), 0u);
    EXPECT_EQ(h.scheme->targetSize(1), st.sBoost) << "boost released "
        "early despite the circuit being ablated";

    // Past the deadline, the next access releases the boost.
    policy->onAccess(0, deep, /*miss=*/false,
                     boost_start + kDeadline + 1);
    EXPECT_EQ(policy->deadlineDeboosts(), 1u);
    EXPECT_EQ(h.scheme->targetSize(1), st.sActive);
}

TEST_F(UbikFixture, DeadlineWaitStillDeboostsOnIdle)
{
    // Going idle always releases the boost, circuit or no circuit.
    warm(0.0, /*accurate_deboost=*/false);
    const UbikLcState &st = policy->lcState(0);
    ASSERT_LT(st.sIdle, st.sActive);
    h.monitors[0].active = false;
    policy->onIdle(0, 1100000);
    h.monitors[0].active = true;
    policy->onActive(0, 1200000);
    ASSERT_EQ(h.scheme->targetSize(1), st.sBoost);
    h.monitors[0].active = false;
    policy->onIdle(0, 1300000);
    EXPECT_EQ(h.scheme->targetSize(1), st.sIdle);
    EXPECT_FALSE(policy->lcState(0).boosted);
}

TEST_F(UbikFixture, AccurateDeboostDefaultsOn)
{
    UbikConfig cfg;
    EXPECT_TRUE(cfg.accurateDeboost);
}

TEST_F(UbikFixture, BatchAllocationsFollowLcResizes)
{
    warm();
    const UbikLcState &st = policy->lcState(0);
    ASSERT_LT(st.sIdle, st.sActive);
    std::uint64_t batch_active = h.scheme->targetSize(2) +
                                 h.scheme->targetSize(3);
    h.monitors[0].active = false;
    policy->onIdle(0, 1100000);
    std::uint64_t batch_idle = h.scheme->targetSize(2) +
                               h.scheme->targetSize(3);
    EXPECT_GT(batch_idle, batch_active);
    // Conservation: nothing over-allocated.
    EXPECT_LE(batch_idle + h.scheme->targetSize(1),
              kLlc + 4 * linesPerBucket(kLlc));
}

TEST_F(UbikFixture, InsensitiveAppDownsizedAtNoCost)
{
    // A flat miss curve beyond a tiny hot set means downsizing loses
    // (almost) nothing: L ~ 0, so Ubik frees the space without even
    // needing a boost. This is the xapian case in Fig 10.
    h.makeLc(0, kTarget, kDeadline);
    policy = std::make_unique<UbikPolicy>(*h.scheme, h.monitors);
    h.monitors[0].active = true;
    h.feedZipf(0, 256, 1.2, 120000); // tiny hot set: no misses at 4K
    h.feedZipf(1, kLlc, 0.6, 120000);
    h.feedZipf(2, kLlc, 0.6, 120000);
    h.refreshProfiles(50);
    policy->reconfigure(1000000);
    const UbikLcState &st = policy->lcState(0);
    EXPECT_LT(st.sIdle, st.sActive);
}

TEST_F(UbikFixture, TightDeadlinePreventsDownsizing)
{
    // With a deadline too short for any boost to repay the warm-up
    // transient of a lossy downsizing, strict Ubik must refuse to
    // downsize: the guarantee is "same progress by the deadline", and
    // no feasible (s_idle, s_boost) pair exists.
    h.makeLc(0, kTarget, /*deadline=*/500);
    policy = std::make_unique<UbikPolicy>(*h.scheme, h.monitors);
    h.monitors[0].active = true;
    h.feedZipf(0, kTarget * 2, 0.7, 120000); // real cross-size utility
    h.feedZipf(1, kLlc, 0.6, 120000);
    h.feedZipf(2, kLlc, 0.6, 120000);
    h.refreshProfiles(50);
    policy->reconfigure(1000000);
    const UbikLcState &st = policy->lcState(0);
    EXPECT_EQ(st.sIdle, st.sActive);
    EXPECT_EQ(st.sBoost, st.sActive);
}

TEST_F(UbikFixture, LongerDeadlineFreesMoreSpace)
{
    // The deadline is the knob trading responsiveness for batch
    // space: a more generous deadline admits deeper downsizing.
    auto idle_size_for = [&](Cycles deadline) {
        PolicyHarness hh(kLlc, 3);
        hh.makeLc(0, kTarget, deadline);
        UbikPolicy p(*hh.scheme, hh.monitors);
        hh.monitors[0].active = true;
        hh.feedZipf(0, kTarget * 2, 0.7, 120000);
        hh.feedZipf(1, kLlc, 0.6, 120000);
        hh.feedZipf(2, kLlc, 0.6, 120000);
        hh.refreshProfiles(50);
        p.reconfigure(1000000);
        return p.lcState(0).sIdle;
    };
    EXPECT_LE(idle_size_for(20000000), idle_size_for(200000));
}

TEST_F(UbikFixture, BoostCapSharedAcrossLcApps)
{
    // With 3 LC apps, no boost may exceed 1/3 of the cache (§5.1.1).
    PolicyHarness h3(kLlc, 3);
    for (AppId a = 0; a < 3; a++)
        h3.makeLc(a, kTarget, kDeadline);
    UbikPolicy p(*h3.scheme, h3.monitors);
    for (AppId a = 0; a < 3; a++) {
        h3.monitors[a].active = true;
        h3.feedZipf(a, kTarget * 2, 0.7, 80000);
    }
    h3.refreshProfiles(50);
    p.reconfigure(1000000);
    for (AppId a = 0; a < 3; a++)
        EXPECT_LE(p.lcState(a).sBoost, kLlc / 3);
}

TEST_F(UbikFixture, SlackControllerRampsOnGoodLatencies)
{
    warm(0.05);
    // Feed consistently comfortable request latencies: the miss slack
    // budget must grow from zero.
    for (int i = 0; i < 200; i++)
        policy->onRequestComplete(0, kDeadline / 2);
    EXPECT_GT(policy->lcState(0).missSlack, 0.0);
}

TEST_F(UbikFixture, SlackControllerBacksOffOnViolations)
{
    warm(0.05);
    for (int i = 0; i < 200; i++)
        policy->onRequestComplete(0, kDeadline / 2);
    double high = policy->lcState(0).missSlack;
    for (int i = 0; i < 50; i++)
        policy->onRequestComplete(0, kDeadline * 3);
    EXPECT_LT(policy->lcState(0).missSlack, high);
}

TEST_F(UbikFixture, SlackShrinksActiveSize)
{
    warm(0.10);
    // Pump the controller, then re-run sizing.
    for (int i = 0; i < 500; i++)
        policy->onRequestComplete(0, kDeadline / 4);
    h.feedZipf(0, kTarget * 2, 0.7, 120000);
    h.feedZipf(1, kLlc, 0.6, 120000);
    h.feedZipf(2, kLlc, 0.6, 120000);
    h.refreshProfiles(50);
    policy->reconfigure(2000000);
    const UbikLcState &st = policy->lcState(0);
    EXPECT_LT(st.sActive, st.sActiveStrict);
}

TEST_F(UbikFixture, WatermarkFallsBackToStrictSizes)
{
    warm(0.10);
    for (int i = 0; i < 500; i++)
        policy->onRequestComplete(0, kDeadline / 4);
    h.feedZipf(0, kTarget * 2, 0.7, 120000);
    h.feedZipf(1, kLlc, 0.6, 120000);
    h.feedZipf(2, kLlc, 0.6, 120000);
    h.refreshProfiles(50);
    policy->reconfigure(2000000);
    ASSERT_LT(policy->lcState(0).sActive,
              policy->lcState(0).sActiveStrict);

    // Boost, then hammer the circuit with real misses and no would-be
    // misses: the watermark must fire and restore strict sizes.
    h.monitors[0].active = false;
    policy->onIdle(0, 2100000);
    h.monitors[0].active = true;
    policy->onActive(0, 2200000);
    std::uint64_t before = policy->watermarkInterrupts();
    UmonProbe unsampled;
    for (int i = 0; i < 5000; i++)
        policy->onAccess(0, unsampled, /*miss=*/true, 2200000 + i);
    EXPECT_GT(policy->watermarkInterrupts(), before);
    EXPECT_EQ(policy->lcState(0).sActive,
              policy->lcState(0).sActiveStrict);
}

TEST_F(UbikFixture, StrictModeIgnoresRequestFeedback)
{
    warm(0.0);
    policy->onRequestComplete(0, kDeadline * 10);
    EXPECT_EQ(policy->lcState(0).missSlack, 0.0);
}

TEST_F(UbikFixture, ReconfigureIsIdempotentWhenQuiet)
{
    warm();
    std::uint64_t t1 = h.scheme->targetSize(1);
    // No new activity: a second reconfigure must not thrash targets
    // wildly (idle apps keep their last profile).
    policy->reconfigure(2000000);
    std::uint64_t t2 = h.scheme->targetSize(1);
    EXPECT_NEAR(static_cast<double>(t2), static_cast<double>(t1),
                static_cast<double>(4 * linesPerBucket(kLlc)));
}

} // namespace
} // namespace ubik
