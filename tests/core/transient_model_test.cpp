/**
 * @file
 * Tests for the analytical transient model (§5.1), anchored on the
 * paper's worked example: IPC = 1.5, 5 LLC accesses per kilo-
 * instruction, 10% miss rate, M = 100 => c = 123, and a 1MB -> 2MB
 * transient bounded by 21.8M cycles with at most 819K lost cycles.
 */

#include <gtest/gtest.h>

#include "core/transient_model.h"

namespace ubik {
namespace {

CoreProfile
paperProfile()
{
    CoreProfile p;
    p.missPenalty = 100.0;
    p.hitCyclesPerAccess = 123.0;
    p.missRate = 0.1;
    p.accessesPerCycle = 1.0 / 133.0;
    p.valid = true;
    return p;
}

/** Miss curve with p(1MB) = 0.2 and p(2MB) = 0.1 over 1M accesses. */
MissCurve
paperCurve(std::uint64_t accesses = 1000000)
{
    // 2MB = 32768 lines; linear from p=0.3 at 0 to p=0.1 at 32768,
    // passing through p(16384) = 0.2.
    double n = static_cast<double>(accesses);
    return MissCurve({0.3 * n, 0.2 * n, 0.1 * n}, 16384);
}

TEST(TransientModel, MissProbabilityFromCurve)
{
    CoreProfile prof = paperProfile();
    MissCurve curve = paperCurve();
    TransientModel m(curve, 1000000, prof);
    EXPECT_NEAR(m.missProb(0), 0.3, 1e-12);
    EXPECT_NEAR(m.missProb(16384), 0.2, 1e-12);
    EXPECT_NEAR(m.missProb(32768), 0.1, 1e-12);
    EXPECT_NEAR(m.missProb(8192), 0.25, 1e-12);
}

TEST(TransientModel, PaperUpperBoundExample)
{
    // (s2 - s1) = 16384 lines; bound = 16384 * (123/0.1 + 100)
    // = 21.8M cycles; lost <= 100 * 16384 * (1 - 0.5) = 819K.
    CoreProfile prof = paperProfile();
    MissCurve curve = paperCurve();
    TransientModel m(curve, 1000000, prof);
    TransientEstimate est = m.upperBound(16384, 32768);
    EXPECT_FALSE(est.unbounded);
    EXPECT_NEAR(est.duration, 16384.0 * (123.0 / 0.1 + 100.0), 1.0);
    EXPECT_NEAR(est.duration / 1e6, 21.79, 0.05);
    EXPECT_NEAR(est.lostCycles, 100.0 * 16384.0 * 0.5, 1.0);
    EXPECT_NEAR(est.lostCycles / 1e3, 819.2, 1.0);
}

TEST(TransientModel, ExactNeverExceedsUpperBound)
{
    CoreProfile prof = paperProfile();
    MissCurve curve = paperCurve();
    TransientModel m(curve, 1000000, prof);
    for (std::uint64_t s1 : {0u, 4096u, 16384u, 24576u}) {
        for (std::uint64_t s2 : {8192u, 16384u, 32768u}) {
            if (s2 <= s1)
                continue;
            TransientEstimate ex = m.exact(s1, s2);
            TransientEstimate ub = m.upperBound(s1, s2);
            ASSERT_FALSE(ub.unbounded);
            EXPECT_LE(ex.duration, ub.duration * (1 + 1e-9));
            EXPECT_LE(ex.lostCycles, ub.lostCycles * (1 + 1e-9));
        }
    }
}

TEST(TransientModel, NoTransientWhenNotGrowing)
{
    TransientModel m(paperCurve(), 1000000, paperProfile());
    TransientEstimate est = m.upperBound(32768, 32768);
    EXPECT_EQ(est.duration, 0.0);
    EXPECT_EQ(est.lostCycles, 0.0);
    est = m.upperBound(32768, 16384); // shrink: no fill transient
    EXPECT_EQ(est.duration, 0.0);
}

TEST(TransientModel, UnboundedWhenTargetUnfillable)
{
    // Miss rate ~ 0 at the target: the partition can never fill.
    MissCurve curve({1000.0, 0.0, 0.0}, 1024);
    CoreProfile prof = paperProfile();
    TransientModel m(curve, 1000000, prof);
    TransientEstimate est = m.upperBound(0, 2048);
    EXPECT_TRUE(est.unbounded);
}

TEST(TransientModel, FlatCurveLosesNothing)
{
    // Insensitive app: p constant => upsizing hurts nobody, and the
    // transient is pure fill time.
    double n = 1e6;
    MissCurve curve({0.2 * n, 0.2 * n, 0.2 * n}, 1024);
    TransientModel m(curve, 1000000, paperProfile());
    TransientEstimate est = m.upperBound(0, 2048);
    EXPECT_FALSE(est.unbounded);
    EXPECT_NEAR(est.lostCycles, 0.0, 1e-9);
    EXPECT_GT(est.duration, 0.0);
}

TEST(TransientModel, LostCyclesScaleWithMissRateDelta)
{
    // Steeper curves lose more during the transient (§5.1: cycles
    // lost depend on the miss-rate difference).
    double n = 1e6;
    MissCurve steep({0.4 * n, 0.1 * n}, 8192);
    MissCurve shallow({0.15 * n, 0.1 * n}, 8192);
    TransientModel ms(steep, 1000000, paperProfile());
    TransientModel mh(shallow, 1000000, paperProfile());
    EXPECT_GT(ms.upperBound(0, 8192).lostCycles,
              2 * mh.upperBound(0, 8192).lostCycles);
}

TEST(TransientModel, GainRatePositiveOnlyWhenBiggerHelps)
{
    TransientModel m(paperCurve(), 1000000, paperProfile());
    EXPECT_GT(m.gainRate(16384, 32768), 0.0);
    EXPECT_EQ(m.gainRate(32768, 16384), 0.0); // not bigger
    // Flat region: no gain.
    double n = 1e6;
    MissCurve flat({0.2 * n, 0.2 * n}, 16384);
    TransientModel mf(flat, 1000000, paperProfile());
    EXPECT_EQ(mf.gainRate(0, 16384), 0.0);
}

TEST(TransientModel, GainRateMatchesHandComputation)
{
    // gain = (p_small - p_big) * M / (c + p_big * M)
    //      = (0.2 - 0.1) * 100 / (123 + 10) = 10/133.
    TransientModel m(paperCurve(), 1000000, paperProfile());
    EXPECT_NEAR(m.gainRate(16384, 32768), 10.0 / 133.0, 1e-9);
}

TEST(TransientModel, RepaymentIdentity)
{
    // Boosting must be able to repay the transient: with the paper's
    // numbers, running at s_boost = 2MB vs s_active = 1MB gains
    // 10/133 cycles per cycle, so repaying 819K lost cycles needs
    // ~10.9M cycles of boosted execution. Sanity-check that a
    // deadline of 2x that suffices while half of it does not.
    TransientModel m(paperCurve(), 1000000, paperProfile());
    TransientEstimate tr = m.upperBound(16384, 32768);
    double g = m.gainRate(16384, 32768);
    double repay_cycles = tr.lostCycles / g;
    EXPECT_NEAR(repay_cycles / 1e6, 10.9, 0.1);
}

class TransientSweep
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(TransientSweep, BoundsMonotoneInDistance)
{
    auto [p_lo, m_pen] = GetParam();
    double n = 1e6;
    MissCurve curve({0.5 * n, p_lo * n}, 32768);
    CoreProfile prof = paperProfile();
    prof.missPenalty = m_pen;
    TransientModel m(curve, 1000000, prof);
    double prev_dur = 0, prev_lost = -1;
    for (std::uint64_t s2 = 4096; s2 <= 32768; s2 += 4096) {
        TransientEstimate est = m.upperBound(0, s2);
        ASSERT_FALSE(est.unbounded);
        EXPECT_GE(est.duration, prev_dur);
        EXPECT_GE(est.lostCycles, prev_lost);
        prev_dur = est.duration;
        prev_lost = est.lostCycles;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Curves, TransientSweep,
    ::testing::Combine(::testing::Values(0.05, 0.1, 0.3),
                       ::testing::Values(50.0, 100.0, 300.0)));

} // namespace
} // namespace ubik
