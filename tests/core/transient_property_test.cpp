/**
 * @file
 * Property sweeps over the analytical transient model (§5.1): the
 * soundness relations Ubik's safety argument rests on, verified
 * across a grid of miss-curve shapes and timing profiles.
 *
 * Core property: for every (curve, profile, s1 < s2),
 *   exact duration <= upper-bound duration, and
 *   exact lost cycles <= upper-bound lost cycles —
 * the bounds are what make strict Ubik *strict*.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/transient_model.h"

namespace ubik {
namespace {

/** Synthetic miss curves spanning the paper's workload taxonomy. */
enum class CurveShape
{
    Linear,      ///< steady marginal utility
    Convex,      ///< classic diminishing returns (friendly)
    Cliff,       ///< cache-fitting: flat, then a drop, then flat
    Flat,        ///< insensitive/streaming: size barely matters
};

MissCurve
makeCurve(CurveShape shape, std::uint64_t max_lines, double base_misses)
{
    const std::size_t n = 33;
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; i++) {
        double x = static_cast<double>(i) / (n - 1);
        double frac = 0;
        switch (shape) {
          case CurveShape::Linear:
            frac = 1.0 - 0.9 * x;
            break;
          case CurveShape::Convex:
            frac = 0.1 + 0.9 * std::exp(-4.0 * x);
            break;
          case CurveShape::Cliff:
            frac = x < 0.5 ? 1.0 : 0.15;
            break;
          case CurveShape::Flat:
            frac = 0.95 - 0.05 * x;
            break;
        }
        v[i] = base_misses * frac;
    }
    return MissCurve(std::move(v), max_lines / (n - 1));
}

CoreProfile
makeProfile(double c, double m, double miss_rate)
{
    CoreProfile p;
    p.hitCyclesPerAccess = c;
    p.missPenalty = m;
    p.missRate = miss_rate;
    return p;
}

class TransientPropertySweep
    : public testing::TestWithParam<std::tuple<CurveShape, double, double>>
{
  protected:
    static constexpr std::uint64_t kMax = 16384;
    static constexpr std::uint64_t kAccesses = 100000;

    TransientModel
    model() const
    {
        auto [shape, c, m] = GetParam();
        return TransientModel(makeCurve(shape, kMax, 20000),
                              kAccesses, makeProfile(c, m, 0.2));
    }
};

TEST_P(TransientPropertySweep, UpperBoundDominatesExact)
{
    TransientModel tm = model();
    for (std::uint64_t s1 : {0ull, 2048ull, 4096ull, 8192ull}) {
        for (std::uint64_t s2 : {4096ull, 8192ull, 12288ull, 16384ull}) {
            if (s2 <= s1)
                continue;
            TransientEstimate ex = tm.exact(s1, s2);
            TransientEstimate ub = tm.upperBound(s1, s2);
            if (ub.unbounded)
                continue; // no claim to check
            EXPECT_FALSE(ex.unbounded);
            // Tiny numerical tolerance: both sums round differently.
            EXPECT_LE(ex.duration, ub.duration * 1.0001)
                << "s1=" << s1 << " s2=" << s2;
            EXPECT_LE(ex.lostCycles, ub.lostCycles * 1.0001)
                << "s1=" << s1 << " s2=" << s2;
        }
    }
}

TEST_P(TransientPropertySweep, EstimatesAreNonNegative)
{
    TransientModel tm = model();
    TransientEstimate ex = tm.exact(1024, 9216);
    TransientEstimate ub = tm.upperBound(1024, 9216);
    EXPECT_GE(ex.duration, 0.0);
    EXPECT_GE(ex.lostCycles, 0.0);
    EXPECT_GE(ub.duration, 0.0);
    EXPECT_GE(ub.lostCycles, 0.0);
}

TEST_P(TransientPropertySweep, DurationMonotoneInResizeSpan)
{
    // Growing further from the same start can only take longer.
    TransientModel tm = model();
    double prev = 0;
    for (std::uint64_t s2 = 4096; s2 <= 16384; s2 += 2048) {
        TransientEstimate ex = tm.exact(2048, s2);
        if (ex.unbounded)
            break;
        EXPECT_GE(ex.duration, prev);
        prev = ex.duration;
    }
}

TEST_P(TransientPropertySweep, NullResizeIsFree)
{
    TransientModel tm = model();
    for (std::uint64_t s : {0ull, 4096ull, 16384ull}) {
        TransientEstimate ex = tm.exact(s, s);
        EXPECT_DOUBLE_EQ(ex.duration, 0.0);
        EXPECT_DOUBLE_EQ(ex.lostCycles, 0.0);
    }
}

TEST_P(TransientPropertySweep, GainRateNonNegativeAndZeroForNullGap)
{
    TransientModel tm = model();
    EXPECT_GE(tm.gainRate(4096, 12288), 0.0);
    EXPECT_DOUBLE_EQ(tm.gainRate(8192, 8192), 0.0);
}

TEST_P(TransientPropertySweep, MissProbNonIncreasingInSize)
{
    TransientModel tm = model();
    double prev = 1.0;
    for (std::uint64_t s = 0; s <= kMax; s += 1024) {
        double p = tm.missProb(s);
        EXPECT_LE(p, prev + 1e-12);
        EXPECT_GE(p, 0.0);
        prev = p;
    }
}

std::string
sweepName(
    const testing::TestParamInfo<std::tuple<CurveShape, double, double>>
        &info)
{
    CurveShape shape = std::get<0>(info.param);
    const char *s = shape == CurveShape::Linear   ? "Linear"
                    : shape == CurveShape::Convex ? "Convex"
                    : shape == CurveShape::Cliff  ? "Cliff"
                                                  : "Flat";
    return std::string(s) + "_c" +
           std::to_string(static_cast<int>(std::get<1>(info.param))) +
           "_M" +
           std::to_string(static_cast<int>(std::get<2>(info.param)));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TransientPropertySweep,
    testing::Combine(testing::Values(CurveShape::Linear,
                                     CurveShape::Convex,
                                     CurveShape::Cliff,
                                     CurveShape::Flat),
                     testing::Values(30.0, 123.0),   // c
                     testing::Values(100.0, 400.0)), // M
    sweepName);

} // namespace
} // namespace ubik
