/**
 * @file
 * Tests for the offline Ubik sizing advisor: input validation,
 * feasibility structure (deadline/boost-cap monotonicity, the
 * tight-deadline and insensitive-app regimes), consistency of the
 * reported bounds with TransientModel, and the end-to-end pipeline
 * from a captured trace.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/advisor.h"
#include "trace/trace_analyzer.h"
#include "workload/trace_capture.h"

namespace ubik {
namespace {

constexpr std::uint64_t kTarget = 4096;
constexpr std::uint64_t kAccesses = 100000;

/** Smooth concave miss curve: misses fall linearly to a floor. */
MissCurve
friendlyCurve(std::uint64_t max_lines = kTarget * 4)
{
    std::vector<double> vals;
    const std::size_t points = 65;
    for (std::size_t p = 0; p < points; p++) {
        double frac = static_cast<double>(p) / (points - 1);
        vals.push_back(kAccesses * (0.30 - 0.25 * frac));
    }
    return MissCurve(std::move(vals), max_lines / (points - 1));
}

/** Flat curve: size-insensitive app (the xapian case). */
MissCurve
flatCurve(double miss_frac, std::uint64_t max_lines = kTarget * 4)
{
    std::vector<double> vals(65, kAccesses * miss_frac);
    return MissCurve(std::move(vals), max_lines / 64);
}

CoreProfile
profile()
{
    CoreProfile p;
    p.missPenalty = 100;
    p.hitCyclesPerAccess = 10;
    p.missRate = 0.1;
    p.accessesPerCycle = 0.05;
    p.valid = true;
    return p;
}

AdvisorInput
baseInput(MissCurve curve, Cycles deadline = 50000000)
{
    AdvisorInput in;
    in.curve = std::move(curve);
    in.intervalAccesses = kAccesses;
    in.profile = profile();
    in.targetLines = kTarget;
    in.deadline = deadline;
    in.boostCap = kTarget * 4;
    return in;
}

TEST(Advisor, GenerousDeadlineAllowsDownsizing)
{
    AdvisorReport rep = advise(baseInput(friendlyCurve()));
    EXPECT_TRUE(rep.canDownsize);
    EXPECT_LT(rep.best.sIdle, kTarget);
    EXPECT_GE(rep.best.sBoost, kTarget);
    EXPECT_EQ(rep.best.freedLines, kTarget - rep.best.sIdle);
}

TEST(Advisor, TightDeadlineRefusesDownsizing)
{
    AdvisorReport rep =
        advise(baseInput(friendlyCurve(), /*deadline=*/100));
    EXPECT_FALSE(rep.canDownsize);
    EXPECT_EQ(rep.best.sIdle, kTarget);
    EXPECT_EQ(rep.best.sBoost, kTarget);
}

TEST(Advisor, DeadlineMonotonicity)
{
    // More generous deadlines never free less space.
    std::uint64_t prev_idle = kTarget;
    for (Cycles d : {Cycles(10000), Cycles(1000000), Cycles(100000000),
                     Cycles(10000000000ull)}) {
        AdvisorReport rep = advise(baseInput(friendlyCurve(), d));
        EXPECT_LE(rep.best.sIdle, prev_idle) << "deadline " << d;
        prev_idle = rep.best.sIdle;
    }
}

TEST(Advisor, InsensitiveAppFreesEverythingCheaply)
{
    // Flat miss curve: downsizing costs ~nothing, so the advisor
    // frees (nearly) the whole target without needing a real boost.
    AdvisorReport rep = advise(baseInput(flatCurve(0.05)));
    EXPECT_TRUE(rep.canDownsize);
    EXPECT_EQ(rep.best.sIdle, 0u);
    EXPECT_LE(rep.best.sBoost, kTarget + kTarget / 4);
}

TEST(Advisor, OptionsAreOrderedAndConsistent)
{
    AdvisorReport rep = advise(baseInput(friendlyCurve()));
    ASSERT_FALSE(rep.options.empty());
    for (std::size_t i = 0; i < rep.options.size(); i++) {
        const SizingOption &o = rep.options[i];
        EXPECT_LT(o.sIdle, kTarget);
        EXPECT_EQ(o.freedLines, kTarget - o.sIdle);
        if (i > 0)
            EXPECT_LT(o.sIdle, rep.options[i - 1].sIdle);
        if (o.feasible) {
            EXPECT_GE(o.sBoost, kTarget);
            EXPECT_GT(o.transientCycles, 0.0);
        }
    }
    // Only the last option may be infeasible (the search stops there).
    for (std::size_t i = 0; i + 1 < rep.options.size(); i++)
        EXPECT_TRUE(rep.options[i].feasible) << i;
}

TEST(Advisor, DeeperIdleCostsMoreTransient)
{
    AdvisorReport rep = advise(baseInput(friendlyCurve()));
    for (std::size_t i = 1; i < rep.options.size(); i++) {
        EXPECT_GE(rep.options[i].transientCycles,
                  rep.options[i - 1].transientCycles);
        EXPECT_GE(rep.options[i].lostCycles,
                  rep.options[i - 1].lostCycles);
    }
}

TEST(Advisor, BoundsMatchTransientModel)
{
    AdvisorInput in = baseInput(friendlyCurve());
    AdvisorReport rep = advise(in);
    TransientModel model(in.curve, in.intervalAccesses, in.profile);
    for (const SizingOption &o : rep.options) {
        TransientEstimate tr = model.upperBound(o.sIdle, kTarget);
        EXPECT_DOUBLE_EQ(o.transientCycles, tr.duration);
        EXPECT_DOUBLE_EQ(o.lostCycles, tr.lostCycles);
    }
}

TEST(Advisor, BoostCapLimitsFeasibility)
{
    // With the boost capped at the target, any lossy downsizing is
    // infeasible (no room to repay).
    AdvisorInput in = baseInput(friendlyCurve());
    in.boostCap = kTarget;
    AdvisorReport rep = advise(in);
    EXPECT_FALSE(rep.canDownsize);
}

TEST(Advisor, EndToEndFromCapturedTrace)
{
    // Capture a cache-friendly LC preset, analyze it, and advise:
    // the pipeline a downstream user runs on real traces.
    LcAppParams params = lc_presets::masstree().scaled(16.0);
    TraceData trace = captureLcTrace(params, /*requests=*/200,
                                     /*seed=*/7);
    TraceAnalysis an = analyzeTrace(trace);
    ASSERT_GT(an.accesses, 0u);
    EXPECT_GT(an.crossRequestReuse, 0.3)
        << "masstree preset must show cross-request reuse (Fig 2)";

    AdvisorInput in;
    std::uint64_t target = params.hotLines;
    in.curve = an.missCurve(65, target * 2);
    in.intervalAccesses = an.accesses;
    in.profile = profile();
    in.targetLines = target;
    in.deadline = 100000000;
    in.boostCap = target * 2;
    AdvisorReport rep = advise(in);
    EXPECT_TRUE(rep.canDownsize);
    EXPECT_LT(rep.best.sIdle, target);
}

using AdvisorDeath = ::testing::Test;

TEST(AdvisorDeath, RejectsEmptyCurve)
{
    AdvisorInput in;
    in.intervalAccesses = 1;
    in.targetLines = 1;
    in.profile = profile();
    EXPECT_DEATH(advise(in), "empty miss curve");
}

TEST(AdvisorDeath, RejectsZeroAccesses)
{
    AdvisorInput in = baseInput(friendlyCurve());
    in.intervalAccesses = 0;
    EXPECT_DEATH(advise(in), "intervalAccesses");
}

TEST(AdvisorDeath, RejectsInvalidProfile)
{
    AdvisorInput in = baseInput(friendlyCurve());
    in.profile.valid = false;
    EXPECT_DEATH(advise(in), "profile");
}

} // namespace
} // namespace ubik
