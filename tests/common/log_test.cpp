/**
 * @file
 * Tests for the gem5-style logging/error helpers.
 */

#include <gtest/gtest.h>

#include "common/log.h"

namespace ubik {
namespace {

TEST(LogDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
}

TEST(LogDeath, FatalExitsWithCode1)
{
    EXPECT_EXIT(fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "bad config x");
}

TEST(LogDeath, AssertFailureMentionsCondition)
{
    EXPECT_DEATH(ubik_assert(1 == 2), "1 == 2");
}

TEST(Log, AssertPassesSilently)
{
    ubik_assert(2 + 2 == 4); // must not abort
    SUCCEED();
}

TEST(Log, VerboseToggle)
{
    bool prev = verbose();
    setVerbose(true);
    EXPECT_TRUE(verbose());
    setVerbose(false);
    EXPECT_FALSE(verbose());
    setVerbose(prev);
}

} // namespace
} // namespace ubik
