/**
 * @file
 * Tests for the command-line flag parser: value forms, types,
 * defaults, and error handling.
 */

#include <gtest/gtest.h>

#include "common/cli.h"

namespace ubik {
namespace {

TEST(Cli, DefaultsSurviveEmptyCommandLine)
{
    Cli cli("t", "test");
    auto &s = cli.flag("name", "dflt", "h");
    auto &i = cli.flag("count", static_cast<std::int64_t>(7), "h");
    auto &d = cli.flag("ratio", 0.5, "h");
    auto &b = cli.flag("fast", false, "h");
    const char *argv[] = {"t"};
    cli.parse(1, argv);
    EXPECT_EQ(s.value, "dflt");
    EXPECT_EQ(i.value, 7);
    EXPECT_DOUBLE_EQ(d.value, 0.5);
    EXPECT_FALSE(b.value);
    EXPECT_FALSE(s.seen);
}

TEST(Cli, ParsesSpaceSeparatedValues)
{
    Cli cli("t", "test");
    auto &s = cli.flag("name", "x", "h");
    auto &i = cli.flag("count", static_cast<std::int64_t>(0), "h");
    auto &d = cli.flag("ratio", 0.0, "h");
    const char *argv[] = {"t",       "--name",  "hello", "--count",
                          "42",      "--ratio", "0.25"};
    cli.parse(7, argv);
    EXPECT_EQ(s.value, "hello");
    EXPECT_TRUE(s.seen);
    EXPECT_EQ(i.value, 42);
    EXPECT_DOUBLE_EQ(d.value, 0.25);
}

TEST(Cli, ParsesEqualsForm)
{
    Cli cli("t", "test");
    auto &s = cli.flag("name", "x", "h");
    auto &d = cli.flag("ratio", 0.0, "h");
    const char *argv[] = {"t", "--name=world", "--ratio=1.5"};
    cli.parse(3, argv);
    EXPECT_EQ(s.value, "world");
    EXPECT_DOUBLE_EQ(d.value, 1.5);
}

TEST(Cli, BoolFlagFormsWork)
{
    {
        Cli cli("t", "test");
        auto &b = cli.flag("fast", false, "h");
        const char *argv[] = {"t", "--fast"};
        cli.parse(2, argv);
        EXPECT_TRUE(b.value);
    }
    {
        Cli cli("t", "test");
        auto &b = cli.flag("fast", true, "h");
        const char *argv[] = {"t", "--fast=false"};
        cli.parse(2, argv);
        EXPECT_FALSE(b.value);
    }
    {
        Cli cli("t", "test");
        auto &b = cli.flag("fast", false, "h");
        const char *argv[] = {"t", "--fast=1"};
        cli.parse(2, argv);
        EXPECT_TRUE(b.value);
    }
}

TEST(Cli, IntegersParseInBaseTenOnly)
{
    Cli cli("t", "test");
    auto &i = cli.flag("count", static_cast<std::int64_t>(0), "h");
    const char *argv[] = {"t", "--count", "-12"};
    cli.parse(3, argv);
    EXPECT_EQ(i.value, -12);

    // Leading zeros are decimal, not octal: `--seeds 010` means ten.
    // (strtoll base 0 read it as octal 8 — the classic footgun.)
    Cli cli2("t", "test");
    auto &j = cli2.flag("count", static_cast<std::int64_t>(0), "h");
    const char *argv2[] = {"t", "--count", "010"};
    cli2.parse(3, argv2);
    EXPECT_EQ(j.value, 10);

    // Hex is no longer silently accepted.
    Cli cli3("t", "test");
    cli3.flag("count", static_cast<std::int64_t>(0), "h");
    const char *argv3[] = {"t", "--count", "0x10"};
    EXPECT_EXIT(cli3.parse(3, argv3), testing::ExitedWithCode(1),
                "not a base-10 integer");
}

TEST(Cli, UnknownFlagIsFatal)
{
    Cli cli("t", "test");
    cli.flag("name", "x", "h");
    const char *argv[] = {"t", "--nmae", "oops"};
    EXPECT_EXIT(cli.parse(3, argv), testing::ExitedWithCode(1),
                "unknown flag");
}

TEST(Cli, MissingValueIsFatal)
{
    Cli cli("t", "test");
    cli.flag("name", "x", "h");
    const char *argv[] = {"t", "--name"};
    EXPECT_EXIT(cli.parse(2, argv), testing::ExitedWithCode(1),
                "needs a value");
}

TEST(Cli, BadNumbersAreFatal)
{
    {
        Cli cli("t", "test");
        cli.flag("count", static_cast<std::int64_t>(0), "h");
        const char *argv[] = {"t", "--count", "12abc"};
        EXPECT_EXIT(cli.parse(3, argv), testing::ExitedWithCode(1),
                    "not a base-10 integer");
    }
    {
        Cli cli("t", "test");
        cli.flag("count", static_cast<std::int64_t>(0), "h");
        const char *argv[] = {"t", "--count", "99999999999999999999"};
        EXPECT_EXIT(cli.parse(3, argv), testing::ExitedWithCode(1),
                    "out of range");
    }
    {
        Cli cli("t", "test");
        cli.flag("ratio", 0.0, "h");
        const char *argv[] = {"t", "--ratio", "zero"};
        EXPECT_EXIT(cli.parse(3, argv), testing::ExitedWithCode(1),
                    "not a number");
    }
    {
        Cli cli("t", "test");
        cli.flag("fast", false, "h");
        const char *argv[] = {"t", "--fast=maybe"};
        EXPECT_EXIT(cli.parse(2, argv), testing::ExitedWithCode(1),
                    "not a boolean");
    }
}

TEST(Cli, PositionalArgumentsRejected)
{
    Cli cli("t", "test");
    const char *argv[] = {"t", "stray"};
    EXPECT_EXIT(cli.parse(2, argv), testing::ExitedWithCode(1),
                "unexpected argument");
}

TEST(Cli, PositionalArgumentsCollectedWhenAllowed)
{
    Cli cli("t", "test");
    cli.allowPositionals("scenario", "name to run");
    auto &s = cli.flag("name", "x", "h");
    const char *argv[] = {"t", "fig9", "--name", "v", "second"};
    cli.parse(5, argv);
    ASSERT_EQ(cli.positionals().size(), 2u);
    EXPECT_EQ(cli.positionals()[0], "fig9");
    EXPECT_EQ(cli.positionals()[1], "second");
    EXPECT_EQ(s.value, "v");
}

TEST(Cli, MultiFlagAppendsEveryOccurrenceInOrder)
{
    Cli cli("t", "test");
    auto &sets = cli.multiFlag("set", "key=value override");
    {
        const char *argv[] = {"t"};
        cli.parse(1, argv);
        EXPECT_TRUE(sets.value.empty());
        EXPECT_FALSE(sets.seen);
    }
    const char *argv[] = {"t", "--set", "a=1", "--set=b=2", "--set",
                          "a=3"};
    cli.parse(6, argv);
    ASSERT_EQ(sets.value.size(), 3u);
    EXPECT_EQ(sets.value[0], "a=1");
    EXPECT_EQ(sets.value[1], "b=2");
    EXPECT_EQ(sets.value[2], "a=3");
    EXPECT_TRUE(sets.seen);
}

TEST(Cli, DuplicateDeclarationIsFatal)
{
    Cli cli("t", "test");
    cli.flag("name", "x", "h");
    EXPECT_EXIT(cli.flag("name", "y", "h"), testing::ExitedWithCode(1),
                "duplicate");
}

TEST(Cli, HelpExitsZero)
{
    Cli cli("t", "test");
    cli.flag("name", "x", "the name");
    const char *argv[] = {"t", "--help"};
    // The help text goes to stdout; EXPECT_EXIT only matches stderr,
    // so assert the exit code alone.
    EXPECT_EXIT(cli.parse(2, argv), testing::ExitedWithCode(0), "");
}

} // namespace
} // namespace ubik
