/**
 * @file
 * Tests for the precomputed divisibility checker that fronts the
 * UMON sampling filter. The checker must agree with `%` on every
 * input — a single disagreement would silently change which
 * addresses the UMON samples and therefore every miss curve.
 */

#include <gtest/gtest.h>

#include "common/fastdiv.h"
#include "common/hash.h"
#include "common/rng.h"

namespace ubik {
namespace {

TEST(DivisibilityChecker, AgreesWithModuloOnSmallDivisors)
{
    for (std::uint64_t d = 1; d <= 1024; d++) {
        DivisibilityChecker chk(d);
        for (std::uint64_t n = 0; n < 4 * d + 8; n++)
            ASSERT_EQ(chk.divides(n), n % d == 0)
                << "n=" << n << " d=" << d;
    }
}

TEST(DivisibilityChecker, AgreesWithModuloOnRandomInputs)
{
    Rng rng(0xfa57d1f);
    // Divisor shapes that matter: pure powers of two, odd, and the
    // mixed 2^k * odd form the UMON geometry produces (768 = 2^8*3).
    const std::uint64_t divisors[] = {
        1,   2,   3,    5,    7,   8,    12,  64,   96,
        768, 769, 1000, 4096, 768 * 1024ull, (1ull << 63),
        (1ull << 63) + 1,     0xff51afd7ed558ccdull,
    };
    for (std::uint64_t d : divisors) {
        DivisibilityChecker chk(d);
        for (int i = 0; i < 20000; i++) {
            std::uint64_t n = rng.next();
            ASSERT_EQ(chk.divides(n), n % d == 0)
                << "n=" << n << " d=" << d;
            // Force the true side too: random n is almost never
            // divisible by a large d.
            std::uint64_t m = n - n % d;
            ASSERT_EQ(chk.divides(m), true) << "m=" << m << " d=" << d;
        }
    }
}

TEST(DivisibilityChecker, MatchesUmonSamplingPredicate)
{
    // The exact predicate Umon::access evaluates, at paper geometry:
    // sampled iff mix64(addr ^ salt) % 768 == 0, 768 = 12MB lines /
    // (32 ways * 8 sets).
    const std::uint64_t denom = 196608 / (32 * 8);
    ASSERT_EQ(denom, 768u);
    DivisibilityChecker chk(denom);
    Rng rng(42);
    std::uint64_t sampled = 0;
    for (int i = 0; i < 200000; i++) {
        std::uint64_t h = mix64(rng.next() ^ 0xabcdull);
        bool want = h % denom == 0;
        ASSERT_EQ(chk.divides(h), want);
        sampled += want ? 1 : 0;
    }
    // Sanity: the filter accepts roughly 1/768 of hashes.
    EXPECT_GT(sampled, 100u);
    EXPECT_LT(sampled, 500u);
}

TEST(DivisibilityChecker, ResetRetargets)
{
    DivisibilityChecker chk(7);
    EXPECT_TRUE(chk.divides(21));
    EXPECT_FALSE(chk.divides(22));
    chk.reset(11);
    EXPECT_TRUE(chk.divides(22));
    EXPECT_FALSE(chk.divides(21));
}

} // namespace
} // namespace ubik
