/**
 * @file
 * Failpoint subsystem: schedule grammar, trigger semantics, seeded
 * replayability, canonical round-trips, and fail-fast diagnostics on
 * malformed schedules.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <string>
#include <vector>

#include "common/failpoint.h"

using namespace ubik;

namespace {

class FailpointTest : public ::testing::Test
{
  protected:
    void SetUp() override { failpointReset(); }
    void TearDown() override { failpointReset(); }
};

/** Firing pattern of `site` over `n` evaluations, as a bitstring. */
std::string
firePattern(const char *site, int n)
{
    std::string out;
    for (int i = 0; i < n; i++)
        out += failpointEval(site) ? '1' : '0';
    return out;
}

TEST_F(FailpointTest, DisarmedByDefault)
{
    EXPECT_FALSE(failpointsArmed());
    EXPECT_FALSE(failpointEval("cache.append"));
    EXPECT_TRUE(failpointScheduleString().empty());
    EXPECT_TRUE(failpointStats().empty());
}

TEST_F(FailpointTest, NthTriggerFiresExactlyOnce)
{
    failpointConfigure("cache.append=err@3");
    EXPECT_TRUE(failpointsArmed());
    EXPECT_EQ(firePattern("cache.append", 6), "001000");
    // An unconfigured site never fires while others are armed.
    EXPECT_FALSE(failpointEval("cache.open"));
}

TEST_F(FailpointTest, ErrDefaultsToEio)
{
    failpointConfigure("cache.append=err@1");
    FailpointHit hit = failpointEval("cache.append");
    ASSERT_EQ(hit.kind, FailpointHit::Kind::Err);
    EXPECT_EQ(hit.err, EIO);
}

TEST_F(FailpointTest, ErrnoByNameAndNumber)
{
    failpointConfigure("a=err:ENOSPC@1;b=err:ENOENT@1;c=err:13@1");
    EXPECT_EQ(failpointEval("a").err, ENOSPC);
    EXPECT_EQ(failpointEval("b").err, ENOENT);
    EXPECT_EQ(failpointEval("c").err, 13);
}

TEST_F(FailpointTest, FromTriggerFiresOnward)
{
    failpointConfigure("s=err@3+");
    EXPECT_EQ(firePattern("s", 6), "001111");
}

TEST_F(FailpointTest, EveryTrigger)
{
    failpointConfigure("s=err@*");
    EXPECT_EQ(firePattern("s", 4), "1111");
}

TEST_F(FailpointTest, ShortWriteCarriesByteCount)
{
    failpointConfigure("s=short_write:7@1");
    FailpointHit hit = failpointEval("s");
    ASSERT_EQ(hit.kind, FailpointHit::Kind::ShortWrite);
    EXPECT_EQ(hit.arg, 7u);
    // Default byte count is 1 (minimal progress, maximal retries).
    failpointConfigure("s=short_write@1");
    EXPECT_EQ(failpointEval("s").arg, 1u);
}

TEST_F(FailpointTest, TornCarriesByteCount)
{
    failpointConfigure("s=torn:5@1");
    FailpointHit hit = failpointEval("s");
    ASSERT_EQ(hit.kind, FailpointHit::Kind::Torn);
    EXPECT_EQ(hit.arg, 5u);
}

TEST_F(FailpointTest, HangSleepsAndProceeds)
{
    failpointConfigure("s=hang:0.01s@1");
    FailpointHit hit = failpointEval("s");
    ASSERT_EQ(hit.kind, FailpointHit::Kind::Hang);
    EXPECT_DOUBLE_EQ(hit.hangSec, 0.01);
    EXPECT_FALSE(failpointEval("s")); // @1: second eval clean
}

TEST_F(FailpointTest, ChanceTriggerReplaysIdentically)
{
    const char *sched = "s=err@p0.3,seed42";
    failpointConfigure(sched);
    std::string first = firePattern("s", 500);
    failpointConfigure(sched); // counters and Rng reset
    EXPECT_EQ(firePattern("s", 500), first);
    // A fair draw actually fires sometimes and skips sometimes.
    EXPECT_NE(first.find('1'), std::string::npos);
    EXPECT_NE(first.find('0'), std::string::npos);
    // A different seed draws a different pattern.
    failpointConfigure("s=err@p0.3,seed43");
    EXPECT_NE(firePattern("s", 500), first);
}

TEST_F(FailpointTest, ChanceStreamsArePerSite)
{
    failpointConfigure("a=err@p0.5,seed7;b=err@p0.5,seed7");
    std::string pa = firePattern("a", 200);
    std::string pb = firePattern("b", 200);
    // Same seed, different sites: independent streams.
    EXPECT_NE(pa, pb);
}

TEST_F(FailpointTest, ScheduleStringRoundTrips)
{
    failpointConfigure(
        "cache.append=short_write:9@2;claim.create=err:EIO@p0.05,"
        "seed7;claim.heartbeat=hang:2s@1");
    std::string canon = failpointScheduleString();
    failpointConfigure(canon);
    EXPECT_EQ(failpointScheduleString(), canon);
    // Canonical form spells out defaults.
    EXPECT_NE(canon.find("claim.create=err:EIO@p0.05,seed7"),
              std::string::npos);
    EXPECT_NE(canon.find("cache.append=short_write:9@2"),
              std::string::npos);
}

TEST_F(FailpointTest, RandomScheduleIsDeterministic)
{
    failpointConfigure("random:1234");
    std::string a = failpointScheduleString();
    EXPECT_FALSE(a.empty());
    failpointConfigure("random:1234");
    EXPECT_EQ(failpointScheduleString(), a);
    failpointConfigure("random:1235");
    EXPECT_NE(failpointScheduleString(), a);
    // The expansion replays verbatim as a plain schedule.
    failpointConfigure(a);
    EXPECT_EQ(failpointScheduleString(), a);
}

TEST_F(FailpointTest, RandomSchedulesNeverArmTraceSites)
{
    // Trace sites are fail-fast by contract; a random chaos schedule
    // arming them would turn the nightly loop into a crash lottery.
    for (std::uint64_t seed = 0; seed < 50; seed++) {
        failpointConfigure("random:" + std::to_string(seed));
        EXPECT_EQ(failpointScheduleString().find("trace."),
                  std::string::npos)
            << "seed " << seed;
    }
}

TEST_F(FailpointTest, StatsCountEvalsAndFires)
{
    failpointConfigure("s=err@2");
    firePattern("s", 5);
    std::vector<FailpointSiteStats> st = failpointStats();
    ASSERT_EQ(st.size(), 1u);
    EXPECT_EQ(st[0].site, "s");
    EXPECT_EQ(st[0].evals, 5u);
    EXPECT_EQ(st[0].fires, 1u);
}

TEST_F(FailpointTest, ResetDisarms)
{
    failpointConfigure("s=err@*");
    EXPECT_TRUE(failpointEval("s"));
    failpointReset();
    EXPECT_FALSE(failpointsArmed());
    EXPECT_FALSE(failpointEval("s"));
}

using FailpointDeathTest = FailpointTest;

TEST_F(FailpointDeathTest, MalformedSchedulesDieWithTheEntry)
{
    EXPECT_DEATH(failpointConfigure("nonsense"),
                 "expected <site>=<action>@<trigger>");
    EXPECT_DEATH(failpointConfigure("s=err"), "missing @<trigger>");
    EXPECT_DEATH(failpointConfigure("s=explode@1"),
                 "unknown action 'explode'");
    EXPECT_DEATH(failpointConfigure("s=err:EWHAT@1"),
                 "unknown errno 'EWHAT'");
    EXPECT_DEATH(failpointConfigure("s=err@0"), "bad trigger");
    EXPECT_DEATH(failpointConfigure("s=err@p1.5"),
                 "not in \\[0, 1\\]");
    EXPECT_DEATH(failpointConfigure("s=hang:2@1"),
                 "hang needs a duration");
    EXPECT_DEATH(failpointConfigure("s=err@1;s=err@2"),
                 "configured twice");
}

} // namespace
