/**
 * @file
 * Tests for the deterministic RNG and its distributions. Every
 * stochastic component of the simulator flows through these, so the
 * statistical properties checked here (means, ranges, skew) underpin
 * the workload models' calibration.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/rng.h"

namespace ubik {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        if (a.next() == b.next())
            same++;
    EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsIndependentAndDeterministic)
{
    Rng a(7);
    Rng f1 = a.fork();
    // Re-create: same parent seed, same fork order => same stream.
    Rng b(7);
    Rng f2 = b.fork();
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(f1.next(), f2.next());
    // Fork differs from parent continuation.
    EXPECT_NE(a.next(), f1.next());
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0;
    for (int i = 0; i < 100000; i++) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, UniformRange)
{
    Rng rng(4);
    for (int i = 0; i < 10000; i++) {
        double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; i++) {
        std::uint64_t v = rng.uniformInt(10);
        ASSERT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u); // all values hit
}

TEST(Rng, UniformIntInclusiveRange)
{
    Rng rng(6);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; i++) {
        std::uint64_t v = rng.uniformInt(5, 8);
        ASSERT_GE(v, 5u);
        ASSERT_LE(v, 8u);
        saw_lo |= v == 5;
        saw_hi |= v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(8);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; i++) {
        double e = rng.exponential(250.0);
        ASSERT_GE(e, 0.0);
        sum += e;
    }
    EXPECT_NEAR(sum / n, 250.0, 2.5);
}

TEST(Rng, NormalMoments)
{
    Rng rng(9);
    double sum = 0, sq = 0;
    const int n = 200000;
    for (int i = 0; i < n; i++) {
        double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, LognormalMean)
{
    // E[exp(mu + sigma Z)] = exp(mu + sigma^2/2).
    Rng rng(10);
    double mu = std::log(1000.0), sigma = 0.5;
    double expect = std::exp(mu + sigma * sigma / 2);
    double sum = 0;
    const int n = 300000;
    for (int i = 0; i < n; i++)
        sum += rng.lognormal(mu, sigma);
    EXPECT_NEAR(sum / n / expect, 1.0, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(11);
    for (int i = 0; i < 100; i++) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceProbability)
{
    Rng rng(12);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; i++)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

class ZipfTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfTest, RangeAndSkew)
{
    const double theta = GetParam();
    const std::uint64_t n = 1000;
    ZipfDistribution zipf(n, theta);
    Rng rng(13);
    std::vector<std::uint64_t> counts(n, 0);
    const int draws = 200000;
    for (int i = 0; i < draws; i++) {
        std::uint64_t v = zipf(rng);
        ASSERT_LT(v, n);
        counts[v]++;
    }
    // Rank 0 must be the most popular for any positive skew, and the
    // head must dominate the tail increasingly with theta.
    std::uint64_t max_count =
        *std::max_element(counts.begin(), counts.end());
    EXPECT_EQ(counts[0], max_count);
    double head = 0, tail = 0;
    for (std::uint64_t i = 0; i < n; i++)
        (i < n / 10 ? head : tail) += static_cast<double>(counts[i]);
    if (theta >= 0.8) {
        EXPECT_GT(head, tail); // strong skew: top 10% > rest
    }
    EXPECT_GT(head / draws, 0.1); // always more than proportional
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfTest,
                         ::testing::Values(0.2, 0.6, 0.8, 0.99, 1.2));

/**
 * High-skew head-mass correctness against the exact Zipf pmf,
 * p(rank) = rank^-theta / sum_k k^-theta, computed in-test. The theta
 * grid straddles the implementation's mode boundary: 0.99 samples via
 * the Gray et al. quantile approximation, 0.995/0.999/1.0/1.2 via the
 * exact CDF table — the query-popularity regime the paper's LC
 * workloads run at, where a biased head changes every hot-set hit
 * rate downstream.
 */
class ZipfHeadMass : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfHeadMass, MatchesExactPmf)
{
    const double theta = GetParam();
    const std::uint64_t n = 1000;
    const int draws = 200000;

    // Exact normalization and head probabilities.
    double zeta_n = 0;
    for (std::uint64_t k = 1; k <= n; k++)
        zeta_n += std::pow(static_cast<double>(k), -theta);
    auto exact = [&](std::uint64_t rank) {
        return std::pow(static_cast<double>(rank + 1), -theta) /
               zeta_n;
    };

    ZipfDistribution zipf(n, theta);
    Rng rng(20260807);
    std::vector<std::uint64_t> counts(n, 0);
    for (int i = 0; i < draws; i++)
        counts[zipf(rng)]++;

    // Rank 0 and rank 1 probabilities. Both sampling modes resolve
    // the first two ranks via exact thresholds, so the only slack
    // needed is sampling noise (sigma ~= sqrt(p(1-p)/draws) < 0.0011;
    // 0.005 is ~5 sigma).
    double p0 = static_cast<double>(counts[0]) / draws;
    double p1 = static_cast<double>(counts[1]) / draws;
    EXPECT_NEAR(p0, exact(0), 0.005) << "theta = " << theta;
    EXPECT_NEAR(p1, exact(1), 0.005) << "theta = " << theta;

    // Top-10 head mass: the quantile approximation's known bias
    // lives in the mid-ranks, so allow 2% there; the exact-table mode
    // gets the sampling-noise-only budget.
    double head_obs = 0, head_exact = 0;
    for (std::uint64_t r = 0; r < 10; r++) {
        head_obs += static_cast<double>(counts[r]) / draws;
        head_exact += exact(r);
    }
    double tol = theta < 0.995 ? 0.02 : 0.008;
    EXPECT_NEAR(head_obs, head_exact, tol) << "theta = " << theta;

    // Expected head ordering survives sampling: rank probabilities
    // are nonincreasing over the first few ranks.
    for (std::uint64_t r = 0; r + 1 < 5; r++)
        EXPECT_GE(counts[r] + 3 * std::sqrt(double(counts[r]) + 1),
                  counts[r + 1])
            << "theta = " << theta << " rank " << r;
}

INSTANTIATE_TEST_SUITE_P(HighSkewThetas, ZipfHeadMass,
                         ::testing::Values(0.99, 0.995, 0.999, 1.0,
                                           1.2));

TEST(Zipf, HeadMassMonotoneInTheta)
{
    // More skew -> heavier head. Restricted to the exact-table
    // thetas: the Gray approximation at theta = 0.99 carries a ~1.5%
    // head-mass bias (bounded by MatchesExactPmf above), larger than
    // the true 0.99 -> 0.995 ordering gap, so including it here
    // would test the bias, not the ordering.
    const std::uint64_t n = 1000;
    const int draws = 200000;
    double prev = 0;
    for (double theta : {0.995, 0.999, 1.0, 1.2}) {
        ZipfDistribution zipf(n, theta);
        Rng rng(7);
        std::uint64_t head = 0;
        for (int i = 0; i < draws; i++)
            head += zipf(rng) < 10 ? 1 : 0;
        double mass = static_cast<double>(head) / draws;
        EXPECT_GT(mass, prev - 0.005) << "theta = " << theta;
        prev = mass;
    }
}

TEST(Zipf, SingleElement)
{
    ZipfDistribution zipf(1, 0.9);
    Rng rng(14);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(zipf(rng), 0u);
}

TEST(DiscreteDistribution, RespectsWeights)
{
    DiscreteDistribution d({1.0, 2.0, 1.0});
    Rng rng(15);
    std::vector<int> counts(3, 0);
    const int n = 100000;
    for (int i = 0; i < n; i++)
        counts[d(rng)]++;
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.50, 0.01);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.25, 0.01);
}

TEST(DiscreteDistribution, SingleBucket)
{
    DiscreteDistribution d({5.0});
    Rng rng(16);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(d(rng), 0u);
}

} // namespace
} // namespace ubik
