/**
 * @file
 * Tests for the minimal JSON reader/writer: value model, lossless
 * round-trips (including bit-exact doubles), strict-grammar rejects
 * over a fuzz-ish corpus of malformed inputs (truncations, bad
 * escapes, depth overflow), and writer determinism.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>

#include "common/json.h"

namespace ubik {
namespace {

Json
parseOk(const std::string &text)
{
    Json out;
    std::string err;
    EXPECT_TRUE(Json::parse(text, out, err))
        << "input: " << text << " error: " << err;
    return out;
}

std::string
parseErr(const std::string &text)
{
    Json out;
    std::string err;
    EXPECT_FALSE(Json::parse(text, out, err)) << "input: " << text;
    EXPECT_FALSE(err.empty());
    return err;
}

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(parseOk("null").isNull());
    EXPECT_TRUE(parseOk("true").boolean());
    EXPECT_FALSE(parseOk("false").boolean());
    EXPECT_DOUBLE_EQ(parseOk("42").number(), 42.0);
    EXPECT_DOUBLE_EQ(parseOk("-0.5e2").number(), -50.0);
    EXPECT_EQ(parseOk("\"hi\\n\\\"there\\\"\"").str(),
              "hi\n\"there\"");
    EXPECT_EQ(parseOk("  \"pad\"  ").str(), "pad");
}

TEST(Json, ParsesContainersAndPreservesOrder)
{
    Json v = parseOk("{\"b\": [1, 2, {\"x\": null}], \"a\": true}");
    ASSERT_TRUE(v.isObject());
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v.members()[0].first, "b");
    EXPECT_EQ(v.members()[1].first, "a");
    const Json *b = v.find("b");
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(b->size(), 3u);
    EXPECT_DOUBLE_EQ(b->at(1).number(), 2.0);
    EXPECT_TRUE(b->at(2).find("x")->isNull());
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, UnicodeEscapesDecodeToUtf8)
{
    EXPECT_EQ(parseOk("\"\\u0041\"").str(), "A");
    EXPECT_EQ(parseOk("\"\\u00e9\"").str(), "\xc3\xa9");     // é
    EXPECT_EQ(parseOk("\"\\u20ac\"").str(), "\xe2\x82\xac"); // €
    // Surrogate pair: U+1F600.
    EXPECT_EQ(parseOk("\"\\ud83d\\ude00\"").str(),
              "\xf0\x9f\x98\x80");
}

TEST(Json, DumpParseRoundTripsStructurally)
{
    Json obj = Json::object();
    obj.set("s", "line1\nline2\ttab \"quoted\" back\\slash");
    obj.set("i", 123456789);
    obj.set("d", 0.1);
    obj.set("neg", -1.5e-300);
    obj.set("b", true);
    obj.set("n", Json());
    Json arr = Json::array();
    arr.push(1).push("two").push(Json::object());
    obj.set("arr", std::move(arr));

    for (bool pretty : {false, true}) {
        Json back = parseOk(obj.dump(pretty));
        EXPECT_EQ(back, obj);
        // Canonical: dumping the reparse reproduces the bytes.
        EXPECT_EQ(back.dump(pretty), obj.dump(pretty));
    }
}

TEST(Json, DoublesRoundTripBitExactly)
{
    const double cases[] = {
        0.0,
        1.0 / 3.0,
        0.1,
        1e-310, // subnormal
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::min(),
        std::numeric_limits<double>::epsilon(),
        9007199254740991.0, // 2^53 - 1: still integer-formatted
        9007199254740994.0, // > 2^53: scientific
        -123456.789012345678,
    };
    for (double d : cases) {
        Json v(d);
        double back = parseOk(v.dump()).number();
        std::uint64_t a, b;
        std::memcpy(&a, &d, sizeof(a));
        std::memcpy(&b, &back, sizeof(b));
        EXPECT_EQ(a, b) << "value " << d << " dumped as " << v.dump();
    }
    // Integral doubles print as integers (diff-friendly).
    EXPECT_EQ(Json(4.0).dump(), "4");
    EXPECT_EQ(Json(-17.0).dump(), "-17");
    EXPECT_EQ(jsonNumberText(1048576.0), "1048576");
}

TEST(Json, EqualityIgnoresObjectOrderButNotContent)
{
    Json a = parseOk("{\"x\": 1, \"y\": [true]}");
    Json b = parseOk("{\"y\": [true], \"x\": 1}");
    EXPECT_EQ(a, b);
    Json c = parseOk("{\"x\": 1, \"y\": [false]}");
    EXPECT_NE(a, c);
    EXPECT_NE(parseOk("[1,2]"), parseOk("[2,1]"));
    EXPECT_EQ(parseOk("1"), parseOk("1.0"));
}

TEST(Json, RejectsMalformedInputs)
{
    const char *cases[] = {
        "",                      // empty
        "   ",                   // whitespace only
        "tru",                   // truncated literal
        "nul",                   //
        "falsey",                // trailing garbage inside literal
        "[1, 2",                 // unterminated array
        "[1, 2,]",               // trailing comma
        "[1 2]",                 // missing comma
        "{\"a\": 1",             // unterminated object
        "{\"a\" 1}",             // missing colon
        "{\"a\": }",             // missing value
        "{a: 1}",                // unquoted key
        "{\"a\": 1,}",           // trailing comma
        "{\"a\": 1, \"a\": 2}",  // duplicate key
        "\"abc",                 // unterminated string
        "\"ab\\q\"",             // bad escape
        "\"ab\\u12\"",           // truncated \u
        "\"ab\\u12zq\"",         // bad hex digit
        "\"\\ud83d\"",           // lone high surrogate
        "\"\\ude00\"",           // lone low surrogate
        "\"\\ud83d\\u0041\"",    // high surrogate + non-low
        "\"ctl\x01\"",           // raw control character
        "01",                    // leading zero
        "+1",                    // leading plus
        ".5",                    // bare fraction
        "1.",                    // digitless fraction
        "1e",                    // digitless exponent
        "1e+",                   //
        "0x10",                  // hex
        "NaN",                   // non-finite
        "Infinity",              //
        "1e999",                 // overflows to infinity
        "1 2",                   // two top-level values
        "[1] []",                // trailing garbage
    };
    for (const char *c : cases)
        parseErr(c);
}

TEST(Json, TruncationSweepNeverAcceptsAPrefix)
{
    // Every strict prefix of a valid document must be rejected —
    // the classic fuzz finding for hand-rolled parsers.
    const std::string doc =
        "{\"name\": \"fig9\", \"seeds\": 4, \"schemes\": "
        "[{\"label\": \"U\\u0042ik\", \"slack\": 5e-2}], "
        "\"ok\": [true, false, null]}";
    ASSERT_TRUE(parseOk(doc).isObject());
    for (std::size_t n = 0; n < doc.size(); n++) {
        Json out;
        std::string err;
        EXPECT_FALSE(Json::parse(doc.substr(0, n), out, err))
            << "prefix of length " << n << " was accepted";
    }
}

TEST(Json, DepthLimitIsEnforced)
{
    auto nested = [](int depth, char open, char close) {
        std::string s(static_cast<std::size_t>(depth), open);
        s += std::string(static_cast<std::size_t>(depth), close);
        return s;
    };
    EXPECT_TRUE(parseOk(nested(Json::kMaxDepth, '[', ']')).isArray());
    std::string err =
        parseErr(nested(Json::kMaxDepth + 1, '[', ']'));
    EXPECT_NE(err.find("nesting"), std::string::npos);
    // Objects burn depth too.
    std::string deepObj;
    for (int i = 0; i < Json::kMaxDepth + 1; i++)
        deepObj += "{\"k\":";
    deepObj += "1";
    for (int i = 0; i < Json::kMaxDepth + 1; i++)
        deepObj += "}";
    parseErr(deepObj);
}

TEST(Json, ErrorsCarryByteOffsets)
{
    std::string err = parseErr("{\"a\": tru}");
    EXPECT_NE(err.find("byte"), std::string::npos);
    EXPECT_NE(err.find("'true'"), std::string::npos);
}

TEST(Json, ParseFileReportsMissingFiles)
{
    Json out;
    std::string err;
    EXPECT_FALSE(Json::parseFile("/nonexistent/no.json", out, err));
    EXPECT_NE(err.find("cannot open"), std::string::npos);
}

} // namespace
} // namespace ubik
