/**
 * @file
 * Tests for per-job RNG stream splitting (Rng::jobStream): the
 * parallel experiment engine hands every job index its own stream, so
 * reproducibility and independence of those streams underpin the
 * engine's bit-identical-results guarantee.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace ubik {
namespace {

TEST(RngStream, SingleJobIndexReproducesItsSequence)
{
    // Re-running one job must reproduce the exact stream, with no
    // dependence on any other stream having been created first.
    Rng first = Rng::jobStream(42, 7);
    Rng other = Rng::jobStream(42, 3); // unrelated stream in between
    (void)other.next();
    Rng again = Rng::jobStream(42, 7);
    for (int i = 0; i < 1000; i++)
        EXPECT_EQ(first.next(), again.next());
}

TEST(RngStream, AdjacentJobIndicesDiffer)
{
    for (std::uint64_t j = 0; j < 16; j++) {
        Rng a = Rng::jobStream(1, j);
        Rng b = Rng::jobStream(1, j + 1);
        int same = 0;
        for (int i = 0; i < 200; i++)
            if (a.next() == b.next())
                same++;
        EXPECT_EQ(same, 0) << "job " << j;
    }
}

TEST(RngStream, DifferentBaseSeedsDiffer)
{
    Rng a = Rng::jobStream(1, 5);
    Rng b = Rng::jobStream(2, 5);
    int same = 0;
    for (int i = 0; i < 200; i++)
        if (a.next() == b.next())
            same++;
    EXPECT_EQ(same, 0);
}

TEST(RngStream, StreamIsNotTheBaseStream)
{
    // jobStream must not simply alias Rng(base_seed) or Rng(index).
    Rng stream = Rng::jobStream(9, 0);
    Rng base(9);
    Rng index(0);
    EXPECT_NE(stream.next(), base.next());
    EXPECT_NE(stream.next(), index.next());
}

/**
 * Chi-square independence check over adjacent job streams: bucket
 * paired draws (a_i, b_i) from streams j and j+1 into a 16x16
 * contingency table. If the streams were correlated (e.g. overlapping
 * subsequences, which naive seed+index constructions produce), mass
 * concentrates on a diagonal and the statistic explodes. For
 * independent uniform streams the statistic is chi-square with 255
 * degrees of freedom: mean 255, stddev ~22.6, so 360 is a > 4-sigma
 * bound (the draws are deterministic; the bound just leaves margin
 * across the tested pairs).
 */
TEST(RngStream, AdjacentStreamsPassChiSquare)
{
    const int kBins = 16;
    const int kDraws = 64000;
    for (std::uint64_t j = 0; j < 8; j++) {
        Rng a = Rng::jobStream(1234, j);
        Rng b = Rng::jobStream(1234, j + 1);
        std::vector<std::uint32_t> table(kBins * kBins, 0);
        for (int i = 0; i < kDraws; i++) {
            auto ra = static_cast<int>(a.uniformInt(kBins));
            auto rb = static_cast<int>(b.uniformInt(kBins));
            table[static_cast<std::size_t>(ra * kBins + rb)]++;
        }
        const double expect =
            static_cast<double>(kDraws) / (kBins * kBins);
        double chi2 = 0;
        for (std::uint32_t c : table) {
            double d = static_cast<double>(c) - expect;
            chi2 += d * d / expect;
        }
        EXPECT_LT(chi2, 360.0) << "streams " << j << "," << j + 1;
        // And not suspiciously uniform either (fit too good implies
        // the two streams are anti-correlated by construction).
        EXPECT_GT(chi2, 160.0) << "streams " << j << "," << j + 1;
    }
}

TEST(RngStream, UniformMeanPerStream)
{
    // Each stream on its own still looks uniform.
    for (std::uint64_t j = 0; j < 4; j++) {
        Rng r = Rng::jobStream(77, j);
        double sum = 0;
        const int n = 100000;
        for (int i = 0; i < n; i++)
            sum += r.uniform();
        EXPECT_NEAR(sum / n, 0.5, 0.01) << "stream " << j;
    }
}

TEST(RngStream, LargeIndicesStayDistinct)
{
    // Indices far beyond any realistic job count still split cleanly.
    Rng a = Rng::jobStream(5, 1ull << 60);
    Rng b = Rng::jobStream(5, (1ull << 60) + 1);
    int same = 0;
    for (int i = 0; i < 200; i++)
        if (a.next() == b.next())
            same++;
    EXPECT_EQ(same, 0);
}

} // namespace
} // namespace ubik
