/**
 * @file
 * Tests for the seeded random-scenario generator (sim/scenario_gen.h):
 * purity in the seed, validity of every emitted spec, JSON round-trip
 * through the exact path `ubik_gen | ubik_run --spec` uses, and the
 * quantization that keeps a large generated batch CI-feasible.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/experiment.h"
#include "sim/scenario.h"
#include "sim/scenario_gen.h"

namespace ubik {
namespace {

ExperimentConfig
tinyCfg()
{
    ExperimentConfig cfg;
    cfg.scale = 16.0;
    cfg.roiRequests = 10;
    cfg.warmupRequests = 2;
    cfg.seeds = 1;
    cfg.mixesPerLc = 1;
    cfg.jobs = 1;
    return cfg;
}

TEST(ScenarioGen, PureInSeed)
{
    for (std::uint64_t seed : {0ull, 1ull, 42ull, 999999ull}) {
        ScenarioSpec a = generateScenario(seed);
        ScenarioSpec b = generateScenario(seed);
        EXPECT_EQ(scenarioCanonicalJson(a), scenarioCanonicalJson(b));
        EXPECT_EQ(a.name, "gen-" + std::to_string(seed));
    }
}

TEST(ScenarioGen, SeedsDiffer)
{
    // Not literally all distinct (the knob space is quantized), but a
    // small window must not collapse to one spec.
    std::set<std::string> bodies;
    for (std::uint64_t s = 0; s < 32; s++) {
        ScenarioSpec spec = generateScenario(s);
        spec.name.clear(); // ignore the seed-bearing name/title
        spec.title.clear();
        bodies.insert(scenarioCanonicalJson(spec));
    }
    EXPECT_GT(bodies.size(), 16u);
}

TEST(ScenarioGen, EverySpecIsValidAndRoundTrips)
{
    ExperimentConfig cfg = tinyCfg();
    std::set<std::string> kinds;
    std::set<std::string> presets;
    for (std::uint64_t s = 0; s < 200; s++) {
        ScenarioSpec spec = generateScenario(s);

        // Structure: the property suite's contract.
        ASSERT_EQ(spec.schemes.size(), 2u) << spec.name;
        EXPECT_EQ(spec.schemes[0].label, "StaticLC");
        EXPECT_EQ(spec.schemes[1].label, "Ubik");
        EXPECT_GT(spec.schemes[1].slack, 0.0);
        ASSERT_EQ(spec.mixes.size(), 1u);
        EXPECT_EQ(spec.seeds, 1u);

        // validate() was already called inside the generator; the
        // mixes must expand cleanly too (bad presets would fatal).
        std::vector<MixSpec> mixes = buildScenarioMixes(spec, cfg);
        ASSERT_EQ(mixes.size(), 1u);
        EXPECT_EQ(mixes[0].lc.profile, spec.profile);

        // The exact ubik_gen -> ubik_run --spec path.
        ScenarioSpec back = scenarioFromJson(scenarioToJson(spec));
        EXPECT_EQ(scenarioCanonicalJson(back),
                  scenarioCanonicalJson(spec))
            << spec.name;
        EXPECT_EQ(back.profile, spec.profile);

        kinds.insert(loadProfileKindName(spec.profile.kind));
        presets.insert(spec.mixes[0].lcPreset);
    }
    // 200 seeds cover every profile kind and every LC preset.
    EXPECT_EQ(kinds.size(), 5u);
    EXPECT_EQ(presets.size(), 5u);
}

TEST(ScenarioGen, QuantizationKeepsBaselinePoolSmall)
{
    // The whole point of quantized knobs: hundreds of scenarios share
    // a handful of LC baselines (preset x load x seed), so a batched
    // property sweep pays the baseline cost once, not per scenario.
    std::set<std::string> lcBaselines;
    std::set<std::string> batchApps;
    for (std::uint64_t s = 0; s < 200; s++) {
        ScenarioSpec spec = generateScenario(s);
        lcBaselines.insert(spec.mixes[0].lcPreset + "@" +
                           std::to_string(spec.mixes[0].load));
        for (const BatchSel &b : spec.mixes[0].batch)
            batchApps.insert(std::string(1, batchClassCode(b.cls)) +
                             std::to_string(b.variation));
    }
    EXPECT_LE(lcBaselines.size(), 10u); // 5 presets x 2 loads
    EXPECT_LE(batchApps.size(), 16u);   // 4 classes x 4 variations
}

} // namespace
} // namespace ubik
