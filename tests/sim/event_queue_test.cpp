/**
 * @file
 * Tests for the indexed min-heap behind Cmp's event loop. The heap
 * replaced a linear scan whose selection order (earliest time, ties
 * to the lowest core index) is part of simulated behaviour, so the
 * ordering is checked against a reference scan over random updates.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "sim/event_queue.h"

namespace ubik {
namespace {

/** The legacy selection: first strictly-smaller wins. */
std::pair<Cycles, std::uint32_t>
referenceTop(const std::vector<Cycles> &t)
{
    Cycles best = t[0];
    std::uint32_t idx = 0;
    for (std::uint32_t i = 1; i < t.size(); i++) {
        if (t[i] < best) {
            best = t[i];
            idx = i;
        }
    }
    return {best, idx};
}

TEST(EventQueue, InitMatchesScan)
{
    std::vector<Cycles> t = {5, 3, 9, 3, 12};
    EventQueue q;
    q.init(t);
    EXPECT_EQ(q.topTime(), 3u);
    EXPECT_EQ(q.topIndex(), 1u); // tie between 1 and 3: lowest index
}

TEST(EventQueue, SingleElement)
{
    EventQueue q;
    q.init({42});
    EXPECT_EQ(q.topTime(), 42u);
    EXPECT_EQ(q.topIndex(), 0u);
    q.update(0, 7);
    EXPECT_EQ(q.topTime(), 7u);
}

TEST(EventQueue, RandomUpdatesMatchReferenceScan)
{
    Rng rng(777);
    for (std::uint32_t n : {2u, 3u, 6u, 17u}) {
        std::vector<Cycles> t(n);
        for (auto &x : t)
            x = rng.uniformInt(50);
        EventQueue q;
        q.init(t);
        for (int step = 0; step < 20000; step++) {
            auto [bt, bi] = referenceTop(t);
            ASSERT_EQ(q.topTime(), bt) << "step " << step;
            ASSERT_EQ(q.topIndex(), bi) << "step " << step;
            // Advance a core the way Cmp::run does: usually the one
            // just served, sometimes any other (request restarts).
            std::uint32_t c = rng.chance(0.8)
                                  ? bi
                                  : static_cast<std::uint32_t>(
                                        rng.uniformInt(n));
            // Ties are common in the event loop (coalesced wakeups),
            // so draw from a small range on purpose.
            Cycles nt = t[c] + rng.uniformInt(4);
            t[c] = nt;
            q.update(c, nt);
        }
    }
}

TEST(EventQueue, MonotoneDrainIsSorted)
{
    Rng rng(9);
    std::vector<Cycles> t(32);
    for (auto &x : t)
        x = rng.uniformInt(1000);
    EventQueue q;
    q.init(t);
    Cycles last = 0;
    for (int i = 0; i < 2000; i++) {
        Cycles now = q.topTime();
        EXPECT_GE(now, last);
        last = now;
        std::uint32_t c = q.topIndex();
        t[c] = now + 1 + rng.uniformInt(100);
        q.update(c, t[c]);
    }
}

} // namespace
} // namespace ubik
