/**
 * @file
 * Golden-determinism test for the hot-path access engine.
 *
 * Runs a small fixed-seed mix under one scheme per (scheme kind x
 * array kind x policy family) and checksums every MixRunResult field
 * at bit granularity against values pinned BEFORE the SoA /
 * devirtualization refactor of the access engine. If any of the
 * layout, dispatch, hashing, event-queue, or UMON-filter
 * optimizations changes a single bit of simulated behaviour, these
 * checksums move and this test fails.
 *
 * The same checksums are asserted through the parallel engine at
 * several worker counts and through a cold and a warm persistent
 * result cache, so the pinned values also anchor the ResultCache
 * schema: a key/value field moving without a schema bump would
 * surface here as a stale hit.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "support/cache_test_util.h"

#include "common/hash.h"

#include "sim/result_cache.h"

namespace ubik {
namespace {

std::uint64_t
fnvDouble(std::uint64_t h, double d)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d), "double width");
    std::memcpy(&bits, &d, sizeof(bits));
    return fnv1a64(h, bits);
}

/** Bit-exact digest of every MixRunResult field, declaration order. */
std::uint64_t
resultChecksum(const MixRunResult &r)
{
    std::uint64_t h = kFnvOffsetBasis;
    h = fnvDouble(h, r.lcTailMean);
    h = fnvDouble(h, r.tailDegradation);
    h = fnvDouble(h, r.meanDegradation);
    h = fnvDouble(h, r.weightedSpeedup);
    h = fnv1a64(h, r.batchSpeedups.size());
    for (double s : r.batchSpeedups)
        h = fnvDouble(h, s);
    h = fnv1a64(h, r.ubikDeboosts);
    h = fnv1a64(h, r.ubikDeadlineDeboosts);
    h = fnv1a64(h, r.ubikWatermarks);
    return h;
}

/** Fixed unit-test scale; independent of the environment. */
ExperimentConfig
goldenCfg()
{
    ExperimentConfig cfg;
    cfg.scale = 16.0;
    cfg.roiRequests = 30;
    cfg.warmupRequests = 10;
    cfg.seeds = 1;
    cfg.mixesPerLc = 1;
    cfg.cacheDir.clear();
    return cfg;
}

MixSpec
goldenMix()
{
    MixSpec m;
    m.name = "specjbb-lo/nfs";
    m.lc.app = lc_presets::specjbb();
    m.lc.load = 0.2;
    m.batch.name = "nfs";
    m.batch.apps = {
        batch_presets::make(BatchClass::Insensitive, 0),
        batch_presets::make(BatchClass::Friendly, 1),
        batch_presets::make(BatchClass::Streaming, 2),
    };
    return m;
}

/** One scheme per hot-path flavour: every array kind, every
 *  missInstall implementation, and the Ubik/UMON policy path. */
std::vector<SchemeUnderTest>
goldenSchemes()
{
    return {
        {"Ubik", SchemeKind::Vantage, ArrayKind::Z4_52,
         PolicyKind::Ubik, 0.05},
        {"StaticLC-SA16", SchemeKind::Vantage, ArrayKind::SA16,
         PolicyKind::StaticLc, 0.0},
        {"LRU", SchemeKind::SharedLru, ArrayKind::Z4_52,
         PolicyKind::Lru, 0.0},
        {"UCP-WP", SchemeKind::WayPart, ArrayKind::SA16,
         PolicyKind::Ucp, 0.0},
        {"OnOff-SA64", SchemeKind::Vantage, ArrayKind::SA64,
         PolicyKind::OnOff, 0.0},
    };
}

/**
 * Pinned pre-refactor checksums, one per goldenSchemes() entry, from
 * the seed AoS/virtual-dispatch engine (commit fd2a3f3) at the
 * goldenCfg() scale with seed 1. Regenerating them requires a
 * deliberate decision that simulated behaviour may change — together
 * with a ResultCache schema-version bump if any MixRunResult or key
 * field moved.
 *
 * Audit note, cache schema v4: the tailMean nearest-rank fix
 * (stats/latency_recorder.cpp) changes lcTailMean only when
 * pct/100 * n is an exact integer. At this config n = 3 instances x
 * 30 ROI requests per recorder and 95% of 30/90 is never integral,
 * so these checksums are — verifiably — unchanged by that fix; the
 * schema bump still evicts every cached v3 result because other
 * request counts (any with integral 0.95 * n, e.g. UBIK_REQUESTS=20)
 * do shift.
 */
const std::uint64_t kGolden[5] = {
    0x3cacc7cf743fcd74ull, // Ubik
    0x1bc5e29d9a1fdff6ull, // StaticLC-SA16
    0xa9950f1db31311c2ull, // LRU
    0xd07bbd5659125ac4ull, // UCP-WP
    0xd966d5c5d3a1d932ull, // OnOff-SA64
};

std::vector<SweepJob>
goldenJobs()
{
    return buildSweepJobs(goldenSchemes(), {goldenMix()}, 1);
}

void
expectGolden(const std::vector<MixRunResult> &results, const char *tag)
{
    auto schemes = goldenSchemes();
    ASSERT_EQ(results.size(), schemes.size());
    for (std::size_t i = 0; i < results.size(); i++) {
        std::uint64_t sum = resultChecksum(results[i]);
        EXPECT_EQ(sum, kGolden[i])
            << tag << ": scheme " << schemes[i].label
            << " produced checksum 0x" << std::hex << sum
            << " (pinned 0x" << kGolden[i] << std::dec << ")";
    }
}

TEST(HotpathGolden, SequentialMatchesPinnedChecksums)
{
    MixRunner runner(goldenCfg());
    ParallelSweep engine(runner, /*workers=*/1);
    std::vector<MixRunResult> results = engine.run(goldenJobs());
    for (std::size_t i = 0; i < results.size(); i++)
        std::printf("[golden] %-14s 0x%016llx\n",
                    goldenSchemes()[i].label.c_str(),
                    static_cast<unsigned long long>(
                        resultChecksum(results[i])));
    expectGolden(results, "sequential");
}

TEST(HotpathGolden, ParallelColdAndWarmCacheMatchPinnedChecksums)
{
    test::TempCacheDir dir("hotpath_golden");

    {
        // Cold cache, parallel workers.
        auto cache = ResultCache::open(dir.path());
        ASSERT_NE(cache, nullptr);
        MixRunner runner(goldenCfg());
        runner.attachCache(cache.get());
        ParallelSweep engine(runner, /*workers=*/4);
        engine.attachCache(cache.get());
        expectGolden(engine.run(goldenJobs()), "parallel cold");
    }
    {
        // Warm cache, different worker count: every job must be a
        // cache hit and still reproduce the pinned pre-refactor bits.
        auto cache = ResultCache::open(dir.path());
        ASSERT_NE(cache, nullptr);
        MixRunner runner(goldenCfg());
        runner.attachCache(cache.get());
        ParallelSweep engine(runner, /*workers=*/2);
        engine.attachCache(cache.get());
        expectGolden(engine.run(goldenJobs()), "warm");
        EXPECT_EQ(cache->stats().mixHits, goldenJobs().size());
        EXPECT_EQ(cache->stats().mixMisses, 0u);
    }
}

} // namespace
} // namespace ubik
