/**
 * @file
 * Determinism tests for the parallel experiment engine: the same
 * sweep must produce byte-identical MixRunResults under UBIK_JOBS=1
 * and UBIK_JOBS=4, and the JobPool must run every job exactly once no
 * matter how jobs outnumber workers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "sim/job_pool.h"
#include "sim/parallel_sweep.h"

namespace ubik {
namespace {

ExperimentConfig
fastCfg()
{
    ExperimentConfig cfg;
    cfg.scale = 16.0; // extra small for unit tests
    cfg.roiRequests = 30;
    cfg.warmupRequests = 10;
    cfg.seeds = 3;
    cfg.mixesPerLc = 1;
    return cfg;
}

/** The 12-job sweep from the issue: 2 schemes x 2 mixes x 3 seeds. */
std::vector<SweepJob>
twelveJobs()
{
    MixSpec a;
    a.name = "specjbb-lo/nfs";
    a.lc.app = lc_presets::specjbb();
    a.lc.load = 0.2;
    a.batch.name = "nfs";
    a.batch.apps = {
        batch_presets::make(BatchClass::Insensitive, 0),
        batch_presets::make(BatchClass::Friendly, 1),
        batch_presets::make(BatchClass::Streaming, 2),
    };
    MixSpec b = a;
    b.name = "specjbb-lo/ffs";
    b.batch.name = "ffs";
    b.batch.apps[0] = batch_presets::make(BatchClass::Friendly, 3);

    std::vector<SchemeUnderTest> schemes = {
        {"StaticLC", SchemeKind::Vantage, ArrayKind::Z4_52,
         PolicyKind::StaticLc, 0.0},
        {"LRU", SchemeKind::SharedLru, ArrayKind::Z4_52,
         PolicyKind::Lru, 0.0},
    };
    return buildSweepJobs(schemes, {a, b}, 3);
}

/** Byte-level equality: distinguishes -0.0/0.0 and any ULP drift. */
void
expectBitIdentical(double x, double y, const char *what, std::size_t i)
{
    std::uint64_t bx, by;
    std::memcpy(&bx, &x, sizeof(bx));
    std::memcpy(&by, &y, sizeof(by));
    EXPECT_EQ(bx, by) << what << " differs at job " << i << ": " << x
                      << " vs " << y;
}

void
expectSameResults(const std::vector<MixRunResult> &a,
                  const std::vector<MixRunResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i++) {
        expectBitIdentical(a[i].lcTailMean, b[i].lcTailMean,
                           "lcTailMean", i);
        expectBitIdentical(a[i].tailDegradation, b[i].tailDegradation,
                           "tailDegradation", i);
        expectBitIdentical(a[i].meanDegradation, b[i].meanDegradation,
                           "meanDegradation", i);
        expectBitIdentical(a[i].weightedSpeedup, b[i].weightedSpeedup,
                           "weightedSpeedup", i);
        ASSERT_EQ(a[i].batchSpeedups.size(), b[i].batchSpeedups.size());
        for (std::size_t k = 0; k < a[i].batchSpeedups.size(); k++)
            expectBitIdentical(a[i].batchSpeedups[k],
                               b[i].batchSpeedups[k], "batchSpeedup",
                               i);
        EXPECT_EQ(a[i].ubikDeboosts, b[i].ubikDeboosts);
        EXPECT_EQ(a[i].ubikDeadlineDeboosts, b[i].ubikDeadlineDeboosts);
        EXPECT_EQ(a[i].ubikWatermarks, b[i].ubikWatermarks);
    }
}

TEST(ParallelDeterminism, SameResultsWithOneAndFourWorkers)
{
    std::vector<SweepJob> jobs = twelveJobs();
    ASSERT_EQ(jobs.size(), 12u);

    // UBIK_JOBS=1: the legacy sequential path on the calling thread.
    setenv("UBIK_JOBS", "1", 1);
    ExperimentConfig cfg1 = ExperimentConfig::fromEnv();
    cfg1.scale = fastCfg().scale;
    cfg1.roiRequests = fastCfg().roiRequests;
    cfg1.warmupRequests = fastCfg().warmupRequests;
    MixRunner seqRunner(fastCfg());
    ParallelSweep seq(seqRunner, cfg1.jobs);
    ASSERT_EQ(seq.workers(), 1u);
    std::vector<MixRunResult> seqResults = seq.run(jobs);

    // UBIK_JOBS=4: four workers on (possibly fewer) cores.
    setenv("UBIK_JOBS", "4", 1);
    ExperimentConfig cfg4 = ExperimentConfig::fromEnv();
    MixRunner parRunner(fastCfg());
    ParallelSweep par(parRunner, cfg4.jobs);
    ASSERT_EQ(par.workers(), 4u);
    std::vector<MixRunResult> parResults = par.run(jobs);
    unsetenv("UBIK_JOBS");

    expectSameResults(seqResults, parResults);
}

TEST(ParallelDeterminism, EngineMatchesLegacySequentialLoop)
{
    std::vector<SweepJob> jobs = twelveJobs();

    // The pre-engine code path: one runner, runMix in job order.
    MixRunner legacy(fastCfg());
    std::vector<MixRunResult> expected;
    for (const auto &job : jobs)
        expected.push_back(legacy.runMix(job.mix, job.sut, job.seed));

    MixRunner runner(fastCfg());
    ParallelSweep engine(runner, 4);
    expectSameResults(expected, engine.run(jobs));
}

TEST(ParallelDeterminism, RepeatedEngineRunsAreStable)
{
    // Warm caches (second run) must not change any value.
    std::vector<SweepJob> jobs = twelveJobs();
    MixRunner runner(fastCfg());
    ParallelSweep engine(runner, 4);
    std::vector<MixRunResult> first = engine.run(jobs);
    std::vector<MixRunResult> second = engine.run(jobs);
    expectSameResults(first, second);
}

TEST(JobPool, NoJobDroppedOrDuplicatedUnderOversubscription)
{
    // Far more jobs than workers: every index must run exactly once.
    const std::size_t n = 10000;
    JobPool pool(3);
    EXPECT_EQ(pool.workers(), 3u);
    std::vector<std::atomic<int>> counts(n);
    for (auto &c : counts)
        c.store(0);
    pool.run(n, [&](std::size_t i) {
        counts[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; i++)
        ASSERT_EQ(counts[i].load(), 1) << "job " << i;
}

TEST(JobPool, MoreWorkersThanJobs)
{
    JobPool pool(8);
    std::vector<std::atomic<int>> counts(3);
    for (auto &c : counts)
        c.store(0);
    pool.run(3, [&](std::size_t i) { counts[i].fetch_add(1); });
    for (std::size_t i = 0; i < 3; i++)
        EXPECT_EQ(counts[i].load(), 1);
}

TEST(JobPool, BackToBackBatchesOnOnePool)
{
    // Reusing a pool across batches must not leak claims between
    // them (a straggler from batch k stealing batch k+1's index 0).
    JobPool pool(4);
    for (int batch = 0; batch < 50; batch++) {
        const std::size_t n = 17;
        std::vector<std::atomic<int>> counts(n);
        for (auto &c : counts)
            c.store(0);
        pool.run(n, [&](std::size_t i) { counts[i].fetch_add(1); });
        for (std::size_t i = 0; i < n; i++)
            ASSERT_EQ(counts[i].load(), 1)
                << "batch " << batch << " job " << i;
    }
}

TEST(JobPool, PropagatesJobExceptionAndSurvives)
{
    JobPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.run(20,
                          [&](std::size_t i) {
                              ran.fetch_add(1);
                              if (i == 5)
                                  throw std::runtime_error("job 5");
                          }),
                 std::runtime_error);
    EXPECT_EQ(ran.load(), 20); // remaining jobs still ran
    // The pool is reusable after an exception.
    std::atomic<int> again{0};
    pool.run(7, [&](std::size_t) { again.fetch_add(1); });
    EXPECT_EQ(again.load(), 7);
}

TEST(JobPool, SequentialPoolKeepsExceptionContract)
{
    // Same contract as the threaded path: remaining jobs still run,
    // first error rethrown after the batch drains.
    JobPool pool(1);
    std::vector<int> ran(10, 0);
    EXPECT_THROW(pool.run(10,
                          [&](std::size_t i) {
                              ran[i]++;
                              if (i == 2)
                                  throw std::runtime_error("job 2");
                          }),
                 std::runtime_error);
    for (std::size_t i = 0; i < 10; i++)
        EXPECT_EQ(ran[i], 1) << "job " << i;
}

TEST(JobPool, SequentialPoolRunsInOrder)
{
    JobPool pool(1);
    std::vector<std::size_t> order;
    pool.run(10, [&](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 10u);
    for (std::size_t i = 0; i < 10; i++)
        EXPECT_EQ(order[i], i);
}

TEST(JobPool, ResolveWorkersPrecedence)
{
    setenv("UBIK_JOBS", "3", 1);
    EXPECT_EQ(JobPool::resolveWorkers(0), 3u);
    EXPECT_EQ(JobPool::resolveWorkers(5), 5u); // explicit beats env
    unsetenv("UBIK_JOBS");
    unsigned hw = std::thread::hardware_concurrency();
    EXPECT_EQ(JobPool::resolveWorkers(0), hw > 0 ? hw : 1u);
}

} // namespace
} // namespace ubik
