/**
 * @file
 * Tests for the declarative scenario API: lossless JSON round-trips
 * for every registered built-in spec, strict spec parsing (unknown
 * keys and bad values die loudly), override semantics and
 * precedence, mix expansion against the legacy constructors, and
 * kind-name round-trips through the shared maps.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/kind_names.h"
#include "sim/scenario.h"

namespace ubik {
namespace {

ExperimentConfig
tinyCfg()
{
    ExperimentConfig cfg;
    cfg.scale = 16.0;
    cfg.roiRequests = 10;
    cfg.warmupRequests = 2;
    cfg.seeds = 2;
    cfg.mixesPerLc = 2;
    cfg.jobs = 1;
    return cfg;
}

TEST(ScenarioRegistry, NamesAreUniqueAndFindable)
{
    const auto &all = ScenarioRegistry::instance().all();
    ASSERT_GE(all.size(), 11u);
    std::set<std::string> names;
    for (const auto &s : all) {
        EXPECT_TRUE(names.insert(s.name).second)
            << "duplicate scenario name " << s.name;
        EXPECT_FALSE(s.schemes.empty()) << s.name;
        EXPECT_FALSE(s.reports.empty()) << s.name;
        EXPECT_EQ(ScenarioRegistry::instance().find(s.name), &s);
    }
    EXPECT_EQ(ScenarioRegistry::instance().find("nope"), nullptr);
}

TEST(ScenarioJson, EveryBuiltinRoundTripsLosslessly)
{
    for (const auto &s : ScenarioRegistry::instance().all()) {
        Json j1 = scenarioToJson(s);
        ScenarioSpec back = scenarioFromJson(j1);
        Json j2 = scenarioToJson(back);
        EXPECT_EQ(j1, j2) << "spec " << s.name
                          << " did not round-trip";
        // Canonical: the serialized form is a fixed point.
        EXPECT_EQ(scenarioCanonicalJson(s),
                  scenarioCanonicalJson(back))
            << "spec " << s.name;
    }
}

TEST(ScenarioJson, RoundTripSurvivesTextSerialization)
{
    // Through actual bytes, not just the Json tree — what a spec
    // file on disk sees, exercising double formatting end to end.
    for (const auto &s : ScenarioRegistry::instance().all()) {
        std::string text = scenarioCanonicalJson(s);
        Json parsed = Json::parseOrDie(text, "round-trip");
        EXPECT_EQ(scenarioToJson(scenarioFromJson(parsed)), parsed)
            << "spec " << s.name;
    }
}

TEST(ScenarioJson, DefaultsFillMissingFields)
{
    ScenarioSpec s = scenarioFromJson(Json::parseOrDie(
        "{\"name\": \"mini\", \"schemes\": [{\"label\": \"X\"}]}",
        "test"));
    EXPECT_EQ(s.name, "mini");
    EXPECT_EQ(s.title, "mini"); // title defaults to the name
    EXPECT_EQ(s.source, MixSource::Standard);
    EXPECT_EQ(s.band, LoadBand::All);
    EXPECT_TRUE(s.ooo);
    EXPECT_EQ(s.seeds, 0u);
    ASSERT_EQ(s.schemes.size(), 1u);
    // Scheme fields default like a default-constructed SUT.
    SchemeUnderTest dflt;
    EXPECT_EQ(s.schemes[0].policy, dflt.policy);
    EXPECT_EQ(s.schemes[0].array, dflt.array);
    EXPECT_DOUBLE_EQ(s.schemes[0].slack, dflt.slack);
    EXPECT_EQ(s.schemes[0].ubik.idleOptions, dflt.ubik.idleOptions);
}

TEST(ScenarioJsonDeath, UnknownKeysAndBadValuesAreFatal)
{
    EXPECT_EXIT(scenarioFromJson(Json::parseOrDie(
                    "{\"name\": \"x\", \"sedes\": 3}", "t")),
                ::testing::ExitedWithCode(1), "unknown key");
    EXPECT_EXIT(scenarioFromJson(Json::parseOrDie(
                    "{\"name\": \"x\", \"schemes\": "
                    "[{\"label\": \"a\", \"policy\": \"Ubbik\"}]}",
                    "t")),
                ::testing::ExitedWithCode(1), "unknown policy");
    EXPECT_EXIT(scenarioFromJson(Json::parseOrDie(
                    "{\"name\": \"x\", \"load\": \"medium\"}", "t")),
                ::testing::ExitedWithCode(1), "bad load band");
    EXPECT_EXIT(scenarioFromJson(Json::parseOrDie(
                    "{\"name\": \"x\", \"seeds\": -1}", "t")),
                ::testing::ExitedWithCode(1), "non-negative");
    EXPECT_EXIT(scenarioFromJson(Json::parseOrDie(
                    "{\"schemes\": []}", "t")),
                ::testing::ExitedWithCode(1), "required");
    // Ill-typed field: caught by the Json accessor.
    EXPECT_EXIT(scenarioFromJson(Json::parseOrDie(
                    "{\"name\": \"x\", \"ooo\": \"yes\"}", "t")),
                ::testing::ExitedWithCode(1), "expected bool");
}

TEST(ScenarioOverrides, ApplyAndLaterWins)
{
    ScenarioSpec s = *ScenarioRegistry::instance().find("fig9");
    ASSERT_EQ(s.seeds, 0u);

    // Spec value < first --set < later --set.
    applyScenarioOverrides(
        s, {"seeds=3", "mixes=2", "seeds=5", "load=low", "ooo=0"});
    EXPECT_EQ(s.seeds, 5u);
    EXPECT_EQ(s.mixesPerLcCap, 2u);
    EXPECT_EQ(s.band, LoadBand::Low);
    EXPECT_FALSE(s.ooo);

    // Scheme label filter keeps spec order and drops the rest.
    applyScenarioOverride(s, "schemes=Ubik,LRU");
    ASSERT_EQ(s.schemes.size(), 2u);
    EXPECT_EQ(s.schemes[0].label, "LRU"); // spec order, not ask order
    EXPECT_EQ(s.schemes[1].label, "Ubik");

    // The seeds override beats UBIK_SEEDS-derived config.
    ExperimentConfig cfg = tinyCfg();
    EXPECT_EQ(scenarioConfig(s, cfg).seeds, 5u);
}

TEST(ScenarioOverridesDeath, BadKeysAndValuesAreFatal)
{
    ScenarioSpec s = *ScenarioRegistry::instance().find("fig9");
    EXPECT_EXIT(applyScenarioOverride(s, "bogus=1"),
                ::testing::ExitedWithCode(1), "unknown key");
    EXPECT_EXIT(applyScenarioOverride(s, "seeds=abc"),
                ::testing::ExitedWithCode(1), "not a non-negative");
    EXPECT_EXIT(applyScenarioOverride(s, "no-equals"),
                ::testing::ExitedWithCode(1), "key=value");
    EXPECT_EXIT(applyScenarioOverride(s, "schemes=NoSuchLabel"),
                ::testing::ExitedWithCode(1), "no scheme labeled");
}

TEST(ScenarioOverridesDeath, DegenerateSchemesFiltersAreFatal)
{
    // "--set schemes=" used to silently empty the scheme table and
    // run a zero-scheme sweep that "passed" with no output.
    ScenarioSpec s = *ScenarioRegistry::instance().find("fig9");
    EXPECT_EXIT(applyScenarioOverride(s, "schemes="),
                ::testing::ExitedWithCode(1),
                "no schemes to run");
    EXPECT_EXIT(applyScenarioOverride(s, "schemes=,,"),
                ::testing::ExitedWithCode(1),
                "no schemes to run");
    // A duplicate label is a typo for a different label, not a way
    // to run a scheme twice.
    EXPECT_EXIT(applyScenarioOverride(s, "schemes=Ubik,Ubik"),
                ::testing::ExitedWithCode(1), "listed twice");
}

TEST(ScenarioOverrides, ProfileOverrideSetsKindWithDefaults)
{
    ScenarioSpec s = *ScenarioRegistry::instance().find("fig9");
    ASSERT_TRUE(s.profile.isConstant());

    applyScenarioOverride(s, "profile=flash-crowd");
    EXPECT_EQ(s.profile.kind, LoadProfileKind::FlashCrowd);
    LoadProfile dflt;
    dflt.kind = LoadProfileKind::FlashCrowd;
    EXPECT_EQ(s.profile, dflt); // default window parameters

    // Later wins, and constant turns dynamics back off.
    applyScenarioOverride(s, "profile=constant");
    EXPECT_TRUE(s.profile.isConstant());

    EXPECT_EXIT(applyScenarioOverride(s, "profile=tsunami"),
                ::testing::ExitedWithCode(1), "profile");
}

TEST(ScenarioJson, LoadProfileRoundTripsAndStampsMixes)
{
    // The registered dynamic scenarios carry non-constant profiles;
    // those must survive the JSON round-trip and land on every
    // expanded mix's LC config (the result-cache key path).
    ExperimentConfig cfg = tinyCfg();
    for (const char *name :
         {"flash-crowd", "diurnal", "bursts", "churn"}) {
        const ScenarioSpec *s = ScenarioRegistry::instance().find(name);
        ASSERT_NE(s, nullptr) << name;
        EXPECT_FALSE(s->profile.isConstant()) << name;

        ScenarioSpec back = scenarioFromJson(scenarioToJson(*s));
        EXPECT_EQ(back.profile, s->profile) << name;
        EXPECT_EQ(back.profile.canonical(), s->profile.canonical());

        for (const MixSpec &m : buildScenarioMixes(*s, cfg))
            EXPECT_EQ(m.lc.profile, s->profile) << name;
    }
    // Constant scenarios omit the block entirely (schema stability:
    // old spec files keep parsing byte-identically).
    const ScenarioSpec *fig9 = ScenarioRegistry::instance().find("fig9");
    EXPECT_EQ(scenarioToJson(*fig9).find("load_profile"), nullptr);
}

TEST(ScenarioJsonDeath, BadLoadProfileBlocksAreFatal)
{
    EXPECT_EXIT(scenarioFromJson(Json::parseOrDie(
                    "{\"name\": \"x\", \"schemes\": [{\"label\": "
                    "\"a\"}], \"load_profile\": {\"kind\": "
                    "\"tsunami\"}}",
                    "t")),
                ::testing::ExitedWithCode(1), "unknown kind");
    EXPECT_EXIT(scenarioFromJson(Json::parseOrDie(
                    "{\"name\": \"x\", \"schemes\": [{\"label\": "
                    "\"a\"}], \"load_profile\": {\"kind\": "
                    "\"flash-crowd\", \"multiplier\": 0.5}}",
                    "t")),
                ::testing::ExitedWithCode(1), "multiplier");
    EXPECT_EXIT(scenarioFromJson(Json::parseOrDie(
                    "{\"name\": \"x\", \"schemes\": [{\"label\": "
                    "\"a\"}], \"load_profile\": {\"kind\": "
                    "\"diurnal\", \"bursty\": 1}}",
                    "t")),
                ::testing::ExitedWithCode(1), "unknown key");
}

TEST(ScenarioMixes, StandardSourceMatchesLegacyConstructors)
{
    ExperimentConfig cfg = tinyCfg();
    const ScenarioSpec &fig9 =
        *ScenarioRegistry::instance().find("fig9");
    std::vector<MixSpec> got = buildScenarioMixes(fig9, cfg);
    std::vector<MixSpec> want =
        buildMixes(2, /*seed=*/1, cfg.mixesPerLc);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); i++) {
        EXPECT_EQ(got[i].name, want[i].name);
        EXPECT_DOUBLE_EQ(got[i].lc.load, want[i].lc.load);
        EXPECT_EQ(got[i].batch.name, want[i].batch.name);
    }

    // The per-LC cap composes with UBIK_MIXES as min(), like the
    // legacy benches' min(cfg.mixesPerLc, N).
    ScenarioSpec capped = fig9;
    capped.mixesPerLcCap = 1;
    EXPECT_EQ(buildScenarioMixes(capped, cfg).size(),
              buildMixes(2, 1, 1).size());
    capped.mixesPerLcCap = 99; // larger than UBIK_MIXES: no effect
    EXPECT_EQ(buildScenarioMixes(capped, cfg).size(), got.size());
}

TEST(ScenarioMixesDeath, PerLcCapRejectedForNonStandardSources)
{
    // A capped cache-hungry/explicit scenario would silently run the
    // full sweep; it must die instead.
    ExperimentConfig cfg = tinyCfg();
    ScenarioSpec s =
        *ScenarioRegistry::instance().find("ablation-deboost");
    applyScenarioOverride(s, "mixes=1");
    EXPECT_EXIT(buildScenarioMixes(s, cfg),
                ::testing::ExitedWithCode(1),
                "mixes_per_lc only applies");
}

TEST(ScenarioMixesDeath, ListedMixesRejectedForNonExplicitSources)
{
    // The classic forgotten "source": "explicit" — hand-listed mixes
    // must not silently give way to the standard matrix.
    ExperimentConfig cfg = tinyCfg();
    ScenarioSpec s =
        *ScenarioRegistry::instance().find("ablation-bandwidth");
    applyScenarioOverride(s, "source=standard");
    EXPECT_EXIT(buildScenarioMixes(s, cfg),
                ::testing::ExitedWithCode(1),
                "set .source.. .explicit. to run them");
}

TEST(ScenarioMixes, ExplicitBandFilterSkipsExcludedMixes)
{
    ExperimentConfig cfg = tinyCfg();
    ScenarioSpec s =
        *ScenarioRegistry::instance().find("ablation-bandwidth");
    s.band = LoadBand::High;
    std::vector<MixSpec> mixes = buildScenarioMixes(s, cfg);
    ASSERT_EQ(mixes.size(), 6u); // half of the 12 explicit mixes
    for (const MixSpec &m : mixes)
        EXPECT_FALSE(isLowLoad(m.lc.load)) << m.name;
}

TEST(ScenarioMixes, BandFilterUsesStructuredLoadMetadata)
{
    ExperimentConfig cfg = tinyCfg();
    ScenarioSpec s = *ScenarioRegistry::instance().find("fig9");
    s.band = LoadBand::Low;
    for (const MixSpec &m : buildScenarioMixes(s, cfg)) {
        EXPECT_TRUE(isLowLoad(m.lc.load)) << m.name;
        EXPECT_NE(m.name.find("-lo/"), std::string::npos) << m.name;
    }
    s.band = LoadBand::High;
    for (const MixSpec &m : buildScenarioMixes(s, cfg))
        EXPECT_FALSE(isLowLoad(m.lc.load)) << m.name;
}

TEST(ScenarioMixes, ExplicitMixesExpandThroughPresets)
{
    ExperimentConfig cfg = tinyCfg();
    const ScenarioSpec &bw =
        *ScenarioRegistry::instance().find("ablation-bandwidth");
    std::vector<MixSpec> mixes = buildScenarioMixes(bw, cfg);
    ASSERT_EQ(mixes.size(), 12u);
    // First mix: moses at 20% load, three streaming apps — exactly
    // what the legacy ablation_bandwidth loops built.
    EXPECT_EQ(mixes[0].name, "moses-lo/sss-0");
    EXPECT_EQ(mixes[0].lc.app.name, lc_presets::moses().name);
    EXPECT_DOUBLE_EQ(mixes[0].lc.load, 0.2);
    EXPECT_EQ(mixes[0].batch.name, "sss-0");
    for (int i = 0; i < 3; i++)
        EXPECT_EQ(mixes[0].batch.apps[static_cast<size_t>(i)].cls,
                  BatchClass::Streaming);
    EXPECT_EQ(
        mixes[0].batch.apps[1].name,
        batch_presets::make(BatchClass::Streaming, 1).name);
    // Second mix swaps the third app for friendly.
    EXPECT_EQ(mixes[1].name, "moses-lo/ssf-0");
    EXPECT_EQ(mixes[1].batch.apps[2].cls, BatchClass::Friendly);
}

TEST(ScenarioKindNames, RoundTripThroughSharedMaps)
{
    for (PolicyKind k :
         {PolicyKind::Lru, PolicyKind::Ucp, PolicyKind::StaticLc,
          PolicyKind::OnOff, PolicyKind::Ubik, PolicyKind::Feedback})
        EXPECT_EQ(policyKindFromName(policyKindName(k)), k);
    for (ArrayKind k :
         {ArrayKind::Z4_52, ArrayKind::SA16, ArrayKind::SA64})
        EXPECT_EQ(arrayKindFromName(arrayKindName(k)), k);
    EXPECT_EQ(arrayKindFromName("zcache"), ArrayKind::Z4_52);
    for (SchemeKind k : {SchemeKind::SharedLru, SchemeKind::Vantage,
                         SchemeKind::WayPart})
        EXPECT_EQ(schemeKindFromName(schemeKindName(k)), k);
    EXPECT_EQ(schemeKindFromNameOrAuto("auto", PolicyKind::Lru),
              SchemeKind::SharedLru);
    EXPECT_EQ(schemeKindFromNameOrAuto("auto", PolicyKind::Ubik),
              SchemeKind::Vantage);
    for (MemKind k : {MemKind::Fixed, MemKind::Contended,
                      MemKind::Partitioned})
        EXPECT_EQ(memKindFromName(memKindName(k)), k);

    PolicyKind p;
    EXPECT_FALSE(tryPolicyKindFromName("nope", p));
    BatchClass c;
    EXPECT_TRUE(tryBatchClassFromCode('t', c));
    EXPECT_EQ(c, BatchClass::Fitting);
    EXPECT_FALSE(tryBatchClassFromCode('x', c));
}

TEST(ScenarioKindNamesDeath, UnknownNamesAreFatal)
{
    EXPECT_EXIT(policyKindFromName("Ubikk"),
                ::testing::ExitedWithCode(1), "unknown policy");
    EXPECT_EXIT(arrayKindFromName("Z8"),
                ::testing::ExitedWithCode(1), "unknown array");
    EXPECT_EXIT(memKindFromName("infinite"),
                ::testing::ExitedWithCode(1), "unknown memory model");
}

} // namespace
} // namespace ubik
