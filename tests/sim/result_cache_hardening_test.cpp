/**
 * @file
 * Hardening tests for the persistent result cache: truncated or
 * garbage shard files must read as misses (never poisoned results or
 * crashes) and be rewritten by the next store; stale-schema records
 * must be evicted; and concurrent writers into the same shard must
 * serialize into a parseable file.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "sim/result_cache.h"
#include "support/cache_test_util.h"

namespace ubik {
namespace {

using test::TempCacheDir;
using test::expectBitIdentical;

MixRunResult
sampleResult(double salt)
{
    MixRunResult r;
    r.lcTailMean = 1000.0 + salt;
    r.tailDegradation = 1.0 + salt / 7.0;
    r.meanDegradation = 1.0 + salt / 11.0;
    r.weightedSpeedup = 1.0 + salt / 13.0;
    r.batchSpeedups = {salt, salt * 2, salt * 3};
    r.ubikDeboosts = static_cast<std::uint64_t>(salt * 17);
    return r;
}

/** The single shard file under `dir` (fails the test if != 1). */
std::string
onlyShardFile(const std::string &dir)
{
    std::vector<std::string> files;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        files.push_back(e.path().string());
    EXPECT_EQ(files.size(), 1u);
    return files.empty() ? std::string() : files.front();
}

TEST(ResultCacheHardening, TruncatedShardIsAMissAndGetsRewritten)
{
    TempCacheDir dir("truncate");
    const std::string key = "v1|hardening|truncate";
    const MixRunResult r = sampleResult(3.5);
    {
        ResultCache cache(dir.path());
        cache.storeMix(key, r);
    }

    // Chop the record's tail off, as a crashed or racing writer would.
    std::string shard = onlyShardFile(dir.path());
    ASSERT_FALSE(shard.empty());
    auto size = std::filesystem::file_size(shard);
    std::filesystem::resize_file(shard, size / 2);

    {
        ResultCache cache(dir.path());
        EXPECT_FALSE(cache.loadMix(key).has_value());
        EXPECT_GE(cache.stats().corrupt, 1u);
        // The next store repairs the entry...
        cache.storeMix(key, r);
        ASSERT_TRUE(cache.loadMix(key).has_value());
    }
    // ...durably: a fresh instance reads it back bit-exactly.
    ResultCache cache(dir.path());
    auto loaded = cache.loadMix(key);
    ASSERT_TRUE(loaded.has_value());
    expectBitIdentical(loaded->lcTailMean, r.lcTailMean, "lcTailMean",
                       0);
    EXPECT_EQ(loaded->batchSpeedups.size(), 3u);
}

TEST(ResultCacheHardening, GarbageLinesAreSkippedValidOnesKept)
{
    TempCacheDir dir("garbage");
    const std::string key = "v1|hardening|garbage";
    {
        ResultCache cache(dir.path());
        cache.storeMix(key, sampleResult(1.25));
    }
    std::string shard = onlyShardFile(dir.path());
    ASSERT_FALSE(shard.empty());
    {
        // Garbage before and after: random bytes, a wrong-checksum
        // record, and a half-record with no newline.
        std::ofstream out(shard, std::ios::app | std::ios::binary);
        out << "not a record at all\n";
        out << "U1 1 m v1%7Cfake 0123456789abcdef,2,"
               "0000000000000000,0000000000000000,0000000000000000,"
               "0000000000000000,0000000000000000,0000000000000000 "
               "ffffffffffffffff\n";
        out << "U1 1 m v1%7Ctorn 00112233";
    }
    ResultCache cache(dir.path());
    auto loaded = cache.loadMix(key);
    ASSERT_TRUE(loaded.has_value()); // the good record survives
    expectBitIdentical(loaded->tailDegradation,
                       sampleResult(1.25).tailDegradation,
                       "tailDegradation", 0);
    EXPECT_GE(cache.stats().corrupt, 3u);
    EXPECT_FALSE(cache.loadMix("v1|fake").has_value());
}

TEST(ResultCacheHardening, SchemaV1RecordsFromPriorReleasesAreEvicted)
{
    // PR 2 shipped schema v1; this tree is v2 (trace-backed mixes
    // changed replay semantics and added trace hashes to keys). A
    // cache dir populated by the old binary must be evicted wholesale
    // — stale counts, nothing served, nothing read as corrupt.
    ASSERT_GE(kResultCacheSchemaVersion, 2u);
    TempCacheDir dir("schema_v1");
    const std::string key = "v1|hardening|oldschema";
    {
        ResultCache cache(dir.path());
        cache.storeMix(key, sampleResult(4.25));
    }
    std::string shard = onlyShardFile(dir.path());
    ASSERT_FALSE(shard.empty());
    std::string content;
    {
        std::ifstream in(shard, std::ios::binary);
        content.assign(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
    }
    const std::string cur =
        "U1 " + std::to_string(kResultCacheSchemaVersion) + " ";
    auto pos = content.find(cur);
    ASSERT_NE(pos, std::string::npos);
    content.replace(pos, cur.size(), "U1 1 ");
    {
        std::ofstream out(shard, std::ios::trunc | std::ios::binary);
        out << content;
    }

    ResultCache cache(dir.path());
    EXPECT_FALSE(cache.loadMix(key).has_value());
    CacheStats st = cache.stats();
    EXPECT_EQ(st.evicted, 1u);
    EXPECT_EQ(st.corrupt, 0u);

    // A store under the current schema repairs the entry.
    cache.storeMix(key, sampleResult(4.25));
    EXPECT_TRUE(cache.loadMix(key).has_value());
}

TEST(ResultCacheHardening, StaleSchemaRecordsAreEvictedNotServed)
{
    TempCacheDir dir("schema");
    const std::string key = "v1|hardening|schema";
    {
        ResultCache cache(dir.path());
        cache.storeMix(key, sampleResult(2.0));
    }
    // Rewrite the record's schema field to a version that never
    // existed; the checksum intentionally covers only kind/key/payload
    // so this reads as stale, not corrupt.
    std::string shard = onlyShardFile(dir.path());
    ASSERT_FALSE(shard.empty());
    std::string content;
    {
        std::ifstream in(shard, std::ios::binary);
        content.assign(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
    }
    const std::string cur =
        "U1 " + std::to_string(kResultCacheSchemaVersion) + " ";
    auto pos = content.find(cur);
    ASSERT_NE(pos, std::string::npos);
    content.replace(pos, cur.size(), "U1 999 ");
    {
        std::ofstream out(shard, std::ios::trunc | std::ios::binary);
        out << content;
    }

    ResultCache cache(dir.path());
    EXPECT_FALSE(cache.loadMix(key).has_value());
    CacheStats st = cache.stats();
    EXPECT_EQ(st.evicted, 1u);
    EXPECT_EQ(st.corrupt, 0u);
}

TEST(ResultCacheHardening, ConcurrentStoresIntoOneShardSerialize)
{
    // Collect keys that all land in the same shard, then hammer that
    // shard from four threads; every record must survive, parseable
    // and bit-exact, in a fresh instance.
    const std::size_t perThread = 10, threads = 4;
    std::vector<std::string> keys;
    std::size_t target = ResultCache::shardOf("v1|conc|0");
    for (std::size_t i = 0; keys.size() < perThread * threads; i++) {
        std::string k = "v1|conc|" + std::to_string(i);
        if (ResultCache::shardOf(k) == target)
            keys.push_back(k);
    }

    TempCacheDir dir("concurrent");
    {
        ResultCache cache(dir.path());
        std::vector<std::thread> pool;
        for (std::size_t t = 0; t < threads; t++)
            pool.emplace_back([&, t] {
                for (std::size_t i = 0; i < perThread; i++) {
                    std::size_t k = t * perThread + i;
                    cache.storeMix(keys[k],
                                   sampleResult(static_cast<double>(k)));
                }
            });
        for (auto &th : pool)
            th.join();
        EXPECT_EQ(cache.stats().stores, perThread * threads);
    }

    ResultCache cache(dir.path());
    for (std::size_t k = 0; k < keys.size(); k++) {
        auto loaded = cache.loadMix(keys[k]);
        ASSERT_TRUE(loaded.has_value()) << keys[k];
        expectBitIdentical(loaded->weightedSpeedup,
                           sampleResult(static_cast<double>(k))
                               .weightedSpeedup,
                           "weightedSpeedup", k);
    }
    EXPECT_EQ(cache.stats().corrupt, 0u);
}

TEST(ResultCacheHardening, ConcurrentSameKeyStoresStayConsistent)
{
    // All threads race to store the identical deterministic value
    // under one key (what racing sweep processes do): the entry must
    // stay unique in memory and clean on disk.
    TempCacheDir dir("samekey");
    const std::string key = "v1|hardening|samekey";
    const MixRunResult r = sampleResult(9.75);
    {
        ResultCache cache(dir.path());
        std::vector<std::thread> pool;
        for (int t = 0; t < 8; t++)
            pool.emplace_back([&] { cache.storeMix(key, r); });
        for (auto &th : pool)
            th.join();
    }
    ResultCache cache(dir.path());
    auto loaded = cache.loadMix(key);
    ASSERT_TRUE(loaded.has_value());
    expectBitIdentical(loaded->lcTailMean, r.lcTailMean, "lcTailMean",
                       0);
    EXPECT_EQ(cache.stats().corrupt, 0u);
}

/** Arm a failpoint schedule for one scope, disarm on exit. */
struct FailpointGuard
{
    explicit FailpointGuard(const std::string &sched)
    {
        failpointConfigure(sched);
    }
    ~FailpointGuard() { failpointReset(); }
};

TEST(ResultCacheHardening, TornAppendAtEveryByteBoundaryRepairs)
{
    // Crash-consistency matrix: cut an append at every byte boundary
    // (via the cache.append torn failpoint, which writes K bytes and
    // then "crashes") and prove that (a) the earlier record is never
    // lost, (b) the torn record reads as a miss, and (c) the next
    // store repairs the shard.
    const std::string keyA = "v1|hardening|torn|survivor";
    const MixRunResult ra = sampleResult(6.5);
    const MixRunResult rb = sampleResult(8.5);
    // The victim must share the survivor's shard so the cut tears the
    // same file the survivor lives in.
    std::string keyB;
    for (int i = 0; keyB.empty(); i++) {
        std::string k = "v1|hardening|torn|victim" + std::to_string(i);
        if (ResultCache::shardOf(k) == ResultCache::shardOf(keyA))
            keyB = k;
    }

    // Learn the victim record's on-disk length from a clean store.
    std::uintmax_t lineLen;
    {
        TempCacheDir scratch("torn_len");
        ResultCache cache(scratch.path());
        cache.storeMix(keyB, rb);
        lineLen = std::filesystem::file_size(
            onlyShardFile(scratch.path()));
    }
    ASSERT_GT(lineLen, 0u);

    for (std::uintmax_t cut = 0; cut < lineLen; cut++) {
        SCOPED_TRACE("append cut at byte " + std::to_string(cut) +
                     " of " + std::to_string(lineLen));
        TempCacheDir dir("torn_matrix");
        {
            ResultCache cache(dir.path());
            cache.storeMix(keyA, ra);
            FailpointGuard fp("cache.append=torn:" +
                              std::to_string(cut) + "@1");
            cache.storeMix(keyB, rb);
            EXPECT_EQ(cache.stats().storesDropped, 1u);
        }
        {
            // A fresh reader: the survivor is always intact. The
            // victim reads as a miss — except at the last boundary,
            // where the cut removed only the trailing newline and the
            // checksum-complete record is legitimately recovered.
            ResultCache cache(dir.path());
            auto a = cache.loadMix(keyA);
            ASSERT_TRUE(a.has_value()) << "earlier record lost";
            expectBitIdentical(a->lcTailMean, ra.lcTailMean,
                               "lcTailMean", 0);
            bool newlineOnlyCut = cut + 1 == lineLen;
            EXPECT_EQ(cache.loadMix(keyB).has_value(),
                      newlineOnlyCut);
            // The re-store repairs the shard (newline-glue + fresh
            // record) without disturbing the survivor.
            cache.storeMix(keyB, rb);
            ASSERT_TRUE(cache.loadMix(keyB).has_value());
        }
        ResultCache cache(dir.path());
        auto a = cache.loadMix(keyA);
        auto b = cache.loadMix(keyB);
        ASSERT_TRUE(a.has_value());
        ASSERT_TRUE(b.has_value());
        expectBitIdentical(a->weightedSpeedup, ra.weightedSpeedup,
                           "weightedSpeedup", 0);
        expectBitIdentical(b->weightedSpeedup, rb.weightedSpeedup,
                           "weightedSpeedup", 1);
    }
}

TEST(ResultCacheHardening, ShortWritesAreRetriedToCompletion)
{
    // Every fwrite is clipped to 3 bytes: the append loop must land
    // the record via remainder retries, bit-exact and uncorrupted.
    TempCacheDir dir("short_write");
    const std::string key = "v1|hardening|shortwrite";
    const MixRunResult r = sampleResult(5.25);
    {
        ResultCache cache(dir.path());
        FailpointGuard fp("cache.append=short_write:3@1+");
        cache.storeMix(key, r);
        CacheStats st = cache.stats();
        EXPECT_GT(st.appendRetries, 0u);
        EXPECT_EQ(st.storesDropped, 0u);
    }
    ResultCache cache(dir.path());
    auto loaded = cache.loadMix(key);
    ASSERT_TRUE(loaded.has_value());
    expectBitIdentical(loaded->lcTailMean, r.lcTailMean, "lcTailMean",
                       0);
    EXPECT_EQ(cache.stats().corrupt, 0u);
}

TEST(ResultCacheHardening, PersistentAppendErrorKeepsServingInMemory)
{
    // Appends that keep failing degrade to uncached operation: the
    // store is counted dropped, the worker's own instance still
    // serves the value, and nothing corrupt lands on disk.
    TempCacheDir dir("append_err");
    const std::string key = "v1|hardening|appenderr";
    const MixRunResult r = sampleResult(7.75);
    {
        ResultCache cache(dir.path());
        FailpointGuard fp("cache.append=err:EIO@*");
        cache.storeMix(key, r);
        EXPECT_EQ(cache.stats().storesDropped, 1u);
        auto mine = cache.loadMix(key);
        ASSERT_TRUE(mine.has_value()); // in-memory copy survives
        expectBitIdentical(mine->lcTailMean, r.lcTailMean,
                           "lcTailMean", 0);
    }
    // The record never reached disk: a fresh instance misses cleanly.
    ResultCache cache(dir.path());
    EXPECT_FALSE(cache.loadMix(key).has_value());
    EXPECT_EQ(cache.stats().corrupt, 0u);
}

TEST(ResultCacheHardening, DurableFsyncFailureDegradesNotDies)
{
    TempCacheDir dir("fsync_err");
    const std::string key = "v1|hardening|fsyncerr";
    const MixRunResult r = sampleResult(2.25);
    {
        ResultCache cache(dir.path());
        cache.setDurable(true);
        FailpointGuard fp("cache.fsync=err:EIO@*");
        cache.storeMix(key, r);
        CacheStats st = cache.stats();
        EXPECT_EQ(st.fsyncDegraded, 1u);
        EXPECT_EQ(st.storesDropped, 0u);
    }
    // The record was still appended; only its crash-durability
    // guarantee was weakened.
    ResultCache cache(dir.path());
    ASSERT_TRUE(cache.loadMix(key).has_value());
}

} // namespace
} // namespace ubik
