/**
 * @file
 * Integration tests for the memory models inside the Cmp simulator:
 * the fixed model reproduces the paper's timing exactly, contention
 * degrades latency under memory-intensive colocations, and bandwidth
 * partitioning restores the latency-critical app's isolation.
 */

#include <gtest/gtest.h>

#include "sim/cmp.h"
#include "workload/batch_app.h"
#include "workload/lc_app.h"

namespace ubik {
namespace {

CmpConfig
baseCfg()
{
    CmpConfig cfg;
    cfg.llcLines = 24576;
    cfg.privateLinesPerCore = 4096;
    cfg.reconfigInterval = 2000000;
    cfg.policy = PolicyKind::StaticLc;
    return cfg;
}

LcAppSpec
lcSpec()
{
    LcAppSpec spec;
    spec.params = lc_presets::masstree().scaled(8.0);
    spec.meanInterarrival = 0; // closed loop: stable service times
    spec.roiRequests = 50;
    spec.warmupRequests = 10;
    spec.targetLines = 4096;
    spec.deadline = msToCycles(1.0);
    return spec;
}

std::vector<BatchAppSpec>
streamingBatch(int n)
{
    // Streaming apps miss constantly: the worst bandwidth hogs.
    std::vector<BatchAppSpec> batch;
    for (int i = 0; i < n; i++) {
        BatchAppSpec b;
        b.params = batch_presets::make(BatchClass::Streaming, static_cast<std::uint32_t>(i));
        b.params = b.params.scaled(8.0);
        batch.push_back(b);
    }
    return batch;
}

double
lcServiceMean(MemKind kind, std::vector<double> shares = {})
{
    CmpConfig cfg = baseCfg();
    cfg.mem = kind;
    cfg.memParams.channels = 1; // a scarce memory system
    cfg.memParams.channelOccupancy = 48;
    cfg.memShares = std::move(shares);
    Cmp cmp(cfg, {lcSpec()}, streamingBatch(2), 7);
    cmp.run();
    return cmp.lcResult(0).serviceTimes.mean();
}

TEST(MemoryIntegration, FixedModelMatchesDefaultTiming)
{
    // MemKind::Fixed must reproduce the original simulator exactly:
    // the model returns zero extra delay on every miss.
    CmpConfig a = baseCfg();
    CmpConfig b = baseCfg();
    b.mem = MemKind::Fixed;
    b.memParams.channels = 1;
    b.memParams.channelOccupancy = 999; // irrelevant for Fixed
    Cmp ca(a, {lcSpec()}, streamingBatch(2), 11);
    Cmp cb(b, {lcSpec()}, streamingBatch(2), 11);
    ca.run();
    cb.run();
    EXPECT_DOUBLE_EQ(ca.lcResult(0).serviceTimes.mean(),
                     cb.lcResult(0).serviceTimes.mean());
    EXPECT_EQ(ca.batchResult(0).roiInstructions,
              cb.batchResult(0).roiInstructions);
}

TEST(MemoryIntegration, ContentionDegradesLcService)
{
    double fixed = lcServiceMean(MemKind::Fixed);
    double contended = lcServiceMean(MemKind::Contended);
    // Streaming batch apps saturate the single channel; the LC app's
    // misses now queue, inflating its service time.
    EXPECT_GT(contended, fixed * 1.02);
}

TEST(MemoryIntegration, BandwidthPartitioningRestoresIsolation)
{
    double fixed = lcServiceMean(MemKind::Fixed);
    double contended = lcServiceMean(MemKind::Contended);
    // The LC app (core 0) gets strict priority (share <= 0 marks it
    // unregulated); the streaming hogs are regulated to a quarter of
    // the bandwidth each.
    double partitioned =
        lcServiceMean(MemKind::Partitioned, {0.0, 0.25, 0.25});
    EXPECT_LT(partitioned, contended);
    EXPECT_GT(partitioned, fixed * 0.99); // cannot beat no contention
}

TEST(MemoryIntegration, MemoryStatsExposedThroughCmp)
{
    CmpConfig cfg = baseCfg();
    cfg.mem = MemKind::Contended;
    cfg.memParams.channels = 2;
    Cmp cmp(cfg, {lcSpec()}, streamingBatch(2), 3);
    cmp.run();
    const MemorySystem &mem = cmp.memory();
    EXPECT_STREQ(mem.name(), "contended");
    EXPECT_GT(mem.requests(), 0u);
    EXPECT_GT(mem.utilization(cmp.now()), 0.0);
    // Streaming apps (cores 1, 2) dominate memory traffic.
    EXPECT_GT(mem.appStats(1).requests, mem.appStats(0).requests);
}

TEST(MemoryIntegration, ShareValidationIsFatal)
{
    CmpConfig cfg = baseCfg();
    cfg.mem = MemKind::Contended;
    cfg.memShares = {0.5, 0.5, 0.5};
    EXPECT_EXIT(Cmp(cfg, {lcSpec()}, streamingBatch(2), 1),
                testing::ExitedWithCode(1), "memShares");

    cfg.mem = MemKind::Partitioned;
    cfg.memShares = {0.5, 0.5}; // 3 cores, 2 entries
    EXPECT_EXIT(Cmp(cfg, {lcSpec()}, streamingBatch(2), 1),
                testing::ExitedWithCode(1), "memShares");
}

TEST(MemoryIntegration, DeterministicUnderContention)
{
    auto run = [] {
        CmpConfig cfg = baseCfg();
        cfg.mem = MemKind::Contended;
        cfg.memParams.channels = 1;
        Cmp cmp(cfg, {lcSpec()}, streamingBatch(2), 99);
        cmp.run();
        return cmp.lcResult(0).serviceTimes.mean();
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

} // namespace
} // namespace ubik
