/**
 * @file
 * Distributed sweep fabric, end to end in-process: two fleet-enabled
 * engines (independent MixRunner + ResultCache instances, as separate
 * processes would have) share one cache directory and must fill one
 * sweep matrix with zero duplicate mix computations, bit-identical to
 * the single-engine reference. Plus crash recovery: an orphaned
 * (expired) lease from a "killed" worker is broken and its job
 * completed.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "sim/claim_store.h"
#include "sim/parallel_sweep.h"
#include "sim/result_cache.h"
#include "support/cache_test_util.h"

using namespace ubik;
using namespace ubik::test;

namespace {

/** A reference sweep (no fleet, no cache) for bit-comparison. */
std::vector<MixRunResult>
referenceResults(const std::vector<SweepJob> &jobs)
{
    MixRunner runner(cacheTestCfg());
    ParallelSweep sweep(runner, 2);
    return sweep.run(jobs);
}

struct FleetRun
{
    std::vector<MixRunResult> results;
    SweepProgress last;
};

FleetRun
runFleetWorker(const std::string &cache_dir, const std::string &id,
               const std::vector<SweepJob> &jobs, double ttl_sec)
{
    MixRunner runner(cacheTestCfg());
    std::unique_ptr<ResultCache> cache = ResultCache::open(cache_dir);
    cache->setDurable(true);
    runner.attachCache(cache.get());
    ParallelSweep sweep(runner, 2);
    sweep.attachCache(cache.get());
    FleetOptions opt;
    opt.workerId = id;
    opt.leaseTtlSec = ttl_sec;
    sweep.enableFleet(opt);
    FleetRun out;
    out.results = sweep.run(
        jobs, [&](const SweepProgress &p) { out.last = p; });
    return out;
}

} // namespace

TEST(FleetExecutor, TwoWorkersSplitOneSweepWithoutDuplicates)
{
    std::vector<SweepJob> jobs = cacheTestJobs();
    std::vector<MixRunResult> ref = referenceResults(jobs);

    TempCacheDir dir("fleet_pair");
    FleetRun a, b;
    std::thread ta(
        [&] { a = runFleetWorker(dir.path(), "a", jobs, 60.0); });
    std::thread tb(
        [&] { b = runFleetWorker(dir.path(), "b", jobs, 60.0); });
    ta.join();
    tb.join();

    // Every result, from either worker, is bit-identical to the
    // single-engine run.
    expectSameResults(a.results, ref);
    expectSameResults(b.results, ref);

    // Each worker accounted for the full matrix...
    EXPECT_EQ(a.last.hits + a.last.computed + a.last.remote,
              jobs.size());
    EXPECT_EQ(b.last.hits + b.last.computed + b.last.remote,
              jobs.size());
    // ...and no mix was simulated twice: the claim protocol hands
    // each job to exactly one worker (cold cache, so hits are 0 and
    // computed splits the matrix exactly).
    EXPECT_EQ(a.last.hits, 0u);
    EXPECT_EQ(b.last.hits, 0u);
    EXPECT_EQ(a.last.computed + b.last.computed, jobs.size());

    // Steady state after a clean sweep: no claim records left behind.
    std::unique_ptr<ResultCache> cache = ResultCache::open(dir.path());
    EXPECT_EQ(cache->stats().claimsLive, 0u);

    // A third (late) worker finds everything published: all hits,
    // nothing computed.
    FleetRun c = runFleetWorker(dir.path(), "c", jobs, 60.0);
    expectSameResults(c.results, ref);
    EXPECT_EQ(c.last.hits, jobs.size());
    EXPECT_EQ(c.last.computed, 0u);
}

TEST(FleetExecutor, OrphanedLeaseFromDeadWorkerIsReclaimed)
{
    std::vector<SweepJob> jobs = cacheTestJobs();
    std::vector<MixRunResult> ref = referenceResults(jobs);

    TempCacheDir dir("fleet_orphan");
    // A "worker" that claimed a mix and died: its lease exists, is
    // past the TTL, and no result was published.
    MixRunner keyRunner(cacheTestCfg());
    std::string key =
        mixResultKey(keyRunner.config(), jobs[0].mix, jobs[0].sut,
                     jobs[0].seed, keyRunner.outOfOrder());
    ClaimStore dead(dir.path(), "dead", 2.0);
    ASSERT_TRUE(dead.tryAcquire(key));
    namespace fs = std::filesystem;
    fs::last_write_time(dead.leasePath(key),
                        fs::file_time_type::clock::now() -
                            std::chrono::minutes(5));

    // A live worker with the same TTL must break the orphan, claim
    // the job itself, and still produce the reference matrix.
    FleetRun r = runFleetWorker(dir.path(), "live", jobs, 2.0);
    expectSameResults(r.results, ref);
    EXPECT_EQ(r.last.computed, jobs.size());
    EXPECT_FALSE(fs::exists(dead.leasePath(key)));
}
