/**
 * @file
 * Progress-delivery contract: ParallelSweep serializes on_done calls,
 * so a stateful callback needs no locking of its own. The callback
 * below keeps unsynchronized state on purpose — under TSan (cmake
 * -DUBIK_TSAN=ON) this test is also a data-race detector for the
 * delivery path.
 */

#include <gtest/gtest.h>

#include "sim/parallel_sweep.h"
#include "support/cache_test_util.h"

using namespace ubik;
using namespace ubik::test;

TEST(SweepProgress, DeliveriesAreSerializedAndMonotonic)
{
    std::vector<SweepJob> jobs = cacheTestJobs();
    MixRunner runner(cacheTestCfg());
    ParallelSweep sweep(runner, 4);

    // Deliberately unsynchronized callback state: the engine's
    // serialization guarantee is what keeps this race-free.
    std::size_t count = 0;
    bool monotonic = true;
    std::vector<MixRunResult> results =
        sweep.run(jobs, [&](const SweepProgress &p) {
            static thread_local int depth = 0;
            // Concurrent delivery would interleave these unguarded
            // read-modify-writes and break the counts below (and trip
            // TSan); same-thread reentrancy would show in `depth`.
            depth++;
            EXPECT_EQ(depth, 1);
            count++;
            if (p.done != count)
                monotonic = false;
            EXPECT_EQ(p.done, p.hits + p.computed + p.remote);
            EXPECT_EQ(p.total, jobs.size());
            EXPECT_EQ(p.remote, 0u); // not a fleet sweep
            depth--;
        });

    EXPECT_TRUE(monotonic) << "done must increase by 1 per delivery";
    EXPECT_EQ(count, jobs.size());
    EXPECT_EQ(results.size(), jobs.size());
}
