/**
 * @file
 * ClaimStore protocol tests: exclusive acquisition under contention,
 * release/re-acquire, stale-lease breaking (with mtime backdating as
 * crash injection), and orphan GC.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include "sim/claim_store.h"
#include "support/cache_test_util.h"

using namespace ubik;
using namespace ubik::test;

namespace {

/** Backdate a lease's mtime so it reads as `age_sec` old — simulates
 *  an owner that stopped heartbeating without waiting out a TTL. */
void
backdate(const std::string &path, double age_sec)
{
    namespace fs = std::filesystem;
    fs::last_write_time(
        path, fs::file_time_type::clock::now() -
                  std::chrono::duration_cast<
                      fs::file_time_type::duration>(
                      std::chrono::duration<double>(age_sec)));
}

} // namespace

TEST(ClaimStore, ExactlyOneContenderWinsEachKey)
{
    TempCacheDir dir("claims_race");
    constexpr int kThreads = 8;
    constexpr int kKeys = 16;

    // One store per thread: contenders are independent instances, as
    // separate processes would be.
    std::vector<std::unique_ptr<ClaimStore>> stores;
    for (int t = 0; t < kThreads; t++)
        stores.push_back(std::make_unique<ClaimStore>(
            dir.path(), "w" + std::to_string(t), 60.0));

    std::vector<std::atomic<int>> winners(kKeys);
    for (auto &w : winners)
        w = 0;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++)
        threads.emplace_back([&, t] {
            for (int k = 0; k < kKeys; k++)
                if (stores[static_cast<std::size_t>(t)]->tryAcquire(
                        "key" + std::to_string(k)))
                    winners[static_cast<std::size_t>(k)].fetch_add(1);
        });
    for (auto &th : threads)
        th.join();

    for (int k = 0; k < kKeys; k++)
        EXPECT_EQ(winners[static_cast<std::size_t>(k)].load(), 1)
            << "key" << k;
}

TEST(ClaimStore, ReleaseMakesKeyClaimableAgain)
{
    TempCacheDir dir("claims_release");
    ClaimStore a(dir.path(), "a", 60.0);
    ClaimStore b(dir.path(), "b", 60.0);

    ASSERT_TRUE(a.tryAcquire("job"));
    EXPECT_FALSE(b.tryAcquire("job"));
    EXPECT_EQ(a.held().size(), 1u);

    a.release("job");
    EXPECT_TRUE(a.held().empty());
    EXPECT_TRUE(b.tryAcquire("job"));
}

TEST(ClaimStore, BreakStaleRespectsFreshLeases)
{
    TempCacheDir dir("claims_stale");
    ClaimStore owner(dir.path(), "owner", 5.0);
    ClaimStore peer(dir.path(), "peer", 5.0);

    // Absent lease: claimable.
    EXPECT_TRUE(peer.breakStale("job"));

    ASSERT_TRUE(owner.tryAcquire("job"));
    // Fresh lease: a live owner is protected.
    EXPECT_FALSE(peer.breakStale("job"));
    EXPECT_FALSE(peer.tryAcquire("job"));

    // Heartbeats keep it fresh even when backdated in between.
    backdate(owner.leasePath("job"), 60.0);
    owner.heartbeatAll();
    EXPECT_FALSE(peer.breakStale("job"));

    // A dead owner (no heartbeat past the TTL) is reclaimed; exactly
    // one break wins and the key becomes claimable.
    backdate(owner.leasePath("job"), 60.0);
    EXPECT_TRUE(peer.breakStale("job"));
    EXPECT_TRUE(peer.tryAcquire("job"));
}

TEST(ClaimStore, ConcurrentBreakersAgreeLeaseIsGone)
{
    TempCacheDir dir("claims_break_race");
    ClaimStore owner(dir.path(), "owner", 1.0);
    ASSERT_TRUE(owner.tryAcquire("job"));
    backdate(owner.leasePath("job"), 30.0);

    constexpr int kThreads = 8;
    std::atomic<int> claimable{0};
    std::vector<std::thread> threads;
    std::vector<std::unique_ptr<ClaimStore>> peers;
    for (int t = 0; t < kThreads; t++)
        peers.push_back(std::make_unique<ClaimStore>(
            dir.path(), "p" + std::to_string(t), 1.0));
    for (int t = 0; t < kThreads; t++)
        threads.emplace_back([&, t] {
            if (peers[static_cast<std::size_t>(t)]->breakStale("job"))
                claimable.fetch_add(1);
        });
    for (auto &th : threads)
        th.join();

    // Whether a breaker won the rename or raced a winner (ENOENT),
    // every one must report the lease claimable afterwards.
    EXPECT_EQ(claimable.load(), kThreads);
    EXPECT_FALSE(std::filesystem::exists(owner.leasePath("job")));
}

TEST(ClaimStore, GcReclaimsOnlyExpiredLeases)
{
    TempCacheDir dir("claims_gc");
    ClaimStore store(dir.path(), "w", 5.0);
    ASSERT_TRUE(store.tryAcquire("fresh"));
    ASSERT_TRUE(store.tryAcquire("dead1"));
    ASSERT_TRUE(store.tryAcquire("dead2"));
    backdate(store.leasePath("dead1"), 60.0);
    backdate(store.leasePath("dead2"), 60.0);

    EXPECT_EQ(store.gcStale(), 2u);
    EXPECT_TRUE(std::filesystem::exists(store.leasePath("fresh")));
    EXPECT_FALSE(std::filesystem::exists(store.leasePath("dead1")));
    EXPECT_EQ(store.gcStale(), 0u);
}
