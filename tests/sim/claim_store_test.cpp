/**
 * @file
 * ClaimStore protocol tests: exclusive acquisition under contention,
 * release/re-acquire, stale-lease breaking (with mtime backdating as
 * crash injection), and orphan GC.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "sim/claim_store.h"
#include "support/cache_test_util.h"

using namespace ubik;
using namespace ubik::test;

namespace {

/** Backdate a lease's mtime so it reads as `age_sec` old — simulates
 *  an owner that stopped heartbeating without waiting out a TTL. */
void
backdate(const std::string &path, double age_sec)
{
    namespace fs = std::filesystem;
    fs::last_write_time(
        path, fs::file_time_type::clock::now() -
                  std::chrono::duration_cast<
                      fs::file_time_type::duration>(
                      std::chrono::duration<double>(age_sec)));
}

} // namespace

TEST(ClaimStore, ExactlyOneContenderWinsEachKey)
{
    TempCacheDir dir("claims_race");
    constexpr int kThreads = 8;
    constexpr int kKeys = 16;

    // One store per thread: contenders are independent instances, as
    // separate processes would be.
    std::vector<std::unique_ptr<ClaimStore>> stores;
    for (int t = 0; t < kThreads; t++)
        stores.push_back(std::make_unique<ClaimStore>(
            dir.path(), "w" + std::to_string(t), 60.0));

    std::vector<std::atomic<int>> winners(kKeys);
    for (auto &w : winners)
        w = 0;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++)
        threads.emplace_back([&, t] {
            for (int k = 0; k < kKeys; k++)
                if (stores[static_cast<std::size_t>(t)]->tryAcquire(
                        "key" + std::to_string(k)))
                    winners[static_cast<std::size_t>(k)].fetch_add(1);
        });
    for (auto &th : threads)
        th.join();

    for (int k = 0; k < kKeys; k++)
        EXPECT_EQ(winners[static_cast<std::size_t>(k)].load(), 1)
            << "key" << k;
}

TEST(ClaimStore, ReleaseMakesKeyClaimableAgain)
{
    TempCacheDir dir("claims_release");
    ClaimStore a(dir.path(), "a", 60.0);
    ClaimStore b(dir.path(), "b", 60.0);

    ASSERT_TRUE(a.tryAcquire("job"));
    EXPECT_FALSE(b.tryAcquire("job"));
    EXPECT_EQ(a.held().size(), 1u);

    a.release("job");
    EXPECT_TRUE(a.held().empty());
    EXPECT_TRUE(b.tryAcquire("job"));
}

TEST(ClaimStore, BreakStaleRespectsFreshLeases)
{
    TempCacheDir dir("claims_stale");
    ClaimStore owner(dir.path(), "owner", 5.0);
    ClaimStore peer(dir.path(), "peer", 5.0);

    // Absent lease: claimable.
    EXPECT_TRUE(peer.breakStale("job"));

    ASSERT_TRUE(owner.tryAcquire("job"));
    // Fresh lease: a live owner is protected.
    EXPECT_FALSE(peer.breakStale("job"));
    EXPECT_FALSE(peer.tryAcquire("job"));

    // Heartbeats keep it fresh even when backdated in between.
    backdate(owner.leasePath("job"), 60.0);
    owner.heartbeatAll();
    EXPECT_FALSE(peer.breakStale("job"));

    // A dead owner (no heartbeat past the TTL) is reclaimed; exactly
    // one break wins and the key becomes claimable.
    backdate(owner.leasePath("job"), 60.0);
    EXPECT_TRUE(peer.breakStale("job"));
    EXPECT_TRUE(peer.tryAcquire("job"));
}

TEST(ClaimStore, ConcurrentBreakersAgreeLeaseIsGone)
{
    TempCacheDir dir("claims_break_race");
    ClaimStore owner(dir.path(), "owner", 1.0);
    ASSERT_TRUE(owner.tryAcquire("job"));
    backdate(owner.leasePath("job"), 30.0);

    constexpr int kThreads = 8;
    std::atomic<int> claimable{0};
    std::vector<std::thread> threads;
    std::vector<std::unique_ptr<ClaimStore>> peers;
    for (int t = 0; t < kThreads; t++)
        peers.push_back(std::make_unique<ClaimStore>(
            dir.path(), "p" + std::to_string(t), 1.0));
    for (int t = 0; t < kThreads; t++)
        threads.emplace_back([&, t] {
            if (peers[static_cast<std::size_t>(t)]->breakStale("job"))
                claimable.fetch_add(1);
        });
    for (auto &th : threads)
        th.join();

    // Whether a breaker won the rename or raced a winner (ENOENT),
    // every one must report the lease claimable afterwards.
    EXPECT_EQ(claimable.load(), kThreads);
    EXPECT_FALSE(std::filesystem::exists(owner.leasePath("job")));
}

TEST(ClaimStore, GcReclaimsOnlyExpiredLeases)
{
    TempCacheDir dir("claims_gc");
    ClaimStore store(dir.path(), "w", 5.0);
    ASSERT_TRUE(store.tryAcquire("fresh"));
    ASSERT_TRUE(store.tryAcquire("dead1"));
    ASSERT_TRUE(store.tryAcquire("dead2"));
    backdate(store.leasePath("dead1"), 60.0);
    backdate(store.leasePath("dead2"), 60.0);

    EXPECT_EQ(store.gcStale(), 2u);
    EXPECT_TRUE(std::filesystem::exists(store.leasePath("fresh")));
    EXPECT_FALSE(std::filesystem::exists(store.leasePath("dead1")));
    EXPECT_EQ(store.gcStale(), 0u);
}

TEST(ClaimStore, HeartbeatSurvivesClaimsDirDisappearing)
{
    // The claims directory vanishing mid-run (operator rm -rf, NFS
    // unmount) must not crash or wedge the heartbeat: the affected
    // leases are voluntarily released — peers reclaim the work —
    // and counted.
    TempCacheDir dir("claims_vanish");
    ClaimStore store(dir.path(), "w", 60.0);
    ASSERT_TRUE(store.tryAcquire("job1"));
    ASSERT_TRUE(store.tryAcquire("job2"));

    std::filesystem::remove_all(dir.path() + "/" +
                                ClaimStore::kSubdir);
    store.heartbeatAll(); // ENOENT on every mtime refresh
    EXPECT_EQ(store.hbReleases(), 2u);
    EXPECT_TRUE(store.held().empty());

    // Quiet afterwards: nothing held, repeat heartbeats are no-ops.
    store.heartbeatAll();
    EXPECT_EQ(store.hbReleases(), 2u);
}

TEST(ClaimStore, HeartbeatFailureReleasesOnlyTheFailingLease)
{
    TempCacheDir dir("claims_hb_one");
    ClaimStore store(dir.path(), "w", 60.0);
    ASSERT_TRUE(store.tryAcquire("victim"));
    ASSERT_TRUE(store.tryAcquire("healthy"));

    // One injected heartbeat failure: exactly one lease (whichever
    // the failing evaluation lands on) is released, the other stays
    // held and on disk.
    failpointConfigure("claim.heartbeat=err:EIO@1");
    store.heartbeatAll();
    failpointReset();
    EXPECT_EQ(store.hbReleases(), 1u);
    EXPECT_EQ(store.held().size(), 1u);

    // The released lease is gone from disk, so peers can claim it
    // immediately rather than waiting out the TTL.
    int onDisk = 0;
    for (const char *k : {"victim", "healthy"})
        onDisk += std::filesystem::exists(store.leasePath(k)) ? 1 : 0;
    EXPECT_EQ(onDisk, 1);
    ClaimStore peer(dir.path(), "peer", 60.0);
    int claimed = 0;
    for (const char *k : {"victim", "healthy"})
        claimed += peer.tryAcquire(k) ? 1 : 0;
    EXPECT_EQ(claimed, 1);
}

TEST(ClaimStore, PersistentCreateErrorsDegradeToUnusable)
{
    TempCacheDir dir("claims_create_err");
    ClaimStore store(dir.path(), "w", 60.0);
    ASSERT_TRUE(store.usable());

    // Every lease create fails with a real I/O error (not EEXIST):
    // after bounded retries the store marks itself unusable so the
    // executor can fall back to solo execution instead of spinning.
    failpointConfigure("claim.create=err:EIO@*");
    EXPECT_FALSE(store.tryAcquire("job"));
    failpointReset();
    EXPECT_FALSE(store.usable());
    // Unusable is sticky: no further filesystem traffic.
    EXPECT_FALSE(store.tryAcquire("job"));

    // A healthy peer is unaffected.
    ClaimStore peer(dir.path(), "peer", 60.0);
    EXPECT_TRUE(peer.tryAcquire("job"));
}

TEST(ClaimStore, TransientCreateErrorIsRetriedThrough)
{
    // One injected failure then success: the acquire retries through
    // and the store stays usable.
    TempCacheDir dir("claims_create_transient");
    ClaimStore store(dir.path(), "w", 60.0);
    failpointConfigure("claim.create=err:EIO@1");
    EXPECT_TRUE(store.tryAcquire("job"));
    failpointReset();
    EXPECT_TRUE(store.usable());
    EXPECT_EQ(store.held().size(), 1u);
}

TEST(ClaimStore, UnusableClaimsDirWarnsInsteadOfDying)
{
    // A plain file where the claims directory should be: the ctor
    // must degrade (usable() == false), not fatal.
    TempCacheDir dir("claims_blocked");
    std::filesystem::create_directories(dir.path());
    {
        std::ofstream block(dir.path() + "/" + ClaimStore::kSubdir);
        block << "in the way\n";
    }
    ClaimStore store(dir.path(), "w", 60.0);
    EXPECT_FALSE(store.usable());
    EXPECT_FALSE(store.tryAcquire("job"));
}
