/**
 * @file
 * Determinism tests for the persistent result cache: cold, warm, and
 * mixed hit/miss sweeps must produce byte-identical MixRunResult
 * vectors across 1 and N workers — extending the engine guarantee
 * parallel_determinism_test.cpp enforces to cached reruns — and a
 * fully warm sweep must perform zero mix recomputation.
 */

#include <gtest/gtest.h>

#include <mutex>
#include <vector>

#include "sim/result_cache.h"
#include "support/cache_test_util.h"

namespace ubik {
namespace {

using test::TempCacheDir;
using test::cacheTestCfg;
using test::cacheTestJobs;
using test::expectSameResults;

/** Run `jobs` through a fresh runner/engine against `dir` (empty =
 *  no cache), returning results and the cache's final stats. */
std::vector<MixRunResult>
runWithCache(const std::vector<SweepJob> &jobs, const std::string &dir,
             unsigned workers, CacheStats *stats_out = nullptr)
{
    MixRunner runner(cacheTestCfg());
    std::unique_ptr<ResultCache> cache = ResultCache::open(dir);
    runner.attachCache(cache.get());
    ParallelSweep engine(runner, workers);
    engine.attachCache(cache.get());
    std::vector<MixRunResult> results = engine.run(jobs);
    if (stats_out && cache)
        *stats_out = cache->stats();
    return results;
}

TEST(CacheDeterminism, ColdRunMatchesUncachedRun)
{
    std::vector<SweepJob> jobs = cacheTestJobs();
    ASSERT_EQ(jobs.size(), 8u);
    std::vector<MixRunResult> expected = runWithCache(jobs, "", 4);

    TempCacheDir dir("cold");
    CacheStats st;
    std::vector<MixRunResult> cold =
        runWithCache(jobs, dir.path(), 1, &st);
    expectSameResults(expected, cold);
    EXPECT_EQ(st.mixHits, 0u);
    EXPECT_EQ(st.mixMisses, jobs.size());
    EXPECT_GE(st.stores, jobs.size()); // mixes + baselines persisted
}

TEST(CacheDeterminism, WarmRunBitIdenticalAtAnyWorkerCount)
{
    std::vector<SweepJob> jobs = cacheTestJobs();
    std::vector<MixRunResult> expected = runWithCache(jobs, "", 4);

    TempCacheDir dir("warm");
    runWithCache(jobs, dir.path(), 2); // populate

    for (unsigned workers : {1u, 4u}) {
        CacheStats st;
        std::vector<MixRunResult> warm =
            runWithCache(jobs, dir.path(), workers, &st);
        expectSameResults(expected, warm);
        // Zero mix recomputation: every job served from the store,
        // nothing new written, no baseline ever consulted.
        EXPECT_EQ(st.mixHits, jobs.size()) << workers << " workers";
        EXPECT_EQ(st.mixMisses, 0u) << workers << " workers";
        EXPECT_EQ(st.stores, 0u) << workers << " workers";
        EXPECT_EQ(st.misses, 0u) << workers << " workers";
    }
}

TEST(CacheDeterminism, MixedHitMissRunBitIdentical)
{
    std::vector<SweepJob> jobs = cacheTestJobs();
    std::vector<MixRunResult> expected = runWithCache(jobs, "", 4);

    // Populate only the first three jobs, then sweep all eight: the
    // warm three are served from disk while the cold five simulate,
    // concurrently, on three workers.
    TempCacheDir dir("mixed");
    std::vector<SweepJob> subset(jobs.begin(), jobs.begin() + 3);
    runWithCache(subset, dir.path(), 2);

    CacheStats st;
    std::vector<MixRunResult> mixed =
        runWithCache(jobs, dir.path(), 3, &st);
    expectSameResults(expected, mixed);
    EXPECT_EQ(st.mixHits, 3u);
    EXPECT_EQ(st.mixMisses, jobs.size() - 3);
}

TEST(CacheDeterminism, ProgressReportsHitsVersusComputed)
{
    std::vector<SweepJob> jobs = cacheTestJobs();
    TempCacheDir dir("progress");
    std::vector<SweepJob> subset(jobs.begin(), jobs.begin() + 3);
    runWithCache(subset, dir.path(), 2);

    MixRunner runner(cacheTestCfg());
    std::unique_ptr<ResultCache> cache = ResultCache::open(dir.path());
    runner.attachCache(cache.get());
    ParallelSweep engine(runner, 3);
    engine.attachCache(cache.get());

    std::mutex mu;
    std::vector<SweepProgress> seen;
    engine.run(jobs, [&](const SweepProgress &p) {
        std::lock_guard<std::mutex> lock(mu);
        seen.push_back(p);
    });

    // First callback: the hit scan (3 hits, nothing computed yet).
    ASSERT_FALSE(seen.empty());
    EXPECT_EQ(seen.front().hits, 3u);
    EXPECT_EQ(seen.front().computed, 0u);
    EXPECT_EQ(seen.front().done, 3u);
    // One callback per computed job, consistent counters throughout.
    EXPECT_EQ(seen.size(), 1 + (jobs.size() - 3));
    for (const SweepProgress &p : seen) {
        EXPECT_EQ(p.total, jobs.size());
        EXPECT_EQ(p.hits, 3u);
        EXPECT_EQ(p.done, p.hits + p.computed);
    }
    // The last-by-done callback covers the whole sweep.
    std::size_t maxDone = 0;
    for (const SweepProgress &p : seen)
        maxDone = std::max(maxDone, p.done);
    EXPECT_EQ(maxDone, jobs.size());
}

TEST(CacheDeterminism, UncachedProgressStillReportsTotals)
{
    // Without a cache every job is computed; the callback must say so.
    std::vector<SweepJob> all = cacheTestJobs();
    std::vector<SweepJob> jobs(all.begin(), all.begin() + 2);
    MixRunner runner(cacheTestCfg());
    ParallelSweep engine(runner, 2);
    std::mutex mu;
    std::vector<SweepProgress> seen;
    engine.run(jobs, [&](const SweepProgress &p) {
        std::lock_guard<std::mutex> lock(mu);
        seen.push_back(p);
    });
    ASSERT_EQ(seen.size(), jobs.size());
    for (const SweepProgress &p : seen) {
        EXPECT_EQ(p.hits, 0u);
        EXPECT_EQ(p.total, jobs.size());
        EXPECT_EQ(p.done, p.computed);
    }
}

} // namespace
} // namespace ubik
