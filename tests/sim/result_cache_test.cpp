/**
 * @file
 * Tests for the persistent result cache's canonical keys and
 * serialization: equal configurations produce equal keys however they
 * were constructed, any single field change produces a different key,
 * result-neutral knobs (worker count, sweep shape) never enter the
 * key, and MixRunResult / LcBaseline / batch-IPC values round-trip
 * bit-exactly through a fresh ResultCache instance.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "sim/result_cache.h"
#include "support/cache_test_util.h"

namespace ubik {
namespace {

using test::TempCacheDir;
using test::cacheTestCfg;
using test::cacheTestJobs;
using test::expectBitIdentical;

SchemeUnderTest
baseSut()
{
    SchemeUnderTest sut;
    sut.label = "Ubik";
    sut.scheme = SchemeKind::Vantage;
    sut.array = ArrayKind::Z4_52;
    sut.policy = PolicyKind::Ubik;
    sut.slack = 0.05;
    return sut;
}

MixSpec
baseMix()
{
    return cacheTestJobs().front().mix;
}

std::string
keyOf(const SchemeUnderTest &sut)
{
    return mixResultKey(cacheTestCfg(), baseMix(), sut, 1, true);
}

TEST(ResultCacheKey, EquallyConstructedSutsHashIdentically)
{
    // Aggregate init vs field-by-field assignment in another order.
    SchemeUnderTest a{"Ubik", SchemeKind::Vantage, ArrayKind::Z4_52,
                      PolicyKind::Ubik, 0.05};
    SchemeUnderTest b;
    b.slack = 0.05;
    b.policy = PolicyKind::Ubik;
    b.array = ArrayKind::Z4_52;
    b.scheme = SchemeKind::Vantage;
    b.label = "Ubik";
    EXPECT_EQ(keyOf(a), keyOf(b));

    // A copied-then-rebuilt mix hashes like the original.
    MixSpec m1 = baseMix();
    MixSpec m2;
    m2.name = m1.name;
    m2.lc.load = m1.lc.load;
    m2.lc.app = lc_presets::specjbb();
    m2.batch = m1.batch;
    EXPECT_EQ(mixResultKey(cacheTestCfg(), m1, a, 1, true),
              mixResultKey(cacheTestCfg(), m2, a, 1, true));
}

TEST(ResultCacheKey, EverySchemeFieldChangesTheKey)
{
    const std::string base = keyOf(baseSut());
    std::vector<std::function<void(SchemeUnderTest &)>> mutators = {
        [](SchemeUnderTest &s) { s.label = "Ubik2"; },
        [](SchemeUnderTest &s) { s.scheme = SchemeKind::WayPart; },
        [](SchemeUnderTest &s) { s.array = ArrayKind::SA16; },
        [](SchemeUnderTest &s) { s.policy = PolicyKind::Lru; },
        [](SchemeUnderTest &s) { s.slack = 0.1; },
        [](SchemeUnderTest &s) { s.ubik.slack = 0.01; },
        [](SchemeUnderTest &s) { s.ubik.idleOptions = 8; },
        [](SchemeUnderTest &s) { s.ubik.deboostGuard = 32.0; },
        [](SchemeUnderTest &s) { s.ubik.slackGain = 0.2; },
        [](SchemeUnderTest &s) { s.ubik.dutyAlpha = 0.5; },
        [](SchemeUnderTest &s) { s.ubik.accurateDeboost = false; },
        [](SchemeUnderTest &s) { s.reconfigScale = 2.0; },
        [](SchemeUnderTest &s) { s.mem = MemKind::Contended; },
        [](SchemeUnderTest &s) { s.memParams.baseLatency = 300; },
        [](SchemeUnderTest &s) { s.memParams.channels = 4; },
        [](SchemeUnderTest &s) { s.memParams.channelOccupancy = 48; },
        [](SchemeUnderTest &s) { s.lcMemShare = 0.7; },
    };
    std::set<std::string> keys{base};
    for (std::size_t i = 0; i < mutators.size(); i++) {
        SchemeUnderTest s = baseSut();
        mutators[i](s);
        std::string key = keyOf(s);
        EXPECT_NE(key, base) << "mutator " << i << " did not change "
                             << "the key";
        EXPECT_TRUE(keys.insert(key).second)
            << "mutator " << i << " collided with another mutation";
    }
}

TEST(ResultCacheKey, TraceBackingEntersTheKeyByContent)
{
    const SchemeUnderTest sut = baseSut();
    const std::string base =
        mixResultKey(cacheTestCfg(), baseMix(), sut, 1, true);

    auto makeTraceApp = [](Addr salt) {
        auto td = std::make_shared<TraceData>();
        td->requestWork = {1000.0, 2000.0};
        td->requestStart = {0, 2};
        td->accesses = {salt + 1, salt + 2, salt + 3};
        return TraceApp::fromData(std::move(td), "t");
    };

    // Backing the same mix with a trace changes the key...
    MixSpec traced = baseMix();
    traced.lc.traces.push_back(makeTraceApp(0));
    const std::string k1 =
        mixResultKey(cacheTestCfg(), traced, sut, 1, true);
    EXPECT_NE(k1, base);

    // ...the key depends on the records, not the TraceApp object...
    MixSpec traced2 = baseMix();
    traced2.lc.traces.push_back(makeTraceApp(0));
    EXPECT_EQ(mixResultKey(cacheTestCfg(), traced2, sut, 1, true), k1);

    // ...different records give a different key...
    MixSpec other = baseMix();
    other.lc.traces.push_back(makeTraceApp(100));
    EXPECT_NE(mixResultKey(cacheTestCfg(), other, sut, 1, true), k1);

    // ...and so does the shared-vs-per-instance assignment.
    MixSpec per = baseMix();
    for (int i = 0; i < 3; i++)
        per.lc.traces.push_back(makeTraceApp(0));
    EXPECT_NE(mixResultKey(cacheTestCfg(), per, sut, 1, true), k1);
}

TEST(ResultCacheKey, BatchTraceBackingEntersTheKeyByContent)
{
    const SchemeUnderTest sut = baseSut();
    const std::string base =
        mixResultKey(cacheTestCfg(), baseMix(), sut, 1, true);

    auto makeTraceApp = [](Addr salt) {
        auto td = std::make_shared<TraceData>();
        td->requestWork = {1000.0};
        td->requestStart = {0};
        td->accesses = {salt + 1, salt + 2, salt + 3};
        return TraceApp::fromData(std::move(td), "bt");
    };

    // Backing the batch side with a trace changes the key...
    MixSpec traced = baseMix();
    traced.batch.traces.push_back(makeTraceApp(0));
    const std::string k1 =
        mixResultKey(cacheTestCfg(), traced, sut, 1, true);
    EXPECT_NE(k1, base);

    // ...by record content, not object identity...
    MixSpec traced2 = baseMix();
    traced2.batch.traces.push_back(makeTraceApp(0));
    EXPECT_EQ(mixResultKey(cacheTestCfg(), traced2, sut, 1, true), k1);

    // ...different records differ...
    MixSpec other = baseMix();
    other.batch.traces.push_back(makeTraceApp(100));
    EXPECT_NE(mixResultKey(cacheTestCfg(), other, sut, 1, true), k1);

    // ...per-instance assignment differs from shared...
    MixSpec per = baseMix();
    for (int i = 0; i < 3; i++)
        per.batch.traces.push_back(makeTraceApp(0));
    EXPECT_NE(mixResultKey(cacheTestCfg(), per, sut, 1, true), k1);

    // ...and an LC-side trace is not mistaken for a batch-side one.
    MixSpec lcSide = baseMix();
    lcSide.lc.traces.push_back(makeTraceApp(0));
    EXPECT_NE(mixResultKey(cacheTestCfg(), lcSide, sut, 1, true), k1);
}

TEST(ResultCacheKey, MixExperimentSeedAndSchemaChangeTheKey)
{
    const ExperimentConfig cfg = cacheTestCfg();
    const MixSpec mix = baseMix();
    const SchemeUnderTest sut = baseSut();
    const std::string base = mixResultKey(cfg, mix, sut, 1, true);

    {
        ExperimentConfig c = cfg;
        c.scale = 8.0;
        EXPECT_NE(mixResultKey(c, mix, sut, 1, true), base);
        c = cfg;
        c.roiRequests = 31;
        EXPECT_NE(mixResultKey(c, mix, sut, 1, true), base);
        c = cfg;
        c.warmupRequests = 11;
        EXPECT_NE(mixResultKey(c, mix, sut, 1, true), base);
    }
    {
        MixSpec m = mix;
        m.name = "other";
        EXPECT_NE(mixResultKey(cfg, m, sut, 1, true), base);
        m = mix;
        m.lc.load = 0.6;
        EXPECT_NE(mixResultKey(cfg, m, sut, 1, true), base);
        m = mix;
        m.lc.app.apki += 1.0;
        EXPECT_NE(mixResultKey(cfg, m, sut, 1, true), base);
        m = mix;
        m.lc.app.hotLines += 64;
        EXPECT_NE(mixResultKey(cfg, m, sut, 1, true), base);
        m = mix;
        m.lc.app.work = ServiceDistribution::lognormal(1e6, 0.9);
        EXPECT_NE(mixResultKey(cfg, m, sut, 1, true), base);
        m = mix;
        m.batch.apps[1].theta += 0.05;
        EXPECT_NE(mixResultKey(cfg, m, sut, 1, true), base);
        m = mix;
        m.batch.apps[2].cls = BatchClass::Fitting;
        EXPECT_NE(mixResultKey(cfg, m, sut, 1, true), base);
    }
    EXPECT_NE(mixResultKey(cfg, mix, sut, 2, true), base);   // seed
    EXPECT_NE(mixResultKey(cfg, mix, sut, 1, false), base);  // in-order
    EXPECT_NE(mixResultKey(cfg, mix, sut, 1, true,           // schema
                           kResultCacheSchemaVersion + 1),
              base);
}

TEST(ResultCacheKey, ResultNeutralKnobsDoNotChangeTheKey)
{
    const MixSpec mix = baseMix();
    const SchemeUnderTest sut = baseSut();
    ExperimentConfig a = cacheTestCfg();
    ExperimentConfig b = a;
    // Worker count, sweep shape, and I/O knobs select *which* jobs
    // run or where output goes — never what one job computes. Warm
    // hits must keep working when UBIK_JOBS changes.
    b.jobs = 8;
    b.seeds = 7;
    b.mixesPerLc = 40;
    b.verbose = true;
    b.cacheDir = "/somewhere/else";
    EXPECT_EQ(mixResultKey(a, mix, sut, 1, true),
              mixResultKey(b, mix, sut, 1, true));
    EXPECT_EQ(lcBaselineKey(a, mix.lc.app, 0.2, 1, true),
              lcBaselineKey(b, mix.lc.app, 0.2, 1, true));
    EXPECT_EQ(batchBaselineKey(a, mix.batch.apps[0], 1, true),
              batchBaselineKey(b, mix.batch.apps[0], 1, true));
}

TEST(ResultCacheKey, KindsAreDisjoint)
{
    // A mix key, an LC-baseline key, and a batch key can never
    // collide, whatever their parameters.
    ExperimentConfig cfg = cacheTestCfg();
    MixSpec mix = baseMix();
    std::string m = mixResultKey(cfg, mix, baseSut(), 1, true);
    std::string l = lcBaselineKey(cfg, mix.lc.app, 0.2, 1, true);
    std::string b = batchBaselineKey(cfg, mix.batch.apps[0], 1, true);
    EXPECT_NE(m, l);
    EXPECT_NE(m, b);
    EXPECT_NE(l, b);
}

TEST(ResultCacheRoundTrip, MixRunResultBitExactIncludingVectors)
{
    TempCacheDir dir("roundtrip_mix");
    MixRunResult r;
    r.lcTailMean = 0.1 + 0.2; // 0.30000000000000004
    r.tailDegradation = -0.0;
    r.meanDegradation = std::numeric_limits<double>::denorm_min();
    r.weightedSpeedup = 1.0 / 3.0;
    r.batchSpeedups = {std::nan(""), 1e-300,
                       std::numeric_limits<double>::infinity(),
                       0.9120000000000001};
    r.ubikDeboosts = 0xdeadbeefcafef00dull;
    r.ubikDeadlineDeboosts = 42;
    r.ubikWatermarks = std::numeric_limits<std::uint64_t>::max();

    const std::string key = "v1|test|mix-roundtrip";
    {
        ResultCache cache(dir.path());
        cache.storeMix(key, r);
    }
    // A fresh instance forces the shard file to be parsed.
    ResultCache cache(dir.path());
    auto loaded = cache.loadMix(key);
    ASSERT_TRUE(loaded.has_value());
    expectBitIdentical(loaded->lcTailMean, r.lcTailMean, "lcTailMean",
                       0);
    expectBitIdentical(loaded->tailDegradation, r.tailDegradation,
                       "tailDegradation", 0);
    expectBitIdentical(loaded->meanDegradation, r.meanDegradation,
                       "meanDegradation", 0);
    expectBitIdentical(loaded->weightedSpeedup, r.weightedSpeedup,
                       "weightedSpeedup", 0);
    ASSERT_EQ(loaded->batchSpeedups.size(), r.batchSpeedups.size());
    for (std::size_t i = 0; i < r.batchSpeedups.size(); i++)
        expectBitIdentical(loaded->batchSpeedups[i], r.batchSpeedups[i],
                           "batchSpeedup", i);
    EXPECT_EQ(loaded->ubikDeboosts, r.ubikDeboosts);
    EXPECT_EQ(loaded->ubikDeadlineDeboosts, r.ubikDeadlineDeboosts);
    EXPECT_EQ(loaded->ubikWatermarks, r.ubikWatermarks);
}

TEST(ResultCacheRoundTrip, LcBaselineAndBatchIpcBitExact)
{
    TempCacheDir dir("roundtrip_base");
    LcBaseline b;
    b.meanServiceCycles = 123456.789;
    b.meanInterarrival = 1.0 / 7.0;
    b.meanLatency = 0.1 + 0.7;
    b.tailMean = -0.0;
    b.p95 = 0xffffffffffffffffull;
    {
        ResultCache cache(dir.path());
        cache.storeLcBaseline("v1|test|lc", b);
        cache.storeBatchIpc("v1|test|batch", 2.0 / 3.0);
    }
    ResultCache cache(dir.path());
    auto lb = cache.loadLcBaseline("v1|test|lc");
    ASSERT_TRUE(lb.has_value());
    expectBitIdentical(lb->meanServiceCycles, b.meanServiceCycles,
                       "meanServiceCycles", 0);
    expectBitIdentical(lb->meanInterarrival, b.meanInterarrival,
                       "meanInterarrival", 0);
    expectBitIdentical(lb->meanLatency, b.meanLatency, "meanLatency",
                       0);
    expectBitIdentical(lb->tailMean, b.tailMean, "tailMean", 0);
    EXPECT_EQ(lb->p95, b.p95);

    auto ipc = cache.loadBatchIpc("v1|test|batch");
    ASSERT_TRUE(ipc.has_value());
    expectBitIdentical(*ipc, 2.0 / 3.0, "batchIpc", 0);
}

TEST(ResultCache, StatsCountHitsMissesAndStores)
{
    TempCacheDir dir("stats");
    ResultCache cache(dir.path());
    MixRunResult r;
    r.batchSpeedups = {1.0, 2.0, 3.0};

    EXPECT_FALSE(cache.loadMix("v1|k1").has_value());
    cache.storeMix("v1|k1", r);
    EXPECT_TRUE(cache.loadMix("v1|k1").has_value());
    EXPECT_FALSE(cache.loadLcBaseline("v1|k2").has_value());

    CacheStats st = cache.stats();
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.misses, 2u);
    EXPECT_EQ(st.stores, 1u);
    EXPECT_EQ(st.mixHits, 1u);
    EXPECT_EQ(st.mixMisses, 1u);
    EXPECT_EQ(st.evicted, 0u);
    EXPECT_EQ(st.corrupt, 0u);
}

TEST(ResultCache, OpenOnEmptyDirDisablesCaching)
{
    EXPECT_EQ(ResultCache::open(""), nullptr);
    TempCacheDir dir("open");
    auto cache = ResultCache::open(dir.path());
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->dir(), dir.path());
}

} // namespace
} // namespace ubik
