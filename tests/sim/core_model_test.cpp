/**
 * @file
 * Tests for the OOO and in-order core timing models.
 */

#include <gtest/gtest.h>

#include "sim/core_model.h"

namespace ubik {
namespace {

CoreModel
makeOoo(double apki = 10, double ipc = 1.5, double mlp = 2.0)
{
    CoreParams p;
    p.outOfOrder = true;
    CoreTraits t{apki, ipc, mlp};
    return CoreModel(p, t);
}

CoreModel
makeInOrder(double apki = 10)
{
    CoreParams p;
    p.outOfOrder = false;
    CoreTraits t{apki, 1.5, 2.0};
    return CoreModel(p, t);
}

TEST(CoreModel, GapFollowsIpc)
{
    auto m = makeOoo();
    // 100 instructions at IPC 1.5 -> ~67 cycles.
    EXPECT_EQ(m.gapCycles(100), 67u);
    auto io = makeInOrder();
    // In-order IPC is 1 regardless of the trait.
    EXPECT_EQ(io.gapCycles(100), 100u);
}

TEST(CoreModel, OooHidesMostHitLatency)
{
    auto ooo = makeOoo();
    auto io = makeInOrder();
    EXPECT_LT(ooo.hitCycles(), io.hitCycles());
    EXPECT_EQ(io.hitCycles(), 20u); // full L3 latency exposed
}

TEST(CoreModel, MlpDividesMissStall)
{
    auto mlp2 = makeOoo(10, 1.5, 2.0);
    auto mlp4 = makeOoo(10, 1.5, 4.0);
    // Full miss latency = 20 + 200 = 220.
    EXPECT_EQ(mlp2.missCycles(), 110u);
    EXPECT_EQ(mlp4.missCycles(), 55u);
    auto io = makeInOrder();
    EXPECT_EQ(io.missCycles(), 220u); // in-order exposes everything
}

TEST(CoreModel, InOrderSuffersMoreFromMisses)
{
    // The Fig 11 premise: the same miss hurts an in-order core more.
    auto ooo = makeOoo();
    auto io = makeInOrder();
    EXPECT_GE(io.missCycles(), 2 * ooo.missCycles());
}

TEST(CoreModel, AccessAccumulatesCounters)
{
    auto m = makeOoo();
    Cycles c1 = m.access(true, 100);  // hit
    Cycles c2 = m.access(false, 100); // miss
    EXPECT_GT(c2, c1);
    const IntervalCounters &ic = m.interval();
    EXPECT_EQ(ic.llcAccesses, 2u);
    EXPECT_EQ(ic.llcMisses, 1u);
    EXPECT_EQ(ic.instructions, 200u);
    EXPECT_EQ(ic.cycles, c1 + c2);
    EXPECT_EQ(ic.missStallCycles, m.missCycles());
}

TEST(CoreModel, ComputeAdvancesWithoutAccesses)
{
    auto m = makeOoo();
    Cycles c = m.compute(3000);
    EXPECT_EQ(c, 2000u); // 3000 / 1.5
    EXPECT_EQ(m.interval().instructions, 3000u);
    EXPECT_EQ(m.interval().llcAccesses, 0u);
}

TEST(CoreModel, TakeIntervalResets)
{
    auto m = makeOoo();
    m.access(false, 100);
    IntervalCounters ic = m.takeInterval();
    EXPECT_EQ(ic.llcAccesses, 1u);
    EXPECT_EQ(m.interval().llcAccesses, 0u);
    EXPECT_EQ(m.interval().cycles, 0u);
}

TEST(CoreModel, ProfilerRecoversModelParameters)
{
    // Feed an MlpProfiler with this core's counters: the derived c
    // and M must match the model's own constants (the closure Ubik's
    // runtime depends on).
    auto m = makeOoo(10, 1.5, 2.0);
    for (int i = 0; i < 1000; i++)
        m.access(i % 10 == 0, 100); // 10% hits, 90% misses
    MlpProfiler prof(1.0);
    prof.update(m.interval());
    ASSERT_TRUE(prof.profile().valid);
    EXPECT_NEAR(prof.profile().missPenalty,
                static_cast<double>(m.missCycles()), 1.0);
    // c = gap + hit latency (every access pays the gap; hits pay the
    // exposed hit latency).
    EXPECT_NEAR(prof.profile().hitCyclesPerAccess,
                static_cast<double>(m.gapCycles(100)) +
                    0.1 * static_cast<double>(m.hitCycles()),
                2.0);
}

class TimingSweep
    : public ::testing::TestWithParam<std::tuple<bool, double>>
{
};

TEST_P(TimingSweep, AccessCostsAreConsistent)
{
    auto [ooo, mlp] = GetParam();
    CoreParams p;
    p.outOfOrder = ooo;
    CoreTraits t{15.0, 1.5, mlp};
    CoreModel m(p, t);
    Cycles hit = m.access(true, 66.7);
    Cycles miss = m.access(false, 66.7);
    EXPECT_GT(miss, hit);
    EXPECT_EQ(hit, m.gapCycles(66.7) + m.hitCycles());
    EXPECT_EQ(miss, m.gapCycles(66.7) + m.missCycles());
}

INSTANTIATE_TEST_SUITE_P(
    Cores, TimingSweep,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(1.0, 2.0, 4.0)));

} // namespace
} // namespace ubik
