/**
 * @file
 * Tests for the MixRunner methodology layer: calibration, baselines,
 * caching, and mix-run metric extraction.
 */

#include <gtest/gtest.h>

#include "sim/mix_runner.h"

namespace ubik {
namespace {

ExperimentConfig
fastCfg()
{
    ExperimentConfig cfg;
    cfg.scale = 16.0; // extra small for unit tests
    cfg.roiRequests = 60;
    cfg.warmupRequests = 15;
    cfg.seeds = 1;
    cfg.mixesPerLc = 1;
    return cfg;
}

TEST(ExperimentConfig, ScalingArithmetic)
{
    ExperimentConfig cfg;
    cfg.scale = 8.0;
    EXPECT_EQ(cfg.llcLines(), 24576u);
    EXPECT_EQ(cfg.privateLines(), 4096u);
    EXPECT_EQ(cfg.llc8MbLines(), 16384u);
    EXPECT_EQ(cfg.reconfigInterval(), msToCycles(50) / 8);
    cfg.scale = 1.0;
    EXPECT_EQ(cfg.llcLines(), 196608u); // paper's 12MB
    EXPECT_EQ(cfg.privateLines(), 32768u);
}

TEST(ExperimentConfig, LinesDivisibleByAnyGeometry)
{
    for (double s : {1.0, 3.0, 7.0, 8.0, 13.0}) {
        ExperimentConfig cfg;
        cfg.scale = s;
        EXPECT_EQ(cfg.llcLines() % 64, 0u);
        EXPECT_EQ(cfg.privateLines() % 64, 0u);
    }
}

TEST(PaperSchemes, FiveSchemesUbikLast)
{
    auto schemes = paperSchemes(0.05);
    ASSERT_EQ(schemes.size(), 5u);
    EXPECT_EQ(schemes[0].label, "LRU");
    EXPECT_EQ(schemes[4].label, "Ubik");
    EXPECT_DOUBLE_EQ(schemes[4].slack, 0.05);
}

TEST(MixRunner, BaselineHasSaneShape)
{
    MixRunner runner(fastCfg());
    const LcBaseline &b =
        runner.lcBaseline(lc_presets::specjbb(), 0.2, 1);
    EXPECT_GT(b.meanServiceCycles, 0.0);
    // lambda = load / mu  =>  interarrival = mu / load.
    EXPECT_NEAR(b.meanInterarrival, b.meanServiceCycles / 0.2, 1e-6);
    EXPECT_GE(b.tailMean, b.meanLatency);
    EXPECT_GT(b.p95, 0u);
}

TEST(MixRunner, BaselineCached)
{
    MixRunner runner(fastCfg());
    const LcBaseline &a =
        runner.lcBaseline(lc_presets::specjbb(), 0.2, 1);
    const LcBaseline &b =
        runner.lcBaseline(lc_presets::specjbb(), 0.2, 1);
    EXPECT_EQ(&a, &b); // same cached object
}

TEST(MixRunner, HigherLoadMeansHigherTail)
{
    MixRunner runner(fastCfg());
    const LcBaseline &lo =
        runner.lcBaseline(lc_presets::specjbb(), 0.2, 1);
    const LcBaseline &hi =
        runner.lcBaseline(lc_presets::specjbb(), 0.6, 1);
    EXPECT_GT(hi.tailMean, lo.tailMean);
}

TEST(MixRunner, BatchAloneIpcCachedAndPositive)
{
    MixRunner runner(fastCfg());
    auto p = batch_presets::make(BatchClass::Friendly, 0);
    double a = runner.batchAloneIpc(p, 1);
    double b = runner.batchAloneIpc(p, 1);
    EXPECT_GT(a, 0.0);
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(MixRunner, RunAloneProducesRoiLatencies)
{
    MixRunner runner(fastCfg());
    LatencyRecorder service;
    LatencyRecorder lat =
        runner.runAlone(lc_presets::specjbb(), 0.2, 1, &service);
    EXPECT_EQ(lat.count(), 60u);
    EXPECT_EQ(service.count(), 60u);
    EXPECT_GE(lat.mean(), service.mean());
}

TEST(MixRunner, MixRunProducesAllMetrics)
{
    MixRunner runner(fastCfg());
    MixSpec mix;
    mix.name = "t";
    mix.lc.app = lc_presets::specjbb();
    mix.lc.load = 0.2;
    mix.batch.name = "nfs";
    mix.batch.apps = {
        batch_presets::make(BatchClass::Insensitive, 0),
        batch_presets::make(BatchClass::Friendly, 1),
        batch_presets::make(BatchClass::Streaming, 2),
    };
    SchemeUnderTest sut{"StaticLC", SchemeKind::Vantage,
                        ArrayKind::Z4_52, PolicyKind::StaticLc, 0.0};
    MixRunResult r = runner.runMix(mix, sut, 1);
    EXPECT_GT(r.lcTailMean, 0.0);
    EXPECT_GT(r.tailDegradation, 0.3);
    EXPECT_LT(r.tailDegradation, 5.0);
    EXPECT_GT(r.weightedSpeedup, 0.5);
    ASSERT_EQ(r.batchSpeedups.size(), 3u);
    for (double s : r.batchSpeedups)
        EXPECT_GT(s, 0.0);
}

TEST(MixRunner, InOrderBaselinesDifferFromOoo)
{
    MixRunner ooo(fastCfg(), true);
    MixRunner io(fastCfg(), false);
    const LcBaseline &a =
        ooo.lcBaseline(lc_presets::specjbb(), 0.2, 1);
    const LcBaseline &b = io.lcBaseline(lc_presets::specjbb(), 0.2, 1);
    // In-order cores are slower: longer service times.
    EXPECT_GT(b.meanServiceCycles, a.meanServiceCycles);
}

} // namespace
} // namespace ubik
