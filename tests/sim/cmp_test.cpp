/**
 * @file
 * Tests for the Cmp event-loop simulator: request lifecycle, queueing,
 * idle/active transitions, ROI accounting, determinism, and the
 * instrumentation the figures rely on.
 */

#include <gtest/gtest.h>

#include "sim/cmp.h"
#include "workload/lc_app.h"

namespace ubik {
namespace {

LcAppParams
smallLc()
{
    LcAppParams p = lc_presets::specjbb().scaled(8.0);
    return p;
}

CmpConfig
smallCfg()
{
    CmpConfig cfg;
    cfg.llcLines = 24576;
    cfg.privateLinesPerCore = 4096;
    cfg.reconfigInterval = 2000000;
    return cfg;
}

TEST(Cmp, ClosedLoopCompletesExactRequests)
{
    CmpConfig cfg = smallCfg();
    cfg.privateLlc = true;
    LcAppSpec spec;
    spec.params = smallLc();
    spec.meanInterarrival = 0;
    spec.roiRequests = 60;
    spec.warmupRequests = 10;
    spec.targetLines = 4096;
    Cmp cmp(cfg, {spec}, {}, 1);
    cmp.run();
    EXPECT_EQ(cmp.lcResult(0).latencies.count(), 60u);
    EXPECT_EQ(cmp.lcResult(0).serviceTimes.count(), 60u);
    EXPECT_GT(cmp.lcResult(0).roiEndCycle, 0u);
}

TEST(Cmp, ClosedLoopLatencyEqualsService)
{
    CmpConfig cfg = smallCfg();
    cfg.privateLlc = true;
    LcAppSpec spec;
    spec.params = smallLc();
    spec.meanInterarrival = 0;
    spec.roiRequests = 40;
    spec.warmupRequests = 5;
    spec.targetLines = 4096;
    Cmp cmp(cfg, {spec}, {}, 2);
    cmp.run();
    // Closed loop: no queueing, so latency == service time.
    EXPECT_NEAR(cmp.lcResult(0).latencies.mean(),
                cmp.lcResult(0).serviceTimes.mean(), 1.0);
}

TEST(Cmp, OpenLoopLatencyIncludesQueueing)
{
    CmpConfig cfg = smallCfg();
    cfg.privateLlc = true;

    auto run_at_load = [&](double load_interarrival_factor) {
        LcAppSpec spec;
        spec.params = smallLc();
        // First find the service time via closed loop.
        spec.meanInterarrival = 0;
        spec.roiRequests = 40;
        spec.warmupRequests = 10;
        spec.targetLines = 4096;
        Cmp cal(cfg, {spec}, {}, 3);
        cal.run();
        double mu = cal.lcResult(0).serviceTimes.mean();
        spec.meanInterarrival = mu * load_interarrival_factor;
        Cmp cmp(cfg, {spec}, {}, 3);
        cmp.run();
        return cmp.lcResult(0).latencies.mean() -
               cmp.lcResult(0).serviceTimes.mean();
    };

    double q_low = run_at_load(5.0);  // ~20% load
    double q_high = run_at_load(1.3); // ~77% load
    // Queueing delay grows sharply with load (Fig 1a's premise).
    EXPECT_GT(q_high, q_low);
}

TEST(Cmp, OpenLoopLatencyIncludesCoalescing)
{
    // At very low load every request arrives to an idle server and
    // pays the 50us interrupt-coalescing delay on top of service.
    CmpConfig cfg = smallCfg();
    cfg.privateLlc = true;
    LcAppSpec spec;
    spec.params = smallLc();
    spec.meanInterarrival = 0;
    spec.roiRequests = 30;
    spec.warmupRequests = 5;
    spec.targetLines = 4096;
    Cmp cal(cfg, {spec}, {}, 4);
    cal.run();
    double mu = cal.lcResult(0).serviceTimes.mean();

    spec.meanInterarrival = mu * 50; // ~2% load: always idle arrival
    Cmp cmp(cfg, {spec}, {}, 4);
    cmp.run();
    double extra = cmp.lcResult(0).latencies.mean() -
                   cmp.lcResult(0).serviceTimes.mean();
    EXPECT_GE(extra, 0.9 * static_cast<double>(cfg.coalesceCycles));
}

TEST(Cmp, DeterministicAcrossRuns)
{
    CmpConfig cfg = smallCfg();
    cfg.privateLlc = true;
    LcAppSpec spec;
    spec.params = smallLc();
    spec.meanInterarrival = 500000;
    spec.roiRequests = 30;
    spec.warmupRequests = 5;
    spec.targetLines = 4096;
    Cmp a(cfg, {spec}, {}, 42), b(cfg, {spec}, {}, 42);
    a.run();
    b.run();
    EXPECT_EQ(a.lcResult(0).latencies.mean(),
              b.lcResult(0).latencies.mean());
    EXPECT_EQ(a.now(), b.now());
}

TEST(Cmp, SeedChangesArrivals)
{
    CmpConfig cfg = smallCfg();
    cfg.privateLlc = true;
    LcAppSpec spec;
    spec.params = smallLc();
    spec.meanInterarrival = 500000;
    spec.roiRequests = 30;
    spec.warmupRequests = 5;
    spec.targetLines = 4096;
    Cmp a(cfg, {spec}, {}, 1), b(cfg, {spec}, {}, 2);
    a.run();
    b.run();
    EXPECT_NE(a.lcResult(0).latencies.mean(),
              b.lcResult(0).latencies.mean());
}

TEST(Cmp, BatchOnlyRunMeasuresIpc)
{
    CmpConfig cfg = smallCfg();
    cfg.privateLlc = true;
    BatchAppSpec spec;
    spec.params = batch_presets::make(BatchClass::Insensitive, 0)
                      .scaled(8.0);
    Cmp cmp(cfg, {}, {spec}, 5);
    cmp.run();
    const BatchResult &r = cmp.batchResult(0);
    EXPECT_GT(r.roiInstructions, 0u);
    EXPECT_GT(r.roiCycles, 0u);
    EXPECT_GT(r.ipc(), 0.1);
    EXPECT_LE(r.ipc(), 1.6);
}

TEST(Cmp, InsensitiveBatchFasterThanStreaming)
{
    CmpConfig cfg = smallCfg();
    cfg.privateLlc = true;
    auto ipc_of = [&](BatchClass cls) {
        BatchAppSpec spec;
        spec.params = batch_presets::make(cls, 0).scaled(8.0);
        Cmp cmp(cfg, {}, {spec}, 6);
        cmp.run();
        return cmp.batchResult(0).ipc();
    };
    EXPECT_GT(ipc_of(BatchClass::Insensitive),
              1.5 * ipc_of(BatchClass::Streaming));
}

TEST(Cmp, SharedRunExercisesPolicyAndFinishes)
{
    CmpConfig cfg = smallCfg();
    cfg.scheme = SchemeKind::Vantage;
    cfg.policy = PolicyKind::Ubik;
    cfg.slack = 0.05;
    LcAppSpec lc;
    lc.params = smallLc();
    lc.meanInterarrival = 400000;
    lc.roiRequests = 40;
    lc.warmupRequests = 10;
    lc.targetLines = 4096;
    lc.deadline = 300000;
    BatchAppSpec b1, b2;
    b1.params = batch_presets::make(BatchClass::Friendly, 0).scaled(8.0);
    b2.params = batch_presets::make(BatchClass::Streaming, 1).scaled(8.0);
    Cmp cmp(cfg, {lc, lc}, {b1, b2}, 7);
    cmp.run();
    EXPECT_EQ(cmp.lcResult(0).latencies.count(), 40u);
    EXPECT_EQ(cmp.lcResult(1).latencies.count(), 40u);
    EXPECT_GT(cmp.batchResult(0).ipc(), 0.0);
    // The policy must have left partition targets summing to the LLC.
    PartitionScheme &s = cmp.scheme();
    std::uint64_t sum = 0;
    for (PartId p = 1; p < s.numPartitions(); p++)
        sum += s.targetSize(p);
    EXPECT_GT(sum, cfg.llcLines / 2);
}

TEST(Cmp, UbikConfigPlumbsThroughToPolicy)
{
    // CmpConfig::ubik must reach the constructed UbikPolicy, with
    // CmpConfig::slack overriding ubik.slack (compatibility rule).
    CmpConfig cfg = smallCfg();
    cfg.policy = PolicyKind::Ubik;
    cfg.slack = 0.07;
    cfg.ubik.slack = 0.99; // must be overridden
    cfg.ubik.accurateDeboost = false;
    cfg.ubik.idleOptions = 5;
    LcAppSpec lc;
    lc.params = smallLc();
    lc.roiRequests = 1;
    lc.warmupRequests = 0;
    lc.targetLines = 4096;
    lc.deadline = 300000;
    Cmp cmp(cfg, {lc}, {}, 9);
    auto *ubik = dynamic_cast<UbikPolicy *>(cmp.policy());
    ASSERT_NE(ubik, nullptr);
    EXPECT_DOUBLE_EQ(ubik->config().slack, 0.07);
    EXPECT_FALSE(ubik->config().accurateDeboost);
    EXPECT_EQ(ubik->config().idleOptions, 5u);
}

TEST(Cmp, InertiaBreakdownPopulated)
{
    CmpConfig cfg = smallCfg();
    cfg.privateLlc = true;
    cfg.trackInertia = true;
    LcAppSpec spec;
    spec.params = smallLc();
    spec.meanInterarrival = 0;
    spec.roiRequests = 80;
    spec.warmupRequests = 20;
    spec.targetLines = 4096;
    Cmp cmp(cfg, {spec}, {}, 8);
    cmp.run();
    const LcResult &r = cmp.lcResult(0);
    std::uint64_t same_req = r.hitsByAge[0];
    std::uint64_t cross_req = 0;
    for (int i = 1; i <= 8; i++)
        cross_req += r.hitsByAge[i];
    // specjbb's defining property (Fig 2): substantial cross-request
    // reuse — the source of performance inertia.
    EXPECT_GT(cross_req, 0u);
    EXPECT_GT(same_req + cross_req, r.misses / 4);
}

TEST(Cmp, AllocationTraceSampled)
{
    CmpConfig cfg = smallCfg();
    cfg.traceAllocations = true;
    cfg.traceInterval = 500000;
    cfg.policy = PolicyKind::OnOff;
    LcAppSpec lc;
    lc.params = smallLc();
    lc.meanInterarrival = 400000;
    lc.roiRequests = 30;
    lc.warmupRequests = 5;
    lc.targetLines = 4096;
    BatchAppSpec b;
    b.params = batch_presets::make(BatchClass::Friendly, 0).scaled(8.0);
    Cmp cmp(cfg, {lc}, {b}, 9);
    cmp.run();
    ASSERT_GT(cmp.allocTrace().size(), 2u);
    for (const auto &s : cmp.allocTrace())
        EXPECT_EQ(s.targetLines.size(), 3u); // unmanaged + 2 apps
}

TEST(Cmp, ApkiMatchesWorkloadParameter)
{
    CmpConfig cfg = smallCfg();
    cfg.privateLlc = true;
    LcAppSpec spec;
    spec.params = smallLc();
    spec.meanInterarrival = 0;
    spec.roiRequests = 100;
    spec.warmupRequests = 10;
    spec.targetLines = 4096;
    Cmp cmp(cfg, {spec}, {}, 10);
    cmp.run();
    EXPECT_NEAR(cmp.lcResult(0).apki(), spec.params.apki,
                0.15 * spec.params.apki);
}

TEST(CmpDeath, WayPartitioningNeedsSetAssociativeArray)
{
    CmpConfig cfg = smallCfg();
    cfg.scheme = SchemeKind::WayPart;
    cfg.array = ArrayKind::Z4_52;
    LcAppSpec spec;
    spec.params = smallLc();
    spec.targetLines = 4096;
    EXPECT_EXIT(Cmp(cfg, {spec}, {}, 1),
                ::testing::ExitedWithCode(1), "set-associative");
}

class SchemeMatrix
    : public ::testing::TestWithParam<std::pair<SchemeKind, ArrayKind>>
{
};

TEST_P(SchemeMatrix, AllCombinationsRunToCompletion)
{
    auto [scheme, array] = GetParam();
    CmpConfig cfg = smallCfg();
    cfg.scheme = scheme;
    cfg.array = array;
    cfg.policy = scheme == SchemeKind::SharedLru ? PolicyKind::Lru
                                                 : PolicyKind::Ubik;
    LcAppSpec lc;
    lc.params = smallLc();
    lc.meanInterarrival = 400000;
    lc.roiRequests = 25;
    lc.warmupRequests = 5;
    lc.targetLines = 4096;
    lc.deadline = 300000;
    BatchAppSpec b;
    b.params = batch_presets::make(BatchClass::Friendly, 2).scaled(8.0);
    Cmp cmp(cfg, {lc}, {b}, 11);
    cmp.run();
    EXPECT_EQ(cmp.lcResult(0).latencies.count(), 25u);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SchemeMatrix,
    ::testing::Values(
        std::make_pair(SchemeKind::SharedLru, ArrayKind::Z4_52),
        std::make_pair(SchemeKind::Vantage, ArrayKind::Z4_52),
        std::make_pair(SchemeKind::Vantage, ArrayKind::SA16),
        std::make_pair(SchemeKind::Vantage, ArrayKind::SA64),
        std::make_pair(SchemeKind::WayPart, ArrayKind::SA16),
        std::make_pair(SchemeKind::WayPart, ArrayKind::SA64)));

} // namespace
} // namespace ubik
