/**
 * @file
 * Tests for UCP's Lookahead allocator, especially the non-convex
 * (cache-fitting) case the plain greedy algorithm gets wrong.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "policy/lookahead.h"

namespace ubik {
namespace {

std::vector<double>
linearCurve(double start, double end, std::size_t points)
{
    std::vector<double> v(points);
    for (std::size_t i = 0; i < points; i++)
        v[i] = start + (end - start) * static_cast<double>(i) /
                           static_cast<double>(points - 1);
    return v;
}

std::uint64_t
total(const std::vector<std::uint64_t> &a)
{
    return std::accumulate(a.begin(), a.end(), std::uint64_t{0});
}

TEST(Lookahead, EmptyInputs)
{
    EXPECT_TRUE(lookaheadAllocate({}, 10).empty());
}

TEST(Lookahead, SingleAppGetsUsefulSpace)
{
    LookaheadInput in;
    in.curve = linearCurve(1000, 0, 11);
    auto alloc = lookaheadAllocate({in}, 10);
    EXPECT_EQ(alloc[0], 10u);
}

TEST(Lookahead, SymmetricAppsSplitEvenly)
{
    // With strictly diminishing returns, identical apps must split
    // the budget almost evenly (linear curves tie on marginal utility
    // and the deterministic tie-break may hand one app everything,
    // which is also correct — hence the concave curve here).
    LookaheadInput a, b;
    a.curve = b.curve = {1000, 500, 300, 200, 150, 120,
                         100,  90,  85,  82,  80};
    auto alloc = lookaheadAllocate({a, b}, 10);
    EXPECT_EQ(alloc[0] + alloc[1], 10u);
    EXPECT_NEAR(static_cast<double>(alloc[0]), 5.0, 1.0);
}

TEST(Lookahead, SteeperCurveWins)
{
    LookaheadInput steep, flat;
    steep.curve = linearCurve(1000, 0, 11);  // 100 misses/bucket
    flat.curve = linearCurve(100, 90, 11);   // 1 miss/bucket
    auto alloc = lookaheadAllocate({steep, flat}, 10);
    EXPECT_GE(alloc[0], 8u);
}

TEST(Lookahead, StepCurveGetsItsStep)
{
    // Cache-fitting app: no utility until 6 buckets, then a cliff.
    // Plain greedy would starve it; Lookahead's per-unit extension
    // search must give it all 6.
    LookaheadInput fitting, friendly;
    fitting.curve = {1000, 1000, 1000, 1000, 1000, 1000, 0,
                     0,    0,    0,    0};
    friendly.curve = linearCurve(300, 200, 11); // 10 misses/bucket
    auto alloc = lookaheadAllocate({fitting, friendly}, 10);
    EXPECT_GE(alloc[0], 6u);
}

TEST(Lookahead, StepTooExpensiveIsSkipped)
{
    // If the budget cannot cover the step, the fitting app gets
    // nothing useful and the friendly app takes the space.
    LookaheadInput fitting, friendly;
    fitting.curve = {1000, 1000, 1000, 1000, 1000, 1000, 1000,
                     1000, 0,    0,    0};
    friendly.curve = linearCurve(300, 100, 11);
    auto alloc = lookaheadAllocate({fitting, friendly}, 5);
    EXPECT_GE(alloc[1], 5u);
}

TEST(Lookahead, WeightBiasesAllocation)
{
    // Same curves, but app 0's misses cost 10x more (MLP weighting):
    // it must win the contested buckets.
    LookaheadInput a, b;
    a.curve = b.curve = linearCurve(1000, 900, 11);
    a.weight = 10.0;
    b.weight = 1.0;
    // Add a diminishing region so the split is contested.
    a.curve = b.curve = {1000, 500, 300, 200, 150, 120,
                         100,  90,  85,  82,  80};
    a.weight = 10.0;
    auto alloc = lookaheadAllocate({a, b}, 10);
    EXPECT_GT(alloc[0], alloc[1]);
}

TEST(Lookahead, MinBucketsHonored)
{
    LookaheadInput rich, poor;
    rich.curve = linearCurve(1000, 0, 11);
    poor.curve = linearCurve(10, 9, 11); // nearly useless
    poor.minBuckets = 3;
    auto alloc = lookaheadAllocate({rich, poor}, 10);
    EXPECT_GE(alloc[1], 3u);
}

TEST(Lookahead, MaxBucketsCaps)
{
    LookaheadInput hog, other;
    hog.curve = linearCurve(1000, 0, 11);
    hog.maxBuckets = 4;
    other.curve = linearCurve(100, 50, 11);
    auto alloc = lookaheadAllocate({hog, other}, 10);
    EXPECT_LE(alloc[0], 4u);
}

TEST(Lookahead, BudgetFullyAllocatedWhenUtilityExhausted)
{
    // Flat curves: no utility anywhere, but hardware partitioning
    // needs the space assigned somewhere.
    LookaheadInput a, b;
    a.curve = std::vector<double>(11, 100.0);
    b.curve = std::vector<double>(11, 100.0);
    auto alloc = lookaheadAllocate({a, b}, 10);
    EXPECT_EQ(total(alloc), 10u);
}

TEST(Lookahead, EmptyCurvesStillAllocate)
{
    LookaheadInput a, b; // no UMON data yet
    auto alloc = lookaheadAllocate({a, b}, 8);
    EXPECT_LE(total(alloc), 8u);
}

class LookaheadBudgets : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LookaheadBudgets, NeverOverAllocates)
{
    std::uint64_t budget = GetParam();
    LookaheadInput a, b, c;
    a.curve = linearCurve(500, 0, 9);
    b.curve = {800, 800, 800, 100, 100, 100, 100, 50, 0};
    c.curve = linearCurve(50, 45, 9);
    auto alloc = lookaheadAllocate({a, b, c}, budget);
    EXPECT_LE(total(alloc), budget);
}

INSTANTIATE_TEST_SUITE_P(Budgets, LookaheadBudgets,
                         ::testing::Values(0u, 1u, 5u, 12u, 24u, 100u));

} // namespace
} // namespace ubik
