/**
 * @file
 * Tests for FeedbackPolicy, the long-term-adaptation QoS baseline:
 * controller direction, deadband, clamping, batch allocation, and the
 * one-interval-late reaction that makes it unsuitable for tails.
 */

#include <gtest/gtest.h>

#include "policy/feedback_policy.h"
#include "policy/policy_util.h"

#include "../support/test_harness.h"

namespace ubik {
namespace {

using test::PolicyHarness;

constexpr Cycles kDeadline = 1000000;

/** Feed `n` completed requests at a fixed latency. */
void
feedLatencies(FeedbackPolicy &p, AppId app, Cycles latency, int n = 20)
{
    for (int i = 0; i < n; i++)
        p.onRequestComplete(app, latency);
}

TEST(FeedbackPolicy, StartsFromStaticTarget)
{
    PolicyHarness h(24576, 2);
    h.makeLc(0, 8192, kDeadline);
    FeedbackPolicy p(*h.scheme, h.monitors);
    EXPECT_EQ(p.allocBuckets(0), linesToBuckets(8192, 24576));
    EXPECT_STREQ(p.name(), "Feedback");
}

TEST(FeedbackPolicy, GrowsWhenViolatingDeadline)
{
    PolicyHarness h(24576, 2);
    h.makeLc(0, 4096, kDeadline);
    FeedbackPolicy p(*h.scheme, h.monitors);
    std::uint64_t before = p.allocBuckets(0);
    feedLatencies(p, 0, 2 * kDeadline); // 2x over target
    h.refreshProfiles();
    p.reconfigure(0);
    EXPECT_GT(p.allocBuckets(0), before);
    EXPECT_EQ(h.scheme->targetSize(1),
              bucketsToLines(p.allocBuckets(0), 24576));
}

TEST(FeedbackPolicy, ShrinksWhenComfortable)
{
    PolicyHarness h(24576, 2);
    h.makeLc(0, 8192, kDeadline);
    FeedbackPolicy p(*h.scheme, h.monitors);
    std::uint64_t before = p.allocBuckets(0);
    feedLatencies(p, 0, kDeadline / 4); // far below target
    h.refreshProfiles();
    p.reconfigure(0);
    EXPECT_LT(p.allocBuckets(0), before);
}

TEST(FeedbackPolicy, DeadbandHoldsNearTarget)
{
    // Just under the deadline but above the comfort fraction:
    // neither grow nor shrink (anti-thrash deadband).
    PolicyHarness h(24576, 2);
    h.makeLc(0, 8192, kDeadline);
    FeedbackConfig cfg;
    cfg.comfortFrac = 0.8;
    FeedbackPolicy p(*h.scheme, h.monitors, cfg);
    std::uint64_t before = p.allocBuckets(0);
    feedLatencies(p, 0, static_cast<Cycles>(0.9 * kDeadline));
    h.refreshProfiles();
    p.reconfigure(0);
    EXPECT_EQ(p.allocBuckets(0), before);
}

TEST(FeedbackPolicy, StepIsClamped)
{
    PolicyHarness h(24576, 2);
    h.makeLc(0, 4096, kDeadline);
    FeedbackConfig cfg;
    cfg.maxStepBuckets = 4;
    FeedbackPolicy p(*h.scheme, h.monitors, cfg);
    std::uint64_t before = p.allocBuckets(0);
    feedLatencies(p, 0, 100 * kDeadline); // catastrophic violation
    h.refreshProfiles();
    p.reconfigure(0);
    EXPECT_EQ(p.allocBuckets(0), before + 4);
}

TEST(FeedbackPolicy, AllocationCappedPerLcApp)
{
    PolicyHarness h(24576, 2);
    h.makeLc(0, 4096, kDeadline);
    h.makeLc(1, 4096, kDeadline);
    FeedbackPolicy p(*h.scheme, h.monitors);
    // Persistent violations grow the allocation...
    for (int i = 0; i < 50; i++) {
        feedLatencies(p, 0, 10 * kDeadline);
        feedLatencies(p, 1, 10 * kDeadline);
        h.refreshProfiles();
        p.reconfigure(0);
    }
    // ...but never beyond an even split between the LC apps.
    EXPECT_LE(p.allocBuckets(0), kBuckets / 2);
    EXPECT_LE(p.allocBuckets(1), kBuckets / 2);
}

TEST(FeedbackPolicy, NeverShrinksToZero)
{
    PolicyHarness h(24576, 2);
    h.makeLc(0, 2048, kDeadline);
    FeedbackPolicy p(*h.scheme, h.monitors);
    for (int i = 0; i < 60; i++) {
        feedLatencies(p, 0, 1); // absurdly comfortable
        h.refreshProfiles();
        p.reconfigure(0);
    }
    EXPECT_GE(p.allocBuckets(0), 1u);
    EXPECT_GE(h.scheme->targetSize(1), linesPerBucket(24576));
}

TEST(FeedbackPolicy, HoldsAllocationWithNoRequests)
{
    // An idle interval gives the controller no signal; allocation
    // must hold (not decay), unlike UCP's low-utility collapse.
    PolicyHarness h(24576, 2);
    h.makeLc(0, 8192, kDeadline);
    FeedbackPolicy p(*h.scheme, h.monitors);
    std::uint64_t before = p.allocBuckets(0);
    h.feedZipf(1, 3000, 0.9, 50000); // only the batch app runs
    h.refreshProfiles();
    p.reconfigure(0);
    EXPECT_EQ(p.allocBuckets(0), before);
}

TEST(FeedbackPolicy, BatchAppsShareTheRemainder)
{
    PolicyHarness h(24576, 3);
    h.makeLc(0, 8192, kDeadline);
    FeedbackPolicy p(*h.scheme, h.monitors);
    h.feedZipf(1, 3000, 0.9, 50000);
    h.feedZipf(2, 3000, 0.9, 50000);
    h.refreshProfiles();
    p.reconfigure(0);
    std::uint64_t lc = h.scheme->targetSize(1);
    std::uint64_t b1 = h.scheme->targetSize(2);
    std::uint64_t b2 = h.scheme->targetSize(3);
    EXPECT_GT(b1, 0u);
    EXPECT_GT(b2, 0u);
    EXPECT_LE(lc + b1 + b2, 24576u);
    EXPECT_GE(lc + b1 + b2, 24576u - 3 * linesPerBucket(24576));
}

TEST(FeedbackPolicy, ReactsOneIntervalLate)
{
    // The §2.1 pathology this baseline exists to demonstrate: the
    // burst's own interval sees no growth; relief arrives only at
    // the *next* reconfiguration, after the tail damage is done.
    PolicyHarness h(24576, 2);
    h.makeLc(0, 4096, kDeadline);
    FeedbackPolicy p(*h.scheme, h.monitors);
    std::uint64_t during_burst = p.allocBuckets(0);
    feedLatencies(p, 0, 3 * kDeadline); // the burst suffers...
    h.refreshProfiles();
    p.reconfigure(0);
    // ...and only now does the allocation react.
    EXPECT_EQ(during_burst, linesToBuckets(4096, 24576));
    EXPECT_GT(p.allocBuckets(0), during_burst);
}

TEST(FeedbackPolicy, RejectsBadConfig)
{
    PolicyHarness h(4096, 1);
    FeedbackConfig cfg;
    cfg.gain = 0;
    EXPECT_EXIT(FeedbackPolicy(*h.scheme, h.monitors, cfg),
                testing::ExitedWithCode(1), "gain");
    cfg = {};
    cfg.comfortFrac = 1.0;
    EXPECT_EXIT(FeedbackPolicy(*h.scheme, h.monitors, cfg),
                testing::ExitedWithCode(1), "comfort");
}

} // namespace
} // namespace ubik
