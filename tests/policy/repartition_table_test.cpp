/**
 * @file
 * Tests for the repartitioning table (Fig 8): fast incremental
 * reallocation of batch space around the Lookahead anchor.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "policy/repartition_table.h"

namespace ubik {
namespace {

std::vector<LookaheadInput>
twoApps()
{
    LookaheadInput a, b;
    // App a: strong initial utility, then flat.
    a.curve = {1000, 400, 200, 120, 100, 95, 92, 90, 89, 88, 88};
    // App b: gentle continuous utility.
    b.curve = {500, 450, 400, 350, 300, 250, 200, 150, 100, 50, 0};
    return {a, b};
}

TEST(RepartitionTable, InvalidBeforeBuild)
{
    RepartitionTable t;
    EXPECT_FALSE(t.valid());
}

TEST(RepartitionTable, AllocationSumsToBudget)
{
    RepartitionTable t;
    t.build(twoApps(), 5, 10);
    for (std::uint64_t b = 0; b <= 10; b++) {
        auto a = t.allocationAt(b);
        EXPECT_EQ(std::accumulate(a.begin(), a.end(),
                                  std::uint64_t{0}),
                  b);
    }
}

TEST(RepartitionTable, AllocationsMonotoneInBudget)
{
    // Walking the table up can only grow each partition: that is what
    // makes incremental resizing a pure walk (no shuffling).
    RepartitionTable t;
    t.build(twoApps(), 5, 10);
    auto prev = t.allocationAt(0);
    for (std::uint64_t b = 1; b <= 10; b++) {
        auto cur = t.allocationAt(b);
        for (std::size_t i = 0; i < cur.size(); i++)
            EXPECT_GE(cur[i], prev[i]);
        prev = cur;
    }
}

TEST(RepartitionTable, MarginalPartMatchesAllocationDiff)
{
    RepartitionTable t;
    t.build(twoApps(), 5, 10);
    for (std::uint64_t b = 0; b < 10; b++) {
        auto lo = t.allocationAt(b);
        auto hi = t.allocationAt(b + 1);
        std::size_t p = t.marginalPart(b);
        EXPECT_EQ(hi[p], lo[p] + 1);
    }
}

TEST(RepartitionTable, MissesNonIncreasing)
{
    RepartitionTable t;
    t.build(twoApps(), 5, 10);
    for (std::uint64_t b = 1; b <= 10; b++)
        EXPECT_LE(t.missesAt(b), t.missesAt(b - 1) + 1e-9);
}

TEST(RepartitionTable, MissesMatchCurvesAtEndpoints)
{
    auto inputs = twoApps();
    RepartitionTable t;
    t.build(inputs, 5, 10);
    EXPECT_DOUBLE_EQ(t.missesAt(0),
                     inputs[0].curve[0] + inputs[1].curve[0]);
}

TEST(RepartitionTable, AnchorMatchesLookahead)
{
    auto inputs = twoApps();
    RepartitionTable t;
    const std::uint64_t anchor = 6;
    t.build(inputs, anchor, 10);
    auto expect = lookaheadAllocate(inputs, anchor);
    auto got = t.allocationAt(anchor);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); i++)
        EXPECT_EQ(got[i], expect[i]);
}

TEST(RepartitionTable, GreedyGivesMarginalBucketToBestApp)
{
    // Above the anchor, each extra bucket goes to the larger marginal
    // gain; with app b's linear 50/bucket vs app a's tiny tail, b
    // must receive the buckets just above the anchor.
    auto inputs = twoApps();
    RepartitionTable t;
    t.build(inputs, 4, 10);
    auto a4 = t.allocationAt(4);
    auto a5 = t.allocationAt(5);
    EXPECT_EQ(a5[1], a4[1] + 1);
}

TEST(RepartitionTable, BudgetBeyondMaxClamps)
{
    RepartitionTable t;
    t.build(twoApps(), 5, 10);
    auto a = t.allocationAt(200);
    EXPECT_EQ(std::accumulate(a.begin(), a.end(), std::uint64_t{0}),
              10u);
    EXPECT_DOUBLE_EQ(t.missesAt(200), t.missesAt(10));
}

TEST(RepartitionTable, SinglePartitionTakesEverything)
{
    LookaheadInput only;
    only.curve = {100, 50, 25, 12, 6, 3, 1, 0, 0, 0, 0};
    RepartitionTable t;
    t.build({only}, 5, 10);
    for (std::uint64_t b = 0; b <= 10; b++)
        EXPECT_EQ(t.allocationAt(b)[0], b);
}

class RepartAnchors : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RepartAnchors, TableConsistentForAnyAnchor)
{
    RepartitionTable t;
    t.build(twoApps(), GetParam(), 10);
    // Full-budget allocation must use the whole table regardless of
    // where the anchor sat.
    auto a = t.allocationAt(10);
    EXPECT_EQ(std::accumulate(a.begin(), a.end(), std::uint64_t{0}),
              10u);
    for (std::uint64_t b = 1; b <= 10; b++)
        EXPECT_LE(t.missesAt(b), t.missesAt(b - 1) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Anchors, RepartAnchors,
                         ::testing::Values(0u, 1u, 5u, 9u, 10u));

} // namespace
} // namespace ubik
