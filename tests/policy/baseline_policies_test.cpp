/**
 * @file
 * Tests for the baseline policies (§4): UCP, StaticLC, OnOff, and the
 * no-op LRU policy, each driven through the PolicyHarness.
 */

#include <gtest/gtest.h>

#include "policy/lru_policy.h"
#include "policy/onoff_policy.h"
#include "policy/policy_util.h"
#include "policy/static_lc_policy.h"
#include "policy/ucp_policy.h"

#include "../support/test_harness.h"

namespace ubik {
namespace {

using test::PolicyHarness;

TEST(PolicyUtil, BucketConversionsRoundTrip)
{
    const std::uint64_t total = 24576;
    EXPECT_EQ(linesPerBucket(total), 96u);
    EXPECT_EQ(bucketsToLines(10, total), 960u);
    EXPECT_EQ(linesToBuckets(960, total), 10u);
    // Rounding: 47 lines on 96-line buckets -> 0; 49 -> 1.
    EXPECT_EQ(linesToBuckets(47, total), 0u);
    EXPECT_EQ(linesToBuckets(49, total), 1u);
}

TEST(PolicyUtil, TinyCacheBucketFloor)
{
    EXPECT_EQ(linesPerBucket(10), 1u); // never zero
}

TEST(LruPolicy, DoesNothing)
{
    PolicyHarness h(4096, 2);
    LruPolicy p(*h.scheme, h.monitors);
    EXPECT_STREQ(p.name(), "LRU");
    auto t0 = h.scheme->targetSize(1);
    p.reconfigure(0);
    p.onActive(0, 0);
    p.onIdle(0, 0);
    EXPECT_EQ(h.scheme->targetSize(1), t0);
}

TEST(UcpPolicy, AllocatesWholeCache)
{
    PolicyHarness h(4096, 3);
    UcpPolicy p(*h.scheme, h.monitors);
    h.feedZipf(0, 2000, 0.9, 50000);
    h.feedZipf(1, 2000, 0.9, 50000);
    h.feedZipf(2, 2000, 0.9, 50000);
    h.refreshProfiles();
    p.reconfigure(0);
    std::uint64_t sum = 0;
    for (AppId a = 0; a < 3; a++)
        sum += h.scheme->targetSize(a + 1);
    // Everything (modulo bucket rounding) is handed out.
    EXPECT_GE(sum, 4096u - 3 * linesPerBucket(4096));
    EXPECT_LE(sum, 4096u);
}

TEST(UcpPolicy, CacheHungryAppWins)
{
    PolicyHarness h(4096, 2);
    UcpPolicy p(*h.scheme, h.monitors);
    // App 0: big skewed working set (lots of utility); app 1 streams.
    h.feedZipf(0, 3000, 0.9, 80000);
    h.feedStream(1, 80000);
    h.refreshProfiles();
    p.reconfigure(0);
    EXPECT_GT(h.scheme->targetSize(1), 2 * h.scheme->targetSize(2));
}

TEST(UcpPolicy, IgnoresLcStatus)
{
    // The paper's core complaint about UCP: an idle LC app's low
    // utility reads as "give it nothing".
    PolicyHarness h(4096, 2);
    h.makeLc(0, 2048, 1000000);
    UcpPolicy p(*h.scheme, h.monitors);
    // LC app idle all interval: no accesses at all.
    h.feedZipf(1, 3000, 0.9, 80000);
    h.refreshProfiles();
    p.reconfigure(0);
    // The batch app gets nearly everything despite the LC target.
    EXPECT_LT(h.scheme->targetSize(1), 2048u / 2);
}

TEST(StaticLcPolicy, LcTargetPinnedRegardlessOfActivity)
{
    PolicyHarness h(4096, 3);
    h.makeLc(0, 2048, 1000000);
    StaticLcPolicy p(*h.scheme, h.monitors);
    h.feedZipf(1, 3000, 0.9, 60000);
    h.feedZipf(2, 3000, 0.9, 60000);
    h.refreshProfiles();
    h.monitors[0].active = false; // idle: StaticLC must not care
    p.reconfigure(0);
    std::uint64_t lc = h.scheme->targetSize(1);
    EXPECT_NEAR(static_cast<double>(lc), 2048.0,
                static_cast<double>(linesPerBucket(4096)));
    // Batch apps share the remainder.
    std::uint64_t batch = h.scheme->targetSize(2) +
                          h.scheme->targetSize(3);
    EXPECT_LE(batch, 4096u - lc);
    EXPECT_GT(batch, (4096u - lc) / 2);
}

TEST(StaticLcPolicy, IdleActiveHooksAreNoOps)
{
    PolicyHarness h(4096, 2);
    h.makeLc(0, 2048, 1000000);
    StaticLcPolicy p(*h.scheme, h.monitors);
    h.feedZipf(1, 3000, 0.9, 40000);
    h.refreshProfiles();
    p.reconfigure(0);
    auto lc = h.scheme->targetSize(1);
    p.onIdle(0, 100);
    EXPECT_EQ(h.scheme->targetSize(1), lc);
    p.onActive(0, 200);
    EXPECT_EQ(h.scheme->targetSize(1), lc);
}

TEST(OnOffPolicy, FullTargetWhenActiveZeroWhenIdle)
{
    PolicyHarness h(4096, 2);
    h.makeLc(0, 2048, 1000000);
    OnOffPolicy p(*h.scheme, h.monitors);
    h.feedZipf(1, 3000, 0.9, 40000);
    h.refreshProfiles();
    h.monitors[0].active = true;
    p.reconfigure(0);
    EXPECT_EQ(h.scheme->targetSize(1), 2048u);

    h.monitors[0].active = false;
    p.onIdle(0, 100);
    EXPECT_EQ(h.scheme->targetSize(1), 0u);
    // Freed space flows to the batch app.
    EXPECT_GE(h.scheme->targetSize(2),
              4096u - 2 * linesPerBucket(4096));

    h.monitors[0].active = true;
    p.onActive(0, 200);
    EXPECT_EQ(h.scheme->targetSize(1), 2048u);
}

TEST(OnOffPolicy, PrecomputesAllActiveSubsets)
{
    PolicyHarness h(8192, 4);
    h.makeLc(0, 2048, 1000000);
    h.makeLc(1, 2048, 1000000);
    OnOffPolicy p(*h.scheme, h.monitors);
    h.feedZipf(2, 3000, 0.9, 40000);
    h.feedZipf(3, 3000, 0.9, 40000);
    h.refreshProfiles();
    h.monitors[0].active = true;
    h.monitors[1].active = true;
    p.reconfigure(0);

    // Toggle through all four subsets; batch targets must adapt
    // instantly (precomputed), and the total must stay within cache.
    struct Case
    {
        bool a0, a1;
    };
    for (Case c : {Case{true, true}, Case{true, false},
                   Case{false, true}, Case{false, false}}) {
        h.monitors[0].active = c.a0;
        h.monitors[1].active = c.a1;
        p.onIdle(0, 0); // applyCurrent() refresh via any hook
        std::uint64_t sum = 0;
        for (PartId q = 1; q <= 4; q++)
            sum += h.scheme->targetSize(q);
        EXPECT_LE(sum, 8192u + 4 * linesPerBucket(8192));
        EXPECT_EQ(h.scheme->targetSize(1), c.a0 ? 2048u : 0u);
        EXPECT_EQ(h.scheme->targetSize(2), c.a1 ? 2048u : 0u);
    }
}

TEST(PolicyNames, AreStable)
{
    PolicyHarness h(1024, 2);
    EXPECT_STREQ(UcpPolicy(*h.scheme, h.monitors).name(), "UCP");
    EXPECT_STREQ(StaticLcPolicy(*h.scheme, h.monitors).name(),
                 "StaticLC");
    EXPECT_STREQ(OnOffPolicy(*h.scheme, h.monitors).name(), "OnOff");
}

} // namespace
} // namespace ubik
