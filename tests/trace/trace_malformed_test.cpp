/**
 * @file
 * Malformed-input hardening for the trace decoders (satellite of the
 * streaming-ingestion refactor): truncated varints, overlong/overflow
 * varints, hostile address deltas, missing END footers, corrupt v2
 * chunks (checksum flips, count mismatches, short payloads), and
 * byte-level truncation sweeps must all produce a clean fatal() with
 * a precise message — never UB, a hang, or a silently wrong trace.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "trace/access_trace.h"
#include "trace/trace_reader.h"
#include "workload/trace_capture.h"

namespace ubik {
namespace {

/** Arm a failpoint schedule for one test; disarm on scope exit.
 *  Death-test children fork with the schedule armed, which is
 *  exactly what lets EXPECT_DEATH prove the fatal message. */
struct FailpointGuard
{
    explicit FailpointGuard(const char *sched)
    {
        failpointConfigure(sched);
    }
    ~FailpointGuard() { failpointReset(); }
};

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

std::vector<std::uint8_t>
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in), {});
}

void
writeBytes(const std::string &path, const std::vector<std::uint8_t> &b)
{
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char *>(b.data()),
              static_cast<std::streamsize>(b.size()));
}

TraceData
smallTrace()
{
    TraceData td;
    for (int r = 0; r < 4; r++) {
        td.requestWork.push_back(1000.0 * (r + 1));
        td.requestStart.push_back(td.accesses.size());
        for (int i = 0; i < 5; i++)
            td.accesses.push_back(
                static_cast<Addr>(r * 100 + i * 7 + 3));
    }
    return td;
}

/** A valid small v2 file's bytes. */
std::vector<std::uint8_t>
v2Bytes(const std::string &tag)
{
    std::string path = tmpPath(tag + ".ubtr");
    writeTrace(smallTrace(), path);
    return readBytes(path);
}

using TraceMalformedDeath = ::testing::Test;

TEST(TraceMalformedDeath, OverlongVarintIsOverflowNotUB)
{
    // 10 continuation bytes with payload bits beyond 2^64: must be
    // the "varint overflow" error, not a silent wrap or shift UB.
    std::vector<std::uint8_t> b = {'U', 'B', 'T', 'R', 1,
                                   // REQUEST work=1.0
                                   0x01, 0, 0, 0, 0, 0, 0, 0xf0, 0x3f,
                                   0x02};
    for (int i = 0; i < 9; i++)
        b.push_back(0xff);
    b.push_back(0x7f);
    std::string path = tmpPath("overlong.ubtr");
    writeBytes(path, b);
    EXPECT_DEATH(readTrace(path), "varint overflow");
}

TEST(TraceMalformedDeath, ContinuingTenthVarintByteIsOverflowNotUB)
{
    // 10 bare continuation bytes (0x80: no payload in 0x7e) followed
    // by a terminator: a naive guard that only checks payload bits
    // would keep shifting past 64 bits — UB. Must be the overflow
    // error.
    std::vector<std::uint8_t> b = {'U', 'B', 'T', 'R', 1,
                                   // REQUEST work=1.0
                                   0x01, 0, 0, 0, 0, 0, 0, 0xf0, 0x3f,
                                   0x02};
    for (int i = 0; i < 10; i++)
        b.push_back(0x80);
    b.push_back(0x00);
    std::string path = tmpPath("contbyte.ubtr");
    writeBytes(path, b);
    EXPECT_DEATH(readTrace(path), "varint overflow");
}

TEST(TraceMalformed, MaxVarintStillDecodes)
{
    // The guard must not reject the legitimate 10-byte encoding of
    // 2^64-1: a +2^63 delta reads as INT64_MIN, which zigzags to all
    // ones — 9 continuation bytes + final byte 0x01 at shift 63.
    TraceData td;
    td.requestWork.push_back(1.0);
    td.requestStart.push_back(0);
    td.accesses = {0, 1ull << 63, 0};
    std::string path = tmpPath("maxvarint.ubtr");
    writeTrace(td, path);
    EXPECT_EQ(readTrace(path).accesses, td.accesses);
}

TEST(TraceMalformed, MaxDeltasWrapDeterministically)
{
    // Deltas that drive the running address past 2^63 and back: the
    // decoder's modular arithmetic must reproduce the writer's
    // addresses exactly (this is defined behaviour, not an error).
    TraceData td;
    td.requestWork.push_back(10.0);
    td.requestStart.push_back(0);
    td.accesses = {0,
                   ~0ull >> 1,                // +2^63-1
                   (~0ull >> 1) + (1ull << 62), // further up
                   5,                         // huge negative delta
                   ~0ull};                    // max address
    for (const char *fmt : {"v1", "v2"}) {
        std::string path = tmpPath(std::string("wrap.") + fmt +
                                   ".ubtr");
        writeTrace(td, path,
                   TraceWriterOptions{
                       static_cast<std::uint8_t>(fmt[1] - '0'),
                       64 << 10});
        TraceData rd = readTrace(path);
        EXPECT_EQ(rd.accesses, td.accesses) << fmt;
    }
}

TEST(TraceMalformedDeath, V2MissingEndFooter)
{
    auto b = v2Bytes("noend");
    b.resize(b.size() - 3); // chop the END record
    std::string path = tmpPath("noend_cut.ubtr");
    writeBytes(path, b);
    EXPECT_DEATH(readTrace(path), "truncated|missing END");
}

TEST(TraceMalformedDeath, V2ChecksumFlipIsDetected)
{
    auto b = v2Bytes("crc");
    // Flip one payload byte near the middle of the file: the chunk
    // checksum must catch it before any record is believed.
    b[b.size() / 2] ^= 0x40;
    std::string path = tmpPath("crc_flip.ubtr");
    writeBytes(path, b);
    EXPECT_DEATH(readTrace(path),
                 "checksum mismatch|record count mismatch|truncated|"
                 "unknown record|varint overflow|footer mismatch");
}

TEST(TraceMalformedDeath, V2HeaderCountMismatch)
{
    auto b = v2Bytes("count");
    // Byte 5 is the CHUNK tag; bytes 6.. are payloadBytes, then the
    // request count varint. This trace is small, so each varint is
    // one byte; bump the request count and fix nothing else.
    ASSERT_EQ(b[5], 0x04);
    std::size_t pos = 6;
    while (b[pos] & 0x80)
        pos++;
    pos++; // now at the request-count varint
    ASSERT_LT(b[pos], 0x7f);
    b[pos]++;
    std::string path = tmpPath("count_bump.ubtr");
    writeBytes(path, b);
    EXPECT_DEATH(readTrace(path), "record count mismatch");
}

TEST(TraceMalformedDeath, ImplausibleChunkHeaderRejectedBeforeAllocating)
{
    // A CHUNK header claiming a terabyte payload inside a tiny file
    // must fail the plausibility bounds (file size, record-derived
    // byte limits) up front — not attempt the allocation.
    std::vector<std::uint8_t> b = {'U', 'B', 'T', 'R', 2, 0x04};
    std::uint64_t huge = 1ull << 40;
    while (huge >= 0x80) {
        b.push_back(static_cast<std::uint8_t>(huge & 0x7f) | 0x80);
        huge >>= 7;
    }
    b.push_back(static_cast<std::uint8_t>(huge));
    b.push_back(1); // requests in chunk
    b.push_back(1); // accesses in chunk
    for (int i = 0; i < 8; i++)
        b.push_back(0); // checksum (never reached)
    std::string path = tmpPath("hugechunk.ubtr");
    writeBytes(path, b);
    EXPECT_DEATH(readTrace(path), "implausible chunk header");
}

TEST(TraceMalformedDeath, V2TruncatedChunkPayload)
{
    auto b = v2Bytes("short");
    b.resize(b.size() / 2); // cut inside the chunk payload
    std::string path = tmpPath("short_cut.ubtr");
    writeBytes(path, b);
    EXPECT_DEATH(readTrace(path), "truncated");
}

TEST(TraceMalformedDeath, V2UnknownTopLevelRecord)
{
    TraceData td = smallTrace();
    std::string base = tmpPath("unk.ubtr");
    writeTrace(td, base);
    auto b = readBytes(base);
    ASSERT_EQ(b[5], 0x04);
    b[5] = 0x5a; // neither CHUNK nor END
    std::string path = tmpPath("unk_rec.ubtr");
    writeBytes(path, b);
    EXPECT_DEATH(readTrace(path), "unknown record");
}

TEST(TraceMalformedDeath, TruncationSweepAlwaysCleanlyFatal)
{
    // Every strict prefix of a valid v2 file must die with a precise
    // decoder message (matched below), not hang, crash, or return.
    auto b = v2Bytes("sweep");
    ASSERT_GT(b.size(), 16u);
    for (std::size_t cut = 0; cut < b.size();
         cut += 1 + b.size() / 24) {
        auto prefix = b;
        prefix.resize(cut);
        std::string path = tmpPath("sweep_cut.ubtr");
        writeBytes(path, prefix);
        EXPECT_DEATH(readTrace(path),
                     "bad magic|unsupported version|truncated|"
                     "missing END")
            << "cut at " << cut;
    }
}

TEST(TraceMalformedDeath, V1TruncationSweepAlwaysCleanlyFatal)
{
    std::string base = tmpPath("sweep1.ubtr");
    writeTrace(smallTrace(), base, TraceWriterOptions{1, 64 << 10});
    auto b = readBytes(base);
    for (std::size_t cut = 0; cut < b.size();
         cut += 1 + b.size() / 16) {
        auto prefix = b;
        prefix.resize(cut);
        std::string path = tmpPath("sweep1_cut.ubtr");
        writeBytes(path, prefix);
        EXPECT_DEATH(readTrace(path),
                     "bad magic|unsupported version|truncated|"
                     "missing END|access before first request")
            << "cut at " << cut;
    }
}

TEST(TraceMalformedDeath, AccessBeforeRequestInsideChunk)
{
    // Handcraft a v2 chunk whose first record is an ACCESS.
    std::vector<std::uint8_t> payload = {0x02, 0x02}; // delta +1
    std::vector<std::uint8_t> b = {'U', 'B', 'T', 'R', 2, 0x04};
    b.push_back(static_cast<std::uint8_t>(payload.size()));
    b.push_back(0); // requests in chunk
    b.push_back(1); // accesses in chunk
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::uint8_t c : payload) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    for (int i = 0; i < 8; i++)
        b.push_back(static_cast<std::uint8_t>(h >> (8 * i)));
    b.insert(b.end(), payload.begin(), payload.end());
    b.push_back(0x03);
    b.push_back(0);
    b.push_back(1);
    std::string path = tmpPath("orphan2.ubtr");
    writeBytes(path, b);
    EXPECT_DEATH(readTrace(path), "access before first request");
}

TEST(TraceMalformedDeath, EnospcDuringCaptureDiesWithTheCause)
{
    // Trace capture has no graceful degradation — a capture missing
    // bytes is worthless — so a full disk must be a fatal() naming
    // the file and the errno text, not a silent short file.
    FailpointGuard fp("trace.write=err:ENOSPC@1");
    std::string path = tmpPath("enospc.ubtr");
    EXPECT_DEATH(writeTrace(smallTrace(), path),
                 "write error on trace file .*enospc\\.ubtr: "
                 "No space left on device");
}

TEST(TraceMalformedDeath, MidCaptureEnospcAlsoDies)
{
    // Same contract when the disk fills after some bytes landed
    // (the @8+ trigger lets the header and early records through).
    FailpointGuard fp("trace.write=err:ENOSPC@8+");
    std::string path = tmpPath("enospc_mid.ubtr");
    EXPECT_DEATH(writeTrace(smallTrace(), path),
                 "No space left on device");
}

TEST(TraceMalformedDeath, ReadFaultIsDiagnosedAsIoFailureNotTruncation)
{
    // A failing disk and a truncated capture need different operator
    // responses; the reader must not conflate them. The injected
    // fread failure hits the first refill, so the message carries
    // offset 0 and the I/O-failure qualifier.
    std::string path = tmpPath("readfault.ubtr");
    writeTrace(smallTrace(), path);
    FailpointGuard fp("trace.read=err:EIO@1");
    EXPECT_DEATH(readTrace(path),
                 "read error at offset 0 \\(I/O failure, not a "
                 "truncated capture\\)");
}

TEST(TraceMalformedDeath, ChecksumFaultReadsAsCorruptTrace)
{
    // The failpoint simulates a bit flip the disk did not report:
    // same diagnosis as a genuinely corrupt chunk, without having to
    // hand-flip payload bytes.
    std::string path = tmpPath("crcfault.ubtr");
    writeTrace(smallTrace(), path);
    FailpointGuard fp("trace.checksum=err@1");
    EXPECT_DEATH(readTrace(path),
                 "chunk 0 checksum mismatch");
}

TEST(TraceMalformedDeath, StreamedReaderReportsSameErrors)
{
    // The error surface is identical through the batched/prefetching
    // path (errors are raised from the consumer thread).
    auto b = v2Bytes("streamerr");
    b[b.size() / 2] ^= 0x10;
    std::string path = tmpPath("streamerr_cut.ubtr");
    writeBytes(path, b);
    auto readStreamed = [&path] {
        TraceReaderOptions opt;
        opt.batchRecords = 3;
        opt.prefetch = true;
        TraceReader reader(path, opt);
        TraceBatch batch;
        while (reader.next(batch)) {
        }
    };
    EXPECT_DEATH(readStreamed(),
                 "checksum mismatch|record count mismatch|truncated|"
                 "unknown record|varint overflow|footer mismatch");
}

} // namespace
} // namespace ubik
