/**
 * @file
 * Tests for the stack-distance trace analyzer, including the key
 * property: the Fenwick-tree Mattson pass must agree *exactly* with a
 * brute-force fully-associative LRU simulation at every cache size.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <unordered_map>
#include <vector>

#include "trace/trace_analyzer.h"
#include "common/rng.h"

namespace ubik {
namespace {

TraceData
singleRequestTrace(const std::vector<Addr> &addrs, double work = 1000.0)
{
    TraceData td;
    td.requestWork.push_back(work);
    td.requestStart.push_back(0);
    td.accesses = addrs;
    return td;
}

/** Reference: simulate a fully-associative LRU cache of `size`. */
std::uint64_t
bruteForceMisses(const std::vector<Addr> &addrs, std::uint64_t size)
{
    std::list<Addr> lru; // front = MRU
    std::unordered_map<Addr, std::list<Addr>::iterator> where;
    std::uint64_t misses = 0;
    for (Addr a : addrs) {
        auto it = where.find(a);
        if (it != where.end()) {
            lru.erase(it->second);
        } else {
            misses++;
            if (lru.size() >= size && size > 0) {
                where.erase(lru.back());
                lru.pop_back();
            }
        }
        if (size > 0) {
            lru.push_front(a);
            where[a] = lru.begin();
        }
    }
    return misses;
}

TEST(TraceAnalyzer, ColdMissesOnly)
{
    auto td = singleRequestTrace({1, 2, 3, 4, 5});
    TraceAnalysis an = analyzeTrace(td);
    EXPECT_EQ(an.accesses, 5u);
    EXPECT_EQ(an.coldMisses, 5u);
    EXPECT_EQ(an.footprintLines, 5u);
    EXPECT_EQ(an.missesAtSize(100), 5u);
    EXPECT_TRUE(an.distanceHistogram.empty());
}

TEST(TraceAnalyzer, ImmediateReuseHasDistanceZero)
{
    auto td = singleRequestTrace({7, 7, 7});
    TraceAnalysis an = analyzeTrace(td);
    EXPECT_EQ(an.coldMisses, 1u);
    ASSERT_GE(an.distanceHistogram.size(), 1u);
    EXPECT_EQ(an.distanceHistogram[0], 2u);
    // One line suffices to catch both reuses.
    EXPECT_EQ(an.missesAtSize(1), 1u);
}

TEST(TraceAnalyzer, ClassicStackDistanceExample)
{
    // a b c b a:
    //   a(cold) b(cold) c(cold) b(dist 1: {c}) a(dist 2: {b,c})
    auto td = singleRequestTrace({1, 2, 3, 2, 1});
    TraceAnalysis an = analyzeTrace(td);
    EXPECT_EQ(an.coldMisses, 3u);
    ASSERT_GE(an.distanceHistogram.size(), 3u);
    EXPECT_EQ(an.distanceHistogram[1], 1u);
    EXPECT_EQ(an.distanceHistogram[2], 1u);
    EXPECT_EQ(an.missesAtSize(2), 4u); // the a-reuse misses at 2 lines
    EXPECT_EQ(an.missesAtSize(3), 3u); // hits at 3 lines
}

TEST(TraceAnalyzer, MatchesBruteForceLruProperty)
{
    // The core correctness property, over several random workload
    // shapes (skewed reuse, scans, mixtures) and many cache sizes.
    Rng rng(777);
    for (int iter = 0; iter < 8; iter++) {
        std::vector<Addr> addrs;
        std::uint64_t footprint = 8 + rng.next() % 120;
        std::uint64_t n = 300 + rng.next() % 700;
        bool scan = iter % 3 == 0;
        for (std::uint64_t i = 0; i < n; i++) {
            if (scan && i % 4 == 0)
                addrs.push_back(5000 + i % (footprint * 2));
            else
                addrs.push_back(rng.next() % footprint);
        }
        TraceAnalysis an = analyzeTrace(singleRequestTrace(addrs));
        for (std::uint64_t size : {1ull, 2ull, 3ull, 7ull, 16ull,
                                   63ull, 128ull, 400ull}) {
            EXPECT_EQ(an.missesAtSize(size),
                      bruteForceMisses(addrs, size))
                << "iter " << iter << " size " << size;
        }
    }
}

TEST(TraceAnalyzer, MissCurveAgreesWithMissesAtSize)
{
    Rng rng(42);
    std::vector<Addr> addrs;
    for (int i = 0; i < 2000; i++)
        addrs.push_back(rng.next() % 256);
    TraceAnalysis an = analyzeTrace(singleRequestTrace(addrs));
    MissCurve mc = an.missCurve(33, 512);
    for (std::size_t p = 0; p < mc.points(); p++) {
        std::uint64_t lines = p * mc.linesPerPoint();
        EXPECT_DOUBLE_EQ(mc.values()[p],
                         static_cast<double>(an.missesAtSize(lines)))
            << "point " << p;
    }
}

TEST(TraceAnalyzer, MissCurveIsMonotoneNonIncreasing)
{
    Rng rng(43);
    std::vector<Addr> addrs;
    for (int i = 0; i < 3000; i++)
        addrs.push_back(rng.next() % 500);
    TraceAnalysis an = analyzeTrace(singleRequestTrace(addrs));
    MissCurve mc = an.missCurve(65, 600);
    for (std::size_t p = 1; p < mc.points(); p++)
        EXPECT_LE(mc.values()[p], mc.values()[p - 1]) << p;
}

TEST(TraceAnalyzer, CrossRequestReuseDetected)
{
    // Two requests touching the same hot set: every second-request
    // hit comes from one request ago.
    TraceData td;
    td.requestWork = {100, 100};
    td.requestStart = {0, 4};
    td.accesses = {1, 2, 3, 4, 1, 2, 3, 4};
    TraceAnalysis an = analyzeTrace(td);
    EXPECT_EQ(an.coldMisses, 4u);
    EXPECT_DOUBLE_EQ(an.crossRequestReuse, 1.0);
    EXPECT_EQ(an.hitsByRequestsAgo[1], 4u);
    EXPECT_EQ(an.hitsByRequestsAgo[0], 0u);
}

TEST(TraceAnalyzer, RequestLocalReuseIsNotCrossRequest)
{
    TraceData td;
    td.requestWork = {100};
    td.requestStart = {0};
    td.accesses = {1, 1, 2, 2};
    TraceAnalysis an = analyzeTrace(td);
    EXPECT_DOUBLE_EQ(an.crossRequestReuse, 0.0);
    EXPECT_EQ(an.hitsByRequestsAgo[0], 2u);
}

TEST(TraceAnalyzer, DeepReuseFoldsIntoEightPlus)
{
    // A line touched in request 0 and again in request 10.
    TraceData td;
    for (int r = 0; r < 11; r++) {
        td.requestWork.push_back(10);
        td.requestStart.push_back(td.accesses.size());
        if (r == 0 || r == 10)
            td.accesses.push_back(99);
        else
            td.accesses.push_back(1000 + r);
    }
    TraceAnalysis an = analyzeTrace(td);
    EXPECT_EQ(an.hitsByRequestsAgo[8], 1u);
}

TEST(TraceAnalyzer, DistanceCapFoldsLargeDistances)
{
    // With a tiny tracked-distance cap, far reuses land in the last
    // bucket but total miss accounting at small sizes is unchanged.
    std::vector<Addr> addrs;
    for (int i = 0; i < 100; i++)
        addrs.push_back(i);
    addrs.push_back(0); // distance 99
    TraceAnalysis an =
        analyzeTrace(singleRequestTrace(addrs), /*max_tracked=*/8);
    EXPECT_EQ(an.distanceHistogram.size(), 9u);
    EXPECT_EQ(an.distanceHistogram[8], 1u);
    EXPECT_EQ(an.missesAtSize(4), 101u);
}

TEST(TraceAnalyzer, EmptyTraceIsHarmless)
{
    TraceData td;
    TraceAnalysis an = analyzeTrace(td);
    EXPECT_EQ(an.accesses, 0u);
    EXPECT_EQ(an.coldMisses, 0u);
    EXPECT_DOUBLE_EQ(an.missRatioAtSize(10), 0.0);
}

} // namespace
} // namespace ubik
