/**
 * @file
 * Tests for the CSV export module: quoting, the allocation-trace and
 * latency-CDF dumps, and error handling.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/cmp.h"
#include "trace/csv.h"

namespace ubik {
namespace {

std::string
tmpPath(const char *name)
{
    return testing::TempDir() + "/" + name;
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

TEST(CsvWriter, WritesHeaderAndRows)
{
    std::string path = tmpPath("basic.csv");
    {
        CsvWriter csv(path);
        csv.row(std::vector<std::string>{"a", "b"});
        csv.row(std::vector<double>{1.5, 2.0});
        csv.row(std::vector<double>{3.0, 4.25});
        EXPECT_EQ(csv.rows(), 3u);
        EXPECT_EQ(csv.path(), path);
    }
    auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0], "a,b");
    EXPECT_EQ(lines[1], "1.5,2");
    EXPECT_EQ(lines[2], "3,4.25");
}

TEST(CsvWriter, QuotesSpecialCharacters)
{
    std::string path = tmpPath("quoted.csv");
    {
        CsvWriter csv(path);
        csv.row(std::vector<std::string>{"plain", "with,comma",
                                         "with\"quote"});
    }
    auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], "plain,\"with,comma\",\"with\"\"quote\"");
}

std::string
readWhole(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::string(std::istreambuf_iterator<char>(in), {});
}

TEST(CsvWriter, Rfc4180EmbeddedQuotesAreDoubled)
{
    std::string path = tmpPath("rfc_quotes.csv");
    {
        CsvWriter csv(path);
        csv.row(std::vector<std::string>{"\"", "a\"b\"c", "\"\""});
    }
    EXPECT_EQ(readWhole(path),
              "\"\"\"\",\"a\"\"b\"\"c\",\"\"\"\"\"\"\n");
}

TEST(CsvWriter, Rfc4180EmbeddedNewlinesStayInsideOneField)
{
    std::string path = tmpPath("rfc_newline.csv");
    {
        CsvWriter csv(path);
        csv.row(std::vector<std::string>{"a\nb", "c\r\nd", "e\rf"});
        csv.row(std::vector<std::string>{"next"});
        EXPECT_EQ(csv.rows(), 2u);
    }
    // LF, CRLF, and bare CR are all line breaks per RFC 4180 and must
    // be quoted; the logical row count stays 2.
    EXPECT_EQ(readWhole(path),
              "\"a\nb\",\"c\r\nd\",\"e\rf\"\nnext\n");
}

TEST(CsvWriter, Rfc4180EmptyFieldsStayUnquoted)
{
    std::string path = tmpPath("rfc_empty.csv");
    {
        CsvWriter csv(path);
        csv.row(std::vector<std::string>{"", "mid", ""});
        csv.row(std::vector<std::string>{"", "", ""});
    }
    EXPECT_EQ(readWhole(path), ",mid,\n,,\n");
}

TEST(CsvWriter, Rfc4180CommaOnlyAndMixedFields)
{
    std::string path = tmpPath("rfc_mixed.csv");
    {
        CsvWriter csv(path);
        csv.row(std::vector<std::string>{",", "a,b,", " spaced ",
                                         "quote\"and,comma"});
    }
    // Leading/trailing spaces are data per RFC 4180: never quoted or
    // trimmed.
    EXPECT_EQ(readWhole(path),
              "\",\",\"a,b,\", spaced ,\"quote\"\"and,comma\"\n");
}

TEST(CsvWriter, UnwritablePathIsFatal)
{
    EXPECT_EXIT(CsvWriter("/nonexistent-dir/x.csv"),
                testing::ExitedWithCode(1), "cannot open");
}

TEST(CsvTrace, AllocTraceRoundTrips)
{
    std::vector<AllocSample> trace;
    for (int i = 1; i <= 3; i++) {
        AllocSample s;
        s.cycle = static_cast<Cycles>(i) * 1000;
        s.targetLines = {0, 100u * static_cast<unsigned>(i), 200};
        trace.push_back(s);
    }
    std::string path = tmpPath("alloc.csv");
    writeAllocTrace(trace, path);
    auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_EQ(lines[0], "cycle,ms,part0_lines,part1_lines,part2_lines");
    // Row 2: cycle 2000, parts 0/200/200.
    std::stringstream ss(lines[2]);
    std::string cell;
    std::getline(ss, cell, ',');
    EXPECT_EQ(cell, "2000");
    std::getline(ss, cell, ','); // ms
    std::getline(ss, cell, ',');
    EXPECT_EQ(cell, "0");
    std::getline(ss, cell, ',');
    EXPECT_EQ(cell, "200");
}

TEST(CsvTrace, EmptyAllocTraceWritesHeaderOnly)
{
    std::string path = tmpPath("alloc_empty.csv");
    writeAllocTrace({}, path);
    auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], "cycle,ms");
}

TEST(CsvTrace, LatencyCdfIsMonotone)
{
    LatencyRecorder rec;
    for (Cycles c = 1000; c <= 100000; c += 1000)
        rec.record(c);
    std::string path = tmpPath("cdf.csv");
    writeLatencyCdf(rec, path, 50);
    auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 51u);
    double prev_lat = -1, prev_cdf = -1;
    for (std::size_t i = 1; i < lines.size(); i++) {
        std::stringstream ss(lines[i]);
        std::string cell;
        std::getline(ss, cell, ',');
        double lat = std::stod(cell);
        std::getline(ss, cell, ','); // ms
        std::getline(ss, cell, ',');
        double cdf = std::stod(cell);
        EXPECT_GE(lat, prev_lat);
        EXPECT_GT(cdf, prev_cdf);
        prev_lat = lat;
        prev_cdf = cdf;
    }
    EXPECT_DOUBLE_EQ(prev_cdf, 1.0);
}

TEST(CsvTrace, CdfPointsCappedBySampleCount)
{
    LatencyRecorder rec;
    rec.record(10);
    rec.record(20);
    rec.record(30);
    std::string path = tmpPath("cdf_small.csv");
    writeLatencyCdf(rec, path, 500);
    auto lines = readLines(path);
    EXPECT_EQ(lines.size(), 4u); // header + 3 samples
}

TEST(CsvTrace, EmptyRecorderWritesHeaderOnly)
{
    std::string path = tmpPath("cdf_empty.csv");
    writeLatencyCdf(LatencyRecorder{}, path);
    auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 1u);
}

TEST(WriteMissCurve, DumpsPointsWithRatio)
{
    std::string path = tmpPath("curve.csv");
    MissCurve curve({100.0, 60.0, 30.0, 10.0}, 256);
    writeMissCurve(curve, path, 200.0);
    auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 5u);
    EXPECT_EQ(lines[0], "lines,mb,misses,miss_ratio");
    EXPECT_EQ(lines[1], "0,0,100,0.5");
    // Third point: 512 lines = 512*64/1e6 MB, 30 misses, ratio 0.15.
    EXPECT_EQ(lines[3], "512,0.032768,30,0.15");
}

TEST(WriteMissCurve, OmitsRatioWithoutDenominator)
{
    std::string path = tmpPath("curve_noratio.csv");
    MissCurve curve({10.0, 5.0}, 64);
    writeMissCurve(curve, path);
    auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0], "lines,mb,misses");
    EXPECT_EQ(lines[2], "64,0.004096,5");
}

} // namespace
} // namespace ubik