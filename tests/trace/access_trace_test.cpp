/**
 * @file
 * Tests for the binary access-trace format: roundtrips (including a
 * randomized property sweep), varint/delta edge cases, and corrupt-
 * input rejection (bad magic, bad version, truncation, unknown
 * records, footer mismatches).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "trace/access_trace.h"
#include "common/rng.h"

namespace ubik {
namespace {

std::string
tmpPath(const char *name)
{
    return testing::TempDir() + "/" + name;
}

/** Build a small trace in memory. */
TraceData
makeTrace(const std::vector<std::pair<double, std::vector<Addr>>> &reqs)
{
    TraceData td;
    for (const auto &[work, addrs] : reqs) {
        td.requestWork.push_back(work);
        td.requestStart.push_back(td.accesses.size());
        td.accesses.insert(td.accesses.end(), addrs.begin(),
                           addrs.end());
    }
    return td;
}

void
expectEqual(const TraceData &a, const TraceData &b)
{
    ASSERT_EQ(a.requestWork.size(), b.requestWork.size());
    for (std::size_t i = 0; i < a.requestWork.size(); i++)
        EXPECT_DOUBLE_EQ(a.requestWork[i], b.requestWork[i]) << i;
    EXPECT_EQ(a.requestStart, b.requestStart);
    EXPECT_EQ(a.accesses, b.accesses);
}

std::vector<std::uint8_t>
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in), {});
}

void
writeBytes(const std::string &path, const std::vector<std::uint8_t> &b)
{
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char *>(b.data()),
              static_cast<std::streamsize>(b.size()));
}

TEST(AccessTrace, RoundtripsSimpleTrace)
{
    std::string path = tmpPath("simple.ubtr");
    TraceData td = makeTrace({{1000.0, {1, 2, 3, 2, 1}},
                              {2500.0, {100, 1, 100}}});
    writeTrace(td, path);
    expectEqual(td, readTrace(path));
}

TEST(AccessTrace, RoundtripsEmptyRequests)
{
    std::string path = tmpPath("empty_reqs.ubtr");
    TraceData td = makeTrace({{10.0, {}}, {0.0, {42}}, {5.0, {}}});
    writeTrace(td, path);
    TraceData rd = readTrace(path);
    expectEqual(td, rd);
    EXPECT_EQ(rd.accessesOf(0), 0u);
    EXPECT_EQ(rd.accessesOf(1), 1u);
    EXPECT_EQ(rd.accessesOf(2), 0u);
}

TEST(AccessTrace, RoundtripsExtremeAddressDeltas)
{
    // Max positive/negative deltas stress zigzag + 10-byte varints.
    std::string path = tmpPath("extreme.ubtr");
    TraceData td = makeTrace(
        {{1.0,
          {0, ~0ull >> 1, 0, 1ull << 62, 1, (~0ull >> 1) - 1, 2}}});
    writeTrace(td, path);
    expectEqual(td, readTrace(path));
}

TEST(AccessTrace, RoundtripProperty)
{
    // Randomized traces of varying shape roundtrip bit-exactly.
    Rng rng(12345);
    for (int iter = 0; iter < 20; iter++) {
        TraceData td;
        std::uint64_t reqs = 1 + rng.next() % 50;
        for (std::uint64_t r = 0; r < reqs; r++) {
            td.requestWork.push_back(
                static_cast<double>(rng.next() % 1000000));
            td.requestStart.push_back(td.accesses.size());
            std::uint64_t n = rng.next() % 200;
            for (std::uint64_t i = 0; i < n; i++)
                td.accesses.push_back(rng.next() >> (rng.next() % 40));
        }
        std::string path = tmpPath("prop.ubtr");
        writeTrace(td, path);
        expectEqual(td, readTrace(path));
    }
}

TEST(AccessTrace, WriterCountsMatch)
{
    std::string path = tmpPath("counts.ubtr");
    TraceWriter w(path);
    w.beginRequest(100);
    w.access(1);
    w.access(2);
    w.beginRequest(200);
    w.access(3);
    w.finish();
    EXPECT_EQ(w.requests(), 2u);
    EXPECT_EQ(w.accesses(), 3u);
}

TEST(AccessTrace, ApkiAndTotals)
{
    TraceData td = makeTrace({{1000.0, {1, 2}}, {1000.0, {3, 4}}});
    EXPECT_DOUBLE_EQ(td.totalWork(), 2000.0);
    EXPECT_DOUBLE_EQ(td.apki(), 4.0 / 2000.0 * 1000.0);
}

using AccessTraceDeath = ::testing::Test;

TEST(AccessTraceDeath, RejectsMissingFile)
{
    EXPECT_DEATH(readTrace(tmpPath("nonexistent.ubtr")),
                 "cannot open");
}

TEST(AccessTraceDeath, RejectsBadMagic)
{
    std::string path = tmpPath("badmagic.ubtr");
    writeBytes(path, {'N', 'O', 'P', 'E', 1, 3, 0, 0});
    EXPECT_DEATH(readTrace(path), "bad magic");
}

TEST(AccessTraceDeath, RejectsBadVersion)
{
    std::string path = tmpPath("badver.ubtr");
    writeBytes(path, {'U', 'B', 'T', 'R', 99, 3, 0, 0});
    EXPECT_DEATH(readTrace(path), "unsupported version");
}

TEST(AccessTraceDeath, RejectsTruncation)
{
    std::string path = tmpPath("trunc.ubtr");
    TraceData td = makeTrace({{1000.0, {1, 2, 3, 4, 5}}});
    writeTrace(td, path);
    auto bytes = readBytes(path);
    ASSERT_GT(bytes.size(), 4u);
    bytes.resize(bytes.size() - 3); // chop the footer
    writeBytes(path, bytes);
    EXPECT_DEATH(readTrace(path), "truncated");
}

TEST(AccessTraceDeath, RejectsFooterMismatch)
{
    // A well-formed END record with wrong counts: splice a valid
    // footer from a different trace.
    std::string path = tmpPath("mismatch.ubtr");
    writeBytes(path, {'U', 'B', 'T', 'R', 1,
                      // REQUEST work=10.0 (f64 little-endian)
                      0x01, 0, 0, 0, 0, 0, 0, 0x24, 0x40,
                      0x02, 2,        // ACCESS delta=+1
                      0x03, 1, 5});   // END: claims 5 accesses
    EXPECT_DEATH(readTrace(path), "footer mismatch");
}

TEST(AccessTraceDeath, RejectsUnknownRecord)
{
    std::string path = tmpPath("unknown.ubtr");
    writeBytes(path, {'U', 'B', 'T', 'R', 1, 0x7f});
    EXPECT_DEATH(readTrace(path), "unknown record");
}

TEST(AccessTraceDeath, RejectsAccessBeforeRequest)
{
    std::string path = tmpPath("orphan.ubtr");
    writeBytes(path, {'U', 'B', 'T', 'R', 1, 0x02, 2, 0x03, 0, 1});
    EXPECT_DEATH(readTrace(path), "access before first request");
}

TEST(AccessTraceDeath, WriterRejectsOrphanAccess)
{
    std::string path = tmpPath("worphan.ubtr");
    TraceWriter w(path);
    EXPECT_DEATH(w.access(1), "before any beginRequest");
}

} // namespace
} // namespace ubik
