/**
 * @file
 * Tests for the streaming trace reader and the chunked v2 format:
 * v1/v2 round trips, batch-size and prefetch invariance (streamed
 * ingestion must be bit-identical to the whole-file load), chunk
 * metadata, content hashing, and the streaming analyzer path.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "trace/access_trace.h"
#include "trace/trace_analyzer.h"
#include "trace/trace_reader.h"
#include "workload/trace_capture.h"
#include "common/rng.h"

namespace ubik {
namespace {

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

TraceData
sampleTrace()
{
    LcAppParams p = lc_presets::shore().scaled(16.0);
    return captureLcTrace(p, 60, /*seed=*/7);
}

void
expectEqual(const TraceData &a, const TraceData &b)
{
    ASSERT_EQ(a.requestWork.size(), b.requestWork.size());
    for (std::size_t i = 0; i < a.requestWork.size(); i++)
        EXPECT_DOUBLE_EQ(a.requestWork[i], b.requestWork[i]) << i;
    EXPECT_EQ(a.requestStart, b.requestStart);
    EXPECT_EQ(a.accesses, b.accesses);
}

/** Accumulate a reader's batches back into one TraceData. */
TraceData
drain(TraceReader &reader)
{
    TraceData td;
    TraceBatch batch;
    while (reader.next(batch)) {
        std::uint64_t base = td.accesses.size();
        for (std::size_t i = 0; i < batch.requestWork.size(); i++) {
            td.requestWork.push_back(batch.requestWork[i]);
            td.requestStart.push_back(base + batch.requestPos[i]);
        }
        td.accesses.insert(td.accesses.end(), batch.accesses.begin(),
                           batch.accesses.end());
    }
    return td;
}

TEST(TraceReader, V2RoundTripsAndMatchesV1)
{
    TraceData td = sampleTrace();
    std::string v1 = tmpPath("rt.v1.ubtr");
    std::string v2 = tmpPath("rt.v2.ubtr");
    writeTrace(td, v1, TraceWriterOptions{1, 64 << 10});
    writeTrace(td, v2);

    TraceData fromV1 = readTrace(v1);
    TraceData fromV2 = readTrace(v2);
    expectEqual(td, fromV1);
    expectEqual(td, fromV2);
}

TEST(TraceReader, ContentHashIsEncodingIndependent)
{
    TraceData td = sampleTrace();
    std::string v1 = tmpPath("hash.v1.ubtr");
    std::string v2 = tmpPath("hash.v2.ubtr");
    std::string v2small = tmpPath("hash.v2s.ubtr");
    writeTrace(td, v1, TraceWriterOptions{1, 64 << 10});
    writeTrace(td, v2);
    writeTrace(td, v2small, TraceWriterOptions{2, 128});

    std::uint64_t hashes[3];
    const char *paths[3] = {v1.c_str(), v2.c_str(), v2small.c_str()};
    for (int i = 0; i < 3; i++) {
        TraceReader r(paths[i]);
        drain(r);
        hashes[i] = r.contentHash();
    }
    EXPECT_EQ(hashes[0], hashes[1]);
    EXPECT_EQ(hashes[0], hashes[2]);

    // Any record change moves the hash.
    TraceData other = td;
    other.accesses.back() ^= 1;
    std::string mut = tmpPath("hash.mut.ubtr");
    writeTrace(other, mut);
    TraceReader r(mut);
    drain(r);
    EXPECT_NE(r.contentHash(), hashes[0]);
}

TEST(TraceReader, StreamedEqualsWholeFileAtAnyBatchSizeAndPrefetch)
{
    TraceData td = sampleTrace();
    std::string v2 = tmpPath("stream.v2.ubtr");
    writeTrace(td, v2, TraceWriterOptions{2, 4096}); // many chunks

    for (std::size_t batch : {std::size_t(1), std::size_t(3),
                              std::size_t(64), std::size_t(1000),
                              std::size_t(1) << 16}) {
        for (bool prefetch : {false, true}) {
            TraceReaderOptions opt;
            opt.batchRecords = batch;
            opt.prefetch = prefetch;
            TraceReader reader(v2, opt);
            TraceData streamed = drain(reader);
            expectEqual(td, streamed);
            EXPECT_EQ(reader.requests(), td.requests());
            EXPECT_EQ(reader.accesses(), td.accesses.size());
        }
    }
}

TEST(TraceReader, ChunkMetadataAccountsForEveryRecord)
{
    TraceData td = sampleTrace();
    std::string v2 = tmpPath("chunks.v2.ubtr");
    writeTrace(td, v2, TraceWriterOptions{2, 2048});

    TraceReader reader(v2);
    drain(reader);
    EXPECT_EQ(reader.version(), 2);
    EXPECT_GT(reader.chunks(), 4u); // 2KB chunks => many
    std::uint64_t reqs = 0, accs = 0;
    for (const TraceChunkInfo &c : reader.chunkInfo()) {
        reqs += c.requests;
        accs += c.accesses;
        EXPECT_GT(c.payloadBytes, 0u);
    }
    EXPECT_EQ(reqs, td.requests());
    EXPECT_EQ(accs, td.accesses.size());
}

TEST(TraceReader, V1ReportsNoChunks)
{
    TraceData td = sampleTrace();
    std::string v1 = tmpPath("nochunk.v1.ubtr");
    writeTrace(td, v1, TraceWriterOptions{1, 64 << 10});
    TraceReader reader(v1);
    drain(reader);
    EXPECT_EQ(reader.version(), 1);
    EXPECT_EQ(reader.chunks(), 0u);
}

TEST(TraceReader, EmptyTraceRoundTrips)
{
    TraceData empty;
    std::string path = tmpPath("empty.ubtr");
    writeTrace(empty, path);
    TraceReader reader(path);
    TraceBatch batch;
    EXPECT_FALSE(reader.next(batch));
    EXPECT_FALSE(reader.next(batch)); // repeated EOF stays EOF
    EXPECT_EQ(reader.requests(), 0u);
    EXPECT_EQ(reader.accesses(), 0u);
}

TEST(TraceReader, ReportsTotalWork)
{
    TraceData td = sampleTrace();
    std::string v2 = tmpPath("work.v2.ubtr");
    writeTrace(td, v2);
    TraceReader reader(v2);
    drain(reader);
    EXPECT_DOUBLE_EQ(reader.totalWork(), td.totalWork());
}

TEST(TraceAnalyzerStreaming, StreamedAnalysisMatchesInMemory)
{
    TraceData td = sampleTrace();
    std::string v2 = tmpPath("an.v2.ubtr");
    writeTrace(td, v2, TraceWriterOptions{2, 4096});

    TraceAnalysis whole = analyzeTrace(td);
    for (std::size_t batch :
         {std::size_t(1), std::size_t(513), std::size_t(1) << 16}) {
        for (bool prefetch : {false, true}) {
            TraceReaderOptions opt;
            opt.batchRecords = batch;
            opt.prefetch = prefetch;
            TraceAnalysis streamed =
                analyzeTraceFile(v2, 1 << 22, opt);
            EXPECT_EQ(streamed.accesses, whole.accesses);
            EXPECT_EQ(streamed.requests, whole.requests);
            EXPECT_DOUBLE_EQ(streamed.totalWork, whole.totalWork);
            EXPECT_EQ(streamed.coldMisses, whole.coldMisses);
            EXPECT_EQ(streamed.footprintLines, whole.footprintLines);
            EXPECT_EQ(streamed.distanceHistogram,
                      whole.distanceHistogram);
            EXPECT_EQ(streamed.hitsByRequestsAgo,
                      whole.hitsByRequestsAgo);
            EXPECT_DOUBLE_EQ(streamed.crossRequestReuse,
                             whole.crossRequestReuse);
        }
    }
}

TEST(TraceAnalyzerStreaming, InMemoryAnalysisFillsRequestTotals)
{
    TraceData td = sampleTrace();
    TraceAnalysis an = analyzeTrace(td);
    EXPECT_EQ(an.requests, td.requests());
    EXPECT_DOUBLE_EQ(an.totalWork, td.totalWork());
    EXPECT_NEAR(an.apki(), td.apki(), 1e-12);
}

} // namespace
} // namespace ubik
