/**
 * @file
 * Parameterized property sweeps over the whole trace pipeline, one
 * instantiation per LC preset x requests shape: capture -> serialize
 * -> parse -> analyze -> advise must preserve the stream exactly,
 * keep the analysis internally consistent, and produce sizing
 * reports with the Fig 7 feasibility structure.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/advisor.h"
#include "trace/access_trace.h"
#include "trace/trace_analyzer.h"
#include "workload/trace_capture.h"

namespace ubik {
namespace {

using Param = std::tuple<std::string, std::uint64_t>; // preset, reqs

class TracePipeline : public ::testing::TestWithParam<Param>
{
  protected:
    void
    SetUp() override
    {
        const auto &[name, requests] = GetParam();
        params_ = lc_presets::byName(name).scaled(16.0);
        trace_ = captureLcTrace(params_, requests, /*seed=*/31);
    }

    LcAppParams params_;
    TraceData trace_;
};

TEST_P(TracePipeline, SerializationRoundtripsExactly)
{
    std::string path = testing::TempDir() + "/pipeline.ubtr";
    writeTrace(trace_, path);
    TraceData rd = readTrace(path);
    EXPECT_EQ(rd.accesses, trace_.accesses);
    EXPECT_EQ(rd.requestStart, trace_.requestStart);
    ASSERT_EQ(rd.requestWork.size(), trace_.requestWork.size());
    for (std::size_t i = 0; i < rd.requestWork.size(); i++)
        EXPECT_DOUBLE_EQ(rd.requestWork[i], trace_.requestWork[i]);
}

TEST_P(TracePipeline, AnalysisAccountsForEveryAccess)
{
    TraceAnalysis an = analyzeTrace(trace_);
    EXPECT_EQ(an.accesses, trace_.accesses.size());
    // Cold misses + all histogram entries == accesses.
    std::uint64_t hits = 0;
    for (std::uint64_t h : an.distanceHistogram)
        hits += h;
    EXPECT_EQ(an.coldMisses + hits, an.accesses);
    // hitsByRequestsAgo covers exactly the hits.
    std::uint64_t by_age = 0;
    for (std::uint64_t h : an.hitsByRequestsAgo)
        by_age += h;
    EXPECT_EQ(by_age, hits);
    // Misses at footprint size = cold misses only; at 0 = everything.
    EXPECT_EQ(an.missesAtSize(an.footprintLines + 1), an.coldMisses);
    EXPECT_EQ(an.missesAtSize(0), an.accesses);
}

TEST_P(TracePipeline, MissCurveMonotoneAndAnchored)
{
    TraceAnalysis an = analyzeTrace(trace_);
    MissCurve mc = an.missCurve(129, an.footprintLines + 64);
    for (std::size_t p = 1; p < mc.points(); p++)
        EXPECT_LE(mc.values()[p], mc.values()[p - 1]) << p;
    EXPECT_DOUBLE_EQ(mc.values().front(),
                     static_cast<double>(an.accesses));
    EXPECT_DOUBLE_EQ(mc.values().back(),
                     static_cast<double>(an.coldMisses));
}

TEST_P(TracePipeline, AdvisorReportHasFigSevenStructure)
{
    TraceAnalysis an = analyzeTrace(trace_);
    std::uint64_t target =
        std::max<std::uint64_t>(64, an.footprintLines / 2);

    CoreProfile prof;
    prof.missPenalty = 100;
    prof.hitCyclesPerAccess = 20;
    prof.missRate = an.missRatioAtSize(target);
    prof.accessesPerCycle = 0.03;
    prof.valid = true;

    AdvisorInput in;
    in.curve = an.missCurve(129, target * 2);
    in.intervalAccesses = an.accesses;
    in.profile = prof;
    in.targetLines = target;
    in.deadline = static_cast<Cycles>(5e-3 * kClockHz);
    in.boostCap = target * 2;
    AdvisorReport rep = advise(in);

    // Structure: strictly decreasing idle sizes, infeasible only at
    // the end, best == deepest feasible.
    ASSERT_FALSE(rep.options.empty());
    for (std::size_t i = 0; i + 1 < rep.options.size(); i++) {
        EXPECT_GT(rep.options[i].sIdle, rep.options[i + 1].sIdle);
        EXPECT_TRUE(rep.options[i].feasible);
    }
    if (rep.canDownsize) {
        EXPECT_LT(rep.best.sIdle, target);
        const SizingOption *deepest = nullptr;
        for (const auto &o : rep.options)
            if (o.feasible)
                deepest = &o;
        ASSERT_NE(deepest, nullptr);
        EXPECT_EQ(rep.best.sIdle, deepest->sIdle);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, TracePipeline,
    ::testing::Values(Param{"xapian", 60}, Param{"masstree", 120},
                      Param{"moses", 40}, Param{"shore", 80},
                      Param{"specjbb", 120}),
    [](const ::testing::TestParamInfo<Param> &info) {
        return std::get<0>(info.param) + "_" +
               std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace ubik
