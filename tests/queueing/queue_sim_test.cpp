/**
 * @file
 * Tests for the multi-worker queueing simulator (src/queueing/):
 * classical queueing-theory cross-checks (M/D/1 Pollaczek-Khinchine,
 * Little's law, pooling), the §3.3 interference/abort tradeoffs, and
 * configuration validation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "queueing/queue_sim.h"

namespace ubik {
namespace {

QueueSimParams
md1(double load, double service_cycles = 1e5)
{
    QueueSimParams p;
    p.workers = 1;
    p.service = ServiceDistribution::constant(service_cycles);
    p.meanInterarrival = service_cycles / load;
    p.requests = 20000;
    p.warmup = 2000;
    return p;
}

TEST(QueueSim, CompletesExactRequestCount)
{
    QueueSimParams p = md1(0.3);
    p.requests = 777;
    p.warmup = 50;
    QueueSimResult r = QueueSim(p, 1).run();
    EXPECT_EQ(r.latencies.count(), 777u);
    EXPECT_EQ(r.serviceTimes.count(), 777u);
}

TEST(QueueSim, LowLoadLatencyIsServiceTime)
{
    QueueSimParams p = md1(0.02);
    p.requests = 2000;
    QueueSimResult r = QueueSim(p, 2).run();
    // Almost never queues: sojourn ~= service.
    EXPECT_NEAR(r.latencies.mean(), r.serviceTimes.mean(),
                0.02 * r.serviceTimes.mean());
    EXPECT_NEAR(r.serviceTimes.mean(), 1e5, 2.0);
}

TEST(QueueSim, MatchesMD1PollaczekKhinchine)
{
    // M/D/1: Wq = rho * E[S] / (2 * (1 - rho)).
    for (double rho : {0.3, 0.5, 0.7}) {
        QueueSimParams p = md1(rho);
        QueueSimResult r = QueueSim(p, 42).run();
        double es = 1e5;
        double expected_w = es + rho * es / (2.0 * (1.0 - rho));
        EXPECT_NEAR(r.latencies.mean(), expected_w, 0.08 * expected_w)
            << "rho = " << rho;
    }
}

TEST(QueueSim, LittlesLawHolds)
{
    for (double rho : {0.2, 0.6}) {
        QueueSimParams p = md1(rho);
        QueueSimResult r = QueueSim(p, 7).run();
        double lambda = 1.0 / p.meanInterarrival;
        double l_from_w = lambda * r.latencies.mean();
        EXPECT_NEAR(r.meanInSystem, l_from_w, 0.08 * l_from_w)
            << "rho = " << rho;
    }
}

TEST(QueueSim, LatencyExplodesNearSaturation)
{
    double w_low = QueueSim(md1(0.3), 5).run().latencies.mean();
    double w_high = QueueSim(md1(0.95), 5).run().latencies.mean();
    EXPECT_GT(w_high, 3.0 * w_low);
}

TEST(QueueSim, PooledWorkersBeatSingleWorkerQueueing)
{
    // Same per-worker load: one pooled M/D/4 vs an M/D/1. Pooling
    // cuts queueing delay (the §3.3 upside of multiple workers).
    QueueSimParams one = md1(0.7);
    QueueSimParams four = one;
    four.workers = 4;
    four.meanInterarrival = one.meanInterarrival / 4.0;
    double wq1 =
        QueueSim(one, 3).run().latencies.mean() - 1e5;
    double wq4 =
        QueueSim(four, 3).run().latencies.mean() - 1e5;
    EXPECT_LT(wq4, 0.5 * wq1);
}

TEST(QueueSim, InterferenceInflatesService)
{
    QueueSimParams p = md1(0.6);
    p.workers = 4;
    p.meanInterarrival /= 4.0;
    QueueSimResult clean = QueueSim(p, 9).run();
    p.interferenceFactor = 0.3;
    QueueSimResult noisy = QueueSim(p, 9).run();
    EXPECT_GT(noisy.serviceTimes.mean(),
              1.05 * clean.serviceTimes.mean());
    EXPECT_GT(noisy.latencies.tailMean(95.0),
              clean.latencies.tailMean(95.0));
}

TEST(QueueSim, InterferenceMonotoneInFactor)
{
    QueueSimParams p = md1(0.5);
    p.workers = 3;
    p.meanInterarrival /= 3.0;
    double prev = 0;
    for (double f : {0.0, 0.2, 0.4, 0.8}) {
        p.interferenceFactor = f;
        double w = QueueSim(p, 11).run().latencies.mean();
        EXPECT_GE(w, prev * 0.999);
        prev = w;
    }
}

TEST(QueueSim, SingleWorkerNeverAborts)
{
    QueueSimParams p = md1(0.8);
    p.abortProb = 1.0; // aborts need concurrency; k=1 has none
    QueueSimResult r = QueueSim(p, 13).run();
    EXPECT_EQ(r.aborts, 0u);
}

TEST(QueueSim, AbortsDegradeTailWithConcurrency)
{
    QueueSimParams p = md1(0.5);
    p.workers = 4;
    p.meanInterarrival /= 4.0;
    p.requests = 8000;
    QueueSimResult clean = QueueSim(p, 17).run();
    p.abortProb = 0.15;
    QueueSimResult aborty = QueueSim(p, 17).run();
    EXPECT_GT(aborty.aborts, 0u);
    EXPECT_GT(aborty.latencies.tailMean(95.0),
              clean.latencies.tailMean(95.0));
}

TEST(QueueSim, AbortCapBoundsRestarts)
{
    QueueSimParams p = md1(0.9);
    p.workers = 2;
    p.meanInterarrival /= 2.0;
    p.abortProb = 1.0; // would livelock without the cap
    p.maxAborts = 3;
    p.requests = 500;
    p.warmup = 50;
    QueueSimResult r = QueueSim(p, 19).run();
    EXPECT_EQ(r.latencies.count(), 500u);
    EXPECT_LE(r.aborts, 3u * (500u + 50u));
}

TEST(QueueSim, SaturationFracTracksLoad)
{
    QueueSimResult low = QueueSim(md1(0.1), 23).run();
    QueueSimResult high = QueueSim(md1(0.9), 23).run();
    EXPECT_LT(low.saturationFrac, 0.2);
    EXPECT_GT(high.saturationFrac, 0.7);
    EXPECT_NEAR(low.offeredLoad, 0.1, 1e-9);
    EXPECT_NEAR(high.offeredLoad, 0.9, 1e-9);
}

TEST(QueueSim, DeterministicUnderSeed)
{
    QueueSimParams p = md1(0.6);
    p.workers = 2;
    p.abortProb = 0.1;
    p.interferenceFactor = 0.2;
    p.requests = 2000;
    double a = QueueSim(p, 31).run().latencies.mean();
    double b = QueueSim(p, 31).run().latencies.mean();
    double c = QueueSim(p, 32).run().latencies.mean();
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(QueueSim, RejectsBadConfigs)
{
    QueueSimParams p = md1(0.5);
    p.workers = 0;
    EXPECT_EXIT(QueueSim(p, 1), testing::ExitedWithCode(1), "worker");
    p = md1(0.5);
    p.meanInterarrival = 0;
    EXPECT_EXIT(QueueSim(p, 1), testing::ExitedWithCode(1),
                "interarrival");
    p = md1(0.5);
    p.abortProb = 1.5;
    EXPECT_EXIT(QueueSim(p, 1), testing::ExitedWithCode(1), "abort");
    p = md1(0.5);
    p.interferenceFactor = -0.1;
    EXPECT_EXIT(QueueSim(p, 1), testing::ExitedWithCode(1),
                "interference");
    // A degenerate config that used to slip through construction and
    // only misbehave at run() time: zero measured requests, which
    // produced empty recorders feeding 0-latency "results" into every
    // downstream ratio. (The sibling degenerate case, an all-zero
    // service distribution, is unconstructible — the
    // ServiceDistribution factories assert positive work — but
    // QueueSim validates service.mean() > 0 anyway in case a new
    // factory forgets.)
    p = md1(0.5);
    p.requests = 0;
    EXPECT_EXIT(QueueSim(p, 1), testing::ExitedWithCode(1),
                "request");
}

TEST(QueueSim, WarmupOnlyConfigStillMeasures)
{
    // requests counts *measured* requests, so warmup-heavy configs
    // remain valid as long as requests >= 1.
    QueueSimParams p = md1(0.3);
    p.requests = 1;
    p.warmup = 100;
    QueueSimResult r = QueueSim(p, 1).run();
    EXPECT_EQ(r.latencies.count(), 1u);
    EXPECT_GT(r.latencies.mean(), 0.0);
}

/** Load sweep: sojourn time is monotone in load for every worker
 *  count and service shape (a property the Fig 1a curves rely on). */
class QueueLoadSweep
    : public testing::TestWithParam<std::tuple<std::uint32_t, int>>
{
};

TEST_P(QueueLoadSweep, SojournMonotoneInLoad)
{
    auto [workers, shape] = GetParam();
    ServiceDistribution dist =
        shape == 0 ? ServiceDistribution::constant(1e5)
        : shape == 1
            ? ServiceDistribution::lognormal(1e5, 0.5)
            : ServiceDistribution::multimodal(
                  {{0.7, 5e4, 0.1}, {0.3, 2e5, 0.1}});
    double prev = 0;
    for (double rho : {0.2, 0.4, 0.6, 0.8}) {
        QueueSimParams p;
        p.workers = workers;
        p.service = dist;
        p.meanInterarrival =
            dist.mean() / (rho * static_cast<double>(workers));
        p.requests = 6000;
        p.warmup = 600;
        double w = QueueSim(p, 101).run().latencies.mean();
        EXPECT_GT(w, prev * 0.98)
            << "workers=" << workers << " shape=" << shape
            << " rho=" << rho;
        prev = w;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, QueueLoadSweep,
    testing::Combine(testing::Values(1u, 2u, 4u),
                     testing::Values(0, 1, 2)));

} // namespace
} // namespace ubik
