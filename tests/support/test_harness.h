/**
 * @file
 * Shared helpers for policy-level tests: a self-contained "bench
 * harness" owning a Vantage scheme, UMONs, and MLP profilers, with
 * helpers to feed synthetic access streams and drive reconfigurations
 * without the full Cmp simulator.
 */

#pragma once

#include <memory>
#include <vector>

#include "cache/vantage.h"
#include "cache/zcache_array.h"
#include "mon/mlp_profiler.h"
#include "mon/umon.h"
#include "policy/policy.h"
#include "common/rng.h"

namespace ubik {
namespace test {

/** Owns the monitoring hardware a PartitionPolicy needs. */
struct PolicyHarness
{
    std::unique_ptr<Vantage> scheme;
    std::vector<std::unique_ptr<Umon>> umons;
    std::vector<std::unique_ptr<MlpProfiler>> profilers;
    std::vector<AppMonitor> monitors;
    Rng rng{12345};

    PolicyHarness(std::uint64_t llc_lines, std::uint32_t num_apps,
                  std::uint32_t umon_sets = 16)
    {
        scheme = std::make_unique<Vantage>(
            std::make_unique<ZCacheArray>(llc_lines, 4, 52, 1),
            num_apps + 1);
        monitors.resize(num_apps);
        for (std::uint32_t a = 0; a < num_apps; a++) {
            umons.push_back(std::make_unique<Umon>(
                llc_lines, 32, umon_sets, 1000 + a));
            profilers.push_back(std::make_unique<MlpProfiler>());
            monitors[a].umon = umons[a].get();
            monitors[a].mlp = profilers[a].get();
        }
    }

    /** Mark app `a` latency-critical with a target and deadline. */
    void
    makeLc(AppId a, std::uint64_t target_lines, Cycles deadline)
    {
        monitors[a].latencyCritical = true;
        monitors[a].targetLines = target_lines;
        monitors[a].deadline = deadline;
    }

    /**
     * Feed `n` zipf-distributed accesses from app `a` over a working
     * set of `ws` lines, updating the UMON and interval counters with
     * a simple fixed-cost timing model.
     */
    void
    feedZipf(AppId a, std::uint64_t ws, double theta, std::uint64_t n,
             double hit_cost = 10, double miss_cost = 100)
    {
        ZipfDistribution zipf(ws, theta);
        AccessContext ctx{a + 1, a, 0};
        Addr base = static_cast<Addr>(a + 1) << 40;
        for (std::uint64_t i = 0; i < n; i++) {
            Addr addr = base + zipf(rng);
            bool hit = scheme->access(addr, ctx).hit;
            umons[a]->access(addr);
            IntervalCounters &ic = monitors[a].interval;
            ic.llcAccesses++;
            ic.instructions += 100;
            if (hit) {
                ic.cycles += static_cast<Cycles>(50 + hit_cost);
            } else {
                ic.llcMisses++;
                ic.cycles += static_cast<Cycles>(50 + miss_cost);
                ic.missStallCycles += static_cast<Cycles>(miss_cost);
            }
        }
    }

    /**
     * Feed a circular sequential scan over `ws` lines from app `a`:
     * every access has stack distance ws, giving a perfect miss-curve
     * cliff at ws (all-miss below, all-hit at or above).
     */
    void
    feedScan(AppId a, std::uint64_t ws, std::uint64_t n)
    {
        AccessContext ctx{a + 1, a, 0};
        Addr base = static_cast<Addr>(a + 1) << 40;
        for (std::uint64_t i = 0; i < n; i++) {
            Addr addr = base + i % ws;
            bool hit = scheme->access(addr, ctx).hit;
            umons[a]->access(addr);
            IntervalCounters &ic = monitors[a].interval;
            ic.llcAccesses++;
            ic.instructions += 100;
            ic.cycles += hit ? 60 : 150;
            if (!hit) {
                ic.llcMisses++;
                ic.missStallCycles += 100;
            }
        }
    }

    /** Feed a pure streaming pattern (no reuse) from app `a`. */
    void
    feedStream(AppId a, std::uint64_t n)
    {
        AccessContext ctx{a + 1, a, 0};
        static thread_local std::uint64_t cursor = 0;
        Addr base = (static_cast<Addr>(a + 1) << 40) | (1ull << 36);
        for (std::uint64_t i = 0; i < n; i++) {
            Addr addr = base + cursor++;
            scheme->access(addr, ctx);
            umons[a]->access(addr);
            IntervalCounters &ic = monitors[a].interval;
            ic.llcAccesses++;
            ic.llcMisses++;
            ic.instructions += 100;
            ic.cycles += 150;
            ic.missStallCycles += 100;
        }
    }

    /** Push interval counters into the profilers, as Cmp does before
     *  each reconfiguration, then clear them. */
    void
    refreshProfiles(std::uint64_t requests_per_app = 10)
    {
        for (auto &mon : monitors) {
            mon.mlp->update(mon.interval);
            mon.intervalRequests = requests_per_app;
        }
    }

    /** Reset UMON counters (keeping tags) and interval counters. */
    void
    endInterval()
    {
        for (auto &u : umons)
            u->resetCounters();
        for (auto &mon : monitors)
            mon.interval.clear();
    }
};

} // namespace test
} // namespace ubik
