/**
 * @file
 * Shared fixtures for the persistent result-cache tests: a throwaway
 * cache directory, bit-level MixRunResult comparison, and a small
 * canonical sweep (2 schemes x 2 mixes x 2 seeds) cheap enough for
 * unit-test sims.
 */

#pragma once

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "sim/parallel_sweep.h"

namespace ubik {
namespace test {

/** Unique cache directory under the system temp dir, removed on
 *  destruction. */
class TempCacheDir
{
  public:
    explicit TempCacheDir(const char *tag)
    {
        static std::atomic<int> counter{0};
        path_ = (std::filesystem::temp_directory_path() /
                 (std::string("ubik_cache_test_") + tag + "_" +
                  std::to_string(::getpid()) + "_" +
                  std::to_string(counter.fetch_add(1))))
                    .string();
        std::filesystem::remove_all(path_);
    }

    ~TempCacheDir() { std::filesystem::remove_all(path_); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Unit-test experiment scale (matches parallel_determinism_test). */
inline ExperimentConfig
cacheTestCfg()
{
    ExperimentConfig cfg;
    cfg.scale = 16.0;
    cfg.roiRequests = 30;
    cfg.warmupRequests = 10;
    cfg.seeds = 2;
    cfg.mixesPerLc = 1;
    return cfg;
}

/** An 8-job sweep: 2 schemes x 2 mixes x 2 seeds. */
inline std::vector<SweepJob>
cacheTestJobs()
{
    MixSpec a;
    a.name = "specjbb-lo/nfs";
    a.lc.app = lc_presets::specjbb();
    a.lc.load = 0.2;
    a.batch.name = "nfs";
    a.batch.apps = {
        batch_presets::make(BatchClass::Insensitive, 0),
        batch_presets::make(BatchClass::Friendly, 1),
        batch_presets::make(BatchClass::Streaming, 2),
    };
    MixSpec b = a;
    b.name = "specjbb-lo/ffs";
    b.batch.name = "ffs";
    b.batch.apps[0] = batch_presets::make(BatchClass::Friendly, 3);

    std::vector<SchemeUnderTest> schemes = {
        {"StaticLC", SchemeKind::Vantage, ArrayKind::Z4_52,
         PolicyKind::StaticLc, 0.0},
        {"LRU", SchemeKind::SharedLru, ArrayKind::Z4_52,
         PolicyKind::Lru, 0.0},
    };
    return buildSweepJobs(schemes, {a, b}, 2);
}

/** Byte-level equality: distinguishes -0.0/0.0 and any ULP drift. */
inline void
expectBitIdentical(double x, double y, const char *what, std::size_t i)
{
    std::uint64_t bx, by;
    std::memcpy(&bx, &x, sizeof(bx));
    std::memcpy(&by, &y, sizeof(by));
    EXPECT_EQ(bx, by) << what << " differs at job " << i << ": " << x
                      << " vs " << y;
}

inline void
expectSameResults(const std::vector<MixRunResult> &a,
                  const std::vector<MixRunResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i++) {
        expectBitIdentical(a[i].lcTailMean, b[i].lcTailMean,
                           "lcTailMean", i);
        expectBitIdentical(a[i].tailDegradation, b[i].tailDegradation,
                           "tailDegradation", i);
        expectBitIdentical(a[i].meanDegradation, b[i].meanDegradation,
                           "meanDegradation", i);
        expectBitIdentical(a[i].weightedSpeedup, b[i].weightedSpeedup,
                           "weightedSpeedup", i);
        ASSERT_EQ(a[i].batchSpeedups.size(), b[i].batchSpeedups.size());
        for (std::size_t k = 0; k < a[i].batchSpeedups.size(); k++)
            expectBitIdentical(a[i].batchSpeedups[k],
                               b[i].batchSpeedups[k], "batchSpeedup",
                               i);
        EXPECT_EQ(a[i].ubikDeboosts, b[i].ubikDeboosts);
        EXPECT_EQ(a[i].ubikDeadlineDeboosts, b[i].ubikDeadlineDeboosts);
        EXPECT_EQ(a[i].ubikWatermarks, b[i].ubikWatermarks);
    }
}

} // namespace test
} // namespace ubik
