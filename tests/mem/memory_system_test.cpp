/**
 * @file
 * Unit and property tests for the memory timing models (src/mem/):
 * the paper-faithful fixed-latency model, contended channels, and the
 * token-bucket bandwidth partitioner.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mem/memory_system.h"

namespace ubik {
namespace {

MemoryParams
params(std::uint32_t channels, Cycles occ)
{
    MemoryParams p;
    p.channels = channels;
    p.channelOccupancy = occ;
    return p;
}

TEST(FixedLatencyMemory, NeverAddsDelay)
{
    FixedLatencyMemory mem(params(3, 24), 2);
    for (Cycles t = 0; t < 1000; t += 7) {
        EXPECT_EQ(mem.access(0, t), 0u);
        EXPECT_EQ(mem.access(1, t), 0u);
    }
    EXPECT_EQ(mem.appStats(0).totalQueueing, 0u);
    EXPECT_EQ(mem.appStats(1).maxQueueing, 0u);
}

TEST(FixedLatencyMemory, CountsRequestsPerApp)
{
    FixedLatencyMemory mem(params(1, 10), 3);
    mem.access(0, 0);
    mem.access(2, 5);
    mem.access(2, 9);
    EXPECT_EQ(mem.appStats(0).requests, 1u);
    EXPECT_EQ(mem.appStats(1).requests, 0u);
    EXPECT_EQ(mem.appStats(2).requests, 2u);
    EXPECT_EQ(mem.requests(), 3u);
}

TEST(FixedLatencyMemory, UtilizationTracksOfferedBandwidth)
{
    FixedLatencyMemory mem(params(2, 10), 1);
    // 10 misses x 10 busy cycles = 100 busy, capacity 2 x 1000.
    for (int i = 0; i < 10; i++)
        mem.access(0, static_cast<Cycles>(i * 100));
    EXPECT_DOUBLE_EQ(mem.utilization(1000), 100.0 / 2000.0);
    EXPECT_DOUBLE_EQ(mem.utilization(0), 0.0);
}

TEST(ContendedMemory, UncontendedAccessIsFree)
{
    ContendedMemory mem(params(1, 20), 1);
    EXPECT_EQ(mem.access(0, 100), 0u);
    // Next access after the channel freed: also free.
    EXPECT_EQ(mem.access(0, 121), 0u);
}

TEST(ContendedMemory, BackToBackAccessesQueueOnOneChannel)
{
    ContendedMemory mem(params(1, 20), 1);
    EXPECT_EQ(mem.access(0, 0), 0u);   // occupies [0, 20)
    EXPECT_EQ(mem.access(0, 0), 20u);  // waits until 20
    EXPECT_EQ(mem.access(0, 0), 40u);  // waits until 40
    EXPECT_EQ(mem.appStats(0).maxQueueing, 40u);
}

TEST(ContendedMemory, BurstSpreadsAcrossChannels)
{
    ContendedMemory mem(params(3, 30), 1);
    // First three simultaneous misses find free channels.
    EXPECT_EQ(mem.access(0, 0), 0u);
    EXPECT_EQ(mem.access(0, 0), 0u);
    EXPECT_EQ(mem.access(0, 0), 0u);
    // The fourth waits for the earliest channel to free.
    EXPECT_EQ(mem.access(0, 0), 30u);
    EXPECT_EQ(mem.access(0, 0), 30u);
    EXPECT_EQ(mem.access(0, 0), 30u);
    EXPECT_EQ(mem.access(0, 0), 60u);
}

TEST(ContendedMemory, IdlePeriodsDrainTheQueue)
{
    ContendedMemory mem(params(1, 10), 1);
    mem.access(0, 0);
    mem.access(0, 0);
    // Long gap: the backlog has drained, no residual delay.
    EXPECT_EQ(mem.access(0, 1000), 0u);
}

TEST(ContendedMemory, DelayMonotonicInLoadProperty)
{
    // Issue N misses over a fixed window; mean queueing must be
    // non-decreasing in N (an M/D/c-like property).
    double prev = -1.0;
    for (std::uint64_t n : {10u, 50u, 100u, 200u, 400u}) {
        ContendedMemory mem(params(2, 16), 1);
        const Cycles window = 3200;
        for (std::uint64_t i = 0; i < n; i++)
            mem.access(0, i * window / n);
        double mean = mem.appStats(0).meanQueueing();
        EXPECT_GE(mean, prev);
        prev = mean;
    }
}

TEST(ContendedMemory, RejectsZeroChannels)
{
    EXPECT_EXIT(ContendedMemory(params(0, 10), 1),
                testing::ExitedWithCode(1), "channel");
}

TEST(ContendedMemory, RejectsZeroOccupancy)
{
    EXPECT_EXIT(ContendedMemory(params(2, 0), 1),
                testing::ExitedWithCode(1), "occupancy");
}

TEST(PartitionedMemory, DefaultsToEqualShares)
{
    PartitionedMemory mem(params(4, 20), 4);
    for (AppId a = 0; a < 4; a++)
        EXPECT_DOUBLE_EQ(mem.share(a), 0.25);
}

TEST(PartitionedMemory, SpacingMatchesShare)
{
    PartitionedMemory mem(params(2, 20), 2);
    // Total service rate: 2 channels / 20 cycles = 0.1 misses/cycle.
    mem.setShare(0, 0.5); // 0.05/cycle -> 20-cycle spacing
    mem.setShare(1, 0.1); // 0.01/cycle -> 100-cycle spacing
    EXPECT_EQ(mem.spacing(0), 20u);
    EXPECT_EQ(mem.spacing(1), 100u);
}

TEST(PartitionedMemory, RegulatorEnforcesSpacing)
{
    PartitionedMemory mem(params(2, 20), 2);
    mem.setShare(0, 0.5);
    // Back-to-back misses at cycle 0: each is pushed to its slot.
    EXPECT_EQ(mem.access(0, 0), 0u);
    Cycles d1 = mem.access(0, 0);
    Cycles d2 = mem.access(0, 0);
    EXPECT_GE(d1, mem.spacing(0));
    EXPECT_GE(d2, 2 * mem.spacing(0));
    EXPECT_GT(mem.appStats(0).totalThrottle, 0u);
}

TEST(PartitionedMemory, WellSpacedTrafficIsNotThrottled)
{
    PartitionedMemory mem(params(2, 20), 2);
    mem.setShare(0, 0.5);
    Cycles t = 0;
    for (int i = 0; i < 50; i++) {
        EXPECT_EQ(mem.access(0, t), 0u);
        t += mem.spacing(0) + 1;
    }
    EXPECT_EQ(mem.appStats(0).totalThrottle, 0u);
}

TEST(PartitionedMemory, IsolatesVictimFromHog)
{
    // App 0 hammers memory (closed loop, 5-cycle think time); app 1
    // issues sparse misses. Cores block on each miss, so each app has
    // at most one miss outstanding — exactly how Cmp drives the
    // model. Under plain contention the hog keeps the single channel
    // nearly always busy and the victim queues behind it; with
    // bandwidth partitioning the hog is regulated to its share and
    // the victim's queueing shrinks.
    auto run = [](bool partitioned) {
        MemoryParams p = params(1, 20);
        std::unique_ptr<MemorySystem> mem;
        if (partitioned) {
            auto pm = std::make_unique<PartitionedMemory>(p, 2);
            pm->setShare(0, 0.5);     // hog: regulated to half
            pm->setUnregulated(1);    // victim: strict priority
            mem = std::move(pm);
        } else {
            mem = std::make_unique<ContendedMemory>(p, 2);
        }
        const Cycles horizon = 100000;
        Cycles next[2] = {0, 0};
        const Cycles gap[2] = {5, 400};
        while (true) {
            AppId a = next[0] <= next[1] ? 0 : 1;
            if (next[a] >= horizon)
                break;
            // Think time + contention only: a deep-MLP app overlaps
            // the base latency, so it does not gate the issue rate.
            Cycles delay = mem->access(a, next[a]);
            next[a] += gap[a] + delay;
        }
        return mem->appStats(1).meanQueueing();
    };
    double shared = run(false);
    double isolated = run(true);
    EXPECT_GT(shared, isolated);
    EXPECT_LT(isolated, 20.0); // bounded below one occupancy
}

TEST(PartitionedMemory, UnregulatedAppBypassesRegulator)
{
    PartitionedMemory mem(params(1, 20), 2);
    mem.setUnregulated(0);
    EXPECT_TRUE(mem.unregulated(0));
    EXPECT_FALSE(mem.unregulated(1));
    // Back-to-back misses: contention delay only, no throttle.
    mem.access(0, 0);
    mem.access(0, 0);
    mem.access(0, 0);
    EXPECT_EQ(mem.appStats(0).totalThrottle, 0u);
    EXPECT_EQ(mem.appStats(0).totalQueueing, 20u + 40u);
}

TEST(PartitionedMemory, SetShareReenablesRegulation)
{
    PartitionedMemory mem(params(1, 20), 1);
    mem.setUnregulated(0);
    mem.setShare(0, 0.5);
    EXPECT_FALSE(mem.unregulated(0));
}

TEST(PartitionedMemory, PriorityAppRidesGapsPastFutureBookings)
{
    // A regulated hog books slots in the (near) future. An
    // unregulated app arriving in an idle gap must use the channel
    // now instead of queueing behind those reservations.
    PartitionedMemory mem(params(1, 20), 2);
    mem.setShare(0, 0.25); // spacing 80
    mem.setUnregulated(1);
    mem.access(0, 0);  // channel [0, 20)
    mem.access(0, 21); // allowed at 80 -> channel [80, 100)
    // Gap [21+20, 80) is idle; priority app at 40 fits [40, 60).
    EXPECT_EQ(mem.access(1, 40), 0u);
}

TEST(PartitionedMemory, RejectsBadShares)
{
    PartitionedMemory mem(params(2, 20), 2);
    EXPECT_EXIT(mem.setShare(0, 0.0), testing::ExitedWithCode(1), "share");
    EXPECT_EXIT(mem.setShare(0, 1.5), testing::ExitedWithCode(1), "share");
    EXPECT_EXIT(mem.setShare(7, 0.5), testing::ExitedWithCode(1),
                "out of range");
}

TEST(MemorySystemFactory, MakesEveryKind)
{
    auto f = makeMemorySystem(MemKind::Fixed, params(2, 10), 2);
    auto c = makeMemorySystem(MemKind::Contended, params(2, 10), 2);
    auto p = makeMemorySystem(MemKind::Partitioned, params(2, 10), 2);
    EXPECT_STREQ(f->name(), "fixed");
    EXPECT_STREQ(c->name(), "contended");
    EXPECT_STREQ(p->name(), "partitioned");
    EXPECT_STREQ(memKindName(MemKind::Contended), "contended");
}

TEST(MemorySystemFactory, Deterministic)
{
    // Same access pattern -> identical delays, across instances.
    auto drive = [](MemorySystem &mem) {
        std::vector<Cycles> delays;
        for (Cycles t = 0; t < 500; t += 3)
            delays.push_back(mem.access(t % 2, t));
        return delays;
    };
    ContendedMemory a(params(2, 17), 2), b(params(2, 17), 2);
    EXPECT_EQ(drive(a), drive(b));
}

/** Sweep channel counts and occupancies: capacity conservation. */
class ContentionSweep
    : public testing::TestWithParam<std::tuple<std::uint32_t, Cycles>>
{
};

TEST_P(ContentionSweep, ThroughputNeverExceedsCapacity)
{
    auto [channels, occ] = GetParam();
    ContendedMemory mem(params(channels, occ), 1);
    // Saturate: issue far more misses than capacity over the window.
    const Cycles window = 10000;
    std::uint64_t issued = 4 * channels * window / occ;
    Cycles last_start = 0;
    for (std::uint64_t i = 0; i < issued; i++) {
        Cycles t = i * window / issued;
        last_start = std::max(last_start, t + mem.access(0, t));
    }
    // All requests complete by roughly issued/service_rate.
    double service_rate =
        static_cast<double>(channels) / static_cast<double>(occ);
    double ideal_makespan = static_cast<double>(issued) / service_rate;
    EXPECT_GE(static_cast<double>(last_start + occ),
              ideal_makespan * 0.99);
    EXPECT_LE(static_cast<double>(last_start),
              ideal_makespan * 1.01 + static_cast<double>(window));
    EXPECT_NEAR(mem.utilization(last_start + occ), 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ContentionSweep,
    testing::Combine(testing::Values(1u, 2u, 4u),
                     testing::Values<Cycles>(8, 24, 48)));

} // namespace
} // namespace ubik
