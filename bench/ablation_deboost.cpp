/**
 * @file
 * Accurate de-boosting ablation (§5.1.1, quantified).
 *
 * Ubik sizes s_boost from conservative upper bounds on the transient
 * cost, so most requests repay their lost cycles well before the
 * deadline. The accurate de-boosting circuit (a comparator on UMON
 * would-be misses vs actual misses) detects that early repayment and
 * returns the boost space to batch apps immediately. The paper argues
 * that without it — holding the boost until the deadline — latency-
 * critical performance is improved unnecessarily "while hurting batch
 * throughput".
 *
 * This bench runs Ubik with the circuit enabled (default) and ablated
 * (deadline-wait de-boosting) over the standard mixes, in strict and
 * 5%-slack modes, and reports tail degradation, batch weighted
 * speedup, and the interrupt mix (early-recovery vs deadline-expiry
 * de-boosts).
 */

#include <cstdio>

#include "bench_util.h"
#include "common/log.h"

using namespace ubik;
using namespace ubik::bench;

namespace {

void
printInterruptMix(const std::vector<SweepResult> &sweeps)
{
    std::printf("\n[deboost-irq] de-boost interrupt mix per scheme "
                "(totals over all runs)\n");
    std::printf("%-22s %14s %14s %12s\n", "scheme", "early-recovery",
                "deadline-wait", "watermark");
    for (const auto &s : sweeps) {
        std::uint64_t early = 0, deadline = 0, wm = 0;
        for (const auto &r : s.runs) {
            early += r.ubikDeboosts;
            deadline += r.ubikDeadlineDeboosts;
            wm += r.ubikWatermarks;
        }
        std::printf("%-22s %14llu %14llu %12llu\n", s.label.c_str(),
                    static_cast<unsigned long long>(early),
                    static_cast<unsigned long long>(deadline),
                    static_cast<unsigned long long>(wm));
    }
}

} // namespace

int
main()
{
    setVerbose(false);
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.printHeader("Ablation: accurate de-boosting vs deadline-wait");

    std::vector<SchemeUnderTest> schemes;
    {
        SchemeUnderTest s;
        s.policy = PolicyKind::Ubik;

        s.label = "Ubik-strict";
        s.slack = 0.0;
        s.ubik.accurateDeboost = true;
        schemes.push_back(s);

        s.label = "Ubik-strict-noDB";
        s.ubik.accurateDeboost = false;
        schemes.push_back(s);

        s.label = "Ubik-5%";
        s.slack = 0.05;
        s.ubik.accurateDeboost = true;
        schemes.push_back(s);

        s.label = "Ubik-5%-noDB";
        s.ubik.accurateDeboost = false;
        schemes.push_back(s);
    }

    auto sweeps = runCustomSweep(cfg, schemes, cacheHungryMixes());
    printPerApp(sweeps, "deboost");
    printAverages(sweeps, "deboost-avg");
    printInterruptMix(sweeps);

    std::printf("\nExpected shape (§5.1.1): tail degradations match "
                "across variants (the boost never ends *early*, so "
                "the QoS guarantee is unaffected), while the circuit "
                "converts deadline-wait de-boosts into much earlier "
                "recoveries — the irq table should show early-"
                "recovery dominating with the circuit and only "
                "deadline expiries without it. Returning that space "
                "sooner buys batch throughput; the margin scales "
                "with how long boosts outlive their transients "
                "(small at the scaled-down deadlines, growing at "
                "UBIK_SCALE=1).\n");
    return 0;
}
