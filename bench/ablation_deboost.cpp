/**
 * @file
 * Accurate de-boosting ablation (§5.1.1, quantified): Ubik with the
 * de-boost circuit enabled (default) and ablated (deadline-wait) in
 * strict and 5%-slack modes over the cache-hungry mixes, reporting
 * tail degradation, batch weighted speedup, and the interrupt mix
 * (early-recovery vs deadline-expiry de-boosts). Thin wrapper over
 * the scenario registry (`ubik_run ablation-deboost`).
 */

#include "sim/scenario.h"

int
main()
{
    return ubik::runRegisteredScenario("ablation-deboost");
}
