/**
 * @file
 * CMP-scalability ablation (the paper's §6 future work).
 *
 * "Ubik should apply to large-scale CMPs with tens to hundreds of
 * cores, but we leave that evaluation to future work." This bench
 * scales the evaluated machine from the paper's 6 cores up to 12 and
 * 24 (half LC instances, half batch apps; LLC capacity and memory
 * channels grow proportionally) and checks that Ubik's guarantees
 * and efficiency survive:
 *
 *  - LC tail degradation stays bounded as the partition count grows
 *    (more partitions stress Vantage and the repartitioning table);
 *  - batch weighted speedup holds (Lookahead still allocates well);
 *  - the software runtime cost per reconfiguration grows gracefully
 *    (it is O(apps x buckets), reported as wall-clock per reconfig).
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "sim/experiment.h"
#include "sim/job_pool.h"
#include "stats/streaming_stats.h"
#include "workload/batch_app.h"
#include "workload/lc_app.h"
#include "common/log.h"

using namespace ubik;

namespace {

struct Calibration
{
    double meanInterarrival;
    double baselineTail;
    Cycles deadline;
};

/** Calibrate one LC app alone on the private-LLC baseline. */
Calibration
calibrate(const ExperimentConfig &cfg, const LcAppParams &params,
          double load, std::uint64_t seed)
{
    LcAppParams scaled = params.scaled(cfg.scale);
    Calibration cal{};

    CmpConfig cc = cfg.baseCmpConfig(true);
    cc.privateLlc = true;
    LcAppSpec spec;
    spec.params = scaled;
    spec.meanInterarrival = 0;
    spec.roiRequests = cfg.roiRequests;
    spec.warmupRequests = cfg.warmupRequests;
    spec.targetLines = cfg.privateLines();
    {
        Cmp cmp(cc, {spec}, {}, seed);
        cmp.run();
        cal.meanInterarrival =
            cmp.lcResult(0).serviceTimes.mean() / load;
    }
    spec.meanInterarrival = cal.meanInterarrival;
    {
        Cmp cmp(cc, {spec}, {}, seed + 1);
        cmp.run();
        cal.baselineTail = cmp.lcResult(0).latencies.tailMean(95.0);
        cal.deadline = static_cast<Cycles>(
            cmp.lcResult(0).latencies.percentile(95.0));
    }
    return cal;
}

} // namespace

int
main()
{
    setVerbose(false);
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.printHeader("Ablation: CMP scalability (6 -> 24 cores)");

    // One LC app per "rack role": cycle the five presets across the
    // LC cores; batch cores cycle the four classes.
    auto lc_presets_all = lc_presets::all();
    const double load = 0.6; // high load stresses QoS hardest

    // Calibrations are per-app, shared across machine sizes, and
    // independent of each other: run all nine through the experiment
    // engine's pool (UBIK_JOBS workers). Each job writes only its own
    // slot and derives randomness from its own fixed seed, so results
    // match the sequential order for any worker count.
    std::vector<Calibration> cals(lc_presets_all.size());
    std::vector<double> batchAloneIpc(4);
    {
        JobPool pool(JobPool::resolveWorkers(cfg.jobs));
        pool.run(cals.size() + batchAloneIpc.size(),
                 [&](std::size_t i) {
                     if (i < cals.size()) {
                         cals[i] = calibrate(cfg, lc_presets_all[i],
                                             load, 1000);
                         return;
                     }
                     std::uint32_t b =
                         static_cast<std::uint32_t>(i - cals.size());
                     CmpConfig cc = cfg.baseCmpConfig(true);
                     cc.privateLlc = true;
                     BatchAppSpec spec;
                     spec.params =
                         batch_presets::make(
                             static_cast<BatchClass>(b), b)
                             .scaled(cfg.scale);
                     Cmp cmp(cc, {}, {spec}, 2000 + b);
                     cmp.run();
                     batchAloneIpc[b] = cmp.batchResult(0).ipc();
                 });
    }

    std::printf("\n[scale] Ubik (5%% slack) at %.0f%% load, half LC / "
                "half batch cores\n",
                load * 100);
    std::printf("%6s %10s %14s %14s %16s %12s\n", "cores", "LLC(MB)",
                "avg tail deg", "worst tail deg", "batch wspeedup",
                "us/reconfig");

    for (std::uint32_t cores : {6u, 12u, 24u}) {
        CmpConfig cc = cfg.baseCmpConfig(true);
        cc.policy = PolicyKind::Ubik;
        cc.slack = 0.05;
        cc.llcLines = cfg.llcLines() * cores / 6;

        std::uint32_t n_lc = cores / 2;
        std::vector<LcAppSpec> lcs(n_lc);
        for (std::uint32_t i = 0; i < n_lc; i++) {
            std::size_t app = i % lc_presets_all.size();
            lcs[i].params = lc_presets_all[app].scaled(cfg.scale);
            lcs[i].meanInterarrival = cals[app].meanInterarrival;
            lcs[i].roiRequests = cfg.roiRequests;
            lcs[i].warmupRequests = cfg.warmupRequests;
            lcs[i].targetLines = cfg.privateLines();
            lcs[i].deadline = cals[app].deadline;
        }
        std::vector<BatchAppSpec> batch(cores - n_lc);
        for (std::uint32_t i = 0; i < batch.size(); i++)
            batch[i].params =
                batch_presets::make(static_cast<BatchClass>(i % 4), i)
                    .scaled(cfg.scale);

        auto t0 = std::chrono::steady_clock::now();
        Cmp cmp(cc, lcs, batch, 4242);
        cmp.run();
        auto dt = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

        StreamingStats tail;
        for (std::uint32_t i = 0; i < n_lc; i++) {
            std::size_t app = i % lc_presets_all.size();
            tail.add(cmp.lcResult(i).latencies.tailMean(95.0) /
                     cals[app].baselineTail);
        }
        StreamingStats ws;
        for (std::uint32_t i = 0; i < batch.size(); i++)
            ws.add(cmp.batchResult(i).ipc() / batchAloneIpc[i % 4]);

        // Software runtime cost: microbench one reconfiguration of
        // this machine's policy (host wall-clock).
        std::uint64_t reconfigs =
            cmp.now() / cfg.reconfigInterval();
        double us_per_reconfig = 0;
        {
            auto r0 = std::chrono::steady_clock::now();
            const int reps = 50;
            for (int r = 0; r < reps; r++)
                cmp.policy()->reconfigure(cmp.now());
            us_per_reconfig =
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - r0)
                    .count() /
                reps;
        }

        std::printf("%6u %10.2f %13.3fx %13.3fx %15.1f%% %12.1f"
                    "   (%llu reconfigs, %.1fs sim)\n",
                    cores,
                    static_cast<double>(cc.llcLines * kLineBytes) /
                        (1 << 20),
                    tail.mean(), tail.max(), (ws.mean() - 1) * 100,
                    us_per_reconfig,
                    static_cast<unsigned long long>(reconfigs), dt);
    }

    std::printf("\nExpected shape: tail degradation stays bounded "
                "(near 1x average) and batch speedups hold as the "
                "machine grows; the reconfiguration cost grows "
                "roughly linearly in app count (the paper reports "
                "tens of thousands of cycles at 6 cores, i.e. ~10us "
                "— small against a 50ms interval even at 24 "
                "cores).\n");
    return 0;
}
