/**
 * @file
 * Reproduces Fig 12: Ubik's slack sensitivity (0%, 1%, 5%, 10%),
 * trading bounded tail-latency degradation for batch throughput.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/log.h"

using namespace ubik;
using namespace ubik::bench;

int
main()
{
    setVerbose(false);
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.printHeader("Fig 12: Ubik slack sensitivity");

    std::vector<SchemeUnderTest> schemes;
    for (double slack : {0.0, 0.01, 0.05, 0.10}) {
        SchemeUnderTest sut;
        char label[32];
        std::snprintf(label, sizeof(label), "slack=%g%%",
                      slack * 100);
        sut.label = label;
        sut.policy = PolicyKind::Ubik;
        sut.slack = slack;
        schemes.push_back(sut);
    }

    std::uint32_t mixes = std::min<std::uint32_t>(cfg.mixesPerLc, 1);
    auto sweeps = runSweep(cfg, schemes, mixes, /*ooo=*/true);
    printPerApp(sweeps, "fig12");
    printAverages(sweeps, "fig12-avg");

    std::printf("\nExpected shape (paper Fig 12): slack=0 strictly "
                "maintains tails at the lowest speedup (paper: "
                "+9.9%%); growing slack monotonically buys batch "
                "throughput (paper: 13.1%%, 16.0%%, 17.0%% at "
                "1/5/10%%) while tail degradation stays within the "
                "configured bound.\n");
    return 0;
}
