/**
 * @file
 * Reproduces Fig 12: Ubik's slack sensitivity (0%, 1%, 5%, 10%),
 * trading bounded tail-latency degradation for batch throughput.
 * Thin wrapper over the scenario registry (`ubik_run fig12`).
 */

#include "sim/scenario.h"

int
main()
{
    return ubik::runRegisteredScenario("fig12");
}
