/**
 * @file
 * Bandwidth-contention ablation (the paper's §6 future work).
 *
 * The paper models fixed-latency memory because bandwidth has no
 * inertia and is orthogonal to the cache-capacity transients Ubik
 * manages (§2.1, §6); it argues Ubik "should be easy to combine with
 * bandwidth partitioning techniques". This bench tests that claim on
 * the colocations where bandwidth actually matters: memory-intensive
 * LC apps (moses, shore, specjbb) sharing a scarce memory system with
 * streaming-heavy batch mixes. Three memory models, all under Ubik
 * (5% slack):
 *
 *   fixed       — the paper's memory model (reference),
 *   contended   — one scarce channel, no bandwidth QoS,
 *   partitioned — the same channel with LC apps at strict priority
 *                 and batch apps token-bucket-regulated to half the
 *                 bandwidth.
 *
 * Expected shape: cache QoS alone does not protect tails once the
 * memory bus saturates; adding bandwidth partitioning pulls LC tails
 * back toward the fixed-latency reference at some batch cost.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "sim/mix_runner.h"
#include "stats/streaming_stats.h"
#include "workload/mix.h"
#include "common/log.h"

using namespace ubik;

int
main()
{
    setVerbose(false);
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.printHeader("Ablation: bandwidth contention & partitioning");

    // One scarce channel: the streaming batch side can saturate it,
    // but the three LC instances' own demand still fits. (The paper's
    // 3-channel Westmere is never the bottleneck at these scales,
    // which is why it could ignore bandwidth.)
    MemoryParams scarce;
    scarce.channels = 1;
    scarce.channelOccupancy = 24;

    std::vector<SchemeUnderTest> schemes;
    {
        SchemeUnderTest s;
        s.label = "Ubik/fixed";
        s.policy = PolicyKind::Ubik;
        s.slack = 0.05;
        schemes.push_back(s);

        s.label = "Ubik/contended";
        s.mem = MemKind::Contended;
        s.memParams = scarce;
        schemes.push_back(s);

        s.label = "Ubik/bw-part";
        s.mem = MemKind::Partitioned;
        s.lcMemShare = 0.5;
        schemes.push_back(s);
    }

    // Bandwidth-critical colocations only: memory-intensive LC apps
    // crossed with streaming-heavy batch mixes.
    std::vector<LcConfig> lcs;
    for (const char *name : {"moses", "shore", "specjbb"})
        for (double load : {0.2, 0.6})
            lcs.push_back({lc_presets::byName(name), load});

    std::vector<BatchMix> batches;
    {
        BatchMix m;
        m.name = "sss-0";
        for (int i = 0; i < 3; i++)
            m.apps[static_cast<size_t>(i)] = batch_presets::make(
                BatchClass::Streaming, static_cast<std::uint32_t>(i));
        batches.push_back(m);
        m.name = "ssf-0";
        m.apps[2] = batch_presets::make(BatchClass::Friendly, 0);
        batches.push_back(m);
    }

    MixRunner runner(cfg, /*out_of_order=*/true);
    std::printf("\n[bw] tail degradation / weighted speedup per "
                "scheme (bandwidth-critical mixes)\n");
    std::printf("%-16s", "mix");
    for (const auto &s : schemes)
        std::printf(" %22s", s.label.c_str());
    std::printf("\n");

    std::vector<StreamingStats> tails(schemes.size());
    std::vector<StreamingStats> speedups(schemes.size());
    for (const auto &lc : lcs) {
        for (const auto &bm : batches) {
            MixSpec spec;
            spec.lc = lc;
            spec.batch = bm;
            char name[64];
            std::snprintf(name, sizeof(name), "%s-%s/%s",
                          lc.app.name.c_str(),
                          lc.load < 0.4 ? "lo" : "hi",
                          bm.name.c_str());
            spec.name = name;
            std::printf("%-16s", name);
            for (std::size_t i = 0; i < schemes.size(); i++) {
                StreamingStats t, w;
                for (std::uint32_t s = 0; s < cfg.seeds; s++) {
                    MixRunResult r =
                        runner.runMix(spec, schemes[i], s + 1);
                    t.add(r.tailDegradation);
                    w.add(r.weightedSpeedup);
                }
                tails[i].add(t.mean());
                speedups[i].add(w.mean());
                std::printf("        %5.2fx | %4.2fx", t.mean(),
                            w.mean());
            }
            std::printf("\n");
        }
    }

    std::printf("\n[bw-avg] averages over bandwidth-critical mixes\n");
    std::printf("%-16s %22s %22s\n", "scheme", "avg tail degradation",
                "avg wspeedup");
    for (std::size_t i = 0; i < schemes.size(); i++)
        std::printf("%-16s %21.3fx %21.3fx\n",
                    schemes[i].label.c_str(), tails[i].mean(),
                    speedups[i].mean());

    std::printf("\nExpected shape: contended memory degrades LC tails "
                "beyond Ubik's 5%% slack (cache QoS cannot police the "
                "memory bus); strict-priority + batch regulation pulls "
                "tails back toward the fixed-latency reference, "
                "trading some batch throughput. This validates the "
                "paper's claim that Ubik composes with bandwidth QoS "
                "(§6).\n");
    return 0;
}
