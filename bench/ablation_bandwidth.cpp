/**
 * @file
 * Bandwidth-contention ablation (the paper's §6 future work): Ubik
 * (5% slack) under fixed, contended, and partitioned memory on the
 * colocations where bandwidth actually matters — memory-intensive
 * LC apps sharing a scarce channel with streaming-heavy batch
 * mixes. Thin wrapper over the scenario registry
 * (`ubik_run ablation-bandwidth`).
 */

#include "sim/scenario.h"

int
main()
{
    return ubik::runRegisteredScenario("ablation-bandwidth");
}
