/**
 * @file
 * Reproduces Fig 11: the Fig 10 per-app comparison with simple
 * in-order cores (IPC = 1 except on LLC accesses), which are more
 * sensitive to memory latency and amplify both degradations and
 * speedups.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/log.h"

using namespace ubik;
using namespace ubik::bench;

int
main()
{
    setVerbose(false);
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.printHeader("Fig 11: per-app results, in-order cores");

    auto schemes = paperSchemes(0.05);
    std::uint32_t mixes = std::min<std::uint32_t>(cfg.mixesPerLc, 1);
    auto sweeps = runSweep(cfg, schemes, mixes, /*ooo=*/false);
    printPerApp(sweeps, "fig11");
    printAverages(sweeps, "fig11-avg");

    std::printf("\nExpected shape (paper Fig 11): versus Fig 10, "
                "best-effort schemes degrade tails *more* (in-order "
                "cores cannot hide misses) while all schemes achieve "
                "*higher* weighted speedups; StaticLC and Ubik still "
                "hold tail latency, with Ubik's speedup well above "
                "StaticLC's.\n");
    return 0;
}
