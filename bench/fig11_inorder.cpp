/**
 * @file
 * Reproduces Fig 11: the Fig 10 per-app comparison with simple
 * in-order cores (IPC = 1 except on LLC accesses), which are more
 * sensitive to memory latency and amplify both degradations and
 * speedups. Thin wrapper over the scenario registry
 * (`ubik_run fig11`).
 */

#include "sim/scenario.h"

int
main()
{
    return ubik::runRegisteredScenario("fig11");
}
