/**
 * @file
 * Reproduces Fig 10: per-LC-app tail-latency degradation (overall
 * bar + worst-mix whisker) and average weighted speedup, per load,
 * with OOO cores.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/log.h"

using namespace ubik;
using namespace ubik::bench;

int
main()
{
    setVerbose(false);
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.printHeader("Fig 10: per-app results, OOO cores");

    auto schemes = paperSchemes(0.05);
    std::uint32_t mixes = std::min<std::uint32_t>(cfg.mixesPerLc, 2);
    auto sweeps = runSweep(cfg, schemes, mixes, /*ooo=*/true);
    printPerApp(sweeps, "fig10");
    printAverages(sweeps, "fig10-avg");

    std::printf("\nExpected shape (paper Fig 10): xapian is "
                "insensitive at low load but UCP hurts it at high "
                "load; LRU/UCP/OnOff violate deadlines on masstree, "
                "shore, specjbb (inertia-heavy); Ubik matches "
                "StaticLC's tails while beating its speedups, and "
                "wins outright on xapian and moses.\n");
    return 0;
}
