/**
 * @file
 * Reproduces Fig 10: per-LC-app tail-latency degradation (overall
 * bar + worst-mix whisker) and average weighted speedup, per load,
 * with OOO cores. Thin wrapper over the scenario registry
 * (`ubik_run fig10`).
 */

#include "sim/scenario.h"

int
main()
{
    return ubik::runRegisteredScenario("fig10");
}
