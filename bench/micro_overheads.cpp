/**
 * @file
 * Microbenchmarks for §5.1.3's overhead claims: the coarse-grained
 * reconfiguration ("a few tens of thousands of cycles"), the
 * fast-path LC resize via the repartitioning table ("hundreds of
 * cycles"), and the per-access costs of the simulated hardware
 * (UMON, Vantage/zcache access).
 */

#include <benchmark/benchmark.h>

#include "cache/vantage.h"
#include "mem/memory_system.h"
#include "policy/feedback_policy.h"
#include "queueing/queue_sim.h"
#include "cache/zcache_array.h"
#include "core/ubik_policy.h"
#include "mon/umon.h"
#include "policy/lookahead.h"
#include "policy/policy_util.h"
#include "policy/repartition_table.h"
#include "common/rng.h"
#include "core/advisor.h"
#include "trace/trace_analyzer.h"
#include "workload/trace_capture.h"

using namespace ubik;

namespace {

std::vector<LookaheadInput>
syntheticInputs(std::size_t n)
{
    std::vector<LookaheadInput> inputs(n);
    Rng rng(1);
    for (auto &in : inputs) {
        double acc = 1e6 * rng.uniform(0.5, 1.5);
        double decay = rng.uniform(2.0, 12.0);
        for (int i = 0; i <= 256; i++)
            in.curve.push_back(acc /
                               (1.0 + decay * i / 256.0));
        in.minBuckets = 1;
    }
    return inputs;
}

void
BM_Lookahead(benchmark::State &state)
{
    auto inputs = syntheticInputs(static_cast<std::size_t>(
        state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(lookaheadAllocate(inputs, 256));
}
BENCHMARK(BM_Lookahead)->Arg(3)->Arg(6)->Arg(12);

void
BM_RepartitionTableBuild(benchmark::State &state)
{
    auto inputs = syntheticInputs(3);
    for (auto _ : state) {
        RepartitionTable t;
        t.build(inputs, 128, 256);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_RepartitionTableBuild);

void
BM_RepartitionTableWalk(benchmark::State &state)
{
    auto inputs = syntheticInputs(3);
    RepartitionTable t;
    t.build(inputs, 128, 256);
    std::uint64_t b = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.allocationAt(64 + b % 128));
        b += 17;
    }
}
BENCHMARK(BM_RepartitionTableWalk);

void
BM_UmonAccess(benchmark::State &state)
{
    Umon umon(196608, 32, 8, 1);
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(umon.access(rng.next() % 500000));
}
BENCHMARK(BM_UmonAccess);

void
BM_VantageHit(benchmark::State &state)
{
    Vantage v(std::make_unique<ZCacheArray>(24576, 4, 52, 1), 3);
    v.setTargetSize(1, 12288);
    v.setTargetSize(2, 12288);
    AccessContext ctx{1, 0, 0};
    for (Addr x = 0; x < 8000; x++)
        v.access(x, ctx);
    Addr x = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(v.access(x % 8000, ctx));
        x += 31;
    }
}
BENCHMARK(BM_VantageHit);

void
BM_VantageMissStream(benchmark::State &state)
{
    Vantage v(std::make_unique<ZCacheArray>(24576, 4, 52, 1), 3);
    v.setTargetSize(1, 12288);
    v.setTargetSize(2, 12288);
    AccessContext ctx{2, 1, 0};
    Addr x = 1ull << 41;
    for (auto _ : state)
        benchmark::DoNotOptimize(v.access(x++, ctx));
}
BENCHMARK(BM_VantageMissStream);

void
BM_UbikReconfigure(benchmark::State &state)
{
    // Full runtime reconfiguration: table build + per-LC sizing.
    // The paper's claim: a few tens of thousands of cycles, i.e.
    // ~tens of microseconds — negligible at 50ms intervals.
    auto array = std::make_unique<ZCacheArray>(24576, 4, 52, 1);
    Vantage scheme(std::move(array), 7);
    std::vector<std::unique_ptr<Umon>> umons;
    std::vector<std::unique_ptr<MlpProfiler>> profs;
    std::vector<AppMonitor> mons(6);
    Rng rng(3);
    for (AppId a = 0; a < 6; a++) {
        umons.push_back(std::make_unique<Umon>(24576, 32, 16, a));
        profs.push_back(std::make_unique<MlpProfiler>());
        mons[a].umon = umons[a].get();
        mons[a].mlp = profs[a].get();
        mons[a].latencyCritical = a < 3;
        mons[a].targetLines = 4096;
        mons[a].deadline = 1000000;
        ZipfDistribution zipf(8192, 0.8);
        for (int i = 0; i < 100000; i++)
            umons[a]->access((static_cast<Addr>(a) << 40) +
                             zipf(rng));
        IntervalCounters ic;
        ic.cycles = 10000000;
        ic.instructions = 10000000;
        ic.llcAccesses = 100000;
        ic.llcMisses = 20000;
        ic.missStallCycles = 2000000;
        mons[a].interval = ic;
        mons[a].intervalRequests = 40;
        profs[a]->update(ic);
    }
    UbikPolicy policy(scheme, mons);
    Cycles now = 0;
    for (auto _ : state) {
        now += 10000000;
        policy.reconfigure(now);
    }
}
BENCHMARK(BM_UbikReconfigure);

void
BM_UbikIdleActiveTransition(benchmark::State &state)
{
    // The fast path: resize LC partition + walk the table.
    auto array = std::make_unique<ZCacheArray>(24576, 4, 52, 1);
    Vantage scheme(std::move(array), 4);
    std::vector<std::unique_ptr<Umon>> umons;
    std::vector<std::unique_ptr<MlpProfiler>> profs;
    std::vector<AppMonitor> mons(3);
    Rng rng(4);
    for (AppId a = 0; a < 3; a++) {
        umons.push_back(std::make_unique<Umon>(24576, 32, 16, a));
        profs.push_back(std::make_unique<MlpProfiler>());
        mons[a].umon = umons[a].get();
        mons[a].mlp = profs[a].get();
        mons[a].latencyCritical = a == 0;
        mons[a].targetLines = 4096;
        mons[a].deadline = 1000000;
        ZipfDistribution zipf(8192, 0.8);
        for (int i = 0; i < 100000; i++)
            umons[a]->access((static_cast<Addr>(a) << 40) +
                             zipf(rng));
        IntervalCounters ic;
        ic.cycles = 10000000;
        ic.instructions = 10000000;
        ic.llcAccesses = 100000;
        ic.llcMisses = 20000;
        ic.missStallCycles = 2000000;
        mons[a].interval = ic;
        mons[a].intervalRequests = 40;
        profs[a]->update(ic);
    }
    UbikPolicy policy(scheme, mons);
    policy.reconfigure(10000000);
    Cycles now = 10000000;
    for (auto _ : state) {
        now += 1000;
        mons[0].active = false;
        policy.onIdle(0, now);
        now += 1000;
        mons[0].active = true;
        policy.onActive(0, now);
    }
}
BENCHMARK(BM_UbikIdleActiveTransition);

void
BM_ContendedMemoryAccess(benchmark::State &state)
{
    // Per-miss cost of the contended-channel model at a given load
    // (fraction of channel capacity offered).
    MemoryParams p;
    p.channels = 3;
    p.channelOccupancy = 24;
    ContendedMemory mem(p, 4);
    double load = static_cast<double>(state.range(0)) / 100.0;
    Cycles gap = static_cast<Cycles>(
        static_cast<double>(p.channelOccupancy) /
        (load * static_cast<double>(p.channels)));
    Cycles now = 0;
    AppId app = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.access(app, now));
        now += gap;
        app = (app + 1) % 4;
    }
}
BENCHMARK(BM_ContendedMemoryAccess)->Arg(30)->Arg(90);

void
BM_PartitionedMemoryAccess(benchmark::State &state)
{
    MemoryParams p;
    p.channels = 3;
    p.channelOccupancy = 24;
    PartitionedMemory mem(p, 4);
    mem.setUnregulated(0);
    Cycles now = 0;
    AppId app = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.access(app, now));
        now += 20;
        app = (app + 1) % 4;
    }
}
BENCHMARK(BM_PartitionedMemoryAccess);

void
BM_QueueSimThroughput(benchmark::State &state)
{
    // Simulated requests per second of the G/G/k queueing model.
    for (auto _ : state) {
        QueueSimParams p;
        p.workers = static_cast<std::uint32_t>(state.range(0));
        p.service = ServiceDistribution::lognormal(2e5, 0.4);
        p.meanInterarrival =
            p.service.mean() /
            (0.7 * static_cast<double>(p.workers));
        p.requests = 2000;
        p.warmup = 200;
        p.interferenceFactor = 0.2;
        QueueSim sim(p, 42);
        benchmark::DoNotOptimize(sim.run());
    }
    state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_QueueSimThroughput)->Arg(1)->Arg(4);

void
BM_FeedbackReconfigure(benchmark::State &state)
{
    // The Feedback baseline's per-interval cost (compare with
    // BM_UbikReconfigure: both are dominated by Lookahead).
    auto array = std::make_unique<ZCacheArray>(196608, 4, 52, 1);
    Vantage scheme(std::move(array), 7);
    std::vector<std::unique_ptr<Umon>> umons;
    std::vector<std::unique_ptr<MlpProfiler>> profilers;
    std::vector<AppMonitor> mons(6);
    Rng rng(7);
    for (std::uint32_t a = 0; a < 6; a++) {
        umons.push_back(
            std::make_unique<Umon>(196608, 32, 8, 100 + a));
        profilers.push_back(std::make_unique<MlpProfiler>());
        mons[a].umon = umons[a].get();
        mons[a].mlp = profilers[a].get();
        if (a < 3) {
            mons[a].latencyCritical = true;
            mons[a].targetLines = 32768;
            mons[a].deadline = 1000000;
        }
        ZipfDistribution zipf(40000, 0.8);
        for (int i = 0; i < 20000; i++)
            umons[a]->access((static_cast<Addr>(a) << 40) + zipf(rng));
    }
    FeedbackPolicy policy(scheme, mons);
    for (int i = 0; i < 25; i++)
        for (AppId a = 0; a < 3; a++)
            policy.onRequestComplete(a, 1200000);
    for (auto _ : state)
        policy.reconfigure(0);
}
BENCHMARK(BM_FeedbackReconfigure);

} // namespace

void
BM_TraceAnalyze(benchmark::State &state)
{
    // Offline pipeline cost: exact stack-distance analysis of an
    // N-access trace (O(N log N), the price of ground truth vs the
    // UMON's O(1)-per-access sampling).
    LcAppParams p = lc_presets::masstree().scaled(8.0);
    TraceData trace = captureLcTrace(
        p, static_cast<std::uint64_t>(state.range(0)), 7);
    for (auto _ : state)
        benchmark::DoNotOptimize(analyzeTrace(trace));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.accesses.size()));
}
BENCHMARK(BM_TraceAnalyze)->Arg(50)->Arg(200)->Arg(800);

void
BM_AdvisorAdvise(benchmark::State &state)
{
    // The Fig 7 option search itself (what the Ubik runtime does per
    // LC app per 50ms interval, here from an offline curve).
    LcAppParams p = lc_presets::masstree().scaled(8.0);
    TraceData trace = captureLcTrace(p, 200, 7);
    TraceAnalysis an = analyzeTrace(trace);
    AdvisorInput in;
    std::uint64_t target = p.hotLines;
    in.curve = an.missCurve(257, target * 4);
    in.intervalAccesses = an.accesses;
    in.profile.missPenalty = 100;
    in.profile.hitCyclesPerAccess = 20;
    in.profile.missRate = an.missRatioAtSize(target);
    in.profile.accessesPerCycle = 0.03;
    in.profile.valid = true;
    in.targetLines = target;
    in.deadline = static_cast<Cycles>(1e-3 * kClockHz);
    in.boostCap = target * 4;
    for (auto _ : state)
        benchmark::DoNotOptimize(advise(in));
}
BENCHMARK(BM_AdvisorAdvise);

BENCHMARK_MAIN();
