/**
 * @file
 * Trace-ingestion throughput harness: raw decoded accesses/sec.
 *
 * Trace-driven evaluation is bounded by how fast `.ubtr` records can
 * be turned into addresses, the way sweep speed is bounded by the
 * per-access engine (bench/perf_hotpath.cpp). This harness captures a
 * synthetic LC trace once, serializes it as both format versions, and
 * times every ingestion path end to end:
 *
 *   read/v1/whole       legacy flat format through readTrace()
 *   read/v2/whole       chunked v2 through readTrace()
 *   stream/v2/sync      TraceReader, batched, no prefetch thread
 *   stream/v2/prefetch  TraceReader, batched, prefetch thread on
 *   stream/v2/b4k       small (4096-record) batches, prefetch on
 *   analyze/v2/stream   full Mattson pass over the stream
 *
 * Each path runs twice: "cold" after dropping the file's page-cache
 * pages (posix_fadvise(DONTNEED), best-effort — if the kernel
 * declines, cold converges to warm) and "warm" immediately after, so
 * the JSON separates disk-bound from decode-bound throughput. The
 * decoded record stream's content hash is printed per row and must be
 * identical across every path, version, batch size, and prefetch
 * setting — the determinism the replay-fidelity tests pin, visible in
 * the perf artifact. Results land in BENCH_trace.json; the committed
 * copy at the repo root is the current trajectory point and CI
 * uploads each run's JSON.
 */

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "trace/access_trace.h"
#include "trace/trace_analyzer.h"
#include "trace/trace_reader.h"
#include "workload/trace_app.h"
#include "workload/trace_capture.h"
#include "common/cli.h"
#include "common/log.h"

namespace {

using namespace ubik;

struct Row
{
    std::string label;
    double coldSec = 0;
    double warmSec = 0;
    double coldAccPerSec = 0;
    double warmAccPerSec = 0;
    double warmMbPerSec = 0;
    std::uint64_t contentHash = 0;
};

/** Best-effort page-cache eviction for one file. */
void
dropPageCache(const std::string &path)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return;
    ::fsync(fd); // dirty pages cannot be dropped
#ifdef POSIX_FADV_DONTNEED
    ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
#endif
    ::close(fd);
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Time one ingestion pass; returns (elapsed, content hash). */
template <typename Fn>
std::pair<double, std::uint64_t>
timed(Fn &&fn)
{
    auto t0 = std::chrono::steady_clock::now();
    std::uint64_t hash = fn();
    return {secondsSince(t0), hash};
}

template <typename Fn>
Row
measure(const std::string &label, const std::string &path,
        std::uint64_t accesses, Fn &&fn)
{
    Row r;
    r.label = label;
    dropPageCache(path);
    auto [coldSec, coldHash] = timed(fn);
    auto [warmSec, warmHash] = timed(fn);
    if (coldHash != warmHash)
        fatal("%s: cold/warm content hashes differ (%016" PRIx64
              " vs %016" PRIx64 ")",
              label.c_str(), coldHash, warmHash);
    r.coldSec = coldSec;
    r.warmSec = warmSec;
    r.contentHash = warmHash;
    double n = static_cast<double>(accesses);
    r.coldAccPerSec = coldSec > 0 ? n / coldSec : 0;
    r.warmAccPerSec = warmSec > 0 ? n / warmSec : 0;
    std::error_code ec;
    auto bytes = std::filesystem::file_size(path, ec);
    r.warmMbPerSec =
        !ec && warmSec > 0
            ? static_cast<double>(bytes) / warmSec / 1e6
            : 0;
    return r;
}

std::uint64_t
drainReader(const std::string &path, TraceReaderOptions opt)
{
    TraceReader reader(path, opt);
    TraceBatch batch;
    while (reader.next(batch)) {
    }
    return reader.contentHash();
}

void
writeJson(const std::string &path, const std::vector<Row> &rows,
          std::uint64_t requests, std::uint64_t accesses,
          std::uint64_t v1Bytes, std::uint64_t v2Bytes,
          std::uint64_t seed)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot write %s", path.c_str());
    std::fprintf(f, "{\n  \"benchmark\": \"trace\",\n");
    std::fprintf(f, "  \"requests\": %" PRIu64 ",\n", requests);
    std::fprintf(f, "  \"accesses\": %" PRIu64 ",\n", accesses);
    std::fprintf(f, "  \"v1_bytes\": %" PRIu64 ",\n", v1Bytes);
    std::fprintf(f, "  \"v2_bytes\": %" PRIu64 ",\n", v2Bytes);
    std::fprintf(f, "  \"seed\": %" PRIu64 ",\n", seed);
    std::fprintf(f, "  \"configs\": [\n");
    for (std::size_t i = 0; i < rows.size(); i++) {
        const Row &r = rows[i];
        std::fprintf(
            f,
            "    {\"label\": \"%s\", "
            "\"cold_accesses_per_sec\": %.1f, "
            "\"warm_accesses_per_sec\": %.1f, "
            "\"cold_sec\": %.6f, \"warm_sec\": %.6f, "
            "\"warm_mb_per_sec\": %.2f, "
            "\"content_hash\": \"%016" PRIx64 "\"}%s\n",
            r.label.c_str(), r.coldAccPerSec, r.warmAccPerSec,
            r.coldSec, r.warmSec, r.warmMbPerSec, r.contentHash,
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("perf_trace",
            "Measure trace-ingestion throughput (accesses/sec, cold "
            "vs warmed page cache; writes BENCH_trace.json)");
    auto &accesses =
        cli.flag("accesses", static_cast<std::int64_t>(2000000),
                 "approximate accesses in the generated trace");
    auto &seed = cli.flag("seed", static_cast<std::int64_t>(1),
                          "capture seed");
    auto &out = cli.flag("out", "BENCH_trace.json",
                         "output JSON path");
    auto &analyze = cli.flag("analyze", false,
                             "also time the full Mattson analysis "
                             "pass (slow on large traces)");
    cli.parse(argc, argv);

    if (accesses.value < 1000)
        fatal("need --accesses >= 1000");

    // One capture shared by every row: specjbb at the default scale —
    // short requests, so the stream carries realistic REQUEST-record
    // density (~1:1000), plus skewed addresses for the delta coder.
    LcAppParams params = lc_presets::specjbb().scaled(8.0);
    double accPerReq =
        params.work.mean() * params.apki / 1000.0;
    std::uint64_t nreq = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(accesses.value) / accPerReq));
    TraceData td = captureLcTrace(
        params, nreq, static_cast<std::uint64_t>(seed.value));

    std::string dir =
        (std::filesystem::temp_directory_path() / "ubik_perf_trace")
            .string();
    std::filesystem::create_directories(dir);
    std::string v1Path = dir + "/perf.v1.ubtr";
    std::string v2Path = dir + "/perf.v2.ubtr";
    writeTrace(td, v1Path, TraceWriterOptions{1, 64 << 10});
    writeTrace(td, v2Path);
    std::uint64_t v1Bytes = std::filesystem::file_size(v1Path);
    std::uint64_t v2Bytes = std::filesystem::file_size(v2Path);
    std::uint64_t nacc = td.accesses.size();

    std::printf("# perf_trace: %" PRIu64 " requests, %" PRIu64
                " accesses; v1 %.1f MB, v2 %.1f MB (%.2f B/access)\n",
                static_cast<std::uint64_t>(td.requests()), nacc,
                static_cast<double>(v1Bytes) / 1e6,
                static_cast<double>(v2Bytes) / 1e6,
                static_cast<double>(v2Bytes) /
                    static_cast<double>(nacc));
    std::printf("%-20s %14s %14s %10s %18s\n", "config",
                "cold acc/s", "warm acc/s", "warm MB/s", "content hash");

    std::vector<Row> rows;
    auto addRow = [&](Row r) {
        std::printf("%-20s %14.0f %14.0f %10.1f   %016" PRIx64 "\n",
                    r.label.c_str(), r.coldAccPerSec, r.warmAccPerSec,
                    r.warmMbPerSec, r.contentHash);
        rows.push_back(std::move(r));
    };

    addRow(measure("read/v1/whole", v1Path, nacc, [&] {
        return traceContentHash(readTrace(v1Path));
    }));
    addRow(measure("read/v2/whole", v2Path, nacc, [&] {
        return traceContentHash(readTrace(v2Path));
    }));
    TraceReaderOptions sync;
    sync.prefetch = false;
    addRow(measure("stream/v2/sync", v2Path, nacc,
                   [&] { return drainReader(v2Path, sync); }));
    addRow(measure("stream/v2/prefetch", v2Path, nacc,
                   [&] { return drainReader(v2Path, {}); }));
    TraceReaderOptions small;
    small.batchRecords = 4096;
    addRow(measure("stream/v2/b4k", v2Path, nacc,
                   [&] { return drainReader(v2Path, small); }));
    if (analyze.value)
        addRow(measure("analyze/v2/stream", v2Path, nacc, [&] {
            return analyzeTraceFile(v2Path).footprintLines;
        }));

    for (std::size_t i = 1; i < rows.size(); i++)
        if (rows[i].label.rfind("analyze", 0) != 0 &&
            rows[i].contentHash != rows[0].contentHash)
            fatal("%s decoded a different record stream than %s",
                  rows[i].label.c_str(), rows[0].label.c_str());

    writeJson(out.value, rows, td.requests(), nacc, v1Bytes, v2Bytes,
              static_cast<std::uint64_t>(seed.value));
    std::printf("# wrote %s\n", out.value.c_str());

    std::error_code ec;
    std::filesystem::remove(v1Path, ec);
    std::filesystem::remove(v2Path, ec);
    return 0;
}
