/**
 * @file
 * Shared helpers for the figure/table benches: mix sweeps over
 * schemes, distribution dumps (Fig 9/13 style), and per-app summary
 * tables (Fig 10/11/12 style).
 *
 * Every bench prints machine-readable rows prefixed by a tag so the
 * output can be grepped into plotting scripts, plus a human-readable
 * summary. Results never need to match the paper's absolute numbers
 * (different substrate); the *shape* — orderings, crossovers, rough
 * factors — is the reproduction target (see EXPERIMENTS.md).
 */

#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "sim/mix_runner.h"
#include "sim/parallel_sweep.h"
#include "sim/result_cache.h"
#include "stats/streaming_stats.h"
#include "trace/csv.h"
#include "workload/mix.h"

namespace ubik {
namespace bench {

/** All results one scheme produced over a mix sweep. */
struct SweepResult
{
    std::string label;
    std::vector<MixRunResult> runs;      ///< one per (mix, seed)
    std::vector<std::string> mixNames;   ///< parallel to runs
};

/** Print a ResultCache's counters (sweep epilogue, --cache-stats). */
inline void
printCacheStats(const ResultCache &cache, std::FILE *out = stderr)
{
    CacheStats st = cache.stats();
    std::fprintf(out,
                 "  [cache] %s: %llu hits (%llu mix), %llu misses "
                 "(%llu mix), %llu stores, %llu stale evicted, "
                 "%llu corrupt dropped\n",
                 cache.dir().c_str(),
                 static_cast<unsigned long long>(st.hits),
                 static_cast<unsigned long long>(st.mixHits),
                 static_cast<unsigned long long>(st.misses),
                 static_cast<unsigned long long>(st.mixMisses),
                 static_cast<unsigned long long>(st.stores),
                 static_cast<unsigned long long>(st.evicted),
                 static_cast<unsigned long long>(st.corrupt));
}

/**
 * Run `schemes` over an explicit mix list through the parallel
 * experiment engine (UBIK_JOBS workers; results are bit-identical to
 * the sequential order for any worker count). When cfg.cacheDir is
 * set (UBIK_CACHE_DIR), mix results and baselines persist across
 * invocations and only never-seen configurations are simulated. Used
 * directly by benches whose question is only posed on specific
 * colocations (e.g. cache-hungry batch mixes for the Ubik-knob
 * ablations).
 */
inline std::vector<SweepResult>
runCustomSweep(const ExperimentConfig &cfg,
               const std::vector<SchemeUnderTest> &schemes,
               const std::vector<MixSpec> &mixes, bool ooo = true)
{
    MixRunner runner(cfg, ooo);
    std::unique_ptr<ResultCache> cache = ResultCache::open(cfg.cacheDir);
    runner.attachCache(cache.get());
    ParallelSweep engine(runner, cfg.jobs);
    engine.attachCache(cache.get());
    std::vector<SweepJob> jobs =
        buildSweepJobs(schemes, mixes, cfg.seeds);
    // Live progress from inside the engine (the per-scheme summary
    // lines below only appear once the whole sweep is done).
    std::size_t step = std::max<std::size_t>(1, jobs.size() / 20);
    std::vector<MixRunResult> results =
        engine.run(jobs, [&](const SweepProgress &p) {
            if (p.done % step == 0 || p.done == p.total)
                std::fprintf(stderr,
                             "  [sweep] %zu/%zu runs done "
                             "(%zu cached, %zu computed, %.1fs)\n",
                             p.done, p.total, p.hits, p.computed,
                             p.elapsedSec);
        });
    if (cache)
        printCacheStats(*cache);

    // Regroup the flat job-ordered results per scheme (jobs are
    // scheme-major, so each scheme's block is contiguous).
    std::vector<SweepResult> out;
    std::size_t next = 0;
    for (const auto &sut : schemes) {
        SweepResult sr;
        sr.label = sut.label;
        for (const auto &mix : mixes)
            for (std::uint32_t s = 0; s < cfg.seeds; s++) {
                sr.runs.push_back(results[next++]);
                sr.mixNames.push_back(mix.name);
            }
        std::fprintf(stderr, "  [%s] %zu runs done (%u workers)\n",
                     sr.label.c_str(), sr.runs.size(),
                     engine.workers());
        out.push_back(std::move(sr));
    }
    return out;
}

/**
 * Run `schemes` over the standard mix matrix.
 *
 * @param cfg experiment scale/requests/seeds configuration
 * @param schemes configurations to evaluate
 * @param mixes_per_lc batch mixes per LC config (caps cfg.mixesPerLc)
 * @param ooo out-of-order (true) or in-order cores
 * @param only_load if >= 0, restrict to that load point
 */
inline std::vector<SweepResult>
runSweep(const ExperimentConfig &cfg,
         const std::vector<SchemeUnderTest> &schemes,
         std::uint32_t mixes_per_lc, bool ooo = true,
         double only_load = -1.0)
{
    std::vector<MixSpec> mixes;
    for (auto &mix : buildMixes(2, /*seed=*/1, mixes_per_lc)) {
        if (only_load >= 0 && std::abs(mix.lc.load - only_load) > 1e-9)
            continue;
        mixes.push_back(std::move(mix));
    }
    return runCustomSweep(cfg, schemes, mixes, ooo);
}

/**
 * Mixes whose batch apps have real marginal utility for freed cache
 * space (friendly/fitting/streaming classes). Ubik only downsizes —
 * and so only boosts and de-boosts — when the cost-benefit analysis
 * sees batch demand, so knob ablations sweep these instead of the
 * full matrix (where insensitive combos dilute the signal to zero).
 */
inline std::vector<MixSpec>
cacheHungryMixes()
{
    const std::vector<std::array<BatchClass, 3>> combos = {
        {BatchClass::Friendly, BatchClass::Friendly,
         BatchClass::Streaming},
        {BatchClass::Friendly, BatchClass::Fitting,
         BatchClass::Fitting},
    };
    std::vector<MixSpec> out;
    for (const LcConfig &lc : buildLcConfigs()) {
        std::uint32_t v = 0;
        for (const auto &combo : combos) {
            MixSpec m;
            m.lc = lc;
            m.batch.name = std::string() +
                           batchClassCode(combo[0]) +
                           batchClassCode(combo[1]) +
                           batchClassCode(combo[2]);
            for (std::size_t i = 0; i < 3; i++)
                m.batch.apps[i] = batch_presets::make(combo[i], v + 1);
            m.name = lc.app.name + (lc.load < 0.4 ? "-lo" : "-hi") +
                     "/" + m.batch.name;
            v++;
            out.push_back(std::move(m));
        }
    }
    return out;
}

/** Fig 9/13-style distribution dump: per scheme, runs sorted worst to
 *  best, printed at evenly spaced quantiles. */
inline void
printDistributions(const std::vector<SweepResult> &sweeps,
                   const char *tag)
{
    std::printf("\n[%s] tail-latency degradation distribution "
                "(sorted worst->best)\n",
                tag);
    std::printf("%-14s", "scheme");
    for (int q = 0; q <= 10; q++)
        std::printf(" %6d%%", q * 10);
    std::printf("\n");
    for (const auto &s : sweeps) {
        std::vector<double> v;
        for (const auto &r : s.runs)
            v.push_back(r.tailDegradation);
        std::sort(v.begin(), v.end(), std::greater<double>());
        std::printf("%-14s", s.label.c_str());
        for (int q = 0; q <= 10; q++) {
            std::size_t i = std::min(
                v.size() - 1, q * (v.size() - 1) / 10);
            std::printf(" %6.2f", v.empty() ? 0.0 : v[i]);
        }
        std::printf("\n");
    }
    std::printf("\n[%s] weighted speedup distribution "
                "(sorted worst->best)\n",
                tag);
    std::printf("%-14s", "scheme");
    for (int q = 0; q <= 10; q++)
        std::printf(" %6d%%", q * 10);
    std::printf("\n");
    for (const auto &s : sweeps) {
        std::vector<double> v;
        for (const auto &r : s.runs)
            v.push_back(r.weightedSpeedup);
        std::sort(v.begin(), v.end());
        std::printf("%-14s", s.label.c_str());
        for (int q = 0; q <= 10; q++) {
            std::size_t i = std::min(
                v.size() - 1, q * (v.size() - 1) / 10);
            std::printf(" %6.2f", v.empty() ? 0.0 : v[i]);
        }
        std::printf("\n");
    }
}

/**
 * If UBIK_CSV_DIR is set, dump every (scheme, mix, seed) run of the
 * sweep as <dir>/<tag>_runs.csv for plotting.
 */
inline void
maybeExportCsv(const std::vector<SweepResult> &sweeps, const char *tag)
{
    const char *dir = std::getenv("UBIK_CSV_DIR");
    if (!dir || !*dir)
        return;
    CsvWriter csv(std::string(dir) + "/" + tag + "_runs.csv");
    csv.row(std::vector<std::string>{"scheme", "mix",
                                     "tail_degradation",
                                     "mean_degradation",
                                     "weighted_speedup"});
    for (const auto &s : sweeps) {
        for (std::size_t i = 0; i < s.runs.size(); i++) {
            const MixRunResult &r = s.runs[i];
            char td[32], md[32], ws[32];
            std::snprintf(td, sizeof(td), "%.6f", r.tailDegradation);
            std::snprintf(md, sizeof(md), "%.6f", r.meanDegradation);
            std::snprintf(ws, sizeof(ws), "%.6f", r.weightedSpeedup);
            csv.row(std::vector<std::string>{s.label, s.mixNames[i],
                                             td, md, ws});
        }
    }
    std::fprintf(stderr, "  [%s] wrote %s/%s_runs.csv\n", tag, dir,
                 tag);
}

/** Table 3-style averages. */
inline void
printAverages(const std::vector<SweepResult> &sweeps, const char *tag)
{
    maybeExportCsv(sweeps, tag);
    std::printf("\n[%s] averages\n", tag);
    std::printf("%-14s %22s %22s %18s\n", "scheme",
                "avg tail degradation", "worst tail degradation",
                "avg wspeedup");
    for (const auto &s : sweeps) {
        StreamingStats tail, ws;
        for (const auto &r : s.runs) {
            tail.add(r.tailDegradation);
            ws.add(r.weightedSpeedup);
        }
        std::printf("%-14s %21.3fx %21.3fx %16.1f%%\n",
                    s.label.c_str(), tail.mean(), tail.max(),
                    (ws.mean() - 1.0) * 100.0);
    }
}

/** Fig 10/11-style per-LC-app breakdown: overall + worst-mix tail
 *  degradation (bar + whisker) and average weighted speedup. */
inline void
printPerApp(const std::vector<SweepResult> &sweeps, const char *tag)
{
    std::printf("\n[%s] per-app breakdown "
                "(tail degradation: overall/worst | wspeedup avg)\n",
                tag);
    std::printf("%-18s", "app/load");
    for (const auto &s : sweeps)
        std::printf(" %20s", s.label.c_str());
    std::printf("\n");
    // Group rows by the "<app>-<lo|hi>/" prefix of the mix name.
    std::vector<std::string> keys;
    for (const auto &s : sweeps)
        for (const auto &name : s.mixNames) {
            std::string key = name.substr(0, name.find('/'));
            if (std::find(keys.begin(), keys.end(), key) ==
                keys.end())
                keys.push_back(key);
        }
    for (const auto &key : keys) {
        std::printf("%-18s", key.c_str());
        for (const auto &s : sweeps) {
            StreamingStats tail, ws;
            for (std::size_t i = 0; i < s.runs.size(); i++) {
                if (s.mixNames[i].rfind(key + "/", 0) != 0)
                    continue;
                tail.add(s.runs[i].tailDegradation);
                ws.add(s.runs[i].weightedSpeedup);
            }
            std::printf("   %5.2f/%5.2f | %5.2f", tail.mean(),
                        tail.max(), ws.mean());
        }
        std::printf("\n");
    }
}

} // namespace bench
} // namespace ubik
