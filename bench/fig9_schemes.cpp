/**
 * @file
 * Reproduces Fig 9 and Table 3: distributions of tail-latency
 * degradation (LC apps) and weighted speedup (batch apps) for LRU,
 * UCP, OnOff, StaticLC, and Ubik (5% slack) over the mix matrix,
 * split into low-load (20%) and high-load (60%) halves.
 *
 * Thin wrapper over the scenario registry — `ubik_run fig9` is the
 * same experiment with overrides and spec-file support; this
 * executable stays for script/CI compatibility. The registry path is
 * golden-tested bit-identical to the legacy sweep loops
 * (tests/integration/scenario_golden_test.cpp).
 */

#include "sim/scenario.h"

int
main()
{
    return ubik::runRegisteredScenario("fig9");
}
