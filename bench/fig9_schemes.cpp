/**
 * @file
 * Reproduces Fig 9 and Table 3: distributions of tail-latency
 * degradation (LC apps) and weighted speedup (batch apps) for LRU,
 * UCP, OnOff, StaticLC, and Ubik (5% slack) over the mix matrix,
 * split into low-load (20%) and high-load (60%) halves.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/log.h"

using namespace ubik;
using namespace ubik::bench;

int
main()
{
    setVerbose(false);
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.printHeader("Fig 9 / Table 3: scheme comparison over the mix "
                    "matrix");

    auto schemes = paperSchemes(0.05);
    auto sweeps =
        runSweep(cfg, schemes, cfg.mixesPerLc, /*ooo=*/true);

    // Split rows by load using the mix-name tag.
    auto split = [&](const char *tag) {
        std::vector<SweepResult> part;
        for (const auto &s : sweeps) {
            SweepResult p;
            p.label = s.label;
            for (std::size_t i = 0; i < s.runs.size(); i++) {
                if (s.mixNames[i].find(tag) == std::string::npos)
                    continue;
                p.runs.push_back(s.runs[i]);
                p.mixNames.push_back(s.mixNames[i]);
            }
            part.push_back(std::move(p));
        }
        return part;
    };

    auto low = split("-lo/");
    auto high = split("-hi/");
    printDistributions(low, "fig9a-low-load");
    printAverages(low, "table3-low-load");
    printDistributions(high, "fig9b-high-load");
    printAverages(high, "table3-high-load");

    std::printf("\nExpected shape (paper Fig 9 / Table 3): LRU, UCP, "
                "and OnOff show heavy worst-case tail degradation "
                "(paper: up to ~2.3x); StaticLC and Ubik hold "
                "degradation ~1 (Ubik within its 5%% slack); batch "
                "speedup ordering UCP ~ OnOff >= Ubik > LRU > "
                "StaticLC > 1.\n");
    return 0;
}
