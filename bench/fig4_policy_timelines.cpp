/**
 * @file
 * Reproduces Fig 4: qualitative allocation timelines of UCP,
 * StaticLC, OnOff, and Ubik on a mix of two latency-critical and two
 * batch apps, rendered as sampled per-partition allocation rows.
 */

#include <cstdio>

#include "sim/cmp.h"
#include "sim/experiment.h"
#include "sim/mix_runner.h"
#include "workload/lc_app.h"
#include "common/log.h"

using namespace ubik;

namespace {

void
runPolicy(const ExperimentConfig &cfg, PolicyKind policy, double slack)
{
    MixRunner runner(cfg);
    LcAppParams app = lc_presets::specjbb();
    const LcBaseline &base = runner.lcBaseline(app, 0.2, 1);

    CmpConfig cc = cfg.baseCmpConfig();
    cc.policy = policy;
    cc.slack = slack;
    cc.traceAllocations = true;
    cc.traceInterval = cfg.reconfigInterval() / 16;

    LcAppSpec lc;
    lc.params = app.scaled(cfg.scale);
    lc.meanInterarrival = base.meanInterarrival;
    lc.roiRequests = 60;
    lc.warmupRequests = 20;
    lc.targetLines = cfg.privateLines();
    lc.deadline = base.p95;

    BatchAppSpec b1, b2;
    b1.params =
        batch_presets::make(BatchClass::Friendly, 1).scaled(cfg.scale);
    b2.params =
        batch_presets::make(BatchClass::Fitting, 2).scaled(cfg.scale);

    Cmp cmp(cc, {lc, lc}, {b1, b2}, /*seed=*/5);
    cmp.run();

    std::printf("\n[fig4] %s allocation timeline "
                "(%% of LLC; LC1 LC2 B1 B2 per sample)\n",
                policyKindName(policy));
    const auto &trace = cmp.allocTrace();
    double total = static_cast<double>(cc.llcLines);
    // Print up to 40 evenly spaced samples.
    std::size_t stride = trace.size() > 40 ? trace.size() / 40 : 1;
    for (std::size_t i = 0; i < trace.size(); i += stride) {
        const auto &s = trace[i];
        std::printf("[fig4] %-9s t=%7.2fms ",
                    policyKindName(policy), cyclesToMs(s.cycle));
        for (PartId p = 1; p < s.targetLines.size(); p++)
            std::printf(" %5.1f%%",
                        100.0 *
                            static_cast<double>(s.targetLines[p]) /
                            total);
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    setVerbose(false);
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.printHeader("Fig 4: policy allocation timelines "
                    "(2 LC + 2 batch apps)");

    runPolicy(cfg, PolicyKind::Ucp, 0.0);
    runPolicy(cfg, PolicyKind::StaticLc, 0.0);
    runPolicy(cfg, PolicyKind::OnOff, 0.0);
    runPolicy(cfg, PolicyKind::Ubik, 0.05);

    std::printf("\nExpected shape (paper Fig 4): UCP starves the "
                "mostly-idle LC apps; StaticLC pins their targets "
                "flat; OnOff swings between 0 and the full target on "
                "every idle/active edge; Ubik swings between s_idle "
                "and s_boost with batch apps absorbing the slack.\n");
    return 0;
}
