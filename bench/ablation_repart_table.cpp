/**
 * @file
 * Ablation for Fig 8: how much batch-miss quality the greedy
 * repartitioning table gives up versus running full Lookahead at
 * every budget (the expensive alternative it replaces), across
 * anchor placements and batch-mix shapes.
 */

#include <cstdio>

#include "policy/lookahead.h"
#include "policy/repartition_table.h"
#include "sim/experiment.h"
#include "workload/batch_app.h"
#include "mon/umon.h"
#include "common/log.h"
#include "common/rng.h"

using namespace ubik;

namespace {

/** Synthesize a miss curve by running a batch generator through a
 *  UMON (the same signal the runtime would see). */
LookaheadInput
curveOf(BatchClass cls, std::uint32_t variation, std::uint64_t llc)
{
    auto params = batch_presets::make(cls, variation).scaled(8.0);
    BatchApp app(params, variation, Rng(variation + 1));
    Umon umon(llc, 32, 32, variation * 31 + 7);
    for (int i = 0; i < 400000; i++)
        umon.access(app.nextAddr());
    LookaheadInput in;
    in.curve = umon.missCurve(257).values();
    in.minBuckets = 1;
    return in;
}

} // namespace

int
main()
{
    setVerbose(false);
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.printHeader("Ablation (Fig 8): repartitioning table vs full "
                    "Lookahead at every budget");

    const std::uint64_t llc = cfg.llcLines();
    struct Mix
    {
        const char *name;
        BatchClass a, b, c;
    };
    for (Mix mix : {Mix{"nft", BatchClass::Insensitive,
                        BatchClass::Friendly, BatchClass::Fitting},
                    Mix{"ffs", BatchClass::Friendly,
                        BatchClass::Friendly, BatchClass::Streaming},
                    Mix{"ttf", BatchClass::Fitting,
                        BatchClass::Fitting, BatchClass::Friendly}}) {
        std::vector<LookaheadInput> inputs = {
            curveOf(mix.a, 3, llc), curveOf(mix.b, 9, llc),
            curveOf(mix.c, 17, llc)};

        auto misses_of = [&](const std::vector<std::uint64_t> &alloc) {
            double total = 0;
            for (std::size_t i = 0; i < inputs.size(); i++) {
                const auto &c = inputs[i].curve;
                std::uint64_t b =
                    std::min<std::uint64_t>(alloc[i], c.size() - 1);
                total += c[b];
            }
            return total;
        };

        for (std::uint64_t anchor : {64ull, 128ull, 192ull}) {
            RepartitionTable table;
            table.build(inputs, anchor, 256);
            double worst = 0, sum = 0, near_sum = 0;
            int n = 0, near_n = 0;
            for (std::uint64_t budget = 8; budget <= 256;
                 budget += 8) {
                double greedy =
                    misses_of(table.allocationAt(budget));
                double optimal =
                    misses_of(lookaheadAllocate(inputs, budget));
                double rel =
                    optimal > 0 ? (greedy - optimal) / optimal : 0;
                worst = std::max(worst, rel);
                sum += rel;
                n++;
                // The regime the paper argues matters: budgets close
                // to the anchor (batch space is near its average).
                if (budget + 32 >= anchor && budget <= anchor + 32) {
                    near_sum += rel;
                    near_n++;
                }
            }
            std::printf("[fig8] mix=%s anchor=%3llu: excess misses "
                        "vs Lookahead: near-anchor avg %5.2f%%, "
                        "global avg %5.2f%%, worst %6.2f%% "
                        "(far-from-anchor, non-convex curves)\n",
                        mix.name,
                        static_cast<unsigned long long>(anchor),
                        near_n ? 100.0 * near_sum / near_n : 0.0,
                        100.0 * sum / n, 100.0 * worst);
        }
    }

    std::printf("\nExpected shape (paper §5.1.2): the greedy table "
                "tracks Lookahead closely near the anchor and stays "
                "within a few percent overall — 'it works well in "
                "practice because the space available to batch apps "
                "is often close to the average'.\n");
    return 0;
}
