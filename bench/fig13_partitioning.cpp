/**
 * @file
 * Reproduces Fig 13: Ubik (5% slack) under different partitioning
 * schemes and arrays — way-partitioning on SA16/SA64 and Vantage on
 * SA16/SA64/Z4-52 — showing why Ubik needs fine-grained partitioning
 * with analyzable transients.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/log.h"

using namespace ubik;
using namespace ubik::bench;

int
main()
{
    setVerbose(false);
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.printHeader("Fig 13: partitioning-scheme sensitivity "
                    "(Ubik, 5% slack)");

    std::vector<SchemeUnderTest> schemes = {
        {"WayPart-SA16", SchemeKind::WayPart, ArrayKind::SA16,
         PolicyKind::Ubik, 0.05},
        {"WayPart-SA64", SchemeKind::WayPart, ArrayKind::SA64,
         PolicyKind::Ubik, 0.05},
        {"Vantage-SA16", SchemeKind::Vantage, ArrayKind::SA16,
         PolicyKind::Ubik, 0.05},
        {"Vantage-SA64", SchemeKind::Vantage, ArrayKind::SA64,
         PolicyKind::Ubik, 0.05},
        {"Vantage-Z4/52", SchemeKind::Vantage, ArrayKind::Z4_52,
         PolicyKind::Ubik, 0.05},
    };

    std::uint32_t mixes = std::min<std::uint32_t>(cfg.mixesPerLc, 1);
    auto sweeps = runSweep(cfg, schemes, mixes, /*ooo=*/true);
    printDistributions(sweeps, "fig13");
    printAverages(sweeps, "fig13-avg");

    std::printf("\nExpected shape (paper Fig 13): way-partitioning "
                "misses deadlines (coarse sizes, slow unpredictable "
                "transients), SA16 hurts even under Vantage (forced "
                "evictions), Vantage on SA64 comes close to the "
                "zcache, and Vantage on Z4/52 is best on both "
                "axes.\n");
    return 0;
}
