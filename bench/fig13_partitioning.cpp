/**
 * @file
 * Reproduces Fig 13: Ubik (5% slack) under different partitioning
 * schemes and arrays — way-partitioning on SA16/SA64 and Vantage on
 * SA16/SA64/Z4-52 — showing why Ubik needs fine-grained partitioning
 * with analyzable transients. Thin wrapper over the scenario
 * registry (`ubik_run fig13`).
 */

#include "sim/scenario.h"

int
main()
{
    return ubik::runRegisteredScenario("fig13");
}
