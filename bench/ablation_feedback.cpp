/**
 * @file
 * Feedback-control ablation (§2.1's argument, quantified): a
 * representative proportional-feedback controller (FeedbackPolicy)
 * against StaticLC (predictively safe) and Ubik (predictively safe
 * *and* efficient) over the standard mixes. Thin wrapper over the
 * scenario registry (`ubik_run ablation-feedback`).
 */

#include "sim/scenario.h"

int
main()
{
    return ubik::runRegisteredScenario("ablation-feedback");
}
