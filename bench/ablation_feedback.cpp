/**
 * @file
 * Feedback-control ablation (§2.1's argument, quantified).
 *
 * Prior QoS frameworks adapt to *observed* performance across
 * intervals (Cook et al., METE, PACORA). The paper argues they
 * cannot protect tails: the burst that violates the deadline has
 * already happened by the time the controller reacts, and long
 * low-performance periods dominate tail latency. This bench pits a
 * representative proportional-feedback controller (FeedbackPolicy)
 * against StaticLC (predictively safe) and Ubik (predictively safe
 * *and* efficient) over the standard mixes.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/log.h"

using namespace ubik;
using namespace ubik::bench;

int
main()
{
    setVerbose(false);
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.printHeader("Ablation: feedback control vs prediction");

    std::vector<SchemeUnderTest> schemes;
    {
        SchemeUnderTest s;
        s.label = "Feedback";
        s.policy = PolicyKind::Feedback;
        s.slack = 0.0;
        schemes.push_back(s);

        s.label = "StaticLC";
        s.policy = PolicyKind::StaticLc;
        schemes.push_back(s);

        s.label = "Ubik";
        s.policy = PolicyKind::Ubik;
        s.slack = 0.05;
        schemes.push_back(s);
    }

    std::uint32_t mixes = std::min<std::uint32_t>(cfg.mixesPerLc, 2);
    auto sweeps = runSweep(cfg, schemes, mixes, /*ooo=*/true);
    printPerApp(sweeps, "feedback");
    printAverages(sweeps, "feedback-avg");

    std::printf("\nExpected shape (§2.1): Feedback reclaims idle LC "
                "space like Ubik does, so its batch speedups beat "
                "StaticLC — but its tail degradations are looser and "
                "its worst mixes violate the deadline, because the "
                "controller reacts one interval after each burst. "
                "Ubik matches or beats its speedup while holding "
                "tails, because it prices transients *before* taking "
                "space.\n");
    return 0;
}
