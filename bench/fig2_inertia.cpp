/**
 * @file
 * Reproduces Fig 2: LLC access breakdown by "requests ago" (hits
 * classified by how many requests back the line was last touched)
 * with 2MB- and 8MB-equivalent LLCs, plus APKI — the performance-
 * inertia characterization.
 */

#include <cstdio>

#include "sim/cmp.h"
#include "sim/experiment.h"
#include "workload/lc_app.h"
#include "common/log.h"

using namespace ubik;

namespace {

void
runOne(const ExperimentConfig &cfg, const LcAppParams &app,
       std::uint64_t llc_lines, const char *tag)
{
    CmpConfig cc = cfg.baseCmpConfig();
    cc.privateLlc = true;
    cc.privateLinesPerCore = llc_lines;
    cc.trackInertia = true;

    LcAppSpec spec;
    spec.params = app.scaled(cfg.scale);
    spec.meanInterarrival = 0; // back-to-back requests, as in Fig 2
    spec.roiRequests = cfg.roiRequests * 2;
    spec.warmupRequests = cfg.warmupRequests;
    spec.targetLines = llc_lines;

    Cmp cmp(cc, {spec}, {}, /*seed=*/1);
    cmp.run();
    const LcResult &r = cmp.lcResult(0);

    double total = static_cast<double>(r.accesses);
    std::printf("[%s] %-9s APKI=%5.1f  misses=%5.1f%%  hits by "
                "requests-ago:",
                tag, app.name.c_str(), r.apki(),
                100.0 * static_cast<double>(r.misses) / total);
    for (int age = 0; age <= 8; age++)
        std::printf(" %d:%4.1f%%", age,
                    100.0 * static_cast<double>(r.hitsByAge[age]) /
                        total);
    std::printf(" (8 = 8+ requests ago)\n");
}

} // namespace

int
main()
{
    setVerbose(false);
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.printHeader("Fig 2: LLC access breakdown / performance "
                    "inertia (2MB vs 8MB equivalents)");

    std::printf("\n[fig2a] 2MB-equivalent LLC\n");
    for (const auto &app : lc_presets::all())
        runOne(cfg, app, cfg.privateLines(), "fig2a");

    std::printf("\n[fig2b] 8MB-equivalent LLC\n");
    for (const auto &app : lc_presets::all())
        runOne(cfg, app, cfg.llc8MbLines(), "fig2b");

    std::printf("\nExpected shape (paper Fig 2): >50%% of hits come "
                "from lines last touched by *previous* requests; the "
                "8MB cache shows lower miss rates and deeper "
                "cross-request reuse (more inertia).\n");
    return 0;
}
