/**
 * @file
 * Reproduces Fig 1 (and prints Table 1): load-latency curves (mean
 * and 95th-pct tail-mean) and service-time CDFs for the five LC
 * workloads, each running alone on a private 2MB-equivalent LLC.
 */

#include <cstdio>

#include "sim/mix_runner.h"
#include "workload/lc_app.h"
#include "common/log.h"

using namespace ubik;

int
main()
{
    setVerbose(false);
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.printHeader("Fig 1 / Table 1: load-latency and service-time "
                    "CDFs of the LC workloads");

    // Table 1: workload configurations.
    std::printf("\n[table1] workload, APKI, mean work (kinstr), "
                "hot set (KB), paper ROI requests\n");
    for (const auto &p : lc_presets::all())
        std::printf("[table1] %-9s %5.1f %10.0f %10.0f %8llu\n",
                    p.name.c_str(), p.apki, p.work.mean() / 1e3,
                    static_cast<double>(p.hotLines * kLineBytes) /
                        1024.0,
                    static_cast<unsigned long long>(p.requests));

    MixRunner runner(cfg);
    const double loads[] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8};

    for (const auto &app : lc_presets::all()) {
        std::printf("\n[fig1a] %s: load, mean latency (ms), 95p tail "
                    "mean (ms)\n",
                    app.name.c_str());
        LatencyRecorder service;
        for (double load : loads) {
            LatencyRecorder lat =
                runner.runAlone(app, load, /*seed=*/1,
                                load == 0.2 ? &service : nullptr);
            std::printf("[fig1a] %-9s %4.1f %10.4f %10.4f\n",
                        app.name.c_str(), load,
                        cyclesToMs(static_cast<Cycles>(lat.mean())) *
                            cfg.scale,
                        cyclesToMs(static_cast<Cycles>(
                            lat.tailMean(95.0))) *
                            cfg.scale);
        }
        // Fig 1b: service-time CDF at 20% load (scaled back to
        // full-machine milliseconds for comparability).
        std::printf("[fig1b] %s service-time percentiles (ms): ",
                    app.name.c_str());
        for (double pct : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0})
            std::printf("p%.0f=%.4f ", pct,
                        cyclesToMs(static_cast<Cycles>(
                            service.percentile(pct))) *
                            cfg.scale);
        std::printf("\n");
    }

    std::printf("\nExpected shape (paper Fig 1): tail >> mean, both "
                "rising steeply beyond ~60-70%% load; masstree/moses "
                "near-constant service CDFs, xapian/shore/specjbb "
                "multimodal or long-tailed.\n");
    return 0;
}
