/**
 * @file
 * Multi-worker server ablation (the paper's §3.3 discussion).
 *
 * The paper's LC servers are single-worker FIFO; §3.3 describes the
 * tradeoff of multi-worker servers qualitatively: servicing requests
 * concurrently cuts queueing delay at high load, but workers
 * interfere, block on critical sections, and (in OLTP) concurrent
 * requests occasionally abort, degrading tail latency. This bench
 * quantifies that tradeoff with the queueing simulator: worker count
 * x load x interference sweeps over the masstree-like (near-constant
 * service) and shore-like (multimodal, abort-prone) shapes.
 */

#include <cstdio>

#include "queueing/queue_sim.h"
#include "common/log.h"
#include "common/types.h"

using namespace ubik;

namespace {

struct Shape
{
    const char *name;
    ServiceDistribution dist;
    double abortProb; ///< only with >1 worker (OLTP conflicts)
};

void
sweepShape(const Shape &shape)
{
    std::printf("\n[multiworker] %s (E[S]=%.2f ms)\n", shape.name,
                cyclesToMs(static_cast<Cycles>(shape.dist.mean())));
    std::printf("%-26s %10s %12s %12s %10s\n", "config", "load",
                "mean (ms)", "95p tail (ms)", "aborts");
    for (std::uint32_t workers : {1u, 2u, 4u}) {
        for (double interference : {0.0, 0.25}) {
            if (workers == 1 && interference > 0)
                continue; // interference needs concurrency
            for (double load : {0.3, 0.7}) {
                QueueSimParams p;
                p.workers = workers;
                p.service = shape.dist;
                p.meanInterarrival =
                    shape.dist.mean() /
                    (load * static_cast<double>(workers));
                p.interferenceFactor = interference;
                p.abortProb = workers > 1 ? shape.abortProb : 0.0;
                p.requests = 20000;
                p.warmup = 2000;
                QueueSimResult r = QueueSim(p, 12345).run();
                char label[64];
                std::snprintf(label, sizeof(label),
                              "k=%u interference=%.2f", workers,
                              interference);
                std::printf("%-26s %10.2f %12.3f %12.3f %10llu\n",
                            label, load,
                            cyclesToMs(static_cast<Cycles>(
                                r.latencies.mean())),
                            cyclesToMs(static_cast<Cycles>(
                                r.latencies.tailMean(95.0))),
                            static_cast<unsigned long long>(r.aborts));
            }
        }
    }
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("## Ablation (§3.3): multi-worker latency-critical "
                "servers\n");
    std::printf("# G/G/k FIFO queueing model; service shapes from the "
                "paper's Fig 1b taxonomy\n");

    Shape masstree{"masstree-like (near-constant service)",
                   ServiceDistribution::lognormal(640000, 0.1), 0.0};
    Shape shore{"shore-like (multimodal OLTP, abort-prone)",
                ServiceDistribution::multimodal({{0.45, 250000, 0.2},
                                                 {0.35, 900000, 0.2},
                                                 {0.20, 2600000, 0.3}}),
                0.08};

    sweepShape(masstree);
    sweepShape(shore);

    std::printf(
        "\nExpected shape (per §3.3): at high load, more workers cut "
        "queueing delay sharply (pooling); interference inflates both "
        "mean and tail, eroding that win — and can push effective "
        "utilization past 1.0, collapsing the server (the k=4, 25%%-"
        "interference, 70%%-load rows); OLTP-style aborts hit the "
        "tail hardest. The best worker count thus depends on load and "
        "the workload's contention profile — the nuance that led the "
        "paper to defer multithreaded LC workloads.\n");
    return 0;
}
