/**
 * @file
 * Hot-path throughput harness: raw simulated-LLC accesses/sec.
 *
 * Unlike the figure benches, this does not run the CMP event loop:
 * it drives PartitionScheme::access directly with a fixed-seed
 * synthetic address stream, so the number it reports is the per-access
 * simulation speed that bounds every sweep (the zcache walk, the
 * victim scans, the UMON probes). One row per scheme/array
 * configuration (Z4/52, SA16, SA64, way-partitioning) plus the UMON
 * front-end, written to BENCH_hotpath.json so CI can track the
 * throughput trajectory across PRs.
 *
 * The stream, seeds, and salts are fixed: the reported state_hash
 * (tags + metadata + counters after the run) must be identical across
 * hosts and across refactors of the access engine — only the
 * accesses/sec may change. `UBIK_JOBS` / `UBIK_CACHE_DIR` do not apply
 * here (no sweep, no cacheable results); they compose with the sweep
 * benches this harness exists to speed up.
 */

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cache/scheme.h"
#include "cache/set_assoc_array.h"
#include "cache/vantage.h"
#include "cache/way_partitioning.h"
#include "cache/zcache_array.h"
#include "common/cli.h"
#include "common/hash.h"
#include "common/log.h"
#include "common/rng.h"
#include "mon/umon.h"
#include "sim/cmp.h"

namespace {

using namespace ubik;

constexpr std::uint32_t kApps = 6;

/** One measured configuration. */
struct Row
{
    std::string label;
    double elapsedSec = 0;
    double accPerSec = 0;
    double hitRate = 0;
    std::uint64_t stateHash = 0;
};

/**
 * Deterministic address stream: apps round-robin, each app uniform
 * over its own working set. Working sets range from half a fair share
 * to 3x so the blend covers cache-resident apps (hit-dominated
 * lookups) and thrashing apps (miss walks + evictions), like a mix.
 */
std::vector<Addr>
buildStream(std::uint64_t n, std::uint64_t llc_lines, std::uint64_t seed)
{
    const double wsFactor[kApps] = {0.5, 0.75, 1.0, 1.5, 2.0, 3.0};
    std::uint64_t share = llc_lines / kApps;
    Rng rng(seed);
    std::vector<Addr> stream;
    stream.reserve(n);
    for (std::uint64_t i = 0; i < n; i++) {
        std::uint32_t a = static_cast<std::uint32_t>(i % kApps);
        std::uint64_t ws = std::max<std::uint64_t>(
            64, static_cast<std::uint64_t>(
                    wsFactor[a] * static_cast<double>(share)));
        Addr base = static_cast<Addr>(a + 1) << 40;
        stream.push_back(base + rng.uniformInt(ws));
    }
    return stream;
}

std::unique_ptr<PartitionScheme>
buildScheme(SchemeKind scheme, ArrayKind array, std::uint64_t llc_lines,
            std::uint64_t salt)
{
    auto make_array = [&]() -> std::unique_ptr<CacheArray> {
        switch (array) {
          case ArrayKind::Z4_52:
            return std::make_unique<ZCacheArray>(llc_lines - llc_lines % 4,
                                                 4, 52, salt);
          case ArrayKind::SA16:
            return std::make_unique<SetAssocArray>(
                llc_lines - llc_lines % 16, 16, salt);
          case ArrayKind::SA64:
            return std::make_unique<SetAssocArray>(
                llc_lines - llc_lines % 64, 64, salt);
        }
        panic("bad ArrayKind");
    };

    std::uint32_t nparts = kApps + 1;
    switch (scheme) {
      case SchemeKind::SharedLru:
        return std::make_unique<SharedLru>(make_array(), nparts);
      case SchemeKind::Vantage:
        return std::make_unique<Vantage>(make_array(), nparts);
      case SchemeKind::WayPart: {
        std::uint32_t ways = array == ArrayKind::SA16 ? 16 : 64;
        return std::make_unique<WayPartitioning>(
            std::make_unique<SetAssocArray>(llc_lines - llc_lines % ways,
                                            ways, salt),
            nparts);
      }
    }
    panic("bad SchemeKind");
}

/** Post-run digest: resident lines + counters, order-sensitive. */
std::uint64_t
schemeStateHash(const PartitionScheme &s)
{
    std::uint64_t h = kFnvOffsetBasis;
    const CacheArray &a = s.array();
    for (std::uint64_t slot = 0; slot < a.numLines(); slot++) {
        if (!a.validAt(slot))
            continue;
        const LineMeta &m = a.meta(slot);
        h = fnv1a64(h, slot);
        h = fnv1a64(h, a.addrAt(slot));
        h = fnv1a64(h, m.part);
        h = fnv1a64(h, m.owner);
        h = fnv1a64(h, m.lastTouch);
        h = fnv1a64(h, m.lastReqId);
    }
    for (PartId p = 0; p < s.numPartitions(); p++) {
        h = fnv1a64(h, s.accesses(p));
        h = fnv1a64(h, s.misses(p));
        h = fnv1a64(h, s.actualSize(p));
    }
    h = fnv1a64(h, s.forcedEvictions());
    return h;
}

Row
runScheme(const char *label, SchemeKind scheme, ArrayKind array,
          const std::vector<Addr> &warm, const std::vector<Addr> &roi,
          std::uint64_t llc_lines)
{
    auto s = buildScheme(scheme, array, llc_lines, /*salt=*/12345);

    // Fair static split (Vantage cannot size the unmanaged region 0).
    std::uint64_t share = s->array().numLines() / kApps;
    for (std::uint32_t a = 0; a < kApps; a++)
        s->setTargetSize(a + 1, share);

    AccessContext ctx;
    auto drive = [&](const std::vector<Addr> &stream) -> std::uint64_t {
        std::uint64_t hits = 0;
        for (std::size_t i = 0; i < stream.size(); i++) {
            std::uint32_t a = static_cast<std::uint32_t>(i % kApps);
            ctx.part = a + 1;
            ctx.app = a;
            ctx.reqId = static_cast<ReqId>(i / kApps);
            hits += s->access(stream[i], ctx).hit ? 1 : 0;
        }
        return hits;
    };

    drive(warm);
    auto t0 = std::chrono::steady_clock::now();
    std::uint64_t hits = drive(roi);
    auto t1 = std::chrono::steady_clock::now();

    Row r;
    r.label = label;
    r.elapsedSec = std::chrono::duration<double>(t1 - t0).count();
    r.accPerSec = r.elapsedSec > 0
                      ? static_cast<double>(roi.size()) / r.elapsedSec
                      : 0;
    r.hitRate = roi.empty()
                    ? 0
                    : static_cast<double>(hits) /
                          static_cast<double>(roi.size());
    r.stateHash = schemeStateHash(*s);
    return r;
}

Row
runUmon(const std::vector<Addr> &warm, const std::vector<Addr> &roi,
        std::uint64_t llc_lines)
{
    Umon umon(llc_lines, 32, 8, /*salt=*/0xabcdu);
    std::uint64_t sampled = 0;
    for (Addr a : warm)
        sampled += umon.access(a).sampled ? 1 : 0;
    auto t0 = std::chrono::steady_clock::now();
    for (Addr a : roi)
        sampled += umon.access(a).sampled ? 1 : 0;
    auto t1 = std::chrono::steady_clock::now();

    Row r;
    r.label = "umon/32x8";
    r.elapsedSec = std::chrono::duration<double>(t1 - t0).count();
    r.accPerSec = r.elapsedSec > 0
                      ? static_cast<double>(roi.size()) / r.elapsedSec
                      : 0;
    r.hitRate = (warm.size() + roi.size()) > 0
                    ? static_cast<double>(sampled) /
                          static_cast<double>(warm.size() + roi.size())
                    : 0;
    std::uint64_t h = fnv1a64(kFnvOffsetBasis, sampled);
    MissCurve curve = umon.missCurve();
    for (std::size_t i = 0; i < curve.points(); i++) {
        double v = curve.values()[i];
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v), "width");
        __builtin_memcpy(&bits, &v, sizeof(bits));
        h = fnv1a64(h, bits);
    }
    r.stateHash = h;
    return r;
}

void
writeJson(const std::string &path, const std::vector<Row> &rows,
          std::uint64_t accesses, std::uint64_t llc_lines,
          std::uint64_t seed)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot write %s", path.c_str());
    std::fprintf(f, "{\n  \"benchmark\": \"hotpath\",\n");
    std::fprintf(f, "  \"accesses\": %" PRIu64 ",\n", accesses);
    std::fprintf(f, "  \"llc_lines\": %" PRIu64 ",\n", llc_lines);
    std::fprintf(f, "  \"seed\": %" PRIu64 ",\n", seed);
    std::fprintf(f, "  \"configs\": [\n");
    for (std::size_t i = 0; i < rows.size(); i++) {
        const Row &r = rows[i];
        std::fprintf(f,
                     "    {\"label\": \"%s\", \"accesses_per_sec\": "
                     "%.1f, \"elapsed_sec\": %.6f, \"hit_rate\": %.6f, "
                     "\"state_hash\": \"%016" PRIx64 "\"}%s\n",
                     r.label.c_str(), r.accPerSec, r.elapsedSec,
                     r.hitRate, r.stateHash,
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("perf_hotpath",
            "Measure simulated-LLC accesses/sec per scheme (fixed-seed "
            "throughput harness; writes BENCH_hotpath.json)");
    auto &accesses =
        cli.flag("accesses", static_cast<std::int64_t>(2000000),
                 "timed accesses per configuration");
    auto &llcLines =
        cli.flag("llc-lines", static_cast<std::int64_t>(196608),
                 "LLC capacity in lines (paper scale: 196608 = 12MB)");
    auto &seed = cli.flag("seed", static_cast<std::int64_t>(1),
                          "address-stream seed");
    auto &out = cli.flag("out", "BENCH_hotpath.json",
                         "output JSON path");
    cli.parse(argc, argv);

    if (accesses.value <= 0 || llcLines.value < 256)
        fatal("need --accesses > 0 and --llc-lines >= 256");
    std::uint64_t n = static_cast<std::uint64_t>(accesses.value);
    std::uint64_t lines = static_cast<std::uint64_t>(llcLines.value);

    // One warmup pass fills the arrays to steady state before timing;
    // one shared ROI stream keeps every configuration comparable.
    std::uint64_t warmN = std::min<std::uint64_t>(2 * lines, n * 4);
    std::vector<Addr> stream = buildStream(
        warmN + n, lines, static_cast<std::uint64_t>(seed.value));
    std::vector<Addr> warm(stream.begin(), stream.begin() + warmN);
    std::vector<Addr> roi(stream.begin() + warmN, stream.end());

    struct Config
    {
        const char *label;
        SchemeKind scheme;
        ArrayKind array;
    };
    const std::vector<Config> configs = {
        {"lru/z4-52", SchemeKind::SharedLru, ArrayKind::Z4_52},
        {"vantage/z4-52", SchemeKind::Vantage, ArrayKind::Z4_52},
        {"vantage/sa16", SchemeKind::Vantage, ArrayKind::SA16},
        {"vantage/sa64", SchemeKind::Vantage, ArrayKind::SA64},
        {"waypart/sa16", SchemeKind::WayPart, ArrayKind::SA16},
    };

    std::printf("# perf_hotpath: %" PRIu64 " timed accesses, %" PRIu64
                " warmup, %" PRIu64 " LLC lines\n",
                n, warmN, lines);
    std::printf("%-16s %14s %10s %9s %18s\n", "config", "accesses/sec",
                "elapsed", "hit rate", "state hash");

    std::vector<Row> rows;
    for (const Config &c : configs) {
        Row r = runScheme(c.label, c.scheme, c.array, warm, roi, lines);
        std::printf("%-16s %14.0f %9.3fs %9.4f   %016" PRIx64 "\n",
                    r.label.c_str(), r.accPerSec, r.elapsedSec,
                    r.hitRate, r.stateHash);
        rows.push_back(std::move(r));
    }
    Row u = runUmon(warm, roi, lines);
    std::printf("%-16s %14.0f %9.3fs %9.4f   %016" PRIx64 "\n",
                u.label.c_str(), u.accPerSec, u.elapsedSec, u.hitRate,
                u.stateHash);
    rows.push_back(std::move(u));

    writeJson(out.value, rows, n, lines,
              static_cast<std::uint64_t>(seed.value));
    std::printf("# wrote %s\n", out.value.c_str());
    return 0;
}
