/**
 * @file
 * Ablation for Figs 5-7: validates the analytical transient model
 * against measured Vantage transients, and shows the s_idle/s_boost
 * search's cost-benefit table.
 *
 * Part 1 (Fig 5): warm a partition at s1, upsize to s2, and measure
 * the actual fill time and excess misses under a synthetic timing
 * model; compare with TransientModel's exact sum and conservative
 * upper bound. The bound must hold (measured <= exact <= bound,
 * statistically) and stay within a small constant factor.
 *
 * Part 2 (Figs 6-7): print the feasible (s_idle, s_boost) options
 * Ubik evaluates for a representative app across deadlines.
 */

#include <cstdio>

#include "cache/vantage.h"
#include "cache/zcache_array.h"
#include "core/transient_model.h"
#include "mon/umon.h"
#include "sim/experiment.h"
#include "common/log.h"
#include "common/rng.h"

using namespace ubik;

namespace {

constexpr std::uint64_t kLlc = 24576;
constexpr double kHitCost = 60;
constexpr double kMissCost = 160;

struct WarmedApp
{
    std::unique_ptr<Vantage> scheme;
    std::unique_ptr<Umon> umon;
    std::unique_ptr<ZipfDistribution> zipf;
    Rng rng{7};
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    explicit WarmedApp(std::uint64_t ws, double theta)
    {
        scheme = std::make_unique<Vantage>(
            std::make_unique<ZCacheArray>(kLlc, 4, 52, 3), 3);
        umon = std::make_unique<Umon>(kLlc, 32, 32, 9);
        zipf = std::make_unique<ZipfDistribution>(ws, theta);
    }

    bool
    access()
    {
        Addr addr = (*zipf)(rng);
        AccessContext ctx{1, 0, 0};
        bool hit = scheme->access(addr, ctx).hit;
        umon->access(addr);
        accesses++;
        misses += hit ? 0 : 1;
        return hit;
    }

    /** Steady-state pressure from a competing partition. */
    void
    pressure(std::uint64_t n)
    {
        AccessContext ctx{2, 1, 0};
        static Addr cursor = 1ull << 41;
        for (std::uint64_t i = 0; i < n; i++)
            scheme->access(cursor++, ctx);
    }
};

void
measureTransient(std::uint64_t ws, double theta, std::uint64_t s1,
                 std::uint64_t s2)
{
    WarmedApp app(ws, theta);
    // Warm at s1 with competing pressure holding the boundary.
    app.scheme->setTargetSize(1, s1);
    app.scheme->setTargetSize(2, kLlc - s1);
    for (int i = 0; i < 600000; i++) {
        app.access();
        if (i % 2 == 0)
            app.pressure(1);
    }

    // Build the model from the warmed UMON + steady-state profile.
    app.umon->resetCounters();
    app.accesses = app.misses = 0;
    for (int i = 0; i < 300000; i++) {
        app.access();
        if (i % 2 == 0)
            app.pressure(1);
    }
    MissCurve curve = app.umon->missCurve(257);
    curve.enforceMonotone();
    CoreProfile prof;
    prof.missPenalty = kMissCost;
    prof.hitCyclesPerAccess = kHitCost;
    prof.missRate = static_cast<double>(app.misses) /
                    static_cast<double>(app.accesses);
    prof.valid = true;
    TransientModel model(curve, app.accesses, prof);

    double p2 = model.missProb(s2);
    TransientEstimate exact = model.exact(s1, s2);
    TransientEstimate bound = model.upperBound(s1, s2);

    // Measured transient: upsize and count cycles + excess misses
    // until the partition reaches (98% of) its new effective target.
    app.scheme->setTargetSize(1, s2);
    app.scheme->setTargetSize(2, kLlc - s2);
    std::uint64_t goal =
        app.scheme->effectiveTarget(1) * 98 / 100;
    double cycles = 0, excess = 0;
    std::uint64_t steps = 0;
    const std::uint64_t max_steps = 30000000;
    while (app.scheme->actualSize(1) < goal && steps < max_steps) {
        bool hit = app.access();
        cycles += kHitCost + (hit ? 0 : kMissCost);
        if (!hit)
            excess += 1.0 - p2; // misses beyond the steady state
        if (steps % 2 == 0)
            app.pressure(1);
        steps++;
    }

    std::printf("[fig5] ws=%5llu theta=%.2f  %5llu->%5llu lines: "
                "measured %8.2fM cycles, exact-sum %8.2fM, "
                "upper-bound %8.2fM (bound/measured %4.1fx); "
                "lost-cycles bound %7.0fK vs measured excess %7.0fK\n",
                static_cast<unsigned long long>(ws), theta,
                static_cast<unsigned long long>(s1),
                static_cast<unsigned long long>(s2), cycles / 1e6,
                exact.duration / 1e6, bound.duration / 1e6,
                cycles > 0 ? bound.duration / cycles : 0.0,
                bound.lostCycles / 1e3, excess * kMissCost / 1e3);
}

} // namespace

int
main()
{
    setVerbose(false);
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.printHeader("Ablation (Figs 5-7): transient bounds vs "
                    "measured Vantage transients");

    std::printf("\n[fig5] transient validation "
                "(bound must cover measured)\n");
    measureTransient(16384, 0.7, 4096, 8192);
    measureTransient(16384, 0.7, 2048, 8192);
    measureTransient(16384, 0.9, 4096, 12288);
    measureTransient(32768, 0.6, 4096, 8192);

    // Fig 6/7: the boost search for a representative miss curve.
    std::printf("\n[fig7] s_idle/s_boost feasibility for a friendly "
                "app (target=8192 lines, c=%g, M=%g)\n",
                kHitCost, kMissCost);
    {
        // Synthetic concave curve over the LLC.
        std::vector<double> v;
        double acc = 1e6;
        for (int i = 0; i <= 256; i++)
            v.push_back(acc * 0.5 /
                        (1.0 + 8.0 * static_cast<double>(i) / 256));
        MissCurve curve(std::move(v), kLlc / 256);
        CoreProfile prof;
        prof.missPenalty = kMissCost;
        prof.hitCyclesPerAccess = kHitCost;
        prof.valid = true;
        TransientModel model(curve, 1000000, prof);
        const std::uint64_t s_active = 8192;
        for (Cycles deadline :
             {200000u, 1000000u, 5000000u, 25000000u}) {
            std::printf("[fig7] deadline=%8.2fms:",
                        cyclesToMs(deadline));
            for (int i = 4; i >= 0; i--) {
                std::uint64_t s_idle = s_active * i / 4;
                TransientEstimate tr =
                    model.upperBound(s_idle, s_active);
                // Find the smallest repaying boost.
                std::uint64_t s_boost = 0;
                for (std::uint64_t s = s_active + kLlc / 256;
                     s <= kLlc / 2; s += kLlc / 256) {
                    TransientEstimate fill =
                        model.upperBound(s_idle, s);
                    if (fill.unbounded ||
                        fill.duration >=
                            static_cast<double>(deadline))
                        break;
                    double gain =
                        model.gainRate(s_active, s) *
                        (static_cast<double>(deadline) -
                         fill.duration);
                    if (gain >= tr.lostCycles) {
                        s_boost = s;
                        break;
                    }
                }
                if (tr.lostCycles <= 0)
                    s_boost = s_active;
                if (s_boost)
                    std::printf("  idle=%5llu boost=%5llu",
                                static_cast<unsigned long long>(
                                    s_idle),
                                static_cast<unsigned long long>(
                                    s_boost));
                else
                    std::printf("  idle=%5llu INFEASIBLE",
                                static_cast<unsigned long long>(
                                    s_idle));
            }
            std::printf("\n");
        }
    }

    std::printf("\nExpected shape: upper bounds always cover the "
                "measured transients (typically within ~1-5x, the "
                "price of conservatism); longer deadlines admit "
                "deeper idle sizes with modest boosts, shorter ones "
                "turn aggressive options infeasible (Fig 7).\n");
    return 0;
}
