/**
 * @file
 * Ubik parameter-sensitivity ablation.
 *
 * The paper fixes three controller knobs without sweeping them: the
 * number of s_idle candidates evaluated per LC app (N = 16, §5.1.1),
 * the de-boost guard absorbing UMON sampling error (§5.1.1), and the
 * coarse reconfiguration interval (50 ms, §5.1.2). This bench sweeps
 * each knob independently around the paper's value over the
 * cache-hungry mixes (Ubik, 5% slack) so a downstream user can see how much
 * headroom each default has:
 *
 *  - N too small quantizes the idle-size search (less space freed);
 *    large N only costs runtime.
 *  - guard too small risks premature de-boosts on UMON noise
 *    (tail risk); too large parks boost space unnecessarily.
 *  - the interval trades adaptation lag against runtime overhead;
 *    transients are priced analytically so tails should hold at all
 *    settings, with throughput dropping when miss curves go stale.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/log.h"

using namespace ubik;
using namespace ubik::bench;

namespace {

void
sweepAndPrint(const ExperimentConfig &cfg,
              const std::vector<SchemeUnderTest> &schemes,
              const char *tag)
{
    // Cache-hungry batch mixes only: the knobs govern downsizing and
    // boosting, which the cost-benefit analysis disables against
    // insensitive batch apps (see bench_util.h). Low-load mixes only:
    // knob effects are load-insensitive and the grid is 9 schemes.
    std::vector<MixSpec> mixes;
    for (MixSpec &m : cacheHungryMixes())
        if (m.lc.load < 0.4)
            mixes.push_back(std::move(m));
    auto sweeps = runCustomSweep(cfg, schemes, mixes);
    printAverages(sweeps, tag);
}

} // namespace

int
main()
{
    setVerbose(false);
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.printHeader("Ablation: Ubik controller parameters");

    SchemeUnderTest base;
    base.policy = PolicyKind::Ubik;
    base.slack = 0.05;

    // 1. Idle-size search resolution N (paper: 16).
    {
        std::vector<SchemeUnderTest> schemes;
        for (std::uint32_t n : {2u, 16u, 64u}) {
            SchemeUnderTest s = base;
            s.label = "N=" + std::to_string(n);
            s.ubik.idleOptions = n;
            schemes.push_back(s);
        }
        sweepAndPrint(cfg, schemes, "params-idle-options");
    }

    // 2. De-boost guard (paper: "a guard to account for the small
    //    UMON sampling error"; our default 16 would-be misses).
    {
        std::vector<SchemeUnderTest> schemes;
        for (double g : {0.0, 16.0, 256.0}) {
            SchemeUnderTest s = base;
            char buf[32];
            std::snprintf(buf, sizeof(buf), "guard=%g", g);
            s.label = buf;
            s.ubik.deboostGuard = g;
            schemes.push_back(s);
        }
        sweepAndPrint(cfg, schemes, "params-deboost-guard");
    }

    // 3. Reconfiguration interval (paper: 50 ms).
    {
        std::vector<SchemeUnderTest> schemes;
        for (double m : {0.25, 1.0, 4.0}) {
            SchemeUnderTest s = base;
            char buf[32];
            std::snprintf(buf, sizeof(buf), "interval=%gx", m);
            s.label = buf;
            s.reconfigScale = m;
            schemes.push_back(s);
        }
        sweepAndPrint(cfg, schemes, "params-reconfig-interval");
    }

    std::printf("\nExpected shape: tails hold near 1.0 across every "
                "setting (the transient bounds are what guarantee "
                "QoS, not the knobs); batch speedup degrades at the "
                "extremes — coarse N and huge guards strand space on "
                "idle LC apps, and very long intervals let miss "
                "curves go stale.\n");
    return 0;
}
