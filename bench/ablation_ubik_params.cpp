/**
 * @file
 * Ubik parameter-sensitivity ablation: sweeps the three controller
 * knobs the paper fixes without sweeping — the s_idle search
 * resolution N (§5.1.1), the de-boost guard (§5.1.1), and the coarse
 * reconfiguration interval (§5.1.2) — each independently around the
 * paper's value over the low-load cache-hungry mixes. Thin wrapper
 * over three registry scenarios (`ubik_run ablation-params-idle`,
 * `ubik_run ablation-params-guard`,
 * `ubik_run ablation-params-interval`).
 */

#include "sim/scenario.h"

int
main()
{
    int rc = ubik::runRegisteredScenario("ablation-params-idle");
    if (rc)
        return rc;
    rc = ubik::runRegisteredScenario("ablation-params-guard");
    if (rc)
        return rc;
    return ubik::runRegisteredScenario("ablation-params-interval");
}
