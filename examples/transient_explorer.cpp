/**
 * @file
 * Transient explorer: measure a workload's miss curve through a
 * UMON, then interrogate Ubik's analytical transient model (§5.1) —
 * for each candidate downsizing, how long would the refill transient
 * last, how many cycles would be lost, and what boost would repay
 * them by a given deadline?
 *
 * Useful for building intuition about which workloads Ubik can
 * manage aggressively (cache-intensive, mildly sensitive) and which
 * force conservatism (cliff-shaped curves, tight deadlines).
 *
 * Usage: transient_explorer [lc-app-name]   (default: masstree)
 */

#include <cstdio>
#include <string>

#include "core/transient_model.h"
#include "mon/umon.h"
#include "sim/experiment.h"
#include "workload/lc_app.h"
#include "common/log.h"

using namespace ubik;

int
main(int argc, char **argv)
{
    setVerbose(false);
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    std::string app_name = argc > 1 ? argv[1] : "masstree";
    LcAppParams params =
        lc_presets::byName(app_name).scaled(cfg.scale);

    cfg.printHeader(("transient explorer: " + app_name).c_str());

    // 1. Measure the miss curve exactly as the runtime would: by
    //    pushing the app's access stream through a UMON.
    const std::uint64_t llc = cfg.llcLines();
    Umon umon(llc, 32, 32, 1);
    LcApp app(params, 0, Rng(1));
    const std::uint64_t n_accesses = 2000000;
    std::uint64_t fed = 0;
    for (ReqId r = 1; fed < n_accesses; r++) {
        double work = app.startRequest(r);
        std::uint64_t n = app.requestAccesses(work);
        for (std::uint64_t i = 0; i < n && fed < n_accesses;
             i++, fed++)
            umon.access(app.nextAddr());
    }
    MissCurve curve = umon.missCurve(257);
    curve.enforceMonotone();

    std::printf("\nmeasured miss curve (miss probability by "
                "allocation):\n");
    for (int pct : {5, 10, 25, 50, 75, 100})
        std::printf("  %3d%% of LLC (%6llu lines): p = %.4f\n", pct,
                    static_cast<unsigned long long>(llc * pct / 100),
                    curve.missesAtLines(llc * pct / 100) /
                        static_cast<double>(n_accesses));

    // 2. Timing profile consistent with the app's parameters.
    CoreProfile prof;
    prof.missPenalty = 220.0 / params.mlp;
    prof.hitCyclesPerAccess =
        1000.0 / (params.apki * params.baseIpc) + 5.0;
    prof.valid = true;
    TransientModel model(curve, n_accesses, prof);
    std::printf("\ntiming profile: c = %.1f cycles/access, M = %.1f "
                "cycles/miss\n",
                model.c(), model.m());

    // 3. The paper's two questions for every candidate downsizing.
    const std::uint64_t target = cfg.privateLines();
    std::printf("\ntransients for refilling to the target (%llu "
                "lines):\n%8s %16s %14s\n",
                static_cast<unsigned long long>(target), "s_idle",
                "T_transient(ms)", "lost (Kcyc)");
    for (int i = 0; i <= 4; i++) {
        std::uint64_t s_idle = target * i / 4;
        TransientEstimate tr = model.upperBound(s_idle, target);
        if (tr.unbounded) {
            std::printf("%8llu %16s %14s\n",
                        static_cast<unsigned long long>(s_idle),
                        "unbounded", "-");
            continue;
        }
        std::printf("%8llu %16.3f %14.1f\n",
                    static_cast<unsigned long long>(s_idle),
                    cyclesToMs(static_cast<Cycles>(tr.duration)),
                    tr.lostCycles / 1e3);
    }

    std::printf("\nminimal boost repaying a half-target downsizing "
                "by each deadline:\n%14s %12s\n", "deadline(ms)",
                "s_boost");
    std::uint64_t s_idle = target / 2;
    TransientEstimate tr = model.upperBound(s_idle, target);
    for (double ms : {0.05, 0.2, 1.0, 5.0, 25.0}) {
        Cycles deadline = msToCycles(ms);
        std::uint64_t boost = 0;
        for (std::uint64_t s = target + llc / 256; s <= llc / 2;
             s += llc / 256) {
            TransientEstimate fill = model.upperBound(s_idle, s);
            if (fill.unbounded ||
                fill.duration >= static_cast<double>(deadline))
                break;
            double gain = model.gainRate(target, s) *
                          (static_cast<double>(deadline) -
                           fill.duration);
            if (gain >= tr.lostCycles) {
                boost = s;
                break;
            }
        }
        if (tr.lostCycles <= 0)
            boost = target;
        if (boost)
            std::printf("%14.2f %12llu\n", ms,
                        static_cast<unsigned long long>(boost));
        else
            std::printf("%14.2f %12s\n", ms, "infeasible");
    }

    std::printf("\nReading the table: short deadlines make "
                "downsizing infeasible (strict Ubik keeps the "
                "partition); longer ones admit the downsizing with "
                "progressively smaller boosts — the Fig 7 search.\n");
    return 0;
}
