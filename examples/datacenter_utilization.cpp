/**
 * @file
 * Datacenter utilization estimate, following the paper's §7.1
 * argument: latency-critical apps run at ~20% load, so machines
 * dedicated to them idle most of the time (industry reports ~10%
 * utilization). Colocating batch work under StaticLC or Ubik lifts
 * utilization to ~60% — 6x — without violating tail latency, and
 * Ubik additionally beats StaticLC's batch throughput.
 *
 * The example runs one representative mix per policy and converts
 * the measured results into the paper's utilization metric.
 */

#include <cstdio>
#include <vector>

#include "sim/mix_runner.h"
#include "workload/mix.h"
#include "common/log.h"

using namespace ubik;

int
main()
{
    setVerbose(false);
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.printHeader("datacenter utilization: dedicated vs colocated "
                    "(paper §7.1)");

    MixRunner runner(cfg);
    MixSpec mix;
    mix.name = "util";
    mix.lc.app = lc_presets::masstree();
    mix.lc.load = 0.2;
    mix.batch.name = "fft";
    mix.batch.apps = {
        batch_presets::make(BatchClass::Friendly, 1),
        batch_presets::make(BatchClass::Friendly, 6),
        batch_presets::make(BatchClass::Fitting, 3),
    };

    // Conventional operation: LRU CMP, no colocation allowed; assume
    // half the cores can run LC apps without hurting each other.
    double dedicated_util = 0.5 * mix.lc.load;
    std::printf("\nconventional (LRU, no colocation): 3 of 6 cores "
                "serve LC at %.0f%% load -> %.0f%% machine "
                "utilization\n",
                mix.lc.load * 100, dedicated_util * 100);

    std::printf("\n%-10s %10s %16s %16s\n", "policy", "util",
                "tail degradation", "batch speedup");
    for (const auto &sut : std::vector<SchemeUnderTest>{
             {"StaticLC", SchemeKind::Vantage, ArrayKind::Z4_52,
              PolicyKind::StaticLc, 0.0},
             {"Ubik", SchemeKind::Vantage, ArrayKind::Z4_52,
              PolicyKind::Ubik, 0.05},
         }) {
        MixRunResult r = runner.runMix(mix, sut, 1);
        // Three LC cores at 20% load + three fully-busy batch cores.
        double util = (3 * mix.lc.load + 3 * 1.0) / 6.0;
        std::printf("%-10s %9.0f%% %15.2fx %15.2fx\n",
                    sut.label.c_str(), util * 100,
                    r.tailDegradation, r.weightedSpeedup);
    }

    std::printf("\nColocation lifts utilization %.1fx (%.0f%% -> "
                "60%%) while the partitioning policy holds the LC "
                "tail; Ubik further raises the batch work extracted "
                "per machine over StaticLC.\n",
                0.6 / dedicated_util, dedicated_util * 100);
    return 0;
}
