/**
 * @file
 * Example: size a latency-critical server's worker pool.
 *
 * Given a service-time distribution, a tail-latency target, and an
 * estimate of intra-server interference, find the smallest worker
 * count that meets the target at each offered load — the capacity-
 * planning question §3.3 of the paper raises and defers.
 *
 * Build & run:
 *   cmake --build build --target worker_sizing
 *   ./build/examples/worker_sizing
 */

#include <cstdio>

#include "queueing/queue_sim.h"
#include "common/log.h"
#include "common/types.h"

using namespace ubik;

int
main()
{
    setVerbose(false);

    // A search-like service: long-tailed, 0.5 ms mean.
    ServiceDistribution service =
        ServiceDistribution::lognormal(1600000, 0.8);
    const double tail_target_ms = 6.0;
    const double interference = 0.15; // measured on the prototype
    const double abort_prob = 0.02;

    std::printf("Worker sizing for a search-like service\n");
    std::printf("  mean service %.2f ms, tail target %.1f ms (95p "
                "tail-mean), interference %.0f%%/worker\n\n",
                cyclesToMs(static_cast<Cycles>(service.mean())),
                tail_target_ms, interference * 100);
    std::printf("%8s %10s %14s %s\n", "load", "workers",
                "95p tail (ms)", "verdict");

    for (double load : {0.2, 0.4, 0.6, 0.8}) {
        bool met = false;
        for (std::uint32_t k = 1; k <= 8 && !met; k++) {
            QueueSimParams p;
            p.workers = k;
            p.service = service;
            p.meanInterarrival =
                service.mean() / (load * static_cast<double>(k));
            p.interferenceFactor = interference;
            p.abortProb = k > 1 ? abort_prob : 0.0;
            p.requests = 15000;
            p.warmup = 1500;
            QueueSimResult r = QueueSim(p, 2024).run();
            double tail_ms = cyclesToMs(
                static_cast<Cycles>(r.latencies.tailMean(95.0)));
            if (tail_ms <= tail_target_ms) {
                std::printf("%8.2f %10u %14.2f meets target\n", load,
                            k, tail_ms);
                met = true;
            } else if (k == 8) {
                std::printf("%8.2f %10s %14.2f infeasible at <=8 "
                            "workers\n",
                            load, "-", tail_ms);
            }
        }
    }

    std::printf("\nHigher load needs more workers to tame queueing, "
                "but interference and aborts put a ceiling on what "
                "worker scaling can fix — beyond it, the fix is more "
                "machines (or better isolation, the paper's topic).\n");
    return 0;
}
