/**
 * @file
 * Example: choose a bandwidth reservation for a colocated machine.
 *
 * Given a latency-critical workload, a load point, and a scarce
 * memory system, sweep the batch side's bandwidth cap and report the
 * LC tail degradation and batch weighted speedup at each setting —
 * the §6 composition question (cache QoS via Ubik + bandwidth QoS
 * via token buckets) posed as a capacity-planning exercise.
 *
 * Build & run:
 *   cmake --build build --target bandwidth_planner
 *   ./build/examples/bandwidth_planner [lc-app] [load]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/mix_runner.h"
#include "workload/mix.h"
#include "common/log.h"

using namespace ubik;

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::string app = argc > 1 ? argv[1] : "moses";
    double load = argc > 2 ? std::atof(argv[2]) : 0.6;

    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    MixRunner runner(cfg);

    // A streaming-heavy batch mix on a scarce single-channel memory:
    // the worst case for the LC app's memory latency.
    MixSpec spec;
    spec.lc = {lc_presets::byName(app), load};
    for (int i = 0; i < 3; i++)
        spec.batch.apps[static_cast<size_t>(i)] = batch_presets::make(
            BatchClass::Streaming, static_cast<std::uint32_t>(i));
    spec.batch.name = "sss-0";
    spec.name = app + "/sss-0";

    MemoryParams scarce;
    scarce.channels = 1;
    scarce.channelOccupancy = 24;

    std::printf("Bandwidth planning: %s at %.0f%% load vs a streaming "
                "batch mix, 1 channel x %llu-cycle occupancy\n\n",
                app.c_str(), load * 100,
                static_cast<unsigned long long>(
                    scarce.channelOccupancy));
    std::printf("%-22s %18s %18s\n", "batch bandwidth cap",
                "LC tail degrad.", "batch wspeedup");

    // Reference: no contention at all (the paper's model).
    {
        SchemeUnderTest sut;
        sut.label = "fixed";
        sut.policy = PolicyKind::Ubik;
        sut.slack = 0.05;
        MixRunResult r = runner.runMix(spec, sut, 1);
        std::printf("%-22s %17.2fx %17.2fx\n",
                    "(no contention)", r.tailDegradation,
                    r.weightedSpeedup);
    }

    for (double lc_share : {0.0, 0.25, 0.5, 0.75}) {
        SchemeUnderTest sut;
        sut.policy = PolicyKind::Ubik;
        sut.slack = 0.05;
        sut.memParams = scarce;
        if (lc_share == 0.0) {
            sut.mem = MemKind::Contended; // no QoS at all
            sut.label = "contended";
        } else {
            sut.mem = MemKind::Partitioned;
            sut.lcMemShare = lc_share;
            sut.label = "partitioned";
        }
        MixRunResult r = runner.runMix(spec, sut, 1);
        char label[48];
        if (lc_share == 0.0)
            std::snprintf(label, sizeof(label), "unregulated");
        else
            std::snprintf(label, sizeof(label),
                          "batch <= %.0f%% of bus",
                          (1.0 - lc_share) * 100);
        std::printf("%-22s %17.2fx %17.2fx\n", label,
                    r.tailDegradation, r.weightedSpeedup);
    }

    std::printf("\nPick the largest batch cap whose tail degradation "
                "your SLO tolerates; reserving more than the LC app "
                "uses only burns batch throughput (the static-"
                "reservation tradeoff).\n");
    return 0;
}
