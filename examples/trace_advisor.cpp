/**
 * @file
 * Trace advisor: the bring-your-own-workload pipeline.
 *
 * Downstream users don't have our synthetic presets — they have
 * production workloads. This example shows the offline path from a
 * captured LLC access trace to concrete Ubik sizing decisions,
 * without running the simulator:
 *
 *  1. capture a trace (here: from the masstree preset; with a real
 *     workload, convert your tool's output to the trace format or
 *     pass a .ubtr file as argv[1]),
 *  2. analyze it — exact LRU miss curve via stack distances, APKI,
 *     cross-request reuse (the inertia signal, Fig 2),
 *  3. ask the advisor what strict Ubik would do at several deadlines:
 *     per (s_idle, s_boost) option, the transient bounds and the
 *     space a colocated batch tier would gain.
 *
 * Usage: trace_advisor [trace.ubtr [target_lines deadline_us]]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/advisor.h"
#include "trace/access_trace.h"
#include "trace/trace_analyzer.h"
#include "workload/trace_capture.h"
#include "common/log.h"

using namespace ubik;

int
main(int argc, char **argv)
{
    TraceData trace;
    std::uint64_t target_lines = 0;
    Cycles deadline_base = 0;

    if (argc > 1) {
        std::printf("# loading trace %s\n", argv[1]);
        trace = readTrace(argv[1]);
        target_lines = argc > 2
                           ? std::strtoull(argv[2], nullptr, 10)
                           : 0;
        if (argc > 3)
            deadline_base = static_cast<Cycles>(
                std::strtod(argv[3], nullptr) * 1e-6 * kClockHz);
    } else {
        std::printf("# no trace given: capturing 500 requests of the "
                    "masstree preset (1:8 scale)\n");
        LcAppParams params = lc_presets::masstree().scaled(8.0);
        trace = captureLcTrace(params, 500, /*seed=*/42);
        target_lines = params.hotLines;
    }

    // --- 2. Analyze.
    TraceAnalysis an = analyzeTrace(trace);
    if (target_lines == 0)
        target_lines = an.footprintLines / 2;
    if (deadline_base == 0)
        deadline_base = static_cast<Cycles>(1e-3 * kClockHz); // 1 ms

    std::printf("\n[trace] %llu requests, %llu accesses, "
                "APKI %.1f, footprint %llu lines (%.2f MB)\n",
                static_cast<unsigned long long>(trace.requests()),
                static_cast<unsigned long long>(an.accesses),
                trace.apki(),
                static_cast<unsigned long long>(an.footprintLines),
                static_cast<double>(an.footprintLines) * 64 / 1e6);
    std::printf("[trace] cross-request reuse: %.0f%% of hits touch "
                "lines from previous requests (inertia, Fig 2)\n",
                an.crossRequestReuse * 100);
    std::printf("[trace] hits by requests-ago:");
    std::uint64_t total_hits = 0;
    for (std::uint64_t h : an.hitsByRequestsAgo)
        total_hits += h;
    for (int i = 0; i < 9; i++)
        std::printf(" %d:%4.1f%%", i,
                    total_hits
                        ? 100.0 * an.hitsByRequestsAgo[i] / total_hits
                        : 0.0);
    std::printf(" (8 = 8+)\n");

    std::printf("\n[miss-curve] exact LRU miss ratio by size:\n");
    for (double frac : {0.125, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0}) {
        std::uint64_t lines = static_cast<std::uint64_t>(
            frac * static_cast<double>(target_lines));
        std::printf("  %6.2fx target (%8llu lines): %5.1f%% misses\n",
                    frac, static_cast<unsigned long long>(lines),
                    an.missRatioAtSize(lines) * 100);
    }

    // --- 3. Advise. Timing parameters: with a real workload, read c
    // and M from performance counters + the MLP profiler (§5.1); the
    // defaults below model a 3.2GHz OOO core with 200-cycle memory.
    CoreProfile prof;
    prof.missPenalty = 100; // M: 200-cycle latency, MLP 2
    prof.hitCyclesPerAccess = 20;
    prof.missRate = an.missRatioAtSize(target_lines);
    prof.accessesPerCycle = 0.03;
    prof.valid = true;

    std::printf("\n[advisor] strict-Ubik sizing at target %llu lines "
                "(%.2f MB):\n",
                static_cast<unsigned long long>(target_lines),
                static_cast<double>(target_lines) * 64 / 1e6);
    for (double mult : {0.25, 1.0, 4.0}) {
        Cycles deadline = static_cast<Cycles>(
            static_cast<double>(deadline_base) * mult);
        AdvisorInput in;
        in.curve = an.missCurve(257, target_lines * 4);
        in.intervalAccesses = an.accesses;
        in.profile = prof;
        in.targetLines = target_lines;
        in.deadline = deadline;
        in.boostCap = target_lines * 4;
        AdvisorReport rep = advise(in);

        std::printf("\n  deadline %.2f ms -> %s\n",
                    cyclesToMs(deadline),
                    rep.canDownsize ? "downsizing feasible"
                                    : "must hold the target "
                                      "(StaticLC regime)");
        std::printf("  %10s %10s %8s %14s %12s\n", "s_idle",
                    "s_boost", "freed", "transient(us)", "lost(us)");
        for (const SizingOption &o : rep.options) {
            if (!o.feasible) {
                std::printf("  %10llu %10s %7.0f%% %14s %12s\n",
                            static_cast<unsigned long long>(o.sIdle),
                            "--", 100.0 * o.freedLines / target_lines,
                            "infeasible", "--");
                continue;
            }
            std::printf("  %10llu %10llu %7.0f%% %14.1f %12.1f\n",
                        static_cast<unsigned long long>(o.sIdle),
                        static_cast<unsigned long long>(o.sBoost),
                        100.0 * o.freedLines / target_lines,
                        o.transientCycles / kClockHz * 1e6,
                        o.lostCycles / kClockHz * 1e6);
        }
        std::printf("  best: idle at %llu lines frees %.0f%% of the "
                    "target while the app sleeps\n",
                    static_cast<unsigned long long>(rep.best.sIdle),
                    100.0 * rep.best.freedLines / target_lines);
    }

    std::printf("\nReading the table: each row is one Fig 7 option — "
                "park the app at s_idle when it sleeps, boost to "
                "s_boost on wake-up, and by the deadline it has made "
                "the same progress as a constant-size partition. "
                "Tighter deadlines kill deeper options first.\n");
    return 0;
}
