/**
 * @file
 * Colocation planner: given a latency-critical app and a pool of
 * candidate batch workloads, decide which colocations are safe under
 * Ubik and rank them by the batch throughput they unlock.
 *
 * This is the operator-facing workflow the paper motivates (§1, §4):
 * pick a target tail latency from an isolated run, then let the
 * partitioning policy guarantee it while squeezing batch work onto
 * the same machine.
 *
 * Usage: colocation_planner [lc-app-name]   (default: shore)
 */

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/mix_runner.h"
#include "workload/mix.h"
#include "common/log.h"

using namespace ubik;

int
main(int argc, char **argv)
{
    setVerbose(false);
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    std::string app_name = argc > 1 ? argv[1] : "shore";
    LcAppParams app = lc_presets::byName(app_name);

    cfg.printHeader(("colocation planner for " + app_name).c_str());

    MixRunner runner(cfg);
    const double load = 0.2;
    const LcBaseline &base = runner.lcBaseline(app, load, 1);
    std::printf("\nisolated baseline: 95p tail mean %.3f ms, deadline "
                "(p95) %.3f ms\n",
                cyclesToMs(static_cast<Cycles>(base.tailMean)) *
                    cfg.scale,
                cyclesToMs(base.p95) * cfg.scale);

    // Candidate batch bundles an operator might want to place.
    struct Bundle
    {
        const char *desc;
        std::array<BatchAppParams, 3> apps;
    };
    std::vector<Bundle> bundles = {
        {"analytics (friendly x3)",
         {batch_presets::make(BatchClass::Friendly, 1),
          batch_presets::make(BatchClass::Friendly, 8),
          batch_presets::make(BatchClass::Friendly, 15)}},
        {"compression (streaming x3)",
         {batch_presets::make(BatchClass::Streaming, 2),
          batch_presets::make(BatchClass::Streaming, 9),
          batch_presets::make(BatchClass::Streaming, 16)}},
        {"build farm (insensitive x3)",
         {batch_presets::make(BatchClass::Insensitive, 3),
          batch_presets::make(BatchClass::Insensitive, 10),
          batch_presets::make(BatchClass::Insensitive, 17)}},
        {"mixed (friendly/fitting/streaming)",
         {batch_presets::make(BatchClass::Friendly, 4),
          batch_presets::make(BatchClass::Fitting, 11),
          batch_presets::make(BatchClass::Streaming, 18)}},
    };

    SchemeUnderTest ubik{"Ubik", SchemeKind::Vantage, ArrayKind::Z4_52,
                         PolicyKind::Ubik, 0.05};

    std::printf("\n%-36s %16s %16s %8s\n", "batch bundle",
                "tail degradation", "batch speedup", "verdict");
    for (const auto &bundle : bundles) {
        MixSpec mix;
        mix.name = bundle.desc;
        mix.lc.app = app;
        mix.lc.load = load;
        mix.batch.name = bundle.desc;
        mix.batch.apps = bundle.apps;
        MixRunResult r = runner.runMix(mix, ubik, 1);
        bool safe = r.tailDegradation <= 1.10; // 5% slack + margin
        std::printf("%-36s %15.2fx %15.2fx %8s\n", bundle.desc,
                    r.tailDegradation, r.weightedSpeedup,
                    safe ? "SAFE" : "RISKY");
    }

    std::printf("\nAll bundles run with Ubik (5%% slack); 'SAFE' "
                "means the measured tail stayed within 10%% of the "
                "isolated baseline on this machine configuration.\n");
    return 0;
}
