/**
 * @file
 * Quickstart: colocate one latency-critical app with batch work and
 * compare Ubik against a static partition.
 *
 * This is the smallest end-to-end use of the library:
 *  1. pick an LC workload preset and a load point,
 *  2. calibrate its baseline (alone on a private 2MB-equivalent LLC),
 *  3. run the mix on the shared LLC under two policies,
 *  4. read out tail-latency degradation and batch weighted speedup.
 *
 * Runs in seconds at the default 1:8 machine scale (UBIK_SCALE=1 for
 * the paper's full-size machine).
 */

#include <cstdio>

#include "sim/mix_runner.h"
#include "workload/mix.h"
#include "common/log.h"

using namespace ubik;

int
main()
{
    setVerbose(false);
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.printHeader("quickstart: specjbb (20% load) + f/t/s batch mix");

    // One mix: three specjbb instances plus one cache-friendly, one
    // cache-fitting, one streaming batch app.
    MixSpec mix;
    mix.name = "quickstart";
    mix.lc.app = lc_presets::specjbb();
    mix.lc.load = 0.2;
    mix.batch.name = "fts";
    mix.batch.apps = {
        batch_presets::make(BatchClass::Friendly, 1),
        batch_presets::make(BatchClass::Fitting, 2),
        batch_presets::make(BatchClass::Streaming, 3),
    };

    MixRunner runner(cfg);

    const LcBaseline &base =
        runner.lcBaseline(mix.lc.app, mix.lc.load, /*seed=*/1);
    std::printf("\nbaseline (alone, private LLC): mean service %.3f ms, "
                "95p tail mean %.3f ms\n",
                cyclesToMs(static_cast<Cycles>(base.meanServiceCycles)),
                cyclesToMs(static_cast<Cycles>(base.tailMean)));

    std::printf("\n%-10s %18s %18s\n", "policy", "tail degradation",
                "weighted speedup");
    for (const auto &sut : std::vector<SchemeUnderTest>{
             {"StaticLC", SchemeKind::Vantage, ArrayKind::Z4_52,
              PolicyKind::StaticLc, 0.0},
             {"Ubik", SchemeKind::Vantage, ArrayKind::Z4_52,
              PolicyKind::Ubik, 0.05},
         }) {
        MixRunResult r = runner.runMix(mix, sut, /*seed=*/1);
        std::printf("%-10s %17.2fx %17.2fx\n", sut.label.c_str(),
                    r.tailDegradation, r.weightedSpeedup);
    }
    std::printf("\nUbik should match StaticLC's tail (within its 5%% "
                "slack) at a higher weighted speedup.\n");
    return 0;
}
