#include "mem/memory_system.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.h"

namespace ubik {

MemorySystem::MemorySystem(MemoryParams params, std::uint32_t num_apps)
    : params_(params), stats_(num_apps)
{
    if (params_.channels == 0)
        fatal("MemorySystem: need at least one channel");
    if (params_.channelOccupancy == 0)
        fatal("MemorySystem: channel occupancy must be positive");
}

Cycles
MemorySystem::access(AppId app, Cycles now)
{
    ubik_assert(app < stats_.size());
    Cycles delay = queueingDelay(app, now);
    MemAppStats &s = stats_[app];
    s.requests++;
    s.totalQueueing += delay;
    s.maxQueueing = std::max(s.maxQueueing, delay);
    requests_++;
    return delay;
}

const MemAppStats &
MemorySystem::appStats(AppId app) const
{
    return stats_.at(app);
}

double
MemorySystem::utilization(Cycles elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    double capacity = static_cast<double>(elapsed) *
                      static_cast<double>(params_.channels);
    return std::min(1.0, static_cast<double>(busyCycles_) / capacity);
}

void
MemorySystem::chargeThrottle(AppId app, Cycles cycles)
{
    stats_.at(app).totalThrottle += cycles;
}

Cycles
FixedLatencyMemory::queueingDelay(AppId app, Cycles now)
{
    (void)app;
    (void)now;
    // Still account channel time so utilization is meaningful.
    chargeBusy(params_.channelOccupancy);
    return 0;
}

ContendedMemory::ContendedMemory(MemoryParams params, std::uint32_t num_apps)
    : MemorySystem(params, num_apps), sched_(params.channels)
{
}

Cycles
ContendedMemory::claimChannel(Cycles now, Cycles release)
{
    ubik_assert(release >= now);
    const Cycles occ = params_.channelOccupancy;

    Cycles best_start = std::numeric_limits<Cycles>::max();
    std::uint32_t best_ch = 0;
    std::size_t best_pos = 0;

    for (std::uint32_t ch = 0; ch < sched_.size(); ch++) {
        auto &s = sched_[ch];
        // Bookings fully in the past can no longer conflict: every
        // future request is released at or after `now`.
        while (!s.empty() && s.front().end <= now)
            s.pop_front();

        // First-fit: earliest gap of >= occ cycles at/after release.
        Cycles cand = release;
        std::size_t pos = 0;
        for (const Booking &b : s) {
            if (cand + occ <= b.start)
                break;
            cand = std::max(cand, b.end);
            pos++;
        }
        if (cand < best_start) {
            best_start = cand;
            best_ch = ch;
            best_pos = pos;
        }
        if (best_start == release)
            break; // cannot do better
    }

    auto &s = sched_[best_ch];
    s.insert(s.begin() + static_cast<std::ptrdiff_t>(best_pos),
             Booking{best_start, best_start + occ});
    chargeBusy(occ);
    return best_start - release;
}

Cycles
ContendedMemory::queueingDelay(AppId app, Cycles now)
{
    (void)app;
    return claimChannel(now, now);
}

PartitionedMemory::PartitionedMemory(MemoryParams params,
                                     std::uint32_t num_apps)
    : ContendedMemory(params, num_apps),
      shares_(num_apps, num_apps > 0 ? 1.0 / num_apps : 1.0),
      unregulated_(num_apps, false), nextAllowed_(num_apps, 0)
{
}

void
PartitionedMemory::setShare(AppId app, double share)
{
    if (app >= shares_.size())
        fatal("PartitionedMemory::setShare: app %u out of range", app);
    if (!(share > 0.0 && share <= 1.0))
        fatal("PartitionedMemory::setShare: share %f not in (0, 1]", share);
    shares_[app] = share;
    unregulated_[app] = false;
}

void
PartitionedMemory::setUnregulated(AppId app)
{
    if (app >= shares_.size())
        fatal("PartitionedMemory::setUnregulated: app %u out of range",
              app);
    unregulated_[app] = true;
}

Cycles
PartitionedMemory::spacing(AppId app) const
{
    double total_rate = static_cast<double>(params_.channels) /
                        static_cast<double>(params_.channelOccupancy);
    double app_rate = total_rate * shares_.at(app);
    return std::max<Cycles>(
        1, static_cast<Cycles>(std::llround(1.0 / app_rate)));
}

Cycles
PartitionedMemory::queueingDelay(AppId app, Cycles now)
{
    // Unregulated (latency-critical) apps bypass the regulator and
    // contend directly; their bandwidth is protected by everyone
    // else's regulation.
    if (unregulated_[app])
        return claimChannel(now, now);

    // Token-bucket regulator: delay the miss until the app's next
    // allowed issue slot, then contend for a channel as usual.
    Cycles allowed = std::max(now, nextAllowed_[app]);
    nextAllowed_[app] = allowed + spacing(app);
    Cycles throttle = allowed - now;
    chargeThrottle(app, throttle);
    return throttle + claimChannel(now, allowed);
}

const char *
memKindName(MemKind k)
{
    switch (k) {
      case MemKind::Fixed:
        return "fixed";
      case MemKind::Contended:
        return "contended";
      case MemKind::Partitioned:
        return "partitioned";
    }
    panic("bad MemKind");
}

std::unique_ptr<MemorySystem>
makeMemorySystem(MemKind kind, MemoryParams params, std::uint32_t num_apps)
{
    switch (kind) {
      case MemKind::Fixed:
        return std::make_unique<FixedLatencyMemory>(params, num_apps);
      case MemKind::Contended:
        return std::make_unique<ContendedMemory>(params, num_apps);
      case MemKind::Partitioned:
        return std::make_unique<PartitionedMemory>(params, num_apps);
    }
    panic("bad MemKind");
}

} // namespace ubik
