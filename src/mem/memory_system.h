/**
 * @file
 * Main-memory timing models and bandwidth partitioning.
 *
 * The paper models a fixed-latency memory (Table 2: 200 cycles,
 * "minimal load" on 3 DDR3-1066 channels) because bandwidth has no
 * inertia and is orthogonal to the cache-capacity transients Ubik
 * manages (§2.1, §6). Combining Ubik with bandwidth partitioning is
 * explicitly left to future work ("Ubik should be easy to combine
 * with bandwidth partitioning techniques for real-time systems
 * [21]"). This module builds that extension:
 *
 *  - FixedLatencyMemory reproduces the paper's model exactly (zero
 *    queueing delay, every miss costs the base latency).
 *  - ContendedMemory models the memory channels as a bank of
 *    earliest-free servers: each miss occupies one channel for a
 *    fixed occupancy, and queueing delay emerges under load. This is
 *    the interference source the paper abstracts away.
 *  - PartitionedMemory adds a per-app token-bucket regulator in
 *    front of the contended channels (a Jeong-et-al.-style QoS
 *    memory controller): each app is assigned a bandwidth share, and
 *    its misses are spaced so it cannot exceed that share, bounding
 *    the queueing other apps can suffer from it.
 *
 * All models are deterministic and purely event-driven: the caller
 * asks for the queueing delay of one miss issued at a given cycle,
 * and the model advances its channel state. Per-app statistics and
 * total channel utilization support the bandwidth ablation bench.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/types.h"

namespace ubik {

/** Memory-system timing parameters. */
struct MemoryParams
{
    /** Uncontended miss latency beyond the LLC, cycles (Table 2). */
    Cycles baseLatency = 200;

    /** Independent memory channels (Table 2's machine has 3). */
    std::uint32_t channels = 3;

    /**
     * Cycles one miss occupies a channel (64B line transfer plus
     * command overhead). 24 cycles at 3.2GHz is 7.5ns per line, i.e.
     * ~8.5GB/s per channel — DDR3-1066 peak.
     */
    Cycles channelOccupancy = 24;
};

/** Per-app memory statistics. */
struct MemAppStats
{
    std::uint64_t requests = 0;

    /** Contention-added cycles (total and worst single miss). */
    Cycles totalQueueing = 0;
    Cycles maxQueueing = 0;

    /** Regulator-added cycles (PartitionedMemory only). */
    Cycles totalThrottle = 0;

    double meanQueueing() const
    {
        return requests == 0 ? 0.0
                             : static_cast<double>(totalQueueing) /
                                   static_cast<double>(requests);
    }
};

/**
 * Abstract memory system. access() is the single entry point: it
 * accounts one miss and returns the *extra* delay beyond the base
 * latency (zero when uncontended), so the paper's fixed-latency model
 * is the natural zero element.
 */
class MemorySystem
{
  public:
    MemorySystem(MemoryParams params, std::uint32_t num_apps);
    virtual ~MemorySystem() = default;

    virtual const char *name() const = 0;

    /**
     * Account one LLC miss issued by `app` at cycle `now`.
     * @return contention + throttle delay, cycles (0 if uncontended)
     */
    Cycles access(AppId app, Cycles now);

    const MemoryParams &params() const { return params_; }

    const MemAppStats &appStats(AppId app) const;

    /** Total misses serviced. */
    std::uint64_t requests() const { return requests_; }

    /** Busy-cycle fraction of all channels over `elapsed` cycles. */
    double utilization(Cycles elapsed) const;

  protected:
    /** Model-specific delay computation; must advance channel state. */
    virtual Cycles queueingDelay(AppId app, Cycles now) = 0;

    /** Charge `cycles` of channel busy time (for utilization). */
    void chargeBusy(Cycles cycles) { busyCycles_ += cycles; }

    /** Record regulator delay in the per-app stats. */
    void chargeThrottle(AppId app, Cycles cycles);

    MemoryParams params_;

  private:
    std::vector<MemAppStats> stats_;
    std::uint64_t requests_ = 0;
    Cycles busyCycles_ = 0;
};

/** The paper's model: every miss costs the base latency, no queueing. */
class FixedLatencyMemory : public MemorySystem
{
  public:
    FixedLatencyMemory(MemoryParams params, std::uint32_t num_apps)
        : MemorySystem(params, num_apps)
    {
    }

    const char *name() const override { return "fixed"; }

  protected:
    Cycles queueingDelay(AppId app, Cycles now) override;
};

/**
 * Contended channels: each miss books the earliest feasible
 * occupancy-long slot across the channels; the wait until its slot
 * starts is the queueing delay. Channels keep short schedules of busy
 * intervals and fill gaps, so a request released in the future (by
 * the bandwidth regulator below) does not block an earlier request
 * from using an idle channel — the controller can reorder, as real
 * QoS memory controllers do.
 */
class ContendedMemory : public MemorySystem
{
  public:
    ContendedMemory(MemoryParams params, std::uint32_t num_apps);

    const char *name() const override { return "contended"; }

  protected:
    Cycles queueingDelay(AppId app, Cycles now) override;

    /**
     * Book the earliest occupancy-long slot starting at or after
     * `release` on any channel.
     * @param now current cycle (monotone across calls; prunes state)
     * @param release earliest cycle the request may use a channel
     * @return slot start minus release (the queueing wait)
     */
    Cycles claimChannel(Cycles now, Cycles release);

  private:
    struct Booking
    {
        Cycles start;
        Cycles end;
    };

    /** Per-channel busy intervals, sorted, pruned below `now`. */
    std::vector<std::deque<Booking>> sched_;
};

/**
 * Contended channels behind per-app token-bucket regulators. Each app
 * gets a bandwidth share in (0, 1]; its misses are spaced at least
 * channelOccupancy / (channels * share) cycles apart before they may
 * claim a channel. Shares need not sum to 1 (undersubscription leaves
 * slack; oversubscription degrades gracefully into plain contention).
 */
class PartitionedMemory : public ContendedMemory
{
  public:
    PartitionedMemory(MemoryParams params, std::uint32_t num_apps);

    const char *name() const override { return "partitioned"; }

    /**
     * Set an app's bandwidth share. Fatal unless 0 < share <= 1.
     * Defaults to 1/num_apps for every app.
     */
    void setShare(AppId app, double share);

    /**
     * Exempt an app from regulation: its misses go straight to the
     * channels (strict priority for latency-critical apps, as in
     * QoS-aware memory controllers). The app's bandwidth is then
     * protected by regulating everyone else, not by shaping it.
     */
    void setUnregulated(AppId app);

    bool unregulated(AppId app) const { return unregulated_.at(app); }

    double share(AppId app) const { return shares_.at(app); }

    /** Minimum inter-miss spacing the regulator enforces, cycles. */
    Cycles spacing(AppId app) const;

  protected:
    Cycles queueingDelay(AppId app, Cycles now) override;

  private:
    std::vector<double> shares_;
    std::vector<bool> unregulated_;
    std::vector<Cycles> nextAllowed_;
};

/** Memory-model selection for CmpConfig. */
enum class MemKind
{
    Fixed,       ///< the paper's fixed-latency model (default)
    Contended,   ///< channel contention, no QoS
    Partitioned, ///< channel contention + per-app bandwidth shares
};

const char *memKindName(MemKind k);

/** Factory used by the simulator. */
std::unique_ptr<MemorySystem>
makeMemorySystem(MemKind kind, MemoryParams params, std::uint32_t num_apps);

} // namespace ubik
