#include "core/advisor.h"

#include <algorithm>

#include "common/log.h"

namespace ubik {

namespace {

/** Smallest boost in (s_active, cap] whose post-transient gain repays
 *  `lost` cycles by the deadline (mirrors UbikPolicy::solveBoost). */
std::uint64_t
solveBoost(const TransientModel &model, std::uint64_t s_idle,
           std::uint64_t s_active, std::uint64_t cap, Cycles deadline,
           double lost, std::uint64_t step)
{
    if (lost <= 0)
        return s_active;
    if (deadline == 0)
        return 0;
    for (std::uint64_t s = s_active + step; s <= cap; s += step) {
        TransientEstimate fill = model.upperBound(s_idle, s);
        if (fill.unbounded)
            return 0;
        if (fill.duration >= static_cast<double>(deadline))
            return 0;
        double gain_time =
            static_cast<double>(deadline) - fill.duration;
        if (model.gainRate(s_active, s) * gain_time >= lost)
            return s;
    }
    return 0;
}

} // namespace

AdvisorReport
advise(const AdvisorInput &in)
{
    if (in.curve.empty())
        fatal("advisor: empty miss curve");
    if (in.intervalAccesses == 0)
        fatal("advisor: intervalAccesses must be > 0");
    if (in.targetLines == 0)
        fatal("advisor: targetLines must be > 0");
    if (!in.profile.valid)
        fatal("advisor: timing profile not valid (set profile.valid "
              "after filling c/M)");
    if (in.idleOptions == 0)
        fatal("advisor: idleOptions must be > 0");

    TransientModel model(in.curve, in.intervalAccesses, in.profile);
    std::uint64_t cap = in.boostCap > 0 ? in.boostCap
                                        : in.curve.maxLines();
    cap = std::max(cap, in.targetLines);
    std::uint64_t step =
        in.stepLines > 0
            ? in.stepLines
            : std::max<std::uint64_t>(1,
                                      in.targetLines / in.idleOptions);

    AdvisorReport out;
    out.best.sIdle = in.targetLines;
    out.best.sBoost = in.targetLines;
    out.best.feasible = true;

    for (std::uint32_t i = 1; i <= in.idleOptions; i++) {
        std::uint64_t s_idle = static_cast<std::uint64_t>(
            static_cast<double>(in.targetLines) *
            static_cast<double>(in.idleOptions - i) /
            static_cast<double>(in.idleOptions));
        if (!out.options.empty() &&
            s_idle >= out.options.back().sIdle)
            continue; // quantization duplicate

        SizingOption opt;
        opt.sIdle = s_idle;
        opt.freedLines = in.targetLines - s_idle;

        TransientEstimate tr = model.upperBound(s_idle, in.targetLines);
        opt.transientCycles = tr.duration;
        opt.lostCycles = tr.lostCycles;
        if (!tr.unbounded) {
            std::uint64_t boost =
                solveBoost(model, s_idle, in.targetLines, cap,
                           in.deadline, tr.lostCycles, step);
            if (boost != 0) {
                opt.sBoost = boost;
                opt.feasible = true;
            }
        }
        out.options.push_back(opt);
        if (opt.feasible) {
            out.best = opt;
            out.canDownsize = true;
        } else {
            break; // deeper idle sizes only get harder (Fig 7)
        }
    }
    return out;
}

} // namespace ubik
