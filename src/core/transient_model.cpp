#include "core/transient_model.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace ubik {

TransientModel::TransientModel(MissCurve curve,
                               std::uint64_t interval_accesses,
                               const CoreProfile &profile)
    : curve_(std::move(curve)),
      accesses_(static_cast<double>(
          interval_accesses ? interval_accesses : 1)),
      c_(std::max(1.0, profile.hitCyclesPerAccess)),
      m_(std::max(1.0, profile.missPenalty))
{
}

double
TransientModel::missProb(std::uint64_t lines) const
{
    if (curve_.empty())
        return 0.0;
    double p = curve_.missesAtLines(lines) / accesses_;
    return std::clamp(p, 0.0, 1.0);
}

TransientEstimate
TransientModel::upperBound(std::uint64_t s1, std::uint64_t s2) const
{
    TransientEstimate est;
    if (s2 <= s1)
        return est;
    double p1 = missProb(s1);
    double p2 = missProb(s2);
    if (p2 < kMinFillProb) {
        est.unbounded = true;
        return est;
    }
    double lines = static_cast<double>(s2 - s1);
    est.duration = lines * (c_ / p2 + m_);
    double ratio = p1 > 0 ? std::min(1.0, p2 / p1) : 1.0;
    est.lostCycles = m_ * lines * (1.0 - ratio);
    return est;
}

TransientEstimate
TransientModel::exact(std::uint64_t s1, std::uint64_t s2) const
{
    TransientEstimate est;
    if (s2 <= s1 || curve_.empty())
        return est;
    double p2 = missProb(s2);
    if (p2 < kMinFillProb) {
        est.unbounded = true;
        return est;
    }
    // Sum at curve granularity, treating p(s) constant within each
    // curve segment (the hardware only knows the sampled points).
    std::uint64_t step = curve_.linesPerPoint();
    double duration = 0;
    double lost = 0;
    std::uint64_t s = s1;
    while (s < s2) {
        std::uint64_t seg_end = std::min<std::uint64_t>(
            s2, (s / step + 1) * step);
        double lines = static_cast<double>(seg_end - s);
        double p = std::max(missProb(s), kMinFillProb);
        duration += lines * (c_ / p + m_);
        lost += m_ * lines * (1.0 - std::min(1.0, p2 / p));
        s = seg_end;
    }
    est.duration = duration;
    est.lostCycles = lost;
    return est;
}

double
TransientModel::gainRate(std::uint64_t s_small, std::uint64_t s_big) const
{
    if (s_big <= s_small)
        return 0.0;
    double p_small = missProb(s_small);
    double p_big = missProb(s_big);
    if (p_small <= p_big)
        return 0.0;
    double t_access = c_ + p_big * m_;
    return (p_small - p_big) * m_ / t_access;
}

} // namespace ubik
