#include "core/ubik_policy.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/log.h"
#include "policy/policy_util.h"

namespace ubik {

UbikPolicy::UbikPolicy(PartitionScheme &scheme,
                       std::vector<AppMonitor> &apps, UbikConfig cfg)
    : PartitionPolicy(scheme, apps), cfg_(cfg), lc_(apps.size())
{
    // Both values arrive from user configuration, so misconfiguration
    // is a usage error, not a ubik bug.
    if (cfg_.slack < 0 || cfg_.slack >= 1.0)
        fatal("UbikPolicy: slack %f must be in [0, 1)", cfg_.slack);
    if (cfg_.idleOptions < 1)
        fatal("UbikPolicy: need at least one idle-size option");
    const std::uint64_t total = scheme_.array().numLines();
    for (AppId a = 0; a < apps_.size(); a++) {
        if (!apps_[a].latencyCritical) {
            batchIds_.push_back(a);
            continue;
        }
        // Until the first reconfiguration we only know the target:
        // behave like StaticLC (safe).
        UbikLcState &st = lc_[a];
        st.sActive = st.sActiveStrict =
            bucketsToLines(std::max<std::uint64_t>(
                               1, linesToBuckets(apps_[a].targetLines,
                                                 total)),
                           total);
        st.sIdle = st.sBoost = st.sBoostStrict = st.sActive;
        st.deboost = DeboostMonitor(cfg_.deboostGuard);
        scheme_.setTargetSize(partOf(a), st.sActive);
    }
}

const char *
UbikPolicy::name() const
{
    if (name_.empty()) {
        if (cfg_.slack <= 0) {
            name_ = "Ubik";
        } else {
            name_ = "Ubik(slack=" +
                    std::to_string(static_cast<int>(
                        std::lround(cfg_.slack * 100))) +
                    "%)";
        }
    }
    return name_.c_str();
}

std::uint64_t
UbikPolicy::boostCap() const
{
    std::uint64_t n_lc = 0;
    for (const auto &mon : apps_)
        if (mon.latencyCritical)
            n_lc++;
    ubik_assert(n_lc > 0);
    return scheme_.array().numLines() / n_lc;
}

std::uint64_t
UbikPolicy::lcBuckets() const
{
    const std::uint64_t total = scheme_.array().numLines();
    std::uint64_t b = 0;
    for (AppId a = 0; a < apps_.size(); a++)
        if (apps_[a].latencyCritical)
            b += linesToBuckets(scheme_.targetSize(partOf(a)), total);
    return b;
}

void
UbikPolicy::applyBatchAllocation()
{
    if (!table_.valid() || batchIds_.empty())
        return;
    const std::uint64_t total = scheme_.array().numLines();
    std::uint64_t lc = lcBuckets();
    std::uint64_t budget = lc < kBuckets ? kBuckets - lc : 0;
    auto alloc = table_.allocationAt(budget);
    for (std::size_t i = 0; i < batchIds_.size(); i++)
        scheme_.setTargetSize(partOf(batchIds_[i]),
                              bucketsToLines(alloc[i], total));
}

void
UbikPolicy::resizeLc(AppId app, std::uint64_t lines)
{
    scheme_.setTargetSize(partOf(app), lines);
    applyBatchAllocation();
}

std::uint64_t
UbikPolicy::solveBoost(const TransientModel &model, std::uint64_t s_idle,
                       std::uint64_t s_active, std::uint64_t boost_cap,
                       Cycles deadline, double lost) const
{
    if (lost <= 0)
        return s_active;
    if (deadline == 0)
        return 0;
    const std::uint64_t total = scheme_.array().numLines();
    const std::uint64_t step = linesPerBucket(total);
    for (std::uint64_t s = s_active + step; s <= boost_cap; s += step) {
        TransientEstimate fill = model.upperBound(s_idle, s);
        if (fill.unbounded)
            return 0; // cannot fill this high; larger is worse
        if (fill.duration >= static_cast<double>(deadline))
            return 0; // transient alone eats the deadline
        double gain_time = static_cast<double>(deadline) - fill.duration;
        double gain = model.gainRate(s_active, s) * gain_time;
        if (gain >= lost)
            return s;
    }
    return 0;
}

void
UbikPolicy::sizeLcApp(AppId app)
{
    AppMonitor &mon = apps_[app];
    UbikLcState &st = lc_[app];
    const std::uint64_t total = scheme_.array().numLines();
    const std::uint64_t step = linesPerBucket(total);

    // Quantized target; never below one bucket.
    std::uint64_t target = bucketsToLines(
        std::max<std::uint64_t>(1, linesToBuckets(mon.targetLines, total)),
        total);
    st.sActiveStrict = target;

    if (!mon.umon || !mon.mlp || !mon.mlp->profile().valid ||
        mon.interval.llcAccesses == 0) {
        // No signal (app idle all interval, or warming up): stay safe.
        st.sActive = target;
        st.sIdle = st.sBoost = st.sBoostStrict = target;
        return;
    }

    MissCurve curve = mon.umon->missCurve(kBuckets + 1);
    curve.enforceMonotone();
    TransientModel model(curve, mon.interval.llcAccesses,
                         mon.mlp->profile());

    const std::uint64_t cap = boostCap();
    const Cycles deadline = mon.deadline;

    // --- Slack mode: shrink s_active within the adaptive miss slack.
    std::uint64_t s_active = target;
    if (cfg_.slack > 0 && st.missSlack > 0 && mon.intervalRequests > 0) {
        double allowance = st.missSlack *
                           static_cast<double>(mon.intervalRequests);
        double at_target = curve.missesAtLines(target);
        for (std::uint64_t s = step; s < target; s += step) {
            if (curve.missesAtLines(s) - at_target <= allowance) {
                s_active = s;
                break;
            }
        }
    }
    st.sActive = s_active;

    // --- Option search (Fig 7): idle sizes from s_active down to 0,
    // keeping the feasible option with the best batch cost-benefit.
    struct Option
    {
        std::uint64_t sIdle;
        std::uint64_t sBoost;
        double gain;
    };
    auto search = [&](std::uint64_t s_act) -> Option {
        Option best{s_act, s_act, 0.0};
        std::uint64_t b_act = linesToBuckets(s_act, total);
        std::uint64_t lc_others = lcBuckets() -
            linesToBuckets(scheme_.targetSize(partOf(app)), total);
        std::uint64_t base_budget =
            kBuckets > lc_others + b_act ? kBuckets - lc_others - b_act
                                         : 0;
        double boosted_frac = std::min(
            1.0, static_cast<double>(st.activations) *
                     static_cast<double>(deadline) /
                     std::max<double>(1.0,
                                      static_cast<double>(intervalLen_)));
        for (std::uint32_t i = 1; i <= cfg_.idleOptions; i++) {
            std::uint64_t b_idle =
                b_act * (cfg_.idleOptions - i) / cfg_.idleOptions;
            std::uint64_t s_idle = bucketsToLines(b_idle, total);
            if (s_idle >= best.sIdle && i > 1)
                continue; // quantization produced a duplicate
            TransientEstimate tr = model.upperBound(s_idle, s_act);
            if (tr.unbounded)
                break; // cannot refill s_act at all: stop downsizing
            std::uint64_t s_boost = solveBoost(model, s_idle, s_act, cap,
                                               deadline, tr.lostCycles);
            if (s_boost == 0)
                break; // infeasible; lower s_idle only gets worse
            if (!table_.valid())
                continue;
            // Cost-benefit on the batch apps' aggregate miss curve.
            std::uint64_t freed = b_act - b_idle;
            std::uint64_t b_boost = linesToBuckets(s_boost, total);
            std::uint64_t boost_extra =
                b_boost > b_act ? b_boost - b_act : 0;
            double benefit =
                (table_.missesAt(base_budget) -
                 table_.missesAt(base_budget + freed)) *
                st.idleFrac;
            std::uint64_t shrunk = base_budget > boost_extra
                                       ? base_budget - boost_extra
                                       : 0;
            double cost = (table_.missesAt(shrunk) -
                           table_.missesAt(base_budget)) *
                          boosted_frac;
            double gain = benefit - cost;
            if (gain > best.gain) {
                best.sIdle = s_idle;
                best.sBoost = s_boost;
                best.gain = gain;
            }
        }
        return best;
    };

    Option chosen = search(s_active);
    st.sIdle = chosen.sIdle;
    st.sBoost = chosen.sBoost;

    // Conservative fallback sizes for the slack watermark.
    if (s_active != target) {
        Option strict = search(target);
        st.sBoostStrict = strict.sBoost;
    } else {
        st.sBoostStrict = chosen.sBoost;
    }
}

void
UbikPolicy::reconfigure(Cycles now)
{
    const std::uint64_t total = scheme_.array().numLines();
    intervalLen_ = lastReconfigure_ < now ? now - lastReconfigure_
                                          : intervalLen_;
    lastReconfigure_ = now;

    // 1. Batch inputs and the repartitioning table, anchored at the
    //    expected batch budget (duty-cycle-weighted LC usage).
    std::vector<LookaheadInput> inputs;
    inputs.reserve(batchIds_.size());
    for (AppId a : batchIds_) {
        LookaheadInput in = monitorInput(apps_[a], total);
        in.minBuckets = 1;
        inputs.push_back(std::move(in));
    }
    double expected_lc = 0;
    for (AppId a = 0; a < apps_.size(); a++) {
        if (!apps_[a].latencyCritical)
            continue;
        const UbikLcState &st = lc_[a];
        double b_idle = static_cast<double>(
            linesToBuckets(st.sIdle, total));
        double b_act = static_cast<double>(
            linesToBuckets(st.sActive, total));
        expected_lc += st.idleFrac * b_idle + (1 - st.idleFrac) * b_act;
    }
    std::uint64_t expected_budget =
        expected_lc < static_cast<double>(kBuckets)
            ? kBuckets - static_cast<std::uint64_t>(expected_lc)
            : 0;
    if (!inputs.empty())
        table_.build(inputs, expected_budget, kBuckets);

    // 2. Per-LC sizing, then apply the size matching the app's state.
    for (AppId a = 0; a < apps_.size(); a++) {
        if (!apps_[a].latencyCritical)
            continue;
        sizeLcApp(a);
        UbikLcState &st = lc_[a];
        std::uint64_t lines = st.sActive;
        if (!apps_[a].active)
            lines = st.sIdle;
        else if (st.boosted)
            lines = st.sBoost;
        scheme_.setTargetSize(partOf(a), lines);
        st.activations = 0;
    }

    // 3. Batch partitions from the table at the actual budget.
    applyBatchAllocation();
}

void
UbikPolicy::onActive(AppId app, Cycles now)
{
    ubik_assert(apps_[app].latencyCritical);
    UbikLcState &st = lc_[app];
    st.activations++;

    // Fold the just-finished idle period into the duty-cycle EWMA.
    if (now > st.lastEdge && intervalLen_ > 0) {
        double frac = std::min(
            1.0, static_cast<double>(now - st.lastEdge) /
                     static_cast<double>(intervalLen_));
        st.idleFrac += cfg_.dutyAlpha * (frac - st.idleFrac);
    }
    st.lastEdge = now;

    if (st.sIdle < st.sActive) {
        st.boosted = true;
        st.boostStart = now;
        double watermark = 0.0;
        if (cfg_.slack > 0)
            watermark = std::max(0.1, st.missSlackFrac);
        st.deboost.arm(st.sActive, watermark);
        resizeLc(app, st.sBoost);
    } else {
        resizeLc(app, st.sActive);
    }
}

void
UbikPolicy::onIdle(AppId app, Cycles now)
{
    ubik_assert(apps_[app].latencyCritical);
    UbikLcState &st = lc_[app];
    if (now > st.lastEdge && intervalLen_ > 0) {
        double frac = std::min(
            1.0, static_cast<double>(now - st.lastEdge) /
                     static_cast<double>(intervalLen_));
        // Active period ended: pull idleFrac down-weighted by it.
        st.idleFrac += cfg_.dutyAlpha * ((1.0 - frac) - st.idleFrac) *
                       frac;
    }
    st.lastEdge = now;
    st.boosted = false;
    st.deboost.disarm();
    resizeLc(app, st.sIdle);
}

void
UbikPolicy::onAccess(AppId app, const UmonProbe &probe, bool miss,
                     Cycles now)
{
    if (!apps_[app].latencyCritical)
        return;
    UbikLcState &st = lc_[app];

    // Without the accurate de-boosting circuit, the only way down
    // from s_boost is deadline expiry (§5.1.1's ablated variant).
    // Checked before the armed() gate: the monitor may have disarmed
    // itself on an (ignored) early-recovery event.
    Cycles deadline = apps_[app].deadline;
    if (!cfg_.accurateDeboost && st.boosted && deadline > 0 &&
        now >= st.boostStart + deadline) {
        deadlineDeboosts_++;
        st.boosted = false;
        st.deboost.disarm();
        resizeLc(app, st.sActive);
        return;
    }

    if (!st.deboost.armed() || !apps_[app].umon)
        return;
    DeboostEvent ev = st.deboost.observe(*apps_[app].umon, probe, miss);
    switch (ev) {
      case DeboostEvent::None:
        return;
      case DeboostEvent::Recovered:
        if (!cfg_.accurateDeboost)
            return; // circuit ablated: hold the boost
        // Transient cost repaid early: give the boost space back.
        deboostInterrupts_++;
        st.boosted = false;
        resizeLc(app, st.sActive);
        return;
      case DeboostEvent::Watermark:
        // This request is suffering far beyond the slack model:
        // fall back to the conservative no-slack sizes.
        watermarkInterrupts_++;
        st.sActive = st.sActiveStrict;
        st.sBoost = st.sBoostStrict;
        st.boosted = true;
        st.deboost.arm(st.sActive, 0.0);
        resizeLc(app, st.sBoost);
        return;
    }
}

void
UbikPolicy::onRequestComplete(AppId app, Cycles latency)
{
    if (cfg_.slack <= 0 || !apps_[app].latencyCritical)
        return;
    AppMonitor &mon = apps_[app];
    UbikLcState &st = lc_[app];
    if (mon.deadline == 0)
        return;

    // Adaptive miss slack (§5.2): proportional controller steering the
    // per-request extra-miss budget so observed latencies stay within
    // deadline * (1 + slack).
    double m = mon.mlp && mon.mlp->profile().valid
                   ? mon.mlp->profile().missPenalty
                   : 200.0;
    double max_slack = cfg_.slack * static_cast<double>(mon.deadline) /
                       std::max(1.0, m);
    double allowed = static_cast<double>(mon.deadline) *
                     (1.0 + cfg_.slack);
    double err = (allowed - static_cast<double>(latency)) / allowed;
    err = std::clamp(err, -5.0, 1.0);
    st.missSlack = std::clamp(
        st.missSlack + cfg_.slackGain * err * max_slack * 0.2, 0.0,
        max_slack);

    // Watermark fraction: the extra-miss budget relative to the
    // misses a typical request incurs (bounded so the watermark stays
    // meaningful).
    double per_req_misses =
        mon.intervalRequests > 0
            ? static_cast<double>(mon.interval.llcMisses) /
                  static_cast<double>(mon.intervalRequests)
            : 1.0;
    st.missSlackFrac = std::clamp(
        st.missSlack / std::max(1.0, per_req_misses), 0.1, 4.0);
}

} // namespace ubik
