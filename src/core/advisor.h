/**
 * @file
 * Offline Ubik sizing advisor.
 *
 * Answers "what would Ubik do for my workload?" without running the
 * full simulator: given a miss curve (from a captured trace via
 * TraceAnalyzer, or from production UMON readings), the linear timing
 * parameters (c, M — §5.1), a target size, and a deadline, the
 * advisor enumerates the same s_idle candidates strict Ubik would
 * (§5.1.1) and, for each, the smallest feasible s_boost, the
 * transient-length and lost-cycle upper bounds, and the space freed.
 *
 * This is the capacity-planning view of the policy: operators can
 * read off how much cache a colocated batch tier would gain at each
 * deadline before deploying, and which deadlines make downsizing
 * infeasible (the TightDeadlinePreventsDownsizing regime).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "core/transient_model.h"
#include "mon/miss_curve.h"
#include "mon/mlp_profiler.h"
#include "common/types.h"

namespace ubik {

/** Inputs the advisor needs (all offline-obtainable). */
struct AdvisorInput
{
    /** Miss curve over partition sizes (misses per interval). */
    MissCurve curve;

    /** LLC accesses in the interval the curve was measured over. */
    std::uint64_t intervalAccesses = 0;

    /** Timing profile: c, M, access intensity (§5.1). */
    CoreProfile profile;

    /** The app's target allocation, lines (s_active in strict mode). */
    std::uint64_t targetLines = 0;

    /** QoS deadline, cycles (95th pct latency at the target size). */
    Cycles deadline = 0;

    /** Largest boost the advisor may recommend (paper: total LLC
     *  lines / number of LC apps). 0 = unlimited. */
    std::uint64_t boostCap = 0;

    /** s_idle candidates to evaluate (paper: 16). */
    std::uint32_t idleOptions = 16;

    /** Sizing granularity, lines (paper: 1/256th of the LLC). */
    std::uint64_t stepLines = 0; ///< 0 = targetLines / idleOptions
};

/** One evaluated (s_idle, s_boost) candidate. */
struct SizingOption
{
    std::uint64_t sIdle = 0;

    /** Smallest boost that repays the transient by the deadline;
     *  meaningful only when feasible. */
    std::uint64_t sBoost = 0;

    bool feasible = false;

    /** Upper bound on the s_idle -> s_boost fill time, cycles. */
    double transientCycles = 0;

    /** Upper bound on cycles lost vs staying at the target. */
    double lostCycles = 0;

    /** Lines a batch tier gains while the app idles at s_idle. */
    std::uint64_t freedLines = 0;
};

/** The advisor's full answer. */
struct AdvisorReport
{
    /** All candidates, deepest idle size last. */
    std::vector<SizingOption> options;

    /** Deepest feasible candidate (the most space freed); equals the
     *  target when no downsizing is feasible. */
    SizingOption best;

    /** True if any candidate with sIdle < target was feasible. */
    bool canDownsize = false;
};

/**
 * Evaluate strict-Ubik sizing options offline.
 * fatal() on unusable inputs (empty curve, zero accesses or target).
 */
AdvisorReport advise(const AdvisorInput &in);

} // namespace ubik
