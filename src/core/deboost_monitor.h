/**
 * @file
 * Accurate de-boosting circuit (§5.1.1) with the slack low watermark
 * (§5.2).
 *
 * The UMON's tags survive idle periods, so while a boosted app runs,
 * each sampled access tells us whether it *would have* hit had the
 * partition been held at s_active. The circuit keeps two counters
 * since activation:
 *
 *   wouldBeMisses — UMON-predicted misses at s_active (scaled by the
 *                   sampling factor), and
 *   actualMisses  — real partition misses.
 *
 * The partition starts cold (actual > wouldBe); while boosted it
 * out-hits the s_active baseline (actual grows slower). When
 * wouldBeMisses >= actualMisses + guard, the transient's cost has been
 * repaid and the circuit raises the de-boost interrupt.
 *
 * Low watermark: under slack, if actualMisses outgrows wouldBeMisses
 * by more than (1 + missSlack)x, the request is suffering far beyond
 * the model's prediction; the circuit raises a *watermark* interrupt
 * so the runtime can fall back to the conservative no-slack sizes.
 */

#pragma once

#include <cstdint>

#include "mon/umon.h"
#include "common/types.h"

namespace ubik {

/** De-boost circuit outcome per access. */
enum class DeboostEvent
{
    None,      ///< keep boosting
    Recovered, ///< lost cycles repaid: de-boost to s_active
    Watermark, ///< losses exceed the slack model: go conservative
};

/** Per-app accurate de-boosting state machine. */
class DeboostMonitor
{
  public:
    /**
     * @param guard extra would-be misses required before declaring
     *        recovery (absorbs UMON sampling error; paper mentions a
     *        small guard)
     */
    explicit DeboostMonitor(double guard = 16.0);

    /**
     * Arm the circuit on an idle->active transition.
     * @param s_active allocation whose performance must be matched
     * @param miss_slack slack mode's tolerated miss overshoot
     *        fraction (0 for strict)
     */
    void arm(std::uint64_t s_active, double miss_slack);

    /** Disarm (app de-boosted or gone idle). */
    void disarm();

    bool armed() const { return armed_; }

    /**
     * Feed one access.
     * @param umon the app's UMON (for sampling-factor scaling)
     * @param probe UMON probe result for this address
     * @param missed whether the real LLC access missed
     */
    DeboostEvent observe(const Umon &umon, const UmonProbe &probe,
                         bool missed);

    double wouldBeMisses() const { return wouldBeMisses_; }
    double actualMisses() const { return actualMisses_; }

  private:
    double guard_;
    bool armed_ = false;
    std::uint64_t sActive_ = 0;
    double missSlack_ = 0;
    double wouldBeMisses_ = 0;
    double actualMisses_ = 0;
};

} // namespace ubik
