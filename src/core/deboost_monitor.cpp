#include "core/deboost_monitor.h"

#include "common/log.h"

namespace ubik {

DeboostMonitor::DeboostMonitor(double guard) : guard_(guard)
{
    ubik_assert(guard >= 0);
}

void
DeboostMonitor::arm(std::uint64_t s_active, double miss_slack)
{
    armed_ = true;
    sActive_ = s_active;
    missSlack_ = miss_slack;
    wouldBeMisses_ = 0;
    actualMisses_ = 0;
}

void
DeboostMonitor::disarm()
{
    armed_ = false;
}

DeboostEvent
DeboostMonitor::observe(const Umon &umon, const UmonProbe &probe,
                        bool missed)
{
    if (!armed_)
        return DeboostEvent::None;

    if (missed)
        actualMisses_ += 1.0;
    if (probe.sampled && umon.missesAtAllocation(probe, sActive_))
        wouldBeMisses_ += umon.samplingFactor();

    if (wouldBeMisses_ >= actualMisses_ + guard_) {
        armed_ = false;
        return DeboostEvent::Recovered;
    }
    if (missSlack_ > 0) {
        // Low watermark: actual misses have outgrown the UMON
        // prediction by more than the slack allows; only meaningful
        // once enough events accumulated to trust the comparison.
        double threshold = (wouldBeMisses_ + guard_) * (1.0 + missSlack_);
        if (actualMisses_ > threshold && actualMisses_ > 4 * guard_) {
            armed_ = false;
            return DeboostEvent::Watermark;
        }
    }
    return DeboostEvent::None;
}

} // namespace ubik
