/**
 * @file
 * Ubik's analytical transient model (§5.1).
 *
 * When a Vantage partition is upsized from s1 to s2 lines, every miss
 * grows it by one line and nothing is evicted from it until it reaches
 * s2. With a miss-probability curve p(s), inter-access time
 * T_access(s) = c + p(s)·M, and inter-miss time T_miss(s) =
 * c/p(s) + M, the transient obeys:
 *
 *   T_transient = sum_{s=s1}^{s2-1} (c/p(s) + M)
 *               <= (s2 - s1) · (c/p(s2) + M)               [upper bound]
 *
 *   L (cycles lost vs starting at s2)
 *               = M · sum_{s=s1}^{s2-1} (1 - p(s2)/p(s))
 *              <= M · (s2 - s1) · (1 - p(s2)/p(s1))        [upper bound]
 *
 * This module evaluates both the exact sums (at miss-curve
 * granularity) and the paper's conservative closed-form bounds, and
 * the symmetric "gain rate" of running above s_active that the
 * boosting logic needs.
 */

#pragma once

#include <cstdint>

#include "mon/miss_curve.h"
#include "mon/mlp_profiler.h"
#include "common/types.h"

namespace ubik {

/** Transient characteristics for one resizing. */
struct TransientEstimate
{
    /** Cycles for the partition to fill from s1 to s2. */
    double duration = 0;

    /** Cycles lost relative to starting at s2. */
    double lostCycles = 0;

    /** True when the app's miss rate at s2 is too low to ever fill
     *  the space (p(s2) ~ 0 makes the transient unbounded). */
    bool unbounded = false;
};

/** Analytical model over one app's miss curve and timing profile. */
class TransientModel
{
  public:
    /**
     * @param curve the app's miss curve over the counting interval
     *        (copied, so callers may pass temporaries)
     * @param interval_accesses LLC accesses in the same interval
     *        (converts curve values to miss probabilities)
     * @param profile the app's timing profile (c and M)
     */
    TransientModel(MissCurve curve, std::uint64_t interval_accesses,
                   const CoreProfile &profile);

    /** Miss probability at a given allocation. */
    double missProb(std::uint64_t lines) const;

    /** Paper's conservative closed-form upper bounds. */
    TransientEstimate upperBound(std::uint64_t s1, std::uint64_t s2) const;

    /** Exact sums at miss-curve granularity (for validation benches
     *  and the ablation study). */
    TransientEstimate exact(std::uint64_t s1, std::uint64_t s2) const;

    /**
     * Cycles gained per cycle of execution by holding s_big instead of
     * s_small (both in steady state): extra hits per access x M,
     * divided by the inter-access time at s_big.
     */
    double gainRate(std::uint64_t s_small, std::uint64_t s_big) const;

    double c() const { return c_; }
    double m() const { return m_; }

    /** Below this miss probability the space is considered unfillable. */
    static constexpr double kMinFillProb = 1e-5;

  private:
    MissCurve curve_;
    double accesses_;
    double c_;
    double m_;
};

} // namespace ubik
