/**
 * @file
 * Ubik: inertia-aware dynamic cache partitioning (§5).
 *
 * Strict Ubik gives each latency-critical (LC) app the performance of
 * a constant partition of size s_active (its target). When the app
 * idles, its partition shrinks to s_idle; on the next idle->active
 * edge it is boosted to s_boost > s_active, sized so that — by the
 * app's deadline — the cycles gained running above s_active repay the
 * conservative upper bound on cycles lost warming up from s_idle
 * (TransientModel, §5.1). The accurate de-boosting circuit
 * (DeboostMonitor) detects early repayment and returns the extra
 * space to batch apps.
 *
 * Ubik-with-slack (§5.2) tolerates a configurable fractional tail-
 * latency degradation: an adaptive miss-slack proportional controller
 * converts the latency slack into a per-request extra-miss budget,
 * which lets s_active sit below the target size for apps that are not
 * cache-sensitive. A low watermark in the de-boost circuit catches
 * rare requests that suffer far beyond the model and falls back to
 * the conservative no-slack sizes.
 *
 * Batch apps are managed as in §5.1.2: Lookahead at each coarse
 * interval over the average batch budget, plus a RepartitionTable for
 * fast incremental reallocation on every LC resize.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/deboost_monitor.h"
#include "core/transient_model.h"
#include "policy/policy.h"
#include "policy/repartition_table.h"

namespace ubik {

/** Tunables for UbikPolicy; defaults follow the paper. */
struct UbikConfig
{
    /** Tail-latency slack as a fraction of the deadline (0 = strict,
     *  paper evaluates 0 / 0.01 / 0.05 / 0.10). */
    double slack = 0.0;

    /** Number of s_idle options evaluated per LC app (paper: 16). */
    std::uint32_t idleOptions = 16;

    /** De-boost guard, in would-be misses (absorbs UMON noise). */
    double deboostGuard = 16.0;

    /** Proportional gain of the adaptive miss-slack controller. */
    double slackGain = 0.1;

    /** EWMA weight for idle/active duty-cycle estimates. */
    double dutyAlpha = 0.3;

    /**
     * Use the accurate de-boosting circuit (§5.1.1). When false, the
     * boost is held until the deadline expires instead of being
     * released as soon as the transient cost is repaid — the
     * hardware-ablated variant the paper argues against ("waiting
     * until the deadline ... would improve the latency-critical
     * application's performance unnecessarily while hurting batch
     * throughput"). The slack watermark fallback is unaffected.
     */
    bool accurateDeboost = true;
};

/** Per-LC-app controller state. */
struct UbikLcState
{
    /** Allocation whose performance must be matched, lines. In strict
     *  mode this is the target; with slack it may be lower. */
    std::uint64_t sActive = 0;

    /** Allocation while idle, lines (<= sActive). */
    std::uint64_t sIdle = 0;

    /** Allocation while boosted, lines (>= sActive). */
    std::uint64_t sBoost = 0;

    /** Conservative no-slack sizes the watermark falls back to. */
    std::uint64_t sActiveStrict = 0;
    std::uint64_t sBoostStrict = 0;

    /** Accurate de-boosting circuit. */
    DeboostMonitor deboost;

    /** Whether the partition currently sits at sBoost. */
    bool boosted = false;

    /** Cycle the current boost began (deadline-wait de-boosting). */
    Cycles boostStart = 0;

    /** Adaptive per-request extra-miss budget (slack mode). */
    double missSlack = 0.0;

    /** Watermark threshold as a fraction of typical request misses. */
    double missSlackFrac = 0.1;

    /** EWMA fraction of time this app is idle. */
    double idleFrac = 0.5;

    /** Idle->active transitions seen in the current interval. */
    std::uint32_t activations = 0;

    /** Cycle of the last idle/active transition. */
    Cycles lastEdge = 0;
};

/** The Ubik partitioning policy (strict and slack variants). */
class UbikPolicy : public PartitionPolicy
{
  public:
    UbikPolicy(PartitionScheme &scheme, std::vector<AppMonitor> &apps,
               UbikConfig cfg = {});

    const char *name() const override;

    void reconfigure(Cycles now) override;
    void onActive(AppId app, Cycles now) override;
    void onIdle(AppId app, Cycles now) override;
    void onAccess(AppId app, const UmonProbe &probe, bool miss,
                  Cycles now) override;
    void onRequestComplete(AppId app, Cycles latency) override;

    /** Introspection for tests and the transient-ablation bench. */
    const UbikLcState &lcState(AppId app) const { return lc_.at(app); }

    const UbikConfig &config() const { return cfg_; }

    /** De-boost interrupts raised so far (early recoveries). */
    std::uint64_t deboostInterrupts() const { return deboostInterrupts_; }

    /** Watermark interrupts raised so far (slack fallbacks). */
    std::uint64_t watermarkInterrupts() const
    {
        return watermarkInterrupts_;
    }

    /** De-boosts performed by deadline expiry (accurateDeboost off,
     *  or requests whose circuit never fired before the deadline). */
    std::uint64_t deadlineDeboosts() const { return deadlineDeboosts_; }

  private:
    /**
     * Choose s_idle / s_boost / s_active for one LC app from its miss
     * curve, timing profile, deadline, and the batch apps' aggregate
     * marginal utility (Fig 7's feasibility + cost-benefit search).
     */
    void sizeLcApp(AppId app);

    /**
     * Smallest s_boost in [s_active, boost cap] whose post-transient
     * gain repays `lost` cycles by the deadline; 0 if infeasible.
     */
    std::uint64_t solveBoost(const TransientModel &model,
                             std::uint64_t s_idle, std::uint64_t s_active,
                             std::uint64_t boost_cap, Cycles deadline,
                             double lost) const;

    /** Apply an LC partition resize and rebalance batch partitions
     *  through the repartitioning table. */
    void resizeLc(AppId app, std::uint64_t lines);

    /** Recompute the batch budget and apply the table's allocation. */
    void applyBatchAllocation();

    /** Buckets currently assigned to LC partitions (from targets). */
    std::uint64_t lcBuckets() const;

    /** Per-LC-app boost cap: total lines / number of LC apps. */
    std::uint64_t boostCap() const;

    UbikConfig cfg_;
    std::vector<UbikLcState> lc_;   ///< indexed by AppId (batch unused)
    std::vector<AppId> batchIds_;
    RepartitionTable table_;
    Cycles lastReconfigure_ = 0;
    Cycles intervalLen_ = 0;        ///< length of the last interval
    std::uint64_t deboostInterrupts_ = 0;
    std::uint64_t watermarkInterrupts_ = 0;
    std::uint64_t deadlineDeboosts_ = 0;
    mutable std::string name_;
};

} // namespace ubik
