/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  — an internal invariant was violated (a ubik bug); aborts.
 * fatal()  — the simulation cannot continue due to a user error (bad
 *            configuration, invalid arguments); exits with code 1.
 * warn()   — something is suspicious but the run can continue.
 * inform() — plain status output.
 */

#pragma once

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace ubik {

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/**
 * Thrown by fatal() instead of exiting when the calling thread has an
 * armed FatalTrap. what() carries the formatted message (without the
 * "fatal: file:line:" prefix).
 */
struct FatalError : std::runtime_error
{
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/**
 * RAII guard turning fatal() into a catchable FatalError on *this
 * thread* for its lifetime. Long-lived servers arm one around
 * request handling so a bad user spec produces an error response
 * instead of killing the process; tests arm one instead of spawning
 * a death-test child. panic() (internal invariants) still aborts —
 * only user-error fatals are trappable.
 */
class FatalTrap
{
  public:
    FatalTrap();
    ~FatalTrap();
    FatalTrap(const FatalTrap &) = delete;
    FatalTrap &operator=(const FatalTrap &) = delete;

  private:
    bool prev_;
};

void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output globally (benches silence it). */
void setVerbose(bool verbose);
bool verbose();

} // namespace ubik

#define panic(...) ::ubik::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::ubik::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::ubik::warnImpl(__VA_ARGS__)
#define inform(...) ::ubik::informImpl(__VA_ARGS__)

/**
 * Simulation-state assertion: checked in all build types (the
 * simulator's correctness depends on these, and RelWithDebInfo is the
 * default build).
 */
#define ubik_assert(cond)                                                    \
    do {                                                                     \
        if (!(cond))                                                         \
            ::ubik::panicImpl(__FILE__, __LINE__,                            \
                              "assertion failed: %s", #cond);                \
    } while (0)
