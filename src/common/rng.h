/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * All stochastic behaviour in ubik (interarrival times, service-time
 * draws, synthetic address streams, hash salts) flows through Rng so
 * that every experiment is reproducible from a single seed. The
 * generator is xoshiro256**, which is fast, high quality, and lets us
 * cheaply fork independent streams per component.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/log.h"

namespace ubik {

/** xoshiro256** pseudo-random generator with distribution helpers. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Fork an independent stream (seeded from this one). */
    Rng fork();

    /**
     * Deterministic, independent stream for job `job_index` under
     * `base_seed`. Unlike fork(), this never consumes shared state:
     * the stream is a pure function of (base_seed, job_index), so a
     * parallel experiment engine can hand every job its own RNG and
     * produce results that are bit-identical to the sequential order
     * no matter how jobs land on worker threads. Re-running a single
     * job index reproduces its exact sequence.
     */
    static Rng jobStream(std::uint64_t base_seed,
                         std::uint64_t job_index);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). n must be > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Uniform integer in [lo, hi]. */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Exponential with the given mean (Markov interarrivals). */
    double exponential(double mean);

    /** Lognormal with the given mean and sigma of the underlying normal. */
    double lognormal(double mu, double sigma);

    /** Standard normal via Box-Muller. */
    double normal();

    /** Bernoulli trial. */
    bool chance(double p);

  private:
    std::uint64_t s_[4];
};

/**
 * Zipfian integer distribution over [0, n) with exponent theta.
 * theta < 1 uses the Gray et al. quantile approximation (O(1) setup
 * and sampling); theta >= 1, where that parameterization breaks
 * down, falls back to an exact CDF table with binary-search sampling
 * (n is bounded in that mode). Used for query-popularity and hot-set
 * address draws.
 */
class ZipfDistribution
{
  public:
    ZipfDistribution(std::uint64_t n, double theta);

    std::uint64_t operator()(Rng &rng) const;

    std::uint64_t n() const { return n_; }
    double theta() const { return theta_; }

  private:
    double zeta(std::uint64_t n, double theta) const;

    std::uint64_t n_;
    double theta_;
    double alpha_ = 0;
    double zetan_ = 0;
    double eta_ = 0;
    double zeta2_ = 0;
    std::vector<double> cdf_; ///< exact-table mode (theta >= 1)
};

/**
 * Discrete distribution over arbitrary weights (multimodal service
 * times, batch-class mixes). Sampling is O(log n) via a cumulative
 * table.
 */
class DiscreteDistribution
{
  public:
    explicit DiscreteDistribution(std::vector<double> weights);

    /** Index of the sampled bucket. */
    std::size_t operator()(Rng &rng) const;

    std::size_t size() const { return cumulative_.size(); }

  private:
    std::vector<double> cumulative_;
};

} // namespace ubik
