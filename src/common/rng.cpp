#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace ubik {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

Rng
Rng::fork()
{
    return Rng(next());
}

Rng
Rng::jobStream(std::uint64_t base_seed, std::uint64_t job_index)
{
    // Hash base_seed and job_index through separate splitmix64 chains
    // before combining: adjacent job indices land in unrelated regions
    // of the seed space, and the Rng constructor expands the combined
    // seed through four more splitmix64 rounds. Weyl offsets keep the
    // two chains from colliding when base_seed == job_index.
    std::uint64_t a = base_seed;
    std::uint64_t b = job_index + 0x632be59bd9b4e019ull;
    std::uint64_t seed = splitmix64(a) ^ rotl(splitmix64(b), 31);
    return Rng(seed);
}

double
Rng::uniform()
{
    // 53-bit mantissa from the top bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    ubik_assert(n > 0);
    // Lemire's multiply-shift rejection method for unbiased bounded ints.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < n) {
        std::uint64_t t = -n % n;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * n;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t
Rng::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    ubik_assert(lo <= hi);
    return lo + uniformInt(hi - lo + 1);
}

double
Rng::exponential(double mean)
{
    ubik_assert(mean > 0);
    double u = uniform();
    // Guard against log(0).
    if (u <= 0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(mu + sigma * normal());
}

double
Rng::normal()
{
    // Box-Muller; one value per call is fine at our call rates.
    double u1 = uniform();
    double u2 = uniform();
    if (u1 <= 0)
        u1 = 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

ZipfDistribution::ZipfDistribution(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    ubik_assert(n > 0);
    ubik_assert(theta > 0);
    if (theta < 0.995) {
        // Gray et al. quantile approximation: O(1) sampling with no
        // setup table; only valid for theta < 1.
        alpha_ = 1.0 / (1.0 - theta);
        zetan_ = zeta(n, theta);
        zeta2_ = zeta(2, theta);
        eta_ = (1.0 -
                std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
               (1.0 - zeta2_ / zetan_);
        return;
    }
    // theta ~>= 1 (the approximation's parameterization breaks down):
    // build an exact CDF table and sample by binary search. Hot-set
    // sizes using high skew are modest, so the table stays small.
    ubik_assert(n <= (1ull << 22));
    cdf_.resize(n);
    double sum = 0;
    for (std::uint64_t i = 0; i < n; i++) {
        sum += std::pow(1.0 / static_cast<double>(i + 1), theta);
        cdf_[i] = sum;
    }
    for (std::uint64_t i = 0; i < n; i++)
        cdf_[i] /= sum;
}

double
ZipfDistribution::zeta(std::uint64_t n, double theta) const
{
    // Exact for small n; two-point Euler-Maclaurin style approximation
    // beyond that keeps construction O(1)-ish while staying within a
    // fraction of a percent (standard YCSB-style approximation).
    constexpr std::uint64_t kExactLimit = 1 << 20;
    double sum = 0;
    const std::uint64_t limit = std::min(n, kExactLimit);
    for (std::uint64_t i = 1; i <= limit; i++)
        sum += std::pow(1.0 / static_cast<double>(i), theta);
    if (n > kExactLimit) {
        // Integral tail approximation of sum_{kExactLimit+1}^{n} i^-theta.
        double a = static_cast<double>(kExactLimit);
        double b = static_cast<double>(n);
        sum += (std::pow(b, 1 - theta) - std::pow(a, 1 - theta)) /
               (1 - theta);
    }
    return sum;
}

std::uint64_t
ZipfDistribution::operator()(Rng &rng) const
{
    if (!cdf_.empty()) {
        double u = rng.uniform();
        auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
        if (it == cdf_.end())
            return n_ - 1;
        return static_cast<std::uint64_t>(it - cdf_.begin());
    }
    // Gray et al. quantile approximation (as used by YCSB).
    double u = rng.uniform();
    double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    double v = static_cast<double>(n_) *
               std::pow(eta_ * u - eta_ + 1.0, alpha_);
    std::uint64_t r = static_cast<std::uint64_t>(v);
    return std::min(r, n_ - 1);
}

DiscreteDistribution::DiscreteDistribution(std::vector<double> weights)
{
    ubik_assert(!weights.empty());
    cumulative_.reserve(weights.size());
    double total = 0;
    for (double w : weights) {
        ubik_assert(w >= 0);
        total += w;
        cumulative_.push_back(total);
    }
    ubik_assert(total > 0);
    for (double &c : cumulative_)
        c /= total;
    cumulative_.back() = 1.0;
}

std::size_t
DiscreteDistribution::operator()(Rng &rng) const
{
    double u = rng.uniform();
    auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
    if (it == cumulative_.end())
        --it;
    return static_cast<std::size_t>(it - cumulative_.begin());
}

} // namespace ubik
