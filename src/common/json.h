/**
 * @file
 * Minimal dependency-free JSON reader and writer.
 *
 * Built for the declarative scenario layer (sim/scenario.h): specs
 * are pure data, serialized to JSON for `ubik_run --spec` files and
 * structured result exports. The implementation is deliberately
 * small and strict — RFC 8259 JSON, no extensions (no comments, no
 * trailing commas, no NaN/Infinity), recursion bounded by
 * kMaxDepth — and the parser reports byte-precise errors instead of
 * dying, so malformed spec files fail with a message the user can
 * act on (and the fuzz-ish tests can exercise every reject path).
 *
 * Losslessness contract: `parse(dump(v))` reproduces `v` exactly.
 * Numbers are stored as doubles; the writer emits integers without
 * an exponent or fraction when the value is integral below 2^53, and
 * otherwise the shortest decimal form that strtod() parses back to
 * the identical bit pattern. Object members keep insertion order, so
 * dump() output is deterministic and diff-friendly.
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ubik {

/** One JSON value: null, bool, number, string, array, or object. */
class Json
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /** Parser recursion bound (arrays/objects nested deeper fail). */
    static constexpr int kMaxDepth = 64;

    Json() = default; ///< null
    Json(bool b) : kind_(Kind::Bool), bool_(b) {}
    Json(double d) : kind_(Kind::Number), num_(d) {}
    Json(int v) : kind_(Kind::Number), num_(v) {}
    Json(std::int64_t v)
        : kind_(Kind::Number), num_(static_cast<double>(v))
    {
    }
    Json(std::uint64_t v)
        : kind_(Kind::Number), num_(static_cast<double>(v))
    {
    }
    Json(std::uint32_t v) : kind_(Kind::Number), num_(v) {}
    Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Json(const char *s) : kind_(Kind::String), str_(s) {}

    /** Empty array / object (distinct from null). */
    static Json array();
    static Json object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Human-readable kind name ("object", "number", ...). */
    static const char *kindName(Kind k);

    /** Typed accessors; fatal() on a kind mismatch. */
    bool boolean() const;
    double number() const;
    const std::string &str() const;

    /** Array/object element count; fatal() on scalars. */
    std::size_t size() const;

    /** Array element (bounds-checked, fatal() on misuse). */
    const Json &at(std::size_t i) const;

    /** Append to an array (fatal() unless array). */
    Json &push(Json v);

    /** Array elements (fatal() unless array). */
    const std::vector<Json> &items() const;

    /** Object member, or nullptr when absent (fatal() unless
     *  object). */
    const Json *find(const std::string &key) const;

    /** Insert or overwrite an object member, keeping first-insertion
     *  order (fatal() unless object). Returns *this for chaining. */
    Json &set(const std::string &key, Json v);

    /** Object members in insertion order (fatal() unless object). */
    const std::vector<std::pair<std::string, Json>> &members() const;

    /**
     * Structural equality. Numbers compare by value (so 1 == 1.0;
     * note -0.0 == 0.0, which is also how they round-trip), objects
     * by key set and per-key value — member *order* is ignored, so
     * two specs that differ only in field order compare equal.
     */
    bool operator==(const Json &o) const;
    bool operator!=(const Json &o) const { return !(*this == o); }

    /**
     * Serialize. Compact by default; `pretty` uses two-space
     * indentation and one member/element per line. fatal() on
     * non-finite numbers (JSON cannot represent them).
     */
    std::string dump(bool pretty = false) const;

    /**
     * Parse `text` (one JSON value, trailing whitespace only).
     * Returns false and sets `err` ("byte N: message") on any
     * syntax error, depth overflow, or trailing garbage; `out` is
     * untouched on failure.
     */
    static bool parse(const std::string &text, Json &out,
                      std::string &err);

    /** parse() that fatal()s on error, naming `what` in the
     *  message — for inputs that are bugs to get wrong. */
    static Json parseOrDie(const std::string &text, const char *what);

    /** Read and parse a whole file; false + `err` on I/O or syntax
     *  errors. */
    static bool parseFile(const std::string &path, Json &out,
                          std::string &err);

  private:
    void dumpTo(std::string &out, bool pretty, int indent) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

/**
 * Render a finite double the way the writer does: integral values
 * below 2^53 as plain integers, everything else as the shortest
 * decimal that round-trips through strtod() to the same bits.
 * Exposed for the report layer's structured exports, which need the
 * same "bit-identical runs produce byte-identical files" guarantee.
 */
std::string jsonNumberText(double d);

} // namespace ubik
