#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/log.h"

namespace ubik {

// ---------------------------------------------------------------------------
// Value accessors
// ---------------------------------------------------------------------------

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Object;
    return j;
}

const char *
Json::kindName(Kind k)
{
    switch (k) {
      case Kind::Null:
        return "null";
      case Kind::Bool:
        return "bool";
      case Kind::Number:
        return "number";
      case Kind::String:
        return "string";
      case Kind::Array:
        return "array";
      case Kind::Object:
        return "object";
    }
    panic("bad Json::Kind");
}

bool
Json::boolean() const
{
    if (kind_ != Kind::Bool)
        fatal("json: expected bool, have %s", kindName(kind_));
    return bool_;
}

double
Json::number() const
{
    if (kind_ != Kind::Number)
        fatal("json: expected number, have %s", kindName(kind_));
    return num_;
}

const std::string &
Json::str() const
{
    if (kind_ != Kind::String)
        fatal("json: expected string, have %s", kindName(kind_));
    return str_;
}

std::size_t
Json::size() const
{
    if (kind_ == Kind::Array)
        return arr_.size();
    if (kind_ == Kind::Object)
        return obj_.size();
    fatal("json: size() on %s", kindName(kind_));
}

const Json &
Json::at(std::size_t i) const
{
    if (kind_ != Kind::Array)
        fatal("json: at() on %s", kindName(kind_));
    if (i >= arr_.size())
        fatal("json: index %zu out of range (size %zu)", i,
              arr_.size());
    return arr_[i];
}

Json &
Json::push(Json v)
{
    if (kind_ != Kind::Array)
        fatal("json: push() on %s", kindName(kind_));
    arr_.push_back(std::move(v));
    return *this;
}

const std::vector<Json> &
Json::items() const
{
    if (kind_ != Kind::Array)
        fatal("json: items() on %s", kindName(kind_));
    return arr_;
}

const Json *
Json::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        fatal("json: find(\"%s\") on %s", key.c_str(),
              kindName(kind_));
    for (const auto &m : obj_)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

Json &
Json::set(const std::string &key, Json v)
{
    if (kind_ != Kind::Object)
        fatal("json: set(\"%s\") on %s", key.c_str(), kindName(kind_));
    for (auto &m : obj_) {
        if (m.first == key) {
            m.second = std::move(v);
            return *this;
        }
    }
    obj_.emplace_back(key, std::move(v));
    return *this;
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    if (kind_ != Kind::Object)
        fatal("json: members() on %s", kindName(kind_));
    return obj_;
}

bool
Json::operator==(const Json &o) const
{
    if (kind_ != o.kind_)
        return false;
    switch (kind_) {
      case Kind::Null:
        return true;
      case Kind::Bool:
        return bool_ == o.bool_;
      case Kind::Number:
        return num_ == o.num_;
      case Kind::String:
        return str_ == o.str_;
      case Kind::Array:
        if (arr_.size() != o.arr_.size())
            return false;
        for (std::size_t i = 0; i < arr_.size(); i++)
            if (!(arr_[i] == o.arr_[i]))
                return false;
        return true;
      case Kind::Object: {
        if (obj_.size() != o.obj_.size())
            return false;
        for (const auto &m : obj_) {
            const Json *v = o.find(m.first);
            if (!v || !(m.second == *v))
                return false;
        }
        return true;
      }
    }
    return false;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

std::string
jsonNumberText(double d)
{
    if (!std::isfinite(d))
        fatal("json: cannot serialize non-finite number");
    // 2^53: largest range where every integer is exact in a double.
    if (d == std::floor(d) && std::fabs(d) < 9007199254740992.0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
        return buf;
    }
    // Shortest of %.15g/%.16g/%.17g that parses back bit-exact.
    for (int prec = 15; prec <= 17; prec++) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
        if (std::strtod(buf, nullptr) == d)
            return buf;
    }
    panic("json: %%.17g failed to round-trip a finite double");
}

namespace {

void
dumpString(std::string &out, const std::string &s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                // Bytes >= 0x80 pass through: strings are treated
                // as (already valid) UTF-8.
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

void
newlineIndent(std::string &out, int indent)
{
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * 2, ' ');
}

} // namespace

void
Json::dumpTo(std::string &out, bool pretty, int indent) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        return;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        return;
      case Kind::Number:
        out += jsonNumberText(num_);
        return;
      case Kind::String:
        dumpString(out, str_);
        return;
      case Kind::Array: {
        if (arr_.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        for (std::size_t i = 0; i < arr_.size(); i++) {
            if (i)
                out += ',';
            if (pretty)
                newlineIndent(out, indent + 1);
            arr_[i].dumpTo(out, pretty, indent + 1);
        }
        if (pretty)
            newlineIndent(out, indent);
        out += ']';
        return;
      }
      case Kind::Object: {
        if (obj_.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        for (std::size_t i = 0; i < obj_.size(); i++) {
            if (i)
                out += ',';
            if (pretty)
                newlineIndent(out, indent + 1);
            dumpString(out, obj_[i].first);
            out += pretty ? ": " : ":";
            obj_[i].second.dumpTo(out, pretty, indent + 1);
        }
        if (pretty)
            newlineIndent(out, indent);
        out += '}';
        return;
      }
    }
}

std::string
Json::dump(bool pretty) const
{
    std::string out;
    dumpTo(out, pretty, 0);
    return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

/** Recursive-descent parser over a byte range, collecting the first
 *  error (byte offset + message) instead of dying. */
class Parser
{
  public:
    Parser(const std::string &text) : s_(text) {}

    bool
    run(Json &out, std::string &err)
    {
        skipWs();
        Json v;
        if (!value(v, 0))
            return fail(err);
        skipWs();
        if (pos_ != s_.size()) {
            error("trailing characters after JSON value");
            return fail(err);
        }
        out = std::move(v);
        return true;
    }

  private:
    bool
    fail(std::string &err)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "byte %zu: ", errPos_);
        err = buf + errMsg_;
        return false;
    }

    void
    error(const std::string &msg)
    {
        if (errMsg_.empty()) {
            errMsg_ = msg;
            errPos_ = pos_;
        }
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            pos_++;
    }

    bool
    literal(const char *word, Json v, Json &out)
    {
        std::size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0) {
            error(std::string("invalid literal (expected '") + word +
                  "')");
            return false;
        }
        pos_ += n;
        out = std::move(v);
        return true;
    }

    bool
    value(Json &out, int depth)
    {
        if (depth >= Json::kMaxDepth) {
            error("nesting deeper than " +
                  std::to_string(Json::kMaxDepth) + " levels");
            return false;
        }
        if (pos_ >= s_.size()) {
            error("unexpected end of input (expected a value)");
            return false;
        }
        switch (s_[pos_]) {
          case 'n':
            return literal("null", Json(), out);
          case 't':
            return literal("true", Json(true), out);
          case 'f':
            return literal("false", Json(false), out);
          case '"':
            return string(out);
          case '[':
            return array(out, depth);
          case '{':
            return object(out, depth);
          default:
            return number(out);
        }
    }

    bool
    array(Json &out, int depth)
    {
        pos_++; // '['
        Json arr = Json::array();
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            pos_++;
            out = std::move(arr);
            return true;
        }
        for (;;) {
            skipWs();
            Json v;
            if (!value(v, depth + 1))
                return false;
            arr.push(std::move(v));
            skipWs();
            if (pos_ >= s_.size()) {
                error("unexpected end of input inside array");
                return false;
            }
            if (s_[pos_] == ',') {
                pos_++;
                continue;
            }
            if (s_[pos_] == ']') {
                pos_++;
                out = std::move(arr);
                return true;
            }
            error("expected ',' or ']' in array");
            return false;
        }
    }

    bool
    object(Json &out, int depth)
    {
        pos_++; // '{'
        Json obj = Json::object();
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            pos_++;
            out = std::move(obj);
            return true;
        }
        for (;;) {
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != '"') {
                error("expected '\"' to begin an object key");
                return false;
            }
            Json key;
            if (!string(key))
                return false;
            if (obj.find(key.str())) {
                error("duplicate object key \"" + key.str() + "\"");
                return false;
            }
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':') {
                error("expected ':' after object key");
                return false;
            }
            pos_++;
            skipWs();
            Json v;
            if (!value(v, depth + 1))
                return false;
            obj.set(key.str(), std::move(v));
            skipWs();
            if (pos_ >= s_.size()) {
                error("unexpected end of input inside object");
                return false;
            }
            if (s_[pos_] == ',') {
                pos_++;
                continue;
            }
            if (s_[pos_] == '}') {
                pos_++;
                out = std::move(obj);
                return true;
            }
            error("expected ',' or '}' in object");
            return false;
        }
    }

    int
    hexNibble(char c)
    {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        return -1;
    }

    bool
    hex4(std::uint32_t &out)
    {
        if (pos_ + 4 > s_.size()) {
            error("truncated \\u escape");
            return false;
        }
        out = 0;
        for (int i = 0; i < 4; i++) {
            int n = hexNibble(s_[pos_ + static_cast<std::size_t>(i)]);
            if (n < 0) {
                error("bad hex digit in \\u escape");
                return false;
            }
            out = out * 16 + static_cast<std::uint32_t>(n);
        }
        pos_ += 4;
        return true;
    }

    void
    appendUtf8(std::string &out, std::uint32_t cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool
    string(Json &out)
    {
        pos_++; // '"'
        std::string v;
        for (;;) {
            if (pos_ >= s_.size()) {
                error("unterminated string");
                return false;
            }
            unsigned char c = static_cast<unsigned char>(s_[pos_]);
            if (c == '"') {
                pos_++;
                out = Json(std::move(v));
                return true;
            }
            if (c < 0x20) {
                error("unescaped control character in string");
                return false;
            }
            if (c != '\\') {
                v += static_cast<char>(c);
                pos_++;
                continue;
            }
            pos_++; // '\'
            if (pos_ >= s_.size()) {
                error("truncated escape sequence");
                return false;
            }
            char e = s_[pos_++];
            switch (e) {
              case '"':
                v += '"';
                break;
              case '\\':
                v += '\\';
                break;
              case '/':
                v += '/';
                break;
              case 'b':
                v += '\b';
                break;
              case 'f':
                v += '\f';
                break;
              case 'n':
                v += '\n';
                break;
              case 'r':
                v += '\r';
                break;
              case 't':
                v += '\t';
                break;
              case 'u': {
                std::uint32_t cp;
                if (!hex4(cp))
                    return false;
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: must pair with \uDC00-\uDFFF.
                    if (pos_ + 2 > s_.size() || s_[pos_] != '\\' ||
                        s_[pos_ + 1] != 'u') {
                        error("lone high surrogate in \\u escape");
                        return false;
                    }
                    pos_ += 2;
                    std::uint32_t lo;
                    if (!hex4(lo))
                        return false;
                    if (lo < 0xDC00 || lo > 0xDFFF) {
                        error("invalid low surrogate in \\u escape");
                        return false;
                    }
                    cp = 0x10000 + ((cp - 0xD800) << 10) +
                         (lo - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    error("lone low surrogate in \\u escape");
                    return false;
                }
                appendUtf8(v, cp);
                break;
              }
              default:
                error(std::string("bad escape '\\") + e + "'");
                return false;
            }
        }
    }

    bool
    number(Json &out)
    {
        // Validate the JSON number grammar by hand: strtod() accepts
        // forms JSON forbids (hex, "inf", leading '+', ".5").
        std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            pos_++;
        if (pos_ >= s_.size() ||
            !(s_[pos_] >= '0' && s_[pos_] <= '9')) {
            pos_ = start;
            error("invalid value");
            return false;
        }
        if (s_[pos_] == '0') {
            pos_++;
        } else {
            while (pos_ < s_.size() && s_[pos_] >= '0' &&
                   s_[pos_] <= '9')
                pos_++;
        }
        if (pos_ < s_.size() && s_[pos_] == '.') {
            pos_++;
            if (pos_ >= s_.size() ||
                !(s_[pos_] >= '0' && s_[pos_] <= '9')) {
                error("digit required after decimal point");
                return false;
            }
            while (pos_ < s_.size() && s_[pos_] >= '0' &&
                   s_[pos_] <= '9')
                pos_++;
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            pos_++;
            if (pos_ < s_.size() &&
                (s_[pos_] == '+' || s_[pos_] == '-'))
                pos_++;
            if (pos_ >= s_.size() ||
                !(s_[pos_] >= '0' && s_[pos_] <= '9')) {
                error("digit required in exponent");
                return false;
            }
            while (pos_ < s_.size() && s_[pos_] >= '0' &&
                   s_[pos_] <= '9')
                pos_++;
        }
        std::string tok = s_.substr(start, pos_ - start);
        double d = std::strtod(tok.c_str(), nullptr);
        if (!std::isfinite(d)) {
            // Overflowing literals (1e999) have valid grammar but no
            // finite value; reject rather than store infinity.
            pos_ = start;
            error("number out of range");
            return false;
        }
        out = Json(d);
        return true;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
    std::string errMsg_;
    std::size_t errPos_ = 0;
};

} // namespace

bool
Json::parse(const std::string &text, Json &out, std::string &err)
{
    return Parser(text).run(out, err);
}

Json
Json::parseOrDie(const std::string &text, const char *what)
{
    Json out;
    std::string err;
    if (!parse(text, out, err))
        fatal("%s: invalid JSON: %s", what, err.c_str());
    return out;
}

bool
Json::parseFile(const std::string &path, Json &out, std::string &err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        err = "cannot open " + path;
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    if (!parse(ss.str(), out, err)) {
        err = path + ": " + err;
        return false;
    }
    return true;
}

} // namespace ubik
