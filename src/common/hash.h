/**
 * @file
 * Shared integer hashing for the simulated-access hot path.
 *
 * Every placement decision in the simulator (set indices, zcache way
 * slots, UMON sampling) funnels through this one mixer, which the
 * arrays previously each duplicated in an anonymous namespace. It is
 * part of the simulated behaviour: changing it changes placements and
 * therefore every result, so it is pinned by the golden-determinism
 * test (tests/sim/hotpath_golden_test.cpp).
 */

#pragma once

#include <cstddef>
#include <cstdint>

namespace ubik {

/** Fibonacci-style 64-bit mix (splitmix64 finalizer); good avalanche
 *  for index hashing. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

/** FNV-1a offset basis (the conventional 64-bit seed). */
constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;

/**
 * Fold a 64-bit value into an FNV-1a digest, least-significant byte
 * first. The throughput harness and the golden-determinism test both
 * digest simulation state with this one definition, so their hashes
 * stay comparable by construction.
 */
inline std::uint64_t
fnv1a64(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; i++) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** FNV-1a over a raw byte span (trace chunk checksums: the writer
 *  and reader must fold the exact same definition). */
inline std::uint64_t
fnv1a64Bytes(std::uint64_t h, const std::uint8_t *p, std::size_t n)
{
    for (std::size_t i = 0; i < n; i++) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace ubik
