/**
 * @file
 * Transparent-hugepage-backed allocation for the big simulation
 * arrays.
 *
 * At paper scale the cache arrays are ~14MB of randomly indexed
 * state: with 4KB pages that is ~3500 TLB entries — far past any
 * host's STLB — so nearly every probe, walk step, and victim scan
 * pays a page walk on top of the memory access. Backing the arrays
 * with 2MB pages cuts that to a handful of entries.
 *
 * The allocator advises MADV_HUGEPAGE *before* the vector's first
 * touch, so with THP in `madvise` or `always` mode the kernel maps
 * huge pages at fault time. Everything is best-effort and host-only:
 * on non-Linux hosts (or THP `never`) it degrades to a plain aligned
 * allocation with zero behavioural difference — simulated results
 * never depend on page size.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

#ifdef __linux__
#include <sys/mman.h>
#endif

namespace ubik {

/** Best-effort MADV_HUGEPAGE over the 2MB-aligned interior of a
 *  buffer; a no-op when the region is small or the host lacks THP. */
inline void
adviseHugePages(void *p, std::size_t bytes)
{
#ifdef __linux__
    constexpr std::uintptr_t kHuge = std::uintptr_t(2) << 20;
    std::uintptr_t lo = reinterpret_cast<std::uintptr_t>(p);
    std::uintptr_t begin = (lo + kHuge - 1) & ~(kHuge - 1);
    std::uintptr_t end = (lo + bytes) & ~(kHuge - 1);
    if (end > begin)
        (void)::madvise(reinterpret_cast<void *>(begin), end - begin,
                        MADV_HUGEPAGE);
#else
    (void)p;
    (void)bytes;
#endif
}

/** std::vector-compatible allocator that huge-page-advises every
 *  allocation before it is first touched. */
template <typename T>
struct HugePageAllocator
{
    using value_type = T;

    HugePageAllocator() = default;
    template <typename U>
    HugePageAllocator(const HugePageAllocator<U> &)
    {
    }

    T *
    allocate(std::size_t n)
    {
        std::size_t bytes = n * sizeof(T);
        void *p = ::operator new(bytes, std::align_val_t(alignof(T)));
        adviseHugePages(p, bytes);
        return static_cast<T *>(p);
    }

    void
    deallocate(T *p, std::size_t)
    {
        ::operator delete(p, std::align_val_t(alignof(T)));
    }

    template <typename U>
    bool
    operator==(const HugePageAllocator<U> &) const
    {
        return true;
    }
    template <typename U>
    bool
    operator!=(const HugePageAllocator<U> &) const
    {
        return false;
    }
};

} // namespace ubik
