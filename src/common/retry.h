/**
 * @file
 * Bounded retry with capped exponential backoff and deterministic
 * jitter.
 *
 * The fleet fabric's degradation policy is "retry briefly, then
 * degrade, never spin": a transient I/O error (NFS hiccup, contended
 * inode) gets a handful of millisecond-scale retries, and a
 * persistent one hands control back to the caller to degrade
 * gracefully. Jitter is drawn from Rng::jobStream, so a given
 * (seed, stream) pair always sleeps the same schedule — chaos tests
 * replay byte-identically.
 */

#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

#include "common/rng.h"

namespace ubik {

/**
 * Backoff schedule: delays grow base * 2^attempt, capped, each
 * multiplied by a jitter factor in [0.5, 1.0) from a deterministic
 * stream. Defaults keep worst-case total sleep under ~60 ms for the
 * default 4 attempts — callers sit on sweep worker threads and must
 * not stall the pool noticeably.
 */
class RetryBackoff
{
  public:
    RetryBackoff(std::uint64_t seed, std::uint64_t stream,
                 int max_attempts = 4, double base_sec = 0.002,
                 double cap_sec = 0.032)
        : rng_(Rng::jobStream(seed, stream)),
          maxAttempts_(max_attempts), baseSec_(base_sec),
          capSec_(cap_sec)
    {
    }

    /**
     * True while another attempt is allowed; sleeps the backoff delay
     * before returning (no sleep before the first retry decision's
     * predecessor — call after a failure). Typical shape:
     *
     *   RetryBackoff retry(seed, streamId);
     *   while (!tryIo() && retry.next()) {}
     */
    bool next()
    {
        if (attempt_ >= maxAttempts_)
            return false;
        double d = baseSec_ * static_cast<double>(1ull << attempt_);
        if (d > capSec_)
            d = capSec_;
        d *= rng_.uniform(0.5, 1.0);
        std::this_thread::sleep_for(std::chrono::duration<double>(d));
        attempt_++;
        return true;
    }

    int attempts() const { return attempt_; }

  private:
    Rng rng_;
    int maxAttempts_;
    int attempt_ = 0;
    double baseSec_;
    double capSec_;
};

} // namespace ubik
