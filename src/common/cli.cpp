#include "common/cli.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <variant>

#include "common/log.h"

namespace ubik {

/** Type-erased flag storage: a pointer to the typed Flag plus a
 *  parser for its value text. */
struct Cli::Entry
{
    std::string name;
    std::string help;
    std::string defaultText;

    std::variant<Flag<std::string> *, Flag<std::int64_t> *,
                 Flag<double> *, Flag<bool> *,
                 Flag<std::vector<std::string>> *>
        target;

    /** Typed flags are owned here (one variant member is active). */
    std::variant<std::monostate, Flag<std::string>, Flag<std::int64_t>,
                 Flag<double>, Flag<bool>,
                 Flag<std::vector<std::string>>>
        storage;

    /** Whether this flag consumes a value ("--x v"); bools do not. */
    bool takesValue = true;

    void
    set(const std::string &text)
    {
        if (auto **f = std::get_if<Flag<std::string> *>(&target)) {
            (*f)->value = text;
            (*f)->seen = true;
            return;
        }
        if (auto **f = std::get_if<Flag<std::int64_t> *>(&target)) {
            // Base 10 always: base-0 auto-detection reads the classic
            // zero-padded "--seeds 010" as octal 8, silently running
            // a different experiment than the user asked for.
            errno = 0;
            char *end = nullptr;
            long long v = std::strtoll(text.c_str(), &end, 10);
            if (end == text.c_str() || *end != '\0')
                fatal("--%s: '%s' is not a base-10 integer",
                      name.c_str(), text.c_str());
            if (errno == ERANGE)
                fatal("--%s: '%s' is out of range", name.c_str(),
                      text.c_str());
            (*f)->value = v;
            (*f)->seen = true;
            return;
        }
        if (auto **f = std::get_if<Flag<double> *>(&target)) {
            char *end = nullptr;
            double v = std::strtod(text.c_str(), &end);
            if (end == text.c_str() || *end != '\0')
                fatal("--%s: '%s' is not a number", name.c_str(),
                      text.c_str());
            (*f)->value = v;
            (*f)->seen = true;
            return;
        }
        if (auto **f = std::get_if<Flag<bool> *>(&target)) {
            if (text == "true" || text == "1" || text.empty()) {
                (*f)->value = true;
            } else if (text == "false" || text == "0") {
                (*f)->value = false;
            } else {
                fatal("--%s: '%s' is not a boolean", name.c_str(),
                      text.c_str());
            }
            (*f)->seen = true;
            return;
        }
        if (auto **f = std::get_if<Flag<std::vector<std::string>> *>(
                &target)) {
            (*f)->value.push_back(text);
            (*f)->seen = true;
            return;
        }
        panic("flag '%s' has no target", name.c_str());
    }
};

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description))
{
}

Cli::~Cli() = default;

Cli::Entry &
Cli::add(const std::string &name, const std::string &help)
{
    if (name.empty() || name[0] == '-')
        fatal("flag name '%s' must not start with '-'", name.c_str());
    if (find(name))
        fatal("duplicate flag --%s", name.c_str());
    entries_.push_back(std::make_unique<Entry>());
    Entry &e = *entries_.back();
    e.name = name;
    e.help = help;
    return e;
}

Flag<std::string> &
Cli::flag(const std::string &name, const char *default_value,
          const std::string &help)
{
    Entry &e = add(name, help);
    e.storage = Flag<std::string>{name, help, default_value, false};
    auto &f = std::get<Flag<std::string>>(e.storage);
    e.target = &f;
    e.defaultText = default_value;
    return f;
}

Flag<std::int64_t> &
Cli::flag(const std::string &name, std::int64_t default_value,
          const std::string &help)
{
    Entry &e = add(name, help);
    e.storage = Flag<std::int64_t>{name, help, default_value, false};
    auto &f = std::get<Flag<std::int64_t>>(e.storage);
    e.target = &f;
    e.defaultText = std::to_string(default_value);
    return f;
}

Flag<double> &
Cli::flag(const std::string &name, double default_value,
          const std::string &help)
{
    Entry &e = add(name, help);
    e.storage = Flag<double>{name, help, default_value, false};
    auto &f = std::get<Flag<double>>(e.storage);
    e.target = &f;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", default_value);
    e.defaultText = buf;
    return f;
}

Flag<bool> &
Cli::flag(const std::string &name, bool default_value,
          const std::string &help)
{
    Entry &e = add(name, help);
    e.storage = Flag<bool>{name, help, default_value, false};
    auto &f = std::get<Flag<bool>>(e.storage);
    e.target = &f;
    e.takesValue = false;
    e.defaultText = default_value ? "true" : "false";
    return f;
}

Flag<std::vector<std::string>> &
Cli::multiFlag(const std::string &name, const std::string &help)
{
    Entry &e = add(name, help);
    e.storage =
        Flag<std::vector<std::string>>{name, help, {}, false};
    auto &f = std::get<Flag<std::vector<std::string>>>(e.storage);
    e.target = &f;
    e.defaultText = "none; repeatable";
    return f;
}

void
Cli::allowPositionals(const std::string &name, const std::string &help)
{
    allowPositionals_ = true;
    positionalName_ = name;
    positionalHelp_ = help;
}

Cli::Entry *
Cli::find(const std::string &name)
{
    for (auto &e : entries_)
        if (e->name == name)
            return e.get();
    return nullptr;
}

void
Cli::printHelp() const
{
    std::printf("%s — %s\n", program_.c_str(),
                description_.c_str());
    if (allowPositionals_)
        std::printf("\nArguments:\n  %-16s %s\n",
                    positionalName_.c_str(), positionalHelp_.c_str());
    std::printf("\nFlags:\n");
    for (const auto &e : entries_)
        std::printf("  --%-14s %s (default: %s)\n", e->name.c_str(),
                    e->help.c_str(), e->defaultText.c_str());
    std::printf("  --%-14s %s\n", "help", "print this message");
}

void
Cli::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            if (!allowPositionals_)
                fatal("unexpected argument '%s' (flags start with "
                      "--)",
                      arg.c_str());
            positionals_.push_back(std::move(arg));
            continue;
        }
        arg = arg.substr(2);

        std::string value;
        bool has_value = false;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_value = true;
        }

        if (arg == "help") {
            printHelp();
            std::exit(0);
        }

        Entry *e = find(arg);
        if (!e)
            fatal("unknown flag --%s (try --help)", arg.c_str());

        if (!has_value && e->takesValue) {
            if (i + 1 >= argc)
                fatal("--%s needs a value", arg.c_str());
            value = argv[++i];
        }
        e->set(value);
    }
}

} // namespace ubik
