/**
 * @file
 * Precomputed divisibility test for a runtime-invariant divisor.
 *
 * The UMON sampling filter asks "is hash % denom == 0?" once per LLC
 * access, and 767 of 768 answers are "no" at the paper's geometry. A
 * hardware divide is the most expensive ALU operation on every host
 * this runs on, so the check is rewritten with the standard
 * multiply-by-inverse divisibility trick (Granlund–Montgomery;
 * popularized by Lemire): factor denom = 2^k * m with m odd, then
 *
 *   n divisible by denom  <=>  (n & (2^k - 1)) == 0
 *                              and (n >> k) * inv(m) <= (2^64 - 1) / m
 *
 * where inv(m) is m's multiplicative inverse mod 2^64. The result is
 * bit-identical to the division-based check for every n, which the
 * unit test (tests/common/fastdiv_test.cpp) verifies exhaustively
 * against `%` over random and adversarial inputs.
 */

#pragma once

#include <cstdint>

#include "common/log.h"

namespace ubik {

/** Divisibility-by-constant checker: divides(n) == (n % d == 0). */
class DivisibilityChecker
{
  public:
    explicit DivisibilityChecker(std::uint64_t d = 1) { reset(d); }

    /** Re-target the checker at a new divisor. */
    void
    reset(std::uint64_t d)
    {
        ubik_assert(d > 0);
        shift_ = 0;
        while ((d & 1) == 0) {
            d >>= 1;
            shift_++;
        }
        mask_ = (1ull << shift_) - 1; // d > 0, so shift_ <= 63
        // Newton–Raphson inverse of the odd part mod 2^64: each step
        // doubles the number of correct low bits; 6 steps cover 64.
        std::uint64_t inv = d;
        for (int i = 0; i < 5; i++)
            inv *= 2 - d * inv;
        inv_ = inv;
        thresh_ = ~0ull / d;
    }

    /** Exactly (n % original_d) == 0, with two multiplies and no
     *  divide. */
    bool
    divides(std::uint64_t n) const
    {
        return (n & mask_) == 0 && (n >> shift_) * inv_ <= thresh_;
    }

  private:
    std::uint32_t shift_ = 0; ///< trailing zero bits of the divisor
    std::uint64_t mask_ = 0;  ///< 2^shift - 1
    std::uint64_t inv_ = 1;   ///< inverse of the odd part mod 2^64
    std::uint64_t thresh_ = ~0ull; ///< floor((2^64-1) / odd part)
};

} // namespace ubik
