#include "common/failpoint.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>

#include "common/hash.h"
#include "common/log.h"
#include "common/parse_num.h"
#include "common/rng.h"

namespace ubik {

namespace failpoint_detail {
std::atomic<int> g_state{0};
} // namespace failpoint_detail

namespace {

using failpoint_detail::g_state;

/** Errno spellings the schedule grammar accepts by name. */
const struct
{
    const char *name;
    int value;
} kErrnoNames[] = {
    {"EIO", EIO},       {"ENOSPC", ENOSPC}, {"ENOENT", ENOENT},
    {"EACCES", EACCES}, {"EPERM", EPERM},   {"EROFS", EROFS},
    {"EMFILE", EMFILE}, {"ENFILE", ENFILE}, {"EDQUOT", EDQUOT},
    {"EFBIG", EFBIG},   {"EAGAIN", EAGAIN}, {"EINTR", EINTR},
    {"EPIPE", EPIPE},   {"ECONNRESET", ECONNRESET},
    {"ECONNABORTED", ECONNABORTED},
};

std::string
errnoName(int err)
{
    for (const auto &e : kErrnoNames)
        if (e.value == err)
            return e.name;
    return std::to_string(err);
}

struct Trigger
{
    enum class Kind
    {
        Nth,    ///< exactly the n-th evaluation
        From,   ///< the n-th and every later evaluation
        Every,  ///< every evaluation
        Chance, ///< probability per evaluation, seeded
    };
    Kind kind = Kind::Nth;
    std::uint64_t n = 1;
    double p = 0;
    std::uint64_t seed = 1;
};

struct SiteRule
{
    FailpointHit::Kind action = FailpointHit::Kind::Err;
    int err = EIO;
    std::uint64_t arg = 0;
    double hangSec = 0;
    Trigger trig;

    Rng rng{1};           ///< Chance draws (seeded per entry)
    std::uint64_t evals = 0;
    std::uint64_t fires = 0;
};

struct Registry
{
    std::mutex mu;
    std::map<std::string, SiteRule> sites;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

std::uint64_t
fnvString(const std::string &s)
{
    return fnv1a64Bytes(
        kFnvOffsetBasis,
        reinterpret_cast<const std::uint8_t *>(s.data()), s.size());
}

std::vector<std::string>
splitOn(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); i++) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

int
parseErrno(const std::string &entry, const std::string &tok)
{
    for (const auto &e : kErrnoNames)
        if (tok == e.name)
            return e.value;
    std::uint64_t v;
    if (parseU64Strict(tok.c_str(), 4096, v) && v > 0)
        return static_cast<int>(v);
    fatal("failpoint '%s': unknown errno '%s' (EIO, ENOSPC, ENOENT, "
          "... or a number)",
          entry.c_str(), tok.c_str());
}

double
parseFraction(const std::string &entry, const std::string &tok)
{
    if (tok.empty())
        fatal("failpoint '%s': empty probability", entry.c_str());
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(tok.c_str(), &end);
    if (errno || end != tok.c_str() + tok.size() || !(v >= 0) ||
        !(v <= 1))
        fatal("failpoint '%s': probability '%s' not in [0, 1]",
              entry.c_str(), tok.c_str());
    return v;
}

/** Parse `site=action@trigger[,seedK]`; fatal on any malformation. */
void
parseEntry(const std::string &entry, std::string &site, SiteRule &rule)
{
    std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0)
        fatal("failpoint '%s': expected <site>=<action>@<trigger>",
              entry.c_str());
    site = entry.substr(0, eq);
    std::string rest = entry.substr(eq + 1);

    std::size_t at = rest.rfind('@');
    if (at == std::string::npos)
        fatal("failpoint '%s': missing @<trigger>", entry.c_str());
    std::string actionTok = rest.substr(0, at);
    std::string trigTok = rest.substr(at + 1);

    // Optional ",seedK" suffix on the trigger.
    std::size_t comma = trigTok.find(',');
    if (comma != std::string::npos) {
        std::string seedTok = trigTok.substr(comma + 1);
        trigTok = trigTok.substr(0, comma);
        if (seedTok.compare(0, 4, "seed") != 0 ||
            !parseU64Strict(seedTok.c_str() + 4, ~0ull,
                            rule.trig.seed))
            fatal("failpoint '%s': expected ',seed<n>' after the "
                  "trigger, got ',%s'",
                  entry.c_str(), seedTok.c_str());
    }

    // Action, with its optional ':' argument.
    std::string arg;
    std::size_t colon = actionTok.find(':');
    if (colon != std::string::npos) {
        arg = actionTok.substr(colon + 1);
        actionTok = actionTok.substr(0, colon);
    }
    if (actionTok == "err") {
        rule.action = FailpointHit::Kind::Err;
        rule.err = arg.empty() ? EIO : parseErrno(entry, arg);
    } else if (actionTok == "short_write" || actionTok == "torn") {
        rule.action = actionTok == "torn" ? FailpointHit::Kind::Torn
                                          : FailpointHit::Kind::ShortWrite;
        rule.arg = actionTok == "torn" ? 0 : 1;
        if (!arg.empty() &&
            !parseU64Strict(arg.c_str(), ~0ull, rule.arg))
            fatal("failpoint '%s': bad byte count '%s'", entry.c_str(),
                  arg.c_str());
    } else if (actionTok == "hang") {
        rule.action = FailpointHit::Kind::Hang;
        if (arg.empty() || arg.back() != 's')
            fatal("failpoint '%s': hang needs a duration like "
                  "'hang:2s'",
                  entry.c_str());
        arg.pop_back();
        char *end = nullptr;
        errno = 0;
        rule.hangSec = std::strtod(arg.c_str(), &end);
        if (errno || end != arg.c_str() + arg.size() ||
            !(rule.hangSec >= 0) || rule.hangSec > 600)
            fatal("failpoint '%s': bad hang duration", entry.c_str());
    } else {
        fatal("failpoint '%s': unknown action '%s' (err, short_write, "
              "torn, hang)",
              entry.c_str(), actionTok.c_str());
    }

    // Trigger.
    if (trigTok.empty())
        fatal("failpoint '%s': empty trigger", entry.c_str());
    if (trigTok == "*") {
        rule.trig.kind = Trigger::Kind::Every;
    } else if (trigTok[0] == 'p') {
        rule.trig.kind = Trigger::Kind::Chance;
        rule.trig.p = parseFraction(entry, trigTok.substr(1));
    } else if (trigTok.back() == '+') {
        rule.trig.kind = Trigger::Kind::From;
        if (!parseU64Strict(
                trigTok.substr(0, trigTok.size() - 1).c_str(), ~0ull,
                rule.trig.n) ||
            rule.trig.n == 0)
            fatal("failpoint '%s': bad trigger '%s'", entry.c_str(),
                  trigTok.c_str());
    } else {
        rule.trig.kind = Trigger::Kind::Nth;
        if (!parseU64Strict(trigTok.c_str(), ~0ull, rule.trig.n) ||
            rule.trig.n == 0)
            fatal("failpoint '%s': bad trigger '%s' (n, n+, *, or "
                  "p<frac>)",
                  entry.c_str(), trigTok.c_str());
    }
}

std::string
formatEntry(const std::string &site, const SiteRule &r)
{
    std::string out = site + "=";
    switch (r.action) {
      case FailpointHit::Kind::Err:
        out += "err:" + errnoName(r.err);
        break;
      case FailpointHit::Kind::ShortWrite:
        out += "short_write:" + std::to_string(r.arg);
        break;
      case FailpointHit::Kind::Torn:
        out += "torn:" + std::to_string(r.arg);
        break;
      case FailpointHit::Kind::Hang: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "hang:%gs", r.hangSec);
        out += buf;
        break;
      }
      case FailpointHit::Kind::None:
        break;
    }
    out += "@";
    switch (r.trig.kind) {
      case Trigger::Kind::Nth:
        out += std::to_string(r.trig.n);
        break;
      case Trigger::Kind::From:
        out += std::to_string(r.trig.n) + "+";
        break;
      case Trigger::Kind::Every:
        out += "*";
        break;
      case Trigger::Kind::Chance: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "p%g", r.trig.p);
        out += buf;
        out += ",seed" + std::to_string(r.trig.seed);
        break;
      }
    }
    return out;
}

/**
 * The site catalog `random:<seed>` draws from: every fleet-fabric
 * site whose failure the system degrades through gracefully. The
 * trace sites are deliberately absent — their contract is fail-fast
 * with a precise message, so random schedules would just kill runs.
 */
const struct
{
    const char *site;
    const char *actions[3]; ///< candidate action templates
} kChaosCatalog[] = {
    {"cache.open", {"err:EIO", "err:EACCES", nullptr}},
    {"cache.append", {"short_write:%u", "err:EIO", "torn:%u"}},
    {"cache.fsync", {"err:EIO", nullptr, nullptr}},
    {"cache.refresh", {"err:EIO", nullptr, nullptr}},
    {"claim.create", {"err:EIO", "err:EACCES", nullptr}},
    {"claim.heartbeat", {"err:EIO", "err:ENOENT", nullptr}},
    {"claim.release", {"err:EIO", nullptr, nullptr}},
    {"claim.break", {"err:EIO", nullptr, nullptr}},
    {"serve.accept", {"err:EMFILE", "err:ECONNABORTED", nullptr}},
    {"serve.read", {"err:EIO", "err:ECONNRESET", nullptr}},
    {"serve.write", {"err:EPIPE", "short_write:%u", nullptr}},
};

/** Expand `random:<seed>` into a concrete schedule string. */
std::string
expandRandom(const std::string &spec)
{
    std::uint64_t seed;
    if (!parseU64Strict(spec.c_str() + 7, ~0ull, seed))
        fatal("failpoint schedule 'random:<seed>': bad seed '%s'",
              spec.c_str() + 7);
    // Purity: the whole schedule is a function of the seed alone.
    Rng rng = Rng::jobStream(seed, 0xfa17u);
    std::string out;
    for (const auto &c : kChaosCatalog) {
        // Arm roughly half the sites each run so schedules differ in
        // shape, not just in parameters.
        if (!rng.chance(0.5))
            continue;
        std::size_t nact = 0;
        while (nact < 3 && c.actions[nact])
            nact++;
        std::string action = c.actions[rng.uniformInt(nact)];
        std::size_t pct = action.find("%u");
        if (pct != std::string::npos)
            action.replace(pct, 2,
                           std::to_string(rng.uniformInt(1, 24)));
        // Low per-evaluation probability: faults should perturb the
        // run, not saturate it (a saturated claim.create is just the
        // solo-fallback test again).
        char trig[48];
        std::snprintf(trig, sizeof(trig), "p%.3f,seed%llu",
                      0.01 + 0.09 * rng.uniform(),
                      static_cast<unsigned long long>(rng.next()));
        if (!out.empty())
            out += ";";
        out += std::string(c.site) + "=" + action + "@" + trig;
    }
    // An empty draw would read as "chaos passed" while testing
    // nothing: always arm at least the cheapest degradation.
    if (out.empty())
        out = "cache.fsync=err:EIO@p0.05,seed" + std::to_string(seed);
    return out;
}

} // namespace

namespace failpoint_detail {

FailpointHit
evalSlow(const char *site)
{
    Registry &reg = registry();
    FailpointHit hit;
    {
        std::lock_guard<std::mutex> lock(reg.mu);
        int st = g_state.load(std::memory_order_relaxed);
        if (st == 0) {
            // First evaluation anywhere: read the environment once.
            const char *env = std::getenv("UBIK_FAILPOINTS");
            if (env && *env) {
                // Re-entrant configure under our lock is a deadlock;
                // release, configure, re-evaluate.
                // (configure takes the same lock.)
            } else {
                g_state.store(1, std::memory_order_relaxed);
                return FailpointHit{};
            }
        }
        if (st == 2) {
            auto it = reg.sites.find(site);
            if (it == reg.sites.end())
                return FailpointHit{};
            SiteRule &r = it->second;
            r.evals++;
            bool fire = false;
            switch (r.trig.kind) {
              case Trigger::Kind::Nth:
                fire = r.evals == r.trig.n;
                break;
              case Trigger::Kind::From:
                fire = r.evals >= r.trig.n;
                break;
              case Trigger::Kind::Every:
                fire = true;
                break;
              case Trigger::Kind::Chance:
                fire = r.rng.chance(r.trig.p);
                break;
            }
            if (!fire)
                return FailpointHit{};
            r.fires++;
            hit.kind = r.action;
            hit.err = r.err;
            hit.arg = r.arg;
            hit.hangSec = r.hangSec;
        }
    }
    if (hit.kind == FailpointHit::Kind::None &&
        g_state.load(std::memory_order_relaxed) == 0) {
        // Deferred env initialization (outside the registry lock).
        const char *env = std::getenv("UBIK_FAILPOINTS");
        failpointConfigure(env ? env : "");
        return failpointEval(site);
    }
    // Hang sleeps here, outside the lock, so a hung site never stalls
    // every other site's evaluation.
    if (hit.kind == FailpointHit::Kind::Hang)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(hit.hangSec));
    return hit;
}

} // namespace failpoint_detail

void
failpointConfigure(const std::string &schedule)
{
    std::string spec = schedule;
    if (spec.compare(0, 7, "random:") == 0)
        spec = expandRandom(spec);

    std::map<std::string, SiteRule> sites;
    for (const std::string &entry : splitOn(spec, ';')) {
        if (entry.empty())
            continue;
        std::string site;
        SiteRule rule;
        parseEntry(entry, site, rule);
        // Chance triggers draw from a pure per-(seed, site) stream:
        // replaying a schedule replays the exact firing pattern.
        rule.rng = Rng::jobStream(rule.trig.seed, fnvString(site));
        if (!sites.emplace(std::move(site), std::move(rule)).second)
            fatal("failpoint '%s': site configured twice",
                  entry.c_str());
    }

    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.sites = std::move(sites);
    failpoint_detail::g_state.store(reg.sites.empty() ? 1 : 2,
                                    std::memory_order_relaxed);
}

void
failpointReset()
{
    failpointConfigure("");
}

bool
failpointsArmed()
{
    return failpoint_detail::g_state.load(std::memory_order_relaxed) ==
           2;
}

std::string
failpointScheduleString()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    std::string out;
    for (const auto &kv : reg.sites) {
        if (!out.empty())
            out += ";";
        out += formatEntry(kv.first, kv.second);
    }
    return out;
}

std::vector<FailpointSiteStats>
failpointStats()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    std::vector<FailpointSiteStats> out;
    for (const auto &kv : reg.sites)
        out.push_back(
            FailpointSiteStats{kv.first, kv.second.evals,
                               kv.second.fires});
    return out;
}

void
failpointReport(std::FILE *out)
{
    for (const FailpointSiteStats &s : failpointStats())
        std::fprintf(out,
                     "  [failpoints] %s: %llu evaluations, %llu "
                     "fired\n",
                     s.site.c_str(),
                     static_cast<unsigned long long>(s.evals),
                     static_cast<unsigned long long>(s.fires));
}

} // namespace ubik
