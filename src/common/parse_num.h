/**
 * @file
 * Strict string-to-integer parsing: whole-string, base-10,
 * range-checked.
 *
 * The libc strtol family silently tolerates exactly the inputs that
 * bite in configuration strings: trailing garbage ("4x" parses as 4),
 * leading whitespace, negative values wrapping through unsigned
 * casts, and out-of-range values clamping to LONG_MAX and then
 * truncating through a narrowing cast ("4294967297" becoming 1
 * worker). Every environment/CLI integer in the tree funnels through
 * this helper so malformed input is either rejected or reported,
 * never silently reinterpreted.
 */

#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>

namespace ubik {

/**
 * Parse `s` as a non-negative base-10 integer <= `max`. Returns false
 * on null/empty input, any non-digit character (including signs,
 * whitespace, hex prefixes, and trailing garbage), or a value that
 * overflows either unsigned long long or `max`.
 */
inline bool
parseU64Strict(const char *s, std::uint64_t max, std::uint64_t &out)
{
    if (!s || !*s)
        return false;
    // strtoull itself accepts leading whitespace and a sign (negative
    // values wrap); requiring a digit first rejects both up front.
    if (*s < '0' || *s > '9')
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (errno == ERANGE || end == s || *end != '\0')
        return false;
    if (v > max)
        return false;
    out = v;
    return true;
}

} // namespace ubik
