/**
 * @file
 * Core typedefs and constants shared across all ubik modules.
 *
 * The simulator works at cache-line granularity: an Addr is a *line*
 * address (byte address >> 6), and all sizes are expressed in lines
 * unless a name says otherwise.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace ubik {

/** Simulated clock cycles (3.2 GHz nominal, per Table 2). */
using Cycles = std::uint64_t;

/** Cache-line address (byte address >> lineBits). */
using Addr = std::uint64_t;

/** Partition identifier. Partition 0 is Vantage's unmanaged region. */
using PartId = std::uint32_t;

/** Application / core identifier within a CMP. */
using AppId = std::uint32_t;

/** Monotonic request sequence number within one LC app. */
using ReqId = std::uint64_t;

/** Sentinel for "no partition assigned". */
constexpr PartId kNoPart = std::numeric_limits<PartId>::max();

/** Sentinel for an invalid / empty line address. */
constexpr Addr kInvalidAddr = std::numeric_limits<Addr>::max();

/** Cache line size, bytes (Table 2). */
constexpr std::uint32_t kLineBytes = 64;

/** log2(kLineBytes). */
constexpr std::uint32_t kLineBits = 6;

/** Nominal clock frequency, Hz (Table 2: 3.2 GHz). */
constexpr double kClockHz = 3.2e9;

/** Convert cycles to milliseconds at the nominal clock. */
constexpr double
cyclesToMs(Cycles c)
{
    return static_cast<double>(c) / kClockHz * 1e3;
}

/** Convert cycles to microseconds at the nominal clock. */
constexpr double
cyclesToUs(Cycles c)
{
    return static_cast<double>(c) / kClockHz * 1e6;
}

/** Convert milliseconds to cycles at the nominal clock. */
constexpr Cycles
msToCycles(double ms)
{
    return static_cast<Cycles>(ms * 1e-3 * kClockHz);
}

/** Convert a byte size to lines, rounding down. */
constexpr std::uint64_t
bytesToLines(std::uint64_t bytes)
{
    return bytes >> kLineBits;
}

constexpr std::uint64_t operator""_KB(unsigned long long v)
{
    return v << 10;
}

constexpr std::uint64_t operator""_MB(unsigned long long v)
{
    return v << 20;
}

} // namespace ubik
