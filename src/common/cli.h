/**
 * @file
 * Minimal command-line flag parser for the tools and examples.
 *
 * Flags are declared with a name, default, and help text; parse()
 * consumes `--name value` and `--name=value` forms, supports `--help`
 * (prints usage and exits 0), and rejects unknown flags and malformed
 * values with fatal(). Declaration order defines the usage listing.
 *
 *   Cli cli("ubik_cli", "Run one mix under one scheme");
 *   auto &policy = cli.flag("policy", "Ubik", "partitioning policy");
 *   auto &slack = cli.flag("slack", 0.05, "Ubik tail-latency slack");
 *   cli.parse(argc, argv);
 *   use(policy.value, slack.value);
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ubik {

/** One declared flag holding a typed value. */
template <typename T>
struct Flag
{
    std::string name;
    std::string help;
    T value;          ///< default until parse(), then the parsed value
    bool seen = false; ///< whether the command line set it
};

/** Declarative command-line parser. */
class Cli
{
  public:
    Cli(std::string program, std::string description);
    ~Cli();

    /** Declare a flag; the reference stays valid for the Cli's life. */
    Flag<std::string> &flag(const std::string &name,
                            const char *default_value,
                            const std::string &help);
    Flag<std::int64_t> &flag(const std::string &name,
                             std::int64_t default_value,
                             const std::string &help);
    Flag<double> &flag(const std::string &name, double default_value,
                       const std::string &help);
    Flag<bool> &flag(const std::string &name, bool default_value,
                     const std::string &help);

    /** Declare a repeatable flag: every `--name value` occurrence
     *  appends to the vector (e.g. `--set a=1 --set b=2`). */
    Flag<std::vector<std::string>> &
    multiFlag(const std::string &name, const std::string &help);

    /**
     * Accept bare (non `--`) arguments, collected in order into
     * positionals(). Without this call they stay fatal() errors.
     * `name`/`help` label them in the usage text.
     */
    void allowPositionals(const std::string &name,
                          const std::string &help);

    /** The bare arguments parse() collected. */
    const std::vector<std::string> &positionals() const
    {
        return positionals_;
    }

    /**
     * Parse the command line. Exits 0 on --help; fatal() on unknown
     * flags, missing values, or unparseable values.
     */
    void parse(int argc, const char *const *argv);

    /** Print the usage/help text to stdout. */
    void printHelp() const;

  private:
    struct Entry;

    Entry &add(const std::string &name, const std::string &help);
    Entry *find(const std::string &name);

    std::string program_;
    std::string description_;
    std::vector<std::unique_ptr<Entry>> entries_;

    bool allowPositionals_ = false;
    std::string positionalName_;
    std::string positionalHelp_;
    std::vector<std::string> positionals_;
};

} // namespace ubik
