#include "common/log.h"

#include <cstdio>
#include <cstdlib>

namespace ubik {

namespace {
bool gVerbose = true;
thread_local bool tFatalTrapped = false;
} // namespace

FatalTrap::FatalTrap() : prev_(tFatalTrapped)
{
    tFatalTrapped = true;
}

FatalTrap::~FatalTrap()
{
    tFatalTrapped = prev_;
}

void
setVerbose(bool verbose)
{
    gVerbose = verbose;
}

bool
verbose()
{
    return gVerbose;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    if (tFatalTrapped) {
        char buf[2048];
        va_list args;
        va_start(args, fmt);
        std::vsnprintf(buf, sizeof buf, fmt, args);
        va_end(args);
        throw FatalError(buf);
    }
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    std::fprintf(stderr, "warn: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

void
informImpl(const char *fmt, ...)
{
    if (!gVerbose)
        return;
    std::fprintf(stdout, "info: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stdout, fmt, args);
    va_end(args);
    std::fprintf(stdout, "\n");
}

} // namespace ubik
