/**
 * @file
 * Deterministic fault injection for the I/O layers (failpoints).
 *
 * A failpoint is a named site compiled into the binary permanently —
 * `failpointEval("cache.append")` costs one relaxed atomic load and a
 * predictable branch while disarmed, so production paths keep their
 * sites forever. A schedule (from the UBIK_FAILPOINTS environment
 * variable, a `--failpoints` flag, or failpointConfigure()) arms
 * selected sites with an action and a trigger:
 *
 *   cache.append=short_write@3;claim.create=err:EIO@p0.05,seed7;
 *   claim.heartbeat=hang:2s@1
 *
 * Grammar, per `;`-separated entry:
 *
 *   <site>=<action>@<trigger>[,seed<k>]
 *
 *   action  := err[:<errno-name-or-number>]   simulated I/O error
 *            | short_write[:<bytes>]          partial write, retryable
 *            | torn[:<bytes>]                 partial write, then the
 *                                             writer "crashes" (no
 *                                             retry; tests torn tails)
 *            | hang:<seconds>s                sleep at the site
 *   trigger := <n>        fire on exactly the n-th evaluation (1-based)
 *            | <n>+       fire on the n-th and every later evaluation
 *            | *          fire on every evaluation
 *            | p<frac>    fire each evaluation with probability <frac>,
 *                         drawn from a seeded Rng stream — replayable
 *
 * `random:<seed>` expands to a seeded schedule over the built-in site
 * catalog (the nightly chaos loop uses this; the expanded schedule is
 * available via failpointScheduleString() for replay).
 *
 * Everything is deterministic given the schedule string: probability
 * triggers draw from Rng::jobStream(seed, hash(site)), and counters
 * are per-site. Evaluation order across racing threads is the only
 * nondeterminism, which is exactly the nondeterminism of real faults.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace ubik {

/** What a fired failpoint instructs its site to do. */
struct FailpointHit
{
    enum class Kind
    {
        None,       ///< proceed normally
        Err,        ///< fail with errno `err`
        ShortWrite, ///< write only `arg` bytes, then report short
        Torn,       ///< write only `arg` bytes, then abandon (crash)
        Hang,       ///< the sleep already happened; proceed normally
    };

    Kind kind = Kind::None;
    int err = 0;            ///< errno value for Kind::Err
    std::uint64_t arg = 0;  ///< byte count for ShortWrite / Torn
    double hangSec = 0;     ///< duration slept for Kind::Hang

    explicit operator bool() const { return kind != Kind::None; }
};

namespace failpoint_detail {

/** 0 = uninitialized (env not read yet), 1 = disarmed, 2 = armed. */
extern std::atomic<int> g_state;

FailpointHit evalSlow(const char *site);

} // namespace failpoint_detail

/**
 * Evaluate the named fault site. The common (disarmed) case is one
 * relaxed atomic load and an always-taken branch; the slow path is
 * only entered while a schedule is armed or on the very first call
 * (which reads UBIK_FAILPOINTS once).
 */
inline FailpointHit
failpointEval(const char *site)
{
    if (failpoint_detail::g_state.load(std::memory_order_relaxed) == 1)
        return FailpointHit{};
    return failpoint_detail::evalSlow(site);
}

/**
 * Replace the active schedule. An empty string disarms every site.
 * `random:<seed>` expands to a seeded schedule over the site catalog.
 * Malformed schedules are a configuration error: fatal() with the
 * offending entry. Resets all per-site counters.
 */
void failpointConfigure(const std::string &schedule);

/** Disarm everything and clear counters (tests). */
void failpointReset();

/** True when any site is armed. */
bool failpointsArmed();

/**
 * Canonical form of the active schedule (random: schedules come back
 * expanded, so a failing chaos run is replayable verbatim).
 */
std::string failpointScheduleString();

/** Per-site counters since the schedule was configured. */
struct FailpointSiteStats
{
    std::string site;
    std::uint64_t evals = 0; ///< times the site was evaluated
    std::uint64_t fires = 0; ///< times it returned a fault
};

std::vector<FailpointSiteStats> failpointStats();

/** Print `[failpoints]` lines for every armed site (run epilogues). */
void failpointReport(std::FILE *out);

} // namespace ubik
