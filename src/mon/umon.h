/**
 * @file
 * Utility monitor (UMON) from utility-based cache partitioning
 * (Qureshi & Patt, MICRO-39 2006), with the Ubik extensions.
 *
 * A UMON is a small auxiliary tag directory: S sampled sets, each a
 * W-way true-LRU stack with a hit counter per stack position plus a
 * miss counter. Address sampling is chosen so the UMON emulates the
 * full cache: with L cache lines and S*W UMON tags, addresses are
 * sampled with probability S*W/L, making stack depth w correspond to
 * an allocation of w/W of the cache. The paper's configuration (32
 * ways x 8 sets over a 12MB LLC) yields the quoted 1-in-768 insertion
 * rate.
 *
 * Ubik extensions (§5.1.1): UMON state is *not* flushed when the app
 * idles, and each access reports its stack depth so the accurate
 * de-boosting circuit can count how many misses the request would have
 * incurred at s_active.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "mon/miss_curve.h"
#include "common/fastdiv.h"
#include "common/types.h"

namespace ubik {

/** Result of offering one address to the UMON. */
struct UmonProbe
{
    /** Whether the address belongs to the sampled subset. */
    bool sampled = false;

    /**
     * LRU stack depth of the hit (1-based; depth <= w means "would hit
     * with w ways"). 0 on a UMON miss.
     */
    std::uint32_t depth = 0;
};

/** Sampled LRU-stack utility monitor. */
class Umon
{
  public:
    /**
     * @param cache_lines size of the cache being modeled, lines
     * @param ways UMON associativity (paper: 32)
     * @param sets sampled sets (paper: 8; scaled runs may use more
     *        for lower sampling noise)
     * @param hash_salt decorrelates sampling across UMON instances
     */
    Umon(std::uint64_t cache_lines, std::uint32_t ways = 32,
         std::uint32_t sets = 8, std::uint64_t hash_salt = 0);

    /** Offer an address; updates counters if sampled. */
    UmonProbe access(Addr addr);

    /**
     * Miss curve for the modeled cache over the counting interval:
     * point i = expected misses with i * (cache_lines/ways) lines.
     * Counts are scaled back up by the sampling factor.
     */
    MissCurve missCurve() const;

    /** Interpolated miss curve with n points (paper: 256). */
    MissCurve missCurve(std::size_t n) const;

    /** Reset hit/miss counters, keeping tags (paper keeps tags so the
     *  curve reflects steady state quickly after reset). */
    void resetCounters();

    /** Sampling factor: estimated full-stream events per UMON event. */
    double samplingFactor() const { return samplingFactor_; }

    std::uint32_t ways() const { return ways_; }
    std::uint64_t cacheLines() const { return cacheLines_; }

    /** Would an access at this depth miss with `lines` allocated? */
    bool
    missesAtAllocation(const UmonProbe &probe, std::uint64_t lines) const
    {
        if (!probe.sampled)
            return false;
        if (probe.depth == 0)
            return true;
        return static_cast<std::uint64_t>(probe.depth) * linesPerWay_ >
               lines;
    }

    std::uint64_t sampledAccesses() const { return sampledAccesses_; }

  private:
    std::uint64_t cacheLines_;
    std::uint32_t ways_;
    std::uint32_t sets_;
    std::uint64_t salt_;
    std::uint64_t linesPerWay_;
    std::uint64_t samplingDenom_;
    double samplingFactor_;

    /**
     * Precomputed filter equivalent to `hash % samplingDenom_ == 0`.
     * Every LLC access probes the UMON but only 1 in samplingDenom_
     * (paper: 768) is sampled, so the reject path — one hash, this
     * check, return — must not pay a hardware divide.
     */
    DivisibilityChecker sampleFilter_;

    /** tags_[set * ways_ + pos]: LRU-ordered, front is MRU. */
    std::vector<Addr> tags_;
    std::vector<std::uint64_t> hitCounters_; ///< per stack depth (0-based)
    std::uint64_t missCounter_ = 0;
    std::uint64_t sampledAccesses_ = 0;
};

} // namespace ubik
