#include "mon/mlp_profiler.h"

#include "common/log.h"

namespace ubik {

MlpProfiler::MlpProfiler(double alpha, double default_miss_penalty)
    : alpha_(alpha), defaultMissPenalty_(default_miss_penalty)
{
    ubik_assert(alpha > 0 && alpha <= 1);
    reset();
}

void
MlpProfiler::reset()
{
    profile_ = CoreProfile{};
    profile_.missPenalty = defaultMissPenalty_;
}

void
MlpProfiler::update(const IntervalCounters &c)
{
    if (c.llcAccesses == 0 || c.cycles == 0)
        return; // idle interval: retain previous profile

    double miss_rate = static_cast<double>(c.llcMisses) /
                       static_cast<double>(c.llcAccesses);
    double m = c.llcMisses > 0
        ? static_cast<double>(c.missStallCycles) /
              static_cast<double>(c.llcMisses)
        : profile_.missPenalty;
    // c (hit-only inter-access time): remove miss stalls from the
    // interval, divide by accesses.
    double busy = static_cast<double>(c.cycles) -
                  static_cast<double>(c.missStallCycles);
    if (busy < 0)
        busy = 0;
    double hit_cpa = busy / static_cast<double>(c.llcAccesses);
    double apc = static_cast<double>(c.llcAccesses) /
                 static_cast<double>(c.cycles);

    if (!profile_.valid) {
        profile_.missPenalty = m;
        profile_.hitCyclesPerAccess = hit_cpa;
        profile_.missRate = miss_rate;
        profile_.accessesPerCycle = apc;
        profile_.valid = true;
        return;
    }
    auto ewma = [this](double old_v, double new_v) {
        return (1.0 - alpha_) * old_v + alpha_ * new_v;
    };
    profile_.missPenalty = ewma(profile_.missPenalty, m);
    profile_.hitCyclesPerAccess = ewma(profile_.hitCyclesPerAccess,
                                       hit_cpa);
    profile_.missRate = ewma(profile_.missRate, miss_rate);
    profile_.accessesPerCycle = ewma(profile_.accessesPerCycle, apc);
}

} // namespace ubik
