/**
 * @file
 * Miss curves: expected misses over an interval as a function of
 * allocated cache space. Produced by UMONs at way granularity
 * (33 points for a 32-way UMON, including the zero-allocation point)
 * and linearly interpolated to finer granularities for the policies
 * (the paper interpolates 32-point UMON curves to 256 points, §6).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace ubik {

/**
 * A piecewise-linear miss curve. values()[i] is the expected miss
 * count when the partition holds i * linesPerPoint() lines.
 */
class MissCurve
{
  public:
    MissCurve() = default;

    /**
     * @param values misses at allocation i * lines_per_point;
     *        must be non-increasing in a well-formed curve (UMON
     *        sampling noise can violate this; enforceMonotone fixes)
     * @param lines_per_point allocation granularity, lines
     */
    MissCurve(std::vector<double> values, std::uint64_t lines_per_point);

    bool empty() const { return values_.empty(); }
    std::size_t points() const { return values_.size(); }
    std::uint64_t linesPerPoint() const { return linesPerPoint_; }

    /** Total lines spanned by the curve's last point. */
    std::uint64_t maxLines() const;

    const std::vector<double> &values() const { return values_; }

    /** Misses at an arbitrary allocation, linearly interpolated.
     *  Allocations beyond the last point clamp. */
    double missesAtLines(std::uint64_t lines) const;

    /** Resample to n points spanning [0, max_lines]. */
    MissCurve resample(std::size_t n, std::uint64_t max_lines) const;

    /** Clamp any increases so the curve is non-increasing. */
    void enforceMonotone();

    /** Multiply every point (sampling-factor correction). */
    void scale(double factor);

  private:
    std::vector<double> values_;
    std::uint64_t linesPerPoint_ = 1;
};

} // namespace ubik
