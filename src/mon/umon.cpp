#include "mon/umon.h"

#include <algorithm>

#include "common/hash.h"
#include "common/log.h"

namespace ubik {

Umon::Umon(std::uint64_t cache_lines, std::uint32_t ways,
           std::uint32_t sets, std::uint64_t hash_salt)
    : cacheLines_(cache_lines), ways_(ways), sets_(sets), salt_(hash_salt)
{
    ubik_assert(ways > 0 && sets > 0 && cache_lines > 0);
    linesPerWay_ = std::max<std::uint64_t>(1, cache_lines / ways);
    // Sample so that S*W tags emulate the full cache: one sampled
    // address per (cache_lines / (sets*ways)) addresses.
    samplingDenom_ = std::max<std::uint64_t>(
        1, cache_lines / (static_cast<std::uint64_t>(sets) * ways));
    samplingFactor_ = static_cast<double>(samplingDenom_);
    sampleFilter_.reset(samplingDenom_);
    tags_.assign(static_cast<std::size_t>(sets) * ways, kInvalidAddr);
    hitCounters_.assign(ways, 0);
}

UmonProbe
Umon::access(Addr addr)
{
    UmonProbe probe;
    std::uint64_t h = mix64(addr ^ salt_);
    // Bit-identical to `h % samplingDenom_ != 0` without the divide;
    // 767 of 768 probes end here (see common/fastdiv.h).
    if (!sampleFilter_.divides(h))
        return probe;
    probe.sampled = true;
    sampledAccesses_++;

    std::uint64_t set = (h / samplingDenom_) % sets_;
    Addr *stack = &tags_[set * ways_];

    // True-LRU stack search; on hit record depth and move to front.
    for (std::uint32_t pos = 0; pos < ways_; pos++) {
        if (stack[pos] == addr) {
            probe.depth = pos + 1;
            hitCounters_[pos]++;
            // Rotate [0, pos] right by one: addr to MRU position.
            for (std::uint32_t i = pos; i > 0; i--)
                stack[i] = stack[i - 1];
            stack[0] = addr;
            return probe;
        }
    }

    // Miss: insert at MRU, shifting the stack down (LRU falls off).
    missCounter_++;
    for (std::uint32_t i = ways_ - 1; i > 0; i--)
        stack[i] = stack[i - 1];
    stack[0] = addr;
    return probe;
}

MissCurve
Umon::missCurve() const
{
    // misses(w ways) = umon misses + hits at depths > w, scaled back
    // to the full access stream.
    std::vector<double> vals(ways_ + 1);
    double tail = static_cast<double>(missCounter_);
    for (std::uint32_t pos = 0; pos < ways_; pos++)
        tail += static_cast<double>(hitCounters_[pos]);
    // vals[0]: zero allocation, every sampled access misses.
    vals[0] = tail * samplingFactor_;
    double acc = static_cast<double>(missCounter_);
    for (std::uint32_t w = ways_; w >= 1; w--) {
        vals[w] = acc * samplingFactor_;
        acc += static_cast<double>(hitCounters_[w - 1]);
    }
    MissCurve curve(std::move(vals), linesPerWay_);
    curve.enforceMonotone();
    return curve;
}

MissCurve
Umon::missCurve(std::size_t n) const
{
    return missCurve().resample(n, cacheLines_);
}

void
Umon::resetCounters()
{
    std::fill(hitCounters_.begin(), hitCounters_.end(), 0);
    missCounter_ = 0;
    sampledAccesses_ = 0;
}

} // namespace ubik
