#include "mon/miss_curve.h"

#include <algorithm>

#include "common/log.h"

namespace ubik {

MissCurve::MissCurve(std::vector<double> values,
                     std::uint64_t lines_per_point)
    : values_(std::move(values)), linesPerPoint_(lines_per_point)
{
    ubik_assert(lines_per_point > 0);
    ubik_assert(!values_.empty());
}

std::uint64_t
MissCurve::maxLines() const
{
    if (values_.empty())
        return 0;
    return (values_.size() - 1) * linesPerPoint_;
}

double
MissCurve::missesAtLines(std::uint64_t lines) const
{
    ubik_assert(!values_.empty());
    if (values_.size() == 1)
        return values_[0];
    std::uint64_t max = maxLines();
    if (lines >= max)
        return values_.back();
    std::uint64_t idx = lines / linesPerPoint_;
    std::uint64_t rem = lines % linesPerPoint_;
    double lo = values_[idx];
    double hi = values_[idx + 1];
    double t = static_cast<double>(rem) /
               static_cast<double>(linesPerPoint_);
    return lo + (hi - lo) * t;
}

MissCurve
MissCurve::resample(std::size_t n, std::uint64_t max_lines) const
{
    ubik_assert(n >= 2);
    ubik_assert(max_lines > 0);
    std::uint64_t step = std::max<std::uint64_t>(1, max_lines / (n - 1));
    std::vector<double> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; i++)
        out.push_back(missesAtLines(std::min<std::uint64_t>(
            i * step, max_lines)));
    return MissCurve(std::move(out), step);
}

void
MissCurve::enforceMonotone()
{
    for (std::size_t i = 1; i < values_.size(); i++)
        values_[i] = std::min(values_[i], values_[i - 1]);
}

void
MissCurve::scale(double factor)
{
    for (double &v : values_)
        v *= factor;
}

} // namespace ubik
