/**
 * @file
 * Long-miss MLP / CPI-stack profiler in the style of Eyerman et al.
 * (ASPLOS-12 2006), as used by Ubik (§4, §5.1).
 *
 * The profiler consumes the per-interval performance-counter events
 * the paper's hardware would produce — cycles, committed instructions,
 * LLC accesses, LLC misses, and cycles stalled on long misses — and
 * derives the two quantities Ubik's transient math needs:
 *
 *   M = average processor stall cycles per LLC miss (MLP-corrected),
 *   c = average cycles between LLC accesses if all accesses hit.
 *
 * Estimates are smoothed with an EWMA across intervals so a noisy
 * interval does not destabilize the controller.
 */

#pragma once

#include <cstdint>

#include "common/types.h"

namespace ubik {

/** One reconfiguration interval's raw performance counters. */
struct IntervalCounters
{
    Cycles cycles = 0;          ///< wall cycles the app was running
    std::uint64_t instructions = 0;
    std::uint64_t llcAccesses = 0;
    std::uint64_t llcMisses = 0;
    Cycles missStallCycles = 0; ///< cycles stalled on LLC misses

    void
    clear()
    {
        cycles = 0;
        instructions = 0;
        llcAccesses = 0;
        llcMisses = 0;
        missStallCycles = 0;
    }

    void
    add(const IntervalCounters &o)
    {
        cycles += o.cycles;
        instructions += o.instructions;
        llcAccesses += o.llcAccesses;
        llcMisses += o.llcMisses;
        missStallCycles += o.missStallCycles;
    }
};

/** Derived per-core timing profile consumed by the policies. */
struct CoreProfile
{
    /** Average stall per LLC miss, cycles (the paper's M). */
    double missPenalty = 0;

    /** Cycles between LLC accesses assuming all hits (the paper's c). */
    double hitCyclesPerAccess = 0;

    /** Observed miss probability over the interval. */
    double missRate = 0;

    /** Accesses per cycle while running (intensity). */
    double accessesPerCycle = 0;

    bool valid = false;
};

/** EWMA-smoothed profiler over interval counter snapshots. */
class MlpProfiler
{
  public:
    /**
     * @param alpha EWMA weight of the newest interval (0..1]
     * @param default_miss_penalty used until the first valid interval
     */
    explicit MlpProfiler(double alpha = 0.5,
                         double default_miss_penalty = 200.0);

    /** Fold in one interval's counters. Zero-access intervals are
     *  ignored (idle apps keep their last profile). */
    void update(const IntervalCounters &c);

    const CoreProfile &profile() const { return profile_; }

    void reset();

  private:
    double alpha_;
    double defaultMissPenalty_;
    CoreProfile profile_;
};

} // namespace ubik
