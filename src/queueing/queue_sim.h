/**
 * @file
 * Multi-worker request-queue simulator (the paper's §3.3 extension).
 *
 * The paper's servers run a single worker thread in FIFO order and
 * defer multithreaded latency-critical workloads to future work,
 * noting the tradeoff: more workers cut queueing delay at high load,
 * but worker threads "interfere among themselves, block on critical
 * sections, and in some workloads (e.g., OLTP) concurrent requests
 * cause occasional aborts, degrading tail latency".
 *
 * QueueSim models exactly that tradeoff at the queueing level,
 * decoupled from the cache simulator: a G/G/k FIFO queue with
 * exponential (Markov) arrivals, service times drawn from the same
 * ServiceDistribution presets the LC apps use, plus two interference
 * knobs:
 *
 *  - interferenceFactor: each request's service time is inflated by
 *    (1 + f * (concurrent_workers - 1)), modeling shared-resource
 *    and lock contention among workers;
 *  - abortProb: when a request finishes while others are in flight,
 *    it aborts and restarts with this probability (OLTP-style
 *    conflicts), re-drawing its remaining service time.
 *
 * The simulator is event-driven, deterministic under a seed, and
 * reports latency/service recorders compatible with the paper's tail
 * metrics.
 */

#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "stats/latency_recorder.h"
#include "workload/service_distribution.h"
#include "common/rng.h"
#include "common/types.h"

namespace ubik {

/** Configuration for one queueing simulation. */
struct QueueSimParams
{
    /** Concurrent worker threads (k in G/G/k). */
    std::uint32_t workers = 1;

    /** Mean interarrival time, cycles (exponential). */
    double meanInterarrival = 1e6;

    /** Base service-time distribution, cycles. */
    ServiceDistribution service = ServiceDistribution::constant(2e5);

    /** Measured requests (after warmup). */
    std::uint64_t requests = 5000;

    /** Warmup requests excluded from the metrics. */
    std::uint64_t warmup = 500;

    /** Per-extra-active-worker service inflation (0 = none). */
    double interferenceFactor = 0.0;

    /** Probability a request aborts and restarts when it completes
     *  with other requests in flight (0 = never). */
    double abortProb = 0.0;

    /** Cap on restarts per request (guards pathological configs). */
    std::uint32_t maxAborts = 8;
};

/** Results of one queueing simulation. */
struct QueueSimResult
{
    /** Sojourn times (queueing + service) of measured requests. */
    LatencyRecorder latencies;

    /** Effective service times (inflated, including restarts). */
    LatencyRecorder serviceTimes;

    /** Mean number of requests in the system (for Little's law). */
    double meanInSystem = 0;

    /** Fraction of time all workers were busy. */
    double saturationFrac = 0;

    /** Total aborts across measured requests. */
    std::uint64_t aborts = 0;

    /** Offered load per worker: lambda * E[S] / k. */
    double offeredLoad = 0;
};

/**
 * Event-driven G/G/k FIFO queue with worker interference.
 *
 * Usage:
 *   QueueSimParams p;
 *   p.workers = 4;
 *   QueueSimResult r = QueueSim(p, seed).run();
 */
class QueueSim
{
  public:
    QueueSim(QueueSimParams params, std::uint64_t seed);

    /** Run to completion and return the collected metrics. */
    QueueSimResult run();

  private:
    struct InFlight
    {
        Cycles arrival;         ///< when the request arrived
        Cycles start;           ///< when service (re)started
        double remainingWork;   ///< base service cycles left
        std::uint32_t aborts;   ///< restarts so far
        std::uint64_t seq;      ///< admission order
    };

    /** Service-rate multiplier with `active` busy workers. */
    double slowdown(std::uint32_t active) const;

    QueueSimParams params_;
    Rng rng_;
};

} // namespace ubik
