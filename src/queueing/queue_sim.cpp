#include "queueing/queue_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "common/log.h"

namespace ubik {

QueueSim::QueueSim(QueueSimParams params, std::uint64_t seed)
    : params_(params), rng_(seed)
{
    if (params_.workers == 0)
        fatal("QueueSim: need at least one worker");
    if (params_.requests == 0)
        fatal("QueueSim: need at least one measured request");
    if (params_.service.mean() <= 0)
        fatal("QueueSim: service distribution must have positive "
              "mean work");
    if (params_.meanInterarrival <= 0)
        fatal("QueueSim: open-loop arrivals require a positive "
              "mean interarrival time");
    if (params_.interferenceFactor < 0)
        fatal("QueueSim: negative interference factor");
    if (params_.abortProb < 0 || params_.abortProb > 1)
        fatal("QueueSim: abort probability must be in [0, 1]");
}

double
QueueSim::slowdown(std::uint32_t active) const
{
    if (active <= 1)
        return 1.0;
    return 1.0 +
           params_.interferenceFactor * static_cast<double>(active - 1);
}

QueueSimResult
QueueSim::run()
{
    QueueSimResult res;
    res.offeredLoad = params_.service.mean() / params_.meanInterarrival /
                      static_cast<double>(params_.workers);

    std::deque<InFlight> queue; ///< admitted, waiting for a worker
    std::vector<InFlight> busy; ///< in service
    busy.reserve(params_.workers);

    Cycles now = 0;
    Cycles next_arrival =
        static_cast<Cycles>(rng_.exponential(params_.meanInterarrival));
    std::uint64_t seq = 0;
    std::uint64_t measured_done = 0;
    const std::uint64_t first_measured = params_.warmup;
    const std::uint64_t last_measured =
        params_.warmup + params_.requests; // exclusive

    // Little's-law accounting over the measured window.
    double area_in_system = 0;
    Cycles busy_all_time = 0;
    Cycles measure_start = 0;
    bool measuring = false;

    auto is_measured = [&](const InFlight &f) {
        return f.seq >= first_measured && f.seq < last_measured;
    };

    while (measured_done < params_.requests) {
        // Dispatch waiting requests to free workers.
        while (busy.size() < params_.workers && !queue.empty()) {
            InFlight f = queue.front();
            queue.pop_front();
            f.start = now;
            f.remainingWork = params_.service.sample(rng_);
            busy.push_back(f);
        }

        // Next event: an arrival or the earliest completion under
        // the current interference slowdown.
        double sf = slowdown(static_cast<std::uint32_t>(busy.size()));
        Cycles t_next = next_arrival;
        std::size_t done_idx = busy.size();
        for (std::size_t i = 0; i < busy.size(); i++) {
            Cycles cand =
                now + std::max<Cycles>(
                          1, static_cast<Cycles>(
                                 std::ceil(busy[i].remainingWork * sf)));
            if (cand < t_next ||
                (cand == t_next && done_idx == busy.size())) {
                t_next = cand;
                done_idx = i;
            }
        }
        ubik_assert(t_next >= now);

        // Advance time: deplete in-service work, integrate stats.
        Cycles dt = t_next - now;
        if (dt > 0) {
            double depletion = static_cast<double>(dt) / sf;
            for (auto &f : busy)
                f.remainingWork =
                    std::max(0.0, f.remainingWork - depletion);
            if (measuring) {
                area_in_system +=
                    static_cast<double>(dt) *
                    static_cast<double>(busy.size() + queue.size());
                if (busy.size() == params_.workers)
                    busy_all_time += dt;
            }
        }
        now = t_next;

        // Ties between an arrival and a completion resolve as the
        // arrival; the completed request drains one cycle later,
        // which does not affect the metrics.
        if (done_idx == busy.size() || now == next_arrival) {
            // Arrival: admit to the queue.
            InFlight f{};
            f.arrival = now;
            f.seq = seq++;
            queue.push_back(f);
            next_arrival =
                now + std::max<Cycles>(
                          1, static_cast<Cycles>(rng_.exponential(
                                 params_.meanInterarrival)));
            if (!measuring && f.seq == first_measured) {
                measuring = true;
                measure_start = now;
            }
            continue;
        }

        // Completion of busy[done_idx].
        InFlight &f = busy[done_idx];
        bool concurrent = busy.size() > 1;
        if (concurrent && f.aborts < params_.maxAborts &&
            rng_.chance(params_.abortProb)) {
            // OLTP-style conflict: restart with fresh work.
            f.remainingWork = params_.service.sample(rng_);
            f.aborts++;
            if (is_measured(f))
                res.aborts++;
            continue;
        }

        if (is_measured(f)) {
            res.latencies.record(now - f.arrival);
            res.serviceTimes.record(now - f.start);
            measured_done++;
        }
        busy.erase(busy.begin() + static_cast<std::ptrdiff_t>(done_idx));
    }

    Cycles elapsed = now > measure_start ? now - measure_start : 1;
    res.meanInSystem = area_in_system / static_cast<double>(elapsed);
    res.saturationFrac = static_cast<double>(busy_all_time) /
                         static_cast<double>(elapsed);
    return res;
}

} // namespace ubik
