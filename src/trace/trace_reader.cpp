#include "trace/trace_reader.h"

#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "trace/access_trace.h"
#include "trace/trace_format.h"
#include "common/failpoint.h"
#include "common/hash.h"
#include "common/log.h"

namespace ubik {

using namespace trace_format;

void
TraceBatch::clear()
{
    requestWork.clear();
    requestPos.clear();
    accesses.clear();
}

void
appendBatch(TraceData &td, const TraceBatch &batch)
{
    std::uint64_t base = td.accesses.size();
    for (std::size_t i = 0; i < batch.requestWork.size(); i++) {
        td.requestWork.push_back(batch.requestWork[i]);
        td.requestStart.push_back(base + batch.requestPos[i]);
    }
    td.accesses.insert(td.accesses.end(), batch.accesses.begin(),
                       batch.accesses.end());
}

namespace {

/** Buffered byte source over one file. */
class ByteSource
{
  public:
    explicit ByteSource(std::FILE *f) : file_(f) {}

    /** Absolute offset of the next unread byte (error messages). */
    std::uint64_t offset() const { return base_ + pos_; }

    /** A read failed with an I/O error (as opposed to end of file):
     *  the file may be intact, the disk read was not. */
    bool ioError() const { return ioError_; }

    /** Next byte; false at end of file. */
    bool
    byte(std::uint8_t &out)
    {
        if (pos_ >= len_ && !refill())
            return false;
        out = buf_[pos_++];
        return true;
    }

    /** Read exactly `n` bytes; false on a short read. */
    bool
    bytes(std::uint8_t *dst, std::size_t n)
    {
        while (n > 0) {
            if (pos_ >= len_ && !refill())
                return false;
            std::size_t take = std::min(n, len_ - pos_);
            std::memcpy(dst, buf_ + pos_, take);
            pos_ += take;
            dst += take;
            n -= take;
        }
        return true;
    }

  private:
    bool
    refill()
    {
        base_ += len_;
        pos_ = 0;
        // Injected read failure: the reader must diagnose "failing
        // disk", not "truncated capture" (failEof distinguishes).
        if (failpointEval("trace.read").kind ==
            FailpointHit::Kind::Err) {
            len_ = 0;
            ioError_ = true;
            return false;
        }
        len_ = std::fread(buf_, 1, sizeof(buf_), file_);
        if (len_ < sizeof(buf_) && file_ && std::ferror(file_))
            ioError_ = true;
        return len_ > 0;
    }

    std::FILE *file_;
    std::uint8_t buf_[1 << 18];
    std::size_t pos_ = 0;
    std::size_t len_ = 0;
    std::uint64_t base_ = 0;
    bool ioError_ = false;
};

enum class Status
{
    Batch, ///< the outcome holds at least one record
    Eof,   ///< clean end of trace (END footer validated)
    Error, ///< malformed input; see the error message
};

std::string
hexByte(std::uint8_t b)
{
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%02x", b);
    return buf;
}

} // namespace

/**
 * Sequential decoder + prefetch machinery. Decoding (and every
 * decode-state member) is touched by exactly one thread at a time —
 * the consumer's, or the prefetch worker's. Results cross threads
 * only inside an Outcome handed over under the mutex, so the
 * consumer-visible counters always describe *delivered* batches and
 * never race the decode ahead of them.
 */
struct TraceReader::Impl
{
    std::string path;
    TraceReaderOptions opt;
    std::FILE *file = nullptr;
    ByteSource src;

    std::uint8_t version = 0;

    /** One decoded batch plus the cumulative state snapshot taken
     *  when it was produced. */
    struct Outcome
    {
        Status st = Status::Eof;
        TraceBatch batch;
        std::uint64_t requests = 0;
        std::uint64_t accesses = 0;
        double totalWork = 0;
        std::uint64_t hash = kFnvOffsetBasis;
        std::vector<TraceChunkInfo> newChunks;
        std::string err;
    };

    // --- decode state (decoding thread only)
    Addr prevAddr = 0;
    bool sawRequest = false;
    bool sawEnd = false;
    std::uint64_t decRequests = 0;
    std::uint64_t decAccesses = 0;
    double decTotalWork = 0;
    std::uint64_t decHash = kFnvOffsetBasis;
    std::uint64_t decChunks = 0;
    std::vector<std::uint8_t> chunk; ///< current v2 chunk payload
    std::size_t chunkPos = 0;
    std::uint64_t chunkReqLeft = 0; ///< header counts not yet decoded
    std::uint64_t chunkAccLeft = 0;
    std::vector<TraceChunkInfo> newChunks; ///< since last outcome
    std::string err;

    // --- consumer-visible state (consumer thread only)
    std::uint64_t requests = 0;
    std::uint64_t accesses = 0;
    double totalWork = 0;
    std::uint64_t hash = kFnvOffsetBasis;
    std::vector<TraceChunkInfo> chunkInfos;
    bool done = false; ///< a terminal outcome has been delivered
    Status doneStatus = Status::Eof;
    std::string doneErr;

    // --- prefetch slot (double buffering: one outcome ahead)
    std::thread worker;
    std::mutex mu;
    std::condition_variable cv;
    bool slotFull = false;
    bool stop = false;
    Outcome slot;

    /** Caps hostile chunk allocations; ~0 when the size is unknown
     *  (non-seekable input) so the record-count bound still governs. */
    std::uint64_t fileBytes = ~0ull;

    Impl(std::string p, TraceReaderOptions o)
        : path(std::move(p)), opt(o),
          file(std::fopen(path.c_str(), "rb")), src(file)
    {
        if (opt.batchRecords == 0)
            opt.batchRecords = 1;
        if (file && std::fseek(file, 0, SEEK_END) == 0) {
            long sz = std::ftell(file);
            if (sz >= 0)
                fileBytes = static_cast<std::uint64_t>(sz);
            std::rewind(file);
        }
    }

    ~Impl()
    {
        if (worker.joinable()) {
            {
                std::lock_guard<std::mutex> lock(mu);
                stop = true;
            }
            cv.notify_all();
            worker.join();
        }
        if (file)
            std::fclose(file);
    }

    bool
    fail(const std::string &msg)
    {
        if (err.empty())
            err = "trace " + path + ": " + msg;
        return false;
    }

    /** An unexpected end of input: distinguish a failing disk from a
     *  genuinely short file so the user fixes the right thing. */
    bool
    failEof(const std::string &msg)
    {
        if (src.ioError())
            return fail("read error at offset " +
                        std::to_string(src.offset()) +
                        " (I/O failure, not a truncated capture)");
        return fail(msg);
    }

    bool
    readHeader()
    {
        std::uint8_t magic[4];
        if (!src.bytes(magic, 4))
            return failEof("bad magic (not a ubik trace)");
        if (std::memcmp(magic, kMagic, 4) != 0)
            return fail("bad magic (not a ubik trace)");
        std::uint8_t v;
        if (!src.byte(v))
            return failEof("truncated (unexpected end of file)");
        if (v != kVersionV1 && v != kVersionV2)
            return fail("unsupported version " + std::to_string(v) +
                        " (expected 1 or 2)");
        version = v;
        return true;
    }

    bool
    varint(std::uint64_t &out)
    {
        out = 0;
        int shift = 0;
        for (;;) {
            std::uint8_t b;
            if (!src.byte(b))
                return failEof("truncated (unexpected end of file)");
            // At shift 63 only payload bit 0 remains; any higher
            // payload bit OR a continuation bit overflows (and a
            // continuation would push the next shift past 64 — UB).
            if (shift >= 63 && (b & 0xfe))
                return fail("varint overflow at offset " +
                            std::to_string(src.offset() - 1));
            out |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if (!(b & 0x80))
                return true;
            shift += 7;
        }
    }

    bool
    varintFrom(const std::uint8_t *buf, std::size_t len,
               std::size_t &pos, std::uint64_t &out)
    {
        out = 0;
        int shift = 0;
        for (;;) {
            if (pos >= len)
                return fail("truncated (unexpected end of file)");
            std::uint8_t b = buf[pos++];
            if (shift >= 63 && (b & 0xfe))
                return fail("varint overflow inside chunk " +
                            std::to_string(decChunks - 1));
            out |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if (!(b & 0x80))
                return true;
            shift += 7;
        }
    }

    bool
    f64From(const std::uint8_t *buf, std::size_t len, std::size_t &pos,
            double &out)
    {
        if (pos + 8 > len)
            return fail("truncated (unexpected end of file)");
        std::uint64_t bits = 0;
        for (int i = 0; i < 8; i++)
            bits |= static_cast<std::uint64_t>(buf[pos + i]) << (8 * i);
        pos += 8;
        std::memcpy(&out, &bits, sizeof(out));
        return true;
    }

    void
    emitRequest(TraceBatch &out, double work)
    {
        out.requestPos.push_back(out.accesses.size());
        out.requestWork.push_back(work);
        decRequests++;
        decTotalWork += work;
        sawRequest = true;
        decHash = fnv1a64(decHash, kRecRequest);
        std::uint64_t bits;
        std::memcpy(&bits, &work, sizeof(bits));
        decHash = fnv1a64(decHash, bits);
    }

    void
    emitAccess(TraceBatch &out, std::int64_t delta)
    {
        // Unsigned modular arithmetic: a hostile delta wraps instead
        // of tripping signed-overflow UB.
        prevAddr = static_cast<Addr>(prevAddr +
                                     static_cast<std::uint64_t>(delta));
        out.accesses.push_back(prevAddr);
        decAccesses++;
        decHash = fnv1a64(decHash, kRecAccess);
        decHash = fnv1a64(decHash, prevAddr);
    }

    bool
    checkEnd(std::uint64_t reqs, std::uint64_t accs)
    {
        if (reqs != decRequests || accs != decAccesses)
            return fail("footer mismatch (" + std::to_string(reqs) +
                        "/" + std::to_string(accs) + " recorded vs " +
                        std::to_string(decRequests) + "/" +
                        std::to_string(decAccesses) +
                        " parsed) — truncated capture?");
        sawEnd = true;
        return true;
    }

    /** v1: decode flat records straight from the file. */
    Status
    produceV1(TraceBatch &out)
    {
        while (out.records() < opt.batchRecords) {
            std::uint8_t rec;
            if (!src.byte(rec)) {
                failEof("missing END footer — truncated capture?");
                return Status::Error;
            }
            switch (rec) {
              case kRecRequest: {
                std::uint8_t raw[8];
                if (!src.bytes(raw, 8)) {
                    failEof("truncated (unexpected end of file)");
                    return Status::Error;
                }
                std::size_t pos = 0;
                double work;
                f64From(raw, 8, pos, work);
                emitRequest(out, work);
                break;
              }
              case kRecAccess: {
                if (!sawRequest) {
                    fail("access before first request");
                    return Status::Error;
                }
                std::uint64_t zz;
                if (!varint(zz))
                    return Status::Error;
                emitAccess(out, unzigzag(zz));
                break;
              }
              case kRecEnd: {
                std::uint64_t reqs, accs;
                if (!varint(reqs) || !varint(accs))
                    return Status::Error;
                if (!checkEnd(reqs, accs))
                    return Status::Error;
                // Like the legacy reader, ignore trailing bytes.
                return out.empty() ? Status::Eof : Status::Batch;
              }
              default:
                fail("unknown record type 0x" + hexByte(rec) +
                     " at offset " + std::to_string(src.offset() - 1));
                return Status::Error;
            }
        }
        return Status::Batch;
    }

    /** v2: load + verify the next chunk into `chunk`. */
    bool
    loadChunk()
    {
        std::uint64_t payloadBytes, nreq, nacc;
        if (!varint(payloadBytes) || !varint(nreq) || !varint(nacc))
            return false;
        std::uint8_t crcRaw[8];
        if (!src.bytes(crcRaw, 8))
            return failEof("truncated (unexpected end of file)");
        std::uint64_t crc = 0;
        for (int i = 0; i < 8; i++)
            crc |= static_cast<std::uint64_t>(crcRaw[i]) << (8 * i);
        // A hostile or bit-flipped header must not drive a giant
        // allocation: no honest chunk can claim more bytes than its
        // own records could fill (<= 9 per REQUEST, <= 11 per
        // ACCESS), nor more payload than the file holds — the latter
        // is simply truncation, diagnosed before allocating.
        if (nreq > payloadBytes || nacc > payloadBytes ||
            payloadBytes > nreq * 9 + nacc * 11)
            return fail("implausible chunk header (payload " +
                        std::to_string(payloadBytes) + " bytes, " +
                        std::to_string(nreq) + " requests, " +
                        std::to_string(nacc) + " accesses)");
        if (payloadBytes > fileBytes)
            return fail("truncated chunk (payload extends past end "
                        "of file)");
        chunk.resize(payloadBytes);
        if (payloadBytes && !src.bytes(chunk.data(), payloadBytes))
            return failEof("truncated chunk (unexpected end of file)");
        std::uint64_t h =
            fnv1a64Bytes(kFnvOffsetBasis, chunk.data(), chunk.size());
        // The failpoint simulates a bit flip that survived the disk:
        // same diagnosis as a genuinely corrupt chunk.
        if (failpointEval("trace.checksum").kind ==
                FailpointHit::Kind::Err ||
            h != crc)
            return fail("chunk " + std::to_string(decChunks) +
                        " checksum mismatch — corrupt trace?");
        chunkPos = 0;
        chunkReqLeft = nreq;
        chunkAccLeft = nacc;
        // Chunks are independently decodable: deltas restart from 0.
        prevAddr = 0;
        TraceChunkInfo info;
        info.requests = nreq;
        info.accesses = nacc;
        info.payloadBytes = payloadBytes;
        newChunks.push_back(info);
        decChunks++;
        return true;
    }

    /** v2: drain records from the current chunk into `out`. */
    Status
    drainChunk(TraceBatch &out)
    {
        const std::uint8_t *buf = chunk.data();
        const std::size_t len = chunk.size();
        while (chunkPos < len && out.records() < opt.batchRecords) {
            std::uint8_t rec = buf[chunkPos++];
            switch (rec) {
              case kRecRequest: {
                double work;
                if (!f64From(buf, len, chunkPos, work))
                    return Status::Error;
                if (chunkReqLeft == 0) {
                    fail("chunk " + std::to_string(decChunks - 1) +
                         " record count mismatch");
                    return Status::Error;
                }
                chunkReqLeft--;
                emitRequest(out, work);
                break;
              }
              case kRecAccess: {
                if (!sawRequest) {
                    fail("access before first request");
                    return Status::Error;
                }
                std::uint64_t zz;
                if (!varintFrom(buf, len, chunkPos, zz))
                    return Status::Error;
                if (chunkAccLeft == 0) {
                    fail("chunk " + std::to_string(decChunks - 1) +
                         " record count mismatch");
                    return Status::Error;
                }
                chunkAccLeft--;
                emitAccess(out, unzigzag(zz));
                break;
              }
              default:
                fail("unknown record type 0x" + hexByte(rec) +
                     " inside chunk " + std::to_string(decChunks - 1));
                return Status::Error;
            }
        }
        if (chunkPos >= len && (chunkReqLeft || chunkAccLeft)) {
            fail("chunk " + std::to_string(decChunks - 1) +
                 " record count mismatch");
            return Status::Error;
        }
        return Status::Batch;
    }

    Status
    produceV2(TraceBatch &out)
    {
        while (out.records() < opt.batchRecords) {
            if (chunkPos < chunk.size()) {
                Status st = drainChunk(out);
                if (st != Status::Batch)
                    return st;
                continue;
            }
            std::uint8_t rec;
            if (!src.byte(rec)) {
                failEof("missing END footer — truncated capture?");
                return Status::Error;
            }
            if (rec == kRecChunk) {
                if (!loadChunk())
                    return Status::Error;
            } else if (rec == kRecEnd) {
                std::uint64_t reqs, accs;
                if (!varint(reqs) || !varint(accs))
                    return Status::Error;
                if (!checkEnd(reqs, accs))
                    return Status::Error;
                return out.empty() ? Status::Eof : Status::Batch;
            } else {
                fail("unknown record type 0x" + hexByte(rec) +
                     " at offset " + std::to_string(src.offset() - 1));
                return Status::Error;
            }
        }
        return Status::Batch;
    }

    Outcome
    produce()
    {
        Outcome o;
        if (sawEnd) {
            o.st = Status::Eof;
        } else {
            o.st = version == kVersionV1 ? produceV1(o.batch)
                                         : produceV2(o.batch);
        }
        if (o.st == Status::Error)
            o.err = err;
        o.requests = decRequests;
        o.accesses = decAccesses;
        o.totalWork = decTotalWork;
        o.hash = decHash;
        o.newChunks = std::move(newChunks);
        newChunks.clear();
        return o;
    }

    /** produce(), with allocation failures converted into a normal
     *  Error outcome — nothing may throw out of the prefetch thread
     *  (an escaped exception would std::terminate the process). */
    Outcome
    produceSafe()
    {
        try {
            return produce();
        } catch (const std::exception &e) {
            // bad_alloc / length_error from a hostile chunk header
            // that slipped past the plausibility bounds.
            fail(std::string("decode failure: ") + e.what());
            Outcome o;
            o.st = Status::Error;
            o.err = err;
            return o;
        }
    }

    /** Apply a delivered outcome to the consumer-visible state. */
    void
    applyOutcome(Outcome &o, TraceBatch &out)
    {
        requests = o.requests;
        accesses = o.accesses;
        totalWork = o.totalWork;
        hash = o.hash;
        for (const TraceChunkInfo &ci : o.newChunks)
            chunkInfos.push_back(ci);
        out = std::move(o.batch);
        if (o.st != Status::Batch) {
            done = true;
            doneStatus = o.st;
            doneErr = std::move(o.err);
        }
    }

    void
    prefetchLoop()
    {
        for (;;) {
            Outcome o = produceSafe();
            bool terminal = o.st != Status::Batch;
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [this] { return !slotFull || stop; });
            if (stop)
                return;
            slot = std::move(o);
            slotFull = true;
            cv.notify_all();
            if (terminal)
                return;
        }
    }
};

TraceReader::TraceReader(const std::string &path, TraceReaderOptions opt)
    : impl_(std::make_unique<Impl>(path, opt))
{
    if (!impl_->file)
        fatal("cannot open trace file %s", path.c_str());
    if (!impl_->readHeader())
        fatal("%s", impl_->err.c_str());
    if (impl_->opt.prefetch)
        impl_->worker = std::thread([this] { impl_->prefetchLoop(); });
}

TraceReader::~TraceReader() = default;

bool
TraceReader::next(TraceBatch &out)
{
    Impl &im = *impl_;
    out.clear();
    if (im.done) {
        if (im.doneStatus == Status::Error)
            fatal("%s", im.doneErr.c_str());
        return false;
    }
    Impl::Outcome o;
    if (im.worker.joinable()) {
        std::unique_lock<std::mutex> lock(im.mu);
        im.cv.wait(lock, [&im] { return im.slotFull; });
        o = std::move(im.slot);
        im.slot = Impl::Outcome{};
        im.slotFull = false;
        im.cv.notify_all();
    } else {
        o = im.produceSafe();
    }
    im.applyOutcome(o, out);
    if (im.done && im.doneStatus == Status::Error)
        fatal("%s", im.doneErr.c_str());
    return !im.done;
}

std::uint8_t
TraceReader::version() const
{
    return impl_->version;
}

std::uint64_t
TraceReader::requests() const
{
    return impl_->requests;
}

std::uint64_t
TraceReader::accesses() const
{
    return impl_->accesses;
}

double
TraceReader::totalWork() const
{
    return impl_->totalWork;
}

std::uint64_t
TraceReader::chunks() const
{
    return static_cast<std::uint64_t>(impl_->chunkInfos.size());
}

const std::vector<TraceChunkInfo> &
TraceReader::chunkInfo() const
{
    return impl_->chunkInfos;
}

std::uint64_t
TraceReader::contentHash() const
{
    return impl_->hash;
}

const std::string &
TraceReader::path() const
{
    return impl_->path;
}

} // namespace ubik
