/**
 * @file
 * CSV export for simulation artifacts: generic row writing plus
 * ready-made dumps for the two artifacts people plot most — the
 * partition-allocation timelines behind Fig 4 and the latency CDFs
 * behind Fig 1b. Benches and the CLI use these so results can leave
 * the terminal and enter a notebook.
 *
 * Format choices: RFC-4180-style quoting (fields containing commas,
 * quotes, or line breaks — LF or CR — are double-quoted with inner
 * quotes doubled), '\n' line endings, one header row.
 */

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "mon/miss_curve.h"
#include "stats/latency_recorder.h"
#include "common/types.h"

namespace ubik {

struct AllocSample;

/** Streaming CSV writer with RFC-4180 quoting. */
class CsvWriter
{
  public:
    /** Opens `path` for writing; fatal() if it cannot. */
    explicit CsvWriter(const std::string &path);
    ~CsvWriter();

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

    /** Write one row of string cells. */
    void row(const std::vector<std::string> &cells);

    /** Write one row of numeric cells ("%.10g"). */
    void row(const std::vector<double> &cells);

    /** Rows written so far (including the header). */
    std::uint64_t rows() const { return rows_; }

    const std::string &path() const { return path_; }

  private:
    std::string quote(const std::string &cell) const;

    std::string path_;
    std::FILE *file_;
    std::uint64_t rows_ = 0;
};

/**
 * Dump a partition-allocation trace (Cmp::allocTrace()) as
 * cycle,ms,part0,part1,... — one row per sample.
 */
void writeAllocTrace(const std::vector<AllocSample> &trace,
                     const std::string &path);

/**
 * Dump a latency recorder as an empirical CDF:
 * latency_cycles,latency_ms,cdf — one row per sample quantile.
 * @param points rows to emit (sampled evenly over the sorted data)
 */
void writeLatencyCdf(const LatencyRecorder &latencies,
                     const std::string &path, std::size_t points = 200);

/**
 * Dump a miss curve as lines,mb,misses,miss_ratio — one row per
 * point. @param total_accesses denominator for miss_ratio (0 = omit
 * the ratio column).
 */
void writeMissCurve(const MissCurve &curve, const std::string &path,
                    double total_accesses = 0);

} // namespace ubik
