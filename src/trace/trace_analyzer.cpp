#include "trace/trace_analyzer.h"

#include <algorithm>
#include <unordered_map>

#include "common/log.h"

namespace ubik {

namespace {

/** Fenwick (binary indexed) tree over access positions; counts one
 *  "live" mark per distinct address at its most recent position. */
class Fenwick
{
  public:
    explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

    /** Add `delta` at 0-based position i. */
    void
    add(std::size_t i, int delta)
    {
        for (std::size_t j = i + 1; j < tree_.size();
             j += j & (~j + 1))
            tree_[j] += delta;
    }

    /** Sum of marks at 0-based positions [0, i]. */
    std::int64_t
    prefix(std::size_t i) const
    {
        std::int64_t s = 0;
        for (std::size_t j = i + 1; j > 0; j -= j & (~j + 1))
            s += tree_[j];
        return s;
    }

  private:
    std::vector<std::int64_t> tree_;
};

} // namespace

std::uint64_t
TraceAnalysis::missesAtSize(std::uint64_t lines) const
{
    std::uint64_t m = coldMisses;
    for (std::uint64_t d = lines; d < distanceHistogram.size(); d++)
        m += distanceHistogram[d];
    return m;
}

double
TraceAnalysis::missRatioAtSize(std::uint64_t lines) const
{
    return accesses > 0
               ? static_cast<double>(missesAtSize(lines)) /
                     static_cast<double>(accesses)
               : 0;
}

MissCurve
TraceAnalysis::missCurve(std::size_t points,
                         std::uint64_t max_lines) const
{
    ubik_assert(points >= 2);
    std::uint64_t per_point = std::max<std::uint64_t>(
        1, max_lines / (points - 1));

    // One reverse suffix pass, then sample at each point's size.
    std::vector<double> vals(points, 0);
    std::uint64_t suffix = 0;
    std::int64_t next = static_cast<std::int64_t>(points) - 1;
    for (std::int64_t d =
             static_cast<std::int64_t>(distanceHistogram.size()) - 1;
         d >= 0; d--) {
        while (next >= 0 &&
               static_cast<std::uint64_t>(next) * per_point >
                   static_cast<std::uint64_t>(d))
            vals[next--] = static_cast<double>(suffix);
        suffix += distanceHistogram[d];
    }
    while (next >= 0)
        vals[next--] = static_cast<double>(suffix);
    for (double &v : vals)
        v += static_cast<double>(coldMisses);
    return MissCurve(std::move(vals), per_point);
}

TraceAnalysis
analyzeTrace(const TraceData &trace, std::uint64_t max_tracked_distance)
{
    TraceAnalysis out;
    out.accesses = trace.accesses.size();
    out.hitsByRequestsAgo.assign(9, 0);

    const std::size_t n = trace.accesses.size();
    Fenwick marks(n);
    std::unordered_map<Addr, std::size_t> lastPos;
    std::unordered_map<Addr, std::uint64_t> lastReq;
    lastPos.reserve(n / 4 + 16);
    lastReq.reserve(n / 4 + 16);

    // Track the largest distance actually seen so the histogram stays
    // as small as the trace allows.
    std::uint64_t max_seen = 0;
    std::vector<std::uint64_t> hist;

    std::uint64_t req = 0;
    std::uint64_t cross_hits = 0, total_hits = 0;
    for (std::size_t i = 0; i < n; i++) {
        while (req + 1 < trace.requestStart.size() &&
               i >= trace.requestStart[req + 1])
            req++;
        Addr a = trace.accesses[i];
        auto it = lastPos.find(a);
        if (it == lastPos.end()) {
            out.coldMisses++;
            out.footprintLines++;
        } else {
            std::size_t p = it->second;
            // Distinct lines touched in (p, i): marks in [p+1, i-1],
            // i.e. prefix(i-1) - prefix(p).
            std::int64_t d64 =
                marks.prefix(i > 0 ? i - 1 : 0) - marks.prefix(p);
            ubik_assert(d64 >= 0);
            std::uint64_t d = std::min(
                static_cast<std::uint64_t>(d64),
                max_tracked_distance);
            if (d >= hist.size())
                hist.resize(d + 1, 0);
            hist[d]++;
            max_seen = std::max(max_seen, d);

            total_hits++;
            std::uint64_t prev_req = lastReq[a];
            std::uint64_t ago = req - prev_req;
            out.hitsByRequestsAgo[std::min<std::uint64_t>(ago, 8)]++;
            if (ago > 0)
                cross_hits++;
            marks.add(p, -1);
        }
        marks.add(i, +1);
        lastPos[a] = i;
        lastReq[a] = req;
    }

    if (total_hits > 0)
        hist.resize(max_seen + 1);
    out.distanceHistogram = std::move(hist);
    out.crossRequestReuse =
        total_hits > 0 ? static_cast<double>(cross_hits) /
                             static_cast<double>(total_hits)
                       : 0;
    return out;
}

} // namespace ubik
