#include "trace/trace_analyzer.h"

#include <algorithm>

#include "common/log.h"

namespace ubik {

double
TraceAnalysis::apki() const
{
    return totalWork > 0
               ? static_cast<double>(accesses) / totalWork * 1000.0
               : 0;
}

std::uint64_t
TraceAnalysis::missesAtSize(std::uint64_t lines) const
{
    std::uint64_t m = coldMisses;
    for (std::uint64_t d = lines; d < distanceHistogram.size(); d++)
        m += distanceHistogram[d];
    return m;
}

double
TraceAnalysis::missRatioAtSize(std::uint64_t lines) const
{
    return accesses > 0
               ? static_cast<double>(missesAtSize(lines)) /
                     static_cast<double>(accesses)
               : 0;
}

MissCurve
TraceAnalysis::missCurve(std::size_t points,
                         std::uint64_t max_lines) const
{
    ubik_assert(points >= 2);
    std::uint64_t per_point = std::max<std::uint64_t>(
        1, max_lines / (points - 1));

    // One reverse suffix pass, then sample at each point's size.
    std::vector<double> vals(points, 0);
    std::uint64_t suffix = 0;
    std::int64_t next = static_cast<std::int64_t>(points) - 1;
    for (std::int64_t d =
             static_cast<std::int64_t>(distanceHistogram.size()) - 1;
         d >= 0; d--) {
        while (next >= 0 &&
               static_cast<std::uint64_t>(next) * per_point >
                   static_cast<std::uint64_t>(d))
            vals[next--] = static_cast<double>(suffix);
        suffix += distanceHistogram[d];
    }
    while (next >= 0)
        vals[next--] = static_cast<double>(suffix);
    for (double &v : vals)
        v += static_cast<double>(coldMisses);
    return MissCurve(std::move(vals), per_point);
}

// ---------------------------------------------------------------------------
// StackDistanceAnalyzer
// ---------------------------------------------------------------------------

void
StackDistanceAnalyzer::Fenwick::ensure(std::size_t n)
{
    if (n <= cap)
        return;
    std::size_t ncap = std::max<std::size_t>(1024, cap * 2);
    while (ncap < n)
        ncap *= 2;
    live.resize(ncap, 0);
    tree.assign(ncap + 1, 0);
    // O(n) rebuild: seed each node with its own mark, then push the
    // partial sum up to the parent — prefix sums come out identical
    // to a tree that was sized ncap from the start.
    for (std::size_t j = 1; j <= ncap; j++) {
        tree[j] += live[j - 1];
        std::size_t parent = j + (j & (~j + 1));
        if (parent <= ncap)
            tree[parent] += tree[j];
    }
    cap = ncap;
}

void
StackDistanceAnalyzer::Fenwick::add(std::size_t i, int delta)
{
    live[i] = static_cast<std::int8_t>(live[i] + delta);
    for (std::size_t j = i + 1; j <= cap; j += j & (~j + 1))
        tree[j] += delta;
}

std::int64_t
StackDistanceAnalyzer::Fenwick::prefix(std::size_t i) const
{
    std::int64_t s = 0;
    for (std::size_t j = i + 1; j > 0; j -= j & (~j + 1))
        s += tree[j];
    return s;
}

StackDistanceAnalyzer::StackDistanceAnalyzer(
    std::uint64_t max_tracked_distance)
    : maxTracked_(max_tracked_distance)
{
    out_.hitsByRequestsAgo.assign(9, 0);
}

void
StackDistanceAnalyzer::beginRequest(double instructions)
{
    ubik_assert(!finished_);
    if (anyRequest_)
        req_++;
    anyRequest_ = true;
    out_.requests++;
    out_.totalWork += instructions;
}

void
StackDistanceAnalyzer::access(Addr a)
{
    ubik_assert(!finished_);
    std::size_t i = pos_++;
    marks_.ensure(i + 1);
    out_.accesses++;

    auto it = lastPos_.find(a);
    if (it == lastPos_.end()) {
        out_.coldMisses++;
        out_.footprintLines++;
    } else {
        std::size_t p = it->second;
        // Distinct lines touched in (p, i): marks in [p+1, i-1],
        // i.e. prefix(i-1) - prefix(p).
        std::int64_t d64 =
            marks_.prefix(i > 0 ? i - 1 : 0) - marks_.prefix(p);
        ubik_assert(d64 >= 0);
        std::uint64_t d =
            std::min(static_cast<std::uint64_t>(d64), maxTracked_);
        if (d >= hist_.size())
            hist_.resize(d + 1, 0);
        hist_[d]++;
        maxSeen_ = std::max(maxSeen_, d);

        totalHits_++;
        std::uint64_t prev_req = lastReq_[a];
        std::uint64_t ago = req_ - prev_req;
        out_.hitsByRequestsAgo[std::min<std::uint64_t>(ago, 8)]++;
        if (ago > 0)
            crossHits_++;
        marks_.add(p, -1);
    }
    marks_.add(i, +1);
    lastPos_[a] = i;
    lastReq_[a] = req_;
}

TraceAnalysis
StackDistanceAnalyzer::finish()
{
    ubik_assert(!finished_);
    finished_ = true;
    if (totalHits_ > 0)
        hist_.resize(maxSeen_ + 1);
    out_.distanceHistogram = std::move(hist_);
    out_.crossRequestReuse =
        totalHits_ > 0 ? static_cast<double>(crossHits_) /
                             static_cast<double>(totalHits_)
                       : 0;
    return std::move(out_);
}

TraceAnalysis
analyzeTrace(const TraceData &trace, std::uint64_t max_tracked_distance)
{
    StackDistanceAnalyzer an(max_tracked_distance);
    std::uint64_t req = 0;
    for (std::size_t i = 0; i < trace.accesses.size(); i++) {
        while (req < trace.requestStart.size() &&
               trace.requestStart[req] == i)
            an.beginRequest(trace.requestWork[req++]);
        an.access(trace.accesses[i]);
    }
    while (req < trace.requestStart.size())
        an.beginRequest(trace.requestWork[req++]);
    return an.finish();
}

TraceAnalysis
analyzeTraceFile(const std::string &path,
                 std::uint64_t max_tracked_distance,
                 TraceReaderOptions opt)
{
    StackDistanceAnalyzer an(max_tracked_distance);
    TraceReader reader(path, opt);
    TraceBatch batch;
    while (reader.next(batch))
        forEachRecord(
            batch, [&](double work) { an.beginRequest(work); },
            [&](Addr a) { an.access(a); });
    return an.finish();
}

} // namespace ubik
