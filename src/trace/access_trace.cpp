#include "trace/access_trace.h"

#include <cstdio>
#include <cstring>

#include "common/log.h"

namespace ubik {

namespace {

constexpr char kMagic[4] = {'U', 'B', 'T', 'R'};
constexpr std::uint8_t kVersion = 1;

constexpr std::uint8_t kRecRequest = 0x01;
constexpr std::uint8_t kRecAccess = 0x02;
constexpr std::uint8_t kRecEnd = 0x03;

/** Zigzag encoding maps signed deltas onto small unsigned varints. */
std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** Cursor over a fully loaded file image. */
struct ByteReader
{
    const std::vector<std::uint8_t> &buf;
    std::size_t pos = 0;
    const std::string &path; // for error messages

    bool atEnd() const { return pos >= buf.size(); }

    std::uint8_t
    byte()
    {
        if (atEnd())
            fatal("trace %s: truncated (unexpected end of file)",
                  path.c_str());
        return buf[pos++];
    }

    double
    f64()
    {
        std::uint64_t bits = 0;
        for (int i = 0; i < 8; i++)
            bits |= static_cast<std::uint64_t>(byte()) << (8 * i);
        double v;
        std::memcpy(&v, &bits, sizeof(v)); // C++17: no std::bit_cast
        return v;
    }

    std::uint64_t
    varint()
    {
        std::uint64_t v = 0;
        int shift = 0;
        for (;;) {
            std::uint8_t b = byte();
            if (shift >= 63 && (b & 0x7e))
                fatal("trace %s: varint overflow at offset %zu",
                      path.c_str(), pos - 1);
            v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if (!(b & 0x80))
                return v;
            shift += 7;
        }
    }
};

} // namespace

std::uint64_t
TraceData::accessesOf(std::uint64_t i) const
{
    ubik_assert(i < requestStart.size());
    std::uint64_t end = i + 1 < requestStart.size()
                            ? requestStart[i + 1]
                            : accesses.size();
    return end - requestStart[i];
}

double
TraceData::totalWork() const
{
    double sum = 0;
    for (double w : requestWork)
        sum += w;
    return sum;
}

double
TraceData::apki() const
{
    double work = totalWork();
    return work > 0 ? static_cast<double>(accesses.size()) / work * 1000.0
                    : 0;
}

TraceWriter::TraceWriter(const std::string &path)
    : file_(std::fopen(path.c_str(), "wb")), path_(path)
{
    if (!file_)
        fatal("cannot open trace file %s for writing", path.c_str());
    std::fwrite(kMagic, 1, sizeof(kMagic), file_);
    putByte(kVersion);
}

TraceWriter::~TraceWriter()
{
    finish();
}

void
TraceWriter::putByte(std::uint8_t b)
{
    if (std::fputc(b, file_) == EOF)
        fatal("write error on trace file %s", path_.c_str());
}

void
TraceWriter::putVarint(std::uint64_t v)
{
    while (v >= 0x80) {
        putByte(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    putByte(static_cast<std::uint8_t>(v));
}

void
TraceWriter::putSvarint(std::int64_t v)
{
    putVarint(zigzag(v));
}

void
TraceWriter::putF64(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits)); // C++17: no std::bit_cast
    for (int i = 0; i < 8; i++)
        putByte(static_cast<std::uint8_t>(bits >> (8 * i)));
}

void
TraceWriter::beginRequest(double instructions)
{
    ubik_assert(!finished_);
    if (instructions < 0)
        instructions = 0;
    putByte(kRecRequest);
    putF64(instructions);
    requests_++;
}

void
TraceWriter::access(Addr line_addr)
{
    ubik_assert(!finished_);
    if (requests_ == 0)
        fatal("trace %s: access recorded before any beginRequest()",
              path_.c_str());
    putByte(kRecAccess);
    putSvarint(static_cast<std::int64_t>(line_addr) -
               static_cast<std::int64_t>(prevAddr_));
    prevAddr_ = line_addr;
    accesses_++;
}

void
TraceWriter::finish()
{
    if (finished_)
        return;
    putByte(kRecEnd);
    putVarint(requests_);
    putVarint(accesses_);
    std::fclose(file_);
    file_ = nullptr;
    finished_ = true;
}

TraceData
readTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open trace file %s", path.c_str());
    std::vector<std::uint8_t> buf;
    std::uint8_t chunk[1 << 16];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        buf.insert(buf.end(), chunk, chunk + n);
    std::fclose(f);

    ByteReader r{buf, 0, path};
    if (buf.size() < 5 || buf[0] != 'U' || buf[1] != 'B' ||
        buf[2] != 'T' || buf[3] != 'R')
        fatal("trace %s: bad magic (not a ubik trace)", path.c_str());
    r.pos = 4;
    std::uint8_t version = r.byte();
    if (version != kVersion)
        fatal("trace %s: unsupported version %u (expected %u)",
              path.c_str(), version, kVersion);

    TraceData td;
    Addr prev = 0;
    bool saw_end = false;
    while (!r.atEnd()) {
        std::uint8_t rec = r.byte();
        switch (rec) {
          case kRecRequest:
            td.requestWork.push_back(r.f64());
            td.requestStart.push_back(td.accesses.size());
            break;
          case kRecAccess: {
            if (td.requestWork.empty())
                fatal("trace %s: access before first request",
                      path.c_str());
            std::int64_t delta = unzigzag(r.varint());
            prev = static_cast<Addr>(
                static_cast<std::int64_t>(prev) + delta);
            td.accesses.push_back(prev);
            break;
          }
          case kRecEnd: {
            std::uint64_t reqs = r.varint();
            std::uint64_t accs = r.varint();
            if (reqs != td.requestWork.size() ||
                accs != td.accesses.size())
                fatal("trace %s: footer mismatch (%llu/%llu recorded "
                      "vs %zu/%zu parsed) — truncated capture?",
                      path.c_str(),
                      static_cast<unsigned long long>(reqs),
                      static_cast<unsigned long long>(accs),
                      td.requestWork.size(), td.accesses.size());
            saw_end = true;
            break;
          }
          default:
            fatal("trace %s: unknown record type 0x%02x at offset %zu",
                  path.c_str(), rec, r.pos - 1);
        }
        if (saw_end)
            break;
    }
    if (!saw_end)
        fatal("trace %s: missing END footer — truncated capture?",
              path.c_str());
    return td;
}

void
writeTrace(const TraceData &trace, const std::string &path)
{
    ubik_assert(trace.requestWork.size() == trace.requestStart.size());
    TraceWriter w(path);
    for (std::uint64_t i = 0; i < trace.requests(); i++) {
        w.beginRequest(trace.requestWork[i]);
        std::uint64_t begin = trace.requestStart[i];
        std::uint64_t end = i + 1 < trace.requests()
                                ? trace.requestStart[i + 1]
                                : trace.accesses.size();
        for (std::uint64_t a = begin; a < end; a++)
            w.access(trace.accesses[a]);
    }
    w.finish();
}

} // namespace ubik
