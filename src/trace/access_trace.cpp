#include "trace/access_trace.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "trace/trace_format.h"
#include "trace/trace_reader.h"
#include "common/failpoint.h"
#include "common/hash.h"
#include "common/log.h"

namespace ubik {

using namespace trace_format;

std::uint64_t
TraceData::accessesOf(std::uint64_t i) const
{
    ubik_assert(i < requestStart.size());
    std::uint64_t end = i + 1 < requestStart.size()
                            ? requestStart[i + 1]
                            : accesses.size();
    return end - requestStart[i];
}

double
TraceData::totalWork() const
{
    double sum = 0;
    for (double w : requestWork)
        sum += w;
    return sum;
}

double
TraceData::apki() const
{
    double work = totalWork();
    return work > 0 ? static_cast<double>(accesses.size()) / work * 1000.0
                    : 0;
}

TraceWriter::TraceWriter(const std::string &path, TraceWriterOptions opt)
    : file_(std::fopen(path.c_str(), "wb")), path_(path), opt_(opt)
{
    if (!file_)
        fatal("cannot open trace file %s for writing: %s",
              path.c_str(), std::strerror(errno));
    if (opt_.version != kVersionV1 && opt_.version != kVersionV2)
        fatal("trace %s: cannot write version %u (1 or 2)",
              path.c_str(), opt_.version);
    if (opt_.chunkBytes == 0)
        opt_.chunkBytes = 1;
    std::fwrite(kMagic, 1, sizeof(kMagic), file_);
    if (std::fputc(opt_.version, file_) == EOF)
        fatal("write error on trace file %s: %s", path_.c_str(),
              std::strerror(errno));
}

TraceWriter::~TraceWriter()
{
    finish();
}

void
TraceWriter::putByte(std::uint8_t b)
{
    // Trace capture has no graceful degradation: a trace missing
    // bytes is worthless, so the contract is fail-fast with the
    // precise cause. The failpoint lets tests prove the message.
    FailpointHit hit = failpointEval("trace.write");
    if (hit.kind == FailpointHit::Kind::Err)
        errno = hit.err;
    if (hit.kind == FailpointHit::Kind::Err ||
        std::fputc(b, file_) == EOF)
        fatal("write error on trace file %s: %s", path_.c_str(),
              std::strerror(errno));
}

void
TraceWriter::putFileVarint(std::uint64_t v)
{
    while (v >= 0x80) {
        putByte(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    putByte(static_cast<std::uint8_t>(v));
}

void
TraceWriter::putVarint(std::uint64_t v)
{
    while (v >= 0x80) {
        record(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    record(static_cast<std::uint8_t>(v));
}

void
TraceWriter::putF64(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; i++)
        record(static_cast<std::uint8_t>(bits >> (8 * i)));
}

void
TraceWriter::record(std::uint8_t b)
{
    if (opt_.version == kVersionV2)
        chunk_.push_back(b);
    else
        putByte(b);
}

void
TraceWriter::flushChunk()
{
    if (chunk_.empty())
        return;
    putByte(kRecChunk);
    // Chunk header varints go straight to the file, not the payload.
    putFileVarint(chunk_.size());
    putFileVarint(chunkRequests_);
    putFileVarint(chunkAccesses_);
    std::uint64_t h =
        fnv1a64Bytes(kFnvOffsetBasis, chunk_.data(), chunk_.size());
    for (int i = 0; i < 8; i++)
        putByte(static_cast<std::uint8_t>(h >> (8 * i)));
    FailpointHit hit = failpointEval("trace.write");
    if (hit.kind == FailpointHit::Kind::Err)
        errno = hit.err;
    if (hit.kind == FailpointHit::Kind::Err ||
        std::fwrite(chunk_.data(), 1, chunk_.size(), file_) !=
            chunk_.size())
        fatal("write error on trace file %s: %s", path_.c_str(),
              std::strerror(errno));
    chunk_.clear();
    chunkRequests_ = 0;
    chunkAccesses_ = 0;
    // Chunks are independently decodable: deltas restart from 0.
    prevAddr_ = 0;
}

void
TraceWriter::beginRequest(double instructions)
{
    ubik_assert(!finished_);
    if (instructions < 0)
        instructions = 0;
    record(kRecRequest);
    putF64(instructions);
    requests_++;
    chunkRequests_++;
    if (opt_.version == kVersionV2 && chunk_.size() >= opt_.chunkBytes)
        flushChunk();
}

void
TraceWriter::access(Addr line_addr)
{
    ubik_assert(!finished_);
    if (requests_ == 0)
        fatal("trace %s: access recorded before any beginRequest()",
              path_.c_str());
    record(kRecAccess);
    // Delta in modular (unsigned) arithmetic: extreme address jumps
    // wrap instead of tripping signed-overflow UB, and the reader's
    // modular add reverses this exactly.
    putVarint(zigzag(static_cast<std::int64_t>(line_addr - prevAddr_)));
    prevAddr_ = line_addr;
    accesses_++;
    chunkAccesses_++;
    if (opt_.version == kVersionV2 && chunk_.size() >= opt_.chunkBytes)
        flushChunk();
}

void
TraceWriter::finish()
{
    if (finished_)
        return;
    if (opt_.version == kVersionV2)
        flushChunk();
    putByte(kRecEnd);
    putFileVarint(requests_);
    putFileVarint(accesses_);
    std::fclose(file_);
    file_ = nullptr;
    finished_ = true;
}

TraceData
readTrace(const std::string &path)
{
    // Whole-file loads have no analysis to overlap with, so skip the
    // prefetch thread; the delivered records are identical either way.
    TraceReaderOptions opt;
    opt.prefetch = false;
    TraceReader reader(path, opt);
    TraceData td;
    TraceBatch batch;
    while (reader.next(batch))
        appendBatch(td, batch);
    return td;
}

void
writeTrace(const TraceData &trace, const std::string &path,
           TraceWriterOptions opt)
{
    ubik_assert(trace.requestWork.size() == trace.requestStart.size());
    TraceWriter w(path, opt);
    for (std::uint64_t i = 0; i < trace.requests(); i++) {
        w.beginRequest(trace.requestWork[i]);
        std::uint64_t begin = trace.requestStart[i];
        std::uint64_t end = i + 1 < trace.requests()
                                ? trace.requestStart[i + 1]
                                : trace.accesses.size();
        for (std::uint64_t a = begin; a < end; a++)
            w.access(trace.accesses[a]);
    }
    w.finish();
}

} // namespace ubik
