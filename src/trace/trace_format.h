/**
 * @file
 * Shared on-disk constants for the `.ubtr` trace format, used by the
 * writer (trace/access_trace.cpp) and the streaming reader
 * (trace/trace_reader.cpp). The format itself is documented in
 * trace/access_trace.h.
 */

#pragma once

#include <cstdint>

namespace ubik {
namespace trace_format {

constexpr char kMagic[4] = {'U', 'B', 'T', 'R'};

constexpr std::uint8_t kVersionV1 = 1;
constexpr std::uint8_t kVersionV2 = 2;

constexpr std::uint8_t kRecRequest = 0x01;
constexpr std::uint8_t kRecAccess = 0x02;
constexpr std::uint8_t kRecEnd = 0x03;
constexpr std::uint8_t kRecChunk = 0x04; ///< v2 only

/** Zigzag encoding maps signed deltas onto small unsigned varints. */
inline std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

} // namespace trace_format
} // namespace ubik
