/**
 * @file
 * Streaming, batched trace ingestion.
 *
 * The v1 reader loaded the whole file into memory and parsed it into
 * one TraceData; every consumer therefore paid O(file) memory and
 * start-up latency before the first record. TraceReader replaces that
 * path: it decodes fixed-size record batches on demand, optionally on
 * a prefetch thread that keeps one decoded batch ahead of the
 * consumer (double-buffering), so ingestion overlaps analysis and
 * memory stays bounded by one batch + one chunk regardless of trace
 * size. Decoding is strictly sequential in a single thread, so the
 * delivered batch stream is byte-identical with the prefetcher on or
 * off and at any batch size — streamed consumption of a trace is
 * bit-equivalent to the legacy whole-file load by construction.
 *
 * The reader accepts both on-disk formats (trace/access_trace.h):
 * v1 (a flat record stream) and the chunked v2 written by TraceWriter
 * (per-chunk record counts + checksums, independently decodable
 * chunks). Malformed input of either version — truncated varints,
 * overlong varints, bad checksums, count mismatches, missing END
 * footers — is reported through fatal() with a precise message, and
 * always from the consumer thread (never from the prefetcher), so
 * error behaviour is deterministic.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace ubik {

struct TraceData;

/**
 * One decoded batch: the record interleaving is preserved in
 * structure-of-arrays form. Request i of the batch begins at
 * `accesses[requestPos[i]]`; accesses before `requestPos[0]` (or the
 * whole batch, if it holds no request record) belong to the last
 * request of an earlier batch. Consecutive equal requestPos entries
 * are requests with no accesses of their own in this batch.
 */
struct TraceBatch
{
    /** REQUEST records in batch order (instruction counts). */
    std::vector<double> requestWork;

    /** Index into `accesses` where each request's accesses begin. */
    std::vector<std::uint64_t> requestPos;

    /** ACCESS records (line addresses) in batch order. */
    std::vector<Addr> accesses;

    std::uint64_t records() const
    {
        return requestWork.size() + accesses.size();
    }

    bool empty() const
    {
        return requestWork.empty() && accesses.empty();
    }

    void clear();
};

/** Ingestion knobs. The defaults suit bulk analysis. */
struct TraceReaderOptions
{
    /** Maximum records (REQUEST + ACCESS) per delivered batch. */
    std::size_t batchRecords = 1 << 16;

    /** Decode one batch ahead on a worker thread. Never changes the
     *  delivered records, only when the decode work happens. */
    bool prefetch = true;
};

/** Per-chunk metadata collected while reading a v2 trace. */
struct TraceChunkInfo
{
    std::uint64_t requests = 0;
    std::uint64_t accesses = 0;
    std::uint64_t payloadBytes = 0;
};

/** Append one delivered batch to an in-memory trace — the single
 *  canonical reassembly (readTrace, TraceApp::load, tools). */
void appendBatch(TraceData &td, const TraceBatch &batch);

/**
 * Walk one batch's records in stream order: `on_request(work)` at
 * each request boundary, `on_access(addr)` per access — the single
 * canonical interleaving (requests with no accesses of their own,
 * including ones trailing the batch's last access, are delivered in
 * place; accesses before the first boundary belong to the previous
 * batch's open request). Record-by-record consumers (the streaming
 * analyzer, format conversion) use this instead of re-deriving the
 * requestPos invariants.
 */
template <typename OnRequest, typename OnAccess>
void
forEachRecord(const TraceBatch &batch, OnRequest &&on_request,
              OnAccess &&on_access)
{
    std::size_t req = 0;
    for (std::size_t i = 0; i < batch.accesses.size(); i++) {
        while (req < batch.requestPos.size() &&
               batch.requestPos[req] == i)
            on_request(batch.requestWork[req++]);
        on_access(batch.accesses[i]);
    }
    while (req < batch.requestPos.size())
        on_request(batch.requestWork[req++]);
}

/** Streaming reader over one `.ubtr` file (v1 or v2). */
class TraceReader
{
  public:
    /** Opens `path`; fatal() on missing files or bad headers. */
    explicit TraceReader(const std::string &path,
                         TraceReaderOptions opt = {});
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /**
     * Decode the next batch into `out` (previous contents replaced).
     * @return false at clean end of trace (the END footer validated);
     *         fatal() on malformed input.
     */
    bool next(TraceBatch &out);

    /** On-disk format version (1 or 2). */
    std::uint8_t version() const;

    /** Records delivered so far (totals once next() returned false). */
    std::uint64_t requests() const;
    std::uint64_t accesses() const;

    /** Sum of delivered request instruction counts. */
    double totalWork() const;

    /** v2 chunks consumed so far (0 for v1 traces). */
    std::uint64_t chunks() const;

    /** Per-chunk metadata consumed so far (empty for v1). */
    const std::vector<TraceChunkInfo> &chunkInfo() const;

    /**
     * FNV-1a digest of the decoded logical record stream. Identical
     * for a v1 trace and its v2 conversion (the hash covers records,
     * not bytes); complete once next() has returned false. This is
     * the content hash ResultCache keys embed for trace-backed apps.
     */
    std::uint64_t contentHash() const;

    const std::string &path() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace ubik
