#include "trace/csv.h"

#include <algorithm>

#include "sim/cmp.h"
#include "common/log.h"

namespace ubik {

CsvWriter::CsvWriter(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "w");
    if (!file_)
        fatal("CsvWriter: cannot open '%s' for writing", path.c_str());
}

CsvWriter::~CsvWriter()
{
    if (file_)
        std::fclose(file_);
}

std::string
CsvWriter::quote(const std::string &cell) const
{
    if (cell.find_first_of(",\"\n\r") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); i++)
        std::fprintf(file_, "%s%s", i ? "," : "",
                     quote(cells[i]).c_str());
    std::fprintf(file_, "\n");
    rows_++;
}

void
CsvWriter::row(const std::vector<double> &cells)
{
    for (std::size_t i = 0; i < cells.size(); i++)
        std::fprintf(file_, "%s%.10g", i ? "," : "", cells[i]);
    std::fprintf(file_, "\n");
    rows_++;
}

void
writeAllocTrace(const std::vector<AllocSample> &trace,
                const std::string &path)
{
    CsvWriter csv(path);
    std::size_t parts =
        trace.empty() ? 0 : trace.front().targetLines.size();
    std::vector<std::string> header = {"cycle", "ms"};
    for (std::size_t p = 0; p < parts; p++)
        header.push_back("part" + std::to_string(p) + "_lines");
    csv.row(header);
    for (const AllocSample &s : trace) {
        std::vector<double> cells = {static_cast<double>(s.cycle),
                                     cyclesToMs(s.cycle)};
        for (std::uint64_t lines : s.targetLines)
            cells.push_back(static_cast<double>(lines));
        csv.row(cells);
    }
}

void
writeLatencyCdf(const LatencyRecorder &latencies, const std::string &path,
                std::size_t points)
{
    CsvWriter csv(path);
    csv.row(std::vector<std::string>{"latency_cycles", "latency_ms",
                                     "cdf"});
    if (latencies.empty())
        return;
    std::vector<Cycles> sorted = latencies.sorted();
    points = std::max<std::size_t>(2, std::min(points, sorted.size()));
    for (std::size_t i = 0; i < points; i++) {
        std::size_t idx = i * (sorted.size() - 1) / (points - 1);
        double cdf = static_cast<double>(idx + 1) /
                     static_cast<double>(sorted.size());
        csv.row(std::vector<double>{static_cast<double>(sorted[idx]),
                                    cyclesToMs(sorted[idx]), cdf});
    }
}

void
writeMissCurve(const MissCurve &curve, const std::string &path,
               double total_accesses)
{
    CsvWriter csv(path);
    if (total_accesses > 0)
        csv.row(std::vector<std::string>{"lines", "mb", "misses",
                                         "miss_ratio"});
    else
        csv.row(std::vector<std::string>{"lines", "mb", "misses"});
    for (std::size_t p = 0; p < curve.points(); p++) {
        double lines = static_cast<double>(p) *
                       static_cast<double>(curve.linesPerPoint());
        std::vector<double> row{lines, lines * 64 / 1e6,
                                curve.values()[p]};
        if (total_accesses > 0)
            row.push_back(curve.values()[p] / total_accesses);
        csv.row(row);
    }
}

} // namespace ubik
