/**
 * @file
 * Binary LLC access-trace format: capture, storage, and replay.
 *
 * The paper's workloads are proprietary binaries; this repo ships
 * calibrated synthetic models instead (DESIGN.md §2). The trace
 * subsystem closes the loop for downstream users with *real*
 * workloads: capture a per-line-address LLC access trace (from the
 * synthetic generators here, or converted from any external tool),
 * then feed it to TraceAnalyzer for exact miss curves and inertia
 * statistics, to UbikAdvisor for offline s_idle/s_boost sizing, and
 * to the simulator as a first-class TraceApp workload
 * (workload/trace_app.h).
 *
 * Record grammar (little-endian, varint-compressed):
 *
 *     0x01 REQUEST  f64le(instructions)         -- request boundary
 *     0x02 ACCESS   svarint(addr - prevAddr)    -- one LLC access
 *     0x03 END      varint(requests) varint(accesses)  -- footer
 *     0x04 CHUNK    varint(payloadBytes) varint(requests)
 *                   varint(accesses) u64le(fnv1a64 of payload)
 *                   <payload: REQUEST/ACCESS records>   -- v2 only
 *
 * v1 (magic "UBTR" + u8 1): a flat REQUEST/ACCESS stream terminated
 * by END. v2 (magic "UBTR" + u8 2, the default written format):
 * REQUEST/ACCESS records are grouped into CHUNK records carrying
 * their own record counts and checksum, with the address-delta base
 * reset to 0 at each chunk start, so every chunk is independently
 * decodable and corruption is localized and detected before any
 * record of the damaged chunk is believed. Both versions are read by
 * TraceReader (trace/trace_reader.h), which streams fixed-size
 * batches instead of materializing the file.
 *
 * Addresses are line addresses (byte address >> 6). Delta encoding
 * plus LEB128 varints compress typical streams to ~2 bytes/access.
 * The END footer carries redundant counts so truncation is detected.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace ubik {

/** One parsed trace, in memory. */
struct TraceData
{
    /** Per-request instruction counts, in arrival order. */
    std::vector<double> requestWork;

    /** Index into `accesses` where each request's accesses begin
     *  (parallel to requestWork; request i spans
     *  [requestStart[i], requestStart[i+1]) or to the end). */
    std::vector<std::uint64_t> requestStart;

    /** All line addresses, in program order. */
    std::vector<Addr> accesses;

    std::uint64_t requests() const { return requestWork.size(); }

    /** Accesses belonging to request i. */
    std::uint64_t accessesOf(std::uint64_t i) const;

    /** Total instructions over all requests. */
    double totalWork() const;

    /** LLC accesses per thousand instructions. */
    double apki() const;
};

/** On-disk format knobs for TraceWriter. */
struct TraceWriterOptions
{
    /** 2 (chunked, checksummed — the default) or 1 (legacy flat). */
    std::uint8_t version = 2;

    /** Target chunk payload size, bytes (v2 only). Smaller chunks
     *  localize corruption and parallelize poorly-cached reads;
     *  larger chunks compress deltas marginally better. */
    std::size_t chunkBytes = 64 << 10;
};

/** Streaming writer for the binary trace format. */
class TraceWriter
{
  public:
    /** Opens `path` for writing; fatal() if it cannot. */
    explicit TraceWriter(const std::string &path,
                         TraceWriterOptions opt = {});
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Begin a new request that will execute `instructions`. */
    void beginRequest(double instructions);

    /** Record one LLC access (line address). */
    void access(Addr line_addr);

    /** Write the footer and close; implied by the destructor. */
    void finish();

    std::uint64_t requests() const { return requests_; }
    std::uint64_t accesses() const { return accesses_; }

  private:
    void putByte(std::uint8_t b);
    void putFileVarint(std::uint64_t v); ///< straight to the file
    void putVarint(std::uint64_t v);     ///< routed through record()
    void putF64(double v);
    void record(std::uint8_t rec); ///< route a record byte (v2 buffers)
    void flushChunk();

    std::FILE *file_;
    std::string path_;
    TraceWriterOptions opt_;
    Addr prevAddr_ = 0;
    std::uint64_t requests_ = 0;
    std::uint64_t accesses_ = 0;
    bool finished_ = false;

    /** v2: pending chunk payload + its record counts. */
    std::vector<std::uint8_t> chunk_;
    std::uint64_t chunkRequests_ = 0;
    std::uint64_t chunkAccesses_ = 0;
};

/**
 * Load a binary trace (v1 or v2) from disk into memory, via the
 * streaming reader. fatal() on missing files, bad magic, unsupported
 * versions, corrupt varints, checksum failures, or footer/count
 * mismatches (truncated captures). Prefer TraceReader for large
 * traces — this materializes everything.
 */
TraceData readTrace(const std::string &path);

/** Serialize an in-memory trace to disk (convenience for tests and
 *  the capture helpers). Writes v2 unless `opt` says otherwise. */
void writeTrace(const TraceData &trace, const std::string &path,
                TraceWriterOptions opt = {});

} // namespace ubik
