/**
 * @file
 * Binary LLC access-trace format: capture, storage, and replay.
 *
 * The paper's workloads are proprietary binaries; this repo ships
 * calibrated synthetic models instead (DESIGN.md §2). The trace
 * subsystem closes the loop for downstream users with *real*
 * workloads: capture a per-line-address LLC access trace (from the
 * synthetic generators here, or converted from any external tool),
 * then feed it to TraceAnalyzer for exact miss curves and inertia
 * statistics, and to UbikAdvisor for offline s_idle/s_boost sizing.
 *
 * Format (little-endian, varint-compressed):
 *
 *   magic "UBTR" + u8 version (1)
 *   records:
 *     0x01 REQUEST  f64le(instructions)         -- request boundary
 *     0x02 ACCESS   svarint(addr - prevAddr)    -- one LLC access
 *     0x03 END      varint(requests) varint(accesses)  -- footer
 *
 * Addresses are line addresses (byte address >> 6). Delta encoding
 * plus LEB128 varints compress typical streams to ~2 bytes/access.
 * The END footer carries redundant counts so truncation is detected.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace ubik {

/** One parsed trace, in memory. */
struct TraceData
{
    /** Per-request instruction counts, in arrival order. */
    std::vector<double> requestWork;

    /** Index into `accesses` where each request's accesses begin
     *  (parallel to requestWork; request i spans
     *  [requestStart[i], requestStart[i+1]) or to the end). */
    std::vector<std::uint64_t> requestStart;

    /** All line addresses, in program order. */
    std::vector<Addr> accesses;

    std::uint64_t requests() const { return requestWork.size(); }

    /** Accesses belonging to request i. */
    std::uint64_t accessesOf(std::uint64_t i) const;

    /** Total instructions over all requests. */
    double totalWork() const;

    /** LLC accesses per thousand instructions. */
    double apki() const;
};

/** Streaming writer for the binary trace format. */
class TraceWriter
{
  public:
    /** Opens `path` for writing; fatal() if it cannot. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Begin a new request that will execute `instructions`. */
    void beginRequest(double instructions);

    /** Record one LLC access (line address). */
    void access(Addr line_addr);

    /** Write the footer and close; implied by the destructor. */
    void finish();

    std::uint64_t requests() const { return requests_; }
    std::uint64_t accesses() const { return accesses_; }

  private:
    void putByte(std::uint8_t b);
    void putVarint(std::uint64_t v);
    void putSvarint(std::int64_t v);
    void putF64(double v);

    std::FILE *file_;
    std::string path_;
    Addr prevAddr_ = 0;
    std::uint64_t requests_ = 0;
    std::uint64_t accesses_ = 0;
    bool finished_ = false;
};

/**
 * Load a binary trace from disk.
 * fatal() on missing files, bad magic, unsupported versions, corrupt
 * varints, or footer/count mismatches (truncated captures).
 */
TraceData readTrace(const std::string &path);

/** Serialize an in-memory trace to disk (convenience for tests and
 *  the capture helpers). */
void writeTrace(const TraceData &trace, const std::string &path);

} // namespace ubik
