/**
 * @file
 * Exact single-pass trace analysis: LRU miss curves via Mattson
 * stack distances, cross-request reuse (the paper's inertia signal,
 * Fig 2), and summary statistics.
 *
 * The stack-distance algorithm computes, for every access, how many
 * *distinct* lines were touched since the previous access to the
 * same line. An access with stack distance d hits in any fully-
 * associative LRU cache of more than d lines, so one O(N log N) pass
 * (hash map + Fenwick tree over access positions) yields the exact
 * miss count at *every* cache size simultaneously — the offline
 * ground truth the sampled UMON curves approximate.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "mon/miss_curve.h"
#include "trace/access_trace.h"
#include "common/types.h"

namespace ubik {

/** Everything one analysis pass produces. */
struct TraceAnalysis
{
    std::uint64_t accesses = 0;

    /** Accesses to never-before-seen lines (infinite distance). */
    std::uint64_t coldMisses = 0;

    /** Distinct lines touched (the trace's total footprint). */
    std::uint64_t footprintLines = 0;

    /**
     * histogram[d] = accesses with stack distance exactly d
     * (d < histogram.size(); cold misses are *not* included).
     * Misses at size S = coldMisses + sum of histogram[d] for d >= S.
     */
    std::vector<std::uint64_t> distanceHistogram;

    /** Fraction of hits (at infinite size) whose previous touch was
     *  in an earlier request — the paper's cross-request reuse. */
    double crossRequestReuse = 0;

    /** Hits (at infinite size) by how many requests ago the line was
     *  last touched: [0] = same request, ..., [8] = 8+ ago (Fig 2). */
    std::vector<std::uint64_t> hitsByRequestsAgo;

    /** Exact misses with an LRU cache of `lines` lines. */
    std::uint64_t missesAtSize(std::uint64_t lines) const;

    /** Exact miss ratio at `lines`. */
    double missRatioAtSize(std::uint64_t lines) const;

    /**
     * Exact miss curve sampled at `points` sizes up to `max_lines`
     * (the same shape UMONs estimate online, suitable for
     * TransientModel / UbikAdvisor).
     */
    MissCurve missCurve(std::size_t points,
                        std::uint64_t max_lines) const;
};

/**
 * Analyze a trace in one pass.
 * @param max_tracked_distance histogram resolution; accesses with
 *        larger distances are folded into the final bucket (they
 *        miss at every size of interest anyway)
 */
TraceAnalysis analyzeTrace(const TraceData &trace,
                           std::uint64_t max_tracked_distance = 1 << 22);

} // namespace ubik
