/**
 * @file
 * Exact single-pass trace analysis: LRU miss curves via Mattson
 * stack distances, cross-request reuse (the paper's inertia signal,
 * Fig 2), and summary statistics.
 *
 * The stack-distance algorithm computes, for every access, how many
 * *distinct* lines were touched since the previous access to the
 * same line. An access with stack distance d hits in any fully-
 * associative LRU cache of more than d lines, so one O(N log N) pass
 * (hash map + Fenwick tree over access positions) yields the exact
 * miss count at *every* cache size simultaneously — the offline
 * ground truth the sampled UMON curves approximate.
 *
 * The pass is incremental (StackDistanceAnalyzer): records can be
 * pushed one at a time, so the analyzer consumes streamed TraceReader
 * batches without ever materializing the trace —
 * analyzeTraceFile() is the whole-pipeline entry point, and
 * analyzeTrace() remains for in-memory TraceData. Both produce
 * identical TraceAnalysis values for the same record stream.
 */

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mon/miss_curve.h"
#include "trace/access_trace.h"
#include "trace/trace_reader.h"
#include "common/types.h"

namespace ubik {

/** Everything one analysis pass produces. */
struct TraceAnalysis
{
    std::uint64_t accesses = 0;

    /** Requests in the analyzed stream. */
    std::uint64_t requests = 0;

    /** Total instructions over all requests. */
    double totalWork = 0;

    /** Accesses to never-before-seen lines (infinite distance). */
    std::uint64_t coldMisses = 0;

    /** Distinct lines touched (the trace's total footprint). */
    std::uint64_t footprintLines = 0;

    /**
     * histogram[d] = accesses with stack distance exactly d
     * (d < histogram.size(); cold misses are *not* included).
     * Misses at size S = coldMisses + sum of histogram[d] for d >= S.
     */
    std::vector<std::uint64_t> distanceHistogram;

    /** Fraction of hits (at infinite size) whose previous touch was
     *  in an earlier request — the paper's cross-request reuse. */
    double crossRequestReuse = 0;

    /** Hits (at infinite size) by how many requests ago the line was
     *  last touched: [0] = same request, ..., [8] = 8+ ago (Fig 2). */
    std::vector<std::uint64_t> hitsByRequestsAgo;

    /** LLC accesses per thousand instructions. */
    double apki() const;

    /** Exact misses with an LRU cache of `lines` lines. */
    std::uint64_t missesAtSize(std::uint64_t lines) const;

    /** Exact miss ratio at `lines`. */
    double missRatioAtSize(std::uint64_t lines) const;

    /**
     * Exact miss curve sampled at `points` sizes up to `max_lines`
     * (the same shape UMONs estimate online, suitable for
     * TransientModel / UbikAdvisor).
     */
    MissCurve missCurve(std::size_t points,
                        std::uint64_t max_lines) const;
};

/**
 * Incremental Mattson pass. Feed records in stream order —
 * beginRequest() at each request boundary, access() per LLC access —
 * then call finish() once. The Fenwick tree over access positions
 * grows geometrically as records arrive (amortized O(1) per access),
 * so the analyzer never needs the stream length up front.
 */
class StackDistanceAnalyzer
{
  public:
    /**
     * @param max_tracked_distance histogram resolution; accesses with
     *        larger distances fold into the final bucket (they miss
     *        at every size of interest anyway)
     */
    explicit StackDistanceAnalyzer(
        std::uint64_t max_tracked_distance = 1 << 22);

    void beginRequest(double instructions);
    void access(Addr line_addr);

    /** Finalize; the analyzer must not be fed afterwards. */
    TraceAnalysis finish();

  private:
    /** Fenwick tree over access positions that grows on demand:
     *  doubling rebuilds from the kept live-mark bitmap, so prefix
     *  sums match a statically-sized tree exactly. */
    struct Fenwick
    {
        void ensure(std::size_t n);
        void add(std::size_t i, int delta);
        std::int64_t prefix(std::size_t i) const;

        std::vector<std::int64_t> tree;
        std::vector<std::int8_t> live;
        std::size_t cap = 0;
    };

    std::uint64_t maxTracked_;
    TraceAnalysis out_;
    Fenwick marks_;
    std::unordered_map<Addr, std::size_t> lastPos_;
    std::unordered_map<Addr, std::uint64_t> lastReq_;
    std::vector<std::uint64_t> hist_;
    std::uint64_t maxSeen_ = 0;
    std::uint64_t req_ = 0;
    bool anyRequest_ = false;
    std::size_t pos_ = 0;
    std::uint64_t crossHits_ = 0;
    std::uint64_t totalHits_ = 0;
    bool finished_ = false;
};

/**
 * Analyze an in-memory trace in one pass.
 */
TraceAnalysis analyzeTrace(const TraceData &trace,
                           std::uint64_t max_tracked_distance = 1 << 22);

/**
 * Analyze a trace file by streaming it through TraceReader — the
 * file is never materialized. Identical results to
 * analyzeTrace(readTrace(path)) at any batch size, prefetch on or
 * off.
 */
TraceAnalysis analyzeTraceFile(const std::string &path,
                               std::uint64_t max_tracked_distance = 1
                                                                    << 22,
                               TraceReaderOptions opt = {});

} // namespace ubik
