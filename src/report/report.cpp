#include "report/report.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "common/json.h"
#include "common/log.h"
#include "sim/result_cache.h"
#include "stats/streaming_stats.h"
#include "trace/csv.h"
#include "workload/mix.h"

namespace ubik {

const char *
loadBandName(LoadBand band)
{
    switch (band) {
      case LoadBand::All:
        return "all";
      case LoadBand::Low:
        return "low";
      case LoadBand::High:
        return "high";
    }
    panic("bad LoadBand");
}

bool
tryLoadBandFromName(const std::string &name, LoadBand &out)
{
    for (LoadBand b : {LoadBand::All, LoadBand::Low, LoadBand::High}) {
        if (name == loadBandName(b)) {
            out = b;
            return true;
        }
    }
    return false;
}

std::vector<SweepResult>
filterByLoad(const std::vector<SweepResult> &sweeps, LoadBand band)
{
    if (band == LoadBand::All)
        return sweeps;
    std::vector<SweepResult> out;
    for (const auto &s : sweeps) {
        ubik_assert(s.mixLoads.size() == s.runs.size());
        SweepResult p;
        p.label = s.label;
        for (std::size_t i = 0; i < s.runs.size(); i++) {
            bool low = isLowLoad(s.mixLoads[i]);
            if (low != (band == LoadBand::Low))
                continue;
            p.runs.push_back(s.runs[i]);
            p.mixNames.push_back(s.mixNames[i]);
            p.mixLoads.push_back(s.mixLoads[i]);
            if (i < s.seeds.size())
                p.seeds.push_back(s.seeds[i]);
        }
        out.push_back(std::move(p));
    }
    return out;
}

namespace {

/** One sorted-metric quantile row per scheme. An empty sweep prints
 *  zeros (a filtered-out band, or a sweep over zero mixes) instead
 *  of indexing v[-1]. */
void
printQuantileRows(const std::vector<SweepResult> &sweeps,
                  double MixRunResult::*metric, bool descending)
{
    std::printf("%-14s", "scheme");
    for (int q = 0; q <= 10; q++)
        std::printf(" %6d%%", q * 10);
    std::printf("\n");
    for (const auto &s : sweeps) {
        std::vector<double> v;
        for (const auto &r : s.runs)
            v.push_back(r.*metric);
        if (descending)
            std::sort(v.begin(), v.end(), std::greater<double>());
        else
            std::sort(v.begin(), v.end());
        std::printf("%-14s", s.label.c_str());
        for (int q = 0; q <= 10; q++) {
            double val = 0.0;
            if (!v.empty()) {
                std::size_t i = std::min(
                    v.size() - 1,
                    static_cast<std::size_t>(q) * (v.size() - 1) / 10);
                val = v[i];
            }
            std::printf(" %6.2f", val);
        }
        std::printf("\n");
    }
}

} // namespace

void
printDistributions(const std::vector<SweepResult> &sweeps,
                   const char *tag)
{
    std::printf("\n[%s] tail-latency degradation distribution "
                "(sorted worst->best)\n",
                tag);
    printQuantileRows(sweeps, &MixRunResult::tailDegradation,
                      /*descending=*/true);
    std::printf("\n[%s] weighted speedup distribution "
                "(sorted worst->best)\n",
                tag);
    printQuantileRows(sweeps, &MixRunResult::weightedSpeedup,
                      /*descending=*/false);
}

void
exportCsv(const std::vector<SweepResult> &sweeps, const char *tag,
          const std::string &dir)
{
    CsvWriter csv(dir + "/" + tag + "_runs.csv");
    csv.row(std::vector<std::string>{"scheme", "mix",
                                     "tail_degradation",
                                     "mean_degradation",
                                     "weighted_speedup"});
    for (const auto &s : sweeps) {
        for (std::size_t i = 0; i < s.runs.size(); i++) {
            const MixRunResult &r = s.runs[i];
            char td[32], md[32], ws[32];
            std::snprintf(td, sizeof(td), "%.6f", r.tailDegradation);
            std::snprintf(md, sizeof(md), "%.6f", r.meanDegradation);
            std::snprintf(ws, sizeof(ws), "%.6f", r.weightedSpeedup);
            csv.row(std::vector<std::string>{s.label, s.mixNames[i],
                                             td, md, ws});
        }
    }
    std::fprintf(stderr, "  [%s] wrote %s/%s_runs.csv\n", tag,
                 dir.c_str(), tag);
}

void
maybeExportCsv(const std::vector<SweepResult> &sweeps, const char *tag)
{
    const char *dir = std::getenv("UBIK_CSV_DIR");
    if (!dir || !*dir)
        return;
    exportCsv(sweeps, tag, dir);
}

void
printAverages(const std::vector<SweepResult> &sweeps, const char *tag)
{
    maybeExportCsv(sweeps, tag);
    std::printf("\n[%s] averages\n", tag);
    std::printf("%-14s %22s %22s %18s\n", "scheme",
                "avg tail degradation", "worst tail degradation",
                "avg wspeedup");
    for (const auto &s : sweeps) {
        StreamingStats tail, ws;
        for (const auto &r : s.runs) {
            tail.add(r.tailDegradation);
            ws.add(r.weightedSpeedup);
        }
        std::printf("%-14s %21.3fx %21.3fx %16.1f%%\n",
                    s.label.c_str(), tail.mean(), tail.max(),
                    (ws.mean() - 1.0) * 100.0);
    }
}

void
printPerApp(const std::vector<SweepResult> &sweeps, const char *tag)
{
    std::printf("\n[%s] per-app breakdown "
                "(tail degradation: overall/worst | wspeedup avg)\n",
                tag);
    std::printf("%-18s", "app/load");
    for (const auto &s : sweeps)
        std::printf(" %20s", s.label.c_str());
    std::printf("\n");
    // Group rows by the "<app>-<lo|hi>/" prefix of the mix name.
    std::vector<std::string> keys;
    for (const auto &s : sweeps)
        for (const auto &name : s.mixNames) {
            std::string key = name.substr(0, name.find('/'));
            if (std::find(keys.begin(), keys.end(), key) ==
                keys.end())
                keys.push_back(key);
        }
    for (const auto &key : keys) {
        std::printf("%-18s", key.c_str());
        for (const auto &s : sweeps) {
            StreamingStats tail, ws;
            for (std::size_t i = 0; i < s.runs.size(); i++) {
                if (s.mixNames[i].rfind(key + "/", 0) != 0)
                    continue;
                tail.add(s.runs[i].tailDegradation);
                ws.add(s.runs[i].weightedSpeedup);
            }
            std::printf("   %5.2f/%5.2f | %5.2f", tail.mean(),
                        tail.max(), ws.mean());
        }
        std::printf("\n");
    }
}

void
printUbikInterrupts(const std::vector<SweepResult> &sweeps,
                    const char *tag)
{
    std::printf("\n[%s] de-boost interrupt mix per scheme "
                "(totals over all runs)\n",
                tag);
    std::printf("%-22s %14s %14s %12s\n", "scheme", "early-recovery",
                "deadline-wait", "watermark");
    for (const auto &s : sweeps) {
        std::uint64_t early = 0, deadline = 0, wm = 0;
        for (const auto &r : s.runs) {
            early += r.ubikDeboosts;
            deadline += r.ubikDeadlineDeboosts;
            wm += r.ubikWatermarks;
        }
        std::printf("%-22s %14llu %14llu %12llu\n", s.label.c_str(),
                    static_cast<unsigned long long>(early),
                    static_cast<unsigned long long>(deadline),
                    static_cast<unsigned long long>(wm));
    }
}

Json
resultsToJson(const std::vector<SweepResult> &sweeps,
              const std::string &scenario)
{
    Json root = Json::object();
    root.set("format", "ubik-results");
    root.set("version", 1);
    if (!scenario.empty())
        root.set("scenario", scenario);
    Json jsweeps = Json::array();
    for (const auto &s : sweeps) {
        Json js = Json::object();
        js.set("scheme", s.label);
        Json jruns = Json::array();
        for (std::size_t i = 0; i < s.runs.size(); i++) {
            const MixRunResult &r = s.runs[i];
            Json jr = Json::object();
            jr.set("mix", s.mixNames[i]);
            if (i < s.mixLoads.size())
                jr.set("load", s.mixLoads[i]);
            if (i < s.seeds.size())
                jr.set("seed", s.seeds[i]);
            jr.set("lc_tail_mean", r.lcTailMean);
            jr.set("tail_degradation", r.tailDegradation);
            jr.set("mean_degradation", r.meanDegradation);
            jr.set("weighted_speedup", r.weightedSpeedup);
            Json bs = Json::array();
            for (double v : r.batchSpeedups)
                bs.push(v);
            jr.set("batch_speedups", std::move(bs));
            jr.set("ubik_deboosts", r.ubikDeboosts);
            jr.set("ubik_deadline_deboosts", r.ubikDeadlineDeboosts);
            jr.set("ubik_watermarks", r.ubikWatermarks);
            jruns.push(std::move(jr));
        }
        js.set("runs", std::move(jruns));
        jsweeps.push(std::move(js));
    }
    root.set("sweeps", std::move(jsweeps));
    return root;
}

void
writeJsonFile(const Json &doc, const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("cannot write results to %s", path.c_str());
    out << doc.dump(/*pretty=*/true) << "\n";
    if (!out.flush())
        fatal("short write to %s", path.c_str());
}

void
writeResultsJson(const std::vector<SweepResult> &sweeps,
                 const std::string &scenario, const std::string &path)
{
    writeJsonFile(resultsToJson(sweeps, scenario), path);
}

void
printCacheStats(const ResultCache &cache, std::FILE *out)
{
    CacheStats st = cache.stats();
    std::fprintf(out,
                 "  [cache] %s: %llu hits (%llu mix), %llu misses "
                 "(%llu mix), %llu stores, %llu stale evicted, "
                 "%llu corrupt dropped, %llu claims live, "
                 "%llu claims reclaimed\n",
                 cache.dir().c_str(),
                 static_cast<unsigned long long>(st.hits),
                 static_cast<unsigned long long>(st.mixHits),
                 static_cast<unsigned long long>(st.misses),
                 static_cast<unsigned long long>(st.mixMisses),
                 static_cast<unsigned long long>(st.stores),
                 static_cast<unsigned long long>(st.evicted),
                 static_cast<unsigned long long>(st.corrupt),
                 static_cast<unsigned long long>(st.claimsLive),
                 static_cast<unsigned long long>(st.claimsGced));
    // Degradation accounting on its own line, printed only when
    // anything actually retried or degraded: the common clean run
    // keeps its familiar single [cache] line.
    if (st.degraded() == 0 && st.appendRetries == 0)
        return;
    std::fprintf(out,
                 "  [cache-degraded] %s: %llu append retries, "
                 "%llu stores dropped, %llu fsync degraded, "
                 "%llu refresh degraded, %llu heartbeat releases, "
                 "%llu solo fallbacks\n",
                 cache.dir().c_str(),
                 static_cast<unsigned long long>(st.appendRetries),
                 static_cast<unsigned long long>(st.storesDropped),
                 static_cast<unsigned long long>(st.fsyncDegraded),
                 static_cast<unsigned long long>(st.refreshDegraded),
                 static_cast<unsigned long long>(st.hbReleases),
                 static_cast<unsigned long long>(st.soloFallbacks));
}

} // namespace ubik
