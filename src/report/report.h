/**
 * @file
 * Report layer: renders sweep results as the paper's tables and
 * figures (distribution rows, averages, per-app breakdowns), as CSV
 * for plotting, and as structured JSON for machine consumers.
 *
 * Extracted from bench/bench_util.h so scenarios (sim/scenario.h)
 * select report blocks as *data* and the `ubik_run` driver renders
 * them — benches, the CLI tools, and CI all print through the same
 * code. Every text block emits machine-readable rows prefixed by a
 * caller-chosen tag so output can be grepped into plotting scripts;
 * results never need to match the paper's absolute numbers
 * (different substrate) — the *shape* (orderings, crossovers, rough
 * factors) is the reproduction target.
 *
 * The JSON export writes doubles in round-trip form, so bit-identical
 * sweeps produce byte-identical files — `diff` is a determinism
 * check (CI diffs a warm-cache rerun against the cold run).
 */

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/json.h"
#include "sim/mix_runner.h"

namespace ubik {

class ResultCache;

/** All results one scheme produced over a mix sweep, with the mix
 *  metadata reports group and filter on. The four vectors are
 *  parallel: entry i is one (mix, seed) run. */
struct SweepResult
{
    std::string label; ///< scheme label (SchemeUnderTest::label)
    std::vector<MixRunResult> runs;
    std::vector<std::string> mixNames;
    std::vector<double> mixLoads;      ///< offered LC load per run
    std::vector<std::uint64_t> seeds;  ///< seed per run
};

/** Load bands reports (and scenario mix selection) filter on; the
 *  boundary matches the "-lo"/"-hi" mix-name tags (workload/mix.h's
 *  isLowLoad). */
enum class LoadBand
{
    All,
    Low,
    High,
};

/** Canonical band names ("all", "low", "high"). */
const char *loadBandName(LoadBand band);
bool tryLoadBandFromName(const std::string &name, LoadBand &out);

/** The subset of each sweep's runs whose mix load falls in `band`,
 *  selected on structured mix metadata (mixLoads), not name
 *  substrings. */
std::vector<SweepResult>
filterByLoad(const std::vector<SweepResult> &sweeps, LoadBand band);

/** Fig 9/13-style distribution dump: per scheme, runs sorted worst
 *  to best, printed at evenly spaced quantiles. */
void printDistributions(const std::vector<SweepResult> &sweeps,
                        const char *tag);

/** Table 3-style averages (also exports CSV when UBIK_CSV_DIR is
 *  set, matching the legacy bench behaviour). */
void printAverages(const std::vector<SweepResult> &sweeps,
                   const char *tag);

/** Fig 10/11-style per-LC-app breakdown: overall + worst-mix tail
 *  degradation and average weighted speedup. */
void printPerApp(const std::vector<SweepResult> &sweeps,
                 const char *tag);

/** De-boost interrupt mix per scheme (the accurate-de-boosting
 *  ablation; zero rows for non-Ubik policies). */
void printUbikInterrupts(const std::vector<SweepResult> &sweeps,
                         const char *tag);

/** Write every (scheme, mix, seed) run as <dir>/<tag>_runs.csv. */
void exportCsv(const std::vector<SweepResult> &sweeps, const char *tag,
               const std::string &dir);

/** exportCsv() into UBIK_CSV_DIR if set; no-op otherwise. */
void maybeExportCsv(const std::vector<SweepResult> &sweeps,
                    const char *tag);

/**
 * The structured-results document as a JSON value: per scheme, per
 * run, the mix name/load/seed and every MixRunResult field, doubles
 * in round-trip form (bit-identical results => byte-identical
 * serializations). The file writer and the serving daemon both
 * render this one construction, so their outputs agree byte for
 * byte. `scenario` labels the export (empty = omitted).
 */
Json resultsToJson(const std::vector<SweepResult> &sweeps,
                   const std::string &scenario);

/** Write `doc` pretty-printed plus a trailing newline to `path`
 *  (binary mode); fatal() on open or flush failure. */
void writeJsonFile(const Json &doc, const std::string &path);

/** writeJsonFile(resultsToJson(sweeps, scenario), path). */
void writeResultsJson(const std::vector<SweepResult> &sweeps,
                      const std::string &scenario,
                      const std::string &path);

/** Print a ResultCache's counters (sweep epilogue, --cache-stats). */
void printCacheStats(const ResultCache &cache, std::FILE *out = stderr);

} // namespace ubik
