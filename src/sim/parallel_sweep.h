/**
 * @file
 * Parallel experiment engine: execute a vector of independent run
 * descriptors (scheme x mix x load x seed) across all cores.
 *
 * The engine is deterministic by construction. Every descriptor names
 * its own seed, every job draws randomness only from that seed (jobs
 * needing a whole generator can split one off with Rng::jobStream),
 * and every result lands in the slot
 * indexed by its descriptor, so the output vector is bit-identical to
 * a sequential execution regardless of worker count or scheduling
 * order. Baselines are pre-warmed in a parallel phase of their own:
 * they too are pure functions of (app, load, seed), so concurrent
 * computation cannot change their values — pre-warming only removes
 * redundant work from the mix phase.
 *
 * Worker count comes from the UBIK_JOBS environment variable (default
 * all cores; 1 recovers the legacy sequential path on the calling
 * thread).
 *
 * Execution is delegated to a SweepExecutor (sim/sweep_executor.h):
 * the in-process JobPool path by default, or — via enableFleet — a
 * work-claiming executor that lets N independent processes sharing
 * one cache directory cooperatively fill a single sweep matrix.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sim/job_pool.h"
#include "sim/mix_runner.h"

namespace ubik {

/** One independent experiment: a mix under a scheme with a seed. */
struct SweepJob
{
    MixSpec mix;
    SchemeUnderTest sut;
    std::uint64_t seed = 1;

    /** Caller cookie (e.g. index into a scheme table); the engine
     *  never interprets it. */
    std::uint64_t tag = 0;
};

/** Sweep progress snapshot handed to the run() callback. */
struct SweepProgress
{
    /** Jobs finished so far (hits + computed + remote). */
    std::size_t done = 0;
    std::size_t total = 0; ///< jobs in the sweep

    /** Of `done`: served from the persistent result cache up front. */
    std::size_t hits = 0;

    /** Of `done`: actually simulated this run. */
    std::size_t computed = 0;

    /** Of `done`: published mid-sweep by a fleet peer sharing the
     *  cache directory (always 0 outside fleet mode). */
    std::size_t remote = 0;

    /** Wall-clock seconds since run() started (prewarm included);
     *  purely informational — never part of any result. */
    double elapsedSec = 0;
};

/** Fleet-mode knobs (ParallelSweep::enableFleet). */
struct FleetOptions
{
    /** Lease owner identity; empty defers to ClaimStore::defaultOwner
     *  (host + pid). Distinct per cooperating process. */
    std::string workerId;

    /** Lease age beyond which a worker is presumed dead and its
     *  in-flight items are reclaimed by peers. */
    double leaseTtlSec = 60.0;

    /** Poll backoff while peers hold the remaining leases: starts at
     *  pollSec, doubles to pollMaxSec while nothing changes. */
    double pollSec = 0.05;
    double pollMaxSec = 1.0;
};

/** Executes SweepJob batches through a shared MixRunner. */
class ParallelSweep
{
  public:
    /**
     * @param runner shared (thread-safe) methodology layer
     * @param workers worker count; 0 defers to UBIK_JOBS / all cores
     */
    explicit ParallelSweep(MixRunner &runner, unsigned workers = 0);

    /** Worker count the engine executes with. */
    unsigned workers() const { return pool_.workers(); }

    /**
     * Serve cache hits from `cache` (not owned; null detaches) before
     * submitting jobs, and store computed results back. Values
     * round-trip bit-exactly, so a warm sweep equals the cold one.
     * Attach the same cache to the runner (MixRunner::attachCache) to
     * persist baselines too.
     */
    void attachCache(ResultCache *cache) { cache_ = cache; }

    /**
     * Fleet mode: execute cache misses through the work-claiming
     * FleetExecutor (sim/sweep_executor.h) so N processes sharing the
     * attached cache directory partition one sweep between them.
     * Requires an attached cache (run() fatals otherwise); put the
     * cache in durable mode so "claim released" implies "result on
     * disk". Results stay bit-identical to the single-process path.
     */
    void enableFleet(const FleetOptions &opt);

    /**
     * Run every job and return results in job order. Results are
     * bit-identical across worker counts, across cache states (cold,
     * warm, or mixed), and across fleet sizes. If `on_done` is set it
     * is called once after the cache-hit scan (when any job hit) and
     * then once per filled job; deliveries are serialized under a
     * mutex with monotonically increasing `done`, so a stateful
     * callback needs no locking of its own.
     */
    std::vector<MixRunResult>
    run(const std::vector<SweepJob> &jobs,
        const std::function<void(const SweepProgress &)> &on_done =
            nullptr);

    /**
     * Compute every LC and batch baseline the jobs will need, in
     * parallel, so the mix phase hits only warm caches. run() calls
     * this itself; it is public for benches that use the baselines
     * directly (e.g. Fig 1 latency curves).
     */
    void prewarmBaselines(const std::vector<SweepJob> &jobs);

    /** The underlying pool, for auxiliary parallel phases. */
    JobPool &pool() { return pool_; }

  private:
    MixRunner &runner_;
    JobPool pool_;
    ResultCache *cache_ = nullptr; ///< optional persistent store
    bool fleet_ = false;
    FleetOptions fleetOpt_;
};

/**
 * Expand the cross product schemes x mixes x seeds (seed values
 * 1..seeds, matching the legacy sweep loops) into jobs tagged with
 * their scheme index, in the same order the sequential loops ran them.
 */
std::vector<SweepJob>
buildSweepJobs(const std::vector<SchemeUnderTest> &schemes,
               const std::vector<MixSpec> &mixes, std::uint32_t seeds);

} // namespace ubik
