/**
 * @file
 * The single string<->enum map for every user-facing kind: policies,
 * partition-enforcement schemes, array organizations, memory models,
 * and batch classes.
 *
 * The forward direction (enum -> canonical name) lives with each
 * enum (sim/cmp.h, mem/memory_system.h, workload/batch_app.h); this
 * header owns the reverse direction, which used to be duplicated ad
 * hoc in tools/ubik_cli.cpp. The scenario JSON layer (sim/scenario.h),
 * the CLI tools, and the result-cache key encoding all parse and
 * print kinds through these functions, so a name accepted anywhere
 * is accepted everywhere and cache keys stay grep-able.
 *
 * Each kind has a try-variant (returns false on unknown names, for
 * callers that produce their own errors) and a fatal()-ing variant
 * that lists the accepted spellings.
 */

#pragma once

#include <string>

#include "sim/cmp.h"
#include "workload/batch_app.h"

namespace ubik {

/** "LRU", "UCP", "StaticLC", "OnOff", "Ubik", "Feedback". */
bool tryPolicyKindFromName(const std::string &name, PolicyKind &out);
PolicyKind policyKindFromName(const std::string &name);

/** "Z4/52" (alias "zcache"), "SA16", "SA64". */
bool tryArrayKindFromName(const std::string &name, ArrayKind &out);
ArrayKind arrayKindFromName(const std::string &name);

/** "LRU", "Vantage", "WayPart". */
bool trySchemeKindFromName(const std::string &name, SchemeKind &out);
SchemeKind schemeKindFromName(const std::string &name);

/**
 * schemeKindFromName() plus the CLI's "auto" spelling: LRU policy
 * runs unpartitioned, everything else runs under Vantage.
 */
SchemeKind schemeKindFromNameOrAuto(const std::string &name,
                                    PolicyKind policy);

/** "fixed", "contended", "partitioned". */
bool tryMemKindFromName(const std::string &name, MemKind &out);
MemKind memKindFromName(const std::string &name);

/** Single-letter class codes: tryBatchClassFromCode never dies, the
 *  code/fromCode pair in workload/batch_app.h stays the fatal path. */
bool tryBatchClassFromCode(char code, BatchClass &out);

} // namespace ubik
