/**
 * @file
 * Fixed-work mix methodology (§6): calibration, baselines, and mix
 * runs, with result caching so the evaluation benches stay tractable.
 *
 * Per the paper:
 *  - each LC app is first run alone on a private 2MB-equivalent LLC
 *    in closed loop to find its mean service time, from which the
 *    request rates for 20% and 60% load follow (lambda = load / mu);
 *  - the target tail latency (and Ubik's deadline, the 95th pct
 *    latency) come from an open-loop run alone at that rate;
 *  - batch apps are run alone on the private LLC for their baseline
 *    IPC;
 *  - the mix then runs 3 LC instances + 3 batch apps on the shared
 *    LLC under a given scheme/policy, reporting tail-latency
 *    degradation (vs the private baseline) and weighted speedup.
 */

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/cmp.h"
#include "sim/experiment.h"
#include "workload/mix.h"

namespace ubik {

class ResultCache;

/** Baseline characteristics of one LC app at one load. */
struct LcBaseline
{
    double meanServiceCycles = 0; ///< closed-loop mean service time
    double meanInterarrival = 0;  ///< cycles, for the given load
    double meanLatency = 0;       ///< open-loop mean latency
    double tailMean = 0;          ///< paper tail metric (95th)
    Cycles p95 = 0;               ///< Ubik's deadline
};

/** What one mix run under one scheme produced. */
struct MixRunResult
{
    /** 95th-pct tail mean across the three LC instances, cycles. */
    double lcTailMean = 0;

    /** lcTailMean / baseline tail mean (paper Fig 9/10 y-axis). */
    double tailDegradation = 0;

    /** Mean LC latency degradation (for comparison). */
    double meanDegradation = 0;

    /** (sum IPC_i / IPC_i,alone) / N over the batch apps. */
    double weightedSpeedup = 0;

    /** Per-batch-app speedups. */
    std::vector<double> batchSpeedups;

    /** Ubik runs only: interrupt counts from the de-boost circuit
     *  (zero for other policies). */
    std::uint64_t ubikDeboosts = 0;
    std::uint64_t ubikDeadlineDeboosts = 0;
    std::uint64_t ubikWatermarks = 0;
};

/** A policy/scheme configuration under evaluation. */
struct SchemeUnderTest
{
    std::string label;
    SchemeKind scheme = SchemeKind::Vantage;
    ArrayKind array = ArrayKind::Z4_52;
    PolicyKind policy = PolicyKind::Ubik;
    double slack = 0.05;

    /** Remaining Ubik tunables (slack above wins over ubik.slack). */
    UbikConfig ubik;

    /** Multiplier on the coarse reconfiguration interval (1 = the
     *  paper's 50ms, scaled); used by the parameter ablation. */
    double reconfigScale = 1.0;

    /** Memory-model extension (src/mem/); Fixed is the paper's
     *  model and leaves mix runs untouched. */
    MemKind mem = MemKind::Fixed;
    MemoryParams memParams;

    /** Partitioned memory only: bandwidth reserved for the LC
     *  instances. The LC apps run unregulated (strict priority); the
     *  batch apps are regulated to split the remainder equally. */
    double lcMemShare = 0.5;

    /** Apply every scheme knob to a CmpConfig. The single source of
     *  truth for mix runs and traced re-runs alike. */
    void applyTo(CmpConfig &cc) const;
};

/** The paper's five evaluated schemes (Fig 9/10/11), Ubik last. */
std::vector<SchemeUnderTest> paperSchemes(double ubik_slack = 0.05);

/**
 * Runs calibrations, baselines, and mixes, caching baselines.
 *
 * Thread-safe: one MixRunner may serve concurrent runMix/baseline
 * calls from a JobPool. Baselines are pure functions of (params,
 * load, seed), so a racing recompute produces the identical value and
 * the first insert wins; cached references stay valid because map
 * inserts never move existing nodes.
 */
class MixRunner
{
  public:
    MixRunner(ExperimentConfig cfg, bool out_of_order = true);

    const ExperimentConfig &config() const { return cfg_; }

    /** Core model flavour (enters the persistent cache keys). */
    bool outOfOrder() const { return ooo_; }

    /**
     * Persist baselines through `cache` (not owned; may be null to
     * detach): on an in-memory miss the persistent store is consulted
     * before computing, and computed baselines are stored back. The
     * cached values are bit-exact, so attaching a cache never changes
     * any result.
     */
    void attachCache(ResultCache *cache) { cache_ = cache; }

    /** The attached persistent cache, or null. */
    ResultCache *cache() const { return cache_; }

    /**
     * Baseline for an LC app at a load (cached). `params` must be
     * full-scale; scaling happens internally.
     */
    const LcBaseline &lcBaseline(const LcAppParams &params, double load,
                                 std::uint64_t seed);

    /** Alone-IPC for a batch app on the private LLC (cached). */
    double batchAloneIpc(const BatchAppParams &params,
                         std::uint64_t seed);

    /**
     * Run one mix under one scheme. Trace-backed LC configs
     * (MixSpec::lc.traces) and batch mixes (MixSpec::batch.traces)
     * replay inside the shared-LLC simulation; baselines always come
     * from the synthetic params, so a traced mix and its source
     * preset share them (workload/mix.h).
     */
    MixRunResult runMix(const MixSpec &spec, const SchemeUnderTest &sut,
                        std::uint64_t seed);

    /** Master seed runMix hands the mix Cmp for sweep seed `seed` —
     *  capture-fidelity harnesses derive per-core app RNGs from it
     *  via Cmp::appRng. */
    static std::uint64_t
    mixCmpSeed(std::uint64_t seed)
    {
        return seed * 15485863 + 17;
    }

    /** Convenience: run an LC app alone (private LLC, open loop) and
     *  return the merged latency recorder; used by Fig 1. */
    LatencyRecorder runAlone(const LcAppParams &params, double load,
                             std::uint64_t seed,
                             LatencyRecorder *service_times = nullptr);

    /** Cache key of an LC baseline — ParallelSweep deduplicates its
     *  prewarm jobs with the exact key the cache uses. */
    std::string lcKey(const LcAppParams &params, double load,
                      std::uint64_t seed) const;

    /** Cache key of a batch alone-IPC baseline. */
    std::string batchKey(const BatchAppParams &params,
                         std::uint64_t seed) const;

  private:
    ExperimentConfig cfg_;
    bool ooo_;
    ResultCache *cache_ = nullptr; ///< optional persistent store
    std::mutex cacheMu_; ///< guards the two baseline caches
    std::map<std::string, LcBaseline> lcCache_;
    std::map<std::string, double> batchCache_;
};

} // namespace ubik
