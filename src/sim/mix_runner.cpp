#include "sim/mix_runner.h"

#include <cmath>

#include "common/log.h"
#include "sim/result_cache.h"

namespace ubik {

std::vector<SchemeUnderTest>
paperSchemes(double ubik_slack)
{
    return {
        {"LRU", SchemeKind::SharedLru, ArrayKind::Z4_52,
         PolicyKind::Lru, 0.0},
        {"UCP", SchemeKind::Vantage, ArrayKind::Z4_52, PolicyKind::Ucp,
         0.0},
        {"OnOff", SchemeKind::Vantage, ArrayKind::Z4_52,
         PolicyKind::OnOff, 0.0},
        {"StaticLC", SchemeKind::Vantage, ArrayKind::Z4_52,
         PolicyKind::StaticLc, 0.0},
        {"Ubik", SchemeKind::Vantage, ArrayKind::Z4_52,
         PolicyKind::Ubik, ubik_slack},
    };
}

void
SchemeUnderTest::applyTo(CmpConfig &cc) const
{
    cc.scheme = scheme;
    cc.array = array;
    cc.policy = policy;
    cc.slack = slack;
    cc.ubik = ubik;
    if (reconfigScale != 1.0)
        cc.reconfigInterval = static_cast<Cycles>(
            static_cast<double>(cc.reconfigInterval) * reconfigScale);
    cc.mem = mem;
    cc.memParams = memParams;
    if (mem == MemKind::Partitioned) {
        // LC instances bypass the regulator (strict priority); batch
        // apps are throttled to the unreserved remainder.
        cc.memShares.assign(6, 0.0);
        for (int i = 3; i < 6; i++)
            cc.memShares[i] = (1.0 - lcMemShare) / 3.0;
    }
}

MixRunner::MixRunner(ExperimentConfig cfg, bool out_of_order)
    : cfg_(cfg), ooo_(out_of_order)
{
}

std::string
MixRunner::lcKey(const LcAppParams &params, double load,
                 std::uint64_t seed) const
{
    return params.name + "/" + std::to_string(load) + "/" +
           std::to_string(seed) + (ooo_ ? "/ooo" : "/io");
}

std::string
MixRunner::batchKey(const BatchAppParams &params,
                    std::uint64_t seed) const
{
    return params.name + "/" + std::to_string(seed) +
           (ooo_ ? "/ooo" : "/io");
}

const LcBaseline &
MixRunner::lcBaseline(const LcAppParams &params, double load,
                      std::uint64_t seed)
{
    std::string key = lcKey(params, load, seed);
    {
        std::lock_guard<std::mutex> lock(cacheMu_);
        auto it = lcCache_.find(key);
        if (it != lcCache_.end())
            return it->second;
    }

    // Persistent store next (bit-exact round trip, so a hit is
    // indistinguishable from recomputing).
    std::string pkey;
    if (cache_) {
        pkey = lcBaselineKey(cfg_, params, load, seed, ooo_);
        if (auto cached = cache_->loadLcBaseline(pkey)) {
            std::lock_guard<std::mutex> lock(cacheMu_);
            return lcCache_.emplace(key, *cached).first->second;
        }
    }

    // Compute outside the lock: the calibration is deterministic in
    // (params, load, seed), so two racing threads produce identical
    // values and whichever emplace wins is correct for both.
    LcAppParams scaled = params.scaled(cfg_.scale);
    LcBaseline base;

    // 1. Closed-loop calibration: mean service time on a private LLC.
    {
        CmpConfig cc = cfg_.baseCmpConfig(ooo_);
        cc.privateLlc = true;
        LcAppSpec spec;
        spec.params = scaled;
        spec.meanInterarrival = 0; // closed loop
        spec.roiRequests = std::max<std::uint64_t>(
            50, cfg_.roiRequests / 2);
        spec.warmupRequests = cfg_.warmupRequests;
        spec.targetLines = cfg_.privateLines();
        Cmp cmp(cc, {spec}, {}, seed * 7919 + 1);
        cmp.run();
        base.meanServiceCycles = cmp.lcResult(0).serviceTimes.mean();
        ubik_assert(base.meanServiceCycles > 0);
    }

    base.meanInterarrival = base.meanServiceCycles / load;

    // 2. Open-loop baseline at the target rate: tail and deadline.
    {
        CmpConfig cc = cfg_.baseCmpConfig(ooo_);
        cc.privateLlc = true;
        LcAppSpec spec;
        spec.params = scaled;
        spec.meanInterarrival = base.meanInterarrival;
        spec.roiRequests = cfg_.roiRequests;
        spec.warmupRequests = cfg_.warmupRequests;
        spec.targetLines = cfg_.privateLines();
        Cmp cmp(cc, {spec}, {}, seed * 7919 + 2);
        cmp.run();
        const LatencyRecorder &lat = cmp.lcResult(0).latencies;
        base.meanLatency = lat.mean();
        base.tailMean = lat.tailMean(95.0);
        base.p95 = static_cast<Cycles>(lat.percentile(95.0));
    }

    if (cache_)
        cache_->storeLcBaseline(pkey, base);

    std::lock_guard<std::mutex> lock(cacheMu_);
    auto [ins, ok] = lcCache_.emplace(key, base);
    (void)ok;
    return ins->second;
}

double
MixRunner::batchAloneIpc(const BatchAppParams &params,
                         std::uint64_t seed)
{
    std::string key = batchKey(params, seed);
    {
        std::lock_guard<std::mutex> lock(cacheMu_);
        auto it = batchCache_.find(key);
        if (it != batchCache_.end())
            return it->second;
    }

    std::string pkey;
    if (cache_) {
        pkey = batchBaselineKey(cfg_, params, seed, ooo_);
        if (auto cached = cache_->loadBatchIpc(pkey)) {
            std::lock_guard<std::mutex> lock(cacheMu_);
            batchCache_.emplace(key, *cached);
            return *cached;
        }
    }

    CmpConfig cc = cfg_.baseCmpConfig(ooo_);
    cc.privateLlc = true;
    BatchAppSpec spec;
    spec.params = params.scaled(cfg_.scale);
    Cmp cmp(cc, {}, {spec}, seed * 104729 + 3);
    cmp.run();
    double ipc = cmp.batchResult(0).ipc();
    ubik_assert(ipc > 0);
    if (cache_)
        cache_->storeBatchIpc(pkey, ipc);
    std::lock_guard<std::mutex> lock(cacheMu_);
    batchCache_.emplace(key, ipc);
    return ipc;
}

LatencyRecorder
MixRunner::runAlone(const LcAppParams &params, double load,
                    std::uint64_t seed, LatencyRecorder *service_times)
{
    const LcBaseline &base = lcBaseline(params, load, seed);
    CmpConfig cc = cfg_.baseCmpConfig(ooo_);
    cc.privateLlc = true;
    LcAppSpec spec;
    spec.params = params.scaled(cfg_.scale);
    spec.meanInterarrival = base.meanInterarrival;
    spec.roiRequests = cfg_.roiRequests;
    spec.warmupRequests = cfg_.warmupRequests;
    spec.targetLines = cfg_.privateLines();
    Cmp cmp(cc, {spec}, {}, seed * 7919 + 11);
    cmp.run();
    if (service_times)
        service_times->merge(cmp.lcResult(0).serviceTimes);
    return cmp.lcResult(0).latencies;
}

MixRunResult
MixRunner::runMix(const MixSpec &spec, const SchemeUnderTest &sut,
                  std::uint64_t seed)
{
    const std::size_t ntraces = spec.lc.traces.size();
    if (ntraces != 0 && ntraces != 1 && ntraces != 3)
        fatal("mix %s: lc.traces must hold 0, 1, or 3 traces (has %zu)",
              spec.name.c_str(), ntraces);
    const std::size_t nbatch = spec.batch.traces.size();
    if (nbatch != 0 && nbatch != 1 && nbatch != 3)
        fatal("mix %s: batch.traces must hold 0, 1, or 3 traces "
              "(has %zu)",
              spec.name.c_str(), nbatch);

    const LcBaseline &base = lcBaseline(spec.lc.app, spec.lc.load, seed);
    LcAppParams scaled = spec.lc.app.scaled(cfg_.scale);

    CmpConfig cc = cfg_.baseCmpConfig(ooo_);
    sut.applyTo(cc);

    std::vector<LcAppSpec> lc(3);
    for (std::size_t i = 0; i < lc.size(); i++) {
        LcAppSpec &s = lc[i];
        s.params = scaled;
        if (ntraces)
            s.trace = spec.lc.traces[ntraces == 1 ? 0 : i]->data();
        s.meanInterarrival = base.meanInterarrival;
        // The mix's load profile shapes the open-loop arrivals; the
        // baseline above stays constant-rate, so the deadline and
        // the tail reference are profile-independent.
        s.profile = spec.lc.profile;
        s.roiRequests = cfg_.roiRequests;
        s.warmupRequests = cfg_.warmupRequests;
        s.targetLines = cfg_.privateLines();
        s.deadline = base.p95;
    }
    std::vector<BatchAppSpec> batch(3);
    for (std::size_t i = 0; i < 3; i++) {
        batch[i].params = spec.batch.apps[i].scaled(cfg_.scale);
        if (nbatch)
            batch[i].trace =
                spec.batch.traces[nbatch == 1 ? 0 : i]->data();
    }

    Cmp cmp(cc, lc, batch, mixCmpSeed(seed));
    cmp.run();

    MixRunResult res;
    LatencyRecorder merged;
    for (std::uint32_t i = 0; i < 3; i++)
        merged.merge(cmp.lcResult(i).latencies);
    res.lcTailMean = merged.tailMean(95.0);
    res.tailDegradation =
        base.tailMean > 0 ? res.lcTailMean / base.tailMean : 0;
    res.meanDegradation =
        base.meanLatency > 0 ? merged.mean() / base.meanLatency : 0;

    double sum = 0;
    for (std::uint32_t i = 0; i < 3; i++) {
        double alone = batchAloneIpc(spec.batch.apps[i], seed);
        double ratio = cmp.batchResult(i).ipc() / alone;
        res.batchSpeedups.push_back(ratio);
        sum += ratio;
    }
    res.weightedSpeedup = sum / 3.0;

    if (auto *ubik = dynamic_cast<UbikPolicy *>(cmp.policy())) {
        res.ubikDeboosts = ubik->deboostInterrupts();
        res.ubikDeadlineDeboosts = ubik->deadlineDeboosts();
        res.ubikWatermarks = ubik->watermarkInterrupts();
    }
    return res;
}

} // namespace ubik
