#include "sim/cmp.h"

#include <algorithm>
#include <cmath>

#include "cache/vantage.h"
#include "cache/way_partitioning.h"
#include "cache/zcache_array.h"
#include "core/ubik_policy.h"
#include "policy/feedback_policy.h"
#include "policy/lru_policy.h"
#include "policy/onoff_policy.h"
#include "policy/static_lc_policy.h"
#include "policy/ucp_policy.h"
#include "common/log.h"

namespace ubik {

const char *
arrayKindName(ArrayKind k)
{
    switch (k) {
      case ArrayKind::Z4_52:
        return "Z4/52";
      case ArrayKind::SA16:
        return "SA16";
      case ArrayKind::SA64:
        return "SA64";
    }
    panic("bad ArrayKind");
}

const char *
schemeKindName(SchemeKind k)
{
    switch (k) {
      case SchemeKind::SharedLru:
        return "LRU";
      case SchemeKind::Vantage:
        return "Vantage";
      case SchemeKind::WayPart:
        return "WayPart";
    }
    panic("bad SchemeKind");
}

const char *
policyKindName(PolicyKind k)
{
    switch (k) {
      case PolicyKind::Lru:
        return "LRU";
      case PolicyKind::Ucp:
        return "UCP";
      case PolicyKind::StaticLc:
        return "StaticLC";
      case PolicyKind::OnOff:
        return "OnOff";
      case PolicyKind::Ubik:
        return "Ubik";
      case PolicyKind::Feedback:
        return "Feedback";
    }
    panic("bad PolicyKind");
}

double
LcResult::apki() const
{
    if (instructions == 0)
        return 0;
    return static_cast<double>(accesses) * 1000.0 /
           static_cast<double>(instructions);
}

double
BatchResult::ipc() const
{
    if (roiCycles == 0)
        return 0;
    return static_cast<double>(roiInstructions) /
           static_cast<double>(roiCycles);
}

/** Per-core dynamic state. */
struct Cmp::Core
{
    bool isLc = false;
    std::uint32_t idx = 0; ///< index into lc/batch result vectors

    std::unique_ptr<LcApp> lcApp;
    std::unique_ptr<BatchApp> batchApp;
    std::unique_ptr<CoreModel> model;
    LcAppSpec lcSpec;

    Cycles nextEvent = 0;

    // --- LC request state
    bool serving = false;
    bool finishing = false; ///< next event completes the request
    ReqId curReq = 0;       ///< requests started so far
    std::uint64_t accessesRemaining = 0;
    double instrPerAccess = 0;
    Cycles reqArrival = 0;
    Cycles reqStart = 0;

    // --- arrival process
    Rng rng{1};
    Cycles nextArrival = 0;
    std::deque<Cycles> queue; ///< arrival times of waiting requests

    /** Nominal run length, cycles: (warmup+ROI) requests at the
     *  nominal rate. The load profile's time base — span fractions
     *  scale with UBIK_SCALE / UBIK_REQUESTS automatically. */
    double profileSpan = 1.0;

    // --- progress
    std::uint64_t completed = 0;
    std::uint64_t intervalRequests = 0;
    bool roiDone = false;

    // --- batch progress (cumulative)
    double cumInstr = 0;
    std::uint64_t cumAccesses = 0;
    double instrAtRoiStart = 0;
};

Cmp::Cmp(CmpConfig cfg, std::vector<LcAppSpec> lc,
         std::vector<BatchAppSpec> batch, std::uint64_t seed)
    : cfg_(cfg), rng_(seed)
{
    ubik_assert(!lc.empty() || !batch.empty());
    nextReconfig_ = cfg_.reconfigInterval;
    nextTrace_ = cfg_.traceInterval;

    std::uint32_t ncores =
        static_cast<std::uint32_t>(lc.size() + batch.size());
    lcResults_.resize(lc.size());
    batchResults_.resize(batch.size());

    for (std::uint32_t c = 0; c < ncores; c++) {
        auto core = std::make_unique<Core>();
        core->rng = rng_.fork();
        if (c < lc.size()) {
            core->isLc = true;
            core->idx = c;
            core->lcSpec = lc[c];
            core->lcApp = std::make_unique<LcApp>(lc[c].params, c,
                                                  rng_.fork());
            if (lc[c].trace)
                core->lcApp->bindTrace(lc[c].trace);
            CoreTraits t;
            // Replayed traces dictate their own access intensity.
            t.apki = lc[c].trace ? lc[c].trace->apki()
                                 : lc[c].params.apki;
            t.baseIpc = lc[c].params.baseIpc;
            t.mlp = lc[c].params.mlp;
            core->model = std::make_unique<CoreModel>(cfg_.core, t);
            if (lc[c].meanInterarrival > 0) {
                lc[c].profile.validate("LcAppSpec load profile");
                core->profileSpan =
                    static_cast<double>(lc[c].warmupRequests +
                                        lc[c].roiRequests) *
                    lc[c].meanInterarrival;
                core->nextArrival = arrivalGap(*core, 0);
                core->nextEvent =
                    core->nextArrival + cfg_.coalesceCycles;
            } else {
                // Closed loop: first request at cycle 0.
                core->nextArrival = 0;
                core->nextEvent = 0;
            }
        } else {
            core->isLc = false;
            core->idx = static_cast<std::uint32_t>(c - lc.size());
            core->batchApp = std::make_unique<BatchApp>(
                batch[core->idx].params, c, rng_.fork());
            if (batch[core->idx].trace)
                core->batchApp->bindTrace(batch[core->idx].trace);
            CoreTraits t;
            t.apki = batch[core->idx].params.apki;
            t.baseIpc = batch[core->idx].params.baseIpc;
            t.mlp = batch[core->idx].params.mlp;
            core->model = std::make_unique<CoreModel>(cfg_.core, t);
            core->nextEvent = 0;
        }
        cores_.push_back(std::move(core));
    }

    buildMemorySystem(seed);

    // Auto cap: generous multiple of the expected ROI length.
    if (cfg_.maxCycles == 0) {
        double worst = 1e9;
        for (std::uint32_t c = 0; c < lc.size(); c++) {
            const auto &spec = lc[c];
            double span =
                static_cast<double>(spec.warmupRequests +
                                    spec.roiRequests) *
                std::max(spec.meanInterarrival,
                         spec.params.work.mean() / 1.0);
            worst = std::max(worst, span);
        }
        maxCycles_ = static_cast<Cycles>(worst * 50.0);
    } else {
        maxCycles_ = cfg_.maxCycles;
    }

    if (lc.empty())
        batchRoiStarted_ = false; // started after warmup accesses
}

Cmp::~Cmp() = default;

void
Cmp::buildMemorySystem(std::uint64_t seed)
{
    std::uint32_t ncores = numCores();
    auto make_array = [&](std::uint64_t lines,
                          std::uint64_t salt) -> std::unique_ptr<CacheArray> {
        switch (cfg_.array) {
          case ArrayKind::Z4_52:
            lines -= lines % 4;
            return std::make_unique<ZCacheArray>(lines, 4, 52, salt);
          case ArrayKind::SA16:
            lines -= lines % 16;
            return std::make_unique<SetAssocArray>(lines, 16, salt);
          case ArrayKind::SA64:
            lines -= lines % 64;
            return std::make_unique<SetAssocArray>(lines, 64, salt);
        }
        panic("bad ArrayKind");
    };

    if (cfg_.privateLlc) {
        // Per-core private LLCs: perfect isolation, no policy.
        for (std::uint32_t c = 0; c < ncores; c++)
            schemes_.push_back(std::make_unique<SharedLru>(
                make_array(cfg_.privateLinesPerCore, seed ^ (c + 1)),
                2));
    } else {
        std::uint32_t nparts = ncores + 1;
        switch (cfg_.scheme) {
          case SchemeKind::SharedLru:
            schemes_.push_back(std::make_unique<SharedLru>(
                make_array(cfg_.llcLines, seed), nparts));
            break;
          case SchemeKind::Vantage:
            schemes_.push_back(std::make_unique<Vantage>(
                make_array(cfg_.llcLines, seed), nparts));
            break;
          case SchemeKind::WayPart: {
            if (cfg_.array == ArrayKind::Z4_52)
                fatal("way-partitioning requires a set-associative "
                      "array (use SA16 or SA64)");
            std::uint32_t ways =
                cfg_.array == ArrayKind::SA16 ? 16 : 64;
            std::uint64_t lines = cfg_.llcLines - cfg_.llcLines % ways;
            schemes_.push_back(std::make_unique<WayPartitioning>(
                std::make_unique<SetAssocArray>(lines, ways, seed),
                nparts));
            break;
          }
        }
    }

    // Main memory: one shared model across all cores. Base latency
    // tracks the core timing parameters so the two stay consistent.
    MemoryParams mp = cfg_.memParams;
    mp.baseLatency = cfg_.core.memLatency;
    mem_ = makeMemorySystem(cfg_.mem, mp, ncores);
    if (!cfg_.memShares.empty()) {
        if (cfg_.mem != MemKind::Partitioned)
            fatal("memShares set but memory model is %s",
                  memKindName(cfg_.mem));
        if (cfg_.memShares.size() != ncores)
            fatal("memShares has %zu entries for %u cores",
                  cfg_.memShares.size(), ncores);
        auto *pm = static_cast<PartitionedMemory *>(mem_.get());
        for (std::uint32_t c = 0; c < ncores; c++) {
            if (cfg_.memShares[c] <= 0)
                pm->setUnregulated(c);
            else
                pm->setShare(c, cfg_.memShares[c]);
        }
    }

    // Monitors: one UMON + MLP profiler per core, modeling the shared
    // LLC (or the private one in baseline mode).
    std::uint64_t modeled = cfg_.privateLlc ? cfg_.privateLinesPerCore
                                            : cfg_.llcLines;
    monitors_.resize(ncores);
    for (std::uint32_t c = 0; c < ncores; c++) {
        umons_.push_back(std::make_unique<Umon>(
            modeled, cfg_.umonWays, cfg_.umonSets, seed ^ (0xabcdull + c)));
        profilers_.push_back(std::make_unique<MlpProfiler>());
        AppMonitor &mon = monitors_[c];
        mon.umon = umons_[c].get();
        mon.mlp = profilers_[c].get();
        mon.latencyCritical = cores_[c]->isLc;
        mon.active = !cores_[c]->isLc; // LC cores start idle
        if (cores_[c]->isLc) {
            mon.targetLines = cores_[c]->lcSpec.targetLines;
            mon.deadline = cores_[c]->lcSpec.deadline;
        }
    }

    if (cfg_.privateLlc)
        return;

    PartitionScheme &s = *schemes_[0];
    switch (cfg_.policy) {
      case PolicyKind::Lru:
        policy_ = std::make_unique<LruPolicy>(s, monitors_);
        break;
      case PolicyKind::Ucp:
        policy_ = std::make_unique<UcpPolicy>(s, monitors_);
        break;
      case PolicyKind::StaticLc:
        policy_ = std::make_unique<StaticLcPolicy>(s, monitors_);
        break;
      case PolicyKind::OnOff:
        policy_ = std::make_unique<OnOffPolicy>(s, monitors_);
        break;
      case PolicyKind::Ubik: {
        UbikConfig uc = cfg_.ubik;
        uc.slack = cfg_.slack;
        policy_ = std::make_unique<UbikPolicy>(s, monitors_, uc);
        break;
      }
      case PolicyKind::Feedback:
        policy_ = std::make_unique<FeedbackPolicy>(s, monitors_);
        break;
    }
    // Initial conservative split so the first interval is sane:
    // StaticLC-like targets for LC apps, the rest split over batch.
    if (cfg_.policy != PolicyKind::Lru)
        policy_->reconfigure(0);
}

PartitionScheme &
Cmp::scheme()
{
    if (cfg_.privateLlc)
        fatal("scheme(): no shared scheme in private-LLC mode");
    return *schemes_[0];
}

const LcResult &
Cmp::lcResult(std::uint32_t i) const
{
    return lcResults_.at(i);
}

const BatchResult &
Cmp::batchResult(std::uint32_t i) const
{
    return batchResults_.at(i);
}

AccessOutcome
Cmp::accessLlc(std::uint32_t c, Addr addr)
{
    Core &core = *cores_[c];
    PartitionScheme &s =
        cfg_.privateLlc ? *schemes_[c] : *schemes_[0];
    AccessContext ctx;
    ctx.part = PartitionPolicy::partOf(c);
    ctx.app = c;
    ctx.reqId = core.isLc ? core.curReq : 0;
    AccessOutcome out = s.access(addr, ctx);

    UmonProbe probe = umons_[c]->access(addr);
    if (policy_ && core.isLc)
        policy_->onAccess(c, probe, !out.hit, now_);

    if (core.isLc) {
        LcResult &r = lcResults_[core.idx];
        r.accesses++;
        if (!out.hit) {
            r.misses++;
        } else if (cfg_.trackInertia) {
            if (out.hitPrevOwner == c) {
                std::uint64_t age =
                    core.curReq >= out.hitPrevReqId
                        ? core.curReq - out.hitPrevReqId
                        : 0;
                r.hitsByAge[std::min<std::uint64_t>(age, 8)]++;
            } else {
                r.hitsByAge[8]++; // another app's line: stale reuse
            }
        }
    } else {
        BatchResult &r = batchResults_[core.idx];
        r.accesses++;
        if (!out.hit)
            r.misses++;
        core.cumAccesses++;
    }
    return out;
}

/**
 * One interarrival gap starting at cycle `from`, following the
 * core's load profile. Exactly one exponential draw per call for
 * every profile kind, so profiles never perturb RNG stream order.
 * The nonhomogeneous process divides the nominal-rate gap by the
 * rate multiple at the gap's start (piecewise-constant rate over
 * one gap); a Churn departure window is skipped wholesale — no
 * arrivals can land inside it. The return value is the raw cast
 * (callers clamp where the legacy path clamped), keeping the
 * Constant branch bit-identical to the pre-profile arithmetic.
 */
Cycles
Cmp::arrivalGap(Core &core, Cycles from)
{
    double gap = core.rng.exponential(core.lcSpec.meanInterarrival);
    const LoadProfile &prof = core.lcSpec.profile;
    if (!prof.isConstant()) {
        double t = static_cast<double>(from) / core.profileSpan;
        double active = prof.nextActiveFrac(t);
        double skip = (active - t) * core.profileSpan;
        // Floor the rate away from zero (a diurnal trough at
        // amplitude 1): near-zero load means a huge finite gap, not
        // a division blow-up.
        double scale = std::max(prof.scaleAt(active), 1e-9);
        gap = skip + gap / scale;
    }
    return static_cast<Cycles>(gap);
}

void
Cmp::pumpArrivals(Core &core)
{
    if (core.lcSpec.meanInterarrival <= 0)
        return;
    while (core.nextArrival <= now_) {
        core.queue.push_back(core.nextArrival);
        core.nextArrival += std::max<Cycles>(
            1, arrivalGap(core, core.nextArrival));
    }
}

void
Cmp::startRequest(std::uint32_t c)
{
    Core &core = *cores_[c];
    ubik_assert(!core.queue.empty() || core.lcSpec.meanInterarrival <= 0);

    if (core.lcSpec.meanInterarrival <= 0) {
        core.reqArrival = now_;
    } else {
        core.reqArrival = core.queue.front();
        core.queue.pop_front();
    }
    core.reqStart = now_;
    core.curReq++;
    core.serving = true;

    double work = core.lcApp->startRequest(core.curReq);
    std::uint64_t n = core.lcApp->requestAccesses(work);
    LcResult &r = lcResults_[core.idx];
    r.instructions += static_cast<std::uint64_t>(work);

    if (n == 0) {
        // Pure-compute request: one event at completion.
        core.accessesRemaining = 0;
        core.finishing = true;
        Cycles cycles = core.model->compute(work);
        core.nextEvent = now_ + std::max<Cycles>(1, cycles);
    } else {
        core.accessesRemaining = n;
        core.instrPerAccess = work / static_cast<double>(n);
        core.finishing = false;
        core.nextEvent = now_; // first access immediately
    }
}

void
Cmp::finishRequest(std::uint32_t c)
{
    Core &core = *cores_[c];
    core.serving = false;
    core.finishing = false;

    Cycles latency = now_ - core.reqArrival;
    Cycles service = now_ - core.reqStart;
    core.completed++;
    core.intervalRequests++;

    LcResult &r = lcResults_[core.idx];
    const LcAppSpec &spec = core.lcSpec;
    bool in_roi = core.completed > spec.warmupRequests &&
                  core.completed <= spec.warmupRequests + spec.roiRequests;
    if (in_roi) {
        r.latencies.record(latency);
        r.serviceTimes.record(service);
        if (core.completed == spec.warmupRequests + spec.roiRequests) {
            core.roiDone = true;
            r.roiEndCycle = now_;
        }
    }
    if (policy_)
        policy_->onRequestComplete(c, latency);

    // Batch ROI window opens once every LC app is warm.
    if (!batchRoiStarted_) {
        bool all_warm = true;
        for (const auto &cr : cores_)
            if (cr->isLc && cr->completed < cr->lcSpec.warmupRequests)
                all_warm = false;
        if (all_warm) {
            batchRoiStarted_ = true;
            batchRoiStart_ = now_;
            for (const auto &cr : cores_)
                if (!cr->isLc)
                    cr->instrAtRoiStart = cr->cumInstr;
        }
    }

    pumpArrivals(core);
    if (!core.queue.empty() || spec.meanInterarrival <= 0) {
        startRequest(c);
        return;
    }
    // Queue drained: go idle until the next delivery.
    if (policy_) {
        monitors_[c].active = false;
        policy_->onIdle(c, now_);
    } else {
        monitors_[c].active = false;
    }
    core.nextEvent = core.nextArrival + cfg_.coalesceCycles;
}

void
Cmp::serveLcEvent(std::uint32_t c)
{
    Core &core = *cores_[c];

    if (!core.serving) {
        // Idle wake-up: the coalescing timeout expired.
        pumpArrivals(core);
        if (core.queue.empty() && core.lcSpec.meanInterarrival > 0) {
            // Spurious (arrival moved): sleep again.
            core.nextEvent = core.nextArrival + cfg_.coalesceCycles;
            return;
        }
        monitors_[c].active = true;
        if (policy_)
            policy_->onActive(c, now_);
        startRequest(c);
        return;
    }

    if (core.finishing) {
        finishRequest(c);
        return;
    }

    // One LLC access.
    Addr addr = core.lcApp->nextAddr();
    AccessOutcome out = accessLlc(c, addr);
    Cycles extra = out.hit ? 0
                           : core.model->exposedMemDelay(
                                 mem_->access(c, now_));
    Cycles cost =
        core.model->access(out.hit, core.instrPerAccess, extra);
    core.accessesRemaining--;
    core.nextEvent = now_ + std::max<Cycles>(1, cost);
    if (core.accessesRemaining == 0)
        core.finishing = true;
}

void
Cmp::serveBatchEvent(std::uint32_t c)
{
    Core &core = *cores_[c];
    Addr addr = core.batchApp->nextAddr();
    AccessOutcome out = accessLlc(c, addr);
    double ipa = 1000.0 / core.batchApp->params().apki;
    Cycles extra = out.hit ? 0
                           : core.model->exposedMemDelay(
                                 mem_->access(c, now_));
    Cycles cost = core.model->access(out.hit, ipa, extra);
    core.cumInstr += ipa;
    core.nextEvent = now_ + std::max<Cycles>(1, cost);
}

void
Cmp::doReconfigure()
{
    for (std::uint32_t c = 0; c < numCores(); c++) {
        Core &core = *cores_[c];
        IntervalCounters counters = core.model->takeInterval();
        monitors_[c].interval = counters;
        monitors_[c].intervalRequests = core.intervalRequests;
        core.intervalRequests = 0;
        profilers_[c]->update(counters);
    }
    if (policy_)
        policy_->reconfigure(now_);
    for (auto &u : umons_)
        u->resetCounters();
}

void
Cmp::doTrace()
{
    if (cfg_.privateLlc)
        return;
    AllocSample s;
    s.cycle = now_;
    PartitionScheme &sch = *schemes_[0];
    for (PartId p = 0; p < sch.numPartitions(); p++)
        s.targetLines.push_back(sch.targetSize(p));
    trace_.push_back(std::move(s));
}

bool
Cmp::allDone() const
{
    for (const auto &core : cores_) {
        if (core->isLc) {
            if (!core->roiDone)
                return false;
        } else if (!batchRoiStarted_) {
            return false;
        }
    }
    return true;
}

void
Cmp::run()
{
    // Pure-batch runs (baselines): ROI measured over a fixed access
    // count per app, after a warmup of 1/4 of that.
    bool batch_only = true;
    for (const auto &core : cores_)
        if (core->isLc)
            batch_only = false;

    std::uint64_t batch_roi_accesses = 0;
    if (batch_only) {
        // Scale ROI to the modeled cache so miss curves settle.
        std::uint64_t lines = cfg_.privateLlc
                                  ? cfg_.privateLinesPerCore
                                  : cfg_.llcLines;
        batch_roi_accesses = std::max<std::uint64_t>(200000, lines * 16);
    }

    // Heap over per-core next-event times. The two periodic timers
    // stay outside it (two comparisons beat heap churn); ties keep
    // the legacy precedence reconfig > trace > lowest core index.
    {
        std::vector<Cycles> times;
        times.reserve(cores_.size());
        for (const auto &core : cores_)
            times.push_back(core->nextEvent);
        events_.init(times);
    }

    while (true) {
        // Earliest event across cores and timers.
        Cycles best = nextReconfig_;
        int which = -1; // -1: reconfig, -2: trace, else core
        if (cfg_.traceAllocations && nextTrace_ < best) {
            best = nextTrace_;
            which = -2;
        }
        if (events_.topTime() < best) {
            best = events_.topTime();
            which = static_cast<int>(events_.topIndex());
        }
        now_ = best;

        if (now_ > maxCycles_) {
            warn("simulation exceeded max cycles (%llu); stopping",
                 static_cast<unsigned long long>(maxCycles_));
            break;
        }

        if (which == -1) {
            doReconfigure();
            nextReconfig_ += cfg_.reconfigInterval;
        } else if (which == -2) {
            doTrace();
            nextTrace_ += cfg_.traceInterval;
        } else {
            std::uint32_t c = static_cast<std::uint32_t>(which);
            if (cores_[c]->isLc)
                serveLcEvent(c);
            else
                serveBatchEvent(c);
            // Serving an event only reschedules the served core.
            events_.update(c, cores_[c]->nextEvent);
        }

        if (batch_only) {
            bool done = true;
            for (const auto &core : cores_) {
                if (!batchRoiStarted_ &&
                    core->cumAccesses >= batch_roi_accesses / 4) {
                    batchRoiStarted_ = true;
                    batchRoiStart_ = now_;
                    for (const auto &cr : cores_)
                        if (!cr->isLc)
                            cr->instrAtRoiStart = cr->cumInstr;
                }
                if (core->cumAccesses <
                    batch_roi_accesses / 4 + batch_roi_accesses)
                    done = false;
            }
            if (batchRoiStarted_ && done)
                break;
        } else if (allDone()) {
            break;
        }
    }

    // Close the batch ROI window.
    for (std::uint32_t c = 0; c < numCores(); c++) {
        Core &core = *cores_[c];
        if (core.isLc)
            continue;
        BatchResult &r = batchResults_[core.idx];
        Cycles start = batchRoiStarted_ ? batchRoiStart_ : 0;
        r.roiCycles = now_ > start ? now_ - start : 1;
        double instr = core.cumInstr - core.instrAtRoiStart;
        r.roiInstructions = static_cast<std::uint64_t>(instr);
    }
}

Rng
Cmp::appRng(std::uint64_t seed, std::uint32_t core)
{
    // Mirrors the constructor's fork order exactly: per core, one
    // fork for the arrival-process RNG, then one for the app.
    Rng master(seed);
    for (std::uint32_t c = 0; c < core; c++) {
        master.fork();
        master.fork();
    }
    master.fork();
    return master.fork();
}

void
Cmp::printConfig(const CmpConfig &cfg)
{
    inform("Simulated CMP (cf. paper Table 2):");
    inform("  cores: %s, L3 %llu lines (%.1f MB), array %s, "
           "scheme %s, policy %s",
           cfg.core.outOfOrder ? "OOO" : "in-order",
           static_cast<unsigned long long>(cfg.llcLines),
           static_cast<double>(cfg.llcLines * kLineBytes) / (1 << 20),
           arrayKindName(cfg.array), schemeKindName(cfg.scheme),
           policyKindName(cfg.policy));
    inform("  L3 latency %llu, memory latency %llu cycles; reconfig "
           "every %.1f ms; coalescing %.0f us",
           static_cast<unsigned long long>(cfg.core.l3Latency),
           static_cast<unsigned long long>(cfg.core.memLatency),
           cyclesToMs(cfg.reconfigInterval),
           cyclesToUs(cfg.coalesceCycles));
    if (cfg.mem != MemKind::Fixed)
        inform("  memory model %s: %u channels, %llu-cycle occupancy",
               memKindName(cfg.mem), cfg.memParams.channels,
               static_cast<unsigned long long>(
                   cfg.memParams.channelOccupancy));
}

} // namespace ubik
