/**
 * @file
 * The built-in scenario registry: every mix-sweeping paper figure
 * and ablation as a named ScenarioSpec. The legacy bench executables
 * (bench/fig9_schemes.cpp, ...) are one-line wrappers over these
 * names, and `ubik_run` enumerates and parameterizes them.
 *
 * Specs here must expand to exactly the mixes and schemes the legacy
 * bench loops built — the fig9 equivalence is golden-tested against
 * the raw MixRunner/ParallelSweep path
 * (tests/integration/scenario_golden_test.cpp).
 *
 * Figures that do not sweep the mix matrix (Fig 1/2/4, the transient
 * and queueing ablations, microbenchmarks) keep their dedicated
 * benches: they interrogate a single Cmp or an analytical model, not
 * a scheme x mix x seed grid, so there is nothing for a spec to
 * declare.
 */

#include "sim/scenario.h"

#include <cstdio>

namespace ubik {

namespace {

ScenarioSpec
fig9Spec()
{
    ScenarioSpec s;
    s.name = "fig9";
    s.title = "Fig 9 / Table 3: scheme comparison over the mix matrix";
    s.schemes = paperSchemes(0.05);
    s.reports = {
        {ReportKind::Distributions, "fig9a-low-load", LoadBand::Low},
        {ReportKind::Averages, "table3-low-load", LoadBand::Low},
        {ReportKind::Distributions, "fig9b-high-load", LoadBand::High},
        {ReportKind::Averages, "table3-high-load", LoadBand::High},
    };
    s.notes =
        "Expected shape (paper Fig 9 / Table 3): LRU, UCP, and OnOff "
        "show heavy worst-case tail degradation (paper: up to ~2.3x); "
        "StaticLC and Ubik hold degradation ~1 (Ubik within its 5% "
        "slack); batch speedup ordering UCP ~ OnOff >= Ubik > LRU > "
        "StaticLC > 1.";
    return s;
}

ScenarioSpec
fig10Spec()
{
    ScenarioSpec s;
    s.name = "fig10";
    s.title = "Fig 10: per-app results, OOO cores";
    s.schemes = paperSchemes(0.05);
    s.mixesPerLcCap = 2;
    s.reports = {
        {ReportKind::PerApp, "fig10", LoadBand::All},
        {ReportKind::Averages, "fig10-avg", LoadBand::All},
    };
    s.notes =
        "Expected shape (paper Fig 10): xapian is insensitive at low "
        "load but UCP hurts it at high load; LRU/UCP/OnOff violate "
        "deadlines on masstree, shore, specjbb (inertia-heavy); Ubik "
        "matches StaticLC's tails while beating its speedups, and "
        "wins outright on xapian and moses.";
    return s;
}

ScenarioSpec
fig11Spec()
{
    ScenarioSpec s;
    s.name = "fig11";
    s.title = "Fig 11: per-app results, in-order cores";
    s.schemes = paperSchemes(0.05);
    s.mixesPerLcCap = 1;
    s.ooo = false;
    s.reports = {
        {ReportKind::PerApp, "fig11", LoadBand::All},
        {ReportKind::Averages, "fig11-avg", LoadBand::All},
    };
    s.notes =
        "Expected shape (paper Fig 11): versus Fig 10, best-effort "
        "schemes degrade tails *more* (in-order cores cannot hide "
        "misses) while all schemes achieve *higher* weighted "
        "speedups; StaticLC and Ubik still hold tail latency, with "
        "Ubik's speedup well above StaticLC's.";
    return s;
}

ScenarioSpec
fig12Spec()
{
    ScenarioSpec s;
    s.name = "fig12";
    s.title = "Fig 12: Ubik slack sensitivity";
    for (double slack : {0.0, 0.01, 0.05, 0.10}) {
        SchemeUnderTest sut;
        char label[32];
        std::snprintf(label, sizeof(label), "slack=%g%%",
                      slack * 100);
        sut.label = label;
        sut.policy = PolicyKind::Ubik;
        sut.slack = slack;
        s.schemes.push_back(sut);
    }
    s.mixesPerLcCap = 1;
    s.reports = {
        {ReportKind::PerApp, "fig12", LoadBand::All},
        {ReportKind::Averages, "fig12-avg", LoadBand::All},
    };
    s.notes =
        "Expected shape (paper Fig 12): slack=0 strictly maintains "
        "tails at the lowest speedup (paper: +9.9%); growing slack "
        "monotonically buys batch throughput (paper: 13.1%, 16.0%, "
        "17.0% at 1/5/10%) while tail degradation stays within the "
        "configured bound.";
    return s;
}

ScenarioSpec
fig13Spec()
{
    ScenarioSpec s;
    s.name = "fig13";
    s.title =
        "Fig 13: partitioning-scheme sensitivity (Ubik, 5% slack)";
    s.schemes = {
        {"WayPart-SA16", SchemeKind::WayPart, ArrayKind::SA16,
         PolicyKind::Ubik, 0.05},
        {"WayPart-SA64", SchemeKind::WayPart, ArrayKind::SA64,
         PolicyKind::Ubik, 0.05},
        {"Vantage-SA16", SchemeKind::Vantage, ArrayKind::SA16,
         PolicyKind::Ubik, 0.05},
        {"Vantage-SA64", SchemeKind::Vantage, ArrayKind::SA64,
         PolicyKind::Ubik, 0.05},
        {"Vantage-Z4/52", SchemeKind::Vantage, ArrayKind::Z4_52,
         PolicyKind::Ubik, 0.05},
    };
    s.mixesPerLcCap = 1;
    s.reports = {
        {ReportKind::Distributions, "fig13", LoadBand::All},
        {ReportKind::Averages, "fig13-avg", LoadBand::All},
    };
    s.notes =
        "Expected shape (paper Fig 13): way-partitioning misses "
        "deadlines (coarse sizes, slow unpredictable transients), "
        "SA16 hurts even under Vantage (forced evictions), Vantage "
        "on SA64 comes close to the zcache, and Vantage on Z4/52 is "
        "best on both axes.";
    return s;
}

ScenarioSpec
deboostSpec()
{
    ScenarioSpec s;
    s.name = "ablation-deboost";
    s.title = "Ablation: accurate de-boosting vs deadline-wait";
    SchemeUnderTest base;
    base.policy = PolicyKind::Ubik;

    base.label = "Ubik-strict";
    base.slack = 0.0;
    base.ubik.accurateDeboost = true;
    s.schemes.push_back(base);

    base.label = "Ubik-strict-noDB";
    base.ubik.accurateDeboost = false;
    s.schemes.push_back(base);

    base.label = "Ubik-5%";
    base.slack = 0.05;
    base.ubik.accurateDeboost = true;
    s.schemes.push_back(base);

    base.label = "Ubik-5%-noDB";
    base.ubik.accurateDeboost = false;
    s.schemes.push_back(base);

    s.source = MixSource::CacheHungry;
    s.reports = {
        {ReportKind::PerApp, "deboost", LoadBand::All},
        {ReportKind::Averages, "deboost-avg", LoadBand::All},
        {ReportKind::UbikInterrupts, "deboost-irq", LoadBand::All},
    };
    s.notes =
        "Expected shape (§5.1.1): tail degradations match across "
        "variants (the boost never ends *early*, so the QoS "
        "guarantee is unaffected), while the circuit converts "
        "deadline-wait de-boosts into much earlier recoveries — the "
        "irq table should show early-recovery dominating with the "
        "circuit and only deadline expiries without it. Returning "
        "that space sooner buys batch throughput; the margin scales "
        "with how long boosts outlive their transients (small at the "
        "scaled-down deadlines, growing at UBIK_SCALE=1).";
    return s;
}

ScenarioSpec
feedbackSpec()
{
    ScenarioSpec s;
    s.name = "ablation-feedback";
    s.title = "Ablation: feedback control vs prediction";
    {
        SchemeUnderTest sut;
        sut.label = "Feedback";
        sut.policy = PolicyKind::Feedback;
        sut.slack = 0.0;
        s.schemes.push_back(sut);

        sut.label = "StaticLC";
        sut.policy = PolicyKind::StaticLc;
        s.schemes.push_back(sut);

        sut.label = "Ubik";
        sut.policy = PolicyKind::Ubik;
        sut.slack = 0.05;
        s.schemes.push_back(sut);
    }
    s.mixesPerLcCap = 2;
    s.reports = {
        {ReportKind::PerApp, "feedback", LoadBand::All},
        {ReportKind::Averages, "feedback-avg", LoadBand::All},
    };
    s.notes =
        "Expected shape (§2.1): Feedback reclaims idle LC space like "
        "Ubik does, so its batch speedups beat StaticLC — but its "
        "tail degradations are looser and its worst mixes violate "
        "the deadline, because the controller reacts one interval "
        "after each burst. Ubik matches or beats its speedup while "
        "holding tails, because it prices transients *before* taking "
        "space.";
    return s;
}

/** Shared base for the three controller-knob ablations: Ubik at 5%
 *  slack over the low-load cache-hungry mixes (knob effects are
 *  load-insensitive; insensitive batch combos dilute the signal). */
ScenarioSpec
paramsBase(const char *name, const char *title)
{
    ScenarioSpec s;
    s.name = name;
    s.title = title;
    s.source = MixSource::CacheHungry;
    s.band = LoadBand::Low;
    s.notes =
        "Expected shape: tails hold near 1.0 across every setting "
        "(the transient bounds are what guarantee QoS, not the "
        "knobs); batch speedup degrades at the extremes — coarse N "
        "and huge guards strand space on idle LC apps, and very long "
        "intervals let miss curves go stale.";
    return s;
}

ScenarioSpec
paramsIdleSpec()
{
    ScenarioSpec s = paramsBase(
        "ablation-params-idle",
        "Ablation: Ubik controller parameters — idle-size search N");
    for (std::uint32_t n : {2u, 16u, 64u}) {
        SchemeUnderTest sut;
        sut.policy = PolicyKind::Ubik;
        sut.slack = 0.05;
        sut.label = "N=" + std::to_string(n);
        sut.ubik.idleOptions = n;
        s.schemes.push_back(sut);
    }
    s.reports = {
        {ReportKind::Averages, "params-idle-options", LoadBand::All}};
    return s;
}

ScenarioSpec
paramsGuardSpec()
{
    ScenarioSpec s = paramsBase(
        "ablation-params-guard",
        "Ablation: Ubik controller parameters — de-boost guard");
    for (double g : {0.0, 16.0, 256.0}) {
        SchemeUnderTest sut;
        sut.policy = PolicyKind::Ubik;
        sut.slack = 0.05;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "guard=%g", g);
        sut.label = buf;
        sut.ubik.deboostGuard = g;
        s.schemes.push_back(sut);
    }
    s.reports = {
        {ReportKind::Averages, "params-deboost-guard", LoadBand::All}};
    return s;
}

ScenarioSpec
paramsIntervalSpec()
{
    ScenarioSpec s = paramsBase(
        "ablation-params-interval",
        "Ablation: Ubik controller parameters — reconfig interval");
    for (double m : {0.25, 1.0, 4.0}) {
        SchemeUnderTest sut;
        sut.policy = PolicyKind::Ubik;
        sut.slack = 0.05;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "interval=%gx", m);
        sut.label = buf;
        sut.reconfigScale = m;
        s.schemes.push_back(sut);
    }
    s.reports = {{ReportKind::Averages, "params-reconfig-interval",
                  LoadBand::All}};
    return s;
}

ScenarioSpec
bandwidthSpec()
{
    ScenarioSpec s;
    s.name = "ablation-bandwidth";
    s.title = "Ablation: bandwidth contention & partitioning";

    // One scarce channel: the streaming batch side can saturate it,
    // but the three LC instances' own demand still fits. (The
    // paper's 3-channel Westmere is never the bottleneck at these
    // scales, which is why it could ignore bandwidth.)
    MemoryParams scarce;
    scarce.channels = 1;
    scarce.channelOccupancy = 24;

    SchemeUnderTest sut;
    sut.label = "Ubik/fixed";
    sut.policy = PolicyKind::Ubik;
    sut.slack = 0.05;
    s.schemes.push_back(sut);

    sut.label = "Ubik/contended";
    sut.mem = MemKind::Contended;
    sut.memParams = scarce;
    s.schemes.push_back(sut);

    sut.label = "Ubik/bw-part";
    sut.mem = MemKind::Partitioned;
    sut.lcMemShare = 0.5;
    s.schemes.push_back(sut);

    // Bandwidth-critical colocations only: memory-intensive LC apps
    // crossed with streaming-heavy batch mixes.
    s.source = MixSource::Explicit;
    for (const char *lc : {"moses", "shore", "specjbb"}) {
        for (double load : {0.2, 0.6}) {
            ScenarioMix sss;
            sss.lcPreset = lc;
            sss.load = load;
            sss.batch = {{{BatchClass::Streaming, 0},
                          {BatchClass::Streaming, 1},
                          {BatchClass::Streaming, 2}}};
            sss.batchName = "sss-0";
            s.mixes.push_back(sss);

            ScenarioMix ssf = sss;
            ssf.batch[2] = {BatchClass::Friendly, 0};
            ssf.batchName = "ssf-0";
            s.mixes.push_back(ssf);
        }
    }
    s.reports = {
        {ReportKind::PerApp, "bw", LoadBand::All},
        {ReportKind::Averages, "bw-avg", LoadBand::All},
    };
    s.notes =
        "Expected shape: contended memory degrades LC tails beyond "
        "Ubik's 5% slack (cache QoS cannot police the memory bus); "
        "strict-priority + batch regulation pulls tails back toward "
        "the fixed-latency reference, trading some batch throughput. "
        "This validates the paper's claim that Ubik composes with "
        "bandwidth QoS (§6).";
    return s;
}

/**
 * Shared base for the dynamic-load scenarios (§5.1 transients under
 * *offered-load* transients, not just phase changes): StaticLC — the
 * isolation reference that always holds the full target partition —
 * against Ubik at 5% slack, over cache-hungry colocations of the
 * three inertia-heavy LC apps. The per-scenario load profile is the
 * only variable.
 */
ScenarioSpec
dynamicBase(const char *name, const char *title, const char *tag)
{
    ScenarioSpec s;
    s.name = name;
    s.title = title;
    s.schemes = {
        {"StaticLC", SchemeKind::Vantage, ArrayKind::Z4_52,
         PolicyKind::StaticLc, 0.0},
        {"Ubik", SchemeKind::Vantage, ArrayKind::Z4_52,
         PolicyKind::Ubik, 0.05},
    };
    s.source = MixSource::Explicit;
    for (const char *lc : {"masstree", "shore", "specjbb"}) {
        ScenarioMix m;
        m.lcPreset = lc;
        m.load = 0.2;
        m.batch = {{{BatchClass::Friendly, 0},
                    {BatchClass::Fitting, 1},
                    {BatchClass::Streaming, 0}}};
        m.batchName = "fts-0";
        s.mixes.push_back(m);
    }
    s.reports = {
        {ReportKind::Averages, tag, LoadBand::All},
        {ReportKind::Distributions, std::string(tag) + "-dist",
         LoadBand::All},
    };
    s.notes =
        "Expected shape: both schemes' tails degrade equally versus "
        "the constant-rate baseline (offered-load transients hit the "
        "queue regardless of cache policy); Ubik tracks StaticLC's "
        "tail within its 5% slack while keeping a batch speedup "
        "advantage, because boosts are priced *before* space is "
        "taken, not reclaimed after a violation.";
    return s;
}

ScenarioSpec
flashCrowdSpec()
{
    ScenarioSpec s = dynamicBase(
        "flash-crowd",
        "Dynamic load: flash crowd (3x arrival rate mid-run)",
        "flash");
    s.profile.kind = LoadProfileKind::FlashCrowd;
    s.profile.start = 0.4;
    s.profile.duration = 0.2;
    s.profile.multiplier = 3.0;
    return s;
}

ScenarioSpec
diurnalSpec()
{
    ScenarioSpec s = dynamicBase(
        "diurnal",
        "Dynamic load: diurnal sinusoid (+/-50% around nominal)",
        "diurnal");
    s.profile.kind = LoadProfileKind::Diurnal;
    s.profile.amplitude = 0.5;
    s.profile.periods = 1.0;
    return s;
}

ScenarioSpec
burstsSpec()
{
    ScenarioSpec s = dynamicBase(
        "bursts",
        "Dynamic load: correlated bursts (4 windows, 4x rate, all "
        "LC instances together)",
        "bursts");
    s.profile.kind = LoadProfileKind::Bursts;
    s.profile.bursts = 4;
    s.profile.duration = 0.05;
    s.profile.multiplier = 4.0;
    s.profile.burstSeed = 1;
    return s;
}

ScenarioSpec
churnSpec()
{
    ScenarioSpec s = dynamicBase(
        "churn",
        "Dynamic load: app departure/return (no arrivals for 30% of "
        "the run)",
        "churn");
    s.profile.kind = LoadProfileKind::Churn;
    s.profile.start = 0.35;
    s.profile.duration = 0.3;
    return s;
}

/**
 * The fleet scenarios: the §7.1 datacenter claim, composed from the
 * sweep results at thousands-of-servers scale. These replace the old
 * one-off example mains (datacenter_utilization, colocation_planner,
 * worker_sizing, bandwidth_planner) with registry specs that run
 * through the one sweep/cache/report path.
 */
ScenarioSpec
fleetUtilizationSpec()
{
    ScenarioSpec s;
    s.name = "fleet-utilization";
    s.title =
        "Fleet: datacenter utilization at scale (the ~6x claim)";
    s.schemes = {
        {"StaticLC", SchemeKind::Vantage, ArrayKind::Z4_52,
         PolicyKind::StaticLc, 0.0},
        {"Ubik", SchemeKind::Vantage, ArrayKind::Z4_52,
         PolicyKind::Ubik, 0.05},
    };
    s.source = MixSource::Explicit;
    ScenarioMix m;
    m.lcPreset = "masstree";
    m.load = 0.2;
    m.batch = {{{BatchClass::Friendly, 1},
                {BatchClass::Friendly, 6},
                {BatchClass::Fitting, 3}}};
    m.batchName = "fft";
    s.mixes.push_back(m);
    s.fleet.servers = 1000;
    s.fleet.arrivals.users = 5.0;
    s.fleet.arrivals.nominalLoad = 0.2;
    s.fleet.arrivals.slices = 4;
    s.reports = {{ReportKind::Averages, "fleet-util", LoadBand::All}};
    s.notes =
        "Expected shape (§7.1): LC instances at ~20% load leave a "
        "dedicated fleet ~10% utilized; colocating 3 batch apps per "
        "server lifts utilization to ~60% (a ~6x lift) — and under "
        "Ubik the fleet-wide p95/p99 end-to-end tails hold within "
        "slack, so the saved machines are free. StaticLC saves the "
        "same machines here but at lower batch throughput; "
        "saved_vs_static is Ubik's margin over it.";
    return s;
}

ScenarioSpec
fleetColocationSpec()
{
    ScenarioSpec s;
    s.name = "fleet-colocation";
    s.title = "Fleet: advisor-planned colocation bundles";
    s.schemes = {
        {"StaticLC", SchemeKind::Vantage, ArrayKind::Z4_52,
         PolicyKind::StaticLc, 0.0},
        {"Ubik", SchemeKind::Vantage, ArrayKind::Z4_52,
         PolicyKind::Ubik, 0.05},
    };
    s.source = MixSource::Explicit;
    struct Bundle
    {
        const char *name;
        std::array<BatchSel, 3> batch;
    };
    const Bundle bundles[] = {
        {"analytics",
         {{{BatchClass::Friendly, 1},
           {BatchClass::Friendly, 8},
           {BatchClass::Friendly, 15}}}},
        {"compress",
         {{{BatchClass::Streaming, 2},
           {BatchClass::Streaming, 9},
           {BatchClass::Streaming, 16}}}},
        {"build-farm",
         {{{BatchClass::Insensitive, 3},
           {BatchClass::Insensitive, 10},
           {BatchClass::Insensitive, 17}}}},
        {"mixed",
         {{{BatchClass::Friendly, 4},
           {BatchClass::Fitting, 11},
           {BatchClass::Streaming, 18}}}},
    };
    for (const Bundle &b : bundles) {
        ScenarioMix m;
        m.lcPreset = "shore";
        m.load = 0.2;
        m.batch = b.batch;
        m.batchName = b.name;
        s.mixes.push_back(m);
    }
    s.fleet.servers = 400;
    s.fleet.arrivals.users = 2.0;
    s.fleet.arrivals.nominalLoad = 0.2;
    s.fleet.arrivals.slices = 6;
    s.fleet.arrivals.imbalance = 0.25;
    s.reports = {{ReportKind::Averages, "fleet-coloc", LoadBand::All}};
    s.notes =
        "Expected shape: the advisor's plan decides placement — a "
        "downsizable LC rotates across all batch bundles, a "
        "non-downsizable one is pinned to the lowest-pressure bundle "
        "(build-farm); per-server load imbalance widens the tail "
        "spread but Ubik's SLO violations stay near zero.";
    return s;
}

ScenarioSpec
fleetSizingSpec()
{
    ScenarioSpec s;
    s.name = "fleet-sizing";
    s.title = "Fleet: G/G/k worker autosizing under diurnal load";
    s.schemes = {
        {"Ubik", SchemeKind::Vantage, ArrayKind::Z4_52,
         PolicyKind::Ubik, 0.05},
    };
    s.source = MixSource::Explicit;
    for (double load : {0.2, 0.6}) {
        ScenarioMix m;
        m.lcPreset = "xapian";
        m.load = load;
        m.batch = {{{BatchClass::Friendly, 0},
                    {BatchClass::Fitting, 1},
                    {BatchClass::Streaming, 0}}};
        m.batchName = "fts-0";
        s.mixes.push_back(m);
    }
    s.fleet.servers = 250;
    s.fleet.arrivals.users = 1.0;
    s.fleet.arrivals.nominalLoad = 0.4;
    s.fleet.arrivals.slices = 8;
    s.fleet.arrivals.profile.kind = LoadProfileKind::Diurnal;
    s.fleet.arrivals.profile.amplitude = 0.5;
    s.fleet.arrivals.profile.periods = 1.0;
    s.fleet.queueWorkers = 0; // autosize
    s.fleet.maxWorkers = 8;
    s.fleet.interference = 0.15;
    s.fleet.abortProb = 0.02;
    s.fleet.tailTargetMs = 6.0;
    s.reports = {{ReportKind::Averages, "fleet-size", LoadBand::All}};
    s.notes =
        "Expected shape: off-peak slices run on few workers per LC "
        "instance; the diurnal peak pushes per-server load toward "
        "0.6 and the autosizer widens k until the "
        "interference-free tail meets the 6 ms target — mean_workers "
        "tracks the profile, and tails stay bounded through the "
        "peak.";
    return s;
}

ScenarioSpec
fleetBandwidthSpec()
{
    ScenarioSpec s;
    s.name = "fleet-bandwidth";
    s.title = "Fleet: bandwidth-scarce servers, streaming batch";
    MemoryParams scarce;
    scarce.channels = 1;
    scarce.channelOccupancy = 24;

    SchemeUnderTest sut;
    sut.label = "Ubik/fixed";
    sut.policy = PolicyKind::Ubik;
    sut.slack = 0.05;
    s.schemes.push_back(sut);

    sut.label = "Ubik/contended";
    sut.mem = MemKind::Contended;
    sut.memParams = scarce;
    s.schemes.push_back(sut);

    sut.label = "Ubik/bw-part";
    sut.mem = MemKind::Partitioned;
    sut.lcMemShare = 0.5;
    s.schemes.push_back(sut);

    s.source = MixSource::Explicit;
    ScenarioMix m;
    m.lcPreset = "moses";
    m.load = 0.6;
    m.batch = {{{BatchClass::Streaming, 0},
                {BatchClass::Streaming, 1},
                {BatchClass::Streaming, 2}}};
    m.batchName = "sss-0";
    s.mixes.push_back(m);
    s.fleet.servers = 300;
    s.fleet.arrivals.users = 1.0;
    s.fleet.arrivals.nominalLoad = 0.6;
    s.fleet.arrivals.slices = 4;
    s.reports = {{ReportKind::Averages, "fleet-bw", LoadBand::All}};
    s.notes =
        "Expected shape: on one scarce channel the streaming batch "
        "side saturates the bus and contended tails blow past slack "
        "fleet-wide; bandwidth partitioning pulls the p95/p99 tails "
        "back toward the fixed-latency reference at some batch "
        "throughput cost — cache QoS alone cannot police the memory "
        "bus (§6).";
    return s;
}

std::vector<ScenarioSpec>
buildBuiltins()
{
    return {
        fig9Spec(),       fig10Spec(),        fig11Spec(),
        fig12Spec(),      fig13Spec(),        flashCrowdSpec(),
        diurnalSpec(),    burstsSpec(),       churnSpec(),
        deboostSpec(),    feedbackSpec(),     paramsIdleSpec(),
        paramsGuardSpec(), paramsIntervalSpec(), bandwidthSpec(),
        fleetUtilizationSpec(), fleetColocationSpec(),
        fleetSizingSpec(), fleetBandwidthSpec(),
    };
}

} // namespace

const ScenarioRegistry &
ScenarioRegistry::instance()
{
    static ScenarioRegistry registry(buildBuiltins());
    return registry;
}

} // namespace ubik
