#include "sim/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <dirent.h>
#include <fstream>
#include <map>
#include <set>

#include "common/log.h"
#include "sim/claim_store.h"
#include "sim/kind_names.h"
#include "sim/parallel_sweep.h"
#include "sim/result_cache.h"
#include "workload/trace_app.h"

namespace ubik {

// ---------------------------------------------------------------------------
// Kind names
// ---------------------------------------------------------------------------

const char *
mixSourceName(MixSource s)
{
    switch (s) {
      case MixSource::Standard:
        return "standard";
      case MixSource::CacheHungry:
        return "cache-hungry";
      case MixSource::Explicit:
        return "explicit";
    }
    panic("bad MixSource");
}

bool
tryMixSourceFromName(const std::string &name, MixSource &out)
{
    for (MixSource s : {MixSource::Standard, MixSource::CacheHungry,
                        MixSource::Explicit}) {
        if (name == mixSourceName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

const char *
reportKindName(ReportKind k)
{
    switch (k) {
      case ReportKind::Distributions:
        return "distributions";
      case ReportKind::Averages:
        return "averages";
      case ReportKind::PerApp:
        return "per-app";
      case ReportKind::UbikInterrupts:
        return "ubik-interrupts";
      case ReportKind::Csv:
        return "csv";
      case ReportKind::Json:
        return "json";
    }
    panic("bad ReportKind");
}

bool
tryReportKindFromName(const std::string &name, ReportKind &out)
{
    for (ReportKind k :
         {ReportKind::Distributions, ReportKind::Averages,
          ReportKind::PerApp, ReportKind::UbikInterrupts,
          ReportKind::Csv, ReportKind::Json}) {
        if (name == reportKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

// ---------------------------------------------------------------------------
// JSON serialization
// ---------------------------------------------------------------------------

namespace {

/** Reject unknown keys so spec typos fail loudly. */
void
checkKeys(const Json &obj, std::initializer_list<const char *> allowed,
          const char *what)
{
    for (const auto &m : obj.members()) {
        bool ok = false;
        for (const char *k : allowed)
            if (m.first == k) {
                ok = true;
                break;
            }
        if (!ok)
            fatal("scenario %s: unknown key \"%s\"", what,
                  m.first.c_str());
    }
}

std::string
strField(const Json &obj, const char *key, const std::string &def)
{
    const Json *v = obj.find(key);
    return v ? v->str() : def;
}

double
numField(const Json &obj, const char *key, double def)
{
    const Json *v = obj.find(key);
    return v ? v->number() : def;
}

bool
boolField(const Json &obj, const char *key, bool def)
{
    const Json *v = obj.find(key);
    return v ? v->boolean() : def;
}

std::uint32_t
u32Field(const Json &obj, const char *key, std::uint32_t def)
{
    const Json *v = obj.find(key);
    if (!v)
        return def;
    double d = v->number();
    if (d < 0 || d != std::floor(d) || d > 4294967295.0)
        fatal("scenario: \"%s\" must be a non-negative integer", key);
    return static_cast<std::uint32_t>(d);
}

Json
ubikToJson(const UbikConfig &u)
{
    Json j = Json::object();
    j.set("slack", u.slack);
    j.set("idle_options", u.idleOptions);
    j.set("deboost_guard", u.deboostGuard);
    j.set("slack_gain", u.slackGain);
    j.set("duty_alpha", u.dutyAlpha);
    j.set("accurate_deboost", u.accurateDeboost);
    return j;
}

UbikConfig
ubikFromJson(const Json &j)
{
    checkKeys(j,
              {"slack", "idle_options", "deboost_guard", "slack_gain",
               "duty_alpha", "accurate_deboost"},
              "scheme.ubik");
    UbikConfig u;
    u.slack = numField(j, "slack", u.slack);
    u.idleOptions = u32Field(j, "idle_options", u.idleOptions);
    u.deboostGuard = numField(j, "deboost_guard", u.deboostGuard);
    u.slackGain = numField(j, "slack_gain", u.slackGain);
    u.dutyAlpha = numField(j, "duty_alpha", u.dutyAlpha);
    u.accurateDeboost =
        boolField(j, "accurate_deboost", u.accurateDeboost);
    return u;
}

Json
memParamsToJson(const MemoryParams &m)
{
    Json j = Json::object();
    j.set("base_latency", m.baseLatency);
    j.set("channels", m.channels);
    j.set("channel_occupancy", m.channelOccupancy);
    return j;
}

MemoryParams
memParamsFromJson(const Json &j)
{
    checkKeys(j, {"base_latency", "channels", "channel_occupancy"},
              "scheme.mem_params");
    MemoryParams m;
    m.baseLatency = static_cast<Cycles>(
        u32Field(j, "base_latency",
                 static_cast<std::uint32_t>(m.baseLatency)));
    m.channels = u32Field(j, "channels", m.channels);
    m.channelOccupancy = static_cast<Cycles>(
        u32Field(j, "channel_occupancy",
                 static_cast<std::uint32_t>(m.channelOccupancy)));
    return m;
}

Json
schemeToJson(const SchemeUnderTest &s)
{
    Json j = Json::object();
    j.set("label", s.label);
    j.set("policy", policyKindName(s.policy));
    j.set("scheme", schemeKindName(s.scheme));
    j.set("array", arrayKindName(s.array));
    j.set("slack", s.slack);
    j.set("ubik", ubikToJson(s.ubik));
    j.set("reconfig_scale", s.reconfigScale);
    j.set("mem", memKindName(s.mem));
    j.set("mem_params", memParamsToJson(s.memParams));
    j.set("lc_mem_share", s.lcMemShare);
    return j;
}

SchemeUnderTest
schemeFromJson(const Json &j)
{
    checkKeys(j,
              {"label", "policy", "scheme", "array", "slack", "ubik",
               "reconfig_scale", "mem", "mem_params", "lc_mem_share"},
              "scheme");
    SchemeUnderTest s;
    s.label = strField(j, "label", "");
    if (s.label.empty())
        fatal("scenario scheme: \"label\" is required");
    if (const Json *v = j.find("policy"))
        s.policy = policyKindFromName(v->str());
    if (const Json *v = j.find("scheme"))
        s.scheme = schemeKindFromName(v->str());
    if (const Json *v = j.find("array"))
        s.array = arrayKindFromName(v->str());
    s.slack = numField(j, "slack", s.slack);
    if (const Json *v = j.find("ubik"))
        s.ubik = ubikFromJson(*v);
    s.reconfigScale = numField(j, "reconfig_scale", s.reconfigScale);
    if (const Json *v = j.find("mem"))
        s.mem = memKindFromName(v->str());
    if (const Json *v = j.find("mem_params"))
        s.memParams = memParamsFromJson(*v);
    s.lcMemShare = numField(j, "lc_mem_share", s.lcMemShare);
    return s;
}

Json
mixToJson(const ScenarioMix &m)
{
    Json j = Json::object();
    if (!m.name.empty())
        j.set("name", m.name);
    j.set("lc", m.lcPreset);
    j.set("load", m.load);
    Json batch = Json::array();
    for (const BatchSel &b : m.batch) {
        Json jb = Json::object();
        jb.set("class", std::string(1, batchClassCode(b.cls)));
        jb.set("variation", b.variation);
        batch.push(std::move(jb));
    }
    j.set("batch", std::move(batch));
    if (!m.batchName.empty())
        j.set("batch_name", m.batchName);
    if (!m.lcTraces.empty()) {
        Json t = Json::array();
        for (const auto &p : m.lcTraces)
            t.push(p);
        j.set("lc_traces", std::move(t));
    }
    if (!m.batchTraces.empty()) {
        Json t = Json::array();
        for (const auto &p : m.batchTraces)
            t.push(p);
        j.set("batch_traces", std::move(t));
    }
    return j;
}

ScenarioMix
mixFromJson(const Json &j)
{
    checkKeys(j,
              {"name", "lc", "load", "batch", "batch_name",
               "lc_traces", "batch_traces"},
              "mix");
    ScenarioMix m;
    m.name = strField(j, "name", "");
    m.lcPreset = strField(j, "lc", m.lcPreset);
    m.load = numField(j, "load", m.load);
    if (const Json *v = j.find("batch")) {
        if (v->size() != 3)
            fatal("scenario mix: \"batch\" needs exactly 3 entries "
                  "(has %zu)",
                  v->size());
        for (std::size_t i = 0; i < 3; i++) {
            const Json &jb = v->at(i);
            checkKeys(jb, {"class", "variation"}, "mix.batch");
            std::string code = strField(jb, "class", "f");
            if (code.size() != 1 ||
                !tryBatchClassFromCode(code[0], m.batch[i].cls))
                fatal("scenario mix: bad batch class \"%s\" "
                      "(one of n, f, t, s)",
                      code.c_str());
            m.batch[i].variation =
                u32Field(jb, "variation", m.batch[i].variation);
        }
    }
    m.batchName = strField(j, "batch_name", "");
    if (const Json *v = j.find("lc_traces"))
        for (const Json &p : v->items())
            m.lcTraces.push_back(p.str());
    if (const Json *v = j.find("batch_traces"))
        for (const Json &p : v->items())
            m.batchTraces.push_back(p.str());
    return m;
}

/** Kind plus its relevant parameters only, mirroring
 *  LoadProfile::canonical(), so the serialized form is canonical. */
Json
profileToJson(const LoadProfile &p)
{
    Json j = Json::object();
    j.set("kind", loadProfileKindName(p.kind));
    switch (p.kind) {
      case LoadProfileKind::Constant:
        break;
      case LoadProfileKind::Diurnal:
        j.set("amplitude", p.amplitude);
        j.set("periods", p.periods);
        break;
      case LoadProfileKind::FlashCrowd:
        j.set("start", p.start);
        j.set("duration", p.duration);
        j.set("multiplier", p.multiplier);
        break;
      case LoadProfileKind::Bursts:
        j.set("bursts", p.bursts);
        j.set("duration", p.duration);
        j.set("multiplier", p.multiplier);
        j.set("burst_seed", p.burstSeed);
        break;
      case LoadProfileKind::Churn:
        j.set("start", p.start);
        j.set("duration", p.duration);
        break;
    }
    return j;
}

LoadProfile
profileFromJson(const Json &j)
{
    checkKeys(j,
              {"kind", "amplitude", "periods", "start", "duration",
               "multiplier", "bursts", "burst_seed"},
              "load_profile");
    LoadProfile p;
    std::string kind = strField(j, "kind", "constant");
    if (!tryLoadProfileKindFromName(kind, p.kind))
        fatal("scenario load_profile: unknown kind \"%s\" (constant, "
              "diurnal, flash-crowd, bursts, churn)",
              kind.c_str());
    p.amplitude = numField(j, "amplitude", p.amplitude);
    p.periods = numField(j, "periods", p.periods);
    p.start = numField(j, "start", p.start);
    p.duration = numField(j, "duration", p.duration);
    p.multiplier = numField(j, "multiplier", p.multiplier);
    p.bursts = u32Field(j, "bursts", p.bursts);
    if (const Json *v = j.find("burst_seed")) {
        double d = v->number();
        if (d < 0 || d != std::floor(d))
            fatal("scenario load_profile: \"burst_seed\" must be a "
                  "non-negative integer");
        p.burstSeed = static_cast<std::uint64_t>(d);
    }
    p.validate("scenario load_profile");
    return p;
}

std::uint64_t
u64Field(const Json &obj, const char *key, std::uint64_t def)
{
    const Json *v = obj.find(key);
    if (!v)
        return def;
    double d = v->number();
    if (d < 0 || d != std::floor(d))
        fatal("scenario: \"%s\" must be a non-negative integer", key);
    return static_cast<std::uint64_t>(d);
}

Json
arrivalsToJson(const ArrivalSpec &a)
{
    Json j = Json::object();
    j.set("users", a.users);
    j.set("nominal_load", a.nominalLoad);
    j.set("slices", a.slices);
    j.set("imbalance", a.imbalance);
    j.set("seed", a.seed);
    j.set("load_profile", profileToJson(a.profile));
    return j;
}

ArrivalSpec
arrivalsFromJson(const Json &j)
{
    checkKeys(j,
              {"users", "nominal_load", "slices", "imbalance", "seed",
               "load_profile"},
              "fleet.arrivals");
    ArrivalSpec a;
    a.users = numField(j, "users", a.users);
    a.nominalLoad = numField(j, "nominal_load", a.nominalLoad);
    a.slices = u32Field(j, "slices", a.slices);
    a.imbalance = numField(j, "imbalance", a.imbalance);
    a.seed = u32Field(j, "seed", a.seed);
    if (const Json *v = j.find("load_profile"))
        a.profile = profileFromJson(*v);
    return a;
}

Json
fleetToJsonBlock(const FleetSpec &f)
{
    Json j = Json::object();
    j.set("servers", f.servers);
    j.set("lc_per_server", f.lcPerServer);
    j.set("batch_per_server", f.batchPerServer);
    j.set("arrivals", arrivalsToJson(f.arrivals));
    j.set("queue_workers", f.queueWorkers);
    j.set("max_workers", f.maxWorkers);
    j.set("interference", f.interference);
    j.set("abort_prob", f.abortProb);
    j.set("queue_requests", f.queueRequests);
    j.set("queue_warmup", f.queueWarmup);
    j.set("queue_seed", f.queueSeed);
    j.set("tail_target_ms", f.tailTargetMs);
    j.set("slo_margin", f.sloMargin);
    j.set("placement_seed", f.placementSeed);
    return j;
}

FleetSpec
fleetFromJsonBlock(const Json &j)
{
    checkKeys(j,
              {"servers", "lc_per_server", "batch_per_server",
               "arrivals", "queue_workers", "max_workers",
               "interference", "abort_prob", "queue_requests",
               "queue_warmup", "queue_seed", "tail_target_ms",
               "slo_margin", "placement_seed"},
              "fleet");
    FleetSpec f;
    f.servers = u32Field(j, "servers", f.servers);
    f.lcPerServer = u32Field(j, "lc_per_server", f.lcPerServer);
    f.batchPerServer =
        u32Field(j, "batch_per_server", f.batchPerServer);
    if (const Json *v = j.find("arrivals"))
        f.arrivals = arrivalsFromJson(*v);
    f.queueWorkers = u32Field(j, "queue_workers", f.queueWorkers);
    f.maxWorkers = u32Field(j, "max_workers", f.maxWorkers);
    f.interference = numField(j, "interference", f.interference);
    f.abortProb = numField(j, "abort_prob", f.abortProb);
    f.queueRequests = u32Field(j, "queue_requests", f.queueRequests);
    f.queueWarmup = u32Field(j, "queue_warmup", f.queueWarmup);
    f.queueSeed = u64Field(j, "queue_seed", f.queueSeed);
    f.tailTargetMs = numField(j, "tail_target_ms", f.tailTargetMs);
    f.sloMargin = numField(j, "slo_margin", f.sloMargin);
    f.placementSeed = u64Field(j, "placement_seed", f.placementSeed);
    f.validate("scenario fleet");
    return f;
}

Json
reportToJson(const ReportBlock &b)
{
    Json j = Json::object();
    j.set("kind", reportKindName(b.kind));
    j.set("tag", b.tag);
    if (b.band != LoadBand::All)
        j.set("load", loadBandName(b.band));
    return j;
}

ReportBlock
reportFromJson(const Json &j)
{
    checkKeys(j, {"kind", "tag", "load"}, "report");
    ReportBlock b;
    std::string kind = strField(j, "kind", "");
    if (!tryReportKindFromName(kind, b.kind))
        fatal("scenario report: unknown kind \"%s\" (distributions, "
              "averages, per-app, ubik-interrupts, csv, json)",
              kind.c_str());
    b.tag = strField(j, "tag", "");
    if (b.tag.empty())
        fatal("scenario report: \"tag\" is required");
    std::string band = strField(j, "load", "all");
    if (!tryLoadBandFromName(band, b.band))
        fatal("scenario report: bad load band \"%s\" (all, low, "
              "high)",
              band.c_str());
    return b;
}

} // namespace

Json
scenarioToJson(const ScenarioSpec &spec)
{
    Json j = Json::object();
    j.set("name", spec.name);
    j.set("title", spec.title);
    if (!spec.notes.empty())
        j.set("notes", spec.notes);
    Json schemes = Json::array();
    for (const auto &s : spec.schemes)
        schemes.push(schemeToJson(s));
    j.set("schemes", std::move(schemes));
    j.set("source", mixSourceName(spec.source));
    if (spec.mixesPerLcCap)
        j.set("mixes_per_lc", spec.mixesPerLcCap);
    if (spec.band != LoadBand::All)
        j.set("load", loadBandName(spec.band));
    if (!spec.mixes.empty()) {
        Json mixes = Json::array();
        for (const auto &m : spec.mixes)
            mixes.push(mixToJson(m));
        j.set("mixes", std::move(mixes));
    }
    j.set("ooo", spec.ooo);
    if (spec.seeds)
        j.set("seeds", spec.seeds);
    if (!spec.profile.isConstant())
        j.set("load_profile", profileToJson(spec.profile));
    Json reports = Json::array();
    for (const auto &b : spec.reports)
        reports.push(reportToJson(b));
    j.set("reports", std::move(reports));
    if (spec.fleet.servers)
        j.set("fleet", fleetToJsonBlock(spec.fleet));
    return j;
}

ScenarioSpec
scenarioFromJson(const Json &j)
{
    checkKeys(j,
              {"name", "title", "notes", "schemes", "source",
               "mixes_per_lc", "load", "mixes", "ooo", "seeds",
               "load_profile", "reports", "fleet"},
              "spec");
    ScenarioSpec spec;
    spec.name = strField(j, "name", "");
    if (spec.name.empty())
        fatal("scenario spec: \"name\" is required");
    spec.title = strField(j, "title", spec.name);
    spec.notes = strField(j, "notes", "");
    if (const Json *v = j.find("schemes"))
        for (const Json &js : v->items())
            spec.schemes.push_back(schemeFromJson(js));
    std::string source = strField(j, "source", "standard");
    if (!tryMixSourceFromName(source, spec.source))
        fatal("scenario spec: unknown source \"%s\" (standard, "
              "cache-hungry, explicit)",
              source.c_str());
    spec.mixesPerLcCap = u32Field(j, "mixes_per_lc", 0);
    std::string band = strField(j, "load", "all");
    if (!tryLoadBandFromName(band, spec.band))
        fatal("scenario spec: bad load band \"%s\" (all, low, high)",
              band.c_str());
    if (const Json *v = j.find("mixes"))
        for (const Json &jm : v->items())
            spec.mixes.push_back(mixFromJson(jm));
    spec.ooo = boolField(j, "ooo", true);
    spec.seeds = u32Field(j, "seeds", 0);
    if (const Json *v = j.find("load_profile"))
        spec.profile = profileFromJson(*v);
    if (const Json *v = j.find("reports"))
        for (const Json &jb : v->items())
            spec.reports.push_back(reportFromJson(jb));
    if (const Json *v = j.find("fleet"))
        spec.fleet = fleetFromJsonBlock(*v);
    return spec;
}

std::string
scenarioCanonicalJson(const ScenarioSpec &spec)
{
    return scenarioToJson(spec).dump(/*pretty=*/true);
}

// ---------------------------------------------------------------------------
// Overrides
// ---------------------------------------------------------------------------

void
applyScenarioOverride(ScenarioSpec &spec, const std::string &assignment)
{
    auto eq = assignment.find('=');
    if (eq == std::string::npos || eq == 0)
        fatal("--set needs key=value (got '%s')", assignment.c_str());
    std::string key = assignment.substr(0, eq);
    std::string value = assignment.substr(eq + 1);

    auto parseU32 = [&]() -> std::uint32_t {
        char *end = nullptr;
        unsigned long long v = std::strtoull(value.c_str(), &end, 10);
        if (end == value.c_str() || *end || v > 0xFFFFFFFFull)
            fatal("--set %s: '%s' is not a non-negative integer",
                  key.c_str(), value.c_str());
        return static_cast<std::uint32_t>(v);
    };

    if (key == "seeds") {
        spec.seeds = parseU32();
    } else if (key == "mixes") {
        spec.mixesPerLcCap = parseU32();
    } else if (key == "load") {
        if (!tryLoadBandFromName(value, spec.band))
            fatal("--set load: '%s' is not all, low, or high",
                  value.c_str());
    } else if (key == "ooo") {
        if (value == "1" || value == "true")
            spec.ooo = true;
        else if (value == "0" || value == "false")
            spec.ooo = false;
        else
            fatal("--set ooo: '%s' is not a boolean", value.c_str());
    } else if (key == "source") {
        if (!tryMixSourceFromName(value, spec.source))
            fatal("--set source: '%s' is not standard, cache-hungry, "
                  "or explicit",
                  value.c_str());
    } else if (key == "profile") {
        // Kind only, at the default parameters; full profiles come
        // from the spec file's "load_profile" block.
        LoadProfile p;
        if (!tryLoadProfileKindFromName(value, p.kind))
            fatal("--set profile: '%s' is not constant, diurnal, "
                  "flash-crowd, bursts, or churn",
                  value.c_str());
        p.validate("--set profile");
        spec.profile = p;
    } else if (key == "schemes") {
        // Comma-separated label filter, keeping spec order.
        std::vector<std::string> want;
        std::size_t start = 0;
        for (std::size_t i = 0; i <= value.size(); i++) {
            if (i == value.size() || value[i] == ',') {
                if (i > start)
                    want.push_back(value.substr(start, i - start));
                start = i + 1;
            }
        }
        // An empty filter (or one of only separators/whitespace)
        // would silently empty spec.schemes and run a zero-scheme
        // sweep; a repeated label is equally a typo. Both die here.
        if (want.empty())
            fatal("--set schemes: empty label filter would leave "
                  "scenario '%s' with no schemes to run",
                  spec.name.c_str());
        for (std::size_t i = 0; i < want.size(); i++)
            for (std::size_t k = i + 1; k < want.size(); k++)
                if (want[i] == want[k])
                    fatal("--set schemes: label '%s' listed twice",
                          want[i].c_str());
        std::vector<SchemeUnderTest> kept;
        for (const auto &s : spec.schemes)
            if (std::find(want.begin(), want.end(), s.label) !=
                want.end())
                kept.push_back(s);
        for (const auto &w : want) {
            bool found = false;
            for (const auto &s : spec.schemes)
                found = found || s.label == w;
            if (!found)
                fatal("--set schemes: no scheme labeled '%s' in "
                      "scenario '%s'",
                      w.c_str(), spec.name.c_str());
        }
        spec.schemes = std::move(kept);
    } else if (key == "servers") {
        // Resize the fleet stage; meaningless on a scenario without
        // one (there is no sensible default for the rest of the
        // fleet block, so refuse rather than invent one).
        if (spec.fleet.servers == 0)
            fatal("--set servers: scenario '%s' has no fleet stage",
                  spec.name.c_str());
        std::uint32_t n = parseU32();
        if (n == 0)
            fatal("--set servers: must be >= 1");
        spec.fleet.servers = n;
    } else {
        fatal("--set: unknown key '%s' (seeds, mixes, load, ooo, "
              "source, profile, schemes, servers)",
              key.c_str());
    }
}

void
applyScenarioOverrides(ScenarioSpec &spec,
                       const std::vector<std::string> &sets)
{
    for (const auto &s : sets)
        applyScenarioOverride(spec, s);
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

ExperimentConfig
scenarioConfig(const ScenarioSpec &spec, ExperimentConfig cfg)
{
    if (spec.seeds)
        cfg.seeds = spec.seeds;
    return cfg;
}

namespace {

std::vector<MixSpec>
filterBand(std::vector<MixSpec> mixes, LoadBand band)
{
    if (band == LoadBand::All)
        return mixes;
    std::vector<MixSpec> out;
    for (auto &m : mixes)
        if (isLowLoad(m.lc.load) == (band == LoadBand::Low))
            out.push_back(std::move(m));
    return out;
}

/** One streamed load + content hash per distinct path, shared across
 *  every mix of one expansion (mixes routinely replay one trace). */
class TraceLoader
{
  public:
    std::vector<std::shared_ptr<const TraceApp>>
    load(const std::vector<std::string> &paths, const char *what,
         const std::string &mix_name)
    {
        if (paths.size() != 0 && paths.size() != 1 &&
            paths.size() != 3)
            fatal("mix %s: %s must list 0, 1, or 3 traces (has %zu)",
                  mix_name.c_str(), what, paths.size());
        std::vector<std::shared_ptr<const TraceApp>> out;
        for (const auto &p : paths) {
            auto it = cache_.find(p);
            if (it == cache_.end())
                it = cache_.emplace(p, TraceApp::load(p)).first;
            out.push_back(it->second);
        }
        return out;
    }

  private:
    std::map<std::string, std::shared_ptr<const TraceApp>> cache_;
};

MixSpec
expandMix(const ScenarioMix &e, TraceLoader &traces)
{
    MixSpec m;
    m.lc.app = lc_presets::byName(e.lcPreset);
    m.lc.load = e.load;
    std::string codes;
    for (std::size_t i = 0; i < 3; i++) {
        m.batch.apps[i] =
            batch_presets::make(e.batch[i].cls, e.batch[i].variation);
        codes += batchClassCode(e.batch[i].cls);
    }
    m.batch.name = e.batchName.empty() ? codes : e.batchName;
    m.name = e.name.empty()
                 ? e.lcPreset + (isLowLoad(e.load) ? "-lo" : "-hi") +
                       "/" + m.batch.name
                 : e.name;
    m.lc.traces = traces.load(e.lcTraces, "lc_traces", m.name);
    m.batch.traces =
        traces.load(e.batchTraces, "batch_traces", m.name);
    return m;
}

} // namespace

std::vector<MixSpec>
buildScenarioMixes(const ScenarioSpec &spec,
                   const ExperimentConfig &cfg)
{
    // The per-LC cap parameterizes the standard matrix only; accepting
    // it silently elsewhere would run a far bigger sweep than the user
    // asked to cap.
    if (spec.mixesPerLcCap && spec.source != MixSource::Standard)
        fatal("scenario '%s': mixes_per_lc only applies to the "
              "standard mix source (source is %s)",
              spec.name.c_str(), mixSourceName(spec.source));
    // Likewise, hand-listed mixes with a non-explicit source would
    // silently run the full standard matrix instead of the user's
    // colocations (the classic forgotten "source": "explicit").
    if (!spec.mixes.empty() && spec.source != MixSource::Explicit)
        fatal("scenario '%s': \"mixes\" are listed but the source is "
              "%s — set \"source\": \"explicit\" to run them",
              spec.name.c_str(), mixSourceName(spec.source));
    spec.profile.validate(
        ("scenario '" + spec.name + "' load_profile").c_str());
    std::vector<MixSpec> selected;
    switch (spec.source) {
      case MixSource::Standard: {
        std::uint32_t per_lc = cfg.mixesPerLc;
        if (spec.mixesPerLcCap)
            per_lc = std::min(per_lc, spec.mixesPerLcCap);
        selected =
            filterBand(buildMixes(2, /*seed=*/1, per_lc), spec.band);
        break;
      }
      case MixSource::CacheHungry:
        selected = filterBand(cacheHungryMixes(), spec.band);
        break;
      case MixSource::Explicit: {
        if (spec.mixes.empty())
            fatal("scenario '%s': source is explicit but \"mixes\" "
                  "is empty",
                  spec.name.c_str());
        // Filter before expanding so band-excluded mixes never load
        // their traces.
        TraceLoader traces;
        for (const auto &e : spec.mixes) {
            if (spec.band != LoadBand::All &&
                isLowLoad(e.load) != (spec.band == LoadBand::Low))
                continue;
            selected.push_back(expandMix(e, traces));
        }
        break;
      }
    }
    // The spec's load profile applies to every selected mix's LC
    // side; it rides inside the MixSpec from here on (through
    // MixRunner into the Cmp arrival pump and the cache keys).
    for (MixSpec &m : selected)
        m.lc.profile = spec.profile;
    // Static sharding (UBIK_SHARD=i/n): keep every n-th mix. A pure
    // selection — cache keys are untouched — so shards filled by
    // separate CI jobs merge into one coherent cache, and any job can
    // later serve the full matrix from it.
    if (cfg.shardCount > 1) {
        std::vector<MixSpec> mine;
        for (std::size_t i = 0; i < selected.size(); i++)
            if (i % cfg.shardCount == cfg.shardIndex)
                mine.push_back(std::move(selected[i]));
        std::fprintf(stderr,
                     "  [shard] %u/%u: %zu of %zu mixes selected\n",
                     cfg.shardIndex, cfg.shardCount, mine.size(),
                     selected.size());
        selected = std::move(mine);
    }
    return selected;
}

std::vector<SweepResult>
runSchemeSweep(const ExperimentConfig &cfg,
               const std::vector<SchemeUnderTest> &schemes,
               const std::vector<MixSpec> &mixes, bool ooo,
               ResultCache *shared, SweepAccounting *acct)
{
    MixRunner runner(cfg, ooo);
    std::unique_ptr<ResultCache> owned;
    if (!shared)
        owned = ResultCache::open(cfg.cacheDir);
    ResultCache *cache = shared ? shared : owned.get();
    runner.attachCache(cache);
    ParallelSweep engine(runner, cfg.jobs);
    engine.attachCache(cache);
    std::string worker = cfg.workerId;
    if (cfg.fleet) {
        if (!cache)
            fatal("--fleet needs a shared cache: pass --cache-dir "
                  "(or UBIK_CACHE_DIR)");
        // Claim release must imply "result on disk" for peers (and
        // for crash recovery), so records are fsync'd before release.
        cache->setDurable(true);
        if (worker.empty())
            worker = ClaimStore::defaultOwner();
        FleetOptions opt;
        opt.workerId = worker;
        opt.leaseTtlSec = cfg.leaseTtlSec;
        engine.enableFleet(opt);
    }
    std::vector<SweepJob> jobs =
        buildSweepJobs(schemes, mixes, cfg.seeds);
    // Live progress from inside the engine (the per-scheme summary
    // lines below only appear once the whole sweep is done).
    std::size_t step = std::max<std::size_t>(1, jobs.size() / 20);
    SweepProgress last;
    std::vector<MixRunResult> results =
        engine.run(jobs, [&](const SweepProgress &p) {
            last = p;
            if (p.done % step == 0 || p.done == p.total)
                std::fprintf(stderr,
                             "  [sweep] %zu/%zu runs done "
                             "(%zu cached, %zu computed, %zu remote, "
                             "%.1fs)\n",
                             p.done, p.total, p.hits, p.computed,
                             p.remote, p.elapsedSec);
        });
    // Machine-greppable per-process accounting: CI sums `computed=`
    // across fleet workers to prove zero duplicate computation,
    // `degraded=` counts fault-tolerance events (0 on a clean run),
    // and elapsed/rate give each worker's wall-clock throughput
    // (rate is computed-per-second — cache hits are free).
    std::uint64_t degraded =
        cache ? cache->stats().degraded() : 0;
    double rate = last.elapsedSec > 0
                      ? last.computed / last.elapsedSec
                      : 0.0;
    std::fprintf(stderr,
                 "  [sweep-summary] worker=%s jobs=%zu hits=%zu "
                 "computed=%zu remote=%zu degraded=%llu "
                 "elapsed=%.2fs rate=%.2f/s\n",
                 worker.empty() ? "local" : worker.c_str(),
                 jobs.size(), last.hits, last.computed, last.remote,
                 static_cast<unsigned long long>(degraded),
                 last.elapsedSec, rate);
    if (acct) {
        acct->worker = worker.empty() ? "local" : worker;
        acct->jobs = jobs.size();
        acct->hits = last.hits;
        acct->computed = last.computed;
        acct->remote = last.remote;
        acct->degraded = degraded;
        acct->elapsedSec = last.elapsedSec;
        acct->workers = engine.workers();
    }
    if (cache)
        printCacheStats(*cache);

    // Regroup the flat job-ordered results per scheme (jobs are
    // scheme-major, so each scheme's block is contiguous).
    std::vector<SweepResult> out;
    std::size_t next = 0;
    for (const auto &sut : schemes) {
        SweepResult sr;
        sr.label = sut.label;
        for (const auto &mix : mixes)
            for (std::uint32_t s = 0; s < cfg.seeds; s++) {
                sr.runs.push_back(results[next++]);
                sr.mixNames.push_back(mix.name);
                sr.mixLoads.push_back(mix.lc.load);
                sr.seeds.push_back(s + 1);
            }
        std::fprintf(stderr, "  [%s] %zu runs done (%u workers)\n",
                     sr.label.c_str(), sr.runs.size(),
                     engine.workers());
        out.push_back(std::move(sr));
    }
    return out;
}

ScenarioResult
runScenario(const ScenarioSpec &spec, const ExperimentConfig &cfg0,
            ResultCache *shared)
{
    if (spec.schemes.empty())
        fatal("scenario '%s': no schemes to run", spec.name.c_str());
    spec.fleet.validate(
        ("scenario '" + spec.name + "' fleet").c_str());
    ExperimentConfig cfg = scenarioConfig(spec, cfg0);
    std::vector<MixSpec> mixes = buildScenarioMixes(spec, cfg);
    if (mixes.empty())
        fatal("scenario '%s': mix selection is empty",
              spec.name.c_str());
    // One cache open serves both the sweep and the fleet stage (the
    // sweep warms the baselines the composition re-reads).
    std::unique_ptr<ResultCache> owned;
    if (!shared)
        owned = ResultCache::open(cfg.cacheDir);
    ResultCache *cache = shared ? shared : owned.get();
    ScenarioResult res;
    res.sweeps = runSchemeSweep(cfg, spec.schemes, mixes, spec.ooo,
                                cache, &res.accounting);
    if (spec.fleet.servers) {
        res.fleet = runFleet(spec.fleet, spec.schemes, mixes,
                             res.sweeps, cfg, spec.ooo, cache);
        res.hasFleet = true;
    }
    res.mixes = std::move(mixes);
    return res;
}

void
renderReports(const ScenarioSpec &spec, const ScenarioResult &res)
{
    for (const ReportBlock &b : spec.reports) {
        std::vector<SweepResult> view =
            filterByLoad(res.sweeps, b.band);
        switch (b.kind) {
          case ReportKind::Distributions:
            printDistributions(view, b.tag.c_str());
            break;
          case ReportKind::Averages:
            printAverages(view, b.tag.c_str());
            break;
          case ReportKind::PerApp:
            printPerApp(view, b.tag.c_str());
            break;
          case ReportKind::UbikInterrupts:
            printUbikInterrupts(view, b.tag.c_str());
            break;
          case ReportKind::Csv: {
            const char *dir = std::getenv("UBIK_CSV_DIR");
            exportCsv(view, b.tag.c_str(),
                      dir && *dir ? dir : ".");
            break;
          }
          case ReportKind::Json: {
            const char *dir = std::getenv("UBIK_JSON_DIR");
            std::string path =
                std::string(dir && *dir ? dir : ".") + "/" + b.tag +
                "_results.json";
            writeResultsJson(view, spec.name, path);
            std::fprintf(stderr, "  [%s] wrote %s\n", b.tag.c_str(),
                         path.c_str());
            break;
          }
        }
    }
}

Json
scenarioResultsJson(const ScenarioSpec &spec,
                    const ScenarioResult &res, bool accounting)
{
    Json root = resultsToJson(res.sweeps, spec.name);
    if (res.hasFleet)
        root.set("fleet", fleetToJson(res.fleet));
    if (accounting) {
        const SweepAccounting &a = res.accounting;
        Json ja = Json::object();
        ja.set("worker", a.worker);
        ja.set("jobs", static_cast<std::uint64_t>(a.jobs));
        ja.set("hits", static_cast<std::uint64_t>(a.hits));
        ja.set("computed", static_cast<std::uint64_t>(a.computed));
        ja.set("remote", static_cast<std::uint64_t>(a.remote));
        ja.set("degraded", a.degraded);
        ja.set("elapsed_sec", a.elapsedSec);
        ja.set("rate_per_sec", a.elapsedSec > 0
                                   ? a.computed / a.elapsedSec
                                   : 0.0);
        ja.set("workers", a.workers);
        root.set("sweep", std::move(ja));
    }
    return root;
}

int
executeScenario(const ScenarioSpec &spec, ExperimentConfig cfg,
                const std::string &results_path, bool accounting)
{
    cfg = scenarioConfig(spec, cfg);
    cfg.printHeader(spec.title.c_str());
    ScenarioResult res = runScenario(spec, cfg);
    renderReports(spec, res);
    if (res.hasFleet)
        printFleetReport(res.fleet);
    if (!results_path.empty()) {
        writeJsonFile(scenarioResultsJson(spec, res, accounting),
                      results_path);
        std::fprintf(stderr, "  [%s] wrote %s\n", spec.name.c_str(),
                     results_path.c_str());
    }
    if (!spec.notes.empty())
        std::printf("\n%s\n", spec.notes.c_str());
    return 0;
}

void
printFleetStatus(const ScenarioSpec &spec,
                 const ExperimentConfig &cfg0)
{
    ExperimentConfig cfg = scenarioConfig(spec, cfg0);
    if (cfg.cacheDir.empty())
        fatal("--fleet-status needs a cache: pass --cache-dir "
              "(or UBIK_CACHE_DIR)");
    std::unique_ptr<ResultCache> cache =
        ResultCache::open(cfg.cacheDir);
    if (!cache)
        fatal("--fleet-status: cannot open cache at %s",
              cfg.cacheDir.c_str());
    std::vector<MixSpec> mixes = buildScenarioMixes(spec, cfg);
    std::vector<SweepJob> jobs =
        buildSweepJobs(spec.schemes, mixes, cfg.seeds);

    // Matrix fill: probe every (scheme, mix, seed) result key plus
    // the baseline keys the sweep would prewarm. Probes only — no
    // stats counted, nothing computed, nothing claimed.
    std::set<std::string> jobKeys;
    std::size_t done = 0;
    for (const SweepJob &job : jobs) {
        std::string key =
            mixResultKey(cfg, job.mix, job.sut, job.seed, spec.ooo);
        jobKeys.insert(key);
        if (cache->peekMix(key))
            done++;
    }
    std::size_t lcTotal = 0, lcDone = 0;
    std::size_t batchTotal = 0, batchDone = 0;
    std::set<std::string> seenBase;
    for (const MixSpec &mix : mixes)
        for (std::uint32_t s = 1; s <= cfg.seeds; s++) {
            std::string lk = lcBaselineKey(cfg, mix.lc.app,
                                           mix.lc.load, s, spec.ooo);
            if (seenBase.insert(lk).second) {
                lcTotal++;
                if (cache->hasLcBaseline(lk))
                    lcDone++;
            }
            for (const auto &app : mix.batch.apps) {
                std::string bk =
                    batchBaselineKey(cfg, app, s, spec.ooo);
                if (seenBase.insert(bk).second) {
                    batchTotal++;
                    if (cache->hasBatchIpc(bk))
                        batchDone++;
                }
            }
        }
    std::printf("[fleet-status] scenario=%s cache=%s\n",
                spec.name.c_str(), cfg.cacheDir.c_str());
    std::printf("[fleet-status] matrix: jobs=%zu done=%zu (%.1f%%) "
                "lc_baselines=%zu/%zu batch_baselines=%zu/%zu\n",
                jobs.size(), done,
                jobs.empty() ? 100.0 : 100.0 * done / jobs.size(),
                lcDone, lcTotal, batchDone, batchTotal);

    // Live claim leases: who is mid-computation right now. The lease
    // payload is "<owner> <key>\n" (claim_store.cpp); a key outside
    // this scenario's matrix counts as foreign (another scenario, or
    // another scale, sharing the cache).
    std::map<std::string, std::pair<std::size_t, std::size_t>> owners;
    std::size_t leases = 0;
    std::string claimDir =
        cfg.cacheDir + "/" + ClaimStore::kSubdir;
    if (DIR *d = opendir(claimDir.c_str())) {
        while (struct dirent *e = readdir(d)) {
            std::string name = e->d_name;
            if (name.size() < 6 ||
                name.compare(name.size() - 6, 6, ".lease") != 0)
                continue;
            std::ifstream in(claimDir + "/" + name);
            std::string owner, key;
            if (!(in >> owner >> key))
                continue;
            leases++;
            auto &c = owners[owner];
            c.first++;
            if (jobKeys.count(key))
                c.second++;
        }
        closedir(d);
    }
    std::printf("[fleet-status] claims: live=%zu workers=%zu\n",
                leases, owners.size());
    for (const auto &o : owners)
        std::printf("[fleet-status] worker=%s claims=%zu "
                    "in_matrix=%zu\n",
                    o.first.c_str(), o.second.first,
                    o.second.second);
}

int
runRegisteredScenario(const std::string &name)
{
    setVerbose(false);
    const ScenarioSpec *spec = ScenarioRegistry::instance().find(name);
    if (!spec)
        fatal("unknown scenario '%s' (ubik_run --list names them)",
              name.c_str());
    return executeScenario(*spec, ExperimentConfig::fromEnv());
}

const ScenarioSpec *
ScenarioRegistry::find(const std::string &name) const
{
    for (const auto &s : specs_)
        if (s.name == name)
            return &s;
    return nullptr;
}

const std::vector<ScenarioSpec> &
ScenarioRegistry::all() const
{
    return specs_;
}

} // namespace ubik
