/**
 * @file
 * Declarative scenario API: one experiment — a figure, a table, an
 * ablation, or anything a user dreams up — described as pure data.
 *
 * A ScenarioSpec names the scheme table (SchemeUnderTest values),
 * how to select mixes (the standard matrix, the cache-hungry subset,
 * or explicit preset/trace-backed mixes), the core model, a seed
 * count, and the list of report blocks to render. runScenario()
 * executes any spec through the existing methodology stack —
 * MixRunner for calibration/baselines, ParallelSweep for the
 * engine, ResultCache for persistence — so a spec run is
 * bit-identical to the hand-written bench loops it replaces
 * (tests/integration/scenario_golden_test.cpp pins this for fig9).
 *
 * Specs round-trip losslessly through JSON (common/json.h):
 * `scenarioFromJson(scenarioToJson(s))` is canonical-equal to `s`,
 * which is what lets `ubik_run --spec file.json` and `--dump` treat
 * experiments as data. Every paper figure/ablation that sweeps mixes
 * is registered as a named built-in spec (ScenarioRegistry), and the
 * legacy bench executables are thin wrappers over the registry.
 *
 * Experiment *scale* stays environmental (UBIK_SCALE, UBIK_REQUESTS,
 * ... — sim/experiment.h): a spec describes *what* to run, the
 * environment describes *how big*, so the same spec serves CI smoke
 * runs and paper-scale sweeps. The spec's `seeds` field and
 * `--set seeds=N` overrides take precedence over UBIK_SEEDS.
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "fleet/fleet_model.h"
#include "report/report.h"
#include "sim/mix_runner.h"
#include "workload/load_profile.h"
#include "workload/mix.h"

namespace ubik {

/** Where a scenario's mixes come from. */
enum class MixSource
{
    Standard,    ///< the paper's LC-config x batch-mix matrix
    CacheHungry, ///< workload/mix.h cacheHungryMixes()
    Explicit,    ///< ScenarioSpec::mixes
};

const char *mixSourceName(MixSource s);
bool tryMixSourceFromName(const std::string &name, MixSource &out);

/** One text/file report block rendered after the sweep. */
enum class ReportKind
{
    Distributions,  ///< Fig 9/13-style quantile rows
    Averages,       ///< Table 3-style averages (+ UBIK_CSV_DIR)
    PerApp,         ///< Fig 10/11-style per-LC-app breakdown
    UbikInterrupts, ///< de-boost interrupt mix (deboost ablation)
    Csv,            ///< <tag>_runs.csv into UBIK_CSV_DIR (or .)
    Json,           ///< <tag>_results.json into UBIK_JSON_DIR (or .)
};

const char *reportKindName(ReportKind k);
bool tryReportKindFromName(const std::string &name, ReportKind &out);

struct ReportBlock
{
    ReportKind kind = ReportKind::Averages;
    std::string tag;                  ///< grep prefix / file stem
    LoadBand band = LoadBand::All;    ///< row filter (mix metadata)
};

/** One batch-app slot of an explicit mix, by preset. */
struct BatchSel
{
    BatchClass cls = BatchClass::Friendly;
    std::uint32_t variation = 0;
};

/**
 * One explicit mix, described by presets so it serializes small and
 * human-writable; trace paths make it trace-backed (loaded when the
 * scenario is expanded, content-hashed into cache keys).
 */
struct ScenarioMix
{
    std::string name;      ///< empty = "<lc>-<lo|hi>/<batchName>"
    std::string lcPreset = "masstree";
    double load = 0.2;
    std::array<BatchSel, 3> batch;
    std::string batchName; ///< empty = the three class codes

    /** 0, 1, or 3 .ubtr paths each (workload/mix.h semantics). */
    std::vector<std::string> lcTraces;
    std::vector<std::string> batchTraces;
};

/** Pure-data description of one experiment. */
struct ScenarioSpec
{
    std::string name;  ///< registry key / CLI name, e.g. "fig9"
    std::string title; ///< bench header line
    std::string notes; ///< "expected shape" epilogue (optional)

    std::vector<SchemeUnderTest> schemes;

    MixSource source = MixSource::Standard;

    /** Cap on batch mixes per LC config for the Standard source
     *  (0 = UBIK_MIXES; nonzero caps it, like the legacy benches'
     *  min(cfg.mixesPerLc, N)). */
    std::uint32_t mixesPerLcCap = 0;

    /** Mix-selection load filter (reports can filter further). */
    LoadBand band = LoadBand::All;

    /** MixSource::Explicit only. */
    std::vector<ScenarioMix> mixes;

    bool ooo = true;          ///< out-of-order vs in-order cores
    std::uint32_t seeds = 0;  ///< 0 = UBIK_SEEDS

    /**
     * Time-varying offered load, stamped into every selected mix's
     * LC side (workload/load_profile.h). Constant (the default)
     * reproduces the legacy fixed-rate arrivals bit for bit.
     * Serialized as the "load_profile" spec block; the baselines the
     * SLO is judged against always run at the constant nominal rate.
     */
    LoadProfile profile;

    /**
     * Fleet stage (fleet/fleet_model.h): after the sweep, compose
     * the per-server results into a datacenter of `fleet.servers`
     * machines driven by the open-loop arrival model. servers == 0
     * (the default) means no fleet stage; serialized as the "fleet"
     * spec block only when present.
     */
    FleetSpec fleet;

    std::vector<ReportBlock> reports;
};

// ---------------------------------------------------------------------------
// JSON round-trip
// ---------------------------------------------------------------------------

/** Serialize a spec (every field, canonical kind names). */
Json scenarioToJson(const ScenarioSpec &spec);

/**
 * Parse a spec. Missing fields take their defaults; unknown keys and
 * ill-typed values are fatal() with the offending key named, so spec
 * file typos fail loudly instead of silently running the default.
 */
ScenarioSpec scenarioFromJson(const Json &j);

/** Pretty-printed scenarioToJson() — the canonical form `--dump`
 *  emits and the round-trip tests compare. */
std::string scenarioCanonicalJson(const ScenarioSpec &spec);

// ---------------------------------------------------------------------------
// Overrides (`ubik_run --set key=value`)
// ---------------------------------------------------------------------------

/**
 * Apply one "key=value" override. Keys: seeds, mixes (per-LC cap),
 * load (all/low/high), ooo (bool), source, profile (load-profile
 * kind, default parameters), schemes (comma-separated label filter,
 * kept in spec order; an empty or duplicate-label filter is fatal —
 * a zero-scheme sweep is never what the user meant). fatal() on
 * unknown keys or bad values. Later overrides win (sequential
 * application), and all of them win over the spec file / registry
 * values.
 */
void applyScenarioOverride(ScenarioSpec &spec,
                           const std::string &assignment);

void applyScenarioOverrides(ScenarioSpec &spec,
                            const std::vector<std::string> &sets);

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/** `cfg` with the spec's overriding fields (seeds) applied. */
ExperimentConfig scenarioConfig(const ScenarioSpec &spec,
                                ExperimentConfig cfg);

/** Expand the spec's mix selection against `cfg` (loads traces for
 *  trace-backed explicit mixes). */
std::vector<MixSpec> buildScenarioMixes(const ScenarioSpec &spec,
                                        const ExperimentConfig &cfg);

/** What one sweep cost this worker: the numbers behind the
 *  [sweep-summary] line, exported into the results JSON when
 *  accounting is requested (`ubik_run --accounting`). */
struct SweepAccounting
{
    std::string worker;       ///< worker id ("local" solo)
    std::size_t jobs = 0;     ///< (scheme, mix, seed) jobs total
    std::size_t hits = 0;     ///< served from the result cache
    std::size_t computed = 0; ///< simulated here
    std::size_t remote = 0;   ///< claimed + published elsewhere
    std::uint64_t degraded = 0; ///< cache degradation events
    double elapsedSec = 0;    ///< sweep wall-clock
    unsigned workers = 0;     ///< thread-pool width used
};

/**
 * Run `schemes` x `mixes` x seeds through the parallel experiment
 * engine with the persistent result cache attached (cfg.cacheDir).
 * Results are grouped per scheme with full mix metadata, and are
 * bit-identical across worker counts and cache states. This is the
 * one sweep path: scenarios, benches, and tools all run through it.
 * A non-null `shared` cache is used instead of opening cfg.cacheDir
 * (the serving daemon keeps one warm cache across requests); `acct`
 * receives the per-worker accounting when non-null.
 */
std::vector<SweepResult>
runSchemeSweep(const ExperimentConfig &cfg,
               const std::vector<SchemeUnderTest> &schemes,
               const std::vector<MixSpec> &mixes, bool ooo = true,
               ResultCache *shared = nullptr,
               SweepAccounting *acct = nullptr);

struct ScenarioResult
{
    std::vector<MixSpec> mixes;      ///< expanded selection
    std::vector<SweepResult> sweeps; ///< one per spec scheme
    SweepAccounting accounting;
    FleetResult fleet;               ///< valid iff hasFleet
    bool hasFleet = false;
};

/** Execute a spec end to end (validation, mixes, sweep, and the
 *  fleet composition when spec.fleet.servers > 0). */
ScenarioResult runScenario(const ScenarioSpec &spec,
                           const ExperimentConfig &cfg,
                           ResultCache *shared = nullptr);

/** Render the spec's report blocks for a finished run. */
void renderReports(const ScenarioSpec &spec,
                   const ScenarioResult &res);

/**
 * The results-JSON document for a finished run: resultsToJson()
 * plus a "fleet" member when the spec ran a fleet stage, plus a
 * "sweep" accounting member when `accounting` is set (opt-in
 * because wall-clock values break byte-identical reruns).
 */
Json scenarioResultsJson(const ScenarioSpec &spec,
                         const ScenarioResult &res, bool accounting);

/**
 * The whole experiment, stdout to epilogue: apply the spec's config
 * overrides, print the header, run, render the report blocks, write
 * the structured JSON results to `results_path` (empty = skip), and
 * print the notes. The one execution path `ubik_run` and the bench
 * wrappers share. Returns the process exit code.
 */
int executeScenario(const ScenarioSpec &spec, ExperimentConfig cfg,
                    const std::string &results_path = "",
                    bool accounting = false);

/**
 * `ubik_run --fleet-status`: without running anything, print how
 * much of the spec's sweep matrix the cache already holds, and who
 * holds live claim leases (<cache-dir>/claims/) — per-worker matrix
 * fill for a distributed fleet mid-sweep.
 */
void printFleetStatus(const ScenarioSpec &spec,
                      const ExperimentConfig &cfg);

/** executeScenario() on a registry spec by name — the legacy
 *  figure/ablation executables are one-line wrappers over this. */
int runRegisteredScenario(const std::string &name);

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/** The named built-in specs: every mix-sweeping paper figure and
 *  ablation. */
class ScenarioRegistry
{
  public:
    static const ScenarioRegistry &instance();

    /** Spec by name, or nullptr. */
    const ScenarioSpec *find(const std::string &name) const;

    /** All specs, in presentation order (figures then ablations). */
    const std::vector<ScenarioSpec> &all() const;

  private:
    explicit ScenarioRegistry(std::vector<ScenarioSpec> specs)
        : specs_(std::move(specs))
    {
    }

    std::vector<ScenarioSpec> specs_;
};

} // namespace ubik
