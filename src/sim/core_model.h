/**
 * @file
 * Core timing models (Table 2 / §7.1).
 *
 * The paper's results depend on core behaviour only through the
 * linear timing model its analysis uses: time between LLC accesses
 * T_access = c + p*M, where c comes from the core's IPC on hits and M
 * is the MLP-corrected stall per LLC miss. We model exactly that:
 *
 *  - OOO (Westmere-like): runs at the app's base IPC; L3 hit latency
 *    is largely hidden; an LLC miss stalls for memLatency / MLP.
 *  - In-order: IPC = 1 when hitting; every LLC access exposes the
 *    full L3 latency and every miss the full memory latency (§7.1's
 *    "IPC=1 except on L1 misses" simple core).
 */

#pragma once

#include <cstdint>

#include "mon/mlp_profiler.h"
#include "common/types.h"

namespace ubik {

/** Static machine-level core parameters (Table 2). */
struct CoreParams
{
    bool outOfOrder = true;

    /** Shared L3 access latency, cycles. */
    Cycles l3Latency = 20;

    /** Main memory latency beyond the L3, cycles. */
    Cycles memLatency = 200;
};

/** Per-app dynamic traits the timing model consumes. */
struct CoreTraits
{
    double apki = 10.0;    ///< LLC accesses per kilo-instruction
    double baseIpc = 1.5;  ///< non-memory IPC (OOO only)
    double mlp = 2.0;      ///< long-miss memory-level parallelism
};

/**
 * Stateless timing calculator + per-interval counter accumulator for
 * one core.
 */
class CoreModel
{
  public:
    CoreModel(CoreParams params, CoreTraits traits);

    /** Compute cycles between LLC accesses (the paper's c), given the
     *  instructions executed per access. */
    Cycles gapCycles(double instr_per_access) const;

    /** Exposed latency of one LLC hit. */
    Cycles hitCycles() const;

    /** Exposed stall of one LLC miss (MLP-corrected for OOO). */
    Cycles missCycles() const;

    /**
     * Exposed portion of `extra` additional memory-latency cycles
     * (e.g., bandwidth-contention queueing): MLP hides part of it on
     * an OOO core exactly as it hides the base miss latency.
     */
    Cycles exposedMemDelay(Cycles extra) const;

    /**
     * Account one LLC access: advances counters and returns the
     * cycles consumed (gap + exposed memory time).
     * @param extra_mem already-exposed extra memory cycles to charge
     *        on a miss (from the memory model's queueing delay)
     */
    Cycles access(bool hit, double instr_per_access, Cycles extra_mem = 0);

    /** Account pure compute (no LLC accesses), e.g. a request with
     *  fewer accesses than segments. */
    Cycles compute(double instructions);

    /** Effective IPC used for pure compute. */
    double computeIpc() const;

    const IntervalCounters &interval() const { return interval_; }
    IntervalCounters takeInterval();

    const CoreParams &machineParams() const { return params_; }
    const CoreTraits &traits() const { return traits_; }

  private:
    CoreParams params_;
    CoreTraits traits_;
    IntervalCounters interval_;
};

} // namespace ubik
