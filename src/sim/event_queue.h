/**
 * @file
 * Indexed min-heap over per-core next-event times.
 *
 * Cmp::run previously found the earliest event with a linear scan
 * over all cores on every iteration — O(cores) per simulated event.
 * This queue keeps (time, core) pairs in a binary heap with a
 * position index so the served core's new event time is an O(log n)
 * sift instead of a rescan.
 *
 * Determinism: ties are broken by the lower core index, which is
 * exactly what the legacy strict-less-than scan over cores 0..N-1
 * selected, so replacing the scan changes zero simulated behaviour
 * (pinned by tests/sim/hotpath_golden_test.cpp; ordering unit-tested
 * in tests/sim/event_queue_test.cpp).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/log.h"
#include "common/types.h"

namespace ubik {

/** Min-heap of (event time, index) with O(log n) key updates. */
class EventQueue
{
  public:
    /** (Re)build the heap over `times[i]` for index i. */
    void
    init(const std::vector<Cycles> &times)
    {
        std::size_t n = times.size();
        heap_.resize(n);
        pos_.resize(n);
        for (std::size_t i = 0; i < n; i++) {
            heap_[i] = {times[i], static_cast<std::uint32_t>(i)};
            pos_[i] = i;
        }
        // Bottom-up heapify.
        for (std::size_t i = n / 2; i-- > 0;)
            siftDown(i);
    }

    bool empty() const { return heap_.empty(); }

    /** Earliest event time. */
    Cycles topTime() const { return heap_[0].time; }

    /** Index owning the earliest event (lowest index on ties). */
    std::uint32_t topIndex() const { return heap_[0].idx; }

    /** Change index idx's event time and restore heap order. */
    void
    update(std::uint32_t idx, Cycles t)
    {
        std::size_t i = pos_[idx];
        ubik_assert(i < heap_.size() && heap_[i].idx == idx);
        heap_[i].time = t;
        if (!siftUp(i))
            siftDown(i);
    }

  private:
    struct Node
    {
        Cycles time;
        std::uint32_t idx;
    };

    /** Heap order: earlier time first; lower index on equal times
     *  (matches the legacy linear scan's first-strictly-smaller
     *  selection). */
    static bool
    before(const Node &a, const Node &b)
    {
        return a.time < b.time || (a.time == b.time && a.idx < b.idx);
    }

    bool
    siftUp(std::size_t i)
    {
        bool moved = false;
        while (i > 0) {
            std::size_t parent = (i - 1) / 2;
            if (!before(heap_[i], heap_[parent]))
                break;
            swapNodes(i, parent);
            i = parent;
            moved = true;
        }
        return moved;
    }

    void
    siftDown(std::size_t i)
    {
        for (;;) {
            std::size_t l = 2 * i + 1, r = 2 * i + 2, best = i;
            if (l < heap_.size() && before(heap_[l], heap_[best]))
                best = l;
            if (r < heap_.size() && before(heap_[r], heap_[best]))
                best = r;
            if (best == i)
                return;
            swapNodes(i, best);
            i = best;
        }
    }

    void
    swapNodes(std::size_t a, std::size_t b)
    {
        std::swap(heap_[a], heap_[b]);
        pos_[heap_[a].idx] = a;
        pos_[heap_[b].idx] = b;
    }

    std::vector<Node> heap_;
    std::vector<std::size_t> pos_; ///< pos_[idx] = heap slot of idx
};

} // namespace ubik
