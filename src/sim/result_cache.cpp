#include "sim/result_cache.h"

#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <vector>

#include "common/failpoint.h"
#include "common/log.h"
#include "common/retry.h"
#include "sim/claim_store.h"

namespace ubik {

namespace {

// ---------------------------------------------------------------------------
// Canonical encoding primitives
// ---------------------------------------------------------------------------

std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 14695981039346656037ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
hexU64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
    return buf;
}

/** Exact bit pattern: the only double encoding that round-trips. */
std::string
hexDouble(double d)
{
    std::uint64_t u;
    std::memcpy(&u, &d, sizeof(u));
    return hexU64(u);
}

bool
parseHex64(const std::string &tok, std::uint64_t &out)
{
    if (tok.size() != 16)
        return false;
    char *end = nullptr;
    out = std::strtoull(tok.c_str(), &end, 16);
    return end == tok.c_str() + 16;
}

bool
parseHexDouble(const std::string &tok, double &out)
{
    std::uint64_t u;
    if (!parseHex64(tok, u))
        return false;
    std::memcpy(&out, &u, sizeof(out));
    return true;
}

/** Make a string safe as one space-separated record token. */
std::string
escapeToken(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        if (c == ' ' || c == '%' || c == '\n' || c == '\r' ||
            c == '\t' || c == '\0') {
            char buf[4];
            std::snprintf(buf, sizeof(buf), "%%%02X", c);
            out += buf;
        } else {
            out += static_cast<char>(c);
        }
    }
    return out;
}

bool
unescapeToken(const std::string &s, std::string &out)
{
    out.clear();
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); i++) {
        if (s[i] != '%') {
            out += s[i];
            continue;
        }
        if (i + 2 >= s.size())
            return false;
        auto nib = [](char c) -> int {
            if (c >= '0' && c <= '9')
                return c - '0';
            if (c >= 'A' && c <= 'F')
                return c - 'A' + 10;
            if (c >= 'a' && c <= 'f')
                return c - 'a' + 10;
            return -1;
        };
        int hi = nib(s[i + 1]), lo = nib(s[i + 2]);
        if (hi < 0 || lo < 0)
            return false;
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
    }
    return true;
}

std::vector<std::string>
splitOn(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); i++) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

/** Builds the canonical `v<schema>|name=value|...` key string. */
class KeyBuilder
{
  public:
    explicit KeyBuilder(const char *what, std::uint32_t schema)
    {
        out_ = "v" + std::to_string(schema) + "|" + what;
    }

    KeyBuilder &add(const char *name, const std::string &v)
    {
        std::string esc;
        esc.reserve(v.size());
        // '|' and '=' structure the key, '%' escapes; nothing else
        // needs quoting (spaces are handled at the record layer).
        for (char c : v) {
            if (c == '|')
                esc += "%7C";
            else if (c == '=')
                esc += "%3D";
            else if (c == '%')
                esc += "%25";
            else
                esc += c;
        }
        out_ += "|";
        out_ += name;
        out_ += "=";
        out_ += esc;
        return *this;
    }

    KeyBuilder &add(const char *name, std::uint64_t v)
    {
        return add(name, std::to_string(v));
    }

    KeyBuilder &add(const char *name, std::uint32_t v)
    {
        return add(name, std::to_string(v));
    }

    KeyBuilder &add(const char *name, int v)
    {
        return add(name, std::to_string(v));
    }

    KeyBuilder &add(const char *name, bool v)
    {
        return add(name, std::string(v ? "1" : "0"));
    }

    KeyBuilder &add(const char *name, double v)
    {
        return add(name, hexDouble(v));
    }

    std::string str() const { return out_; }

  private:
    std::string out_;
};

void
addExperiment(KeyBuilder &kb, const ExperimentConfig &cfg, bool ooo)
{
    kb.add("scale", cfg.scale)
        .add("roi", cfg.roiRequests)
        .add("warmup", cfg.warmupRequests)
        .add("ooo", ooo);
}

void
addLcApp(KeyBuilder &kb, const LcAppParams &p)
{
    kb.add("lc.name", p.name)
        .add("lc.apki", p.apki)
        .add("lc.work", p.work.canonical())
        .add("lc.hotLines", p.hotLines)
        .add("lc.hotTheta", p.hotTheta)
        .add("lc.hotFrac", p.hotFrac)
        .add("lc.reqLines", p.reqLines)
        .add("lc.mlp", p.mlp)
        .add("lc.baseIpc", p.baseIpc)
        .add("lc.requests", p.requests);
}

void
addBatchApp(KeyBuilder &kb, const BatchAppParams &p, int i)
{
    std::string pre = "b" + std::to_string(i) + ".";
    kb.add((pre + "name").c_str(), p.name)
        .add((pre + "cls").c_str(),
             std::string(1, batchClassCode(p.cls)))
        .add((pre + "apki").c_str(), p.apki)
        .add((pre + "wsLines").c_str(), p.wsLines)
        .add((pre + "theta").c_str(), p.theta)
        .add((pre + "mlp").c_str(), p.mlp)
        .add((pre + "baseIpc").c_str(), p.baseIpc);
}

void
addScheme(KeyBuilder &kb, const SchemeUnderTest &sut)
{
    kb.add("sut.label", sut.label)
        .add("sut.scheme", std::string(schemeKindName(sut.scheme)))
        .add("sut.array", std::string(arrayKindName(sut.array)))
        .add("sut.policy", std::string(policyKindName(sut.policy)))
        .add("sut.slack", sut.slack)
        .add("ubik.slack", sut.ubik.slack)
        .add("ubik.idleOptions", sut.ubik.idleOptions)
        .add("ubik.deboostGuard", sut.ubik.deboostGuard)
        .add("ubik.slackGain", sut.ubik.slackGain)
        .add("ubik.dutyAlpha", sut.ubik.dutyAlpha)
        .add("ubik.accurateDeboost", sut.ubik.accurateDeboost)
        .add("sut.reconfigScale", sut.reconfigScale)
        .add("sut.mem", std::string(memKindName(sut.mem)))
        .add("mem.baseLatency", sut.memParams.baseLatency)
        .add("mem.channels", sut.memParams.channels)
        .add("mem.channelOccupancy", sut.memParams.channelOccupancy)
        .add("sut.lcMemShare", sut.lcMemShare);
}

// ---------------------------------------------------------------------------
// Payload serialization (comma-joined tokens, doubles bit-exact)
// ---------------------------------------------------------------------------

std::string
serializeMix(const MixRunResult &r)
{
    std::string out = hexDouble(r.lcTailMean) + "," +
                      hexDouble(r.tailDegradation) + "," +
                      hexDouble(r.meanDegradation) + "," +
                      hexDouble(r.weightedSpeedup) + "," +
                      std::to_string(r.batchSpeedups.size());
    for (double s : r.batchSpeedups)
        out += "," + hexDouble(s);
    out += "," + hexU64(r.ubikDeboosts);
    out += "," + hexU64(r.ubikDeadlineDeboosts);
    out += "," + hexU64(r.ubikWatermarks);
    return out;
}

bool
parseMix(const std::string &payload, MixRunResult &out)
{
    std::vector<std::string> t = splitOn(payload, ',');
    if (t.size() < 8)
        return false;
    MixRunResult r;
    if (!parseHexDouble(t[0], r.lcTailMean) ||
        !parseHexDouble(t[1], r.tailDegradation) ||
        !parseHexDouble(t[2], r.meanDegradation) ||
        !parseHexDouble(t[3], r.weightedSpeedup))
        return false;
    char *end = nullptr;
    std::uint64_t n = std::strtoull(t[4].c_str(), &end, 10);
    if (end == t[4].c_str() || *end || t.size() != 8 + n)
        return false;
    r.batchSpeedups.resize(n);
    for (std::uint64_t i = 0; i < n; i++)
        if (!parseHexDouble(t[5 + i], r.batchSpeedups[i]))
            return false;
    if (!parseHex64(t[5 + n], r.ubikDeboosts) ||
        !parseHex64(t[6 + n], r.ubikDeadlineDeboosts) ||
        !parseHex64(t[7 + n], r.ubikWatermarks))
        return false;
    out = std::move(r);
    return true;
}

std::string
serializeLcBaseline(const LcBaseline &b)
{
    return hexDouble(b.meanServiceCycles) + "," +
           hexDouble(b.meanInterarrival) + "," +
           hexDouble(b.meanLatency) + "," + hexDouble(b.tailMean) +
           "," + hexU64(b.p95);
}

bool
parseLcBaseline(const std::string &payload, LcBaseline &out)
{
    std::vector<std::string> t = splitOn(payload, ',');
    if (t.size() != 5)
        return false;
    LcBaseline b;
    if (!parseHexDouble(t[0], b.meanServiceCycles) ||
        !parseHexDouble(t[1], b.meanInterarrival) ||
        !parseHexDouble(t[2], b.meanLatency) ||
        !parseHexDouble(t[3], b.tailMean) || !parseHex64(t[4], b.p95))
        return false;
    out = b;
    return true;
}

/** Checksum input: unescaped fields joined by an unambiguous
 *  separator that cannot appear inside them post-escape. */
std::string
checksumInput(char kind, const std::string &key,
              const std::string &payload)
{
    std::string s(1, kind);
    s += '\x1f';
    s += key;
    s += '\x1f';
    s += payload;
    return s;
}

constexpr char kRecordMagic[] = "U1";

/** Record kinds. */
constexpr char kKindMix = 'm';
constexpr char kKindLc = 'l';
constexpr char kKindBatch = 'b';

/** How one append attempt ended. */
enum class AppendOutcome
{
    Ok,   ///< the full record (and newline) reached the stream
    Torn, ///< injected crash mid-record: bytes partially on disk
    Err,  ///< persistent failure after bounded retries
};

/**
 * Write all of `line`, absorbing short fwrite returns (real or
 * injected) by retrying the remainder. Zero-progress attempts burn
 * bounded backoff attempts; partial progress retries immediately.
 * Counts every extra attempt in `retries`.
 */
AppendOutcome
appendAll(std::FILE *f, const std::string &line, std::size_t shard_idx,
          std::atomic<std::uint64_t> &retries)
{
    std::size_t done = 0;
    RetryBackoff backoff(0x5afec0deull, shard_idx);
    for (;;) {
        std::size_t want = line.size() - done;
        FailpointHit hit = failpointEval("cache.append");
        std::size_t wrote = 0;
        if (hit.kind == FailpointHit::Kind::Err) {
            errno = hit.err; // simulated device error: nothing written
        } else if (hit.kind == FailpointHit::Kind::ShortWrite ||
                   hit.kind == FailpointHit::Kind::Torn) {
            std::size_t n = hit.arg < want
                                ? static_cast<std::size_t>(hit.arg)
                                : want;
            wrote = std::fwrite(line.data() + done, 1, n, f);
            if (hit.kind == FailpointHit::Kind::Torn) {
                // Simulated crash: whatever made it out stays, the
                // writer never comes back for the rest.
                std::fflush(f);
                return AppendOutcome::Torn;
            }
        } else {
            wrote = std::fwrite(line.data() + done, 1, want, f);
        }
        done += wrote;
        if (done == line.size())
            return AppendOutcome::Ok;
        std::clearerr(f); // a failed stream must accept the retry
        retries.fetch_add(1, std::memory_order_relaxed);
        if (wrote > 0)
            continue; // partial progress: retry the remainder now
        if (!backoff.next())
            return AppendOutcome::Err;
    }
}

} // namespace

// ---------------------------------------------------------------------------
// Canonical keys
// ---------------------------------------------------------------------------

std::string
mixResultKey(const ExperimentConfig &cfg, const MixSpec &mix,
             const SchemeUnderTest &sut, std::uint64_t seed,
             bool out_of_order, std::uint32_t schema)
{
    KeyBuilder kb("mix", schema);
    addExperiment(kb, cfg, out_of_order);
    kb.add("mix.name", mix.name);
    addLcApp(kb, mix.lc.app);
    kb.add("lc.load", mix.lc.load);
    // Canonical profile string (kind + kind-relevant parameters as
    // exact bit patterns): a constant profile keys as "constant", and
    // any parameter change is a different key.
    kb.add("lc.profile", mix.lc.profile.canonical());
    // Trace-backed mixes key on the traces' logical content, so an
    // edited trace (or a different per-instance assignment) never
    // serves a stale result, while re-encoding the same records
    // (v1 -> v2 conversion, rechunking) still hits.
    kb.add("lc.ntraces",
           static_cast<std::uint64_t>(mix.lc.traces.size()));
    for (std::size_t i = 0; i < mix.lc.traces.size(); i++)
        kb.add(("lc.trace" + std::to_string(i)).c_str(),
               mix.lc.traces[i]->contentHash());
    kb.add("batch.name", mix.batch.name);
    for (int i = 0; i < 3; i++)
        addBatchApp(kb, mix.batch.apps[static_cast<std::size_t>(i)], i);
    // Batch replay mirrors lc.traces: content-hash keyed, so a
    // re-encoded trace still hits and an edited one never does.
    kb.add("batch.ntraces",
           static_cast<std::uint64_t>(mix.batch.traces.size()));
    for (std::size_t i = 0; i < mix.batch.traces.size(); i++)
        kb.add(("batch.trace" + std::to_string(i)).c_str(),
               mix.batch.traces[i]->contentHash());
    addScheme(kb, sut);
    kb.add("seed", seed);
    return kb.str();
}

std::string
lcBaselineKey(const ExperimentConfig &cfg, const LcAppParams &params,
              double load, std::uint64_t seed, bool out_of_order,
              std::uint32_t schema)
{
    KeyBuilder kb("lcbase", schema);
    addExperiment(kb, cfg, out_of_order);
    addLcApp(kb, params);
    kb.add("lc.load", load);
    kb.add("seed", seed);
    return kb.str();
}

std::string
batchBaselineKey(const ExperimentConfig &cfg,
                 const BatchAppParams &params, std::uint64_t seed,
                 bool out_of_order, std::uint32_t schema)
{
    KeyBuilder kb("batchbase", schema);
    addExperiment(kb, cfg, out_of_order);
    addBatchApp(kb, params, 0);
    kb.add("seed", seed);
    return kb.str();
}

// ---------------------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------------------

struct ResultCache::Shard
{
    std::mutex mu;
    bool loaded = false;
    /** Bytes of the shard file already parsed: refresh resumes here,
     *  so picking up records appended by cooperating processes costs
     *  one seek, not a rescan. An unterminated (torn) tail is never
     *  consumed — a writer may still be mid-append — so it is
     *  re-examined on the next refresh. */
    std::uint64_t parsedBytes = 0;
    /** Offset of the torn tail already counted as corrupt, so a
     *  permanently-dead tail is counted once, not once per poll. */
    std::uint64_t tornCountedAt = ~0ull;
    /** (kind + key) -> payload. */
    std::map<std::string, std::string> entries;
};

ResultCache::ResultCache(std::string dir)
    : dir_(std::move(dir)), shards_(new Shard[kShards])
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (!std::filesystem::is_directory(dir_))
        warn("result cache: cannot create '%s' (%s); caching disabled",
             dir_.c_str(), ec.message().c_str());
}

ResultCache::~ResultCache() = default;

std::unique_ptr<ResultCache>
ResultCache::open(const std::string &dir)
{
    if (dir.empty())
        return nullptr;
    auto cache = std::make_unique<ResultCache>(dir);
    if (!std::filesystem::is_directory(dir))
        return nullptr; // the constructor already warned
    return cache;
}

std::size_t
ResultCache::shardOf(const std::string &key)
{
    return static_cast<std::size_t>(fnv1a64(key) % kShards);
}

std::string
ResultCache::shardPath(std::size_t idx) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "shard_%02zx.ubikcache", idx);
    return dir_ + "/" + name;
}

void
ResultCache::refreshShardLocked(Shard &s, std::size_t idx)
{
    s.loaded = true;
    // A failed refresh leaves a stale view: subsequent lookups can
    // miss on records that are actually on disk, costing a duplicate
    // compute of a deterministic value — never a wrong result.
    if (failpointEval("cache.refresh").kind ==
        FailpointHit::Kind::Err) {
        refreshDegraded_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    std::ifstream in(shardPath(idx), std::ios::binary);
    if (!in.is_open())
        return; // nothing persisted yet
    in.seekg(static_cast<std::streamoff>(s.parsedBytes));
    if (!in)
        return;
    std::string buf((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());

    enum class Rec { Valid, Evicted, Bad };
    auto classify = [&](const std::string &line) -> Rec {
        std::vector<std::string> tok = splitOn(line, ' ');
        // U1 <schema> <kind> <key> <payload> <crc>
        if (tok.size() != 6 || tok[0] != kRecordMagic ||
            tok[2].size() != 1)
            return Rec::Bad;
        std::string key, payload;
        std::uint64_t crc;
        if (!unescapeToken(tok[3], key) ||
            !unescapeToken(tok[4], payload) ||
            !parseHex64(tok[5], crc) ||
            crc != fnv1a64(checksumInput(tok[2][0], key, payload)))
            return Rec::Bad;
        char *end = nullptr;
        std::uint64_t schema = std::strtoull(tok[1].c_str(), &end, 10);
        if (end == tok[1].c_str() || *end)
            return Rec::Bad;
        if (schema != kResultCacheSchemaVersion)
            return Rec::Evicted;
        // First record wins; duplicates from racing appends carry the
        // same deterministic value anyway.
        s.entries.emplace(tok[2] + key, std::move(payload));
        return Rec::Valid;
    };

    const std::uint64_t base = s.parsedBytes;
    std::size_t start = 0;
    while (start < buf.size()) {
        std::size_t nl = buf.find('\n', start);
        bool terminated = nl != std::string::npos;
        std::size_t len = (terminated ? nl : buf.size()) - start;
        std::string line = buf.substr(start, len);
        std::uint64_t off = base + start;
        if (terminated) {
            Rec r = line.empty() ? Rec::Valid : classify(line);
            if (r == Rec::Bad && off != s.tornCountedAt)
                corrupt_.fetch_add(1, std::memory_order_relaxed);
            else if (r == Rec::Evicted)
                evicted_.fetch_add(1, std::memory_order_relaxed);
            if (off == s.tornCountedAt)
                s.tornCountedAt = ~0ull; // the torn tail completed
            s.parsedBytes = base + nl + 1;
            start = nl + 1;
            continue;
        }
        // Unterminated tail: a writer may be mid-append.
        Rec r = classify(line);
        if (r == Rec::Bad) {
            // Leave it unconsumed so the next refresh re-examines it
            // once it completes; count it corrupt only once (it may
            // be a crashed writer's permanent stump, re-seen by every
            // poll until the next store's newline repair).
            if (off != s.tornCountedAt) {
                corrupt_.fetch_add(1, std::memory_order_relaxed);
                s.tornCountedAt = off;
            }
        } else {
            // Checksum-complete record that only lacks its trailing
            // newline: consume it.
            if (r == Rec::Evicted)
                evicted_.fetch_add(1, std::memory_order_relaxed);
            s.parsedBytes = base + buf.size();
        }
        break;
    }
}

std::optional<std::string>
ResultCache::load(char kind, const std::string &key)
{
    std::size_t idx = shardOf(key);
    Shard &s = shards_[idx];
    std::optional<std::string> out;
    {
        std::lock_guard<std::mutex> lock(s.mu);
        if (!s.loaded)
            refreshShardLocked(s, idx);
        auto it = s.entries.find(std::string(1, kind) + key);
        if (it != s.entries.end())
            out = it->second;
    }
    if (out) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (kind == kKindMix)
            mixHits_.fetch_add(1, std::memory_order_relaxed);
    } else {
        misses_.fetch_add(1, std::memory_order_relaxed);
        if (kind == kKindMix)
            mixMisses_.fetch_add(1, std::memory_order_relaxed);
    }
    return out;
}

std::optional<std::string>
ResultCache::peek(char kind, const std::string &key, bool count_hit)
{
    std::size_t idx = shardOf(key);
    Shard &s = shards_[idx];
    std::optional<std::string> out;
    {
        std::lock_guard<std::mutex> lock(s.mu);
        // Unconditional refresh: the point of a peek is seeing what
        // cooperating processes appended since the shard was loaded.
        refreshShardLocked(s, idx);
        auto it = s.entries.find(std::string(1, kind) + key);
        if (it != s.entries.end())
            out = it->second;
    }
    // Never a miss: a fleet worker may peek the same key many times
    // while a peer computes it, and that polling is not recomputation
    // (the "0 misses" warm-sweep invariant must survive fleet mode).
    if (out && count_hit) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (kind == kKindMix)
            mixHits_.fetch_add(1, std::memory_order_relaxed);
    }
    return out;
}

void
ResultCache::store(char kind, const std::string &key,
                   const std::string &payload)
{
    std::size_t idx = shardOf(key);
    Shard &s = shards_[idx];
    std::lock_guard<std::mutex> lock(s.mu);
    // Full refresh (not just first-load): a cooperating process may
    // have appended this very record since we last looked, and
    // skipping the duplicate append keeps shard files minimal.
    refreshShardLocked(s, idx);
    std::string mapKey = std::string(1, kind) + key;
    auto it = s.entries.find(mapKey);
    if (it != s.entries.end() && it->second == payload)
        return; // already persisted (e.g. a racing process beat us)

    std::string line = std::string(kRecordMagic) + " " +
                       std::to_string(kResultCacheSchemaVersion) + " " +
                       std::string(1, kind) + " " + escapeToken(key) +
                       " " + escapeToken(payload) + " " +
                       hexU64(fnv1a64(checksumInput(kind, key,
                                                    payload))) +
                       "\n";
    // One append per record: concurrent processes interleave at
    // record granularity at worst (a torn tail fails its checksum and
    // reads as a miss). Persistence failures degrade, never kill: the
    // in-memory entry is kept either way, so this worker still serves
    // its own result and only peers pay a recompute.
    std::FILE *f = nullptr;
    RetryBackoff openRetry(0x0be7c0deull, idx);
    for (;;) {
        FailpointHit hit = failpointEval("cache.open");
        if (hit.kind == FailpointHit::Kind::Err) {
            errno = hit.err;
        } else {
            f = std::fopen(shardPath(idx).c_str(), "a+b");
        }
        if (f || !openRetry.next())
            break;
    }
    bool persisted = false;
    if (f) {
        // A crashed writer can leave a torn tail with no newline;
        // gluing this record onto it would corrupt both. Start a
        // fresh line instead (the blank line is skipped on load).
        if (std::fseek(f, -1, SEEK_END) == 0 && std::fgetc(f) != '\n')
            line.insert(0, 1, '\n');
        // Update streams require a positioning call between the read
        // above and the write (C11 7.21.5.3p7).
        std::fseek(f, 0, SEEK_END);
        AppendOutcome out = appendAll(f, line, idx, appendRetries_);
        persisted = out == AppendOutcome::Ok;
        if (persisted && durable_) {
            // Fleet mode: the claim protocol treats "lease released"
            // as "result survives a crash", so the record must be on
            // disk before the caller drops its lease.
            std::fflush(f);
            int rc;
            FailpointHit fs = failpointEval("cache.fsync");
            if (fs.kind == FailpointHit::Kind::Err) {
                errno = fs.err;
                rc = -1;
            } else {
                rc = ::fsync(fileno(f));
            }
            if (rc != 0) {
                // The record is appended but its crash-survival
                // guarantee is weakened; peers re-verify via checksum
                // anyway, so degrade rather than die.
                fsyncDegraded_.fetch_add(1,
                                         std::memory_order_relaxed);
                if (!fsyncWarned_.exchange(true))
                    warn("result cache: fsync failed on %s (%s); "
                         "records may not survive a crash",
                         shardPath(idx).c_str(),
                         std::strerror(errno));
            }
        }
        std::fclose(f);
    }
    if (!persisted) {
        storesDropped_.fetch_add(1, std::memory_order_relaxed);
        if (!appendWarned_.exchange(true))
            warn("result cache: cannot append to %s (%s); continuing "
                 "uncached — this worker keeps its results in memory",
                 shardPath(idx).c_str(), std::strerror(errno));
    }
    s.entries[mapKey] = payload;
    stores_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<MixRunResult>
ResultCache::loadMix(const std::string &key)
{
    std::optional<std::string> payload = load(kKindMix, key);
    if (!payload)
        return std::nullopt;
    MixRunResult r;
    if (!parseMix(*payload, r)) {
        corrupt_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    return r;
}

void
ResultCache::storeMix(const std::string &key, const MixRunResult &res)
{
    store(kKindMix, key, serializeMix(res));
}

std::optional<MixRunResult>
ResultCache::peekMix(const std::string &key)
{
    std::optional<std::string> payload = peek(kKindMix, key, true);
    if (!payload)
        return std::nullopt;
    MixRunResult r;
    if (!parseMix(*payload, r)) {
        corrupt_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    return r;
}

bool
ResultCache::hasLcBaseline(const std::string &key)
{
    return peek(kKindLc, key, false).has_value();
}

bool
ResultCache::hasBatchIpc(const std::string &key)
{
    return peek(kKindBatch, key, false).has_value();
}

void
ResultCache::noteClaimsGced(std::uint64_t n)
{
    claimsGced_.fetch_add(n, std::memory_order_relaxed);
}

void
ResultCache::noteHbReleases(std::uint64_t n)
{
    hbReleases_.fetch_add(n, std::memory_order_relaxed);
}

void
ResultCache::noteSoloFallback()
{
    soloFallbacks_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<LcBaseline>
ResultCache::loadLcBaseline(const std::string &key)
{
    std::optional<std::string> payload = load(kKindLc, key);
    if (!payload)
        return std::nullopt;
    LcBaseline b;
    if (!parseLcBaseline(*payload, b)) {
        corrupt_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    return b;
}

void
ResultCache::storeLcBaseline(const std::string &key,
                             const LcBaseline &base)
{
    store(kKindLc, key, serializeLcBaseline(base));
}

std::optional<double>
ResultCache::loadBatchIpc(const std::string &key)
{
    std::optional<std::string> payload = load(kKindBatch, key);
    if (!payload)
        return std::nullopt;
    double ipc;
    if (!parseHexDouble(*payload, ipc)) {
        corrupt_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    return ipc;
}

void
ResultCache::storeBatchIpc(const std::string &key, double ipc)
{
    store(kKindBatch, key, hexDouble(ipc));
}

CacheStats
ResultCache::stats() const
{
    CacheStats st;
    st.hits = hits_.load(std::memory_order_relaxed);
    st.misses = misses_.load(std::memory_order_relaxed);
    st.stores = stores_.load(std::memory_order_relaxed);
    st.mixHits = mixHits_.load(std::memory_order_relaxed);
    st.mixMisses = mixMisses_.load(std::memory_order_relaxed);
    st.evicted = evicted_.load(std::memory_order_relaxed);
    st.corrupt = corrupt_.load(std::memory_order_relaxed);
    st.claimsGced = claimsGced_.load(std::memory_order_relaxed);
    st.appendRetries =
        appendRetries_.load(std::memory_order_relaxed);
    st.storesDropped =
        storesDropped_.load(std::memory_order_relaxed);
    st.fsyncDegraded =
        fsyncDegraded_.load(std::memory_order_relaxed);
    st.refreshDegraded =
        refreshDegraded_.load(std::memory_order_relaxed);
    st.hbReleases = hbReleases_.load(std::memory_order_relaxed);
    st.soloFallbacks =
        soloFallbacks_.load(std::memory_order_relaxed);
    std::error_code ec;
    std::filesystem::directory_iterator it(
        dir_ + "/" + ClaimStore::kSubdir, ec),
        end;
    for (; !ec && it != end; it.increment(ec)) {
        std::string p = it->path().string();
        if (p.size() >= 6 &&
            p.compare(p.size() - 6, 6, ".lease") == 0)
            st.claimsLive++;
    }
    return st;
}

} // namespace ubik
