#include "sim/kind_names.h"

#include "common/log.h"

namespace ubik {

namespace {

/** Walk an enum's values by round-tripping through its name
 *  function — one source of truth, no parallel tables to drift. */
template <typename Kind, typename NameFn>
bool
matchByName(const std::string &name, Kind last, NameFn kind_name,
            Kind &out)
{
    for (int v = 0; v <= static_cast<int>(last); v++) {
        Kind k = static_cast<Kind>(v);
        if (name == kind_name(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

} // namespace

bool
tryPolicyKindFromName(const std::string &name, PolicyKind &out)
{
    return matchByName(name, PolicyKind::Feedback, policyKindName,
                       out);
}

PolicyKind
policyKindFromName(const std::string &name)
{
    PolicyKind k;
    if (!tryPolicyKindFromName(name, k))
        fatal("unknown policy '%s' (LRU, UCP, StaticLC, OnOff, Ubik, "
              "Feedback)",
              name.c_str());
    return k;
}

bool
tryArrayKindFromName(const std::string &name, ArrayKind &out)
{
    if (name == "zcache") { // CLI alias for the paper's default
        out = ArrayKind::Z4_52;
        return true;
    }
    return matchByName(name, ArrayKind::SA64, arrayKindName, out);
}

ArrayKind
arrayKindFromName(const std::string &name)
{
    ArrayKind k;
    if (!tryArrayKindFromName(name, k))
        fatal("unknown array '%s' (Z4/52 or zcache, SA16, SA64)",
              name.c_str());
    return k;
}

bool
trySchemeKindFromName(const std::string &name, SchemeKind &out)
{
    return matchByName(name, SchemeKind::WayPart, schemeKindName, out);
}

SchemeKind
schemeKindFromName(const std::string &name)
{
    SchemeKind k;
    if (!trySchemeKindFromName(name, k))
        fatal("unknown scheme '%s' (LRU, Vantage, WayPart)",
              name.c_str());
    return k;
}

SchemeKind
schemeKindFromNameOrAuto(const std::string &name, PolicyKind policy)
{
    if (name == "auto")
        return policy == PolicyKind::Lru ? SchemeKind::SharedLru
                                         : SchemeKind::Vantage;
    SchemeKind k;
    if (!trySchemeKindFromName(name, k))
        fatal("unknown scheme '%s' (auto, LRU, Vantage, WayPart)",
              name.c_str());
    return k;
}

bool
tryMemKindFromName(const std::string &name, MemKind &out)
{
    return matchByName(name, MemKind::Partitioned, memKindName, out);
}

MemKind
memKindFromName(const std::string &name)
{
    MemKind k;
    if (!tryMemKindFromName(name, k))
        fatal("unknown memory model '%s' (fixed, contended, "
              "partitioned)",
              name.c_str());
    return k;
}

bool
tryBatchClassFromCode(char code, BatchClass &out)
{
    for (BatchClass c :
         {BatchClass::Insensitive, BatchClass::Friendly,
          BatchClass::Fitting, BatchClass::Streaming}) {
        if (batchClassCode(c) == code) {
            out = c;
            return true;
        }
    }
    return false;
}

} // namespace ubik
